// Randomized leader election under BOTH execution schemes — a side-by-side
// demonstration of why the paper exists.
//
//   $ ./leader_election [n]   (power of two, default 8)
//
// The program: every thread draws a ticket, a max-tournament + broadcast
// finds the winning ticket, every thread sets leader_i = (ticket_i == max).
//
// Under the paper's NONDETERMINISTIC scheme, the agreement protocol fixes
// each draw before anyone reads it, so the outcome is always a valid
// election.  Under the DETERMINISTIC baseline (no agreement), re-executions
// of the same draw can return different tickets; on hostile schedules the
// final state can contain a broadcast "max" that matches nobody, or
// multiple inconsistent leaders.
#include <cstdio>
#include <cstdlib>

#include "core/apex.h"

using namespace apex;

namespace {

struct Outcome {
  bool completed = false;
  bool valid = false;
  std::size_t leaders = 0;
  std::string detail;
};

Outcome elect(const pram::Program& prog, std::size_t n, exec::Scheme scheme,
              std::uint64_t seed, sim::ScheduleKind kind) {
  exec::ExecConfig cfg;
  cfg.seed = seed;
  cfg.schedule = kind;
  const auto run = exec::run_checked(prog, scheme, cfg);
  Outcome out;
  out.completed = run.result.completed;
  if (!out.completed) return out;

  pram::Word maxv = 0;
  for (std::size_t i = 0; i < n; ++i)
    maxv = std::max(maxv, run.result.memory[pram::leader_ticket_var(n, i)]);
  bool valid = run.consistency_error.empty();
  for (std::size_t i = 0; i < n; ++i) {
    const auto bc = run.result.memory[pram::leader_max_var(n, i)];
    const auto flag = run.result.memory[pram::leader_flag_var(n, i)];
    const auto ticket = run.result.memory[pram::leader_ticket_var(n, i)];
    if (bc != maxv) valid = false;                 // broadcast corrupted
    if (flag && ticket != maxv) valid = false;     // false leader
    out.leaders += flag;
  }
  if (out.leaders == 0) valid = false;
  out.valid = valid;
  if (!run.consistency_error.empty()) out.detail = run.consistency_error;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 8;
  pram::Program prog = pram::make_leader_election(n, 1ULL << 20);
  std::printf("leader election, n=%zu (%zu PRAM steps)\n\n", n, prog.nsteps());

  constexpr int kTrials = 10;
  for (auto scheme :
       {exec::Scheme::kNondeterministic, exec::Scheme::kDeterministic}) {
    int valid = 0, completed = 0;
    for (int t = 0; t < kTrials; ++t) {
      const auto out = elect(prog, n, scheme, 1000 + t,
                             sim::ScheduleKind::kSleeper);
      completed += out.completed;
      valid += (out.completed && out.valid);
    }
    std::printf("%-8s scheme: %2d/%d runs completed, %2d/%d valid elections%s\n",
                exec::scheme_name(scheme), completed, kTrials, valid, kTrials,
                scheme == exec::Scheme::kDeterministic
                    ? "   <-- the failure the paper fixes"
                    : "");
  }

  std::printf("\none election in detail (nondet scheme):\n");
  exec::ExecConfig cfg;
  cfg.seed = 5;
  const auto run = exec::run_checked(prog, exec::Scheme::kNondeterministic, cfg);
  for (std::size_t i = 0; i < n; ++i) {
    std::printf("  thread %zu: ticket=%7llu  %s\n", i,
                static_cast<unsigned long long>(
                    run.result.memory[pram::leader_ticket_var(n, i)]),
                run.result.memory[pram::leader_flag_var(n, i)] ? "LEADER" : "");
  }
  return 0;
}
