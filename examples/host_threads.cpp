// The agreement protocol on REAL std::threads.
//
//   $ ./host_threads [threads]   (default 4)
//
// Everything else in this repository runs on the deterministic A-PRAM
// simulator; this example runs the same bin-array protocol under genuine
// OS-scheduler asynchrony (preemption, cache misses, timing jitter) and
// shows it still converges to a single agreed value per bin.
#include <cstdio>
#include <cstdlib>

#include "host/host_agreement.h"

using namespace apex;

int main(int argc, char** argv) {
  const std::size_t threads =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;

  std::printf("bin-array agreement on %zu std::threads\n\n", threads);

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    host::HostConfig cfg;
    cfg.nthreads = threads;
    cfg.seed = seed;
    host::HostAgreement ha(cfg, [](std::size_t, apex::Rng& rng) {
      return rng.below(1'000'000);
    });
    const auto res = ha.run(/*timeout_seconds=*/30.0);
    std::printf("seed %llu: %s  wall=%.3fs  work=%llu  cycles=%llu\n",
                static_cast<unsigned long long>(seed),
                res.satisfied ? "agreed" : "TIMEOUT", res.wall_seconds,
                static_cast<unsigned long long>(res.total_work),
                static_cast<unsigned long long>(res.cycles));
    if (res.satisfied) {
      std::printf("  values:");
      for (auto v : res.values)
        std::printf(" %llu", static_cast<unsigned long long>(v));
      std::printf("\n");
      // Verify uniqueness out-of-band.
      bool unique = true;
      for (std::size_t i = 0; i < threads; ++i)
        unique &= (ha.upper_half_values(i, 1).size() == 1);
      std::printf("  uniqueness in every bin: %s\n", unique ? "yes" : "NO");
    }
  }
  return 0;
}
