// Luby-style randomized symmetry breaking (one MIS candidate round) on the
// n-cycle, executed asynchronously with the paper's scheme.
//
//   $ ./luby_mis [n]      (n >= 3, default 16)
//
// This is the motivating workload class of the paper: a classic RANDOMIZED
// PRAM algorithm.  Each node draws a random priority and joins the
// candidate set iff it beats both neighbours.  The invariant "no two
// adjacent nodes both join" holds in every valid synchronous execution —
// and therefore must hold after asynchronous execution under the
// nondeterministic scheme, on every schedule.
#include <cstdio>
#include <cstdlib>
#include <string>

#include "core/apex.h"

using namespace apex;

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 16;
  if (n < 3) {
    std::fprintf(stderr, "need n >= 3\n");
    return 2;
  }

  pram::Program prog = pram::make_luby_cycle_round(n, 1ULL << 20);
  std::printf("Luby MIS round on the %zu-cycle (%zu PRAM steps, %zu vars)\n\n",
              n, prog.nsteps(), prog.nvars());

  for (auto kind : {sim::ScheduleKind::kUniformRandom,
                    sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kSleeper,
                    sim::ScheduleKind::kBurst}) {
    exec::ExecConfig cfg;
    cfg.seed = 7;
    cfg.schedule = kind;
    const auto run =
        exec::run_checked(prog, exec::Scheme::kNondeterministic, cfg);
    if (!run.result.completed) {
      std::printf("%-14s did not complete in budget\n",
                  sim::schedule_kind_name(kind));
      continue;
    }

    std::size_t in_mis = 0, violations = 0;
    for (std::size_t i = 0; i < n; ++i) {
      in_mis += run.result.memory[pram::luby_mis_var(n, i)];
      violations += run.result.memory[pram::luby_violation_var(n, i)];
    }
    std::printf(
        "%-14s work=%9llu  candidates=%2zu/%zu  adjacency violations=%zu  "
        "consistency=%s\n",
        sim::schedule_kind_name(kind),
        static_cast<unsigned long long>(run.result.total_work), in_mis, n,
        violations, run.consistency_error.empty() ? "OK" : "BROKEN");
  }

  // Render one run's outcome.
  exec::ExecConfig cfg;
  cfg.seed = 7;
  const auto run = exec::run_checked(prog, exec::Scheme::kNondeterministic, cfg);
  std::printf("\ncycle nodes (X = MIS candidate):\n  ");
  for (std::size_t i = 0; i < n; ++i)
    std::printf("%c", run.result.memory[pram::luby_mis_var(n, i)] ? 'X' : '.');
  std::printf("\n  priorities: ");
  for (std::size_t i = 0; i < std::min<std::size_t>(n, 16); ++i)
    std::printf("%llu ", static_cast<unsigned long long>(
                             run.result.memory[pram::luby_priority_var(n, i)] %
                             1000));
  std::printf("%s\n", n > 16 ? "..." : "");
  return 0;
}
