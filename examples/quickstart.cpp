// Quickstart: write a tiny RANDOMIZED PRAM program, run it on the
// asynchronous host via the paper's execution scheme, and inspect the
// result.
//
//   $ ./quickstart
//
// The program (8 threads):
//   step 0: every thread draws a random value r_i in [0, 100)
//   step 1: thread i computes s_i = r_i + r_{(i+1) mod 8}   (via staging)
//
// Because step 0 is nondeterministic, the classical deterministic
// execution schemes cannot run this program: different re-executions of
// the same draw would disagree.  The bin-array agreement protocol makes
// all processors adopt ONE value per draw before anything downstream reads
// it.
#include <cstdio>

#include "core/apex.h"

using namespace apex;

int main() {
  constexpr std::size_t kN = 8;

  // Variables: r[0..8) draws, c[8..16) staged copies, s[16..24) sums.
  pram::ProgramBuilder b(kN, 3 * kN);
  b.step().all([](std::size_t i) {
    return pram::Instr::rand_below(static_cast<std::uint32_t>(i), 100);
  });
  b.step().all([](std::size_t i) {  // stage the right neighbour (EREW!)
    return pram::Instr::copy(static_cast<std::uint32_t>(kN + i),
                             static_cast<std::uint32_t>((i + 1) % kN));
  });
  b.step().all([](std::size_t i) {
    return pram::Instr::add(static_cast<std::uint32_t>(2 * kN + i),
                            static_cast<std::uint32_t>(i),
                            static_cast<std::uint32_t>(kN + i));
  });
  pram::Program prog = b.build();  // throws if the program violates EREW

  std::printf("program:\n%s\n", prog.to_string().c_str());

  // Run it on the asynchronous host: n virtual processors under a random
  // adversary schedule, with the bin-array agreement protocol inserted
  // into every Compute subphase.
  exec::ExecConfig cfg;
  cfg.seed = 42;
  cfg.schedule = sim::ScheduleKind::kUniformRandom;
  const auto run = exec::run_checked(prog, exec::Scheme::kNondeterministic, cfg);

  std::printf("completed        : %s\n", run.result.completed ? "yes" : "no");
  std::printf("total work       : %llu steps (all processors, incl. waiting)\n",
              static_cast<unsigned long long>(run.result.total_work));
  std::printf("incomplete tasks : %llu\n",
              static_cast<unsigned long long>(run.result.incomplete_tasks));
  std::printf("consistency      : %s\n",
              run.consistency_error.empty() ? "OK (matches a valid synchronous run)"
                                            : run.consistency_error.c_str());

  std::printf("\n  i   r_i   r_(i+1)   s_i = r_i + r_(i+1)\n");
  bool all_ok = true;
  for (std::size_t i = 0; i < kN; ++i) {
    const auto r = run.result.memory[i];
    const auto rn = run.result.memory[(i + 1) % kN];
    const auto s = run.result.memory[2 * kN + i];
    all_ok &= (s == r + rn);
    std::printf("  %zu   %3llu   %3llu       %3llu %s\n", i,
                static_cast<unsigned long long>(r),
                static_cast<unsigned long long>(rn),
                static_cast<unsigned long long>(s),
                s == r + rn ? "" : "  <-- INCONSISTENT");
  }
  std::printf("\n%s\n", all_ok ? "every sum is consistent with the agreed draws"
                               : "INCONSISTENCY DETECTED");
  return all_ok && run.consistency_error.empty() ? 0 : 1;
}
