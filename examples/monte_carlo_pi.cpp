// Monte-Carlo estimation of pi as a randomized PRAM program.
//
//   $ ./monte_carlo_pi [n]    (power of two, default 64)
//
// Each thread throws a dart at the unit square (two random draws), computes
// hit = (x^2 + y^2 < R^2), and a tournament reduction sums the hits;
// pi ~ 4 * hits / n.  A numeric end-to-end demonstration that randomized
// numerical programs run correctly — and reproducibly per seed — on the
// asynchronous host.
#include <cstdio>
#include <cstdlib>

#include "core/apex.h"

using namespace apex;

namespace {

// Variable layout (8 arrays of n):
//   x[0..n) xc[n..2n) xx[2n..3n) y? reuses xc, tmp[3n..4n) ss[4n..5n)
//   hit[5n..6n) rr[6n..7n) buf[7n..8n)
pram::Program make_pi_program(std::size_t n, pram::Word r) {
  const auto X = [&](std::size_t i) { return static_cast<std::uint32_t>(i); };
  const auto XC = [&](std::size_t i) { return static_cast<std::uint32_t>(n + i); };
  const auto XX = [&](std::size_t i) { return static_cast<std::uint32_t>(2 * n + i); };
  const auto TMP = [&](std::size_t i) { return static_cast<std::uint32_t>(3 * n + i); };
  const auto SS = [&](std::size_t i) { return static_cast<std::uint32_t>(4 * n + i); };
  const auto HIT = [&](std::size_t i) { return static_cast<std::uint32_t>(5 * n + i); };
  const auto RR = [&](std::size_t i) { return static_cast<std::uint32_t>(6 * n + i); };
  const auto BUF = [&](std::size_t i) { return static_cast<std::uint32_t>(7 * n + i); };

  pram::ProgramBuilder b(n, 8 * n);
  // x draw, square via staged copy (EREW forbids reading x twice per step).
  b.step().all([&](std::size_t i) { return pram::Instr::rand_below(X(i), r); });
  b.step().all([&](std::size_t i) { return pram::Instr::copy(XC(i), X(i)); });
  b.step().all([&](std::size_t i) { return pram::Instr::mul(XX(i), X(i), XC(i)); });
  // y draw reuses x's slot pattern: draw into X again would lose x, so draw
  // into XC, square into TMP.
  b.step().all([&](std::size_t i) { return pram::Instr::rand_below(XC(i), r); });
  b.step().all([&](std::size_t i) { return pram::Instr::copy(TMP(i), XC(i)); });
  b.step().all([&](std::size_t i) { return pram::Instr::mul(TMP(i), XC(i), TMP(i)); });
  b.step().all([&](std::size_t i) { return pram::Instr::add(SS(i), XX(i), TMP(i)); });
  b.step().all([&](std::size_t i) { return pram::Instr::constant(RR(i), r * r); });
  b.step().all([&](std::size_t i) { return pram::Instr::less(HIT(i), SS(i), RR(i)); });

  // Tournament sum of the hit flags, alternating buffers X and BUF, with XX
  // as the staging array.
  std::size_t active = n;
  std::size_t src = 5 * n;  // hit array
  std::size_t dst = 0;      // x array, no longer needed
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, pram::Instr::copy(XX(i), static_cast<std::uint32_t>(
                                                 src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i,
                 pram::Instr::add(static_cast<std::uint32_t>(dst + i),
                                  static_cast<std::uint32_t>(src + 2 * i),
                                  XX(i)));
    }
    src = dst;
    dst = (dst == 0) ? 7 * n : 0;  // alternate x / buf
    active = half;
  }
  (void)BUF;
  return b.build();
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  if (!is_pow2(n) || n < 4) {
    std::fprintf(stderr, "need a power-of-two n >= 4\n");
    return 2;
  }
  constexpr pram::Word kR = 1 << 12;

  pram::Program prog = make_pi_program(n, kR);
  std::printf("Monte-Carlo pi, n=%zu darts, %zu PRAM steps, %zu vars\n\n", n,
              prog.nsteps(), prog.nvars());

  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
    exec::ExecConfig cfg;
    cfg.seed = seed;
    const auto run =
        exec::run_checked(prog, exec::Scheme::kNondeterministic, cfg);
    if (!run.result.completed) {
      std::printf("seed %llu: did not complete\n",
                  static_cast<unsigned long long>(seed));
      continue;
    }
    std::size_t hits = 0;
    for (std::size_t i = 0; i < n; ++i)
      hits += run.result.memory[5 * n + i];
    const double pi = 4.0 * static_cast<double>(hits) / static_cast<double>(n);
    std::printf("seed %llu: hits=%3zu/%zu   pi ~ %.4f   work=%llu   %s\n",
                static_cast<unsigned long long>(seed), hits, n, pi,
                static_cast<unsigned long long>(run.result.total_work),
                run.consistency_error.empty() ? "consistent" : "BROKEN");
  }
  std::printf(
      "\n(pi converges as n grows; the point here is consistency and\n"
      " reproducibility of a randomized numeric program under asynchronous\n"
      " execution.)\n");
  return 0;
}
