// Fig. 4, live: find a STABILIZING STRUCTURE in a real protocol run and
// draw it.
//
//   $ ./fig4_timeline [seed]
//
// The paper's Figure 4 shows a pair of consecutive stages in which exactly
// one complete cycle operates on Bin_i per stage and no cycle's write
// "leaks" across a stage boundary; Lemma 5 proves such a pair pins the
// bin's value for good, and Lemma 6 shows pairs like this occur at a
// constant rate.  This example runs the agreement protocol at n = 8,
// locates the first stabilizing structure the StageAnalysis inspector
// reports, and renders the surrounding cycles as an ASCII timeline:
//
//   lanes   P0..P7, one per processor
//   'S'/'W' the search / write halves of cycles on the focus bin
//   '.'     cycles on other bins
//   '!'     stale-phase cycles (tardy clobbers)
//   '|'     stage boundaries
//
// Below the timeline, the focus bin's cells are shown as a heatmap
// ('a'/'b'/... = distinct values, '.' = empty, '|' = readout half split).
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/apex.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Recorder final : AgreementObserver {
  std::vector<CycleRecord> records;
  void on_cycle(const CycleRecord& r) override { records.push_back(r); }
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4;
  constexpr std::size_t kN = 8;

  TestbedConfig cfg;
  cfg.n = kN;
  cfg.seed = seed;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  const std::uint64_t stage_len = 3 * tb.runtime().cfg.omega() * kN;
  StageAnalysis stages(stage_len, kN);
  Recorder rec;
  tb.attach(&stages);
  tb.attach(&rec);

  const auto res = tb.run_until_agreement(2'000'000);
  if (!res.satisfied) {
    std::printf("agreement did not complete (unexpected); try another seed\n");
    return 1;
  }
  const auto rep = stages.finalize();
  std::printf("run: n=%zu seed=%llu, agreement after %llu work units, "
              "%llu stabilizing structures across %llu (bin, stage-pair) "
              "slots\n\n",
              kN, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(res.work),
              static_cast<unsigned long long>(rep.stabilizing_structures),
              static_cast<unsigned long long>(rep.pairs_examined));

  // Find a bin with at least one structure and re-derive which stage pair
  // it was, the same way StageAnalysis does.
  std::size_t focus = kN;
  for (std::size_t i = 0; i < kN; ++i)
    if (rep.per_bin_structures[i] > 0) {
      focus = i;
      break;
    }
  if (focus == kN) {
    std::printf("no stabilizing structure in this short run; try another "
                "seed\n");
    return 1;
  }

  // Locate the first stage pair (2m, 2m+1) where the focus bin has exactly
  // one complete cycle in each stage.
  auto stage_of = [&](std::uint64_t t) { return t / stage_len; };
  std::vector<int> complete_in_stage(64, 0);
  for (const auto& r : rec.records) {
    if (r.bin != focus) continue;
    const auto ss = stage_of(r.s_time), sf = stage_of(r.f_time);
    if (ss == sf && ss < complete_in_stage.size())
      complete_in_stage[static_cast<std::size_t>(ss)] += 1;
  }
  std::size_t pair = 0;
  bool found = false;
  for (std::size_t m = 0; 2 * m + 1 < complete_in_stage.size(); ++m)
    if (complete_in_stage[2 * m] == 1 && complete_in_stage[2 * m + 1] == 1) {
      pair = m;
      found = true;
      break;
    }
  if (!found) {
    std::printf("structure did not fall in the recorded window; rerun\n");
    return 1;
  }

  const std::uint64_t t0 = (2 * pair) * stage_len;
  const std::uint64_t t1 = t0 + 2 * stage_len;
  std::printf("focus: bin %zu, stages %zu and %zu (work window [%llu, %llu))\n",
              focus, 2 * pair + 1, 2 * pair + 2,
              static_cast<unsigned long long>(t0),
              static_cast<unsigned long long>(t1));
  const auto tl = trace::cycles_timeline(rec.records, kN, focus, 1, t0, t1, 72,
                                         stage_len);
  std::printf("%s\n", tl.render().c_str());

  std::printf("bin %zu cells now:\n  %s\n", focus,
              trace::bin_row(tb.bins(), focus, 1).c_str());
  std::printf("\nevery filled cell shows one letter: the value the "
              "structure pinned (Lemma 5).\n");
  return 0;
}
