// Shared helpers for the experiment binaries (E1-E15).
//
// Every binary prints one or more aligned tables — the series the paper's
// theorem/lemma/figure predicts — and exits 0 when the measured shape
// matches the prediction (so `for b in build/bench/*; do $b; done` doubles
// as a reproduction check).  `--csv` switches to CSV; `--full` enlarges the
// sweeps; `--seeds=K` controls replication; `--jobs=N` runs the trial grid
// on N worker threads (0 = all hardware threads, default 1).
//
// Parallelism is deterministic: each driver enumerates its full
// (config, seed) grid up-front and hands it to batch::SweepEngine, which
// runs one simulation universe per grid point and merges TrialResults back
// in trial-index order.  Because every trial seeds its own Simulator from
// its grid point alone, the aggregated tables — and therefore stdout — are
// byte-identical for every `--jobs` value; only wall-clock changes.  (The
// one exception is E12, whose trials measure real-thread wall-clock and
// throughput: those columns vary run to run by nature, at any `--jobs`.)
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "batch/sweep.h"
#include "util/table.h"

namespace apex::bench {

struct Options {
  bool csv = false;
  bool full = false;
  int seeds = 3;
  std::size_t jobs = 1;

  static long parse_num(const std::string& flag, const std::string& value) {
    try {
      std::size_t pos = 0;
      const long v = std::stol(value, &pos);
      if (pos != value.size() || v < 0) throw std::invalid_argument(value);
      return v;
    } catch (const std::exception&) {
      std::fprintf(stderr, "%s expects a non-negative integer, got '%s'\n",
                   flag.c_str(), value.c_str());
      std::exit(2);
    }
  }

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--csv") o.csv = true;
      else if (a == "--full") o.full = true;
      else if (a.rfind("--seeds=", 0) == 0)
        o.seeds = static_cast<int>(parse_num("--seeds", a.substr(8)));
      else if (a.rfind("--jobs=", 0) == 0)
        o.jobs = static_cast<std::size_t>(parse_num("--jobs", a.substr(7)));
      else if (a == "--help" || a == "-h") {
        std::printf("usage: %s [--csv] [--full] [--seeds=K] [--jobs=N]\n",
                    argv[0]);
        std::exit(0);
      }
    }
    if (o.seeds < 1) o.seeds = 1;
    return o;
  }

  void emit(const Table& t) const {
    if (csv) t.print_csv(std::cout);
    else t.print(std::cout);
  }

  std::vector<std::size_t> n_sweep(std::size_t lo, std::size_t hi_default,
                                   std::size_t hi_full) const {
    std::vector<std::size_t> ns;
    const std::size_t hi = full ? hi_full : hi_default;
    for (std::size_t n = lo; n <= hi; n *= 2) ns.push_back(n);
    return ns;
  }

  /// Run `configs.size() * reps` independent trials (config-major,
  /// replicate-minor) across the worker pool and return one GroupStats per
  /// config, in config order.  `fn(config, rep)` builds and runs one
  /// simulation universe; rep in [0, reps) replaces the old inner seed loop.
  template <typename Config, typename Fn>
  std::vector<batch::GroupStats> sweep(const std::vector<Config>& configs,
                                       int reps, Fn&& fn) const {
    batch::SweepSpec spec;
    spec.trials = configs.size() * static_cast<std::size_t>(reps);
    spec.jobs = jobs;
    const auto reps_sz = static_cast<std::size_t>(reps);
    return batch::SweepEngine().run_grouped(
        spec,
        [&](std::size_t i) {
          return fn(configs[i / reps_sz], static_cast<int>(i % reps_sz));
        },
        reps_sz);
  }
};

/// Banner naming the experiment and the paper artifact it reproduces.
inline void banner(const char* id, const char* claim) {
  std::printf("=== %s ===\n%s\n\n", id, claim);
}

/// Final verdict line; returns the process exit code.
inline int verdict(bool ok, const char* summary) {
  std::printf("\n[%s] %s\n", ok ? "PASS" : "FAIL", summary);
  return ok ? 0 : 1;
}

}  // namespace apex::bench
