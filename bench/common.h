// Shared helpers for the experiment binaries (E1-E13).
//
// Every binary prints one or more aligned tables — the series the paper's
// theorem/lemma/figure predicts — and exits 0 when the measured shape
// matches the prediction (so `for b in build/bench/*; do $b; done` doubles
// as a reproduction check).  `--csv` switches to CSV; `--full` enlarges the
// sweeps; `--seeds=K` controls replication.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "util/table.h"

namespace apex::bench {

struct Options {
  bool csv = false;
  bool full = false;
  int seeds = 3;

  static Options parse(int argc, char** argv) {
    Options o;
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--csv") o.csv = true;
      else if (a == "--full") o.full = true;
      else if (a.rfind("--seeds=", 0) == 0) o.seeds = std::stoi(a.substr(8));
      else if (a == "--help" || a == "-h") {
        std::printf("usage: %s [--csv] [--full] [--seeds=K]\n", argv[0]);
        std::exit(0);
      }
    }
    if (o.seeds < 1) o.seeds = 1;
    return o;
  }

  void emit(const Table& t) const {
    if (csv) t.print_csv(std::cout);
    else t.print(std::cout);
  }

  std::vector<std::size_t> n_sweep(std::size_t lo, std::size_t hi_default,
                                   std::size_t hi_full) const {
    std::vector<std::size_t> ns;
    const std::size_t hi = full ? hi_full : hi_default;
    for (std::size_t n = lo; n <= hi; n *= 2) ns.push_back(n);
    return ns;
  }
};

/// Banner naming the experiment and the paper artifact it reproduces.
inline void banner(const char* id, const char* claim) {
  std::printf("=== %s ===\n%s\n\n", id, claim);
}

/// Final verdict line; returns the process exit code.
inline int verdict(bool ok, const char* summary) {
  std::printf("\n[%s] %s\n", ok ? "PASS" : "FAIL", summary);
  return ok ? 0 : 1;
}

}  // namespace apex::bench
