// E5 — Lemma 6 / Definition 2: stabilizing structures.
//
// Paper claim: for any stage pair (Π_{2k-1}, Π_{2k}) and any bin, the
// probability that the pair forms a STABILIZING STRUCTURE (exactly one
// complete cycle on the bin in each stage, and no cycle on the bin whose
// search ends in a stage finishes outside it) is at least a constant
// p > e^-8, independent across pairs and bins.
//
// Measurement: empirical structure rate over all (pair, bin) combinations,
// per n and schedule, compared against the e^-8 ~ 0.000335 lower bound.
// (The paper's bound is loose by design; observed rates are far higher.)
#include <cmath>

#include "agreement/inspect.h"
#include "agreement/testbed.h"
#include "bench/common.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Point {
  sim::ScheduleKind kind;
  std::size_t n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E5: Lemma 6 — stabilizing-structure frequency",
                "predicts rate >= e^-8 = 0.000335 per (stage pair, bin), "
                "independent of n");

  const auto kinds = {sim::ScheduleKind::kRoundRobin,
                      sim::ScheduleKind::kUniformRandom,
                      sim::ScheduleKind::kBurst};
  std::vector<Point> grid;
  for (auto kind : kinds)
    for (std::size_t n : opt.n_sweep(16, 256, 1024)) grid.push_back({kind, n});

  const auto groups =
      opt.sweep(grid, opt.seeds, [](const Point& pt, int s) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = pt.n;
        cfg.seed = 5000 + static_cast<std::uint64_t>(s);
        cfg.schedule = pt.kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        StageAnalysis stages(3 * tb.runtime().cfg.omega() * pt.n, pt.n);
        tb.attach(&stages);
        tb.run_more(40 * 3 * tb.runtime().cfg.omega() * pt.n);
        const auto rep = stages.finalize();
        r.count("pairs", static_cast<double>(rep.pairs_examined));
        r.count("structures", static_cast<double>(rep.stabilizing_structures));
        return r;
      });

  Table t({"sched", "n", "pairs", "structures", "rate", "rate/e^-8"});
  const double bound = std::exp(-8.0);
  bool all_ok = true;

  std::size_t g = 0;
  for (auto kind : kinds) {
    for (std::size_t n : opt.n_sweep(16, 256, 1024)) {
      const auto& group = groups[g++];
      const double pairs = group.count("pairs");
      const double structures = group.count("structures");
      if (pairs == 0) continue;
      const double rate = structures / pairs;
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(pairs))
          .cell(static_cast<std::uint64_t>(structures))
          .cell(rate, 5)
          .cell(rate / bound, 1);
      if (rate < bound) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "stabilizing structures occur at a constant rate "
                        "well above the paper's e^-8 lower bound — "
                        "consistent with Lemma 6");
}
