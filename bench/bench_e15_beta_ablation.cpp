// E15 (ablation) — sizing the bins: the paper's "sufficiently large β".
//
// Theorem 1 and Lemma 7 hold "for a sufficiently large β" (the proof needs
// β > 4·c3, where c3·log n bounds per-bin clobbers).  β has a second,
// implicit ceiling: the phase clock grants each phase ~α·lg n writes per
// bin, and a bin needs ~¾·β·lg n of them, so β must also stay comfortably
// below 4α/3 or bins stop filling in time.
//
// Measurement: several phases under the sleeper schedule (the clobber
// generator), sweeping β at fixed α = 24.  Per β we report two failure
// modes, per phase:
//   stab_fail%  — Lemma 7 violated: a value conflict reached past the
//                 bin's midpoint cell (ClobberAudit.stable_from > B/2);
//                 expected for tiny β, where a clobber at cell 0 triggers
//                 a fresh f-evaluation whose value collides with copies of
//                 the old one within a handful of cells.
//   unfilled%   — the scannable Theorem-1 properties never held during the
//                 phase; expected when ¾β approaches α (fill starvation).
// The default β = 8 must be clean on both; work per phase grows only via
// ω's log β search depth.
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

void run_phases(std::size_t n, std::size_t beta, std::uint64_t seed,
                int phases, batch::TrialResult& st) {
  TestbedConfig cfg;
  cfg.n = n;
  cfg.beta = beta;
  cfg.seed = seed;
  cfg.schedule = sim::ScheduleKind::kSleeper;
  AgreementTestbed tb(cfg, uniform_task(1 << 20), uniform_support(1 << 20));
  const std::size_t B = tb.bins().cells_per_bin();

  sim::Word phase = 1;
  bool phase_ok = false;
  std::uint64_t guard = 0;
  std::vector<bool> ok_by_phase;
  while (static_cast<int>(phase) <= phases && guard++ < 600'000) {
    tb.run_more(256);
    phase_ok = phase_ok || tb.checker().satisfied(phase);
    if (tb.audit().true_phase() > phase) {
      ok_by_phase.push_back(phase_ok);
      phase = tb.audit().true_phase();
      phase_ok = false;
    }
  }

  const auto& reports = tb.audit().finalized();
  for (std::size_t k = 0; k < reports.size() && k < ok_by_phase.size(); ++k) {
    st.count("phases");
    if (!ok_by_phase[k]) st.count("unfilled");
    if (reports[k].max_stable_from() > B / 2) st.count("stab_fail");
    st.sample("work_per_phase",
              static_cast<double>(reports[k].work_end - reports[k].work_begin));
  }
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E15 (ablation): bin size beta — clobber headroom vs fill",
                "tiny beta lets conflicts cross the midpoint (Lemma 7 "
                "fails); beta near 4*alpha/3 starves the fill; beta = 8 "
                "at alpha = 24 is clean on both");

  const std::size_t n = 32;
  const int phases = opt.full ? 12 : 6;

  Table t({"beta", "B", "phases", "unfilled%", "stab_fail%", "work/phase"});
  bool all_ok = true;

  const std::vector<std::size_t> betas = {1, 2, 4, 8, 16, 32};
  const auto groups =
      opt.sweep(betas, opt.seeds, [n, phases](std::size_t beta, int s) {
        batch::TrialResult st;
        run_phases(n, beta, 16'000 + static_cast<std::uint64_t>(s), phases, st);
        return st;
      });

  for (std::size_t g = 0; g < betas.size(); ++g) {
    const std::size_t beta = betas[g];
    const auto& group = groups[g];
    const double nphases = group.count("phases");
    if (nphases == 0) continue;
    const double unfilled = 100.0 * group.count("unfilled") / nphases;
    const double stab = 100.0 * group.count("stab_fail") / nphases;
    t.row()
        .cell(static_cast<std::uint64_t>(beta))
        .cell(static_cast<std::uint64_t>(BinArray::cells_for(n, beta)))
        .cell(static_cast<int>(nphases))
        .cell(unfilled, 1)
        .cell(stab, 1)
        .cell(group.sample("work_per_phase").mean(), 0);
    if (beta <= 2 && (stab + unfilled) < 1.0) all_ok = false;
    if (beta == 8 && (stab > 2.0 || unfilled > 2.0)) all_ok = false;
    if (beta == 32 && unfilled < 5.0) all_ok = false;  // fill ceiling real
  }
  opt.emit(t);

  return bench::verdict(all_ok,
                        "beta must clear the clobber bound below and the "
                        "clock's fill budget above; the default sits in the "
                        "clean middle — the paper's 'sufficiently large "
                        "beta', bounded on both sides");
}
