// E13 — why the paper exists: deterministic schemes fail on
// nondeterministic programs (paper §1, §2.2).
//
// Paper claim: in prior execution schemes each task may be executed several
// times; for deterministic f that is harmless (idempotent), but for
// nondeterministic f different executions write DIFFERENT values, so
// downstream reads observe an inconsistent mix — no synchronous execution
// of the program could have produced it.  The agreement protocol removes
// exactly this failure mode.
//
// Measurement: the consistency-probe program (one random draw relayed
// through a chain of copies, with equality flags that every valid
// execution sets to 1) is executed by the deterministic baseline scheme
// and by the paper's nondeterministic scheme, across seeds and hostile
// schedules.  Report the violation rate of each; the paper's scheme must
// be at 0 while the baseline must violate on a visible fraction of runs.
#include "bench/common.h"
#include "exec/executor.h"
#include "pram/workloads.h"

using namespace apex;
using namespace apex::exec;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E13: deterministic baseline vs the paper's scheme on a "
                "nondeterministic program",
                "predicts the baseline violates execution consistency on "
                "hostile schedules while the agreement-based scheme never "
                "does");

  const std::size_t n = 8, chain = 8;
  pram::Program p = pram::make_consistency_probe(n, chain, 1 << 20);
  const int seeds = opt.full ? 4 * opt.seeds : 2 * opt.seeds;

  Table t({"scheme", "sched", "runs", "completed", "violations", "rate%"});
  int det_violations = 0, det_runs = 0;
  int nondet_violations = 0, nondet_runs = 0;

  for (Scheme scheme : {Scheme::kDeterministic, Scheme::kNondeterministic}) {
    for (auto kind : {sim::ScheduleKind::kSleeper, sim::ScheduleKind::kBurst,
                      sim::ScheduleKind::kUniformRandom}) {
      int runs = 0, completed = 0, violations = 0;
      for (int s = 0; s < seeds; ++s) {
        ExecConfig cfg;
        cfg.seed = 13'000 + static_cast<std::uint64_t>(s);
        cfg.schedule = kind;
        const auto chk = run_checked(p, scheme, cfg);
        ++runs;
        if (!chk.result.completed) continue;
        ++completed;
        bool bad = !chk.consistency_error.empty();
        for (std::size_t j = 0; j < pram::probe_flag_count(chain); ++j)
          bad |= (chk.result.memory[pram::probe_flag_var(n, chain, j)] != 1u);
        violations += bad;
        if (scheme == Scheme::kDeterministic) {
          ++det_runs;
          det_violations += bad;
        } else {
          ++nondet_runs;
          nondet_violations += bad;
        }
      }
      t.row()
          .cell(scheme_name(scheme))
          .cell(sim::schedule_kind_name(kind))
          .cell(runs)
          .cell(completed)
          .cell(violations)
          .cell(completed ? 100.0 * violations / completed : 0.0, 1);
    }
  }
  opt.emit(t);

  std::printf("\nbaseline: %d/%d runs inconsistent; agreement scheme: %d/%d\n",
              det_violations, det_runs, nondet_violations, nondet_runs);
  const bool ok = nondet_violations == 0 && det_violations > 0 &&
                  nondet_runs > 0 && det_runs > 0;
  return bench::verdict(ok,
                        "the deterministic baseline produces executions no "
                        "synchronous run could produce, the agreement-based "
                        "scheme never does — the paper's motivating gap");
}
