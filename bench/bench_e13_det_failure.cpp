// E13 — why the paper exists: deterministic schemes fail on
// nondeterministic programs (paper §1, §2.2).
//
// Paper claim: in prior execution schemes each task may be executed several
// times; for deterministic f that is harmless (idempotent), but for
// nondeterministic f different executions write DIFFERENT values, so
// downstream reads observe an inconsistent mix — no synchronous execution
// of the program could have produced it.  The agreement protocol removes
// exactly this failure mode.
//
// Measurement: the consistency-probe program (one random draw relayed
// through a chain of copies, with equality flags that every valid
// execution sets to 1) is executed by the deterministic baseline scheme
// and by the paper's nondeterministic scheme, across seeds and hostile
// schedules.  Report the violation rate of each; the paper's scheme must
// be at 0 while the baseline must violate on a visible fraction of runs.
#include "bench/common.h"
#include "exec/executor.h"
#include "pram/workloads.h"

using namespace apex;
using namespace apex::exec;

namespace {

struct Point {
  Scheme scheme;
  sim::ScheduleKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E13: deterministic baseline vs the paper's scheme on a "
                "nondeterministic program",
                "predicts the baseline violates execution consistency on "
                "hostile schedules while the agreement-based scheme never "
                "does");

  const std::size_t n = 8, chain = 8;
  pram::Program p = pram::make_consistency_probe(n, chain, 1 << 20);
  const int seeds = opt.full ? 4 * opt.seeds : 2 * opt.seeds;

  std::vector<Point> grid;
  for (Scheme scheme : {Scheme::kDeterministic, Scheme::kNondeterministic})
    for (auto kind : {sim::ScheduleKind::kSleeper, sim::ScheduleKind::kBurst,
                      sim::ScheduleKind::kUniformRandom})
      grid.push_back({scheme, kind});

  const auto groups =
      opt.sweep(grid, seeds, [&p, n, chain](const Point& pt, int s) {
        batch::TrialResult r;
        ExecConfig cfg;
        cfg.seed = 13'000 + static_cast<std::uint64_t>(s);
        cfg.schedule = pt.kind;
        const auto chk = run_checked(p, pt.scheme, cfg);
        if (!chk.result.completed) return r;
        r.count("completed");
        bool bad = !chk.consistency_error.empty();
        for (std::size_t j = 0; j < pram::probe_flag_count(chain); ++j)
          bad |= (chk.result.memory[pram::probe_flag_var(n, chain, j)] != 1u);
        if (bad) r.count("violations");
        return r;
      });

  Table t({"scheme", "sched", "runs", "completed", "violations", "rate%"});
  int det_violations = 0, det_runs = 0;
  int nondet_violations = 0, nondet_runs = 0;

  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& pt = grid[g];
    const auto& group = groups[g];
    const int runs = static_cast<int>(group.trials());
    const int completed = static_cast<int>(group.count("completed"));
    const int violations = static_cast<int>(group.count("violations"));
    if (pt.scheme == Scheme::kDeterministic) {
      det_runs += completed;
      det_violations += violations;
    } else {
      nondet_runs += completed;
      nondet_violations += violations;
    }
    t.row()
        .cell(scheme_name(pt.scheme))
        .cell(sim::schedule_kind_name(pt.kind))
        .cell(runs)
        .cell(completed)
        .cell(violations)
        .cell(completed ? 100.0 * violations / completed : 0.0, 1);
  }
  opt.emit(t);

  std::printf("\nbaseline: %d/%d runs inconsistent; agreement scheme: %d/%d\n",
              det_violations, det_runs, nondet_violations, nondet_runs);
  const bool ok = nondet_violations == 0 && det_violations > 0 &&
                  nondet_runs > 0 && det_runs > 0;
  return bench::verdict(ok,
                        "the deterministic baseline produces executions no "
                        "synchronous run could produce, the agreement-based "
                        "scheme never does — the paper's motivating gap");
}
