// E1 — Theorem 1 headline bound.
//
// Paper claim: the agreement protocol lets n asynchronous processors agree
// on n word-sized values in O(n log n log log n) total work (including busy
// waiting), under any oblivious adversary schedule.
//
// Measurement: total work until uniqueness + accessibility + correctness
// hold in every bin, swept over n and over the adversary family, normalized
// by n·lg n·lglg n.  The ratio column should stay near-constant while the
// per-n work grows by orders of magnitude; the log-log slope should be
// close to 1 (quasilinear), far from 2 (the classical per-value consensus
// shape).
#include <cmath>

#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Point {
  sim::ScheduleKind kind;
  std::size_t n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E1: Theorem 1 — total work for n-value agreement",
                "predicts work = Theta(n log n log log n); table reports "
                "work/(n lg n lglg n), which should be ~constant in n");

  const auto kinds = {sim::ScheduleKind::kRoundRobin,
                      sim::ScheduleKind::kUniformRandom,
                      sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst};

  std::vector<Point> grid;
  for (auto kind : kinds)
    for (std::size_t n : opt.n_sweep(16, 1024, 4096)) grid.push_back({kind, n});

  const auto groups =
      opt.sweep(grid, opt.seeds, [](const Point& pt, int s) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = pt.n;
        cfg.seed = 1000 + static_cast<std::uint64_t>(s);
        cfg.schedule = pt.kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        const std::uint64_t budget =
            static_cast<std::uint64_t>(500.0 * n_logn_loglogn(pt.n)) + 1000000;
        const auto res = tb.run_until_agreement(budget);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        r.sample("work", static_cast<double>(res.work));
        return r;
      });

  Table t({"sched", "n", "B", "omega", "runs", "work_mean", "work_ci95",
           "work/nlglglg", "slope_sofar"});
  bool all_ok = true;

  std::size_t g = 0;
  for (auto kind : kinds) {
    std::vector<double> xs, ys;
    for (std::size_t n : opt.n_sweep(16, 1024, 4096)) {
      const auto& group = groups[g++];
      if (!group.all_ok()) all_ok = false;
      const auto& acc = group.sample("work");
      if (acc.count() == 0) continue;
      AgreementConfig probe_cfg;
      probe_cfg.n = n;
      xs.push_back(static_cast<double>(n));
      ys.push_back(acc.mean());
      const double slope =
          xs.size() >= 2 ? loglog_slope(xs, ys) : 0.0;
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(probe_cfg.cells_per_bin()))
          .cell(static_cast<std::uint64_t>(probe_cfg.omega()))
          .cell(static_cast<std::uint64_t>(acc.count()))
          .cell(acc.mean(), 0)
          .cell(acc.ci95(), 0)
          .cell(acc.mean() / n_logn_loglogn(n), 2)
          .cell(slope, 3);
    }
    // Shape check per schedule: quasilinear, i.e. slope well below 1.6.
    if (xs.size() >= 3) {
      const double slope = loglog_slope(xs, ys);
      if (slope > 1.6 || slope < 0.7) all_ok = false;
      const auto fit = fit_ratio(ys, [&] {
        std::vector<double> f;
        for (double x : xs) f.push_back(n_logn_loglogn(static_cast<std::size_t>(x)));
        return f;
      }());
      if (fit.spread > 6.0) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "work grows quasilinearly (slope ~1) and the "
                        "normalized ratio stays bounded across schedules — "
                        "consistent with O(n log n log log n)");
}
