// E11 — Fig. 3: the oscillation scenario that prevents convergence.
//
// Paper figure: an arrangement of cycles in Bin_i where the stored values
// oscillate between 3 and 5; "if this low-probability situation continues
// then Bin_i never converges".  The stabilizing-structure analysis
// (Lemmas 5-7) shows such arrangements die out w.h.p. under an oblivious
// adversary.
//
// Part A reproduces the oscillation deterministically: one bin, a
// processor computing f = 3, one computing f = 5, and a tardy processor
// still working for the previous phase.  A scripted schedule alternates
// (tardy clobbers the low cells) -> (one of the writers refills them),
// so the refilled prefix flips 3 -> 5 -> 3 -> ... every round and the
// upper half exposes BOTH values — the non-convergence of Fig. 3.
//
// Part B shows the flip side: under the oblivious random-schedule family
// with the full protocol (random bin choice, phase clock), every run ends
// with a unanimous upper half — the crafted arrangement has measure ~zero.
#include <algorithm>

#include "agreement/protocol.h"
#include "agreement/testbed.h"
#include "bench/common.h"
#include "sim/simulator.h"

using namespace apex;
using namespace apex::agreement;

namespace {

sim::SubTask<TaskResult> fixed_value(sim::Ctx& ctx, sim::Word v) {
  co_await ctx.local();  // the "computation", 1 step like any basic op
  co_return TaskResult{v};
}

sim::ProcTask cycle_forever(sim::Ctx& ctx, AgreementRuntime& rt,
                            sim::Word phase) {
  for (;;) co_await agreement_cycle(ctx, rt, phase);
}

/// Grants every step to one designated processor; the bench switches the
/// designation between complete cycles.  The switching pattern is fixed in
/// advance and never inspects any protocol value, so it is realizable by an
/// oblivious adversary (it is the deterministic skeleton of Fig. 3).
class SteeredSchedule final : public sim::Schedule {
 public:
  using Schedule::Schedule;
  std::size_t current = 0;
  std::size_t next(std::uint64_t) override { return current; }
  // `current` is flipped by the bench between run() calls, so grants must
  // not be drawn ahead of execution (the schedule stays oblivious in the
  // model sense: the pattern never reads protocol values).
  bool is_prefetchable() const noexcept override { return false; }
};

/// Counts completed cycles per processor (out-of-band).
struct CycleCounter final : AgreementObserver {
  std::vector<std::uint64_t> cycles;
  explicit CycleCounter(std::size_t n) : cycles(n, 0) {}
  void on_cycle(const CycleRecord& rec) override { ++cycles[rec.proc]; }
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E11: Fig. 3 — crafted oscillation vs oblivious reality",
                "a scripted adversary makes one bin oscillate 3/5 forever; "
                "under the oblivious random family the same protocol always "
                "converges (Lemmas 5-7)");

  // ---- Part A: scripted oscillation on a single bin ------------------------
  const std::size_t kProcs = 3;   // P0: f=3, P1: f=5, P2: tardy clobberer
  const int kRounds = opt.full ? 24 : 12;

  sim::SimConfig sc;
  sc.nprocs = kProcs;
  sc.seed = 11;
  // Pattern: P0 fills the whole 8-cell bin with 3s; each round, P2 (still
  // on phase 1) clobbers cells 0..4, then P1 or P0 refills them for
  // phase 2 — so the refilled prefix alternates 5,3,5,3,...
  AgreementConfig acfg;
  acfg.n = 1;  // one bin
  acfg.beta = 8;
  const std::size_t B = acfg.cells_per_bin();
  auto steered = std::make_unique<SteeredSchedule>(kProcs);
  SteeredSchedule& steer = *steered;
  sim::Simulator sim(sc, std::move(steered));
  BinArray bins(sim.memory(), 1, B);
  CycleCounter counter(kProcs);
  AgreementRuntime rt;
  rt.cfg = acfg;
  rt.bins = &bins;
  rt.observer = &counter;
  rt.task = [](sim::Ctx& ctx, std::size_t, sim::Word phase) {
    // The tardy processor (phase 1) also "computes" something; its value is
    // irrelevant — its stale stamp is what clobbers.
    return fixed_value(ctx, phase == 1 ? 9 : (ctx.id() == 0 ? 3 : 5));
  };
  sim.spawn([&](sim::Ctx& c) { return cycle_forever(c, rt, 2); });  // P0
  sim.spawn([&](sim::Ctx& c) { return cycle_forever(c, rt, 2); });  // P1
  sim.spawn([&](sim::Ctx& c) { return cycle_forever(c, rt, 1); });  // P2

  // Grant `proc` exclusive steps until it has completed `k` more cycles.
  auto run_cycles = [&](std::size_t proc, std::uint64_t k) {
    steer.current = proc;
    const std::uint64_t target = counter.cycles[proc] + k;
    sim.run(1'000'000, [&] { return counter.cycles[proc] >= target; }, 1);
  };

  Table ta({"round", "refiller", "upper_vals", "conflicted"});
  run_cycles(0, B);  // initial fill: c0..c7 = 3 (phase 2)
  int conflicted_rounds = 0;
  bool saw3 = false, saw5 = false;
  for (int r = 0; r < kRounds; ++r) {
    run_cycles(2, 5);                   // tardy clobbers 5 cells (stamp 1)
    run_cycles(r % 2 == 0 ? 1 : 0, 5);  // refill with 5s (even r) or 3s
    const auto uh = bins.upper_half_values(0, 2);
    const bool conflict = uh.size() >= 2;
    conflicted_rounds += conflict;
    for (auto v : uh) {
      saw3 |= (v == 3);
      saw5 |= (v == 5);
    }
    std::string vals;
    for (auto v : uh) vals += (vals.empty() ? "" : ",") + std::to_string(v);
    ta.row()
        .cell(r)
        .cell(r % 2 == 0 ? "P1(5)" : "P0(3)")
        .cell(vals)
        .cell(conflict ? "yes" : "no");
  }
  opt.emit(ta);
  // Note: tardy writes punch HOLES whose position drifts upward round by
  // round (the search can overshoot a hole masked by filled cells above —
  // §4.1's "holes may prevent the binary search from finding the true
  // frontier"), so the conflict is intermittent rather than every round;
  // what matters is that BOTH values keep reaching the readout range and
  // the bin never settles.
  std::printf("\ncrafted schedule: %d/%d rounds end with a conflicted upper "
              "half; readout saw value 3: %s, value 5: %s — Fig. 3's "
              "oscillation\n",
              conflicted_rounds, kRounds, saw3 ? "yes" : "no",
              saw5 ? "yes" : "no");

  // ---- Part B: the oblivious random family always converges ----------------
  const std::vector<sim::ScheduleKind> family = {
      sim::ScheduleKind::kUniformRandom, sim::ScheduleKind::kPowerLaw,
      sim::ScheduleKind::kBurst};
  const auto groups =
      opt.sweep(family, std::max(4, opt.seeds),
                [](sim::ScheduleKind kind, int s) {
                  batch::TrialResult r;
                  TestbedConfig cfg;
                  cfg.n = 16;
                  cfg.seed = 11'000 + static_cast<std::uint64_t>(s);
                  cfg.schedule = kind;
                  AgreementTestbed tb(cfg, uniform_task(64),
                                      uniform_support(64));
                  const auto res = tb.run_until_agreement(5'000'000);
                  if (res.satisfied) r.count("converged");
                  return r;
                });
  int runs = 0, converged = 0;
  for (const auto& group : groups) {
    runs += static_cast<int>(group.trials());
    converged += static_cast<int>(group.count("converged"));
  }
  std::printf("oblivious random family: %d/%d runs converged to a unanimous "
              "upper half\n", converged, runs);

  const bool ok = conflicted_rounds >= kRounds / 3 && saw3 && saw5 &&
                  converged == runs;
  return bench::verdict(ok,
                        "the crafted arrangement keeps the bin oscillating "
                        "(Fig. 3) while every oblivious-random run converges "
                        "— exactly the measure-zero vs w.h.p. dichotomy");
}
