// E10 — the gap vs classical-consensus work shapes (paper §1).
//
// Paper claim: adaptive-adversary consensus protocols need Ω(n²) work PER
// VALUE (their progress mechanism is repeated Θ(n)-register scans), so
// agreeing on the n values of one PRAM step would cost Ω(n³) — an O~(n)
// execution overhead.  The bin-array protocol agrees on all n values in
// O(n log n log log n), so the advantage grows without bound:
// ratio ≈ n² / (log n log log n).
//
// Measurement: total work of the read-all baseline (ScanConsensus) vs the
// bin-array testbed on identical inputs, swept over n; the ratio column
// must grow monotonically, and the two log-log slopes must straddle the
// shapes (scan ~3, bin-array ~1).
#include "agreement/testbed.h"
#include "bench/common.h"
#include "consensus/scan_consensus.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;
using namespace apex::consensus;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E10: bin-array vs read-all consensus — the Omega(n^2)/value gap",
                "predicts scan work ~ n^3 for n values, bin-array ~ n lg n "
                "lglg n; their ratio grows ~ n^2/(lg n lglg n)");

  const std::vector<std::size_t> ns = opt.n_sweep(8, 128, 256);

  const auto groups =
      opt.sweep(ns, opt.seeds, [](std::size_t n, int s) {
        batch::TrialResult r;
        const std::uint64_t seed = 10'000 + static_cast<std::uint64_t>(s);
        {
          ScanConfig cfg;
          cfg.n = n;
          cfg.seed = seed;
          ScanConsensus sc(cfg, uniform_task(1 << 20));
          const auto res = sc.run(4'000'000'000ULL);
          if (!res.completed) {
            r.ok = false;
            return r;
          }
          r.sample("scan_work", static_cast<double>(res.total_work));
        }
        {
          TestbedConfig cfg;
          cfg.n = n;
          cfg.seed = seed;
          AgreementTestbed tb(cfg, uniform_task(1 << 20),
                              uniform_support(1 << 20));
          const auto res = tb.run_until_agreement(
              static_cast<std::uint64_t>(500.0 * n_logn_loglogn(n)) +
              1'000'000);
          if (!res.satisfied) {
            r.ok = false;
            return r;
          }
          r.sample("bin_work", static_cast<double>(res.work));
        }
        return r;
      });

  Table t({"n", "scan_work", "binarray_work", "ratio", "scan/n^3",
           "bin/nlglglg"});
  bool all_ok = true;
  std::vector<double> xs, scan_ys, bin_ys;
  double prev_ratio = 0.0;

  for (std::size_t g = 0; g < ns.size(); ++g) {
    const std::size_t n = ns[g];
    const auto& group = groups[g];
    if (!group.all_ok()) all_ok = false;
    const auto& scan_acc = group.sample("scan_work");
    const auto& bin_acc = group.sample("bin_work");
    if (scan_acc.count() == 0 || bin_acc.count() == 0) continue;
    xs.push_back(static_cast<double>(n));
    scan_ys.push_back(scan_acc.mean());
    bin_ys.push_back(bin_acc.mean());
    const double nd = static_cast<double>(n);
    const double ratio = scan_acc.mean() / bin_acc.mean();
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(scan_acc.mean(), 0)
        .cell(bin_acc.mean(), 0)
        .cell(ratio, 2)
        .cell(scan_acc.mean() / (nd * nd * nd), 3)
        .cell(bin_acc.mean() / n_logn_loglogn(n), 2);
    // The gap must widen with n (allow jitter at the smallest sizes).
    if (xs.size() >= 3 && ratio <= prev_ratio) all_ok = false;
    prev_ratio = ratio;
  }
  opt.emit(t);

  if (xs.size() >= 3) {
    const double scan_slope = loglog_slope(xs, scan_ys);
    const double bin_slope = loglog_slope(xs, bin_ys);
    std::printf("\nlog-log slopes: scan baseline %.2f (cubic-ish expected), "
                "bin-array %.2f (quasilinear expected)\n",
                scan_slope, bin_slope);
    if (scan_slope < 2.2) all_ok = false;   // must be clearly super-quadratic
    if (bin_slope > 1.7) all_ok = false;    // must be clearly sub-quadratic
    if (scan_slope - bin_slope < 1.0) all_ok = false;
  }

  return bench::verdict(all_ok,
                        "the read-all baseline's work grows ~n^3 while the "
                        "bin-array protocol stays quasilinear — the paper's "
                        "reason to reject classical consensus");
}
