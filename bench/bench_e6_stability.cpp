// E6 — Lemma 7: stability point.
//
// Paper claim: w.h.p. every bin reaches stability by cell (β log n)/2 —
// i.e. above B/2 no cell is ever written with two different values within a
// phase, which is what makes the upper half safe to read.
//
// Measurement: the per-bin stability point (one past the last cell with a
// value conflict) at agreement time, reported as max over bins and
// normalized by B/2.  Values <= 1.0 confirm the lemma.
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Point {
  sim::ScheduleKind kind;
  std::size_t n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E6: Lemma 7 — bins reach stability by cell B/2",
                "predicts the last value-conflicting cell sits below B/2 in "
                "every bin; max_stable_from/(B/2) must be <= 1");

  const auto kinds = {sim::ScheduleKind::kUniformRandom,
                      sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst};
  std::vector<Point> grid;
  for (auto kind : kinds)
    for (std::size_t n : opt.n_sweep(16, 512, 2048)) grid.push_back({kind, n});

  const auto groups =
      opt.sweep(grid, opt.seeds, [](const Point& pt, int s) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = pt.n;
        cfg.seed = 6000 + static_cast<std::uint64_t>(s);
        cfg.schedule = pt.kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        const auto res = tb.run_until_agreement(
            static_cast<std::uint64_t>(500.0 * n_logn_loglogn(pt.n)) + 1000000);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        r.count("runs");
        const auto snap = tb.audit().snapshot();
        for (auto sf : snap.stable_from)
          r.sample("stable_from", static_cast<double>(sf));
        r.sample("worst", static_cast<double>(snap.max_stable_from()));
        return r;
      });

  Table t({"sched", "n", "B", "runs", "stable_from_mean", "stable_from_max",
           "max/(B/2)"});
  bool all_ok = true;

  std::size_t g = 0;
  for (auto kind : kinds) {
    for (std::size_t n : opt.n_sweep(16, 512, 2048)) {
      const auto& group = groups[g++];
      if (!group.all_ok()) all_ok = false;
      const std::size_t runs = static_cast<std::size_t>(group.count("runs"));
      if (runs == 0) continue;
      const std::size_t b_cells = BinArray::cells_for(n, TestbedConfig{}.beta);
      const double worst = group.sample("worst").max();
      const double norm = worst / (static_cast<double>(b_cells) / 2.0);
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(b_cells))
          .cell(static_cast<std::uint64_t>(runs))
          .cell(group.sample("stable_from").mean(), 2)
          .cell(static_cast<std::uint64_t>(worst))
          .cell(norm, 3);
      if (norm > 1.0) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "value conflicts never reach the upper half — "
                        "consistent with Lemma 7");
}
