// E3 — Lemma 2: complete cycles per stage.
//
// Paper claim: dividing time into stages of 3ωn work units each, every
// stage contains at least n and at most 3n COMPLETE cycles (cycles whose
// whole execution lies within the stage).  The upper bound is structural
// (3ωn work / ω per cycle); the lower bound loses only the <= 2n cycles
// overlapping the stage edges.
//
// Measurement: complete-cycle counts per stage across schedules, reported
// as min/mean/max normalized by n, plus the fraction of stages inside
// [2n/3, 3n] (we allow a small deficit below n because clock maintenance
// steps — absent from the paper's idealized cycle-only accounting — also
// consume stage budget).
#include "agreement/inspect.h"
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Point {
  sim::ScheduleKind kind;
  std::size_t n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E3: Lemma 2 — complete cycles per stage (stage = 3*omega*n)",
                "predicts between n and 3n complete cycles per stage; "
                "min/n should be near 1, max/n below 3");

  const auto kinds = {sim::ScheduleKind::kRoundRobin,
                      sim::ScheduleKind::kUniformRandom,
                      sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst};
  std::vector<Point> grid;
  for (auto kind : kinds)
    for (std::size_t n : opt.n_sweep(32, 256, 1024)) grid.push_back({kind, n});

  const auto groups =
      opt.sweep(grid, opt.seeds, [](const Point& pt, int s) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = pt.n;
        cfg.seed = 3000 + static_cast<std::uint64_t>(s);
        cfg.schedule = pt.kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        StageAnalysis stages(3 * tb.runtime().cfg.omega() * pt.n, pt.n);
        tb.attach(&stages);
        tb.run_more(40 * 3 * tb.runtime().cfg.omega() * pt.n);
        const auto rep = stages.finalize();
        // Skip the first stage (startup) and the last (truncated).
        for (std::size_t k = 1; k + 1 < rep.complete_per_stage.size(); ++k) {
          const double c = static_cast<double>(rep.complete_per_stage[k]);
          r.sample("complete", c);
          const double nd = static_cast<double>(pt.n);
          if (c >= 2.0 * nd / 3.0 && c <= 3.0 * nd) r.count("in_bounds");
        }
        return r;
      });

  Table t({"sched", "n", "stages", "min/n", "mean/n", "max/n", "in_bounds%"});
  bool all_ok = true;

  std::size_t g = 0;
  for (auto kind : kinds) {
    for (std::size_t n : opt.n_sweep(32, 256, 1024)) {
      const auto& group = groups[g++];
      const auto& per_stage = group.sample("complete");
      const double total_stages = static_cast<double>(per_stage.count());
      if (total_stages == 0) continue;
      const double nd = static_cast<double>(n);
      const double frac = 100.0 * group.count("in_bounds") / total_stages;
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(total_stages))
          .cell(per_stage.min() / nd, 3)
          .cell(per_stage.mean() / nd, 3)
          .cell(per_stage.max() / nd, 3)
          .cell(frac, 1);
      if (per_stage.max() / nd > 3.0 + 1e-9) all_ok = false;  // hard bound
      if (frac < 95.0) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "every stage holds <= 3n complete cycles and ~all "
                        "stages hold ~n or more — consistent with Lemma 2");
}
