// E3 — Lemma 2: complete cycles per stage.
//
// Paper claim: dividing time into stages of 3ωn work units each, every
// stage contains at least n and at most 3n COMPLETE cycles (cycles whose
// whole execution lies within the stage).  The upper bound is structural
// (3ωn work / ω per cycle); the lower bound loses only the <= 2n cycles
// overlapping the stage edges.
//
// Measurement: complete-cycle counts per stage across schedules, reported
// as min/mean/max normalized by n, plus the fraction of stages inside
// [2n/3, 3n] (we allow a small deficit below n because clock maintenance
// steps — absent from the paper's idealized cycle-only accounting — also
// consume stage budget).
#include "agreement/inspect.h"
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E3: Lemma 2 — complete cycles per stage (stage = 3*omega*n)",
                "predicts between n and 3n complete cycles per stage; "
                "min/n should be near 1, max/n below 3");

  Table t({"sched", "n", "stages", "min/n", "mean/n", "max/n", "in_bounds%"});
  bool all_ok = true;

  for (auto kind :
       {sim::ScheduleKind::kRoundRobin, sim::ScheduleKind::kUniformRandom,
        sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst}) {
    for (std::size_t n : opt.n_sweep(32, 256, 1024)) {
      Accumulator per_stage;
      double in_bounds = 0, total_stages = 0;
      double minv = 1e18, maxv = 0;
      for (int s = 0; s < opt.seeds; ++s) {
        TestbedConfig cfg;
        cfg.n = n;
        cfg.seed = 3000 + static_cast<std::uint64_t>(s);
        cfg.schedule = kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        StageAnalysis stages(3 * tb.runtime().cfg.omega() * n, n);
        tb.attach(&stages);
        tb.run_more(40 * 3 * tb.runtime().cfg.omega() * n);
        const auto rep = stages.finalize();
        // Skip the first stage (startup) and the last (truncated).
        for (std::size_t k = 1; k + 1 < rep.complete_per_stage.size(); ++k) {
          const double c = static_cast<double>(rep.complete_per_stage[k]);
          per_stage.add(c);
          minv = std::min(minv, c);
          maxv = std::max(maxv, c);
          total_stages += 1;
          const double nd = static_cast<double>(n);
          in_bounds += (c >= 2.0 * nd / 3.0 && c <= 3.0 * nd);
        }
      }
      if (total_stages == 0) continue;
      const double nd = static_cast<double>(n);
      const double frac = 100.0 * in_bounds / total_stages;
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(total_stages))
          .cell(minv / nd, 3)
          .cell(per_stage.mean() / nd, 3)
          .cell(maxv / nd, 3)
          .cell(frac, 1);
      if (maxv / nd > 3.0 + 1e-9) all_ok = false;  // hard structural bound
      if (frac < 95.0) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "every stage holds <= 3n complete cycles and ~all "
                        "stages hold ~n or more — consistent with Lemma 2");
}
