// E14 (ablation) — the oblivious-adversary assumption is NECESSARY.
//
// Claim 8's proof hinges on the adversary fixing the schedule before the
// computation: then the identity of the cycle that wins a bin is
// independent of the value it computed, so agreement preserves p_i(x).
// The A-PRAM convention (and the intermediate adversaries of
// [Aumann-Bender 96] / [Chandra 96]) exist precisely because a VALUE-AWARE
// adaptive adversary is stronger.
//
// This ablation makes the failure concrete.  The task is a fair coin.  An
// adaptive adversary watches each processor's freshly drawn value (before
// the write lands) and simply STOPS GRANTING STEPS to any processor about
// to write a 1 — unless everyone is blocked, in which case it must grant
// someone (stalled processors accumulate, so the pool drains and some 1s
// do land — a total collapse is not achievable with stalling alone).
// Under this adversary the agreed ones-rate drops far below fair, a
// deviation many standard errors wide: Claim 8's EQUALITY Pr[v=x] = p(x)
// is broken the moment the adversary may look at coins.  Under every
// oblivious schedule in the family the rate stays statistically fair.
#include <optional>
#include <vector>

#include "agreement/protocol.h"
#include "agreement/testbed.h"
#include "bench/common.h"
#include "sim/simulator.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

sim::ProcTask cycle_forever(sim::Ctx& ctx, AgreementRuntime& rt) {
  for (;;) co_await agreement_cycle(ctx, rt, 1);
}

/// Run one adaptive-adversary agreement; returns ones among the n agreed
/// values, or nullopt if agreement failed (it should not).
std::optional<int> run_adaptive(std::size_t n, std::uint64_t seed) {
  // Blackboard the adversary reads: the value a processor has drawn in its
  // current cycle, cleared when the cycle completes.  Writing it costs no
  // model work — the adversary is simply assumed able to see coins the
  // moment they are flipped (the "strong adaptive" power).
  std::vector<std::optional<sim::Word>> pending(n);

  auto sched = std::make_unique<sim::CallbackSchedule>(
      n, [&pending, n](std::uint64_t t) {
        // Round-robin over processors NOT holding a pending 1.
        for (std::size_t k = 0; k < n; ++k) {
          const std::size_t p = static_cast<std::size_t>((t + k) % n);
          if (!(pending[p].has_value() && *pending[p] == 1)) return p;
        }
        return static_cast<std::size_t>(t % n);  // all blocked: must grant
      });

  sim::Simulator sim(sim::SimConfig{n, 0, seed}, std::move(sched));
  BinArray bins(sim.memory(), n, BinArray::cells_for(n, 8));
  struct Clear final : AgreementObserver {
    std::vector<std::optional<sim::Word>>* pending = nullptr;
    void on_cycle(const CycleRecord& rec) override {
      (*pending)[rec.proc].reset();
    }
  } clear;
  clear.pending = &pending;

  AgreementRuntime rt;
  rt.cfg.n = n;
  rt.cfg.compute_steps = 2;  // draw + one post-draw step (see below)
  rt.bins = &bins;
  rt.observer = &clear;
  rt.task = [&pending](sim::Ctx& ctx, std::size_t, sim::Word) {
    return [](sim::Ctx& c,
              std::vector<std::optional<sim::Word>>* bb)
               -> sim::SubTask<TaskResult> {
      co_await c.local();  // the draw
      const sim::Word v = c.rng().coin(0.5) ? 1 : 0;
      (*bb)[c.id()] = v;   // leak the coin to the adversary (out-of-band)
      // One more charged step between producing the value and the cycle's
      // write.  Without it the draw and the write are adjacent atomic
      // steps, and grant semantics make them inseparable — that is
      // precisely the WEAK adaptive adversary of [Chor-Israeli-Li 87],
      // which cannot stop a processor between flipping and writing and
      // therefore cannot bias.  The STRONG adaptive adversary this
      // ablation models needs a gap to strike in.
      co_await c.local();
      co_return TaskResult{v};
    }(ctx, &pending);
  };
  for (std::size_t p = 0; p < n; ++p)
    sim.spawn([&](sim::Ctx& c) { return cycle_forever(c, rt); });

  TheoremChecker checker(bins, coin_support());
  const auto res = sim.run(
      5'000'000, [&] { return checker.satisfied(1); }, 64);
  if (!res.predicate_hit) return std::nullopt;
  int ones = 0;
  for (const auto& v : checker.values(1)) ones += static_cast<int>(*v);
  return ones;
}

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E14 (ablation): Claim 8 needs the oblivious adversary",
                "a value-aware adaptive scheduler measurably biases agreed "
                "fair coins; every oblivious schedule keeps them fair");

  const std::size_t n = 16;
  const int trials = opt.full ? 3 * opt.seeds * 10 : opt.seeds * 10;

  Table t({"adversary", "trials", "samples", "ones", "ones_rate"});
  bool all_ok = true;

  // Adversary grid: the adaptive scheduler, then the oblivious family.
  const std::vector<std::optional<sim::ScheduleKind>> adversaries = {
      std::nullopt, sim::ScheduleKind::kUniformRandom,
      sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst};

  const auto groups = opt.sweep(
      adversaries, trials,
      [n](const std::optional<sim::ScheduleKind>& kind, int s) {
        batch::TrialResult res;
        if (!kind) {  // adaptive adversary
          const auto r =
              run_adaptive(n, 14'000 + static_cast<std::uint64_t>(s));
          if (!r) return res;
          res.count("done");
          res.count("ones", *r);
          res.count("samples", static_cast<double>(n));
          return res;
        }
        TestbedConfig cfg;
        cfg.n = n;
        cfg.seed = 15'000 + static_cast<std::uint64_t>(s);
        cfg.schedule = *kind;
        AgreementTestbed tb(cfg, coin_task(0.5), coin_support());
        const auto run = tb.run_until_agreement(5'000'000);
        if (!run.satisfied) return res;
        res.count("done");
        for (const auto& v : tb.checker().values(1))
          res.count("ones", static_cast<double>(*v));
        res.count("samples", static_cast<double>(n));
        return res;
      });

  for (std::size_t g = 0; g < adversaries.size(); ++g) {
    const auto& group = groups[g];
    const int done = static_cast<int>(group.count("done"));
    const int samples = static_cast<int>(group.count("samples"));
    const int ones = static_cast<int>(group.count("ones"));
    const double rate = samples ? static_cast<double>(ones) / samples : 0.0;
    t.row()
        .cell(adversaries[g] ? sim::schedule_kind_name(*adversaries[g])
                             : "adaptive")
        .cell(done)
        .cell(samples)
        .cell(ones)
        .cell(rate, 4);
    if (!adversaries[g]) {
      if (done < trials / 2) all_ok = false;  // agreement itself must not die
      // 480 fair samples have sd ~0.023; demand a bias several sd wide.
      if (rate > 0.40) all_ok = false;
    } else {
      if (rate < 0.4 || rate > 0.6) all_ok = false;
    }
  }
  opt.emit(t);

  return bench::verdict(all_ok,
                        "the adaptive scheduler biases the agreed-coin "
                        "distribution many standard errors below fair while "
                        "oblivious schedules preserve it — the model "
                        "assumption is load-bearing");
}
