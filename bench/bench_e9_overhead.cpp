// E9 — execution overhead of the nondeterministic scheme (paper §1, §2).
//
// Paper claim: augmenting a deterministic execution scheme with the
// bin-array agreement protocol lets it run NONDETERMINISTIC programs at an
// O(log n log log n) work overhead per PRAM step (previous schemes either
// rejected nondeterministic programs or, with classical consensus, would
// pay O~(n) overhead).
//
// Measurement: run T-step randomized PRAM programs (independent coin
// matrix) under the full scheme, report work / (T·n) — the per-step,
// per-processor overhead — against lg n · lglg n, swept over n.  The
// normalized column should stay bounded; the log-log slope of overhead vs
// n must be far below 1 (a linear overhead would indicate the classical-
// consensus shape).  The deterministic baseline scheme (it cannot run this
// program correctly, but its clock/copy machinery is the same) provides
// the overhead floor attributable to phase-clocked execution itself.
#include "bench/common.h"
#include "exec/executor.h"
#include "pram/workloads.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::exec;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E9: execution overhead — work per PRAM step per processor",
                "predicts nondet-scheme overhead = O(lg n * lglg n); "
                "overhead/(lg n lglg n) should stay ~constant in n");

  const std::size_t T = 6;
  const std::vector<std::size_t> ns = opt.n_sweep(8, 128, 512);

  const auto groups =
      opt.sweep(ns, opt.seeds, [T](std::size_t n, int s) {
        batch::TrialResult r;
        pram::Program p = pram::make_coin_matrix(n, T, 0.5);
        for (Scheme scheme :
             {Scheme::kDeterministic, Scheme::kNondeterministic}) {
          ExecConfig cfg;
          cfg.seed = 9000 + static_cast<std::uint64_t>(s);
          Executor ex(p, scheme, cfg);
          const auto res = ex.run(Executor::default_budget(p));
          if (!res.completed) {
            r.ok = false;
            continue;
          }
          const double ovh = static_cast<double>(res.total_work) /
                             (static_cast<double>(T) * static_cast<double>(n));
          r.sample(scheme == Scheme::kDeterministic ? "det" : "nondet", ovh);
        }
        return r;
      });

  Table t({"n", "T", "det_ovh", "nondet_ovh", "ovh/lg*lglg", "ratio_vs_det",
           "slope_sofar"});
  bool all_ok = true;
  std::vector<double> xs, ys;

  for (std::size_t g = 0; g < ns.size(); ++g) {
    const std::size_t n = ns[g];
    const auto& group = groups[g];
    if (!group.all_ok()) all_ok = false;
    const auto& det_acc = group.sample("det");
    const auto& nondet_acc = group.sample("nondet");
    if (nondet_acc.count() == 0 || det_acc.count() == 0) continue;
    xs.push_back(static_cast<double>(n));
    ys.push_back(nondet_acc.mean());
    const double norm =
        nondet_acc.mean() / (lg(n) * static_cast<double>(lglg(n)));
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(T))
        .cell(det_acc.mean(), 1)
        .cell(nondet_acc.mean(), 1)
        .cell(norm, 2)
        .cell(nondet_acc.mean() / det_acc.mean(), 2)
        .cell(xs.size() >= 2 ? loglog_slope(xs, ys) : 0.0, 3);
  }
  opt.emit(t);

  if (xs.size() >= 3) {
    const double slope = loglog_slope(xs, ys);
    std::printf("\noverhead-vs-n log-log slope: %.3f (polylog expected: << 1; "
                "classical-consensus shape would be ~1)\n", slope);
    if (slope > 0.6) all_ok = false;
    std::vector<double> f;
    for (double x : xs)
      f.push_back(lg(static_cast<std::uint64_t>(x)) *
                  static_cast<double>(lglg(static_cast<std::uint64_t>(x))));
    const auto fit = fit_ratio(ys, f);
    std::printf("overhead/(lg n lglg n) spread across n: %.2fx\n", fit.spread);
    if (fit.spread > 6.0) all_ok = false;
  }

  return bench::verdict(all_ok,
                        "per-step overhead grows polylogarithmically "
                        "(slope << 1) and tracks lg n * lglg n — the paper's "
                        "O(log n log log n) overhead");
}
