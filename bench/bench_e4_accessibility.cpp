// E4 — Lemma 4: accessibility.
//
// Paper claim: after O(n log n log log n) work, for every bin at least half
// of the upper-half cells (j >= B/2) are filled, so any reader finds an
// agreement value in O(1) expected probes.
//
// Measurement: at the moment the stop predicate fires, the fill fraction of
// the upper half, minimum over bins (must be >= 0.5 by construction of the
// predicate — the interesting columns are how far beyond 0.5 the fills go
// and the work at which they were reached).
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E4: Lemma 4 — upper-half fill at agreement time",
                "predicts >= 1/2 of cells j >= B/2 filled in every bin "
                "within the Theorem-1 work bound");

  const std::vector<std::size_t> ns = opt.n_sweep(16, 512, 2048);
  const auto groups =
      opt.sweep(ns, opt.seeds, [](std::size_t n, int s) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = n;
        cfg.seed = 4000 + static_cast<std::uint64_t>(s);
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        const auto res = tb.run_until_agreement(
            static_cast<std::uint64_t>(500.0 * n_logn_loglogn(n)) + 1000000);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        r.sample("work", static_cast<double>(res.work));
        const std::size_t b_cells = tb.bins().cells_per_bin();
        const std::size_t upper = b_cells - tb.bins().upper_half_begin();
        for (std::size_t i = 0; i < n; ++i) {
          r.sample("fill",
                   static_cast<double>(tb.bins().upper_half_filled(i, 1)) /
                       static_cast<double>(upper));
          r.sample("frontier", static_cast<double>(tb.audit().frontier(i)));
        }
        return r;
      });

  Table t({"n", "B", "runs", "work/nlglglg", "min_fill", "mean_fill",
           "frontier_min"});
  bool all_ok = true;

  for (std::size_t g = 0; g < ns.size(); ++g) {
    const std::size_t n = ns[g];
    const auto& group = groups[g];
    if (!group.all_ok()) all_ok = false;
    const auto& work_acc = group.sample("work");
    if (work_acc.count() == 0) continue;
    const std::size_t b_cells = BinArray::cells_for(n, TestbedConfig{}.beta);
    const auto& fill_acc = group.sample("fill");
    t.row()
        .cell(static_cast<std::uint64_t>(n))
        .cell(static_cast<std::uint64_t>(b_cells))
        .cell(static_cast<std::uint64_t>(work_acc.count()))
        .cell(work_acc.mean() / n_logn_loglogn(n), 2)
        .cell(fill_acc.min(), 3)
        .cell(fill_acc.mean(), 3)
        .cell(static_cast<std::uint64_t>(group.sample("frontier").min()));
    if (fill_acc.min() < 0.5) all_ok = false;
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "every bin's upper half is at least half filled "
                        "within the Theorem-1 budget — consistent with "
                        "Lemma 4");
}
