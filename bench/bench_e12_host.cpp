// E12 — the protocol on real threads (Fig. 4 sanity / host validation).
//
// The paper's model is asynchronous shared memory; our simulator realizes
// it with an explicit adversary, and this experiment closes the loop on a
// REAL asynchronous system: std::threads under genuine OS preemption, with
// (value, stamp) packed into one atomic 64-bit word to honor the paper's
// word+timestamp atomic-access postulate.
//
// Measurement: for thread counts {2, 4, 8}, run the host protocol until
// the Theorem-1 scannable properties hold for a live phase; report the
// observed phase, agreement throughput (cycles/s), and work.  Every
// configuration must reach agreement — including oversubscribed ones
// (more threads than cores), which maximize preemption asynchrony.
//
// Note on --jobs: each trial already spawns its own thread team, and the
// wall-clock/throughput columns are timing measurements, so running trials
// concurrently oversubscribes the machine and perturbs them.  Leave
// --jobs=1 (the default) when the absolute numbers matter.
#include "bench/common.h"
#include "host/host_agreement.h"

using namespace apex;
using namespace apex::host;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E12: bin-array agreement on real std::threads",
                "the protocol must reach a unanimous, accessible bin array "
                "under genuine OS-scheduler asynchrony, at every thread count");

  const std::vector<std::size_t> thread_counts = {2, 4, 8};
  const int reps = opt.full ? 3 * opt.seeds : opt.seeds;

  const auto groups =
      opt.sweep(thread_counts, reps, [](std::size_t threads, int s) {
        batch::TrialResult r;
        HostConfig cfg;
        cfg.nthreads = threads;
        cfg.seed = 12'000 + static_cast<std::uint64_t>(s);
        HostAgreement ha(cfg, [](std::size_t i, apex::Rng& rng) {
          return 1000 * i + rng.below(1000);
        });
        const auto res = ha.run(20.0);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        r.count("sat");
        // Sanity: agreed values must be in bin i's support.
        for (std::size_t i = 0; i < threads; ++i)
          if (res.values[i] / 1000 != i) r.ok = false;
        r.sample("phase", static_cast<double>(res.phase));
        r.sample("cps",
                 static_cast<double>(res.cycles) / res.wall_seconds / 1e6);
        r.sample("work", static_cast<double>(res.total_work));
        r.sample("wall", res.wall_seconds * 1000.0);
        return r;
      });

  Table t({"threads", "runs", "satisfied", "phase_mean", "Mcycles/s",
           "work_mean", "wall_ms_mean"});
  bool all_ok = true;

  for (std::size_t g = 0; g < thread_counts.size(); ++g) {
    const auto& group = groups[g];
    if (!group.all_ok()) all_ok = false;
    const int runs = static_cast<int>(group.trials());
    const int sat = static_cast<int>(group.count("sat"));
    t.row()
        .cell(static_cast<std::uint64_t>(thread_counts[g]))
        .cell(runs)
        .cell(sat)
        .cell(sat ? group.sample("phase").mean() : 0.0, 1)
        .cell(sat ? group.sample("cps").mean() : 0.0, 2)
        .cell(sat ? group.sample("work").mean() : 0.0, 0)
        .cell(sat ? group.sample("wall").mean() : 0.0, 2);
    if (sat != runs) all_ok = false;
  }
  opt.emit(t);

  return bench::verdict(all_ok,
                        "agreement reached at every thread count on real "
                        "threads, with values from the correct supports — "
                        "the protocol survives genuine asynchrony");
}
