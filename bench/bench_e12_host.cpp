// E12 — the protocol on real threads (Fig. 4 sanity / host validation).
//
// The paper's model is asynchronous shared memory; our simulator realizes
// it with an explicit adversary, and this experiment closes the loop on a
// REAL asynchronous system: std::threads under genuine OS preemption, with
// (value, stamp) packed into one atomic 64-bit word to honor the paper's
// word+timestamp atomic-access postulate.
//
// Measurement: for thread counts {2, 4, 8}, run the host protocol until
// the Theorem-1 scannable properties hold for a live phase; report the
// observed phase, agreement throughput (cycles/s), and work.  Every
// configuration must reach agreement — including oversubscribed ones
// (more threads than cores), which maximize preemption asynchrony.
#include "bench/common.h"
#include "host/host_agreement.h"

using namespace apex;
using namespace apex::host;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E12: bin-array agreement on real std::threads",
                "the protocol must reach a unanimous, accessible bin array "
                "under genuine OS-scheduler asynchrony, at every thread count");

  Table t({"threads", "runs", "satisfied", "phase_mean", "Mcycles/s",
           "work_mean", "wall_ms_mean"});
  bool all_ok = true;

  for (std::size_t threads : {2u, 4u, 8u}) {
    int runs = 0, sat = 0;
    double phase_sum = 0, cps_sum = 0, work_sum = 0, wall_sum = 0;
    const int reps = opt.full ? 3 * opt.seeds : opt.seeds;
    for (int s = 0; s < reps; ++s) {
      HostConfig cfg;
      cfg.nthreads = threads;
      cfg.seed = 12'000 + static_cast<std::uint64_t>(s);
      HostAgreement ha(cfg, [](std::size_t i, apex::Rng& rng) {
        return 1000 * i + rng.below(1000);
      });
      const auto res = ha.run(20.0);
      ++runs;
      sat += res.satisfied;
      if (!res.satisfied) {
        all_ok = false;
        continue;
      }
      // Sanity: agreed values must be in bin i's support.
      for (std::size_t i = 0; i < threads; ++i)
        if (res.values[i] / 1000 != i) all_ok = false;
      phase_sum += res.phase;
      cps_sum += static_cast<double>(res.cycles) / res.wall_seconds / 1e6;
      work_sum += static_cast<double>(res.total_work);
      wall_sum += res.wall_seconds * 1000.0;
    }
    t.row()
        .cell(static_cast<std::uint64_t>(threads))
        .cell(runs)
        .cell(sat)
        .cell(sat ? phase_sum / sat : 0.0, 1)
        .cell(sat ? cps_sum / sat : 0.0, 2)
        .cell(sat ? work_sum / sat : 0.0, 0)
        .cell(sat ? wall_sum / sat : 0.0, 2);
    if (sat != runs) all_ok = false;
  }
  opt.emit(t);

  return bench::verdict(all_ok,
                        "agreement reached at every thread count on real "
                        "threads, with values from the correct supports — "
                        "the protocol survives genuine asynchrony");
}
