// E12 — the protocol on real threads (Fig. 4 sanity / host validation).
//
// The paper's model is asynchronous shared memory; our simulator realizes
// it with an explicit adversary, and this experiment closes the loop on a
// REAL asynchronous system: std::threads under genuine OS preemption, with
// (value, stamp) packed into one atomic 64-bit word to honor the paper's
// word+timestamp atomic-access postulate.
//
// Measurement: for thread counts {2, 4, 8}, run the host protocol until
// the Theorem-1 scannable properties hold for a live phase; report the
// observed phase, agreement throughput (cycles/s), and work.  Every
// configuration must reach agreement — including oversubscribed ones
// (more threads than cores), which maximize preemption asynchrony.
//
// Second table: the FULL execution scheme on real threads, regular vs
// irregular kernels.  For each thread count, a regular lockstep kernel
// (prefix) and an irregular data-dependent one (dag — random dataflow,
// plus spmv's computed-index gathers at n=8) run through HostExecutor;
// every run must pass the workload's final-memory verdict (audit-clean
// runs only; lost_commits, the detected ultra-preemption damage, is
// reported and retried — see host_executor.h).
//
// Third table: the SCALING STUDY the virtualized executor exists for.
// P logical processors (up to the registry's scale_ns instances, 64/128)
// multiplexed onto T <= 8 OS threads, swept over interleave policy
// (rr/random/block) and memory order (the audited acq_rel hot path vs the
// --seq-cst fidelity fallback), with steps/s (Mwork/s) plus the
// lost/repaired commit columns on every row.  The one-thread-per-processor
// design bounded P by what the OS could sensibly timeslice; these grids
// are exactly the configurations it could never run.
//
// Fourth table: GRAPH SCALE — the CSR-backed kernels (bfs, spmv) at the
// registry's n = 1e4 instance (1e5 with --full): thousands of logical
// processors walking partitioned CSR row slices through dynamic-window
// gathers, placed partition-aware (each OS thread owns a weight-balanced
// share of the degree mass) on T = 2 threads at alpha = 32.
//
// Fifth: the virtualization dividend — the same workload at the same
// protocol parameters (alpha = 4096), one-thread-per-processor (the
// pre-virtualization shape, T = P) vs T = hardware threads; the wall-clock
// ratio is printed (informational: absolute timing is machine-dependent).
//
// Note on --jobs: each trial already spawns its own thread team, and the
// wall-clock/throughput columns are timing measurements, so running trials
// concurrently oversubscribes the machine and perturbs them.  Leave
// --jobs=1 (the default) when the absolute numbers matter.
#include <thread>

#include "bench/common.h"
#include "host/host_agreement.h"
#include "host/host_executor.h"
#include "pram/workloads.h"

using namespace apex;
using namespace apex::host;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E12: bin-array agreement on real std::threads",
                "the protocol must reach a unanimous, accessible bin array "
                "under genuine OS-scheduler asynchrony, at every thread count");

  const std::vector<std::size_t> thread_counts = {2, 4, 8};
  const int reps = opt.full ? 3 * opt.seeds : opt.seeds;

  const auto groups =
      opt.sweep(thread_counts, reps, [](std::size_t threads, int s) {
        batch::TrialResult r;
        HostConfig cfg;
        cfg.nthreads = threads;
        cfg.seed = 12'000 + static_cast<std::uint64_t>(s);
        HostAgreement ha(cfg, [](std::size_t i, apex::Rng& rng) {
          return 1000 * i + rng.below(1000);
        });
        const auto res = ha.run(20.0);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        r.count("sat");
        // Sanity: agreed values must be in bin i's support.
        for (std::size_t i = 0; i < threads; ++i)
          if (res.values[i] / 1000 != i) r.ok = false;
        r.sample("phase", static_cast<double>(res.phase));
        r.sample("cps",
                 static_cast<double>(res.cycles) / res.wall_seconds / 1e6);
        r.sample("work", static_cast<double>(res.total_work));
        r.sample("wall", res.wall_seconds * 1000.0);
        return r;
      });

  Table t({"threads", "runs", "satisfied", "phase_mean", "Mcycles/s",
           "work_mean", "wall_ms_mean"});
  bool all_ok = true;

  for (std::size_t g = 0; g < thread_counts.size(); ++g) {
    const auto& group = groups[g];
    if (!group.all_ok()) all_ok = false;
    const int runs = static_cast<int>(group.trials());
    const int sat = static_cast<int>(group.count("sat"));
    t.row()
        .cell(static_cast<std::uint64_t>(thread_counts[g]))
        .cell(runs)
        .cell(sat)
        .cell(sat ? group.sample("phase").mean() : 0.0, 1)
        .cell(sat ? group.sample("cps").mean() : 0.0, 2)
        .cell(sat ? group.sample("work").mean() : 0.0, 0)
        .cell(sat ? group.sample("wall").mean() : 0.0, 2);
    if (sat != runs) all_ok = false;
  }
  opt.emit(t);

  // ---- full scheme: regular vs irregular PRAM kernels on real threads ----

  struct WlPoint {
    const char* workload;
    std::size_t n;
  };
  const std::vector<WlPoint> wl_grid = {
      {"prefix", 4}, {"prefix", 8}, {"dag", 4}, {"dag", 8}, {"spmv", 8}};

  const auto wl_groups = opt.sweep(wl_grid, opt.seeds, [](const WlPoint& pt,
                                                          int s) {
    batch::TrialResult r;
    const auto* spec = pram::find_workload(pt.workload);
    const pram::Program p = spec->make(pt.n);
    HostExecConfig cfg;
    cfg.seed = 12'500 + static_cast<std::uint64_t>(s);
    cfg.timeout_seconds = 60.0;
    // Retry detected preemption damage (rare, oversubscription-dependent);
    // only audit-clean runs count toward the verdict columns.
    for (int attempt = 0; attempt < 3; ++attempt) {
      HostExecutor ex(p, cfg);
      const auto res = ex.run();
      if (!res.completed) {
        r.ok = false;
        return r;
      }
      if (res.lost_commits != 0) {
        r.count("damaged");
        cfg.seed += 1000;
        continue;
      }
      std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      if (!spec->check(pt.n, mem).empty()) {
        r.ok = false;
        return r;
      }
      r.count("ok");
      r.sample("work", static_cast<double>(res.total_work));
      r.sample("wall", res.wall_seconds * 1000.0);
      r.sample("wps", static_cast<double>(res.total_work) /
                          std::max(res.wall_seconds, 1e-9) / 1e6);
      return r;
    }
    r.ok = false;  // damaged on every attempt
    return r;
  });

  Table wt({"kernel", "class", "n", "runs", "ok", "damaged", "work_mean",
            "wall_ms", "Mwork/s"});
  for (std::size_t g = 0; g < wl_grid.size(); ++g) {
    const auto& group = wl_groups[g];
    if (!group.all_ok()) all_ok = false;
    const auto* spec = pram::find_workload(wl_grid[g].workload);
    const int ok = static_cast<int>(group.count("ok"));
    wt.row()
        .cell(wl_grid[g].workload)
        .cell(spec->irregular ? "irregular" : "regular")
        .cell(static_cast<std::uint64_t>(wl_grid[g].n))
        .cell(static_cast<std::uint64_t>(group.trials()))
        .cell(ok)
        .cell(static_cast<std::uint64_t>(group.count("damaged")))
        .cell(ok ? group.sample("work").mean() : 0.0, 0)
        .cell(ok ? group.sample("wall").mean() : 0.0, 2)
        .cell(ok ? group.sample("wps").mean() : 0.0, 2);
  }
  opt.emit(wt);

  // ---- scaling study: P virtual processors on T OS threads ----------------

  struct ScalePoint {
    const char* workload;
    std::size_t P;       ///< Logical processors.
    std::size_t T;       ///< OS worker threads.
    Interleave il;
    bool seq_cst;
  };
  std::vector<ScalePoint> sgrid = {
      {"spmv", 16, 1, Interleave::kRoundRobin, false},
      {"spmv", 16, 2, Interleave::kRoundRobin, false},
      {"spmv", 64, 1, Interleave::kRoundRobin, false},
      {"spmv", 64, 2, Interleave::kRoundRobin, false},
      {"spmv", 64, 4, Interleave::kRoundRobin, false},
      {"spmv", 64, 8, Interleave::kRoundRobin, false},
      {"spmv", 64, 2, Interleave::kRandom, false},
      {"spmv", 64, 2, Interleave::kBlock, false},
      {"spmv", 64, 2, Interleave::kRoundRobin, true},
      {"bfs", 64, 2, Interleave::kRoundRobin, false},
      {"dag", 64, 2, Interleave::kRoundRobin, false},
  };
  if (opt.full) {
    sgrid.push_back({"bfs", 64, 4, Interleave::kRoundRobin, false});
    sgrid.push_back({"spmv", 128, 4, Interleave::kRoundRobin, false});
    sgrid.push_back({"bfs", 128, 4, Interleave::kRoundRobin, false});
    sgrid.push_back({"dag", 128, 4, Interleave::kRoundRobin, false});
  }

  const auto sgroups = opt.sweep(sgrid, opt.seeds, [](const ScalePoint& pt,
                                                      int s) {
    batch::TrialResult r;
    const auto* spec = pram::find_workload(pt.workload);
    const pram::Program p = spec->make(pt.P);
    HostExecConfig cfg;
    cfg.seed = 12'800 + static_cast<std::uint64_t>(s);
    cfg.os_threads = pt.T;
    cfg.interleave = pt.il;
    cfg.seq_cst = pt.seq_cst;
    cfg.clock_alpha = 48.0;  // virtualized: phases need not outlast OS slices
    cfg.timeout_seconds = 120.0;
    for (int attempt = 0; attempt < 3; ++attempt) {
      HostExecutor ex(p, cfg);
      const auto res = ex.run();
      if (!res.completed) {
        r.ok = false;
        return r;
      }
      if (res.repaired_commits != 0)
        r.count("repaired", static_cast<double>(res.repaired_commits));
      if (res.lost_commits != 0) {
        r.count("damaged");
        cfg.seed += 1000;
        continue;
      }
      std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      if (!spec->check(pt.P, mem).empty()) {
        r.ok = false;
        return r;
      }
      r.count("ok");
      r.sample("work", static_cast<double>(res.total_work));
      r.sample("wall", res.wall_seconds * 1000.0);
      r.sample("wps", static_cast<double>(res.total_work) /
                          std::max(res.wall_seconds, 1e-9) / 1e6);
      return r;
    }
    r.ok = false;  // damaged on every attempt
    return r;
  });

  Table st({"kernel", "P", "T", "policy", "order", "runs", "ok", "damaged",
            "repaired", "work_mean", "wall_ms", "Msteps/s"});
  for (std::size_t g = 0; g < sgrid.size(); ++g) {
    const auto& group = sgroups[g];
    if (!group.all_ok()) all_ok = false;
    const int ok = static_cast<int>(group.count("ok"));
    st.row()
        .cell(sgrid[g].workload)
        .cell(static_cast<std::uint64_t>(sgrid[g].P))
        .cell(static_cast<std::uint64_t>(sgrid[g].T))
        .cell(interleave_name(sgrid[g].il))
        .cell(sgrid[g].seq_cst ? "seq_cst" : "acq_rel")
        .cell(static_cast<std::uint64_t>(group.trials()))
        .cell(ok)
        .cell(static_cast<std::uint64_t>(group.count("damaged")))
        .cell(static_cast<std::uint64_t>(group.count("repaired")))
        .cell(ok ? group.sample("work").mean() : 0.0, 0)
        .cell(ok ? group.sample("wall").mean() : 0.0, 2)
        .cell(ok ? group.sample("wps").mean() : 0.0, 2);
  }
  std::printf("\nscaling study (virtualized: P logical processors on T OS "
              "threads, alpha=48):\n");
  opt.emit(st);

  // ---- graph scale: CSR kernels at n = 1e4 (1e5 with --full) --------------
  //
  // The registry's graph-scale instances: n vertices compiled onto
  // P = min(n, 4096) logical processors that walk partitioned CSR row
  // slices through dynamic-window gathers.  Placement is partition-aware
  // (Interleave::kPartition seeded with the workload's reported
  // per-processor degree mass), so each OS thread owns a weight-balanced
  // share of the irregular rows.  Audit-clean runs only, like every host
  // table above.

  struct GraphPoint {
    const char* workload;
    std::size_t n;
  };
  std::vector<GraphPoint> ggrid = {{"bfs", 10'000}, {"spmv", 10'000}};
  if (opt.full) {
    ggrid.push_back({"bfs", 100'000});
    ggrid.push_back({"spmv", 100'000});
  }
  const auto ggroups = opt.sweep(ggrid, opt.seeds, [](const GraphPoint& pt,
                                                      int s) {
    batch::TrialResult r;
    const auto* spec = pram::find_workload(pt.workload);
    const pram::Program p = spec->make(pt.n);
    HostExecConfig cfg;
    cfg.seed = 13'000 + static_cast<std::uint64_t>(s);
    cfg.os_threads = 2;
    cfg.clock_alpha = 32.0;
    cfg.generations = 6;
    cfg.interleave = Interleave::kPartition;
    cfg.proc_weights = spec->proc_weights(pt.n);
    cfg.timeout_seconds = pt.n > 10'000 ? 1200.0 : 600.0;
    for (int attempt = 0; attempt < 4; ++attempt) {
      HostExecutor ex(p, cfg);
      const auto res = ex.run();
      if (!res.completed) {
        r.ok = false;
        return r;
      }
      if (res.repaired_commits != 0)
        r.count("repaired", static_cast<double>(res.repaired_commits));
      if (res.lost_commits != 0) {
        r.count("damaged");
        cfg.seed += 1000;
        continue;
      }
      std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      if (!spec->check(pt.n, mem).empty()) {
        r.ok = false;
        return r;
      }
      r.count("ok");
      r.sample("work", static_cast<double>(res.total_work));
      r.sample("wall", res.wall_seconds * 1000.0);
      r.sample("wps", static_cast<double>(res.total_work) /
                          std::max(res.wall_seconds, 1e-9) / 1e6);
      return r;
    }
    r.ok = false;  // damaged on every attempt
    return r;
  });

  Table gt({"kernel", "n", "P", "T", "policy", "runs", "ok", "damaged",
            "repaired", "work_mean", "wall_ms", "Msteps/s"});
  for (std::size_t g = 0; g < ggrid.size(); ++g) {
    const auto& group = ggroups[g];
    if (!group.all_ok()) all_ok = false;
    const int ok = static_cast<int>(group.count("ok"));
    gt.row()
        .cell(ggrid[g].workload)
        .cell(static_cast<std::uint64_t>(ggrid[g].n))
        .cell(static_cast<std::uint64_t>(std::min<std::size_t>(ggrid[g].n,
                                                               4096)))
        .cell(static_cast<std::uint64_t>(2))
        .cell("partition")
        .cell(static_cast<std::uint64_t>(group.trials()))
        .cell(ok)
        .cell(static_cast<std::uint64_t>(group.count("damaged")))
        .cell(static_cast<std::uint64_t>(group.count("repaired")))
        .cell(ok ? group.sample("work").mean() : 0.0, 0)
        .cell(ok ? group.sample("wall").mean() : 0.0, 2)
        .cell(ok ? group.sample("wps").mean() : 0.0, 2);
  }
  std::printf("\ngraph scale (CSR kernels, partition-aware placement, "
              "alpha=32, T=2):\n");
  opt.emit(gt);

  // ---- virtualization dividend: T = P (pre-virtualization shape) vs -------
  // ---- T = hardware threads, identical protocol parameters ----------------

  const std::size_t hw = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::thread::hardware_concurrency()));
  struct DivPoint {
    const char* workload;
    std::size_t n;
    std::size_t T;  ///< 0 = one thread per processor (legacy shape).
  };
  std::vector<DivPoint> dgrid;
  for (const char* wlname : {"prefix", "dag"}) {
    dgrid.push_back({wlname, 8, 0});
    dgrid.push_back({wlname, 8, std::min<std::size_t>(hw, 8)});
  }
  const auto dgroups = opt.sweep(dgrid, opt.seeds, [](const DivPoint& pt,
                                                      int s) {
    batch::TrialResult r;
    const auto* spec = pram::find_workload(pt.workload);
    const pram::Program p = spec->make(pt.n);
    HostExecConfig cfg;
    cfg.seed = 12'900 + static_cast<std::uint64_t>(s);
    cfg.os_threads = pt.T;
    // Virtualized side runs the throughput policy (block keeps a
    // processor's state register-resident); legacy T=P has one processor
    // per thread, for which the policy is a no-op distinction.
    if (pt.T != 0) cfg.interleave = Interleave::kBlock;
    cfg.timeout_seconds = 120.0;  // default alpha: the legacy operating point
    for (int attempt = 0; attempt < 3; ++attempt) {
      HostExecutor ex(p, cfg);
      const auto res = ex.run();
      if (!res.completed) {
        r.ok = false;
        return r;
      }
      if (res.lost_commits != 0) {
        r.count("damaged");
        cfg.seed += 1000;
        continue;
      }
      std::vector<pram::Word> mem(res.memory.begin(), res.memory.end());
      if (!spec->check(pt.n, mem).empty()) {
        r.ok = false;
        return r;
      }
      r.count("ok");
      r.sample("wall", res.wall_seconds * 1000.0);
      return r;
    }
    r.ok = false;
    return r;
  });

  std::printf("\nvirtualization dividend (same kernel, same alpha=4096; "
              "wall legacy T=P / virtualized T=%zu):\n", hw);
  for (std::size_t g = 0; g + 1 < dgrid.size(); g += 2) {
    if (!dgroups[g].all_ok() || !dgroups[g + 1].all_ok()) all_ok = false;
    const double legacy = dgroups[g].sample("wall").mean();
    const double virt = dgroups[g + 1].sample("wall").mean();
    std::printf("  %-6s n=%zu: legacy %.2f ms, virtualized %.2f ms, "
                "ratio %.2fx\n",
                dgrid[g].workload, dgrid[g].n, legacy, virt,
                virt > 0 ? legacy / virt : 0.0);
  }

  return bench::verdict(all_ok,
                        "agreement reached at every thread count on real "
                        "threads; the full scheme executes regular AND "
                        "irregular PRAM kernels correctly under genuine "
                        "asynchrony, including P=64+ instances virtualized "
                        "onto a handful of OS threads across every "
                        "interleave policy and memory order");
}
