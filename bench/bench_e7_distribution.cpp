// E7 — Claim 8: distribution preservation.
//
// Paper claim: Pr[v_i = x] = p_i(x) — agreement does not bias the
// distribution of the nondeterministic functions, because under the
// oblivious adversary the identity of the winning cycle is independent of
// the value it computed.
//
// Measurement: agreed-value histograms over many independently seeded runs,
// for a fair coin, a 1/4-biased coin, and a uniform 8-way die, chi-squared
// against the true distribution.  Also run under a hostile (burst) schedule
// to show the adversary cannot bias outcomes.
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Spec {
  const char* name;
  TaskFn task;
  SupportFn support;
  std::vector<double> probs;
};

struct Point {
  const Spec* spec;
  sim::ScheduleKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  auto opt = bench::Options::parse(argc, argv);
  bench::banner("E7: Claim 8 — agreed values follow p_i(x)",
                "chi-square p-values must not collapse (p > 1e-4): the "
                "protocol must not bias the program's randomness");

  const std::size_t n = 16;
  const int trials = opt.full ? 120 : 50;

  std::vector<Spec> specs;
  specs.push_back({"coin_0.5", coin_task(0.5), coin_support(), {0.5, 0.5}});
  specs.push_back({"coin_0.25", coin_task(0.25), coin_support(), {0.75, 0.25}});
  {
    std::vector<double> u8(8, 1.0 / 8.0);
    specs.push_back({"die_8", uniform_task(8), uniform_support(8), u8});
  }

  std::vector<Point> grid;
  for (const auto& spec : specs)
    for (auto kind :
         {sim::ScheduleKind::kUniformRandom, sim::ScheduleKind::kBurst})
      grid.push_back({&spec, kind});

  const auto groups =
      opt.sweep(grid, trials, [n](const Point& pt, int tr) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = n;
        cfg.seed = 7000 + static_cast<std::uint64_t>(tr) * 13 +
                   (pt.kind == sim::ScheduleKind::kBurst ? 7 : 0);
        cfg.schedule = pt.kind;
        AgreementTestbed tb(cfg, pt.spec->task, pt.spec->support);
        const auto res = tb.run_until_agreement(200'000'000);
        if (!res.satisfied) {
          r.ok = false;
          return r;
        }
        for (const auto& v : tb.checker().values(1)) {
          if (!v || *v >= pt.spec->probs.size()) continue;
          r.count("c" + std::to_string(*v));
          r.count("samples");
        }
        return r;
      });

  Table t({"dist", "sched", "samples", "chi2", "dof", "p_value"});
  bool all_ok = true;

  for (std::size_t g = 0; g < grid.size(); ++g) {
    const auto& pt = grid[g];
    const auto& group = groups[g];
    if (!group.all_ok()) all_ok = false;
    std::vector<std::uint64_t> counts(pt.spec->probs.size(), 0);
    for (std::size_t v = 0; v < counts.size(); ++v)
      counts[v] =
          static_cast<std::uint64_t>(group.count("c" + std::to_string(v)));
    const double stat = chi_square_stat(counts, pt.spec->probs);
    const double p = chi_square_pvalue(stat, pt.spec->probs.size() - 1);
    t.row()
        .cell(pt.spec->name)
        .cell(sim::schedule_kind_name(pt.kind))
        .cell(static_cast<std::uint64_t>(group.count("samples")))
        .cell(stat, 2)
        .cell(static_cast<std::uint64_t>(pt.spec->probs.size() - 1))
        .cell(p, 5);
    if (p < 1e-4) all_ok = false;
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "no distribution is rejected — agreement preserves "
                        "p_i(x) even under hostile schedules (Claim 8)");
}
