// E8 — the Phase Clock contract (paper §2.1, construction from [9]).
//
// Paper contract: Update-Clock costs O(1), Read-Clock costs Θ(log n), and
// for constants 0 < α1 <= α2, at least α1·n Update-Clock invocations are
// necessary and α2·n are sufficient to advance the clock by one —
// regardless of WHICH processors invoke it.
//
// Measurement: (a) invocations consumed per tick, normalized by n, swept
// over n and over who performs the updates (all processors round-robin vs
// a single processor doing everything — the "regardless of which" clause);
// (b) Read-Clock step cost divided by lg n, which must be a flat constant.
// Our construction loses a bounded fraction of increments to read-then-
// write races, which widens [α1, α2] by a constant — exactly what this
// experiment quantifies.
#include "bench/common.h"
#include "clock/phase_clock.h"
#include "sim/simulator.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::clockx;

namespace {

sim::ProcTask forever_updater(sim::Ctx& ctx, PhaseClock& clk) {
  for (;;) co_await clk.update(ctx);
}

struct TickCosts {
  std::vector<double> invocations_per_tick;  ///< For ticks 1..k.
  std::uint64_t read_cost = 0;
};

/// Drive updates under `kind` until `ticks` tick transitions have happened;
/// record the exact invocation count each transition consumed.
/// `solo`: grant all steps to processor 0 (the "regardless of which
/// processors" clause); otherwise round-robin over all n.
TickCosts measure(std::size_t n, double alpha, bool solo, std::uint64_t seed,
                  int ticks) {
  SeedTree seeds{seed};
  // "Regardless of which processors invoke it": either all n processors
  // update under a random interleaving, or a single processor does all the
  // updating alone.
  const std::size_t active = solo ? 1 : n;
  std::unique_ptr<sim::Schedule> sched;
  if (solo)
    sched = std::make_unique<sim::RoundRobinSchedule>(1);
  else
    sched = std::make_unique<sim::UniformRandomSchedule>(n, seeds.schedule());
  sim::Simulator sim(sim::SimConfig{active, 0, seed}, std::move(sched));
  ClockConfig cc;
  cc.nprocs = n;  // clock sized for n even when driven by one proc
  cc.alpha = alpha;
  PhaseClock clk(sim.memory(), cc);
  for (std::size_t p = 0; p < active; ++p)
    sim.spawn([&](sim::Ctx& c) { return forever_updater(c, clk); });

  TickCosts out;
  out.read_cost = clk.read_cost();
  std::uint64_t last_work = 0;
  for (int k = 1; k <= ticks; ++k) {
    const auto res = sim.run(
        50'000'000,
        [&] { return clk.exact_tick() >= static_cast<std::uint64_t>(k); }, 8);
    if (!res.predicate_hit) break;
    const std::uint64_t now = sim.total_work();
    // update() costs kUpdateCost steps; invocations = work / cost.
    out.invocations_per_tick.push_back(
        static_cast<double>(now - last_work) /
        static_cast<double>(PhaseClock::kUpdateCost));
    last_work = now;
  }
  return out;
}

struct Point {
  bool solo;
  std::size_t n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E8: Phase Clock contract — [alpha1*n, alpha2*n] bracket",
                "predicts invocations-per-tick/n inside a constant bracket "
                "independent of n AND of who updates; Read cost = Theta(lg n)");

  const double alpha = 6.0;

  std::vector<Point> grid;
  for (bool solo : {false, true})
    for (std::size_t n : opt.n_sweep(16, 512, 2048)) grid.push_back({solo, n});

  const auto groups =
      opt.sweep(grid, opt.seeds, [alpha](const Point& pt, int s) {
        batch::TrialResult r;
        const auto tc = measure(pt.n, alpha, pt.solo,
                                7000 + static_cast<std::uint64_t>(s), 8);
        if (tc.invocations_per_tick.size() < 4) {
          r.ok = false;
          return r;
        }
        // Skip tick 1 (start-up transient: empty slots).
        for (std::size_t k = 1; k < tc.invocations_per_tick.size(); ++k)
          r.sample("inv",
                   tc.invocations_per_tick[k] / static_cast<double>(pt.n));
        return r;
      });

  Table t({"driver", "n", "ticks", "inv/tick/n min", "mean", "max",
           "read_cost", "read/lgn"});
  bool all_ok = true;
  double bracket_lo = 1e18, bracket_hi = 0;

  std::size_t g = 0;
  for (bool solo : {false, true}) {
    for (std::size_t n : opt.n_sweep(16, 512, 2048)) {
      const auto& group = groups[g++];
      if (!group.all_ok()) all_ok = false;
      const auto& acc = group.sample("inv");
      if (acc.count() == 0) continue;
      const auto probe = measure(n, alpha, solo, 7000, 1);
      const double rc = static_cast<double>(probe.read_cost);
      t.row()
          .cell(solo ? "solo" : "all_procs")
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(acc.count()))
          .cell(acc.min(), 2)
          .cell(acc.mean(), 2)
          .cell(acc.max(), 2)
          .cell(static_cast<std::uint64_t>(probe.read_cost))
          .cell(rc / lg(n), 2);
      bracket_lo = std::min(bracket_lo, acc.min());
      bracket_hi = std::max(bracket_hi, acc.max());
      // Read-Clock = 3 lg n samples + 1: ratio must sit in [3, 4].
      if (rc / lg(n) < 2.9 || rc / lg(n) > 4.1) all_ok = false;
      // alpha1 necessity: a tick can never cost fewer than alpha
      // invocations per slot-recorded increment => >= alpha * n total? No:
      // losses only RAISE the cost.  Lower bound: alpha (tau/n).
      if (acc.min() < alpha - 1e-9) all_ok = false;
    }
  }
  opt.emit(t);

  // The bracket must be a CONSTANT: its width independent of n and driver.
  const double spread = bracket_hi / bracket_lo;
  std::printf("\nbracket: [%.2f, %.2f] * n invocations per tick (spread %.2fx)\n",
              bracket_lo, bracket_hi, spread);
  if (spread > 4.0) all_ok = false;

  return bench::verdict(all_ok,
                        "updates-per-tick stays inside a constant [a1*n, a2*n] "
                        "bracket for every n and driver mix, and Read-Clock "
                        "costs ~3*lg n steps — the §2.1 contract");
}
