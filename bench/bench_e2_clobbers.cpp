// E2 — Lemma 1: clobbers per bin.
//
// Paper claim: for any given phase, w.h.p. each bin suffers at most
// O(log n) clobbers (writes by tardy processors still working on an earlier
// phase).
//
// Measurement: run the standalone protocol across several phases under
// sleeper adversaries (which manufacture tardiness) and report the maximum
// clobbers observed in any bin, normalized by lg n.
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

namespace {

struct Point {
  sim::ScheduleKind kind;
  std::size_t n;
};

}  // namespace

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E2: Lemma 1 — clobbers per bin per phase",
                "predicts max clobbers/bin = O(log n) w.h.p. under tardy "
                "(sleeper) schedules; max/lg(n) should stay bounded as n "
                "grows");

  const auto kinds = {sim::ScheduleKind::kSleeper,
                      sim::ScheduleKind::kUniformRandom,
                      sim::ScheduleKind::kBurst};
  std::vector<Point> grid;
  for (auto kind : kinds)
    for (std::size_t n : opt.n_sweep(32, 512, 2048)) grid.push_back({kind, n});

  const auto groups =
      opt.sweep(grid, opt.seeds, [](const Point& pt, int s) {
        batch::TrialResult r;
        TestbedConfig cfg;
        cfg.n = pt.n;
        cfg.seed = 2000 + static_cast<std::uint64_t>(s);
        cfg.schedule = pt.kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        // Run long enough for ~4 phases.
        tb.run_more(
            static_cast<std::uint64_t>(450.0 * n_logn_loglogn(pt.n)) + 500000);
        for (const auto& rep : tb.audit().finalized()) {
          r.sample("clob_mean", rep.mean_clobbers());
          r.sample("clob_max", rep.max_clobbers());
        }
        return r;
      });

  Table t({"sched", "n", "phases", "clob_mean", "clob_max", "max/lg(n)"});
  bool all_ok = true;

  std::size_t g = 0;
  for (auto kind : kinds) {
    for (std::size_t n : opt.n_sweep(32, 512, 2048)) {
      const auto& group = groups[g++];
      const std::size_t phases = group.sample("clob_mean").count();
      if (phases == 0) continue;
      const double worst = group.sample("clob_max").max();
      const double norm = worst / lg(n);
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(phases))
          .cell(group.sample("clob_mean").mean(), 3)
          .cell(static_cast<std::uint64_t>(worst))
          .cell(norm, 2);
      // Bounded constant times lg n (generous: 25).
      if (norm > 25.0) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "max clobbers per bin stays within a constant "
                        "multiple of lg(n) — consistent with Lemma 1");
}
