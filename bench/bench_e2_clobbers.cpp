// E2 — Lemma 1: clobbers per bin.
//
// Paper claim: for any given phase, w.h.p. each bin suffers at most
// O(log n) clobbers (writes by tardy processors still working on an earlier
// phase).
//
// Measurement: run the standalone protocol across several phases under
// sleeper adversaries (which manufacture tardiness) and report the maximum
// clobbers observed in any bin, normalized by lg n.
#include "agreement/testbed.h"
#include "bench/common.h"
#include "util/math.h"
#include "util/stats.h"

using namespace apex;
using namespace apex::agreement;

int main(int argc, char** argv) {
  const auto opt = bench::Options::parse(argc, argv);
  bench::banner("E2: Lemma 1 — clobbers per bin per phase",
                "predicts max clobbers/bin = O(log n) w.h.p. under tardy "
                "(sleeper) schedules; max/lg(n) should stay bounded as n "
                "grows");

  Table t({"sched", "n", "phases", "clob_mean", "clob_max", "max/lg(n)"});
  bool all_ok = true;

  for (auto kind :
       {sim::ScheduleKind::kSleeper, sim::ScheduleKind::kUniformRandom,
        sim::ScheduleKind::kBurst}) {
    for (std::size_t n : opt.n_sweep(32, 512, 2048)) {
      Accumulator mean_acc;
      std::uint32_t worst = 0;
      std::size_t phases = 0;
      for (int s = 0; s < opt.seeds; ++s) {
        TestbedConfig cfg;
        cfg.n = n;
        cfg.seed = 2000 + static_cast<std::uint64_t>(s);
        cfg.schedule = kind;
        AgreementTestbed tb(cfg, uniform_task(1 << 20),
                            uniform_support(1 << 20));
        // Run long enough for ~4 phases.
        tb.run_more(
            static_cast<std::uint64_t>(450.0 * n_logn_loglogn(n)) + 500000);
        for (const auto& rep : tb.audit().finalized()) {
          mean_acc.add(rep.mean_clobbers());
          worst = std::max(worst, rep.max_clobbers());
          ++phases;
        }
      }
      if (phases == 0) continue;
      const double norm = static_cast<double>(worst) / lg(n);
      t.row()
          .cell(sim::schedule_kind_name(kind))
          .cell(static_cast<std::uint64_t>(n))
          .cell(static_cast<std::uint64_t>(phases))
          .cell(mean_acc.mean(), 3)
          .cell(static_cast<std::uint64_t>(worst))
          .cell(norm, 2);
      // Bounded constant times lg n (generous: 25).
      if (norm > 25.0) all_ok = false;
    }
  }
  opt.emit(t);
  return bench::verdict(all_ok,
                        "max clobbers per bin stays within a constant "
                        "multiple of lg(n) — consistent with Lemma 1");
}
