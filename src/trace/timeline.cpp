#include "trace/timeline.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace apex::trace {

Timeline::Timeline(std::vector<std::string> lane_names, std::uint64_t t0,
                   std::uint64_t t1, std::size_t width)
    : names_(std::move(lane_names)), t0_(t0), t1_(t1), width_(width) {
  if (t1_ <= t0_) throw std::invalid_argument("Timeline: t1 must exceed t0");
  if (width_ == 0) throw std::invalid_argument("Timeline: width must be > 0");
  rows_.assign(names_.size(), std::string(width_, ' '));
  ruler_.assign(width_, false);
}

std::size_t Timeline::bucket_of(std::uint64_t t) const {
  if (t <= t0_) return 0;
  if (t >= t1_) return width_ - 1;
  return static_cast<std::size_t>(static_cast<unsigned __int128>(t - t0_) *
                                  width_ / (t1_ - t0_));
}

void Timeline::add(const Span& s) {
  if (s.lane >= rows_.size())
    throw std::out_of_range("Timeline::add: lane out of range");
  if (s.end <= t0_ || s.begin >= t1_ || s.end <= s.begin) return;
  const std::size_t b0 = bucket_of(s.begin);
  const std::size_t b1 = std::max(b0, bucket_of(s.end - 1));
  for (std::size_t b = b0; b <= b1 && b < width_; ++b) rows_[s.lane][b] = s.tag;
}

void Timeline::add_ruler(std::uint64_t t) {
  if (t < t0_ || t >= t1_) return;
  ruler_[bucket_of(t)] = true;
}

std::string Timeline::render() const {
  std::size_t name_w = 0;
  for (const auto& n : names_) name_w = std::max(name_w, n.size());
  std::ostringstream os;
  for (std::size_t l = 0; l < rows_.size(); ++l) {
    os << names_[l] << std::string(name_w - names_[l].size(), ' ') << " ";
    std::string row = rows_[l];
    for (std::size_t b = 0; b < width_; ++b)
      if (ruler_[b] && row[b] == ' ') row[b] = '|';
    os << row << '\n';
  }
  os << std::string(name_w, ' ') << " " <<'t' << '=' << t0_ << " "
     << std::string(width_ > 20 ? width_ - 20 : 0, '-') << "> t=" << t1_
     << '\n';
  return os.str();
}

Timeline cycles_timeline(const std::vector<agreement::CycleRecord>& records,
                         std::size_t nprocs, std::size_t focus_bin,
                         sim::Word current_phase, std::uint64_t t0,
                         std::uint64_t t1, std::size_t width,
                         std::uint64_t stage_len) {
  std::vector<std::string> names;
  names.reserve(nprocs);
  for (std::size_t p = 0; p < nprocs; ++p)
    names.push_back("P" + std::to_string(p));
  Timeline tl(std::move(names), t0, t1, width);
  if (stage_len > 0)
    for (std::uint64_t t = t0 - (t0 % stage_len); t < t1; t += stage_len)
      tl.add_ruler(t);
  for (const auto& r : records) {
    if (r.proc >= nprocs) continue;
    if (r.bin != focus_bin) {
      tl.add({r.proc, r.s_time, r.f_time, '.'});
    } else if (r.phase != current_phase) {
      tl.add({r.proc, r.s_time, r.f_time, '!'});
    } else {
      tl.add({r.proc, r.s_time, r.d_time, 'S'});
      tl.add({r.proc, r.d_time, r.f_time, 'W'});
    }
  }
  return tl;
}

std::string bin_row(const agreement::BinArray& bins, std::size_t bin,
                    sim::Word phase) {
  std::string out;
  std::vector<sim::Word> distinct;
  const std::size_t b = bins.cells_per_bin();
  for (std::size_t j = 0; j < b; ++j) {
    if (j == bins.upper_half_begin()) out += '|';
    if (!bins.filled(bin, j, phase)) {
      out += '.';
      continue;
    }
    const sim::Word v = bins.value(bin, j);
    std::size_t idx = 0;
    while (idx < distinct.size() && distinct[idx] != v) ++idx;
    if (idx == distinct.size()) distinct.push_back(v);
    out += static_cast<char>('a' + (idx % 26));
  }
  return out;
}

std::string bin_heatmap(const agreement::BinArray& bins, sim::Word phase) {
  std::ostringstream os;
  for (std::size_t i = 0; i < bins.bins(); ++i)
    os << "bin" << i << (i < 10 ? "  " : " ") << bin_row(bins, i, phase)
       << '\n';
  return os.str();
}

ProcActivityTimeline::ProcActivityTimeline(std::size_t nprocs)
    : nprocs_(nprocs) {
  if (nprocs == 0)
    throw std::invalid_argument("ProcActivityTimeline: nprocs == 0");
}

void ProcActivityTimeline::on_steps(std::span<const sim::StepEvent> evs) {
  recorded_.reserve(recorded_.size() + evs.size());
  for (const sim::StepEvent& ev : evs) {
    char tag = '.';
    if (ev.op.kind == sim::Op::Kind::Read) tag = 'r';
    else if (ev.op.kind == sim::Op::Kind::Write) tag = 'w';
    recorded_.push_back(
        Mark{ev.time, static_cast<std::uint32_t>(ev.proc), tag});
  }
}

std::string ProcActivityTimeline::render(std::size_t width) const {
  if (recorded_.empty()) return "";
  std::vector<std::string> names;
  names.reserve(nprocs_);
  for (std::size_t p = 0; p < nprocs_; ++p)
    names.push_back("P" + std::to_string(p));
  const std::uint64_t t0 = recorded_.front().time;
  const std::uint64_t t1 = recorded_.back().time + 1;
  Timeline tl(std::move(names), t0, t1, width);
  for (const auto& m : recorded_) {
    if (m.proc >= nprocs_) continue;
    tl.add({m.proc, m.time, m.time + 1, m.tag});
  }
  return tl.render();
}

}  // namespace apex::trace
