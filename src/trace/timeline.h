// ASCII timeline & heatmap rendering for protocol inspection.
//
// The paper's Figures 3 and 4 are timing diagrams: cycles of different
// processors laid out against stage boundaries, with the bin's cells
// filling underneath.  This module renders the same pictures from recorded
// CycleRecords and a live BinArray, so examples and debugging sessions can
// SEE stabilizing structures and oscillations instead of inferring them
// from counters.  Everything here is out-of-band: rendering costs no model
// work.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "agreement/bin_array.h"
#include "agreement/protocol.h"
#include "sim/observer.h"

namespace apex::trace {

/// A half-open span [begin, end) of global work-time on some lane, drawn
/// with a tag character.
struct Span {
  std::size_t lane = 0;
  std::uint64_t begin = 0;
  std::uint64_t end = 0;
  char tag = 'x';
};

/// Fixed-width multi-lane timeline.  Time is compressed into `width`
/// buckets between [t0, t1); later-added spans overdraw earlier ones within
/// a bucket.
class Timeline {
 public:
  Timeline(std::vector<std::string> lane_names, std::uint64_t t0,
           std::uint64_t t1, std::size_t width = 72);

  void add(const Span& s);

  /// Vertical ruler marks (e.g. stage boundaries), drawn as '|' on every
  /// lane bucket they fall into (unless a span already claims it).
  void add_ruler(std::uint64_t t);

  /// Render: one line per lane, name-padded, plus a bottom axis line.
  std::string render() const;

  std::size_t width() const noexcept { return width_; }

 private:
  std::size_t bucket_of(std::uint64_t t) const;

  std::vector<std::string> names_;
  std::uint64_t t0_, t1_;
  std::size_t width_;
  std::vector<std::string> rows_;
  std::vector<bool> ruler_;
};

/// Build a per-processor timeline of agreement cycles from CycleRecords.
/// Cycles operating on `focus_bin` are drawn 'S' (search, S->D) then 'W'
/// (write/pad, D->F); cycles on other bins are drawn '.'; stale-phase
/// cycles (clobbers) are drawn '!'.
Timeline cycles_timeline(const std::vector<agreement::CycleRecord>& records,
                         std::size_t nprocs, std::size_t focus_bin,
                         sim::Word current_phase, std::uint64_t t0,
                         std::uint64_t t1, std::size_t width = 72,
                         std::uint64_t stage_len = 0);

/// One-line-per-bin heatmap of the bin array at `phase`:
/// '.' = empty cell, letters 'a','b',... = filled, letter identifies the
/// distinct value (so a unanimous bin is a run of a single letter and a
/// conflicted bin shows at least two letters).  A '|' separates the lower
/// and upper halves.
std::string bin_heatmap(const agreement::BinArray& bins, sim::Word phase);

/// Heatmap for a single bin (same encoding, no trailing newline).
std::string bin_row(const agreement::BinArray& bins, std::size_t bin,
                    sim::Word phase);

/// Step-level activity recorder: a StepObserver that joins the simulator's
/// observer chain (Simulator::add_observer — alongside audits and oracles)
/// and tallies, per processor, which kind of step each work unit was.
/// render() draws one lane per processor over the observed work interval:
/// 'r' = read, 'w' = write, '.' = local/none — the raw-schedule counterpart
/// of cycles_timeline() for eyeballing an adversary's interleaving.
class ProcActivityTimeline final : public sim::StepObserver {
 public:
  explicit ProcActivityTimeline(std::size_t nprocs);

  /// Span-native recorder (one reserve per batch, tag branch in a tight
  /// loop); on_step forwards as a span of one.
  void on_step(const sim::StepEvent& ev) override {
    on_steps(std::span<const sim::StepEvent>(&ev, 1));
  }
  void on_steps(std::span<const sim::StepEvent> evs) override;

  /// Render the recorded activity (empty string when nothing was observed).
  std::string render(std::size_t width = 72) const;

  std::uint64_t events() const noexcept { return recorded_.size(); }

 private:
  struct Mark {
    std::uint64_t time;
    std::uint32_t proc;
    char tag;
  };
  std::size_t nprocs_;
  std::vector<Mark> recorded_;
};

}  // namespace apex::trace
