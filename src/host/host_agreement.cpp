#include "host/host_agreement.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace apex::host {

HostAgreement::HostAgreement(HostConfig cfg, HostTaskFn task)
    : cfg_(cfg),
      task_(std::move(task)),
      n_(cfg.nthreads),
      b_(std::max<std::size_t>(4, cfg.beta * lg(cfg.nthreads))),
      clock_base_(0),
      bins_base_(cfg.nthreads),  // clock occupies [0, n)
      clock_tau_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(cfg.clock_alpha *
                                        static_cast<double>(cfg.nthreads)))),
      clock_samples_(3 * lg(cfg.nthreads)),
      mem_(cfg.nthreads + cfg.nthreads * b_),
      work_per_thread_(cfg.nthreads, 0),
      cycles_per_thread_(cfg.nthreads, 0) {}

bool HostAgreement::bin_filled(std::size_t bin, std::size_t cell,
                               std::uint32_t phase) const {
  return mem_.read(bin_addr(bin, cell)).stamp == phase;
}

std::vector<std::uint64_t> HostAgreement::upper_half_values(
    std::size_t bin, std::uint32_t phase) const {
  std::vector<std::uint64_t> vals;
  for (std::size_t j = b_ / 2; j < b_; ++j) {
    const HostCell c = mem_.read(bin_addr(bin, j));
    if (c.stamp != phase) continue;
    if (std::find(vals.begin(), vals.end(), c.value) == vals.end())
      vals.push_back(c.value);
  }
  return vals;
}

void HostAgreement::worker(std::size_t id) {
  apex::SeedTree seeds{cfg_.seed};
  apex::Rng rng = seeds.processor(id);
  std::uint64_t& work = work_per_thread_[id];
  std::uint64_t& cycles = cycles_per_thread_[id];
  const std::uint64_t stride = lg(n_);
  std::uint32_t phase = 1;
  std::uint64_t reader_clamp = 0;

  for (std::uint64_t iter = 0; !stop_.load(std::memory_order_relaxed);
       ++iter) {
    if ((iter + id) % stride == 0) {
      // Update-Clock: O(1).
      const std::size_t r = static_cast<std::size_t>(rng.below(n_));
      const HostCell c = mem_.read(clock_base_ + r);
      mem_.write(clock_base_ + r, c.value + 1, 0);
      work += 2;
      // Read-Clock: Θ(log n).
      std::uint64_t sampled = 0;
      for (std::size_t k = 0; k < clock_samples_; ++k) {
        const std::size_t s = static_cast<std::size_t>(rng.below(n_));
        sampled += mem_.read(clock_base_ + s).value;
      }
      work += clock_samples_ + 1;
      const double est = static_cast<double>(sampled) *
                         (static_cast<double>(n_) /
                          static_cast<double>(clock_samples_));
      reader_clamp = std::max(
          reader_clamp, static_cast<std::uint64_t>(est) / clock_tau_);
      phase = static_cast<std::uint32_t>(reader_clamp) + 1;
    }

    // One agreement cycle (Fig. 2).
    const std::size_t i = static_cast<std::size_t>(rng.below(n_));
    work += 1;
    // Binary search for first empty cell.
    std::ptrdiff_t lo = -1, hi = static_cast<std::ptrdiff_t>(b_);
    while (hi - lo > 1) {
      const std::ptrdiff_t mid = lo + (hi - lo) / 2;
      const HostCell c = mem_.read(bin_addr(i, static_cast<std::size_t>(mid)));
      work += 1;
      if (c.stamp == phase)
        lo = mid;
      else
        hi = mid;
    }
    const std::size_t j = static_cast<std::size_t>(hi);
    if (j == 0) {
      const std::uint64_t v = task_(i, rng);
      work += 1;
      mem_.write(bin_addr(i, 0), v, phase);
      work += 1;
    } else if (j < b_) {
      const HostCell prev = mem_.read(bin_addr(i, j - 1));
      work += 1;
      if (prev.stamp == phase) {
        mem_.write(bin_addr(i, j), prev.value, phase);
        work += 1;
      }
    }
    ++cycles;
  }
}

std::uint32_t HostAgreement::current_phase() const {
  std::uint64_t total = 0;
  for (std::size_t r = 0; r < n_; ++r)
    total += mem_.read(clock_base_ + r).value;
  return static_cast<std::uint32_t>(total / clock_tau_) + 1;
}

HostAgreement::Result HostAgreement::run(double timeout_seconds) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n_);
  for (std::size_t id = 0; id < n_; ++id)
    threads.emplace_back([this, id] { worker(id); });

  // Check the scannable Theorem 1 properties for phase `ph`; on success
  // capture the agreed values into `vals`.  A scan torn by a phase rollover
  // simply fails and is retried against the new phase.
  auto satisfied_at = [&](std::uint32_t ph, std::vector<std::uint64_t>& vals) {
    vals.assign(n_, 0);
    for (std::size_t i = 0; i < n_; ++i) {
      std::size_t filled = 0;
      for (std::size_t j = b_ / 2; j < b_; ++j) filled += bin_filled(i, j, ph);
      if (2 * filled < (b_ - b_ / 2)) return false;
      const auto uh = upper_half_values(i, ph);
      if (uh.size() != 1) return false;
      vals[i] = uh[0];
    }
    // The phase must still be live: a finished phase's cells may already be
    // partially overwritten by its successor mid-capture.
    return current_phase() == ph;
  };

  Result out;
  std::vector<std::uint64_t> vals;
  for (;;) {
    const std::uint32_t ph = current_phase();
    if (satisfied_at(ph, vals)) {
      out.satisfied = true;
      out.phase = ph;
      out.values = vals;
      break;
    }
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    if (elapsed > timeout_seconds) break;
    std::this_thread::yield();
  }

  stop_.store(true, std::memory_order_relaxed);
  for (auto& t : threads) t.join();

  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (auto w : work_per_thread_) out.total_work += w;
  for (auto c : cycles_per_thread_) out.cycles += c;
  if (!out.satisfied) out.values.assign(n_, 0);
  return out;
}

}  // namespace apex::host
