// Real-thread host substrate: timestamped words on std::atomic.
//
// The A-PRAM model postulates that a word and its timestamp are read or
// written together in ONE atomic operation (paper §1).  On real hardware we
// realize that by packing both into a single 64-bit word: 40 bits of value,
// 24 bits of stamp (the paper needs only O(log n) stamp bits).  All
// accesses are plain loads/stores — no compare-and-swap anywhere, matching
// the model's "no compound read-write atomicity".
//
// Memory order: every access uses seq_cst.  The protocols tolerate ANY
// interleaving (that is the point of the paper), so relaxed orders would
// also be correct for the protocol state itself; seq_cst keeps the
// out-of-band checkers simple and this port is about fidelity, not
// throughput.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace apex::host {

struct HostCell {
  std::uint64_t value = 0;
  std::uint32_t stamp = 0;
};

struct Pack {
  static constexpr int kStampBits = 24;
  static constexpr std::uint64_t kStampMask = (1ULL << kStampBits) - 1;
  static constexpr std::uint64_t kValueLimit = 1ULL << (64 - kStampBits);

  static std::uint64_t pack(std::uint64_t value, std::uint32_t stamp) {
    if (value >= kValueLimit)
      throw std::out_of_range("host::Pack: value exceeds 40 bits");
    return (value << kStampBits) | (stamp & kStampMask);
  }
  static std::uint64_t value_of(std::uint64_t w) { return w >> kStampBits; }
  static std::uint32_t stamp_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w & kStampMask);
  }
};

class HostMemory {
 public:
  explicit HostMemory(std::size_t words) : cells_(words) {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }

  std::size_t size() const noexcept { return cells_.size(); }

  HostCell read(std::size_t addr) const {
    const std::uint64_t w = cells_.at(addr).load(std::memory_order_seq_cst);
    return HostCell{Pack::value_of(w), Pack::stamp_of(w)};
  }

  void write(std::size_t addr, std::uint64_t value, std::uint32_t stamp) {
    cells_.at(addr).store(Pack::pack(value, stamp), std::memory_order_seq_cst);
  }

 private:
  // deque-like stability not needed; atomics are not movable, so the vector
  // is sized once in the constructor and never resized.
  std::vector<std::atomic<std::uint64_t>> cells_;
};

}  // namespace apex::host
