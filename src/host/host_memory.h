// Real-thread host substrate: timestamped words on std::atomic.
//
// The A-PRAM model postulates that a word and its timestamp are read or
// written together in ONE atomic operation (paper §1).  On real hardware we
// realize that by packing both into a single 64-bit word: 40 bits of value,
// 24 bits of stamp (the paper needs only O(log n) stamp bits).  All
// accesses are plain loads/stores — no compare-and-swap anywhere, matching
// the model's "no compound read-write atomicity".
//
// Memory order: callers choose per access.  The default is seq_cst, which
// keeps out-of-band pollers (HostAgreement's scanner) trivially correct.
// The virtualized executor (host_executor.cpp) downgrades protocol words to
// relaxed/acq-rel orders — each downgrade carries a proof obligation at its
// use site arguing why the weaker order cannot introduce any behavior a
// legal oblivious adversary could not already produce — and offers a
// seq_cst fidelity fallback (HostExecConfig::seq_cst).  The one property
// every order shares, and the only one the word+stamp discipline consumes,
// is per-word atomicity + coherence: a load returns some value previously
// stored to THAT word, never a torn mix.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <vector>

namespace apex::host {

struct HostCell {
  std::uint64_t value = 0;
  std::uint32_t stamp = 0;
};

struct Pack {
  static constexpr int kStampBits = 24;
  static constexpr std::uint64_t kStampMask = (1ULL << kStampBits) - 1;
  static constexpr std::uint64_t kValueLimit = 1ULL << (64 - kStampBits);

  static std::uint64_t pack(std::uint64_t value, std::uint32_t stamp) {
    if (value >= kValueLimit)
      throw std::out_of_range("host::Pack: value exceeds 40 bits");
    return (value << kStampBits) | (stamp & kStampMask);
  }
  static std::uint64_t value_of(std::uint64_t w) { return w >> kStampBits; }
  static std::uint32_t stamp_of(std::uint64_t w) {
    return static_cast<std::uint32_t>(w & kStampMask);
  }
};

class HostMemory {
 public:
  explicit HostMemory(std::size_t words) : cells_(words) {
    for (auto& c : cells_) c.store(0, std::memory_order_relaxed);
  }

  std::size_t size() const noexcept { return cells_.size(); }

  HostCell read(std::size_t addr,
                std::memory_order mo = std::memory_order_seq_cst) const {
    const std::uint64_t w = cells_.at(addr).load(mo);
    return HostCell{Pack::value_of(w), Pack::stamp_of(w)};
  }

  void write(std::size_t addr, std::uint64_t value, std::uint32_t stamp,
             std::memory_order mo = std::memory_order_seq_cst) {
    cells_.at(addr).store(Pack::pack(value, stamp), mo);
  }

  // Unchecked variants for hot paths whose addresses were validated when
  // the layout was built (the executor proves every plan address in range
  // at construction; Debug builds keep the assert).  Mirrors the simulator
  // fast path's Memory::at_unchecked contract.
  HostCell read_unchecked(std::size_t addr, std::memory_order mo) const {
    assert(addr < cells_.size());
    const std::uint64_t w = cells_[addr].load(mo);
    return HostCell{Pack::value_of(w), Pack::stamp_of(w)};
  }

  void write_unchecked(std::size_t addr, std::uint64_t value,
                       std::uint32_t stamp, std::memory_order mo) {
    assert(addr < cells_.size());
    cells_[addr].store(Pack::pack(value, stamp), mo);
  }

 private:
  // deque-like stability not needed; atomics are not movable, so the vector
  // is sized once in the constructor and never resized.
  std::vector<std::atomic<std::uint64_t>> cells_;
};

}  // namespace apex::host
