#include "host/host_executor.h"

#include <chrono>
#include <limits>
#include <numeric>
#include <thread>

#include "graph/csr.h"
#include "pram/ir.h"

namespace apex::host {

namespace {

/// Domain-separation tag for the kRandom interleave policy's thread-private
/// streams.  Derived from the config seed only — the policy never reads
/// protocol state, so it stays an oblivious adversary by construction.
constexpr std::uint64_t kInterleaveTag = 0x17E21EAFULL;

std::size_t clamp_threads(std::size_t os_threads, std::size_t nprocs) {
  if (os_threads == 0) return nprocs;          // legacy: one thread per proc
  return std::min(std::max<std::size_t>(1, os_threads), nprocs);
}

}  // namespace

const char* interleave_name(Interleave p) noexcept {
  switch (p) {
    case Interleave::kRoundRobin: return "rr";
    case Interleave::kRandom: return "random";
    case Interleave::kBlock: return "block";
    case Interleave::kPartition: return "partition";
  }
  return "?";
}

bool parse_interleave(const std::string& s, Interleave& out) noexcept {
  if (s == "rr" || s == "round_robin") out = Interleave::kRoundRobin;
  else if (s == "random") out = Interleave::kRandom;
  else if (s == "block") out = Interleave::kBlock;
  else if (s == "partition") out = Interleave::kPartition;
  else return false;
  return true;
}

HostExecutor::HostExecutor(const pram::Program& program, HostExecConfig cfg)
    : prog_(&program),
      cfg_(cfg),
      n_(program.nthreads()),
      nthreads_(clamp_threads(cfg.os_threads, program.nthreads())),
      b_(std::max<std::size_t>(4, cfg.beta * lg(program.nthreads()))),
      clock_base_(0),
      bins_base_(n_),
      var_base_(n_ + n_ * b_),
      clock_tau_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(cfg.clock_alpha *
                                        static_cast<double>(n_)))),
      clock_samples_(std::max<std::size_t>(1, 3 * lg(n_))),
      stride_(std::max<std::uint64_t>(1, lg(n_))),
      end_tick_(2 * static_cast<std::uint64_t>(program.nsteps())),
      mem_(n_ + n_ * b_ + program.nvars() * cfg.generations),
      done_(nthreads_),
      error_slot_(nthreads_) {
  if (cfg.generations < 2)
    throw std::invalid_argument("HostExecutor: generations must be >= 2");
  if (cfg_.block == 0) cfg_.block = 1;
  if (mem_.size() >= std::numeric_limits<std::uint32_t>::max())
    throw std::invalid_argument("HostExecutor: layout exceeds 32-bit plans");

  // --- virtual processors + slices ------------------------------------------
  procs_.resize(n_);
  apex::SeedTree seeds{cfg_.seed};
  for (std::size_t p = 0; p < n_; ++p) {
    procs_[p].rng = seeds.processor(p);
    // First clock update of proc id lands at visit (stride - id) mod stride,
    // preserving the original (iter + id) % stride staggering without a
    // per-visit hardware divide (PR-3 lesson: divides dominate hot loops).
    procs_[p].iter = (stride_ - p % stride_) % stride_;
  }
  slice_.resize(nthreads_ + 1, 0);
  if (cfg_.interleave == Interleave::kPartition && !cfg_.proc_weights.empty()) {
    // Weight-balanced slices: align OS-thread ownership with the graph
    // partitioner's placement so the thread that owns a CSR partition's
    // processors is the one walking its rows.
    if (cfg_.proc_weights.size() != n_)
      throw std::invalid_argument(
          "HostExecutor: proc_weights size != logical processor count");
    const auto cuts = graph::partition_balanced(cfg_.proc_weights, nthreads_);
    for (std::size_t t = 0; t <= nthreads_; ++t) slice_[t] = cuts[t];
  } else {
    const std::size_t base = n_ / nthreads_, rem = n_ % nthreads_;
    for (std::size_t t = 0; t < nthreads_; ++t)
      slice_[t + 1] = slice_[t] + base + (t < rem ? 1 : 0);
  }

  // --- per-instruction operand plans ----------------------------------------
  // Hoist every address computation and writer-table lookup out of the hot
  // loop: one pass at construction proves all addresses in range (so the
  // loop may use the unchecked accessors) and resolves operand slots +
  // expected stamps per (step, instruction).
  const std::size_t nsteps = prog_->nsteps();
  plans_.resize(nsteps * n_);
  step_stamp_.resize(nsteps);
  for (std::size_t s = 0; s < nsteps; ++s) {
    step_stamp_[s] = static_cast<std::uint32_t>(
        pram::stamp_of_step(static_cast<std::uint32_t>(s)));
    for (std::size_t i = 0; i < n_; ++i) {
      const pram::Instr& ins = prog_->step(s).instrs[i];
      OpPlan& pl = plans_[s * n_ + i];
      pl.op = ins.op;
      pl.nreads = static_cast<std::uint8_t>(pram::reads_of(ins.op));
      pl.writes = pram::writes_dest(ins.op);
      pl.ins = &ins;
      const auto& w = prog_->writers(s, i);
      if (pl.nreads >= 1) {
        pl.x_want = static_cast<std::uint32_t>(pram::stamp_of_writer(w.x));
        pl.x_addr = static_cast<std::uint32_t>(var_addr(ins.x, pl.x_want));
      }
      if (pl.nreads >= 2) {
        pl.y_want = static_cast<std::uint32_t>(pram::stamp_of_writer(w.y));
        pl.y_addr = static_cast<std::uint32_t>(var_addr(ins.y, pl.y_want));
      }
      if (pl.nreads >= 3) {
        pl.c_want = static_cast<std::uint32_t>(pram::stamp_of_writer(w.c));
        pl.c_addr = static_cast<std::uint32_t>(var_addr(ins.c, pl.c_want));
      }
      if (pl.writes)
        pl.z_addr = static_cast<std::uint32_t>(var_addr(ins.z, step_stamp_[s]));
    }
  }
}

void HostExecutor::record_error(std::size_t tid, const char* what) {
  // Lock-free first-fault capture: the slot is thread-owned, the CAS
  // publishes exactly one winner; run() reads both after the joins (which
  // synchronize), so no lock is needed anywhere.
  error_slot_[tid] = what;
  std::int32_t expected = -1;
  first_error_.compare_exchange_strong(expected,
                                       static_cast<std::int32_t>(tid),
                                       std::memory_order_acq_rel);
}

void HostExecutor::worker(std::size_t tid) {
  // A worker must never leak an exception out of its std::thread (that is
  // std::terminate).  Pack-width overflows and layout bugs land here: record
  // the first message, wave every thread off, and report via run().
  try {
    if (cfg_.seq_cst)
      worker_body<true>(tid);
    else
      worker_body<false>(tid);
    done_[tid].store(abort_.load(std::memory_order_relaxed) ? 2 : 1,
                     std::memory_order_seq_cst);
  } catch (const std::exception& e) {
    record_error(tid, e.what());
    abort_.store(true, std::memory_order_relaxed);
    done_[tid].store(2, std::memory_order_seq_cst);  // exited, not clean
  }
}

// --- memory-order selection (the downgrade audit) ---------------------------
// The pre-virtualization port used seq_cst on every protocol word.  The hot
// path now runs the audited orders below; cfg.seq_cst (kSeqCst here — the
// orders must be compile-time constants to reach codegen) restores the
// original discipline exactly.  Per-word atomicity + coherence — the only
// property the word+stamp discipline consumes — is order-independent; each
// downgrade argues the residual reorderings are behaviors a legal oblivious
// adversary could already produce.
//
//   word class        load     store    proof obligation (details at use)
//   clock slots       relaxed  relaxed  counters; staleness + lost updates
//                                       are already in the model
//   bins              acquire  release  publication of (value, stamp)
//   generation slots  acquire  release  commit publication; exact-stamp
//                                       acceptance pairs with release
template <bool kSeqCst>
struct Orders {
  static constexpr std::memory_order kLdClock =
      kSeqCst ? std::memory_order_seq_cst : std::memory_order_relaxed;
  static constexpr std::memory_order kStClock = kLdClock;
  static constexpr std::memory_order kLd =
      kSeqCst ? std::memory_order_seq_cst : std::memory_order_acquire;
  static constexpr std::memory_order kSt =
      kSeqCst ? std::memory_order_seq_cst : std::memory_order_release;
};

template <bool kSeqCst>
bool HostExecutor::eval(HostProc& vp, std::size_t s, std::size_t i,
                        std::uint64_t& out) {
  constexpr std::memory_order ld_ = Orders<kSeqCst>::kLd;
  const OpPlan& pl = plans_[s * n_ + i];
  if (pl.op == pram::OpCode::kNop) {
    vp.work += 1;
    out = 0;
    return true;
  }
  std::uint64_t xv = 0, yv = 0, cv = 0;
  // Operand reads accept only the exact expected stamp; a miss is a normal
  // retry (the writer's commit has not landed yet).  Acquire load: pairs
  // with the commit's release store, so an ACCEPTED operand's value is the
  // value that commit published — the same happens-before edge seq_cst
  // gave, at plain-load cost on x86/ARM ldar.
  if (pl.nreads >= 1) {
    const HostCell c = mem_.read_unchecked(pl.x_addr, ld_);
    vp.work += 1;
    if (c.stamp != pl.x_want) {
      ++vp.misses;
      return false;
    }
    xv = c.value;
  }
  if (pl.op == pram::OpCode::kGather) {
    // Data-dependent addressing: resolve the computed target against the
    // sparse last-writer index (a binary search over that variable's write
    // steps — graph-scale programs cannot afford the dense per-step row the
    // old layout snapshotted), same timestamp discipline as a static
    // operand.  Out-of-window index reads 0.
    const std::uint32_t target = pram::gather_target(*pl.ins, xv);
    std::uint64_t gv = 0;
    if (target != pram::kGatherOutOfRange) {
      const std::uint32_t want = static_cast<std::uint32_t>(
          pram::stamp_of_writer(prog_->last_writer_before(s, target)));
      const std::size_t addr = var_addr(target, want);
      const HostCell c = mem_.read_unchecked(addr, ld_);
      vp.work += 1;
      if (c.stamp != want) {
        ++vp.misses;
        return false;
      }
      gv = c.value;
    }
    vp.work += 1;
    out = gv;
    return true;
  }
  if (pl.nreads >= 2) {
    const HostCell c = mem_.read_unchecked(pl.y_addr, ld_);
    vp.work += 1;
    if (c.stamp != pl.y_want) {
      ++vp.misses;
      return false;
    }
    yv = c.value;
  }
  if (pl.nreads >= 3) {
    const HostCell c = mem_.read_unchecked(pl.c_addr, ld_);
    vp.work += 1;
    if (c.stamp != pl.c_want) {
      ++vp.misses;
      return false;
    }
    cv = c.value;
  }
  if (pl.op == pram::OpCode::kGatherDyn) {
    // Data-DEPENDENT window: base and bound arrived through the x/y/c
    // operand reads above (index, base offset, bound); the static segment
    // caps the computed target, and the sparse last-writer index answers
    // the stamp question exactly as for kGather.
    const std::uint32_t target = pram::gather_dyn_target(*pl.ins, xv + yv, cv);
    std::uint64_t gv = 0;
    if (target != pram::kGatherOutOfRange) {
      const std::uint32_t want = static_cast<std::uint32_t>(
          pram::stamp_of_writer(prog_->last_writer_before(s, target)));
      const std::size_t addr = var_addr(target, want);
      const HostCell c = mem_.read_unchecked(addr, ld_);
      vp.work += 1;
      if (c.stamp != want) {
        ++vp.misses;
        return false;
      }
      gv = c.value;
    }
    vp.work += 1;
    out = gv;
    return true;
  }
  vp.work += 1;  // the basic computation / random draw
  switch (pl.op) {
    case pram::OpCode::kRandBelow:
      out = pl.ins->imm == 0 ? 0 : vp.rng.below(pl.ins->imm);
      return true;
    case pram::OpCode::kCoin:
      out = vp.rng.uniform() * 4294967296.0 <
                    static_cast<double>(pl.ins->imm)
                ? 1
                : 0;
      return true;
    default:
      out = pram::eval_deterministic(*pl.ins, xv, yv, cv);
      return true;
  }
}

template <bool kSeqCst>
bool HostExecutor::visit(HostProc& vp) {
  constexpr std::memory_order ld_clock_ = Orders<kSeqCst>::kLdClock;
  constexpr std::memory_order st_clock_ = Orders<kSeqCst>::kStClock;
  constexpr std::memory_order ld_ = Orders<kSeqCst>::kLd;
  constexpr std::memory_order st_ = Orders<kSeqCst>::kSt;
  if (vp.iter == 0) {
    vp.iter = stride_ - 1;
    // Update-Clock then Read-Clock (sampled estimate, monotone clamp).
    // Relaxed on every clock word: each slot is an independent counter and
    // the construction already tolerates (a) arbitrarily stale reads — a
    // legal adversary can hold this processor between any read and its next
    // access, which is observationally identical to reading an old value —
    // and (b) lost updates from racing read-increment-write pairs, which
    // occur under seq_cst too (the race is at protocol level, not memory
    // level).  No other word's value is ever inferred from a clock read, so
    // no release/acquire pairing is being bypassed.
    const std::size_t slot = static_cast<std::size_t>(vp.rng.below(n_));
    const HostCell c = mem_.read_unchecked(clock_base_ + slot, ld_clock_);
    mem_.write_unchecked(clock_base_ + slot, c.value + 1, 0, st_clock_);
    vp.work += 2;
    std::uint64_t sampled = 0;
    for (std::size_t k = 0; k < clock_samples_; ++k)
      sampled +=
          mem_.read_unchecked(clock_base_ + vp.rng.below(n_), ld_clock_).value;
    vp.work += clock_samples_ + 1;
    const double est = static_cast<double>(sampled) *
                       (static_cast<double>(n_) /
                        static_cast<double>(clock_samples_));
    vp.clamp =
        std::max(vp.clamp, static_cast<std::uint64_t>(est) / clock_tau_);
    vp.tick = vp.clamp;
    if (vp.tick >= end_tick_) {
      vp.done = true;
      return true;
    }
  } else {
    --vp.iter;
  }

  const std::size_t s = static_cast<std::size_t>(vp.tick >> 1);
  const std::uint32_t stamp = step_stamp_[s];
  const std::size_t i = static_cast<std::size_t>(vp.rng.below(n_));
  vp.work += 1;  // the random task choice
  const std::size_t brow = bins_base_ + i * b_;

  if ((vp.tick & 1) == 0) {
    // Compute subphase: one bin-array agreement cycle (Fig. 2).  Bin loads
    // are acquire / bin stores release: a cell's (value, stamp) pair is
    // complete in its single word (no ordering needed for integrity), and
    // the release/acquire pairing preserves the copy-forward provenance
    // argument — a cell observed with the current stamp happens-after the
    // write that published it, so the value copied up from cell j-1 is a
    // genuinely published proposal, exactly as under seq_cst.
    std::ptrdiff_t lo = -1, hi = static_cast<std::ptrdiff_t>(b_);
    while (hi - lo > 1) {
      const std::ptrdiff_t mid = lo + (hi - lo) / 2;
      const HostCell c =
          mem_.read_unchecked(brow + static_cast<std::size_t>(mid), ld_);
      vp.work += 1;
      if (c.stamp == stamp)
        lo = mid;
      else
        hi = mid;
    }
    const std::size_t j = static_cast<std::size_t>(hi);
    if (j == 0) {
      std::uint64_t v;
      if (eval<kSeqCst>(vp, s, i, v)) {
        mem_.write_unchecked(brow, v, stamp, st_);
        vp.work += 1;
      }
    } else if (j < b_) {
      const HostCell prev = mem_.read_unchecked(brow + j - 1, ld_);
      vp.work += 1;
      if (prev.stamp == stamp) {
        mem_.write_unchecked(brow + j, prev.value, stamp, st_);
        vp.work += 1;
      }
    }
  } else {
    // Copy subphase: fetch the agreed NewVal[i] from the bin's upper
    // half and commit it to z_i's generation slot.
    const OpPlan& pl = plans_[s * n_ + i];
    if (!pl.writes) return false;
    bool got = false;
    std::uint64_t v = 0;
    for (std::size_t j = b_ / 2; j < b_; ++j) {
      const HostCell c = mem_.read_unchecked(brow + j, ld_);
      vp.work += 1;
      if (c.stamp == stamp) {
        v = c.value;
        got = true;
        break;
      }
    }
    if (got) {
      // Never regress a newer generation.  Real threads have UNBOUNDED
      // tick-estimate staleness (the OS can park a thread across whole
      // phases), so a woken straggler may re-run a copy task from G or
      // more steps ago — blindly storing would clobber the newer write
      // sharing the slot (stamp congruent mod G) with a stale value.
      // The simulated executor needs no guard: its estimate skew is a
      // couple of ticks, far inside the G-generation window.  The
      // read+write pair below is not atomic, but shrinking the race from
      // "parked anywhere since the task was chosen" to "parked between
      // these two instructions AND for >= 2(G-1) ticks" makes it
      // vanishingly unlikely rather than routine — and the post-run
      // audit + repair pass (audit_and_repair) catches what remains.
      // Commit store is release (pairs with the operand acquire above);
      // the guard read is acquire.  Seq_cst would additionally order this
      // commit against commits to OTHER slots in a global sequence, but
      // no reader ever infers one slot's state from another's, so that
      // ordering is never consumed.
      const HostCell cur = mem_.read_unchecked(pl.z_addr, ld_);
      vp.work += 1;
      if (cur.stamp <= stamp) {
        mem_.write_unchecked(pl.z_addr, v, stamp, st_);
        vp.work += 1;
      }
    }
  }
  return false;
}

template <bool kSeqCst>
void HostExecutor::worker_body(std::size_t tid) {
  const std::size_t lo = slice_[tid], hi = slice_[tid + 1];
  std::size_t alive = hi - lo;
  switch (cfg_.interleave) {
    case Interleave::kPartition:  // rr sweep; only the slice bounds differ
    case Interleave::kRoundRobin: {
      while (alive > 0 && !abort_.load(std::memory_order_relaxed)) {
        for (std::size_t p = lo; p < hi; ++p) {
          HostProc& vp = procs_[p];
          if (vp.done) continue;
          if (visit<kSeqCst>(vp)) --alive;
        }
      }
      break;
    }
    case Interleave::kRandom: {
      std::vector<std::size_t> active(hi - lo);
      std::iota(active.begin(), active.end(), lo);
      apex::Rng policy(
          apex::mix64(apex::mix64(cfg_.seed, kInterleaveTag), tid));
      while (!active.empty() && !abort_.load(std::memory_order_relaxed)) {
        const std::size_t k =
            static_cast<std::size_t>(policy.below(active.size()));
        const std::size_t p = active[k];
        if (visit<kSeqCst>(procs_[p])) {
          active[k] = active.back();
          active.pop_back();
        }
      }
      break;
    }
    case Interleave::kBlock: {
      while (alive > 0 && !abort_.load(std::memory_order_relaxed)) {
        for (std::size_t p = lo; p < hi; ++p) {
          HostProc& vp = procs_[p];
          if (vp.done) continue;
          for (std::size_t b = 0; b < cfg_.block; ++b)
            if (visit<kSeqCst>(vp)) {
              --alive;
              break;
            }
          if (abort_.load(std::memory_order_relaxed)) break;
        }
      }
      break;
    }
  }
}

void HostExecutor::audit_and_repair(HostExecResult& out) {
  // Commit audit (see header): every variable's final value must carry its
  // last writer's stamp.  A tardy ultra-stale store cannot forge a newer
  // stamp, so damage is always visible here.  Quiescent (threads joined),
  // so the reads are exact and the repair below is race-free.
  if (prog_->nsteps() == 0) return;
  const std::size_t last = prog_->nsteps() - 1;
  // One pass over the final step marks its writes; the per-variable loop
  // below then costs a binary search each instead of rescanning the step's
  // P instructions per variable (O(nvars * P) — minutes at graph scale).
  std::vector<bool> last_writes(prog_->nvars(), false);
  for (const pram::Instr& ins : prog_->step(last).instrs)
    if (pram::writes_dest(ins.op)) last_writes[ins.z] = true;
  for (std::uint32_t v = 0; v < prog_->nvars(); ++v) {
    // last_writer_before(last, v) excludes the final step itself.
    const std::uint32_t writer =
        last_writes[v] ? static_cast<std::uint32_t>(last)
                       : prog_->last_writer_before(last, v);
    if (writer == pram::kInitial) continue;
    const std::uint32_t want =
        static_cast<std::uint32_t>(pram::stamp_of_step(writer));
    const std::size_t slot = var_addr(v, want);
    if (mem_.read(slot).stamp == want) continue;

    // Audited-stale slot.  The agreed value for (writer, v) may still be
    // published in the writer instruction's bin: the upper half is the
    // domain of Theorem 1's uniqueness property, so any upper cell carrying
    // the wanted stamp holds THE agreed value — re-committing it is exactly
    // the Copy subphase replayed at quiescence, hence sound.  If every
    // upper cell has been recycled by later phases (stamp moved on), the
    // value is unrecoverable and the slot stays in lost_commits.
    bool repaired = false;
    if (cfg_.repair) {
      std::size_t task = n_;
      const auto& instrs = prog_->step(writer).instrs;
      for (std::size_t i = 0; i < n_; ++i)
        if (pram::writes_dest(instrs[i].op) && instrs[i].z == v) {
          task = i;  // EREW: at most one writer instruction per variable
          break;
        }
      // Bounded retries: at quiescence one re-commit + re-audit suffices,
      // but the loop keeps the pass correct even if a future caller runs
      // it concurrently with stragglers.
      for (int attempt = 0; attempt < 3 && task < n_ && !repaired;
           ++attempt) {
        bool found = false;
        for (std::size_t j = b_ / 2; j < b_; ++j) {
          const HostCell c = mem_.read(bin_addr(task, j));
          if (c.stamp == want) {
            mem_.write(slot, c.value, want);
            found = true;
            break;
          }
        }
        if (!found) break;  // bin recycled: unrepairable
        repaired = mem_.read(slot).stamp == want;  // re-audit
      }
    }
    if (repaired)
      ++out.repaired_commits;
    else
      ++out.lost_commits;
  }
}

HostExecResult HostExecutor::run() {
  const auto t0 = std::chrono::steady_clock::now();
  if (end_tick_ == 0) {
    // Zero-step program: every processor is already past the final tick.
    // The old executor's loop checked `tick >= end_tick` before its first
    // step; the virtualized visit() only re-checks at clock updates, so a
    // run would index the empty per-step plan tables — exit up front.
    HostExecResult out;
    out.completed = true;
    out.memory.assign(prog_->nvars(), 0);
    out.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return out;
  }
  std::vector<std::thread> threads;
  threads.reserve(nthreads_);
  for (std::size_t tid = 0; tid < nthreads_; ++tid)
    threads.emplace_back([this, tid] { worker(tid); });

  // Watchdog: abort stragglers past the deadline (never triggers on a
  // healthy run — the phase clock terminates every worker).
  std::thread watchdog([&] {
    for (;;) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      bool all = true;
      for (std::size_t tid = 0; tid < nthreads_; ++tid)
        all &= (done_[tid].load(std::memory_order_seq_cst) != 0);
      if (all) return;
      if (elapsed > cfg_.timeout_seconds) {
        abort_.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : threads) t.join();
  watchdog.join();

  HostExecResult out;
  const std::int32_t err = first_error_.load(std::memory_order_acquire);
  if (err >= 0) out.error = error_slot_[static_cast<std::size_t>(err)];
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.completed = true;
  for (std::size_t tid = 0; tid < nthreads_; ++tid)
    out.completed &= (done_[tid].load(std::memory_order_seq_cst) == 1);
  for (const HostProc& vp : procs_) {
    out.total_work += vp.work;
    out.stamp_misses += vp.misses;
  }

  if (cfg_.preaudit_fault) cfg_.preaudit_fault(mem_);
  if (out.completed) audit_and_repair(out);

  // Freshest generation slot wins (after repair, so a repaired commit is
  // what extraction sees).
  out.memory.assign(prog_->nvars(), 0);
  for (std::size_t v = 0; v < prog_->nvars(); ++v) {
    std::uint32_t best_stamp = 0;
    std::uint64_t best_value = 0;
    for (std::size_t g = 0; g < cfg_.generations; ++g) {
      const HostCell c = mem_.read(var_base_ + v * cfg_.generations + g);
      if (c.stamp >= best_stamp) {
        best_stamp = c.stamp;
        best_value = c.value;
      }
    }
    out.memory[v] = best_value;
  }
  return out;
}

}  // namespace apex::host
