#include "host/host_executor.h"

#include <chrono>
#include <optional>
#include <thread>

#include "pram/ir.h"

namespace apex::host {

HostExecutor::HostExecutor(const pram::Program& program, HostExecConfig cfg)
    : prog_(&program),
      cfg_(cfg),
      n_(program.nthreads()),
      b_(std::max<std::size_t>(4, cfg.beta * lg(program.nthreads()))),
      clock_base_(0),
      bins_base_(n_),
      var_base_(n_ + n_ * b_),
      clock_tau_(std::max<std::uint64_t>(
          1, static_cast<std::uint64_t>(cfg.clock_alpha *
                                        static_cast<double>(n_)))),
      clock_samples_(3 * lg(n_)),
      mem_(n_ + n_ * b_ + program.nvars() * cfg.generations),
      work_per_thread_(n_, 0),
      miss_per_thread_(n_, 0),
      done_(new std::atomic<std::uint8_t>[n_]) {
  for (std::size_t i = 0; i < n_; ++i)
    done_[i].store(0, std::memory_order_relaxed);
  if (cfg.generations < 2)
    throw std::invalid_argument("HostExecutor: generations must be >= 2");
}

void HostExecutor::worker(std::size_t id) {
  // A worker must never leak an exception out of its std::thread (that is
  // std::terminate).  Pack-width overflows and layout bugs land here: record
  // the first message, wave every thread off, and report via run().
  try {
    worker_body(id);
  } catch (const std::exception& e) {
    {
      const std::lock_guard<std::mutex> lock(error_mu_);
      if (error_.empty()) error_ = e.what();
    }
    abort_.store(true, std::memory_order_relaxed);
    done_[id].store(2, std::memory_order_seq_cst);  // exited, not clean
  }
}

void HostExecutor::worker_body(std::size_t id) {
  apex::SeedTree seeds{cfg_.seed};
  apex::Rng rng = seeds.processor(id);
  std::uint64_t& work = work_per_thread_[id];
  std::uint64_t& misses = miss_per_thread_[id];
  const std::uint64_t stride = lg(n_);
  const std::uint64_t end_tick = 2 * static_cast<std::uint64_t>(prog_->nsteps());
  std::uint64_t tick = 0;
  std::uint64_t reader_clamp = 0;

  // Read one operand for (step s, expected writer w); stamped slot must
  // hold exactly the expected stamp, otherwise the value is stale/missing.
  auto read_operand = [&](std::uint32_t var,
                          std::uint32_t writer) -> std::optional<std::uint64_t> {
    const std::uint32_t want =
        static_cast<std::uint32_t>(pram::stamp_of_writer(writer));
    const HostCell c = mem_.read(var_addr(var, want));
    work += 1;
    if (c.stamp != want) {
      ++misses;
      return std::nullopt;
    }
    return c.value;
  };

  // Evaluate instruction i of step s; nullopt if an operand is not ready.
  auto eval = [&](std::size_t s,
                  std::size_t i) -> std::optional<std::uint64_t> {
    const pram::Instr& ins = prog_->step(s).instrs[i];
    if (ins.op == pram::OpCode::kNop) {
      work += 1;
      return 0;
    }
    const auto& w = prog_->writers(s, i);
    const int r = pram::reads_of(ins.op);
    std::uint64_t xv = 0, yv = 0, cv = 0;
    if (r >= 1) {
      const auto v = read_operand(ins.x, w.x);
      if (!v) return std::nullopt;
      xv = *v;
    }
    if (ins.op == pram::OpCode::kGather) {
      // Data-dependent addressing: resolve the computed target against the
      // static writer table (known for every variable), same timestamp
      // discipline as a static operand.  Out-of-window index reads 0.
      const std::uint32_t target = pram::gather_target(ins, xv);
      std::uint64_t gv = 0;
      if (target != pram::kGatherOutOfRange) {
        const auto v = read_operand(target, prog_->last_writer_before(s, target));
        if (!v) return std::nullopt;
        gv = *v;
      }
      work += 1;
      return gv;
    }
    if (r >= 2) {
      const auto v = read_operand(ins.y, w.y);
      if (!v) return std::nullopt;
      yv = *v;
    }
    if (r >= 3) {
      const auto v = read_operand(ins.c, w.c);
      if (!v) return std::nullopt;
      cv = *v;
    }
    work += 1;  // the basic computation / random draw
    switch (ins.op) {
      case pram::OpCode::kRandBelow:
        return ins.imm == 0 ? 0 : rng.below(ins.imm);
      case pram::OpCode::kCoin:
        return rng.uniform() * 4294967296.0 < static_cast<double>(ins.imm)
                   ? 1
                   : 0;
      default:
        return pram::eval_deterministic(ins, xv, yv, cv);
    }
  };

  for (std::uint64_t iter = 0; !abort_.load(std::memory_order_relaxed);
       ++iter) {
    if ((iter + id) % stride == 0) {
      // Update-Clock then Read-Clock (sampled estimate, monotone clamp).
      const std::size_t slot = static_cast<std::size_t>(rng.below(n_));
      const HostCell c = mem_.read(clock_base_ + slot);
      mem_.write(clock_base_ + slot, c.value + 1, 0);
      work += 2;
      std::uint64_t sampled = 0;
      for (std::size_t k = 0; k < clock_samples_; ++k)
        sampled += mem_.read(clock_base_ + rng.below(n_)).value;
      work += clock_samples_ + 1;
      const double est = static_cast<double>(sampled) *
                         (static_cast<double>(n_) /
                          static_cast<double>(clock_samples_));
      reader_clamp = std::max(
          reader_clamp, static_cast<std::uint64_t>(est) / clock_tau_);
      tick = reader_clamp;
      if (tick >= end_tick) break;
    }
    if (tick >= end_tick) break;

    const std::size_t s = static_cast<std::size_t>(tick / 2);
    const std::uint32_t stamp = static_cast<std::uint32_t>(
        pram::stamp_of_step(static_cast<std::uint32_t>(s)));
    const std::size_t i = static_cast<std::size_t>(rng.below(n_));
    work += 1;  // the random task choice

    if (tick % 2 == 0) {
      // Compute subphase: one bin-array agreement cycle (Fig. 2).
      std::ptrdiff_t lo = -1, hi = static_cast<std::ptrdiff_t>(b_);
      while (hi - lo > 1) {
        const std::ptrdiff_t mid = lo + (hi - lo) / 2;
        const HostCell c =
            mem_.read(bin_addr(i, static_cast<std::size_t>(mid)));
        work += 1;
        if (c.stamp == stamp)
          lo = mid;
        else
          hi = mid;
      }
      const std::size_t j = static_cast<std::size_t>(hi);
      if (j == 0) {
        const auto v = eval(s, i);
        if (v) {
          mem_.write(bin_addr(i, 0), *v, stamp);
          work += 1;
        }
      } else if (j < b_) {
        const HostCell prev = mem_.read(bin_addr(i, j - 1));
        work += 1;
        if (prev.stamp == stamp) {
          mem_.write(bin_addr(i, j), prev.value, stamp);
          work += 1;
        }
      }
    } else {
      // Copy subphase: fetch the agreed NewVal[i] from the bin's upper
      // half and commit it to z_i's generation slot.
      const pram::Instr& ins = prog_->step(s).instrs[i];
      if (!pram::writes_dest(ins.op)) continue;
      std::optional<std::uint64_t> v;
      for (std::size_t j = b_ / 2; j < b_; ++j) {
        const HostCell c = mem_.read(bin_addr(i, j));
        work += 1;
        if (c.stamp == stamp) {
          v = c.value;
          break;
        }
      }
      if (v) {
        // Never regress a newer generation.  Real threads have UNBOUNDED
        // tick-estimate staleness (the OS can park a thread across whole
        // phases), so a woken straggler may re-run a copy task from G or
        // more steps ago — blindly storing would clobber the newer write
        // sharing the slot (stamp congruent mod G) with a stale value.
        // The simulated executor needs no guard: its estimate skew is a
        // couple of ticks, far inside the G-generation window.  The
        // read+write pair below is not atomic, but shrinking the race from
        // "parked anywhere since the task was chosen" to "parked between
        // these two instructions AND for >= 2(G-1) ticks" makes it
        // vanishingly unlikely rather than routine.
        const HostCell cur = mem_.read(var_addr(ins.z, stamp));
        work += 1;
        if (cur.stamp <= stamp) {
          mem_.write(var_addr(ins.z, stamp), *v, stamp);
          work += 1;
        }
      }
    }
  }
  done_[id].store(abort_.load(std::memory_order_relaxed) ? 2 : 1,
                  std::memory_order_seq_cst);
}

HostExecResult HostExecutor::run() {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n_);
  for (std::size_t id = 0; id < n_; ++id)
    threads.emplace_back([this, id] { worker(id); });

  // Watchdog: abort stragglers past the deadline (never triggers on a
  // healthy run — the phase clock terminates every thread).
  std::thread watchdog([&] {
    for (;;) {
      const double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
              .count();
      bool all = true;
      for (std::size_t id = 0; id < n_; ++id)
        all &= (done_[id].load(std::memory_order_seq_cst) != 0);
      if (all) return;
      if (elapsed > cfg_.timeout_seconds) {
        abort_.store(true, std::memory_order_relaxed);
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : threads) t.join();
  watchdog.join();

  HostExecResult out;
  {
    const std::lock_guard<std::mutex> lock(error_mu_);
    out.error = error_;
  }
  out.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  out.completed = true;
  for (std::size_t id = 0; id < n_; ++id) {
    out.completed &= (done_[id].load(std::memory_order_seq_cst) == 1);
    out.total_work += work_per_thread_[id];
    out.stamp_misses += miss_per_thread_[id];
  }

  // Freshest generation slot wins.
  out.memory.assign(prog_->nvars(), 0);
  for (std::size_t v = 0; v < prog_->nvars(); ++v) {
    std::uint32_t best_stamp = 0;
    std::uint64_t best_value = 0;
    for (std::size_t g = 0; g < cfg_.generations; ++g) {
      const HostCell c = mem_.read(var_base_ + v * cfg_.generations + g);
      if (c.stamp >= best_stamp) {
        best_stamp = c.stamp;
        best_value = c.value;
      }
    }
    out.memory[v] = best_value;
  }

  // Commit audit (see header): every variable's final value must carry its
  // last writer's stamp.  A tardy ultra-stale store cannot forge a newer
  // stamp, so damage is always visible here.  Quiescent (threads joined),
  // so the reads are exact.
  if (out.completed && prog_->nsteps() > 0) {
    const std::size_t last = prog_->nsteps() - 1;
    for (std::uint32_t v = 0; v < prog_->nvars(); ++v) {
      // last_writer_before(last, v) excludes the final step itself.
      std::uint32_t writer = prog_->last_writer_before(last, v);
      for (const pram::Instr& ins : prog_->step(last).instrs)
        if (pram::writes_dest(ins.op) && ins.z == v)
          writer = static_cast<std::uint32_t>(last);
      if (writer == pram::kInitial) continue;
      const std::uint32_t want =
          static_cast<std::uint32_t>(pram::stamp_of_step(writer));
      if (mem_.read(var_addr(v, want)).stamp != want) ++out.lost_commits;
    }
  }
  return out;
}

}  // namespace apex::host
