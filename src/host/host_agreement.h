// The bin-array agreement protocol on real std::threads.
//
// Same protocol as src/agreement (Fig. 2), but the asynchrony is provided
// by the operating system scheduler instead of a simulated adversary: each
// logical processor is a std::thread, shared memory is HostMemory, and the
// phase clock is the same sampled-counter construction.  This is the
// "laptop multicore" validation path: it demonstrates the protocol working
// under genuine preemption, cache effects, and timing jitter.
//
// Work accounting: each thread counts its own atomic accesses (reads +
// writes + charged locals) in a plain per-thread counter; the total is the
// paper's work measure, summed at the end.
//
// Memory order: this port deliberately stays on HostMemory's seq_cst
// defaults.  Its whole observation method is an OUT-OF-BAND poller scanning
// bins while the threads run, and seq_cst is what keeps that scan's
// cross-word view trivially sound.  The virtualized executor
// (host_executor), which audits only at quiescence, is where the
// relaxed/acq-rel downgrades live — see the proof obligations there.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "host/host_memory.h"
#include "util/math.h"
#include "util/rng.h"

namespace apex::host {

/// f_i evaluator for the host protocol: returns the (possibly random) value
/// for bin i.  Must be thread-safe (it receives the calling thread's
/// private Rng).
using HostTaskFn = std::function<std::uint64_t(std::size_t i, apex::Rng& rng)>;

struct HostConfig {
  std::size_t nthreads = 4;  ///< Logical processors = real threads = bins.
  std::size_t beta = 8;
  // Updates per tick = α·n.  Real threads burn through cycles at nanosecond
  // rates, so α serves two purposes here: (a) as in the simulator, it must
  // comfortably exceed β so every bin fills early in its phase, and (b) it
  // sets the wall-clock length of a phase, which must be long enough
  // (~milliseconds) for the out-of-band poller to observe a filled, stable
  // bin array before the phase rolls over.
  double clock_alpha = 4096.0;
  std::uint64_t seed = 1;
};

class HostAgreement {
 public:
  HostAgreement(HostConfig cfg, HostTaskFn task);

  struct Result {
    bool satisfied = false;      ///< Theorem-1 properties observed.
    std::uint32_t phase = 0;     ///< Phase at which they were observed.
    std::uint64_t total_work = 0;///< Atomic steps summed over threads.
    std::uint64_t cycles = 0;    ///< Agreement cycles executed.
    double wall_seconds = 0.0;
    std::vector<std::uint64_t> values;  ///< Agreed value per bin, captured
                                        ///< at the moment of satisfaction.
  };

  /// Launch the threads and poll the bins out-of-band until the scannable
  /// Theorem 1 properties (accessibility + uniqueness) hold for the phase
  /// currently indicated by the clock — phases roll over continuously on
  /// real threads, so the poller checks whichever phase is live and retries
  /// if a phase boundary tears the scan.  Values are captured at the moment
  /// of satisfaction, then the threads are stopped.
  Result run(double timeout_seconds = 10.0);

  /// Exact current phase: sum of all clock slots / tau + 1 (out-of-band).
  std::uint32_t current_phase() const;

  // --- Out-of-band inspection ----------------------------------------------
  std::size_t cells_per_bin() const noexcept { return b_; }
  bool bin_filled(std::size_t bin, std::size_t cell, std::uint32_t phase) const;
  std::vector<std::uint64_t> upper_half_values(std::size_t bin,
                                               std::uint32_t phase) const;

 private:
  void worker(std::size_t id);
  std::size_t bin_addr(std::size_t bin, std::size_t cell) const {
    return bins_base_ + bin * b_ + cell;
  }

  HostConfig cfg_;
  HostTaskFn task_;
  std::size_t n_;
  std::size_t b_;
  std::size_t clock_base_;
  std::size_t bins_base_;
  std::uint64_t clock_tau_;
  std::size_t clock_samples_;
  HostMemory mem_;

  std::atomic<bool> stop_{false};
  std::vector<std::uint64_t> work_per_thread_;
  std::vector<std::uint64_t> cycles_per_thread_;
};

}  // namespace apex::host
