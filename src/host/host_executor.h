// The full execution scheme (paper §2, Fig. 1) on real OS threads, with
// logical processors VIRTUALIZED: P logical processors are multiplexed onto
// T worker threads (T <= P), decoupling the paper's n from the core count.
//
// Mirrors src/exec/Executor on the host substrate.  Shared memory is
// HostMemory (value+stamp packed into one atomic 64-bit word); phases are
// PRAM steps, each with a Compute subphase (bin-array agreement cycles
// evaluating the step's instructions) and a Copy subphase (committing
// agreed NewVal values into the program variables' generation slots), both
// delimited by the sampled-counter phase clock.
//
// The virtual-processor run loop: each logical processor is a dense
// HostProc record (private RNG, tick estimate, work counters — no heap, no
// atomics, owned by exactly one worker thread), and each of T OS threads
// walks its contiguous slice of the P records under a pluggable interleave
// policy (round-robin / random / block), executing ONE protocol step per
// visit.  The substrate provides timing, the protocol provides correctness:
// from the protocol's viewpoint a T-thread host is simply an adversary that
// stalls every processor of a slice in lockstep — a LEGAL oblivious
// adversary (the OS and the policy never see the protocol's coins), and a
// strictly more asynchronous one than one-thread-per-processor, since a
// single preemption now stalls P/T processors at once.  T = P (os_threads
// = 0, the default) reproduces the original one-std::thread-per-processor
// executor; T = 1 is a fully deterministic sequential interleaving.
//
// What this validates: the w.h.p. guarantees of the scheme carry from the
// oblivious-adversary model to genuine preemption — and now to instance
// sizes (P = 64-256) far beyond the core count.
//
// One honest fidelity boundary: the OS is STRONGER than the adversary the
// scheme is tuned for.  The model's schedules stall a pending operation for
// at most a bounded number of ticks, so a tardy generation-slot commit can
// never be G or more phases stale; a real OS can park a thread between its
// commit decision and the store for an unbounded time (observed on an
// oversubscribed machine: a worker waking after ~10 phases and clobbering
// the slot its ancient stamp aliases mod G).  No write-only protocol closes
// that window — the paper's word+stamp postulate forbids compare-and-swap —
// but a tardy write always carries its OLD stamp, which makes the damage
// DETECTABLE: run() audits every variable's last-writer slot after the
// threads join, then REPAIRS each audited-stale slot from the agreed value
// still published in its writer's bin (upper half, where Theorem 1's
// uniqueness holds), re-auditing after each re-commit.  Repaired slots are
// reported as `repaired_commits`; a slot whose bin has since been recycled
// by later phases is unrepairable and stays in `lost_commits`.  An
// audit-clean result (lost_commits == 0, repaired or not) is sound: readers
// accept only exact stamps, and the value stored under a given stamp is
// always that step's unique agreed value, even when the store itself was
// tardy.  Non-zero lost_commits means the memory must not be trusted and
// the caller should re-run.
//
// Limits vs the simulator executor: program values must fit in 40 bits
// (host Pack width), and there is no produced-trace monitor — tests verify
// invariants on the final memory (deterministic kernels against the
// synchronous reference; nondeterministic kernels against their
// self-declared invariants).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "host/host_memory.h"
#include "pram/program.h"
#include "util/math.h"
#include "util/rng.h"

namespace apex::host {

/// Order in which a worker thread visits the virtual processors it owns.
/// All policies are oblivious (they never read protocol state), so each is
/// a legal adversary; they differ in the relative asynchrony they induce
/// between processors of one slice.
enum class Interleave : std::uint8_t {
  kRoundRobin,  ///< Cyclic sweep: skew within a slice bounded by 1 visit.
  kRandom,      ///< Uniform pick per visit (thread-private stream).
  kBlock,       ///< `block` consecutive steps per processor before moving on.
  kPartition,   ///< Cyclic sweep over WEIGHT-BALANCED slices: the T slice
                ///< bounds come from HostExecConfig::proc_weights (e.g. the
                ///< graph degree partitioner's per-processor work), so the
                ///< OS threads that walk a CSR partition own the processors
                ///< placed on it.  Still oblivious: weights are static data
                ///< fixed before the run.
};

const char* interleave_name(Interleave p) noexcept;
/// Parse "rr"/"round_robin", "random", "block", "partition"; returns false
/// on junk.
bool parse_interleave(const std::string& s, Interleave& out) noexcept;

struct HostExecConfig {
  std::size_t generations = 4;  ///< G generation slots per program variable.
  std::size_t beta = 8;         ///< Bin sizing.
  double clock_alpha = 4096.0;  ///< Updates per tick (see HostConfig note).
                                ///< Virtualized configs (small T) tolerate
                                ///< far smaller alpha (e.g. 48): intra-slice
                                ///< skew is policy-bounded, so phases no
                                ///< longer need to outlast OS timeslices.
  std::uint64_t seed = 1;
  double timeout_seconds = 60.0;

  // --- virtualization -------------------------------------------------------
  /// T = number of OS worker threads.  0 = one thread per logical processor
  /// (the original executor's shape).  Clamped to P (a worker needs at
  /// least one processor to drive).
  std::size_t os_threads = 0;
  Interleave interleave = Interleave::kRoundRobin;
  /// Steps per visit under Interleave::kBlock.  64 keeps a processor's RNG
  /// and loop state register-resident across the block (measured ~1.1-1.3x
  /// over per-visit round-robin) while staying far inside a phase: even at
  /// alpha = 48 a tick spans ~alpha*lg(n) visits per processor.
  std::size_t block = 64;
  /// Fidelity fallback: force seq_cst on every protocol word, restoring the
  /// pre-virtualization memory discipline exactly.  Off = the audited
  /// relaxed/acq-rel orders (see the proof obligations in host_executor.cpp).
  bool seq_cst = false;
  /// Run the post-join lost-commit repair pass (on by default; off shows
  /// the raw audit).
  bool repair = true;
  /// Per-logical-processor work weights for Interleave::kPartition (e.g.
  /// instruction-slot counts from the graph degree partitioner).  Empty =
  /// equal-count slices (kPartition then degenerates to round-robin); a
  /// non-empty vector must have exactly P entries.
  std::vector<std::uint64_t> proc_weights;
  /// TEST ONLY: fault injected between thread join and the commit audit —
  /// lets tests exercise the audit+repair path deterministically (genuine
  /// ultra-preemption damage needs an adversarial OS moment).
  std::function<void(HostMemory&)> preaudit_fault;
};

struct HostExecResult {
  bool completed = false;        ///< Every thread saw the final tick.
  std::uint64_t total_work = 0;  ///< Atomic steps summed over processors.
  double wall_seconds = 0.0;
  std::vector<std::uint64_t> memory;  ///< Final value of each variable.
  std::uint64_t stamp_misses = 0;     ///< Operand reads that found a stale
                                      ///< stamp and retried (normal).
  /// First worker-side fault (e.g. a program value exceeding the 40-bit
  /// host Pack width).  Non-empty implies completed == false; the run
  /// aborts cleanly instead of crashing the process.
  std::string error;
  /// Variables whose LAST writer's commit was absent from its generation
  /// slot after the run AND could not be repaired from the agreed bin
  /// value.  0 certifies the extracted memory; non-zero means re-run.
  std::size_t lost_commits = 0;
  /// Audited-stale slots re-committed from their writer's bin (upper half)
  /// and re-audited clean.  Counted separately so the trajectory shows how
  /// often ultra-preemption damage occurs vs how often it is recoverable.
  std::size_t repaired_commits = 0;
};

class HostExecutor {
 public:
  HostExecutor(const pram::Program& program, HostExecConfig cfg);

  /// Launch T worker threads over the P virtual processors, run the full
  /// phase sequence, join, audit + repair, and extract the final memory.
  HostExecResult run();

  /// Raw host memory (clock | bins | generation slots) — for inspectors
  /// and tests; read it only after run() returned.
  const HostMemory& memory() const noexcept { return mem_; }
  /// Address of the generation slot var v uses for `stamp` (inspectors).
  std::size_t var_slot_addr(std::uint32_t var, std::uint32_t stamp) const {
    return var_addr(var, stamp);
  }
  /// The worker-thread count this run will use (after clamping).
  std::size_t os_threads() const noexcept { return nthreads_; }

 private:
  /// Dense per-logical-processor loop state.  Owned by exactly one worker
  /// thread at a time — plain fields, no synchronization.  Cache-line
  /// aligned so neighbouring processors in different slices never false-
  /// share.
  struct alignas(64) HostProc {
    apex::Rng rng;
    std::uint64_t iter = 0;         ///< Countdown to next clock update
                                    ///< (replaces the (iter+id) % stride
                                    ///< test — no per-visit divide).
    std::uint64_t tick = 0;         ///< Latest clock estimate.
    std::uint64_t clamp = 0;        ///< Monotone reader clamp.
    std::uint64_t work = 0;
    std::uint64_t misses = 0;
    bool done = false;
  };

  /// Precomputed per-(step, instruction) operand plan: every address and
  /// expected stamp the hot loop needs, resolved once at construction so a
  /// visit performs no multiplies, no writer-table walks, no bounds checks.
  struct OpPlan {
    pram::OpCode op;
    std::uint8_t nreads;       ///< reads_of(op).
    bool writes;               ///< writes_dest(op).
    std::uint32_t x_addr, y_addr, c_addr;  ///< Operand generation slots.
    std::uint32_t x_want, y_want, c_want;  ///< Expected operand stamps.
    std::uint32_t z_addr;      ///< Commit slot (writes only).
    const pram::Instr* ins;    ///< For eval_deterministic / imm / gather.
  };

  void worker(std::size_t tid);
  /// The hot path is templated on the fidelity flag so every memory order
  /// is a COMPILE-TIME constant: GCC/Clang compile a runtime-valued
  /// std::memory_order argument to the strongest order (the builtin falls
  /// back to seq_cst), which would silently undo the downgrade audit.
  template <bool kSeqCst>
  void worker_body(std::size_t tid);
  /// Execute one protocol step for this processor; returns true when the
  /// processor observed the final tick (it must not be visited again).
  template <bool kSeqCst>
  bool visit(HostProc& vp);
  template <bool kSeqCst>
  bool eval(HostProc& vp, std::size_t s, std::size_t i, std::uint64_t& out);
  void record_error(std::size_t tid, const char* what);
  void audit_and_repair(HostExecResult& out);

  // Memory layout helpers (clock slots | bins | variable generations).
  std::size_t bin_addr(std::size_t bin, std::size_t cell) const {
    return bins_base_ + bin * b_ + cell;
  }
  std::size_t var_addr(std::uint32_t var, std::uint32_t stamp) const {
    return var_base_ + static_cast<std::size_t>(var) * cfg_.generations +
           stamp % cfg_.generations;
  }

  const pram::Program* prog_;
  HostExecConfig cfg_;
  std::size_t n_;           ///< P: logical processors = program threads = bins.
  std::size_t nthreads_;    ///< T: OS worker threads (clamped to [1, P]).
  std::size_t b_;           ///< Cells per bin.
  std::size_t clock_base_;
  std::size_t bins_base_;
  std::size_t var_base_;
  std::uint64_t clock_tau_;
  std::size_t clock_samples_;
  std::uint64_t stride_;    ///< Visits between clock updates (>= 1).
  std::uint64_t end_tick_;
  HostMemory mem_;

  std::vector<HostProc> procs_;        ///< P dense records.
  std::vector<std::size_t> slice_;     ///< T+1 slice bounds over procs_.
  std::vector<OpPlan> plans_;          ///< nsteps * P, step-major.
  std::vector<std::uint32_t> step_stamp_;    ///< Stamp per step.

  std::atomic<bool> abort_{false};
  /// Per-worker clean-completion flags (watchdog reads them live).  Dense
  /// vector block — the vector is sized once and never resized (atomics
  /// are not movable), same idiom as HostMemory.
  std::vector<std::atomic<std::uint8_t>> done_;
  /// Lock-free first-fault capture: each worker owns error_slot_[tid]; the
  /// first faulting worker claims first_error_ with one CAS (harness
  /// bookkeeping, not protocol memory — the model's no-RMW postulate
  /// applies to the shared PRAM words only).  No mutex anywhere on the
  /// worker path.
  std::vector<std::string> error_slot_;
  std::atomic<std::int32_t> first_error_{-1};
};

}  // namespace apex::host
