// The full execution scheme (paper §2, Fig. 1) on real std::threads.
//
// Mirrors src/exec/Executor on the host substrate: each logical processor
// is an OS thread, shared memory is HostMemory (value+stamp packed into one
// atomic 64-bit word), asynchrony comes from the OS scheduler instead of a
// simulated adversary.  Phases are PRAM steps; each phase has a Compute
// subphase (bin-array agreement cycles evaluating the step's instructions)
// and a Copy subphase (committing agreed NewVal values into the program
// variables' generation slots), both delimited by the sampled-counter
// phase clock.
//
// What this validates: the w.h.p. guarantees of the scheme carry from the
// oblivious-adversary model to genuine preemption — OS scheduling decides
// timing without seeing the protocol's random choices, which is exactly
// the oblivious adversary's power.
//
// One honest fidelity boundary: the OS is STRONGER than the adversary the
// scheme is tuned for.  The model's schedules stall a pending operation for
// at most a bounded number of ticks, so a tardy generation-slot commit can
// never be G or more phases stale; a real OS can park a thread between its
// commit decision and the store for an unbounded time (we have observed a
// worker on an oversubscribed machine waking after ~10 phases and clobbering
// the slot its ancient stamp aliases mod G).  No write-only protocol closes
// that window — the paper's word+stamp postulate forbids compare-and-swap —
// but a tardy write always carries its OLD stamp, which makes the damage
// DETECTABLE: run() audits every variable's last-writer slot after the
// threads join and reports `lost_commits`.  An audit-clean run is sound
// (readers accept only exact stamps, and the value stored under a given
// stamp is always that step's unique agreed value, even when the store
// itself was tardy); a non-zero audit means the memory must not be trusted
// and the caller should re-run.
//
// Limits vs the simulator executor: program values must fit in 40 bits
// (host Pack width), and there is no produced-trace monitor — tests verify
// invariants on the final memory (deterministic kernels against the
// synchronous reference; nondeterministic kernels against their
// self-declared invariants).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "host/host_memory.h"
#include "pram/program.h"
#include "util/math.h"
#include "util/rng.h"

namespace apex::host {

struct HostExecConfig {
  std::size_t generations = 4;  ///< G generation slots per program variable.
  std::size_t beta = 8;         ///< Bin sizing.
  double clock_alpha = 4096.0;  ///< Updates per tick (see HostConfig note).
  std::uint64_t seed = 1;
  double timeout_seconds = 60.0;
};

struct HostExecResult {
  bool completed = false;        ///< Every thread saw the final tick.
  std::uint64_t total_work = 0;  ///< Atomic steps summed over threads.
  double wall_seconds = 0.0;
  std::vector<std::uint64_t> memory;  ///< Final value of each variable.
  std::uint64_t stamp_misses = 0;     ///< Operand reads that found a stale
                                      ///< stamp and retried (normal).
  /// First worker-side fault (e.g. a program value exceeding the 40-bit
  /// host Pack width).  Non-empty implies completed == false; the run
  /// aborts cleanly instead of crashing the process.
  std::string error;
  /// Variables whose LAST writer's commit is absent from its generation
  /// slot after the run (see the header comment on unbounded preemption).
  /// 0 certifies the extracted memory; non-zero means re-run.
  std::size_t lost_commits = 0;
};

class HostExecutor {
 public:
  HostExecutor(const pram::Program& program, HostExecConfig cfg);

  /// Launch one thread per program thread, run the full phase sequence,
  /// join, and extract the final memory.
  HostExecResult run();

  /// Raw host memory (clock | bins | generation slots) — for inspectors
  /// and tests; read it only after run() returned.
  const HostMemory& memory() const noexcept { return mem_; }
  /// Address of the generation slot var v uses for `stamp` (inspectors).
  std::size_t var_slot_addr(std::uint32_t var, std::uint32_t stamp) const {
    return var_addr(var, stamp);
  }

 private:
  void worker(std::size_t id);
  /// Body of worker(); throwing (e.g. Pack width overflow) aborts the run
  /// cleanly via the wrapper's catch instead of std::terminate.
  void worker_body(std::size_t id);

  // Memory layout helpers (clock slots | bins | variable generations).
  std::size_t bin_addr(std::size_t bin, std::size_t cell) const {
    return bins_base_ + bin * b_ + cell;
  }
  std::size_t var_addr(std::uint32_t var, std::uint32_t stamp) const {
    return var_base_ + static_cast<std::size_t>(var) * cfg_.generations +
           stamp % cfg_.generations;
  }

  const pram::Program* prog_;
  HostExecConfig cfg_;
  std::size_t n_;           ///< Threads = program threads = bins.
  std::size_t b_;           ///< Cells per bin.
  std::size_t clock_base_;
  std::size_t bins_base_;
  std::size_t var_base_;
  std::uint64_t clock_tau_;
  std::size_t clock_samples_;
  HostMemory mem_;

  std::atomic<bool> abort_{false};
  std::mutex error_mu_;
  std::string error_;  ///< First worker fault (guarded by error_mu_).
  std::vector<std::uint64_t> work_per_thread_;
  std::vector<std::uint64_t> miss_per_thread_;
  /// Per-thread clean-completion flags (watchdog reads them live).
  std::unique_ptr<std::atomic<std::uint8_t>[]> done_;
};

}  // namespace apex::host
