// The full execution scheme (paper §2, Fig. 1) on real std::threads.
//
// Mirrors src/exec/Executor on the host substrate: each logical processor
// is an OS thread, shared memory is HostMemory (value+stamp packed into one
// atomic 64-bit word), asynchrony comes from the OS scheduler instead of a
// simulated adversary.  Phases are PRAM steps; each phase has a Compute
// subphase (bin-array agreement cycles evaluating the step's instructions)
// and a Copy subphase (committing agreed NewVal values into the program
// variables' generation slots), both delimited by the sampled-counter
// phase clock.
//
// What this validates: the w.h.p. guarantees of the scheme carry from the
// oblivious-adversary model to genuine preemption — OS scheduling decides
// timing without seeing the protocol's random choices, which is exactly
// the oblivious adversary's power.
//
// Limits vs the simulator executor: program values must fit in 40 bits
// (host Pack width), and there is no produced-trace monitor — tests verify
// invariants on the final memory (deterministic kernels against the
// synchronous reference; nondeterministic kernels against their
// self-declared invariants).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "host/host_memory.h"
#include "pram/program.h"
#include "util/math.h"
#include "util/rng.h"

namespace apex::host {

struct HostExecConfig {
  std::size_t generations = 4;  ///< G generation slots per program variable.
  std::size_t beta = 8;         ///< Bin sizing.
  double clock_alpha = 4096.0;  ///< Updates per tick (see HostConfig note).
  std::uint64_t seed = 1;
  double timeout_seconds = 60.0;
};

struct HostExecResult {
  bool completed = false;        ///< Every thread saw the final tick.
  std::uint64_t total_work = 0;  ///< Atomic steps summed over threads.
  double wall_seconds = 0.0;
  std::vector<std::uint64_t> memory;  ///< Final value of each variable.
  std::uint64_t stamp_misses = 0;     ///< Operand reads that found a stale
                                      ///< stamp and retried (normal).
};

class HostExecutor {
 public:
  HostExecutor(const pram::Program& program, HostExecConfig cfg);

  /// Launch one thread per program thread, run the full phase sequence,
  /// join, and extract the final memory.
  HostExecResult run();

 private:
  void worker(std::size_t id);

  // Memory layout helpers (clock slots | bins | variable generations).
  std::size_t bin_addr(std::size_t bin, std::size_t cell) const {
    return bins_base_ + bin * b_ + cell;
  }
  std::size_t var_addr(std::uint32_t var, std::uint32_t stamp) const {
    return var_base_ + static_cast<std::size_t>(var) * cfg_.generations +
           stamp % cfg_.generations;
  }

  const pram::Program* prog_;
  HostExecConfig cfg_;
  std::size_t n_;           ///< Threads = program threads = bins.
  std::size_t b_;           ///< Cells per bin.
  std::size_t clock_base_;
  std::size_t bins_base_;
  std::size_t var_base_;
  std::uint64_t clock_tau_;
  std::size_t clock_samples_;
  HostMemory mem_;

  std::atomic<bool> abort_{false};
  std::vector<std::uint64_t> work_per_thread_;
  std::vector<std::uint64_t> miss_per_thread_;
  /// Per-thread clean-completion flags (watchdog reads them live).
  std::unique_ptr<std::atomic<std::uint8_t>[]> done_;
};

}  // namespace apex::host
