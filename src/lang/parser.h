// Recursive-descent parser for the .pram kernel language.
//
// Grammar (whitespace-insensitive, `#` comments):
//
//   program  := "pram" IDENT item*
//   item     := "procs" INT
//             | "vars" INT                       (total variable count)
//             | "var" IDENT ("[" INT "]")?       (named var / array, allocated
//                                                 sequentially after "vars")
//             | "segment" IDENT "=" ref ":" INT  (gather_dyn segment: base:len)
//             | "step" "{" lane* "}"
//   lane     := INT ":" instr                    (lane = thread index)
//   instr    := "nop"
//             | "const" ref "," INT
//             | "copy" ref "," ref
//             | BINOP ref "," ref "," ref        (add sub mul min max xor and
//                                                 or less eq)
//             | "select" ref "," ref "," ref "," ref     (z, cond, x, y)
//             | "rand_below" ref "," INT
//             | "coin" ref "," INT               (raw 32-bit fixed-point imm)
//             | "gather" ref "," ref "," ref "," INT     (z, idx, window base,
//                                                         window len)
//             | "gather_dyn" ref "," ref "," ref "," ref "," IDENT
//                                                (z, idx, off, bound, segment)
//   ref      := IDENT ("[" INT "]")?
//
// A ref spelled `v<digits>` that is not shadowed by a declaration is a RAW
// variable index (`v12` = variable 12) — this is the form the emitter
// produces, so machine-generated kernels need no declarations.  Declared
// names may not collide with keywords or the raw `v<digits>` pattern.
//
// The parser produces a faithful source-level tree (every operand keeps
// its Loc); all semantic rules live in compile.h.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "lang/lexer.h"
#include "lang/source.h"
#include "pram/ir.h"

namespace apex::lang {

/// A variable reference as written: name plus optional [index] subscript.
struct Ref {
  Loc loc;
  std::string name;
  bool has_subscript = false;
  std::uint64_t subscript = 0;
};

/// One `lane: instr` entry inside a step.
struct LaneSrc {
  Loc lane_loc;
  std::uint64_t lane = 0;
  Loc op_loc;
  pram::OpCode op = pram::OpCode::kNop;
  Ref z, x, y, c;            ///< Used according to the op's arity.
  std::uint64_t imm = 0;     ///< const/rand_below/coin imm, gather window len.
  Loc imm_loc;
  std::string seg_name;      ///< gather_dyn segment reference.
  Loc seg_loc;
};

struct StepSrc {
  Loc loc;
  std::vector<LaneSrc> lanes;
};

struct VarDeclSrc {
  Loc loc;
  std::string name;
  std::uint64_t count = 1;   ///< Array size (1 for scalars).
};

struct SegDeclSrc {
  Loc loc;
  std::string name;
  Ref base;
  std::uint64_t len = 0;
  Loc len_loc;
};

struct ProgramSrc {
  std::string name;
  Loc name_loc;
  std::optional<std::uint64_t> procs;
  Loc procs_loc;
  std::optional<std::uint64_t> vars;  ///< Declared total variable count.
  Loc vars_loc;
  std::vector<VarDeclSrc> var_decls;
  std::vector<SegDeclSrc> seg_decls;
  std::vector<StepSrc> steps;
};

/// Parse the token stream.  Returns nullopt when a parse error was
/// appended to `diags` (parsing stops at the first syntax error; semantic
/// errors are batched later by the compiler).
std::optional<ProgramSrc> parse(const std::vector<Token>& toks,
                                std::vector<Diagnostic>& diags);

}  // namespace apex::lang
