// Semantic analysis + codegen: ProgramSrc -> validated pram::Program.
//
// Every rule pram::Program::validate_erew enforces at construction time is
// re-checked here FIRST, against the source tree, so violations surface as
// file:line:col diagnostics with a caret instead of std::invalid_argument
// throws.  The mapping:
//
//   validate_erew rule                      diagnostic (anchored at)
//   -----------------------------------    --------------------------------
//   operand var out of range                "variable vN out of range"
//                                           (the operand ref)
//   var read by two threads in a step       "EREW violation: ... read by
//                                           more than one thread" (second
//                                           reading operand)
//   var written by two threads in a step    "...written by more than one
//                                           thread" (second writer's dest)
//   gather window length 0 / exceeds        "gather window ..." (the window
//   nvars / overlapping window reads        length / base operand)
//   gather_dyn segment length 0 / exceeds   "segment ..." (the declaration)
//   same-step write into a segment          "written inside gather_dyn
//                                           segment" (the writer's dest)
//
// Language-level checks with no validate_erew twin: undefined variable or
// segment names, subscripts out of a named array's bounds, variable ids
// overflowing 32 bits (Instr stores uint32_t), lane indices out of range
// or duplicated, missing/zero `procs`/`vars`.
//
// Compilation succeeds only when the diagnostic list is empty; the
// returned Program has already passed its own constructor validation, so
// downstream executors can trust it exactly like a hand-built kernel.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "lang/parser.h"
#include "lang/source.h"
#include "pram/program.h"

namespace apex::lang {

struct CompileResult {
  std::optional<pram::Program> program;  ///< Set iff diagnostics is empty.
  std::vector<Diagnostic> diagnostics;

  bool ok() const { return program.has_value(); }
};

/// Lex + parse + analyze + build in one call.
CompileResult compile_source(const SourceFile& src);

/// Convenience: read `path` from disk and compile it.  A missing/unreadable
/// file becomes a diagnostic at 1:1.  `out_src` receives the loaded source
/// so callers can render diagnostics.
CompileResult compile_file(const std::string& path, SourceFile& out_src);

}  // namespace apex::lang
