// Source text, locations, and compiler diagnostics for the PRAM kernel
// language (src/lang/).
//
// Every token the lexer produces carries a Loc; every semantic error the
// compiler reports anchors to one.  Diagnostics render in the classic
// file:line:col style with the offending source line and a caret, so an
// EREW conflict in a .pram file reads like a compiler error, not like the
// runtime std::invalid_argument Program validation would otherwise throw.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace apex::lang {

/// A position inside a SourceFile.  line/col are 1-based (editor style);
/// offset is the 0-based byte index used to recover the source line.
struct Loc {
  std::size_t line = 1;
  std::size_t col = 1;
  std::size_t offset = 0;
};

/// An in-memory source file: the unit the lexer, parser and compiler work
/// on.  `name` is whatever the diagnostics should print (a path, or
/// "<gen>" for fuzzer-generated programs).
struct SourceFile {
  std::string name;
  std::string text;

  /// The full text of the line containing `loc` (no trailing newline).
  std::string line_at(const Loc& loc) const;
};

struct Diagnostic {
  Loc loc;
  std::string message;
};

/// Render one diagnostic in compiler style:
///
///   prefix.pram:12:8: error: EREW violation: variable v9 ...
///     3: copy v9, v0
///        ^
///
/// The caret column preserves tabs from the source line so it stays
/// aligned in any tab-width rendering.
std::string render_diagnostic(const SourceFile& src, const Diagnostic& d);

/// All diagnostics, rendered and concatenated (one per paragraph).
std::string render_diagnostics(const SourceFile& src,
                               const std::vector<Diagnostic>& ds);

}  // namespace apex::lang
