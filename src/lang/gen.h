// Seed-deterministic grammar-based .pram program generator.
//
// Produces random kernels that are EREW-valid BY CONSTRUCTION (per-step
// read/write pools hand out each variable at most once; gather windows are
// per-thread chunks of a dedicated region; the gather_dyn segment is
// written only in the const-loading prologue, never in a step that
// gathers), so the fuzz harness can treat any compile failure of generated
// source as a front-end bug, and any divergence between executors running
// the compiled program as an execution-scheme bug.
//
// All data the kernel consumes is loaded by a prologue of `const` steps —
// generated programs run from all-zero initial memory, exactly like the
// registry workloads, so they drop into the existing executor, host
// executor, interpreter and consistency-check plumbing unchanged.
//
// Generation is a pure function of GenOptions (no global state, no clock),
// which is what lets fuzz trials replay byte-identically from a repro seed
// and keeps `apexcli fuzz` output independent of --jobs.
#pragma once

#include <cstdint>

#include "lang/source.h"

namespace apex::lang {

struct GenOptions {
  std::uint64_t seed = 1;
  /// Exclude rand_below/coin so the reference interpreter's deterministic
  /// replay is a bit-exact oracle for the generated program.
  bool deterministic = false;
};

struct GeneratedProgram {
  SourceFile source;  ///< Compilable .pram text; runs from zero memory.
  std::size_t nthreads = 0;
  std::size_t nvars = 0;
  std::size_t nsteps = 0;
};

GeneratedProgram generate_program(const GenOptions& opt);

}  // namespace apex::lang
