#include "lang/gen.h"

#include <numeric>
#include <sstream>
#include <vector>

#include "util/rng.h"

namespace apex::lang {

namespace {

constexpr std::uint64_t kGenTag = 0x6E7261476D415250ULL;  // domain separation

}  // namespace

GeneratedProgram generate_program(const GenOptions& opt) {
  Rng rng(mix64(opt.seed, kGenTag));

  // P >= 6: the fuzz harness's clobber-oracle work cap is only sound for
  // n >= 6 (see check/fuzz.cpp), and generated programs flow through it.
  const std::size_t P = 6 + rng.below(3);
  const std::size_t wlen = 2 + rng.below(3);
  const bool use_gather = rng.coin(0.7);
  const bool use_dyn = rng.coin(0.6);
  const std::size_t G = 3 * P;                           // general pool
  const std::size_t W = use_gather ? P * wlen : 0;       // per-thread windows
  const std::size_t S = use_dyn ? 8 + rng.below(9) : 0;  // frozen segment
  const std::size_t nvars = G + W + S;
  const std::size_t body_steps = 3 + rng.below(6);

  std::ostringstream os;
  os << "# generated: seed=" << opt.seed
     << (opt.deterministic ? " deterministic" : "") << '\n';
  os << "pram gen" << opt.seed << '\n';
  os << "procs " << P << '\n';
  os << "vars " << nvars << '\n';
  if (use_dyn)
    os << "segment data = v" << (G + W) << " : " << S << '\n';

  // Prologue: load every variable with a seed-derived constant, P lanes per
  // step.  Small values dominate so gather indices frequently land inside
  // their windows; the tail exercises the out-of-range (result 0) path.
  std::size_t prologue_steps = 0;
  for (std::size_t base = 0; base < nvars; base += P) {
    os << "\nstep {\n";
    for (std::size_t t = 0; t < P && base + t < nvars; ++t) {
      const std::uint64_t value =
          rng.coin(0.7) ? rng.below(wlen + 4) : rng.below(1ULL << 16);
      os << "  " << t << ": const v" << (base + t) << ", " << value << '\n';
    }
    os << "}\n";
    ++prologue_steps;
  }

  std::vector<std::size_t> pool(G);
  std::iota(pool.begin(), pool.end(), 0);
  for (std::size_t s = 0; s < body_steps; ++s) {
    // Per-step pools: each general variable handed out at most once as a
    // read and once as a write, so EREW holds by construction.
    std::vector<std::size_t> reads = pool, writes = pool;
    rng.shuffle(reads);
    rng.shuffle(writes);
    auto pop = [](std::vector<std::size_t>& v) {
      const std::size_t x = v.back();
      v.pop_back();
      return x;
    };
    os << "\nstep {\n";
    for (std::size_t t = 0; t < P; ++t) {
      if (rng.coin(0.15)) continue;  // idle lane
      const std::size_t z = pop(writes);
      // Op menu; gather/gather_dyn/nondet entries fall through to the ALU
      // arm when the layout or options exclude them, keeping the draw
      // count (and thus the rest of the stream) stable per roll.
      const std::uint64_t roll = rng.below(100);
      if (roll < 10) {
        os << "  " << t << ": const v" << z << ", " << rng.below(1000)
           << '\n';
      } else if (roll < 20) {
        os << "  " << t << ": copy v" << z << ", v" << pop(reads) << '\n';
      } else if (roll < 30) {
        os << "  " << t << ": select v" << z << ", v" << pop(reads) << ", v"
           << pop(reads) << ", v" << pop(reads) << '\n';
      } else if (roll < 45 && use_gather) {
        // Thread t's private window chunk: disjoint from every other
        // thread's chunk and from the general pool.
        os << "  " << t << ": gather v" << z << ", v" << pop(reads) << ", v"
           << (G + t * wlen) << ", " << wlen << '\n';
      } else if (roll < 60 && use_dyn) {
        os << "  " << t << ": gather_dyn v" << z << ", v" << pop(reads)
           << ", v" << pop(reads) << ", v" << pop(reads) << ", data\n";
      } else if (roll < 70 && !opt.deterministic) {
        if (rng.coin(0.5))
          os << "  " << t << ": rand_below v" << z << ", "
             << (1 + rng.below(64)) << '\n';
        else
          os << "  " << t << ": coin v" << z << ", "
             << rng.below((std::uint64_t{1} << 32) + 1) << '\n';
      } else {
        static constexpr const char* kAlu[] = {"add", "sub", "mul", "min",
                                               "max", "xor", "and", "or",
                                               "less", "eq"};
        os << "  " << t << ": " << kAlu[rng.below(10)] << " v" << z << ", v"
           << pop(reads) << ", v" << pop(reads) << '\n';
      }
    }
    os << "}\n";
  }

  GeneratedProgram out;
  out.source.name = "<gen seed=" + std::to_string(opt.seed) + ">";
  out.source.text = os.str();
  out.nthreads = P;
  out.nvars = nvars;
  out.nsteps = prologue_steps + body_steps;
  return out;
}

}  // namespace apex::lang
