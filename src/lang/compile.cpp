#include "lang/compile.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <limits>
#include <sstream>
#include <unordered_map>
#include <utility>

namespace apex::lang {

namespace {

constexpr std::uint64_t kMaxVarId = std::numeric_limits<std::uint32_t>::max();

/// True for identifiers of the form v<digits> — raw variable indices.
bool is_raw_ref(const std::string& name) {
  if (name.size() < 2 || name[0] != 'v') return false;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return false;
  return true;
}

struct VarInfo {
  std::uint64_t base = 0;
  std::uint64_t count = 1;
};

struct SegInfo {
  std::uint32_t base = 0;
  std::uint32_t len = 0;
};

class Analyzer {
 public:
  Analyzer(const ProgramSrc& src, std::vector<Diagnostic>& diags)
      : src_(src), diags_(diags) {}

  std::optional<pram::Program> run() {
    resolve_layout();
    resolve_segments();
    std::vector<pram::Step> steps = build_steps();
    if (!diags_.empty()) return std::nullopt;
    check_erew(steps);
    if (!diags_.empty()) return std::nullopt;
    // Our checks mirror Program's own validation, so this construction
    // cannot throw; the try is a backstop so a checker gap still surfaces
    // as a diagnostic rather than terminating the caller.
    try {
      return pram::Program(static_cast<std::size_t>(procs_),
                           static_cast<std::size_t>(nvars_),
                           std::move(steps));
    } catch (const std::exception& e) {
      diags_.push_back({src_.name_loc,
                        std::string("internal: program validation failed "
                                    "after analysis: ") +
                            e.what()});
      return std::nullopt;
    }
  }

 private:
  void error(const Loc& loc, std::string msg) {
    diags_.push_back({loc, std::move(msg)});
  }

  // ---- layout ----------------------------------------------------------

  void resolve_layout() {
    if (!src_.procs) {
      error(src_.name_loc, "program declares no 'procs'");
      procs_ = 1;
    } else if (*src_.procs == 0) {
      error(src_.procs_loc, "'procs' must be at least 1");
      procs_ = 1;
    } else {
      procs_ = *src_.procs;
    }
    // Named vars allocate sequentially starting at the declared `vars`
    // total (raw-index space first, names appended after), so a file can
    // freely mix `vars N` + raw refs with named declarations.
    std::uint64_t next = src_.vars.value_or(0);
    for (const VarDeclSrc& d : src_.var_decls) {
      if (is_raw_ref(d.name) || opcode_like(d.name) || reserved(d.name)) {
        error(d.loc, "variable name '" + d.name + "' is reserved");
        continue;
      }
      if (names_.count(d.name)) {
        error(d.loc, "variable '" + d.name + "' already declared");
        continue;
      }
      if (d.count == 0) {
        error(d.loc, "variable '" + d.name + "' has array size 0");
        continue;
      }
      names_[d.name] = VarInfo{next, d.count};
      next += d.count;
    }
    nvars_ = next;
    if (nvars_ == 0) {
      error(src_.name_loc, "program declares no variables");
      nvars_ = 1;
    }
    if (nvars_ > kMaxVarId + 1) {
      error(src_.vars ? src_.vars_loc : src_.name_loc,
            "variable id overflow: program needs " + std::to_string(nvars_) +
                " variables but ids are 32-bit (max " +
                std::to_string(kMaxVarId + 1) + ")");
      nvars_ = 1;
    }
  }

  static bool opcode_like(const std::string& n) {
    using pram::OpCode;
    for (int i = 0; i <= static_cast<int>(OpCode::kGatherDyn); ++i)
      if (n == pram::opcode_name(static_cast<OpCode>(i))) return true;
    return false;
  }

  static bool reserved(const std::string& n) {
    return n == "pram" || n == "procs" || n == "vars" || n == "var" ||
           n == "segment" || n == "step";
  }

  void resolve_segments() {
    for (const SegDeclSrc& d : src_.seg_decls) {
      if (segs_.count(d.name)) {
        error(d.loc, "segment '" + d.name + "' already declared");
        continue;
      }
      const auto base = resolve_ref(d.base);
      if (!base) continue;
      if (d.len == 0) {
        error(d.len_loc, "segment '" + d.name + "' has length 0");
        continue;
      }
      if (d.len > kMaxVarId) {
        error(d.len_loc, "segment '" + d.name + "' length overflows 32 bits");
        continue;
      }
      if (*base + d.len > nvars_) {
        error(d.loc, "segment '" + d.name + "' [v" + std::to_string(*base) +
                         ", v" + std::to_string(*base + d.len) +
                         ") exceeds vars=" + std::to_string(nvars_));
        continue;
      }
      segs_[d.name] = SegInfo{static_cast<std::uint32_t>(*base),
                              static_cast<std::uint32_t>(d.len)};
    }
  }

  /// Resolve a reference to a variable index, or nullopt after reporting.
  std::optional<std::uint64_t> resolve_ref(const Ref& r) {
    auto it = names_.find(r.name);
    if (it == names_.end()) {
      if (!is_raw_ref(r.name)) {
        error(r.loc, "undefined variable '" + r.name + "'");
        return std::nullopt;
      }
      std::uint64_t raw = 0;
      bool overflow = false;
      for (std::size_t i = 1; i < r.name.size(); ++i) {
        const std::uint64_t d = static_cast<std::uint64_t>(r.name[i] - '0');
        if (raw > (UINT64_MAX - d) / 10) overflow = true;
        if (!overflow) raw = raw * 10 + d;
      }
      if (r.has_subscript) {
        error(r.loc, "raw variable reference '" + r.name +
                         "' cannot take a subscript");
        return std::nullopt;
      }
      if (overflow || raw > kMaxVarId) {
        error(r.loc, "variable id '" + r.name + "' overflows 32 bits");
        return std::nullopt;
      }
      if (raw >= nvars_) {
        error(r.loc, "variable v" + std::to_string(raw) +
                         " out of range (vars=" + std::to_string(nvars_) +
                         ")");
        return std::nullopt;
      }
      return raw;
    }
    const VarInfo& info = it->second;
    std::uint64_t idx = info.base;
    if (r.has_subscript) {
      if (r.subscript >= info.count) {
        error(r.loc, "subscript " + std::to_string(r.subscript) +
                         " out of bounds for '" + r.name + "' (size " +
                         std::to_string(info.count) + ")");
        return std::nullopt;
      }
      idx += r.subscript;
    }
    return idx;
  }

  // ---- codegen ---------------------------------------------------------

  /// One resolved lane plus the source it came from (for EREW locations).
  struct Placed {
    const LaneSrc* src = nullptr;
    std::size_t step = 0;
  };

  std::vector<pram::Step> build_steps() {
    std::vector<pram::Step> steps(src_.steps.size());
    placed_.assign(src_.steps.size(), {});
    for (std::size_t s = 0; s < src_.steps.size(); ++s) {
      steps[s].instrs.assign(static_cast<std::size_t>(procs_),
                             pram::Instr::nop());
      placed_[s].assign(static_cast<std::size_t>(procs_), nullptr);
      for (const LaneSrc& lane : src_.steps[s].lanes) {
        if (lane.lane >= procs_) {
          error(lane.lane_loc, "lane " + std::to_string(lane.lane) +
                                   " out of range (procs=" +
                                   std::to_string(procs_) + ")");
          continue;
        }
        if (placed_[s][lane.lane] != nullptr) {
          error(lane.lane_loc, "duplicate lane " + std::to_string(lane.lane) +
                                   " in step");
          continue;
        }
        const auto ins = lower(lane);
        if (!ins) continue;
        steps[s].instrs[lane.lane] = *ins;
        placed_[s][lane.lane] = &lane;
      }
    }
    return steps;
  }

  std::optional<pram::Instr> lower(const LaneSrc& lane) {
    using pram::Instr;
    using pram::OpCode;
    auto u32 = [](std::uint64_t v) { return static_cast<std::uint32_t>(v); };
    switch (lane.op) {
      case OpCode::kNop:
        return Instr::nop();
      case OpCode::kConst: {
        const auto z = resolve_ref(lane.z);
        if (!z) return std::nullopt;
        return Instr::constant(u32(*z), lane.imm);
      }
      case OpCode::kRandBelow: {
        const auto z = resolve_ref(lane.z);
        if (!z) return std::nullopt;
        return Instr::rand_below(u32(*z), lane.imm);
      }
      case OpCode::kCoin: {
        const auto z = resolve_ref(lane.z);
        if (!z) return std::nullopt;
        // The immediate is the RAW fixed-point success probability
        // (p * 2^32), not a percentage — this keeps emit/parse lossless.
        if (lane.imm > (std::uint64_t{1} << 32)) {
          error(lane.imm_loc,
                "coin immediate exceeds 2^32 (fixed-point probability)");
          return std::nullopt;
        }
        return pram::Instr{OpCode::kCoin, u32(*z), 0, 0, 0, lane.imm};
      }
      case OpCode::kCopy: {
        const auto z = resolve_ref(lane.z), x = resolve_ref(lane.x);
        if (!z || !x) return std::nullopt;
        return Instr::copy(u32(*z), u32(*x));
      }
      case OpCode::kSelect: {
        const auto z = resolve_ref(lane.z), c = resolve_ref(lane.c),
                   x = resolve_ref(lane.x), y = resolve_ref(lane.y);
        if (!z || !c || !x || !y) return std::nullopt;
        return Instr::select(u32(*z), u32(*c), u32(*x), u32(*y));
      }
      case OpCode::kGather: {
        const auto z = resolve_ref(lane.z), x = resolve_ref(lane.x),
                   y = resolve_ref(lane.y);
        if (!z || !x || !y) return std::nullopt;
        if (lane.imm == 0) {
          error(lane.imm_loc, "gather window length is 0");
          return std::nullopt;
        }
        if (lane.imm > kMaxVarId) {
          error(lane.imm_loc, "gather window length overflows 32 bits");
          return std::nullopt;
        }
        if (*y + lane.imm > nvars_) {
          error(lane.y.loc,
                "gather window [v" + std::to_string(*y) + ", v" +
                    std::to_string(*y + lane.imm) +
                    ") exceeds vars=" + std::to_string(nvars_));
          return std::nullopt;
        }
        return Instr::gather(u32(*z), u32(*x), u32(*y), u32(lane.imm));
      }
      case OpCode::kGatherDyn: {
        const auto z = resolve_ref(lane.z), x = resolve_ref(lane.x),
                   y = resolve_ref(lane.y), c = resolve_ref(lane.c);
        if (!z || !x || !y || !c) return std::nullopt;
        auto it = segs_.find(lane.seg_name);
        if (it == segs_.end()) {
          error(lane.seg_loc,
                "undefined segment '" + lane.seg_name + "'");
          return std::nullopt;
        }
        return Instr::gather_dyn(u32(*z), u32(*x), u32(*y), u32(*c),
                                 it->second.base, it->second.len);
      }
      default: {  // two-operand ALU ops
        const auto z = resolve_ref(lane.z), x = resolve_ref(lane.x),
                   y = resolve_ref(lane.y);
        if (!z || !x || !y) return std::nullopt;
        return pram::Instr{lane.op, u32(*z), u32(*x), u32(*y), 0, 0};
      }
    }
  }

  // ---- EREW (source-located mirror of Program::validate_erew) ----------

  void check_erew(const std::vector<pram::Step>& steps) {
    std::vector<std::uint32_t> reads(nvars_, 0), writes(nvars_, 0);
    for (std::size_t s = 0; s < steps.size(); ++s) {
      const std::uint32_t epoch = static_cast<std::uint32_t>(s) + 1;
      std::vector<std::pair<std::uint32_t, std::uint32_t>> step_segs;
      struct Write { std::uint32_t var; const LaneSrc* lane; };
      std::vector<Write> written;
      for (std::size_t t = 0; t < steps[s].instrs.size(); ++t) {
        const pram::Instr& ins = steps[s].instrs[t];
        const LaneSrc* lane = placed_[s][t];
        if (lane == nullptr) continue;  // implicit nop
        const int r = pram::reads_of(ins.op);
        if (r >= 1) mark_read(reads, epoch, ins.x, lane->x.loc);
        if (r >= 2 && ins.op != pram::OpCode::kGather)
          mark_read(reads, epoch, ins.y, lane->y.loc);
        if (r >= 3) mark_read(reads, epoch, ins.c, lane->c.loc);
        if (pram::reads_window(ins.op)) {
          // The whole declared window counts as read (the executed index is
          // data-dependent), so overlap with any other read is a conflict.
          for (std::uint32_t v = ins.y; v < ins.y + ins.c; ++v)
            mark_read(reads, epoch, v, lane->y.loc);
        }
        if (pram::reads_dyn_window(ins.op)) {
          const auto seg = std::make_pair(pram::dyn_seg_base(ins),
                                          pram::dyn_seg_len(ins));
          if (std::find(step_segs.begin(), step_segs.end(), seg) ==
              step_segs.end())
            step_segs.push_back(seg);
        }
        if (pram::writes_dest(ins.op)) {
          if (writes[ins.z] == epoch) {
            error(lane->z.loc, "EREW violation: variable v" +
                                   std::to_string(ins.z) +
                                   " written by more than one thread in this "
                                   "step");
          } else {
            writes[ins.z] = epoch;
          }
          written.push_back({ins.z, lane});
        }
      }
      // Segment cells must stay frozen while any gather_dyn of this step
      // may read them.
      for (const auto& [base, len] : step_segs)
        for (const Write& w : written)
          if (w.var >= base && w.var - base < len)
            error(w.lane->z.loc,
                  "variable v" + std::to_string(w.var) +
                      " written inside gather_dyn segment [v" +
                      std::to_string(base) + ", v" +
                      std::to_string(static_cast<std::uint64_t>(base) + len) +
                      ")");
    }
  }

  void mark_read(std::vector<std::uint32_t>& reads, std::uint32_t epoch,
                 std::uint32_t var, const Loc& loc) {
    if (reads[var] == epoch) {
      error(loc, "EREW violation: variable v" + std::to_string(var) +
                     " read by more than one thread in this step");
      return;
    }
    reads[var] = epoch;
  }

  const ProgramSrc& src_;
  std::vector<Diagnostic>& diags_;
  std::uint64_t procs_ = 0;
  std::uint64_t nvars_ = 0;
  std::unordered_map<std::string, VarInfo> names_;
  std::unordered_map<std::string, SegInfo> segs_;
  std::vector<std::vector<const LaneSrc*>> placed_;  ///< [step][thread]
};

}  // namespace

CompileResult compile_source(const SourceFile& src) {
  CompileResult result;
  const std::vector<Token> toks = lex(src, result.diagnostics);
  if (!result.diagnostics.empty()) return result;
  const auto tree = parse(toks, result.diagnostics);
  if (!tree) return result;
  Analyzer analyzer(*tree, result.diagnostics);
  result.program = analyzer.run();
  return result;
}

CompileResult compile_file(const std::string& path, SourceFile& out_src) {
  out_src.name = path;
  out_src.text.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    CompileResult result;
    result.diagnostics.push_back({Loc{}, "cannot open '" + path + "'"});
    return result;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  out_src.text = buf.str();
  return compile_source(out_src);
}

}  // namespace apex::lang
