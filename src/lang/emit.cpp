#include "lang/emit.h"

#include <sstream>
#include <utility>
#include <vector>

namespace apex::lang {

namespace {

std::string ref(std::uint32_t v) { return "v" + std::to_string(v); }

}  // namespace

std::string emit_pram(const pram::Program& p, const std::string& name,
                      const std::string& comment) {
  using pram::Instr;
  using pram::OpCode;
  std::ostringstream os;
  if (!comment.empty()) {
    std::istringstream lines(comment);
    std::string line;
    while (std::getline(lines, line)) os << "# " << line << '\n';
  }
  os << "pram " << name << '\n';
  os << "procs " << p.nthreads() << '\n';
  os << "vars " << p.nvars() << '\n';

  // Hoist gather_dyn segments into declarations, first-use order.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> segs;
  auto seg_id = [&](const Instr& ins) {
    const auto key = std::make_pair(pram::dyn_seg_base(ins),
                                    pram::dyn_seg_len(ins));
    for (std::size_t i = 0; i < segs.size(); ++i)
      if (segs[i] == key) return i;
    segs.push_back(key);
    return segs.size() - 1;
  };
  for (std::size_t s = 0; s < p.nsteps(); ++s)
    for (const Instr& ins : p.step(s).instrs)
      if (ins.op == OpCode::kGatherDyn) seg_id(ins);
  for (std::size_t i = 0; i < segs.size(); ++i)
    os << "segment s" << i << " = " << ref(segs[i].first) << " : "
       << segs[i].second << '\n';

  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    os << "\nstep {\n";
    for (std::size_t t = 0; t < p.nthreads(); ++t) {
      const Instr& ins = p.step(s).instrs[t];
      if (ins.op == OpCode::kNop) continue;
      os << "  " << t << ": " << pram::opcode_name(ins.op) << ' '
         << ref(ins.z);
      switch (ins.op) {
        case OpCode::kConst:
        case OpCode::kRandBelow:
        case OpCode::kCoin:
          os << ", " << ins.imm;
          break;
        case OpCode::kCopy:
          os << ", " << ref(ins.x);
          break;
        case OpCode::kSelect:
          os << ", " << ref(ins.c) << ", " << ref(ins.x) << ", "
             << ref(ins.y);
          break;
        case OpCode::kGather:
          os << ", " << ref(ins.x) << ", " << ref(ins.y) << ", " << ins.c;
          break;
        case OpCode::kGatherDyn:
          os << ", " << ref(ins.x) << ", " << ref(ins.y) << ", "
             << ref(ins.c) << ", s" << seg_id(ins);
          break;
        default:  // two-operand ALU ops
          os << ", " << ref(ins.x) << ", " << ref(ins.y);
          break;
      }
      os << '\n';
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace apex::lang
