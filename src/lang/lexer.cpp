#include "lang/lexer.h"

namespace apex::lang {

const char* tok_kind_name(TokKind k) noexcept {
  switch (k) {
    case TokKind::kIdent: return "identifier";
    case TokKind::kInt: return "integer";
    case TokKind::kLBrace: return "'{'";
    case TokKind::kRBrace: return "'}'";
    case TokKind::kLBracket: return "'['";
    case TokKind::kRBracket: return "']'";
    case TokKind::kComma: return "','";
    case TokKind::kColon: return "':'";
    case TokKind::kEq: return "'='";
    case TokKind::kEnd: return "end of input";
  }
  return "?";
}

namespace {

bool is_ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool is_ident_char(char c) {
  return is_ident_start(c) || (c >= '0' && c <= '9');
}
bool is_digit(char c) { return c >= '0' && c <= '9'; }

}  // namespace

std::vector<Token> lex(const SourceFile& src,
                       std::vector<Diagnostic>& diags) {
  std::vector<Token> toks;
  const std::string& s = src.text;
  Loc loc;  // line 1, col 1, offset 0
  auto advance = [&](std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      if (s[loc.offset] == '\n') {
        ++loc.line;
        loc.col = 1;
      } else {
        ++loc.col;
      }
      ++loc.offset;
    }
  };
  while (loc.offset < s.size()) {
    const char c = s[loc.offset];
    if (c == ' ' || c == '\t' || c == '\r' || c == '\n') {
      advance(1);
      continue;
    }
    if (c == '#') {
      while (loc.offset < s.size() && s[loc.offset] != '\n') advance(1);
      continue;
    }
    const Loc start = loc;
    if (is_ident_start(c)) {
      std::size_t end = loc.offset;
      while (end < s.size() && is_ident_char(s[end])) ++end;
      Token t{TokKind::kIdent, start, s.substr(loc.offset, end - loc.offset)};
      advance(end - loc.offset);
      toks.push_back(std::move(t));
      continue;
    }
    if (is_digit(c)) {
      std::size_t end = loc.offset;
      std::uint64_t v = 0;
      bool overflow = false;
      while (end < s.size() && is_digit(s[end])) {
        const std::uint64_t d = static_cast<std::uint64_t>(s[end] - '0');
        if (v > (UINT64_MAX - d) / 10) overflow = true;
        if (!overflow) v = v * 10 + d;
        ++end;
      }
      if (overflow) {
        diags.push_back({start, "integer literal '" +
                                    s.substr(loc.offset, end - loc.offset) +
                                    "' does not fit in 64 bits"});
        break;
      }
      Token t{TokKind::kInt, start,
              s.substr(loc.offset, end - loc.offset), v};
      advance(end - loc.offset);
      toks.push_back(std::move(t));
      continue;
    }
    TokKind k;
    switch (c) {
      case '{': k = TokKind::kLBrace; break;
      case '}': k = TokKind::kRBrace; break;
      case '[': k = TokKind::kLBracket; break;
      case ']': k = TokKind::kRBracket; break;
      case ',': k = TokKind::kComma; break;
      case ':': k = TokKind::kColon; break;
      case '=': k = TokKind::kEq; break;
      default:
        diags.push_back({start, std::string("unexpected character '") + c +
                                    "'"});
        Token end_tok;
        end_tok.loc = loc;
        toks.push_back(end_tok);
        return toks;
    }
    toks.push_back({k, start, std::string(1, c)});
    advance(1);
  }
  Token end_tok;
  end_tok.loc = loc;
  toks.push_back(end_tok);
  return toks;
}

}  // namespace apex::lang
