// Program -> .pram source emitter: the inverse of compile_source.
//
// For any Program built from the Instr convenience constructors (which
// zero unused operand fields — everything in the workload registry),
// compile(emit(p)) reproduces p BIT-FOR-BIT: every Instr field, nthreads,
// nvars, and step count.  This is how the shipped kernels/*.pram sources
// are generated and how the round-trip tier-1 test pins them against
// their registry twins (`apexcli emit --workload=... --n=...` is the
// regeneration path).
//
// Emission is canonical: raw v<index> references, nop lanes omitted
// (empty steps keep their braces), gather_dyn segments hoisted into
// `segment s<k> = ...` declarations in first-use order.
#pragma once

#include <string>

#include "pram/program.h"

namespace apex::lang {

/// Render `p` as compilable .pram source.  `name` becomes the program
/// name in the header; `comment`, when non-empty, is emitted as leading
/// `# ` lines.
std::string emit_pram(const pram::Program& p, const std::string& name,
                      const std::string& comment = "");

}  // namespace apex::lang
