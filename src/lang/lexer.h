// Tokenizer for the .pram kernel language.
//
// The language is whitespace- and newline-insensitive; `#` starts a
// comment that runs to end of line.  Identifiers are [A-Za-z_][A-Za-z0-9_]*
// (keywords are ordinary identifiers resolved by the parser); integer
// literals are strict decimal digits — no sign, no leading whitespace
// baked into the token, no hex.  Punctuation: { } [ ] , : =
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lang/source.h"

namespace apex::lang {

enum class TokKind : std::uint8_t {
  kIdent,
  kInt,
  kLBrace,   // {
  kRBrace,   // }
  kLBracket, // [
  kRBracket, // ]
  kComma,    // ,
  kColon,    // :
  kEq,       // =
  kEnd,      // end of input
};

const char* tok_kind_name(TokKind k) noexcept;

struct Token {
  TokKind kind = TokKind::kEnd;
  Loc loc;
  std::string text;          ///< Identifier spelling / literal spelling.
  std::uint64_t value = 0;   ///< For kInt.
};

/// Tokenize the whole file.  On a lexical error (stray character, integer
/// overflowing 64 bits) a diagnostic is appended and lexing stops; the
/// token stream always ends with a kEnd token.
std::vector<Token> lex(const SourceFile& src,
                       std::vector<Diagnostic>& diags);

}  // namespace apex::lang
