#include "lang/parser.h"

namespace apex::lang {

namespace {

/// Opcode keywords that introduce an instruction, in OpCode order; the
/// spellings are exactly pram::opcode_name so emitted programs are
/// self-describing.
std::optional<pram::OpCode> opcode_from_keyword(const std::string& kw) {
  using pram::OpCode;
  static constexpr OpCode kAll[] = {
      OpCode::kNop,    OpCode::kConst, OpCode::kCopy,      OpCode::kAdd,
      OpCode::kSub,    OpCode::kMul,   OpCode::kMin,       OpCode::kMax,
      OpCode::kXor,    OpCode::kAnd,   OpCode::kOr,        OpCode::kLess,
      OpCode::kEq,     OpCode::kSelect, OpCode::kRandBelow, OpCode::kCoin,
      OpCode::kGather, OpCode::kGatherDyn};
  for (OpCode op : kAll)
    if (kw == pram::opcode_name(op)) return op;
  return std::nullopt;
}

class Parser {
 public:
  Parser(const std::vector<Token>& toks, std::vector<Diagnostic>& diags)
      : toks_(toks), diags_(diags) {}

  std::optional<ProgramSrc> run() {
    ProgramSrc p;
    if (!expect_keyword("pram")) return std::nullopt;
    const Token* name = expect(TokKind::kIdent, "program name");
    if (!name) return std::nullopt;
    p.name = name->text;
    p.name_loc = name->loc;
    while (!at(TokKind::kEnd)) {
      if (!parse_item(p)) return std::nullopt;
    }
    return p;
  }

 private:
  const Token& cur() const { return toks_[pos_]; }
  bool at(TokKind k) const { return cur().kind == k; }
  const Token& take() { return toks_[pos_++]; }

  void error_here(const std::string& msg) {
    diags_.push_back({cur().loc, msg});
  }

  const Token* expect(TokKind k, const char* what) {
    if (!at(k)) {
      error_here(std::string("expected ") + what + ", found " +
                 describe(cur()));
      return nullptr;
    }
    return &take();
  }

  bool expect_keyword(const char* kw) {
    if (!at(TokKind::kIdent) || cur().text != kw) {
      error_here(std::string("expected '") + kw + "', found " +
                 describe(cur()));
      return false;
    }
    take();
    return true;
  }

  static std::string describe(const Token& t) {
    switch (t.kind) {
      case TokKind::kIdent: return "'" + t.text + "'";
      case TokKind::kInt: return "'" + t.text + "'";
      case TokKind::kEnd: return "end of input";
      default: return tok_kind_name(t.kind);
    }
  }

  bool parse_item(ProgramSrc& p) {
    if (!at(TokKind::kIdent)) {
      error_here("expected a declaration or 'step', found " + describe(cur()));
      return false;
    }
    const std::string& kw = cur().text;
    if (kw == "procs") {
      p.procs_loc = take().loc;
      const Token* n = expect(TokKind::kInt, "processor count");
      if (!n) return false;
      p.procs = n->value;
      return true;
    }
    if (kw == "vars") {
      p.vars_loc = take().loc;
      const Token* n = expect(TokKind::kInt, "variable count");
      if (!n) return false;
      p.vars = n->value;
      return true;
    }
    if (kw == "var") {
      take();
      const Token* name = expect(TokKind::kIdent, "variable name");
      if (!name) return false;
      VarDeclSrc d{name->loc, name->text, 1};
      if (at(TokKind::kLBracket)) {
        take();
        const Token* cnt = expect(TokKind::kInt, "array size");
        if (!cnt) return false;
        d.count = cnt->value;
        if (!expect(TokKind::kRBracket, "']'")) return false;
      }
      p.var_decls.push_back(std::move(d));
      return true;
    }
    if (kw == "segment") {
      take();
      const Token* name = expect(TokKind::kIdent, "segment name");
      if (!name) return false;
      SegDeclSrc d;
      d.loc = name->loc;
      d.name = name->text;
      if (!expect(TokKind::kEq, "'='")) return false;
      if (!parse_ref(d.base)) return false;
      if (!expect(TokKind::kColon, "':'")) return false;
      const Token* len = expect(TokKind::kInt, "segment length");
      if (!len) return false;
      d.len = len->value;
      d.len_loc = len->loc;
      p.seg_decls.push_back(std::move(d));
      return true;
    }
    if (kw == "step") {
      StepSrc st;
      st.loc = take().loc;
      if (!expect(TokKind::kLBrace, "'{'")) return false;
      while (!at(TokKind::kRBrace)) {
        LaneSrc lane;
        if (!parse_lane(lane)) return false;
        st.lanes.push_back(std::move(lane));
      }
      take();  // '}'
      p.steps.push_back(std::move(st));
      return true;
    }
    error_here("expected a declaration or 'step', found " + describe(cur()));
    return false;
  }

  bool parse_lane(LaneSrc& lane) {
    const Token* t = expect(TokKind::kInt, "lane index");
    if (!t) return false;
    lane.lane = t->value;
    lane.lane_loc = t->loc;
    if (!expect(TokKind::kColon, "':'")) return false;
    if (!at(TokKind::kIdent)) {
      error_here("expected an instruction, found " + describe(cur()));
      return false;
    }
    const Token& op_tok = take();
    const auto op = opcode_from_keyword(op_tok.text);
    if (!op) {
      diags_.push_back({op_tok.loc,
                        "unknown instruction '" + op_tok.text + "'"});
      return false;
    }
    lane.op = *op;
    lane.op_loc = op_tok.loc;
    using pram::OpCode;
    switch (*op) {
      case OpCode::kNop:
        return true;
      case OpCode::kConst:
      case OpCode::kRandBelow:
      case OpCode::kCoin:
        return parse_ref(lane.z) && comma() && parse_imm(lane);
      case OpCode::kCopy:
        return parse_ref(lane.z) && comma() && parse_ref(lane.x);
      case OpCode::kSelect:
        // Source order z, cond, x, y mirrors "z = cond ? x : y".
        return parse_ref(lane.z) && comma() && parse_ref(lane.c) && comma() &&
               parse_ref(lane.x) && comma() && parse_ref(lane.y);
      case OpCode::kGather:
        return parse_ref(lane.z) && comma() && parse_ref(lane.x) && comma() &&
               parse_ref(lane.y) && comma() && parse_imm(lane);
      case OpCode::kGatherDyn: {
        if (!(parse_ref(lane.z) && comma() && parse_ref(lane.x) && comma() &&
              parse_ref(lane.y) && comma() && parse_ref(lane.c) && comma()))
          return false;
        const Token* seg = expect(TokKind::kIdent, "segment name");
        if (!seg) return false;
        lane.seg_name = seg->text;
        lane.seg_loc = seg->loc;
        return true;
      }
      default:  // two-operand ALU ops
        return parse_ref(lane.z) && comma() && parse_ref(lane.x) && comma() &&
               parse_ref(lane.y);
    }
  }

  bool comma() { return expect(TokKind::kComma, "','") != nullptr; }

  bool parse_imm(LaneSrc& lane) {
    const Token* t = expect(TokKind::kInt, "an integer immediate");
    if (!t) return false;
    lane.imm = t->value;
    lane.imm_loc = t->loc;
    return true;
  }

  bool parse_ref(Ref& r) {
    const Token* name = expect(TokKind::kIdent, "a variable reference");
    if (!name) return false;
    r.loc = name->loc;
    r.name = name->text;
    if (at(TokKind::kLBracket)) {
      take();
      const Token* idx = expect(TokKind::kInt, "a subscript");
      if (!idx) return false;
      r.has_subscript = true;
      r.subscript = idx->value;
      if (!expect(TokKind::kRBracket, "']'")) return false;
    }
    return true;
  }

  const std::vector<Token>& toks_;
  std::vector<Diagnostic>& diags_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<ProgramSrc> parse(const std::vector<Token>& toks,
                                std::vector<Diagnostic>& diags) {
  return Parser(toks, diags).run();
}

}  // namespace apex::lang
