#include "lang/source.h"

#include <sstream>

namespace apex::lang {

std::string SourceFile::line_at(const Loc& loc) const {
  std::size_t begin = loc.offset > text.size() ? text.size() : loc.offset;
  while (begin > 0 && text[begin - 1] != '\n') --begin;
  std::size_t end = begin;
  while (end < text.size() && text[end] != '\n') ++end;
  return text.substr(begin, end - begin);
}

std::string render_diagnostic(const SourceFile& src, const Diagnostic& d) {
  std::ostringstream os;
  os << src.name << ':' << d.loc.line << ':' << d.loc.col << ": error: "
     << d.message << '\n';
  const std::string line = src.line_at(d.loc);
  os << "  " << line << '\n';
  os << "  ";
  // Tabs copied through so the caret lines up at any tab width.
  for (std::size_t i = 0; i + 1 < d.loc.col && i < line.size(); ++i)
    os << (line[i] == '\t' ? '\t' : ' ');
  os << "^\n";
  return os.str();
}

std::string render_diagnostics(const SourceFile& src,
                               const std::vector<Diagnostic>& ds) {
  std::string out;
  for (const Diagnostic& d : ds) out += render_diagnostic(src, d);
  return out;
}

}  // namespace apex::lang
