#include "pram/ir.h"

#include <algorithm>
#include <cmath>

namespace apex::pram {

const char* opcode_name(OpCode op) noexcept {
  switch (op) {
    case OpCode::kNop: return "nop";
    case OpCode::kConst: return "const";
    case OpCode::kCopy: return "copy";
    case OpCode::kAdd: return "add";
    case OpCode::kSub: return "sub";
    case OpCode::kMul: return "mul";
    case OpCode::kMin: return "min";
    case OpCode::kMax: return "max";
    case OpCode::kXor: return "xor";
    case OpCode::kAnd: return "and";
    case OpCode::kOr: return "or";
    case OpCode::kLess: return "less";
    case OpCode::kEq: return "eq";
    case OpCode::kSelect: return "select";
    case OpCode::kRandBelow: return "rand_below";
    case OpCode::kCoin: return "coin";
    case OpCode::kGather: return "gather";
    case OpCode::kGatherDyn: return "gather_dyn";
  }
  return "?";
}

bool is_nondeterministic(OpCode op) noexcept {
  return op == OpCode::kRandBelow || op == OpCode::kCoin;
}

int reads_of(OpCode op) noexcept {
  switch (op) {
    case OpCode::kNop:
    case OpCode::kConst:
    case OpCode::kRandBelow:
    case OpCode::kCoin:
      return 0;
    case OpCode::kCopy:
    case OpCode::kGather:
      return 1;
    case OpCode::kSelect:
    case OpCode::kGatherDyn:
      return 3;
    default:
      return 2;
  }
}

bool writes_dest(OpCode op) noexcept { return op != OpCode::kNop; }

bool reads_window(OpCode op) noexcept { return op == OpCode::kGather; }

bool reads_dyn_window(OpCode op) noexcept {
  return op == OpCode::kGatherDyn;
}

Instr Instr::coin(std::uint32_t z, double p) {
  p = std::clamp(p, 0.0, 1.0);
  const Word fixed = static_cast<Word>(std::llround(p * 4294967296.0));
  return {OpCode::kCoin, z, 0, 0, 0, std::min<Word>(fixed, 1ULL << 32)};
}

std::string Instr::to_string() const {
  std::string s = opcode_name(op);
  if (op == OpCode::kNop) return s;
  s += " v" + std::to_string(z);
  const int r = reads_of(op);
  if (op == OpCode::kSelect)
    s += " <- v" + std::to_string(c) + " ? v" + std::to_string(x) + " : v" +
         std::to_string(y);
  else if (op == OpCode::kGather)
    s += " <- v[" + std::to_string(y) + " + M[v" + std::to_string(x) +
         "]] window=" + std::to_string(c);
  else if (op == OpCode::kGatherDyn)
    s += " <- seg[" + std::to_string(dyn_seg_base(*this)) + " + M[v" +
         std::to_string(x) + "] + M[v" + std::to_string(y) +
         "]] bound=v" + std::to_string(c) +
         " seg_len=" + std::to_string(dyn_seg_len(*this));
  else if (r >= 1)
    s += " <- v" + std::to_string(x);
  if (r >= 2 && op != OpCode::kSelect && op != OpCode::kGather &&
      op != OpCode::kGatherDyn)
    s += ", v" + std::to_string(y);
  if (op == OpCode::kConst || op == OpCode::kRandBelow || op == OpCode::kCoin)
    s += " imm=" + std::to_string(imm);
  return s;
}

Word eval_deterministic(const Instr& ins, Word x, Word y, Word c) noexcept {
  switch (ins.op) {
    case OpCode::kConst: return ins.imm;
    case OpCode::kCopy: return x;
    case OpCode::kAdd: return x + y;
    case OpCode::kSub: return x - y;
    case OpCode::kMul: return x * y;
    case OpCode::kMin: return std::min(x, y);
    case OpCode::kMax: return std::max(x, y);
    case OpCode::kXor: return x ^ y;
    case OpCode::kAnd: return x & y;
    case OpCode::kOr: return x | y;
    case OpCode::kLess: return x < y ? 1 : 0;
    case OpCode::kEq: return x == y ? 1 : 0;
    case OpCode::kSelect: return c != 0 ? x : y;
    // kGather / kGatherDyn: the caller resolved the computed window or
    // segment read into y (0 when out of range).
    case OpCode::kGather: return y;
    case OpCode::kGatherDyn: return y;
    default: return 0;  // kNop and nondeterministic ops have no det value
  }
}

bool in_support(const Instr& ins, Word v, Word x, Word y, Word c) noexcept {
  switch (ins.op) {
    case OpCode::kRandBelow:
      return v < ins.imm;
    case OpCode::kCoin:
      if (ins.imm == 0) return v == 0;
      if (ins.imm >= (1ULL << 32)) return v == 1;
      return v <= 1;
    case OpCode::kNop:
      return true;
    default:
      return v == eval_deterministic(ins, x, y, c);
  }
}

}  // namespace apex::pram
