// The EREW PRAM program model (paper §2.1).
//
// A program is a sequence of STEPS; at step π every thread T_i performs one
// instruction z ← f(x, y) on shared variables, all threads synchronously.
// f comes from a fixed set of basic operations; the set here includes two
// NONDETERMINISTIC operations (kRandBelow, kCoin) whose results are drawn
// from the executing processor's private random stream — these are what
// break the classical deterministic execution schemes and motivate the
// paper.
//
// Operand addressing is static (variable indices are fixed per
// instruction), which is what lets the execution scheme precompute, for
// every read, the step that last wrote the operand (the "writer table") and
// thus distinguish current values from tardy clobbers by timestamp.
//
// The one extension beyond the paper's static model is kGather: a read
// whose target variable is COMPUTED at run time from another variable's
// value, restricted to a statically declared window.  The writer table
// still covers it because the table records the last writer of EVERY
// variable before every step — only the choice of which entry to consult
// moves to run time.  See the kGather comment below for the exact
// semantics and the EREW discipline it obeys.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "sim/word.h"

namespace apex::pram {

using Word = sim::Word;

enum class OpCode : std::uint8_t {
  kNop,        ///< No operation (thread idle this step).
  kConst,      ///< z = imm
  kCopy,       ///< z = x
  kAdd,        ///< z = x + y
  kSub,        ///< z = x - y   (wrapping)
  kMul,        ///< z = x * y   (wrapping)
  kMin,        ///< z = min(x, y)
  kMax,        ///< z = max(x, y)
  kXor,        ///< z = x ^ y
  kAnd,        ///< z = x & y
  kOr,         ///< z = x | y
  kLess,       ///< z = (x < y) ? 1 : 0
  kEq,         ///< z = (x == y) ? 1 : 0
  kSelect,     ///< z = (c != 0) ? x : y       (three-operand conditional)
  kRandBelow,  ///< z = uniform random in [0, imm)        [nondeterministic]
  kCoin,       ///< z = 1 w.p. imm/2^32, else 0           [nondeterministic]
  /// Data-dependent read: let j = value of variable x; if j < c (the window
  /// length, a CONSTANT, not a variable), z = value of variable (y + j),
  /// else z = 0.  y is the window base (also a constant).  The window
  /// [y, y+c) must lie inside nvars; an out-of-range COMPUTED index is
  /// well-defined (result 0), never a fault.  EREW: the whole window counts
  /// as read by the issuing thread (conservative — at run time exactly one
  /// cell is read), so two threads may not gather from overlapping windows
  /// in one step, and no other thread may read a window variable that step.
  kGather,
};

const char* opcode_name(OpCode op) noexcept;

/// True for operations whose result depends on the executing processor's
/// random stream.
bool is_nondeterministic(OpCode op) noexcept;

/// Number of STATICALLY addressed variable operands read by the op (0, 1,
/// 2, or 3 for kSelect).  kGather reports 1 (the index variable x); its
/// run-time window read is extra and handled by the executors directly.
int reads_of(OpCode op) noexcept;

/// True if the op writes its destination (everything but kNop).
bool writes_dest(OpCode op) noexcept;

/// True for kGather: the op performs a second, run-time-addressed read
/// inside the window [y, y+c).
bool reads_window(OpCode op) noexcept;

struct Instr {
  OpCode op = OpCode::kNop;
  std::uint32_t z = 0;  ///< Destination variable.
  std::uint32_t x = 0;  ///< First operand (if reads_of >= 1).
  std::uint32_t y = 0;  ///< Second operand (if reads_of >= 2).
  std::uint32_t c = 0;  ///< Condition operand (kSelect only).
  Word imm = 0;         ///< Immediate (kConst, kRandBelow, kCoin).

  // Convenience constructors.
  static Instr nop() { return {}; }
  static Instr constant(std::uint32_t z, Word imm) {
    return {OpCode::kConst, z, 0, 0, 0, imm};
  }
  static Instr copy(std::uint32_t z, std::uint32_t x) {
    return {OpCode::kCopy, z, x, 0, 0, 0};
  }
  static Instr add(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kAdd, z, x, y, 0, 0};
  }
  static Instr sub(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kSub, z, x, y, 0, 0};
  }
  static Instr mul(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kMul, z, x, y, 0, 0};
  }
  static Instr min(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kMin, z, x, y, 0, 0};
  }
  static Instr max(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kMax, z, x, y, 0, 0};
  }
  static Instr xor_(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kXor, z, x, y, 0, 0};
  }
  static Instr and_(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kAnd, z, x, y, 0, 0};
  }
  static Instr or_(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kOr, z, x, y, 0, 0};
  }
  static Instr less(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kLess, z, x, y, 0, 0};
  }
  static Instr eq(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kEq, z, x, y, 0, 0};
  }
  static Instr select(std::uint32_t z, std::uint32_t c, std::uint32_t x,
                      std::uint32_t y) {
    return {OpCode::kSelect, z, x, y, c, 0};
  }
  static Instr rand_below(std::uint32_t z, Word bound) {
    return {OpCode::kRandBelow, z, 0, 0, 0, bound};
  }
  /// z = (M[idx] < len) ? M[base + M[idx]] : 0.  `base`/`len` declare the
  /// static window; only `idx` is a variable operand.
  static Instr gather(std::uint32_t z, std::uint32_t idx, std::uint32_t base,
                      std::uint32_t len) {
    return {OpCode::kGather, z, idx, base, len, 0};
  }
  /// Coin with success probability p (quantized to 32-bit fixed point).
  static Instr coin(std::uint32_t z, double p);

  std::string to_string() const;
};

/// Sentinel returned by gather_target for an out-of-window computed index.
inline constexpr std::uint32_t kGatherOutOfRange =
    std::numeric_limits<std::uint32_t>::max();

/// The variable a kGather with index value `j` reads, or kGatherOutOfRange
/// when j falls outside the declared window (the result is then 0).
/// Precondition: ins.op == kGather.
inline constexpr std::uint32_t gather_target(const Instr& ins,
                                             Word j) noexcept {
  return j < ins.c ? ins.y + static_cast<std::uint32_t>(j)
                   : kGatherOutOfRange;
}

/// Pure evaluation of a deterministic op on operand values.
/// Precondition: !is_nondeterministic(op).  For kGather, `x` must be the
/// index value and `y` the value of the computed target variable (0 when
/// out of window): the result is then simply that window value.
Word eval_deterministic(const Instr& ins, Word x, Word y, Word c) noexcept;

/// True iff `v` is a possible result of the (possibly nondeterministic)
/// instruction — the support used by Theorem 1's Correctness property.
/// For deterministic ops the caller supplies the operand values.
bool in_support(const Instr& ins, Word v, Word x, Word y, Word c) noexcept;

}  // namespace apex::pram
