// The EREW PRAM program model (paper §2.1).
//
// A program is a sequence of STEPS; at step π every thread T_i performs one
// instruction z ← f(x, y) on shared variables, all threads synchronously.
// f comes from a fixed set of basic operations; the set here includes two
// NONDETERMINISTIC operations (kRandBelow, kCoin) whose results are drawn
// from the executing processor's private random stream — these are what
// break the classical deterministic execution schemes and motivate the
// paper.
//
// Operand addressing is static (variable indices are fixed per
// instruction), which is what lets the execution scheme precompute, for
// every read, the step that last wrote the operand (the "writer table") and
// thus distinguish current values from tardy clobbers by timestamp.
//
// Two extensions go beyond the paper's static model: kGather, a read
// whose target variable is COMPUTED at run time from another variable's
// value, restricted to a statically declared window; and kGatherDyn,
// whose window base and bound additionally come from VARIABLES (the shape
// a CSR row-offset walk needs), restricted to a statically declared
// segment.  The writer table still covers both because the table records
// the last writer of EVERY variable before every step — only the choice
// of which entry to consult moves to run time.  See the per-op comments
// below for the exact semantics and the EREW discipline each obeys.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

#include "sim/word.h"

namespace apex::pram {

using Word = sim::Word;

enum class OpCode : std::uint8_t {
  kNop,        ///< No operation (thread idle this step).
  kConst,      ///< z = imm
  kCopy,       ///< z = x
  kAdd,        ///< z = x + y
  kSub,        ///< z = x - y   (wrapping)
  kMul,        ///< z = x * y   (wrapping)
  kMin,        ///< z = min(x, y)
  kMax,        ///< z = max(x, y)
  kXor,        ///< z = x ^ y
  kAnd,        ///< z = x & y
  kOr,         ///< z = x | y
  kLess,       ///< z = (x < y) ? 1 : 0
  kEq,         ///< z = (x == y) ? 1 : 0
  kSelect,     ///< z = (c != 0) ? x : y       (three-operand conditional)
  kRandBelow,  ///< z = uniform random in [0, imm)        [nondeterministic]
  kCoin,       ///< z = 1 w.p. imm/2^32, else 0           [nondeterministic]
  /// Data-dependent read: let j = value of variable x; if j < c (the window
  /// length, a CONSTANT, not a variable), z = value of variable (y + j),
  /// else z = 0.  y is the window base (also a constant).  The window
  /// [y, y+c) must lie inside nvars; an out-of-range COMPUTED index is
  /// well-defined (result 0), never a fault.  EREW: the whole window counts
  /// as read by the issuing thread (conservative — at run time exactly one
  /// cell is read), so two threads may not gather from overlapping windows
  /// in one step, and no other thread may read a window variable that step.
  kGather,
  /// Data-DEPENDENT window read: the window base and bound are VARIABLES,
  /// not constants — this is what a real CSR frontier walk needs, where a
  /// processor's element range comes from the row-offset array at run
  /// time.  Let j = M[x] + M[y] (wrapping); if j < M[c] and j < seg_len,
  /// z = M[seg_base + j], else z = 0.  `x` is the index variable, `y` the
  /// base-offset variable, `c` the bound variable (all three are ordinary
  /// exclusive-read operands); imm packs the STATIC segment
  /// (seg_len << 32 | seg_base) that confines every possible computed
  /// read, so writer tables and audits stay precomputable.  EREW
  /// discipline: reads inside a declared segment are CREW — deliberately
  /// relaxed, because segment cells are frozen data loaded before the
  /// kernel runs and a concurrent pure read under the same stamp
  /// discipline is harmless — but any same-step WRITE into any declared
  /// segment is rejected by the checker.
  kGatherDyn,
};

const char* opcode_name(OpCode op) noexcept;

/// True for operations whose result depends on the executing processor's
/// random stream.
bool is_nondeterministic(OpCode op) noexcept;

/// Number of STATICALLY addressed variable operands read by the op (0, 1,
/// 2, or 3 for kSelect).  kGather reports 1 (the index variable x); its
/// run-time window read is extra and handled by the executors directly.
int reads_of(OpCode op) noexcept;

/// True if the op writes its destination (everything but kNop).
bool writes_dest(OpCode op) noexcept;

/// True for kGather: the op performs a second, run-time-addressed read
/// inside the window [y, y+c).
bool reads_window(OpCode op) noexcept;

/// True for kGatherDyn: the op performs a run-time-addressed read inside
/// the static segment packed into imm (base/bound resolved from variables).
bool reads_dyn_window(OpCode op) noexcept;

struct Instr {
  OpCode op = OpCode::kNop;
  std::uint32_t z = 0;  ///< Destination variable.
  std::uint32_t x = 0;  ///< First operand (if reads_of >= 1).
  std::uint32_t y = 0;  ///< Second operand (if reads_of >= 2).
  std::uint32_t c = 0;  ///< Condition operand (kSelect only).
  Word imm = 0;         ///< Immediate (kConst, kRandBelow, kCoin).

  // Convenience constructors.
  static Instr nop() { return {}; }
  static Instr constant(std::uint32_t z, Word imm) {
    return {OpCode::kConst, z, 0, 0, 0, imm};
  }
  static Instr copy(std::uint32_t z, std::uint32_t x) {
    return {OpCode::kCopy, z, x, 0, 0, 0};
  }
  static Instr add(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kAdd, z, x, y, 0, 0};
  }
  static Instr sub(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kSub, z, x, y, 0, 0};
  }
  static Instr mul(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kMul, z, x, y, 0, 0};
  }
  static Instr min(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kMin, z, x, y, 0, 0};
  }
  static Instr max(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kMax, z, x, y, 0, 0};
  }
  static Instr xor_(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kXor, z, x, y, 0, 0};
  }
  static Instr and_(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kAnd, z, x, y, 0, 0};
  }
  static Instr or_(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kOr, z, x, y, 0, 0};
  }
  static Instr less(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kLess, z, x, y, 0, 0};
  }
  static Instr eq(std::uint32_t z, std::uint32_t x, std::uint32_t y) {
    return {OpCode::kEq, z, x, y, 0, 0};
  }
  static Instr select(std::uint32_t z, std::uint32_t c, std::uint32_t x,
                      std::uint32_t y) {
    return {OpCode::kSelect, z, x, y, c, 0};
  }
  static Instr rand_below(std::uint32_t z, Word bound) {
    return {OpCode::kRandBelow, z, 0, 0, 0, bound};
  }
  /// z = (M[idx] < len) ? M[base + M[idx]] : 0.  `base`/`len` declare the
  /// static window; only `idx` is a variable operand.
  static Instr gather(std::uint32_t z, std::uint32_t idx, std::uint32_t base,
                      std::uint32_t len) {
    return {OpCode::kGather, z, idx, base, len, 0};
  }
  /// z = (M[idx] + M[off] < min(M[bound], seg_len))
  ///         ? M[seg_base + M[idx] + M[off]] : 0.
  /// `idx`/`off`/`bound` are variable operands; `seg_base`/`seg_len`
  /// statically declare the segment every computed read stays inside.
  static Instr gather_dyn(std::uint32_t z, std::uint32_t idx,
                          std::uint32_t off, std::uint32_t bound,
                          std::uint32_t seg_base, std::uint32_t seg_len) {
    return {OpCode::kGatherDyn, z, idx, off, bound,
            (Word{seg_len} << 32) | seg_base};
  }
  /// Coin with success probability p (quantized to 32-bit fixed point).
  static Instr coin(std::uint32_t z, double p);

  /// Field-wise equality — the "bit-for-bit" relation the .pram round-trip
  /// tests pin (lang::emit_pram followed by lang::compile_source must
  /// reproduce every field of every instruction).
  bool operator==(const Instr&) const = default;

  std::string to_string() const;
};

/// Sentinel returned by gather_target for an out-of-window computed index.
inline constexpr std::uint32_t kGatherOutOfRange =
    std::numeric_limits<std::uint32_t>::max();

/// The variable a kGather with index value `j` reads, or kGatherOutOfRange
/// when j falls outside the declared window (the result is then 0).
/// Precondition: ins.op == kGather.
inline constexpr std::uint32_t gather_target(const Instr& ins,
                                             Word j) noexcept {
  return j < ins.c ? ins.y + static_cast<std::uint32_t>(j)
                   : kGatherOutOfRange;
}

/// The static segment a kGatherDyn confines its computed reads to.
/// Precondition: ins.op == kGatherDyn.
inline constexpr std::uint32_t dyn_seg_base(const Instr& ins) noexcept {
  return static_cast<std::uint32_t>(ins.imm & 0xffffffffULL);
}
inline constexpr std::uint32_t dyn_seg_len(const Instr& ins) noexcept {
  return static_cast<std::uint32_t>(ins.imm >> 32);
}

/// The variable a kGatherDyn reads given the already-combined index
/// j = M[x] + M[y] and the resolved bound value M[c], or
/// kGatherOutOfRange when the read falls outside both limits (result 0).
/// Precondition: ins.op == kGatherDyn.
inline constexpr std::uint32_t gather_dyn_target(const Instr& ins, Word j,
                                                 Word bound) noexcept {
  return (j < bound && j < dyn_seg_len(ins))
             ? dyn_seg_base(ins) + static_cast<std::uint32_t>(j)
             : kGatherOutOfRange;
}

/// Pure evaluation of a deterministic op on operand values.
/// Precondition: !is_nondeterministic(op).  For kGather, `x` must be the
/// index value and `y` the value of the computed target variable (0 when
/// out of window): the result is then simply that window value.  For
/// kGatherDyn the caller likewise resolves the computed segment read into
/// `y` (0 when out of range) and the result is that value.
Word eval_deterministic(const Instr& ins, Word x, Word y, Word c) noexcept;

/// True iff `v` is a possible result of the (possibly nondeterministic)
/// instruction — the support used by Theorem 1's Correctness property.
/// For deterministic ops the caller supplies the operand values.
bool in_support(const Instr& ins, Word v, Word x, Word y, Word c) noexcept;

}  // namespace apex::pram
