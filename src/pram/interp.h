// Synchronous reference interpreter.
//
// Executes a PRAM program exactly as the idealized machine would: all
// instructions of a step read their operands from the pre-step memory image
// and commit their writes simultaneously.  Used as ground truth:
//   * deterministic programs: the asynchronous executor's result must match
//     the interpreter's bit-for-bit;
//   * nondeterministic programs: the interpreter samples one valid
//     execution (given an Rng), and exposes a trace so tests can check that
//     the executor's outcome is consistent with SOME valid execution.
#pragma once

#include <vector>

#include "pram/program.h"
#include "util/rng.h"

namespace apex::pram {

struct InterpResult {
  std::vector<Word> memory;  ///< Final variable values.
  /// Value produced by thread t at step s (0 for kNop); the "NewVal trace".
  std::vector<std::vector<Word>> produced;  ///< [step][thread]
};

class Interpreter {
 public:
  explicit Interpreter(const Program& p) : prog_(&p) {}

  /// Run the whole program from `initial` memory (resized to nvars, zero
  /// filled).  Nondeterministic ops draw from `rng`.
  InterpResult run(std::vector<Word> initial, apex::Rng rng) const;

  /// Deterministic convenience: requires !prog.is_nondeterministic().
  InterpResult run_deterministic(std::vector<Word> initial) const;

 private:
  const Program* prog_;
};

/// Consistency oracle for nondeterministic programs: given the final memory
/// of an execution and the per-step agreed values ("produced" trace),
/// replays the program treating nondeterministic results as given, and
/// verifies every deterministic op and the final memory match.  Returns an
/// empty string on success, else a human-readable violation description.
std::string check_execution_consistency(
    const Program& p, const std::vector<Word>& initial,
    const std::vector<std::vector<Word>>& produced,
    const std::vector<Word>& final_memory);

}  // namespace apex::pram
