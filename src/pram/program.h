// PRAM program container, builder, EREW validation, and writer-table
// analysis.
//
// The writer table is the static analysis the execution scheme relies on:
// for every (step π, operand variable v) it records the index w of the last
// step before π that writes v (or kInitial when v still holds its input
// value).  At run time, a Compute task reading v for step π accepts a
// memory cell only if its timestamp equals stamp(w) — this is how tardy
// clobbers are detected instead of silently consumed.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "pram/ir.h"

namespace apex::pram {

/// Sentinel writer index: the variable still holds its initial value.
inline constexpr std::uint32_t kInitial = std::numeric_limits<std::uint32_t>::max();

/// Timestamp carried by the write of step `s` (steps are 0-based; stamp 0 is
/// reserved for initial values, matching sim::Cell's never-written default).
inline constexpr sim::Word stamp_of_step(std::uint32_t s) noexcept {
  return static_cast<sim::Word>(s) + 1;
}
inline constexpr sim::Word stamp_of_writer(std::uint32_t w) noexcept {
  return w == kInitial ? 0 : stamp_of_step(w);
}

struct Step {
  std::vector<Instr> instrs;  ///< One per thread.
};

/// Per-instruction operand provenance for one step.
struct OperandWriters {
  std::uint32_t x = kInitial;
  std::uint32_t y = kInitial;
  std::uint32_t c = kInitial;
};

class Program {
 public:
  Program(std::size_t nthreads, std::size_t nvars, std::vector<Step> steps);

  std::size_t nthreads() const noexcept { return nthreads_; }
  std::size_t nvars() const noexcept { return nvars_; }
  std::size_t nsteps() const noexcept { return steps_.size(); }
  const Step& step(std::size_t s) const { return steps_.at(s); }

  /// True if any instruction in any step is nondeterministic.
  bool is_nondeterministic() const noexcept { return nondet_; }

  /// Operand provenance of thread `t` at step `s`.
  const OperandWriters& writers(std::size_t s, std::size_t t) const {
    return writers_.at(s).at(t);
  }

  /// The step that most recently wrote `var` strictly before step `s`
  /// (kInitial if none).  Backed by a sparse per-variable index of write
  /// steps (binary search over that variable's writes), so graph-scale
  /// programs don't pay the O(nsteps * nvars) dense table the old layout
  /// materialized.  Executors resolving computed-index (kGather /
  /// kGatherDyn) targets call this on their hot path.
  std::uint32_t last_writer_before(std::size_t s, std::uint32_t var) const;

  /// True if any instruction is a kGatherDyn (data-dependent window).
  /// Executors use this to budget the extra operand read per task.
  bool has_dyn_gather() const noexcept { return has_dyn_gather_; }

  /// Validates the EREW discipline: in every step, each variable is read by
  /// at most one thread and written by at most one thread.  A variable may
  /// be both read and written in the same step (possibly by different
  /// threads): the split Compute/Copy execution orders all reads of a step
  /// before all writes, so pre-step values are always well-defined.  Throws
  /// std::invalid_argument with a descriptive message on violation.  (Called
  /// by the constructor; public for direct testing.)
  static void validate_erew(std::size_t nthreads, std::size_t nvars,
                            const std::vector<Step>& steps);

  std::string to_string() const;

 private:
  void build_writer_tables();

  std::size_t nthreads_;
  std::size_t nvars_;
  std::vector<Step> steps_;
  std::vector<std::vector<OperandWriters>> writers_;  ///< [step][thread]
  // Sparse last-writer index: write_steps_ holds, per variable, the sorted
  // list of steps that write it; write_offsets_ (nvars+1) delimits each
  // variable's slice (CSR-shaped).
  std::vector<std::uint32_t> write_steps_;
  std::vector<std::uint32_t> write_offsets_;
  bool nondet_ = false;
  bool has_dyn_gather_ = false;
};

/// Fluent builder:
///   ProgramBuilder b(n, vars);
///   b.step().thread(0, Instr::add(z, x, y)).thread(1, ...);
///   b.step().all([](std::size_t i) { return Instr::copy(out(i), in(i)); });
///   Program p = b.build();   // validates EREW
class ProgramBuilder {
 public:
  ProgramBuilder(std::size_t nthreads, std::size_t nvars)
      : nthreads_(nthreads), nvars_(nvars) {}

  class StepBuilder {
   public:
    StepBuilder(ProgramBuilder& parent, std::size_t index)
        : parent_(&parent), index_(index) {}

    /// Assign an instruction to thread `t` in this step.
    StepBuilder& thread(std::size_t t, Instr ins);

    /// Assign every thread an instruction via a generator.
    template <typename Gen>
    StepBuilder& all(Gen&& gen) {
      for (std::size_t t = 0; t < parent_->nthreads_; ++t)
        thread(t, gen(t));
      return *this;
    }

   private:
    ProgramBuilder* parent_;
    std::size_t index_;
  };

  /// Append a new (initially all-Nop) step.
  StepBuilder step();

  std::size_t nthreads() const noexcept { return nthreads_; }
  std::size_t nvars() const noexcept { return nvars_; }

  Program build();

 private:
  friend class StepBuilder;
  std::size_t nthreads_;
  std::size_t nvars_;
  std::vector<Step> steps_;
};

}  // namespace apex::pram
