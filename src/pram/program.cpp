#include "pram/program.h"

#include <algorithm>
#include <sstream>
#include <utility>

namespace apex::pram {

namespace {

// Epoch-tagged use marks: mark[var] == epoch means "already used this
// step".  Reused across steps without clearing, which keeps validation
// O(total instruction operands) instead of O(nsteps * nvars) -- the
// difference between milliseconds and minutes at graph scale.
void bump_or_throw(std::vector<std::uint32_t>& marks, std::uint32_t epoch,
                   std::uint32_t var, std::size_t nvars, std::size_t step,
                   const char* what) {
  if (var >= nvars)
    throw std::invalid_argument("PRAM step " + std::to_string(step) + ": " +
                                what + " variable v" + std::to_string(var) +
                                " out of range (nvars=" +
                                std::to_string(nvars) + ")");
  if (marks[var] == epoch)
    throw std::invalid_argument("PRAM step " + std::to_string(step) +
                                ": EREW violation, variable v" +
                                std::to_string(var) + " " + what +
                                " by more than one thread");
  marks[var] = epoch;
}

}  // namespace

void Program::validate_erew(std::size_t nthreads, std::size_t nvars,
                            const std::vector<Step>& steps) {
  std::vector<std::uint32_t> reads(nvars, 0), writes(nvars, 0);
  std::vector<std::pair<std::uint32_t, std::uint32_t>> segs;  // (base, len)
  std::vector<std::uint32_t> written;
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const Step& st = steps[s];
    if (st.instrs.size() != nthreads)
      throw std::invalid_argument("PRAM step " + std::to_string(s) +
                                  ": instruction count != nthreads");
    const std::uint32_t epoch = static_cast<std::uint32_t>(s) + 1;
    segs.clear();
    written.clear();
    for (const Instr& ins : st.instrs) {
      const int r = reads_of(ins.op);
      if (r >= 1) bump_or_throw(reads, epoch, ins.x, nvars, s, "read");
      if (r >= 2) bump_or_throw(reads, epoch, ins.y, nvars, s, "read");
      if (r >= 3) bump_or_throw(reads, epoch, ins.c, nvars, s, "read");
      if (reads_window(ins.op)) {
        // The whole declared window counts as read: at run time exactly one
        // cell is, but which one is data-dependent, so exclusivity must be
        // guaranteed for every possible index.
        if (ins.c == 0)
          throw std::invalid_argument("PRAM step " + std::to_string(s) +
                                      ": gather window length is 0");
        if (static_cast<std::uint64_t>(ins.y) + ins.c > nvars)
          throw std::invalid_argument(
              "PRAM step " + std::to_string(s) + ": gather window [v" +
              std::to_string(ins.y) + ", v" +
              std::to_string(static_cast<std::uint64_t>(ins.y) + ins.c) +
              ") exceeds nvars=" + std::to_string(nvars));
        for (std::uint32_t v = ins.y; v < ins.y + ins.c; ++v)
          bump_or_throw(reads, epoch, v, nvars, s, "read");
      }
      if (reads_dyn_window(ins.op)) {
        // Segment reads are CREW (pure loads of frozen data; see ir.h), so
        // they don't bump the read marks -- but the segment itself must be
        // well-formed, and no thread may WRITE into any declared segment
        // this step (checked against `written` once the step is scanned).
        const std::uint32_t base = dyn_seg_base(ins);
        const std::uint32_t len = dyn_seg_len(ins);
        if (len == 0)
          throw std::invalid_argument("PRAM step " + std::to_string(s) +
                                      ": gather_dyn segment length is 0");
        if (static_cast<std::uint64_t>(base) + len > nvars)
          throw std::invalid_argument(
              "PRAM step " + std::to_string(s) + ": gather_dyn segment [v" +
              std::to_string(base) + ", v" +
              std::to_string(static_cast<std::uint64_t>(base) + len) +
              ") exceeds nvars=" + std::to_string(nvars));
        const auto seg = std::make_pair(base, len);
        if (std::find(segs.begin(), segs.end(), seg) == segs.end())
          segs.push_back(seg);
      }
      if (writes_dest(ins.op)) {
        bump_or_throw(writes, epoch, ins.z, nvars, s, "written");
        written.push_back(ins.z);
      }
    }
    // No same-step write may land inside a declared gather_dyn segment:
    // dynamic window reads are only safe because segment data is frozen
    // while the step runs.
    for (const auto& [base, len] : segs)
      for (std::uint32_t z : written)
        if (z >= base && z - base < len)
          throw std::invalid_argument(
              "PRAM step " + std::to_string(s) + ": variable v" +
              std::to_string(z) + " written inside gather_dyn segment [v" +
              std::to_string(base) + ", v" +
              std::to_string(static_cast<std::uint64_t>(base) + len) + ")");
    // Reading and writing the same variable within one step is legal: the
    // split Compute/Copy execution (paper §2.1, Fig. 1) orders every read
    // of a step before every write, so x <- f(x, y) and simultaneous-swap
    // patterns are well-defined.
  }
}

Program::Program(std::size_t nthreads, std::size_t nvars,
                 std::vector<Step> steps)
    : nthreads_(nthreads), nvars_(nvars), steps_(std::move(steps)) {
  if (nthreads_ == 0) throw std::invalid_argument("Program: nthreads == 0");
  if (nvars_ == 0) throw std::invalid_argument("Program: nvars == 0");
  validate_erew(nthreads_, nvars_, steps_);
  for (const auto& st : steps_)
    for (const auto& ins : st.instrs) {
      nondet_ |= pram::is_nondeterministic(ins.op);
      has_dyn_gather_ |= reads_dyn_window(ins.op);
    }
  build_writer_tables();
}

void Program::build_writer_tables() {
  // Pass 1: per-variable write counts -> CSR offsets for the sparse
  // last-writer index.  (A dense [step][var] snapshot table would be
  // O(nsteps * nvars) -- gigabytes at graph scale.)
  write_offsets_.assign(nvars_ + 1, 0);
  for (const Step& st : steps_)
    for (const Instr& ins : st.instrs)
      if (writes_dest(ins.op)) ++write_offsets_[ins.z + 1];
  for (std::size_t v = 0; v < nvars_; ++v)
    write_offsets_[v + 1] += write_offsets_[v];
  write_steps_.resize(write_offsets_[nvars_]);
  std::vector<std::uint32_t> cursor(write_offsets_.begin(),
                                    write_offsets_.end() - 1);

  // Pass 2: fill the per-variable write-step lists (sorted ascending by
  // construction) and the dense per-slot operand-provenance table, using
  // a transient last-writer array scanned forward through the steps.
  std::vector<std::uint32_t> last(nvars_, kInitial);
  writers_.resize(steps_.size());
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    writers_[s].resize(nthreads_);
    const Step& st = steps_[s];
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const Instr& ins = st.instrs[t];
      OperandWriters w;
      const int r = reads_of(ins.op);
      if (r >= 1) w.x = last[ins.x];
      if (r >= 2) w.y = last[ins.y];
      if (r >= 3) w.c = last[ins.c];
      writers_[s][t] = w;
    }
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const Instr& ins = st.instrs[t];
      if (writes_dest(ins.op)) {
        last[ins.z] = static_cast<std::uint32_t>(s);
        write_steps_[cursor[ins.z]++] = static_cast<std::uint32_t>(s);
      }
    }
  }
}

std::uint32_t Program::last_writer_before(std::size_t s,
                                          std::uint32_t var) const {
  if (var >= nvars_)
    throw std::out_of_range("last_writer_before: variable out of range");
  const std::uint32_t* first = write_steps_.data() + write_offsets_[var];
  const std::uint32_t* last = write_steps_.data() + write_offsets_[var + 1];
  // Largest write step strictly below s (the lists are sorted ascending).
  const std::uint32_t* it =
      std::lower_bound(first, last, static_cast<std::uint32_t>(s));
  return it == first ? kInitial : *(it - 1);
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "PRAM program: " << nthreads_ << " threads, " << nvars_ << " vars, "
     << steps_.size() << " steps\n";
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    os << " step " << s << ":\n";
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const Instr& ins = steps_[s].instrs[t];
      if (ins.op == OpCode::kNop) continue;
      os << "   T" << t << ": " << ins.to_string() << '\n';
    }
  }
  return os.str();
}

ProgramBuilder::StepBuilder& ProgramBuilder::StepBuilder::thread(std::size_t t,
                                                                 Instr ins) {
  if (t >= parent_->nthreads_)
    throw std::invalid_argument("ProgramBuilder: thread index out of range");
  parent_->steps_.at(index_).instrs.at(t) = ins;
  return *this;
}

ProgramBuilder::StepBuilder ProgramBuilder::step() {
  steps_.emplace_back();
  steps_.back().instrs.assign(nthreads_, Instr::nop());
  return StepBuilder(*this, steps_.size() - 1);
}

Program ProgramBuilder::build() {
  return Program(nthreads_, nvars_, std::move(steps_));
}

}  // namespace apex::pram
