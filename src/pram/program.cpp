#include "pram/program.h"

#include <sstream>

namespace apex::pram {

namespace {

void bump_or_throw(std::vector<std::uint8_t>& uses, std::uint32_t var,
                   std::size_t nvars, std::size_t step, const char* what) {
  if (var >= nvars)
    throw std::invalid_argument("PRAM step " + std::to_string(step) + ": " +
                                what + " variable v" + std::to_string(var) +
                                " out of range (nvars=" +
                                std::to_string(nvars) + ")");
  if (uses[var]++)
    throw std::invalid_argument("PRAM step " + std::to_string(step) +
                                ": EREW violation, variable v" +
                                std::to_string(var) + " " + what +
                                " by more than one thread");
}

}  // namespace

void Program::validate_erew(std::size_t nthreads, std::size_t nvars,
                            const std::vector<Step>& steps) {
  for (std::size_t s = 0; s < steps.size(); ++s) {
    const Step& st = steps[s];
    if (st.instrs.size() != nthreads)
      throw std::invalid_argument("PRAM step " + std::to_string(s) +
                                  ": instruction count != nthreads");
    std::vector<std::uint8_t> reads(nvars, 0), writes(nvars, 0);
    for (const Instr& ins : st.instrs) {
      const int r = reads_of(ins.op);
      if (r >= 1) bump_or_throw(reads, ins.x, nvars, s, "read");
      if (r >= 2) bump_or_throw(reads, ins.y, nvars, s, "read");
      if (r >= 3) bump_or_throw(reads, ins.c, nvars, s, "read");
      if (reads_window(ins.op)) {
        // The whole declared window counts as read: at run time exactly one
        // cell is, but which one is data-dependent, so exclusivity must be
        // guaranteed for every possible index.
        if (ins.c == 0)
          throw std::invalid_argument("PRAM step " + std::to_string(s) +
                                      ": gather window length is 0");
        if (static_cast<std::uint64_t>(ins.y) + ins.c > nvars)
          throw std::invalid_argument(
              "PRAM step " + std::to_string(s) + ": gather window [v" +
              std::to_string(ins.y) + ", v" +
              std::to_string(static_cast<std::uint64_t>(ins.y) + ins.c) +
              ") exceeds nvars=" + std::to_string(nvars));
        for (std::uint32_t v = ins.y; v < ins.y + ins.c; ++v)
          bump_or_throw(reads, v, nvars, s, "read");
      }
      if (writes_dest(ins.op)) bump_or_throw(writes, ins.z, nvars, s, "written");
    }
    // Reading and writing the same variable within one step is legal: the
    // split Compute/Copy execution (paper §2.1, Fig. 1) orders every read of
    // a step before every write of that step, so x <- f(x, y) and
    // simultaneous-swap patterns are well-defined.
  }
}

Program::Program(std::size_t nthreads, std::size_t nvars,
                 std::vector<Step> steps)
    : nthreads_(nthreads), nvars_(nvars), steps_(std::move(steps)) {
  if (nthreads_ == 0) throw std::invalid_argument("Program: nthreads == 0");
  if (nvars_ == 0) throw std::invalid_argument("Program: nvars == 0");
  validate_erew(nthreads_, nvars_, steps_);
  for (const auto& st : steps_)
    for (const auto& ins : st.instrs)
      nondet_ |= pram::is_nondeterministic(ins.op);
  build_writer_tables();
}

void Program::build_writer_tables() {
  std::vector<std::uint32_t> last(nvars_, kInitial);
  writers_.resize(steps_.size());
  last_writer_.resize(steps_.size());
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    last_writer_[s] = last;  // snapshot BEFORE step s's writes
    writers_[s].resize(nthreads_);
    const Step& st = steps_[s];
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const Instr& ins = st.instrs[t];
      OperandWriters w;
      const int r = reads_of(ins.op);
      if (r >= 1) w.x = last[ins.x];
      if (r >= 2) w.y = last[ins.y];
      if (r >= 3) w.c = last[ins.c];
      writers_[s][t] = w;
    }
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const Instr& ins = st.instrs[t];
      if (writes_dest(ins.op)) last[ins.z] = static_cast<std::uint32_t>(s);
    }
  }
}

std::uint32_t Program::last_writer_before(std::size_t s,
                                          std::uint32_t var) const {
  return last_writer_.at(s).at(var);
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "PRAM program: " << nthreads_ << " threads, " << nvars_ << " vars, "
     << steps_.size() << " steps\n";
  for (std::size_t s = 0; s < steps_.size(); ++s) {
    os << " step " << s << ":\n";
    for (std::size_t t = 0; t < nthreads_; ++t) {
      const Instr& ins = steps_[s].instrs[t];
      if (ins.op == OpCode::kNop) continue;
      os << "   T" << t << ": " << ins.to_string() << '\n';
    }
  }
  return os.str();
}

ProgramBuilder::StepBuilder& ProgramBuilder::StepBuilder::thread(std::size_t t,
                                                                 Instr ins) {
  if (t >= parent_->nthreads_)
    throw std::invalid_argument("ProgramBuilder: thread index out of range");
  parent_->steps_.at(index_).instrs.at(t) = ins;
  return *this;
}

ProgramBuilder::StepBuilder ProgramBuilder::step() {
  steps_.emplace_back();
  steps_.back().instrs.assign(nthreads_, Instr::nop());
  return StepBuilder(*this, steps_.size() - 1);
}

Program ProgramBuilder::build() {
  return Program(nthreads_, nvars_, std::move(steps_));
}

}  // namespace apex::pram
