#include "pram/workloads.h"

#include <algorithm>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "graph/csr.h"
#include "util/math.h"
#include "util/rng.h"

namespace apex::pram {

namespace {
/// Narrowing guard for variable ids.  Graph-scale layouts put region bases
/// at multiples of n and nnz; past 2^32 a blind cast would silently wrap
/// into another region's cells, so overflow throws instead.
std::uint32_t checked_u32(std::size_t v) {
  if (v > std::numeric_limits<std::uint32_t>::max())
    throw std::overflow_error("workload variable id " + std::to_string(v) +
                              " overflows uint32");
  return static_cast<std::uint32_t>(v);
}

void require_pow2(std::size_t n, const char* who) {
  if (!is_pow2(n) || n < 2)
    throw std::invalid_argument(std::string(who) +
                                ": n must be a power of two >= 2");
}
}  // namespace

// ---------------------------------------------------------------------------
// Reduction: vars layout [in: 0..n) [bufA: n..2n) [bufB: 2n..3n) [tmp: 3n..4n)
// Round d halves the active size; buffers alternate so no step reads and
// writes the same variable.
// ---------------------------------------------------------------------------

std::uint32_t reduction_result_var(std::size_t n) {
  // Round 1 writes bufA (base n), round 2 writes bufB (base 2n), and the
  // buffers alternate; the result is cell 0 of the last round's buffer.
  const std::uint32_t rounds = lg(n);
  return (rounds % 2 == 1) ? checked_u32(n) : checked_u32(2 * n);
}

Program make_reduction(std::size_t n) {
  require_pow2(n, "make_reduction");
  const std::size_t in = 0, bufA = n, bufB = 2 * n, tmp = 3 * n;
  ProgramBuilder b(n, 4 * n);

  // Round 1 reads `in`, writes bufA[0..n/2).
  std::size_t active = n;
  std::size_t src = in;
  std::size_t dst = bufA;
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::copy(checked_u32(tmp + i), checked_u32(src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::add(checked_u32(dst + i), checked_u32(src + 2 * i), checked_u32(tmp + i)));
    }
    src = dst;
    dst = (dst == bufA) ? bufB : bufA;
    active = half;
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Luby round on the n-cycle.
// Layout: r[0..n) cl[n..2n) cr[2n..3n) a[3n..4n) bq[4n..5n) mis[5n..6n)
//         nl[6n..7n) viol[7n..8n)
// ---------------------------------------------------------------------------

std::uint32_t luby_priority_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}
std::uint32_t luby_mis_var(std::size_t n, std::size_t i) { return checked_u32(5 * n + i); }
std::uint32_t luby_violation_var(std::size_t n, std::size_t i) {
  return checked_u32(7 * n + i);
}

Program make_luby_cycle_round(std::size_t n, Word k) {
  if (n < 3)
    throw std::invalid_argument("make_luby_cycle_round: need n >= 3");
  const std::size_t r = 0, cl = n, cr = 2 * n, a = 3 * n, bq = 4 * n,
                    mis = 5 * n, nl = 6 * n, viol = 7 * n;
  ProgramBuilder b(n, 8 * n);

  b.step().all([&](std::size_t i) { return Instr::rand_below(checked_u32(r + i), k); });
  // Stage left/right neighbour priorities (each r[j] read exactly once per
  // step).
  b.step().all([&](std::size_t i) {
    return Instr::copy(checked_u32(cl + i), checked_u32(r + (i + n - 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::copy(checked_u32(cr + i), checked_u32(r + (i + 1) % n));
  });
  // Strict local maximum test.
  b.step().all([&](std::size_t i) {
    return Instr::less(checked_u32(a + i), checked_u32(cl + i), checked_u32(r + i));
  });
  b.step().all([&](std::size_t i) {
    return Instr::less(checked_u32(bq + i), checked_u32(cr + i), checked_u32(r + i));
  });
  b.step().all([&](std::size_t i) {
    return Instr::and_(checked_u32(mis + i), checked_u32(a + i), checked_u32(bq + i));
  });
  // Independence check: viol[i] = mis[i] AND mis[i-1] must be 0.
  b.step().all([&](std::size_t i) {
    return Instr::copy(checked_u32(nl + i), checked_u32(mis + (i + n - 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::and_(checked_u32(viol + i), checked_u32(mis + i), checked_u32(nl + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// Leader election.
// Layout: r[0..n) mA[n..2n) mB[2n..3n) tmp[3n..4n) bc[4n..5n) lead[5n..6n)
// ---------------------------------------------------------------------------

std::uint32_t leader_ticket_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}
std::uint32_t leader_flag_var(std::size_t n, std::size_t i) {
  return checked_u32(5 * n + i);
}
std::uint32_t leader_max_var(std::size_t n, std::size_t i) {
  return checked_u32(4 * n + i);
}

Program make_leader_election(std::size_t n, Word k) {
  require_pow2(n, "make_leader_election");
  const std::size_t r = 0, mA = n, mB = 2 * n, tmp = 3 * n, bc = 4 * n,
                    lead = 5 * n;
  ProgramBuilder b(n, 6 * n);

  b.step().all([&](std::size_t i) { return Instr::rand_below(checked_u32(r + i), k); });

  // Max tournament: round 0 reads r, later rounds alternate mA/mB.
  std::size_t active = n;
  std::size_t src = r;
  std::size_t dst = mA;
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::copy(checked_u32(tmp + i), checked_u32(src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::max(checked_u32(dst + i), checked_u32(src + 2 * i), checked_u32(tmp + i)));
    }
    src = dst;
    dst = (dst == mA) ? mB : mA;
    active = half;
  }

  // Broadcast the winner into bc[0..n) by doubling.
  b.step().thread(0, Instr::copy(checked_u32(bc + 0), checked_u32(src + 0)));
  for (std::size_t width = 1; width < n; width *= 2) {
    auto s = b.step();
    for (std::size_t i = 0; i < width && width + i < n; ++i)
      s.thread(i, Instr::copy(checked_u32(bc + width + i), checked_u32(bc + i)));
  }

  // leader[i] = (r[i] == bc[i]).
  b.step().all([&](std::size_t i) {
    return Instr::eq(checked_u32(lead + i), checked_u32(r + i), checked_u32(bc + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// Consistency probe.
// Layout: R=0, chain c[1..chain], flags f[chain+1 .. chain+chain)
// flag f_j = (c_j == c_{j+1}) for j = 1..chain-1, plus f_0 = (c_1 == c_chain)
// computed last.
// ---------------------------------------------------------------------------

std::size_t probe_flag_count(std::size_t chain) { return chain; }

std::uint32_t probe_flag_var(std::size_t n, std::size_t chain, std::size_t j) {
  (void)n;
  return checked_u32(1 + chain + j);
}

Program make_consistency_probe(std::size_t n, std::size_t chain, Word k) {
  if (n < 2) throw std::invalid_argument("make_consistency_probe: n >= 2");
  if (chain < 1) throw std::invalid_argument("make_consistency_probe: chain >= 1");
  const std::size_t kR = 0;
  auto c_var = [&](std::size_t j) { return checked_u32(1 + (j - 1)); };  // c_1..c_chain
  ProgramBuilder b(n, 1 + chain + probe_flag_count(chain));

  b.step().thread(0, Instr::rand_below(checked_u32(kR), k));
  b.step().thread(0, Instr::copy(c_var(1), checked_u32(kR)));
  for (std::size_t j = 2; j <= chain; ++j)
    b.step().thread((j - 1) % n, Instr::copy(c_var(j), c_var(j - 1)));
  // Flags: f_j = eq(c_j, c_{j+1}); one comparison per step keeps EREW.
  for (std::size_t j = 1; j < chain; ++j)
    b.step().thread(j % n,
                    Instr::eq(probe_flag_var(n, chain, j), c_var(j), c_var(j + 1)));
  // Closing flag: the chain end must equal the chain start.
  b.step().thread(1, Instr::eq(probe_flag_var(n, chain, 0), c_var(1),
                               c_var(chain)));
  return b.build();
}

// ---------------------------------------------------------------------------
// Coin matrix.
// ---------------------------------------------------------------------------

std::uint32_t coin_matrix_var(std::size_t n, std::size_t s, std::size_t i) {
  return checked_u32(s * n + i);
}

Program make_coin_matrix(std::size_t n, std::size_t t, double p) {
  if (n == 0 || t == 0)
    throw std::invalid_argument("make_coin_matrix: n, t >= 1");
  ProgramBuilder b(n, n * t);
  for (std::size_t s = 0; s < t; ++s) {
    b.step().all([&](std::size_t i) {
      return Instr::coin(coin_matrix_var(n, s, i), p);
    });
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Prefix sum (Hillis-Steele doubling).
// Layout: a[0..n) stage[n..2n).
// Round d (offset = 2^d): stage[i] = a[i - offset] (thread i copies its own
// staged operand, so a[j] is read only by thread j + offset), then
// a[i] = a[i] + stage[i] for i >= offset.  Reading and writing a[i] in one
// step is legal under split execution.
// ---------------------------------------------------------------------------

std::uint32_t prefix_sum_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}

Program make_prefix_sum(std::size_t n) {
  require_pow2(n, "make_prefix_sum");
  const std::size_t a = 0, stage = n;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t offset = 1; offset < n; offset *= 2) {
    {
      auto s = b.step();
      for (std::size_t i = offset; i < n; ++i)
        s.thread(i, Instr::copy(checked_u32(stage + i), checked_u32(a + i - offset)));
    }
    {
      auto s = b.step();
      for (std::size_t i = offset; i < n; ++i)
        s.thread(i, Instr::add(checked_u32(a + i), checked_u32(a + i), checked_u32(stage + i)));
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Odd-even transposition sort.
// Layout: a[0..n) lo[n..3n/2...] — staging lo/hi indexed by pair.
// Round r compares pairs (first, first+1) with first = 2p + (r odd), via
// one thread per pair computing min then max into staging vars, then the
// pair's two threads copying them back.
// ---------------------------------------------------------------------------

std::uint32_t sort_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}

Program make_odd_even_sort(std::size_t n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("make_odd_even_sort: n must be even and >= 2");
  const std::size_t a = 0, lo = n, hi = n + n / 2;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t round = 0; round < n; ++round) {
    const std::size_t start = round % 2;  // even rounds pair (0,1),(2,3),...
    std::vector<std::size_t> firsts;
    for (std::size_t f = start; f + 1 < n; f += 2) firsts.push_back(f);
    if (firsts.empty()) continue;
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::min(checked_u32(lo + p), checked_u32(a + firsts[p]),
                               checked_u32(a + firsts[p] + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::max(checked_u32(hi + p), checked_u32(a + firsts[p]),
                               checked_u32(a + firsts[p] + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p) {
        s.thread(firsts[p], Instr::copy(checked_u32(a + firsts[p]), checked_u32(lo + p)));
        s.thread(firsts[p] + 1, Instr::copy(checked_u32(a + firsts[p] + 1), checked_u32(hi + p)));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Randomized ring coloring.
// Layout: col[0..n) right[n..2n) conf[2n..3n).
// ---------------------------------------------------------------------------

std::uint32_t ring_color_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}
std::uint32_t ring_conflict_var(std::size_t n, std::size_t i) {
  return checked_u32(2 * n + i);
}

Program make_ring_coloring(std::size_t n, Word palette) {
  if (n < 3) throw std::invalid_argument("make_ring_coloring: need n >= 3");
  if (palette < 2)
    throw std::invalid_argument("make_ring_coloring: palette >= 2");
  const std::size_t col = 0, right = n, conf = 2 * n;
  ProgramBuilder b(n, 3 * n);
  b.step().all(
      [&](std::size_t i) { return Instr::rand_below(checked_u32(col + i), palette); });
  b.step().all([&](std::size_t i) {
    return Instr::copy(checked_u32(right + i), checked_u32(col + (i + 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::eq(checked_u32(conf + i), checked_u32(col + i), checked_u32(right + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// BFS frontier expansion on a CSR graph (irregular: dynamic-window gathers
// walk real edge arrays at run time).
//
// The in-edges of every vertex are built into a graph::Csr, delta-encoded,
// and loaded into program memory as DATA; the program itself unpacks the
// delta stream into an adjacency array through kGatherDyn windows whose
// base/bound come from the row-offset data, then runs `rounds` frontier
// waves gathering frontier bits through the unpacked columns.  Layout:
//
//   dist[n] frontA[n+1] frontB[n+1] rp[n+1] rpe[n] delta[nnz] adj[nnz]
//   reach[n] u[n] | per-proc scratch: ptr bnd gt zer np1 sent one roundv
//
// P = min(n, 4096) logical processors own contiguous weight-balanced
// vertex slices (graph::partition_balanced); per-vertex instruction lanes
// are concatenated per processor and nop-padded to the phase depth, so a
// processor's step count tracks the degree mass it owns.  Frontier buffers
// alternate per round; cell 0 of each buffer is a guard that stays 0, and
// columns are stored biased by +1 so only out-of-range data could land on
// the guard.  All cross-processor reads are CREW segment loads of frozen
// data (delta, the read-side frontier); everything else is owner-exclusive,
// so the EREW checker passes at any lane alignment.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kBfsTag = 0xBF5;

/// Logical processor count of the graph-scale kernels: n itself while n is
/// small, capped so graph-scale instances stay schedulable.
constexpr std::size_t kGraphProcCap = 4096;
std::size_t graph_procs(std::size_t n) { return std::min(n, kGraphProcCap); }

/// Per-processor instruction lanes: phase-local programs of different
/// lengths, emitted as lockstep steps nop-padded to the deepest lane.  The
/// caller must keep every instruction's operands owner-exclusive (or CREW
/// segment reads) so the emitted steps are EREW at ANY alignment.
class Lanes {
 public:
  explicit Lanes(std::size_t nprocs) : lanes_(nprocs) {}
  void add(std::size_t p, Instr ins) { lanes_[p].push_back(ins); }
  void emit(ProgramBuilder& b) {
    std::size_t depth = 0;
    for (const auto& l : lanes_) depth = std::max(depth, l.size());
    for (std::size_t k = 0; k < depth; ++k) {
      auto s = b.step();
      for (std::size_t p = 0; p < lanes_.size(); ++p)
        if (k < lanes_[p].size()) s.thread(p, lanes_[p][k]);
    }
    for (auto& l : lanes_) l.clear();
  }

 private:
  std::vector<std::vector<Instr>> lanes_;
};

/// Strided constant-array load: thread i writes cells base + k*P + i.
template <typename ValFn>
void load_const_array(ProgramBuilder& b, std::size_t nprocs, std::size_t base,
                      std::size_t len, ValFn&& valfn) {
  for (std::size_t k = 0; k < len; k += nprocs) {
    auto s = b.step();
    for (std::size_t i = 0; i < nprocs && k + i < len; ++i)
      s.thread(i, Instr::constant(checked_u32(base + k + i), valfn(k + i)));
  }
}

/// In-edge CSR of the baked bfs graph: row i holds the sources of the
/// active edges into i.
graph::Csr bfs_csr(std::size_t n) {
  graph::CsrBuilder bld(n, n);
  const auto offs = bfs_offsets(n);
  for (std::size_t i = 0; i < n; ++i)
    for (const auto& [off, o] : offs)
      if (bfs_edge_active(n, o, i)) bld.add_edge(i, (i + n - off) % n);
  return bld.build();
}

/// Per-vertex weight of the dominant (round) phase: 2*deg + 2 lane slots.
std::vector<std::uint64_t> bfs_vertex_weights(const graph::Csr& csr) {
  std::vector<std::uint64_t> w(csr.n_rows());
  for (std::size_t v = 0; v < csr.n_rows(); ++v)
    w[v] = 2 * static_cast<std::uint64_t>(csr.degree(v)) + 2;
  return w;
}

}  // namespace

std::vector<std::pair<std::size_t, std::size_t>> bfs_offsets(std::size_t n) {
  const std::size_t cand[4] = {1, n - 1, 3 % n, (n - 3) % n};
  std::vector<std::pair<std::size_t, std::size_t>> out;
  for (std::size_t o = 0; o < 4; ++o) {
    bool dup = false;
    for (const auto& kept : out) dup |= kept.first == cand[o];
    // Offsets can coincide at small n (n=6: 3%n == (n-3)%n): keep the FIRST
    // mask index so the edge is considered exactly once instead of
    // double-counted under two masks.
    if (!dup) out.emplace_back(cand[o], o);
  }
  return out;
}

std::size_t bfs_rounds(std::size_t n) {
  // Small instances sweep most of the ring; graph-scale instances cap the
  // wave count so step counts stay in the thousands (vertices past the cap
  // read back bfs_unreached, exactly like an unreachable vertex).
  return n <= 128 ? n / 2 + 2 : 4;
}

std::uint32_t bfs_dist_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}

Word bfs_unreached(std::size_t n) { return static_cast<Word>(2 * n); }

bool bfs_edge_active(std::size_t n, std::size_t o, std::size_t i) {
  const std::uint64_t h =
      apex::mix64(apex::mix64(kBfsTag, n), o * n + i);
  // Ring edges (offsets 1, n-1) are dense (3/4), chords (3, n-3) sparse
  // (1/2): most nodes stay reachable while distances spread irregularly.
  return o < 2 ? (h % 4) != 0 : (h % 2) != 0;
}

Program make_bfs_frontier(std::size_t n, std::size_t rounds) {
  if (n < 6)
    throw std::invalid_argument("make_bfs_frontier: need n >= 6");
  if (rounds < 1)
    throw std::invalid_argument("make_bfs_frontier: need rounds >= 1");
  const graph::Csr csr = bfs_csr(n);
  const std::size_t nnz = csr.nnz();
  const std::vector<std::uint64_t> delta = graph::delta_encode(csr);
  const std::size_t P = graph_procs(n);
  const std::vector<std::uint64_t> vw = bfs_vertex_weights(csr);
  const std::vector<std::uint32_t> cuts = graph::partition_balanced(vw, P);

  const std::size_t dist = 0, frontA = n, frontB = 2 * n + 1, rp = 3 * n + 2,
                    rpe = 4 * n + 3, del = 5 * n + 3, adj = del + nnz,
                    reach = adj + nnz, unv = reach + n, scr = unv + n;
  const std::size_t ptr = scr, bnd = scr + P, gt = scr + 2 * P,
                    zer = scr + 3 * P, np1 = scr + 4 * P, sent = scr + 5 * P,
                    one = scr + 6 * P, rnd = scr + 7 * P;
  ProgramBuilder b(P, scr + 8 * P);
  Lanes lanes(P);

  // Phase 0: distances, the source frontier bit, the CSR data (row offsets
  // + the delta-compressed column stream), per-proc constants.  Unwritten
  // cells (the frontier guards, the whole B buffer) read their initial 0.
  load_const_array(b, P, dist, n, [&](std::size_t i) {
    return i == 0 ? Word{0} : bfs_unreached(n);
  });
  b.step().thread(0, Instr::constant(checked_u32(frontA + 1), 1));
  load_const_array(b, P, rp, n + 1,
                   [&](std::size_t i) { return Word{csr.row_offsets[i]}; });
  load_const_array(b, P, del, nnz, [&](std::size_t i) { return delta[i]; });
  b.step().all(
      [&](std::size_t p) { return Instr::constant(checked_u32(zer + p), 0); });
  b.step().all([&](std::size_t p) {
    return Instr::constant(checked_u32(np1 + p), static_cast<Word>(n + 1));
  });
  b.step().all([&](std::size_t p) {
    return Instr::constant(checked_u32(sent + p), bfs_unreached(n));
  });
  b.step().all(
      [&](std::size_t p) { return Instr::constant(checked_u32(one + p), 1); });

  // Phase 1: stage rpe[v] = rp[v+1], so that in phase 2 a vertex's row END
  // never aliases its successor's row START read in the same step at an
  // unlucky lane alignment.
  for (std::size_t p = 0; p < P; ++p)
    for (std::size_t v = cuts[p]; v < cuts[p + 1]; ++v)
      lanes.add(p, Instr::copy(checked_u32(rpe + v), checked_u32(rp + v + 1)));
  lanes.emit(b);

  // Phase 2: unpack delta -> adj (+1-biased columns).  The gather window's
  // base/bound are the row-offset DATA loaded above — the addressing a
  // static kGather window cannot express.
  for (std::size_t p = 0; p < P; ++p)
    for (std::size_t v = cuts[p]; v < cuts[p + 1]; ++v) {
      const std::size_t deg = csr.degree(v);
      if (deg == 0) continue;
      lanes.add(p, Instr::copy(checked_u32(ptr + p), checked_u32(rp + v)));
      lanes.add(p, Instr::copy(checked_u32(bnd + p), checked_u32(rpe + v)));
      for (std::size_t t = 0; t < deg; ++t) {
        const std::size_t e = csr.row_offsets[v] + t;
        lanes.add(p, Instr::gather_dyn(checked_u32(gt + p), checked_u32(ptr + p),
                                       checked_u32(zer + p), checked_u32(bnd + p),
                                       checked_u32(del), checked_u32(nnz)));
        lanes.add(p, t == 0
                         ? Instr::copy(checked_u32(adj + e), checked_u32(gt + p))
                         : Instr::add(checked_u32(adj + e),
                                      checked_u32(adj + e - 1),
                                      checked_u32(gt + p)));
        if (t + 1 < deg)
          lanes.add(p, Instr::add(checked_u32(ptr + p), checked_u32(ptr + p),
                                  checked_u32(one + p)));
      }
    }
  lanes.emit(b);

  // Phase 3: frontier waves.  Round r gathers the PREVIOUS round's frontier
  // buffer (a frozen CREW segment for the whole round) through the unpacked
  // columns and writes the next frontier into the other buffer.
  for (std::size_t r = 0; r < rounds; ++r) {
    const std::size_t frontR = r % 2 == 0 ? frontA : frontB;
    const std::size_t frontW = r % 2 == 0 ? frontB : frontA;
    b.step().all([&](std::size_t p) {
      return Instr::constant(checked_u32(rnd + p), static_cast<Word>(r + 1));
    });
    for (std::size_t p = 0; p < P; ++p)
      for (std::size_t v = cuts[p]; v < cuts[p + 1]; ++v) {
        const std::size_t deg = csr.degree(v);
        if (deg == 0) {
          lanes.add(p, Instr::constant(checked_u32(reach + v), 0));
        } else {
          const std::size_t e0 = csr.row_offsets[v];
          lanes.add(p, Instr::gather_dyn(
                           checked_u32(reach + v), checked_u32(adj + e0),
                           checked_u32(zer + p), checked_u32(np1 + p),
                           checked_u32(frontR), checked_u32(n + 1)));
          for (std::size_t t = 1; t < deg; ++t) {
            lanes.add(p, Instr::gather_dyn(
                             checked_u32(gt + p), checked_u32(adj + e0 + t),
                             checked_u32(zer + p), checked_u32(np1 + p),
                             checked_u32(frontR), checked_u32(n + 1)));
            lanes.add(p, Instr::or_(checked_u32(reach + v),
                                    checked_u32(reach + v), checked_u32(gt + p)));
          }
        }
        lanes.add(p, Instr::eq(checked_u32(unv + v), checked_u32(dist + v),
                               checked_u32(sent + p)));
        lanes.add(p, Instr::and_(checked_u32(frontW + 1 + v),
                                 checked_u32(reach + v), checked_u32(unv + v)));
        lanes.add(p, Instr::select(checked_u32(dist + v),
                                   checked_u32(frontW + 1 + v),
                                   checked_u32(rnd + p), checked_u32(dist + v)));
      }
    lanes.emit(b);
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Bitonic (butterfly) merge.
// Layout: a[0..n) lo[n..n+n/2) hi[n+n/2..2n); one staged compare-exchange
// per butterfly stage, value-driven via kMin/kMax.
// ---------------------------------------------------------------------------

std::uint32_t merge_var(std::size_t n, std::size_t i) {
  (void)n;
  return checked_u32(i);
}

Program make_bitonic_merge(std::size_t n) {
  require_pow2(n, "make_bitonic_merge");
  const std::size_t a = 0, lo = n, hi = n + n / 2;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t d = n / 2; d >= 1; d /= 2) {
    // Pairs (i, i^d) for i with bit d clear, indexed densely by p.
    std::vector<std::size_t> firsts;
    for (std::size_t i = 0; i < n; ++i)
      if ((i & d) == 0) firsts.push_back(i);
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::min(checked_u32(lo + p), checked_u32(a + firsts[p]),
                               checked_u32(a + (firsts[p] | d))));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::max(checked_u32(hi + p), checked_u32(a + firsts[p]),
                               checked_u32(a + (firsts[p] | d))));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p) {
        s.thread(firsts[p], Instr::copy(checked_u32(a + firsts[p]), checked_u32(lo + p)));
        s.thread(firsts[p] | d, Instr::copy(checked_u32(a + (firsts[p] | d)), checked_u32(hi + p)));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// CSR sparse mat-vec on the graph substrate.
//
// The baked instance (spmv_instance) keeps its raw triplet form — the CSR
// builder dedupes duplicate (row, col) pairs by summing their coefficients
// (wrapping add is commutative, so y is unchanged) and the program walks
// the deduped arrays.  Layout:
//
//   x[n] rp[n+1] rpe[n] col[nnz] val[nnz] y[n]
//   | per-proc scratch: ptr bnd cv vv xv pr zer nv one
//
// Per row: ptr/bnd come from the row-offset DATA, each element issues three
// kGatherDyn loads (column index, coefficient, then x through the fetched
// column), a multiply, and an accumulate into the row's y cell.  y is never
// initialized: unwritten cells read 0.  P = min(n, 4096) processors own
// contiguous nnz-balanced row slices.
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kSpmvTag = 0x59317;

/// Irregular row degrees: mostly 1-3, every ~5th row heavy (up to 6).
std::size_t spmv_row_degree(std::size_t n, std::size_t i) {
  const std::uint64_t h = apex::mix64(apex::mix64(kSpmvTag, n), i);
  return 1 + h % 3 + (h % 5 == 0 ? 3 : 0);
}

/// Deduped nonzero count of the baked instance (duplicate (row, col) pairs
/// merge in the CSR build), without materializing the CSR.
std::size_t spmv_csr_nnz(std::size_t n) {
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t deg = spmv_row_degree(n, i);
    std::size_t cols[8];
    std::size_t uniq = 0;
    for (std::size_t k = 0; k < deg; ++k) {
      const std::uint64_t e =
          apex::mix64(apex::mix64(kSpmvTag + 1, n), i * 64 + k);
      const std::size_t c = static_cast<std::size_t>(e % n);
      bool seen = false;
      for (std::size_t t = 0; t < uniq; ++t) seen |= cols[t] == c;
      if (!seen) cols[uniq++] = c;
    }
    nnz += uniq;
  }
  return nnz;
}

}  // namespace

SpmvInstance spmv_instance(std::size_t n) {
  SpmvInstance m;
  m.row_ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t deg = spmv_row_degree(n, i);
    for (std::size_t k = 0; k < deg; ++k) {
      const std::uint64_t e =
          apex::mix64(apex::mix64(kSpmvTag + 1, n), i * 64 + k);
      m.col.push_back(static_cast<std::size_t>(e % n));
      m.val.push_back(1 + e / n % 9);
    }
    m.row_ptr[i + 1] = m.col.size();
  }
  m.x.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    m.x[i] = 1 + apex::mix64(apex::mix64(kSpmvTag + 2, n), i) % 99;
  return m;
}

std::uint32_t spmv_y_var(std::size_t n, std::size_t i) {
  // Layout: x[n] rp[n+1] rpe[n] col[nnz] val[nnz] -> y base.  O(n) per
  // call; bulk checkers compute the base once and index from it.
  return checked_u32(3 * n + 1 + 2 * spmv_csr_nnz(n) + i);
}

namespace {

/// Deduped CSR of the baked instance.
graph::Csr spmv_csr_data(std::size_t n) {
  const SpmvInstance m = spmv_instance(n);
  graph::CsrBuilder bld(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
      bld.add_edge(i, m.col[e], m.val[e]);
  return bld.build();
}

/// Per-row weight of the walk phase: 6*deg + 2 lane slots.
std::vector<std::uint64_t> spmv_vertex_weights(const graph::Csr& csr) {
  std::vector<std::uint64_t> w(csr.n_rows());
  for (std::size_t v = 0; v < csr.n_rows(); ++v)
    w[v] = 6 * static_cast<std::uint64_t>(csr.degree(v)) + 2;
  return w;
}

}  // namespace

Program make_spmv_csr(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_spmv_csr: need n >= 2");
  const graph::Csr csr = spmv_csr_data(n);
  const std::size_t nnz = csr.nnz();
  const SpmvInstance m = spmv_instance(n);
  const std::size_t P = graph_procs(n);
  const std::vector<std::uint64_t> vw = spmv_vertex_weights(csr);
  const std::vector<std::uint32_t> cuts = graph::partition_balanced(vw, P);

  const std::size_t x = 0, rp = n, rpe = 2 * n + 1, col = 3 * n + 1,
                    val = col + nnz, y = val + nnz, scr = y + n;
  const std::size_t ptr = scr, bnd = scr + P, cv = scr + 2 * P,
                    vv = scr + 3 * P, xv = scr + 4 * P, pr = scr + 5 * P,
                    zer = scr + 6 * P, nv = scr + 7 * P, one = scr + 8 * P;
  ProgramBuilder b(P, scr + 9 * P);
  Lanes lanes(P);

  // Phase 0: x and the deduped CSR arrays are DATA in program memory.
  load_const_array(b, P, x, n, [&](std::size_t i) { return m.x[i]; });
  load_const_array(b, P, rp, n + 1,
                   [&](std::size_t i) { return Word{csr.row_offsets[i]}; });
  load_const_array(b, P, col, nnz,
                   [&](std::size_t i) { return Word{csr.cols[i]}; });
  load_const_array(b, P, val, nnz, [&](std::size_t i) { return csr.vals[i]; });
  b.step().all(
      [&](std::size_t p) { return Instr::constant(checked_u32(zer + p), 0); });
  b.step().all([&](std::size_t p) {
    return Instr::constant(checked_u32(nv + p), static_cast<Word>(n));
  });
  b.step().all(
      [&](std::size_t p) { return Instr::constant(checked_u32(one + p), 1); });

  // Phase 1: stage row ends (same aliasing argument as bfs).
  for (std::size_t p = 0; p < P; ++p)
    for (std::size_t v = cuts[p]; v < cuts[p + 1]; ++v)
      lanes.add(p, Instr::copy(checked_u32(rpe + v), checked_u32(rp + v + 1)));
  lanes.emit(b);

  // Phase 2: walk the rows through dynamic windows over the CSR arrays.
  for (std::size_t p = 0; p < P; ++p)
    for (std::size_t v = cuts[p]; v < cuts[p + 1]; ++v) {
      const std::size_t deg = csr.degree(v);
      if (deg == 0) continue;  // y stays at its initial 0
      lanes.add(p, Instr::copy(checked_u32(ptr + p), checked_u32(rp + v)));
      lanes.add(p, Instr::copy(checked_u32(bnd + p), checked_u32(rpe + v)));
      for (std::size_t t = 0; t < deg; ++t) {
        lanes.add(p, Instr::gather_dyn(checked_u32(cv + p), checked_u32(ptr + p),
                                       checked_u32(zer + p), checked_u32(bnd + p),
                                       checked_u32(col), checked_u32(nnz)));
        lanes.add(p, Instr::gather_dyn(checked_u32(vv + p), checked_u32(ptr + p),
                                       checked_u32(zer + p), checked_u32(bnd + p),
                                       checked_u32(val), checked_u32(nnz)));
        lanes.add(p, Instr::gather_dyn(checked_u32(xv + p), checked_u32(cv + p),
                                       checked_u32(zer + p), checked_u32(nv + p),
                                       checked_u32(x), checked_u32(n)));
        lanes.add(p, Instr::mul(checked_u32(pr + p), checked_u32(vv + p),
                                checked_u32(xv + p)));
        lanes.add(p, Instr::add(checked_u32(y + v), checked_u32(y + v),
                                checked_u32(pr + p)));
        if (t + 1 < deg)
          lanes.add(p, Instr::add(checked_u32(ptr + p), checked_u32(ptr + p),
                                  checked_u32(one + p)));
      }
    }
  lanes.emit(b);
  return b.build();
}

// ---------------------------------------------------------------------------
// Work-stealing-shaped DAG.
// Layout: v[(levels+1)*n] coin[levels*n] pa[levels*n] pb[levels*n]
//         sel[levels*n] one[n]
// ---------------------------------------------------------------------------

namespace {

std::size_t dag_v_base(std::size_t) { return 0; }
std::size_t dag_coin_base(std::size_t n, std::size_t levels) {
  return (levels + 1) * n;
}
std::size_t dag_pa_base(std::size_t n, std::size_t levels) {
  return dag_coin_base(n, levels) + levels * n;
}
std::size_t dag_pb_base(std::size_t n, std::size_t levels) {
  return dag_pa_base(n, levels) + levels * n;
}
std::size_t dag_sel_base(std::size_t n, std::size_t levels) {
  return dag_pb_base(n, levels) + levels * n;
}
std::size_t dag_one_base(std::size_t n, std::size_t levels) {
  return dag_sel_base(n, levels) + levels * n;
}

}  // namespace

std::size_t steal_dag_levels(std::size_t n) { return n / 2 + 1; }

std::uint32_t dag_value_var(std::size_t n, std::size_t levels, std::size_t l,
                            std::size_t w) {
  (void)levels;
  return checked_u32(dag_v_base(n) + l * n + w);
}

std::uint32_t dag_coin_var(std::size_t n, std::size_t levels, std::size_t l,
                           std::size_t w) {
  // Coins exist for levels 1..levels; stored at index (l-1).
  return checked_u32(dag_coin_base(n, levels) + (l - 1) * n + w);
}

Program make_steal_dag(std::size_t n, std::size_t levels) {
  if (n < 2) throw std::invalid_argument("make_steal_dag: need n >= 2");
  if (levels < 1)
    throw std::invalid_argument("make_steal_dag: need levels >= 1");
  const std::size_t v = dag_v_base(n), coin = dag_coin_base(n, levels),
                    pa = dag_pa_base(n, levels), pb = dag_pb_base(n, levels),
                    sel = dag_sel_base(n, levels),
                    one = dag_one_base(n, levels);
  ProgramBuilder b(n, one + n);

  b.step().all([&](std::size_t w) {
    return Instr::constant(checked_u32(v + w), static_cast<Word>(3 * w + 1));
  });
  b.step().all(
      [&](std::size_t w) { return Instr::constant(checked_u32(one + w), 1); });

  for (std::size_t l = 1; l <= levels; ++l) {
    const std::size_t cl = coin + (l - 1) * n, pal = pa + (l - 1) * n,
                      pbl = pb + (l - 1) * n, sll = sel + (l - 1) * n,
                      prev = v + (l - 1) * n, cur = v + l * n;
    // The random victim choice: 0 = own lane, 1 = steal from the right.
    b.step().all(
        [&](std::size_t w) { return Instr::rand_below(checked_u32(cl + w), 2); });
    b.step().all([&](std::size_t w) {
      return Instr::copy(checked_u32(pal + w), checked_u32(prev + w));
    });
    b.step().all([&](std::size_t w) {
      return Instr::copy(checked_u32(pbl + w), checked_u32(prev + (w + 1) % n));
    });
    b.step().all([&](std::size_t w) {
      return Instr::select(checked_u32(sll + w), checked_u32(cl + w), checked_u32(pbl + w),
                           checked_u32(pal + w));
    });
    b.step().all([&](std::size_t w) {
      return Instr::add(checked_u32(cur + w), checked_u32(sll + w), checked_u32(one + w));
    });
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Workload registry: canonical instances + final-memory verdicts.
// ---------------------------------------------------------------------------

namespace {

// Canonical parameters of the registered instances.
constexpr Word kLubyK = 1 << 16;
constexpr Word kLeaderK = 1 << 16;
constexpr Word kRingPalette = 4;
constexpr std::size_t kCoinSteps = 4;
constexpr double kCoinP = 0.5;
constexpr std::size_t kProbeChain = 8;
constexpr Word kProbeK = 1 << 20;

/// Prepend a constants step seeding vars [0, in.size()) — registered
/// deterministic kernels carry their canonical inputs in the program.
Program with_const_inputs(const Program& p, const std::vector<Word>& in) {
  ProgramBuilder b(p.nthreads(), p.nvars());
  b.step().all([&](std::size_t i) {
    return i < in.size()
               ? Instr::constant(static_cast<std::uint32_t>(i), in[i])
               : Instr::nop();
  });
  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    auto sb = b.step();
    for (std::size_t t = 0; t < p.nthreads(); ++t)
      sb.thread(t, p.step(s).instrs[t]);
  }
  return b.build();
}

std::vector<Word> iota_inputs(std::size_t n) {
  std::vector<Word> in(n);
  std::iota(in.begin(), in.end(), 1);
  return in;
}

std::vector<Word> bitonic_inputs(std::size_t n) {
  std::vector<Word> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = i < n / 2 ? static_cast<Word>(3 * i + 2)
                      : static_cast<Word>(3 * (n - i) + 1);
  return in;
}

std::string mismatch(const char* what, std::size_t i, Word got, Word want) {
  return std::string(what) + "[" + std::to_string(i) + "] = " +
         std::to_string(got) + ", expected " + std::to_string(want);
}

// ---- make functions (canonical instances) ---------------------------------

Program reg_make_luby(std::size_t n) { return make_luby_cycle_round(n, kLubyK); }
Program reg_make_leader(std::size_t n) {
  return make_leader_election(n, kLeaderK);
}
Program reg_make_ring(std::size_t n) {
  return make_ring_coloring(n, kRingPalette);
}
Program reg_make_coins(std::size_t n) {
  return make_coin_matrix(n, kCoinSteps, kCoinP);
}
Program reg_make_probe(std::size_t n) {
  return make_consistency_probe(n, kProbeChain, kProbeK);
}
Program reg_make_prefix(std::size_t n) {
  return with_const_inputs(make_prefix_sum(n), iota_inputs(n));
}
Program reg_make_sort(std::size_t n) {
  auto in = iota_inputs(n);
  std::reverse(in.begin(), in.end());
  return with_const_inputs(make_odd_even_sort(n), in);
}
Program reg_make_reduction(std::size_t n) {
  return with_const_inputs(make_reduction(n), iota_inputs(n));
}
Program reg_make_bfs(std::size_t n) {
  return make_bfs_frontier(n, bfs_rounds(n));
}
Program reg_make_merge(std::size_t n) {
  return with_const_inputs(make_bitonic_merge(n), bitonic_inputs(n));
}
Program reg_make_spmv(std::size_t n) { return make_spmv_csr(n); }
Program reg_make_dag(std::size_t n) {
  return make_steal_dag(n, steal_dag_levels(n));
}

// ---- partition placement weights ------------------------------------------

/// Sum per-vertex weights over the partition slices the kernel builders
/// assign — the host executor's kPartition interleave places OS-thread
/// slices of logical processors by exactly these totals.
std::vector<std::uint64_t> slice_weights(const std::vector<std::uint64_t>& w,
                                         const std::vector<std::uint32_t>& cuts) {
  std::vector<std::uint64_t> out(cuts.size() - 1, 0);
  for (std::size_t p = 0; p + 1 < cuts.size(); ++p)
    for (std::size_t v = cuts[p]; v < cuts[p + 1]; ++v) out[p] += w[v];
  return out;
}

std::vector<std::uint64_t> reg_bfs_proc_weights(std::size_t n) {
  const auto w = bfs_vertex_weights(bfs_csr(n));
  return slice_weights(w, graph::partition_balanced(w, graph_procs(n)));
}

std::vector<std::uint64_t> reg_spmv_proc_weights(std::size_t n) {
  const auto w = spmv_vertex_weights(spmv_csr_data(n));
  return slice_weights(w, graph::partition_balanced(w, graph_procs(n)));
}

// ---- final-memory verdicts -------------------------------------------------

std::string check_luby(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t i = 0; i < n; ++i) {
    const Word r = mem[luby_priority_var(n, i)];
    if (r >= kLubyK) return mismatch("luby priority", i, r, kLubyK - 1);
    const Word want =
        mem[luby_priority_var(n, (i + n - 1) % n)] < r &&
                mem[luby_priority_var(n, (i + 1) % n)] < r
            ? 1
            : 0;
    if (mem[luby_mis_var(n, i)] != want)
      return mismatch("luby mis flag", i, mem[luby_mis_var(n, i)], want);
    if (mem[luby_violation_var(n, i)] != 0)
      return mismatch("luby independence violation", i,
                      mem[luby_violation_var(n, i)], 0);
  }
  return {};
}

std::string check_leader(std::size_t n, const std::vector<Word>& mem) {
  Word maxr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Word r = mem[leader_ticket_var(n, i)];
    if (r >= kLeaderK) return mismatch("leader ticket", i, r, kLeaderK - 1);
    maxr = std::max(maxr, r);
  }
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mem[leader_max_var(n, i)] != maxr)
      return mismatch("leader broadcast", i, mem[leader_max_var(n, i)], maxr);
    const Word want = mem[leader_ticket_var(n, i)] == maxr ? 1 : 0;
    if (mem[leader_flag_var(n, i)] != want)
      return mismatch("leader flag", i, mem[leader_flag_var(n, i)], want);
    leaders += mem[leader_flag_var(n, i)];
  }
  if (leaders < 1) return "no leader elected";
  return {};
}

std::string check_ring(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t i = 0; i < n; ++i) {
    const Word ci = mem[ring_color_var(n, i)];
    const Word cn = mem[ring_color_var(n, (i + 1) % n)];
    if (ci >= kRingPalette)
      return mismatch("ring color", i, ci, kRingPalette - 1);
    const Word want = ci == cn ? 1 : 0;
    if (mem[ring_conflict_var(n, i)] != want)
      return mismatch("ring conflict flag", i, mem[ring_conflict_var(n, i)],
                      want);
  }
  return {};
}

std::string check_coins(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t s = 0; s < kCoinSteps; ++s)
    for (std::size_t i = 0; i < n; ++i)
      if (mem[coin_matrix_var(n, s, i)] > 1)
        return mismatch("coin", s * n + i, mem[coin_matrix_var(n, s, i)], 1);
  return {};
}

std::string check_probe(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t j = 0; j < probe_flag_count(kProbeChain); ++j)
    if (mem[probe_flag_var(n, kProbeChain, j)] != 1)
      return mismatch("probe flag", j, mem[probe_flag_var(n, kProbeChain, j)],
                      1);
  return {};
}

std::string check_prefix(std::size_t n, const std::vector<Word>& mem) {
  Word run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run += static_cast<Word>(i + 1);
    if (mem[prefix_sum_var(n, i)] != run)
      return mismatch("prefix sum", i, mem[prefix_sum_var(n, i)], run);
  }
  return {};
}

std::string check_sort(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t i = 0; i < n; ++i)
    if (mem[sort_var(n, i)] != static_cast<Word>(i + 1))
      return mismatch("sorted", i, mem[sort_var(n, i)],
                      static_cast<Word>(i + 1));
  return {};
}

std::string check_reduction(std::size_t n, const std::vector<Word>& mem) {
  const Word want = static_cast<Word>(n * (n + 1) / 2);
  if (mem[reduction_result_var(n)] != want)
    return mismatch("reduction", 0, mem[reduction_result_var(n)], want);
  return {};
}

std::string check_bfs(std::size_t n, const std::vector<Word>& mem) {
  // Rebuild the exact baked graph and run a level-capped reference BFS.
  const std::size_t rounds = bfs_rounds(n);
  std::vector<Word> want(n, bfs_unreached(n));
  want[0] = 0;
  std::vector<std::size_t> frontier = {0};
  const auto offs = bfs_offsets(n);
  for (std::size_t r = 0; r < rounds && !frontier.empty(); ++r) {
    std::vector<std::uint8_t> reach(n, 0);
    for (const auto& [off, o] : offs) {
      for (std::size_t j : frontier) {
        const std::size_t i = (j + off) % n;
        if (bfs_edge_active(n, o, i)) reach[i] = 1;
      }
    }
    frontier.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (reach[i] && want[i] == bfs_unreached(n)) {
        want[i] = static_cast<Word>(r + 1);
        frontier.push_back(i);
      }
  }
  for (std::size_t i = 0; i < n; ++i)
    if (mem[bfs_dist_var(n, i)] != want[i])
      return mismatch("bfs dist", i, mem[bfs_dist_var(n, i)], want[i]);
  return {};
}

std::string check_merge(std::size_t n, const std::vector<Word>& mem) {
  std::vector<Word> want = bitonic_inputs(n);
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < n; ++i)
    if (mem[merge_var(n, i)] != want[i])
      return mismatch("merged", i, mem[merge_var(n, i)], want[i]);
  return {};
}

std::string check_spmv(std::size_t n, const std::vector<Word>& mem) {
  const SpmvInstance m = spmv_instance(n);
  // The program runs on the DEDUPED matrix, but wrapping add is commutative
  // and associative, so y from the raw triplets is the same value.  Compute
  // the y base once: spmv_y_var scans the instance on every call.
  const std::uint32_t y0 = spmv_y_var(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    Word want = 0;
    for (std::size_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
      want += m.val[e] * m.x[m.col[e]];
    if (mem[y0 + i] != want) return mismatch("spmv y", i, mem[y0 + i], want);
  }
  return {};
}

std::string check_dag(std::size_t n, const std::vector<Word>& mem) {
  const std::size_t levels = steal_dag_levels(n);
  const std::size_t pa = dag_pa_base(n, levels), pb = dag_pb_base(n, levels),
                    sel = dag_sel_base(n, levels);
  for (std::size_t w = 0; w < n; ++w) {
    if (mem[dag_value_var(n, levels, 0, w)] != static_cast<Word>(3 * w + 1))
      return mismatch("dag seed", w, mem[dag_value_var(n, levels, 0, w)],
                      static_cast<Word>(3 * w + 1));
  }
  for (std::size_t l = 1; l <= levels; ++l)
    for (std::size_t w = 0; w < n; ++w) {
      const Word c = mem[dag_coin_var(n, levels, l, w)];
      if (c > 1) return mismatch("dag coin", l * n + w, c, 1);
      const Word own = mem[dag_value_var(n, levels, l - 1, w)];
      const Word stolen = mem[dag_value_var(n, levels, l - 1, (w + 1) % n)];
      const Word pav = mem[pa + (l - 1) * n + w];
      const Word pbv = mem[pb + (l - 1) * n + w];
      const Word sv = mem[sel + (l - 1) * n + w];
      if (pav != own) return mismatch("dag own-lane copy", l * n + w, pav, own);
      if (pbv != stolen)
        return mismatch("dag stolen copy", l * n + w, pbv, stolen);
      if (sv != (c != 0 ? pbv : pav))
        return mismatch("dag selection", l * n + w, sv, c != 0 ? pbv : pav);
      if (mem[dag_value_var(n, levels, l, w)] != sv + 1)
        return mismatch("dag value", l * n + w,
                        mem[dag_value_var(n, levels, l, w)], sv + 1);
    }
  return {};
}

}  // namespace

const std::vector<WorkloadSpec>& workload_registry() {
  static const std::vector<WorkloadSpec> kRegistry = {
      {"luby", "Luby MIS round on the n-cycle", false, false, 3, false, false,
       reg_make_luby, check_luby, {}},
      {"leader", "randomized leader election", false, false, 2, true, false,
       reg_make_leader, check_leader, {}},
      {"ring", "randomized ring coloring", false, false, 3, false, false,
       reg_make_ring, check_ring, {}},
      {"coins", "T steps of biased coins", false, false, 1, false, false,
       reg_make_coins, check_coins, {}},
      {"probe", "consistency probe (E13)", false, false, 2, false, false,
       reg_make_probe, check_probe, {}},
      {"prefix", "Hillis-Steele prefix sum", true, false, 2, true, false,
       reg_make_prefix, check_prefix, {}},
      {"sort", "odd-even transposition sort", true, false, 2, false, true,
       reg_make_sort, check_sort, {}},
      {"reduction", "tournament reduction", true, false, 2, true, false,
       reg_make_reduction, check_reduction, {}},
      // The irregular suite also registers canonical LARGE-n instances:
      // P = 64/128 for the classic scaling grid, plus GRAPH-SCALE sizes
      // (n = 1e4 / 1e5, capped at 4096 logical processors) for the
      // CSR-backed kernels — edge data lives as CSR arrays gathered at run
      // time, so the builders stay cheap while the virtualized host
      // executor drives the instances on a handful of OS threads.
      {"bfs", "BFS frontier expansion on CSR (irregular)", true, true, 6,
       false, false, reg_make_bfs, check_bfs, {64, 128, 10000, 100000},
       reg_bfs_proc_weights},
      {"merge", "bitonic butterfly merge (irregular)", true, true, 2, true,
       false, reg_make_merge, check_merge, {}},
      {"spmv", "CSR sparse mat-vec via dynamic-window gathers (irregular)",
       true, true, 2, false, false, reg_make_spmv, check_spmv,
       {64, 128, 10000, 100000}, reg_spmv_proc_weights},
      {"dag", "work-stealing-shaped DAG (irregular)", false, true, 2, false,
       false, reg_make_dag, check_dag, {64, 128}},
  };
  return kRegistry;
}

const WorkloadSpec* find_workload(const std::string& name) {
  for (const auto& spec : workload_registry())
    if (name == spec.name) return &spec;
  return nullptr;
}

bool workload_supports_n(const WorkloadSpec& spec, std::size_t n) {
  if (n < spec.min_n) return false;
  if (spec.pow2_n && !is_pow2(n)) return false;
  if (spec.even_n && n % 2 != 0) return false;
  return true;
}

std::string workload_names() {
  std::string out;
  for (const auto& spec : workload_registry()) {
    if (!out.empty()) out += ",";
    out += spec.name;
  }
  return out;
}

}  // namespace apex::pram
