#include "pram/workloads.h"

#include <algorithm>
#include <numeric>
#include <stdexcept>

#include "util/math.h"
#include "util/rng.h"

namespace apex::pram {

namespace {
std::uint32_t u32(std::size_t v) { return static_cast<std::uint32_t>(v); }

void require_pow2(std::size_t n, const char* who) {
  if (!is_pow2(n) || n < 2)
    throw std::invalid_argument(std::string(who) +
                                ": n must be a power of two >= 2");
}
}  // namespace

// ---------------------------------------------------------------------------
// Reduction: vars layout [in: 0..n) [bufA: n..2n) [bufB: 2n..3n) [tmp: 3n..4n)
// Round d halves the active size; buffers alternate so no step reads and
// writes the same variable.
// ---------------------------------------------------------------------------

std::uint32_t reduction_result_var(std::size_t n) {
  // Round 1 writes bufA (base n), round 2 writes bufB (base 2n), and the
  // buffers alternate; the result is cell 0 of the last round's buffer.
  const std::uint32_t rounds = lg(n);
  return (rounds % 2 == 1) ? u32(n) : u32(2 * n);
}

Program make_reduction(std::size_t n) {
  require_pow2(n, "make_reduction");
  const std::size_t in = 0, bufA = n, bufB = 2 * n, tmp = 3 * n;
  ProgramBuilder b(n, 4 * n);

  // Round 1 reads `in`, writes bufA[0..n/2).
  std::size_t active = n;
  std::size_t src = in;
  std::size_t dst = bufA;
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::copy(u32(tmp + i), u32(src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::add(u32(dst + i), u32(src + 2 * i), u32(tmp + i)));
    }
    src = dst;
    dst = (dst == bufA) ? bufB : bufA;
    active = half;
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Luby round on the n-cycle.
// Layout: r[0..n) cl[n..2n) cr[2n..3n) a[3n..4n) bq[4n..5n) mis[5n..6n)
//         nl[6n..7n) viol[7n..8n)
// ---------------------------------------------------------------------------

std::uint32_t luby_priority_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}
std::uint32_t luby_mis_var(std::size_t n, std::size_t i) { return u32(5 * n + i); }
std::uint32_t luby_violation_var(std::size_t n, std::size_t i) {
  return u32(7 * n + i);
}

Program make_luby_cycle_round(std::size_t n, Word k) {
  if (n < 3)
    throw std::invalid_argument("make_luby_cycle_round: need n >= 3");
  const std::size_t r = 0, cl = n, cr = 2 * n, a = 3 * n, bq = 4 * n,
                    mis = 5 * n, nl = 6 * n, viol = 7 * n;
  ProgramBuilder b(n, 8 * n);

  b.step().all([&](std::size_t i) { return Instr::rand_below(u32(r + i), k); });
  // Stage left/right neighbour priorities (each r[j] read exactly once per
  // step).
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(cl + i), u32(r + (i + n - 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(cr + i), u32(r + (i + 1) % n));
  });
  // Strict local maximum test.
  b.step().all([&](std::size_t i) {
    return Instr::less(u32(a + i), u32(cl + i), u32(r + i));
  });
  b.step().all([&](std::size_t i) {
    return Instr::less(u32(bq + i), u32(cr + i), u32(r + i));
  });
  b.step().all([&](std::size_t i) {
    return Instr::and_(u32(mis + i), u32(a + i), u32(bq + i));
  });
  // Independence check: viol[i] = mis[i] AND mis[i-1] must be 0.
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(nl + i), u32(mis + (i + n - 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::and_(u32(viol + i), u32(mis + i), u32(nl + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// Leader election.
// Layout: r[0..n) mA[n..2n) mB[2n..3n) tmp[3n..4n) bc[4n..5n) lead[5n..6n)
// ---------------------------------------------------------------------------

std::uint32_t leader_ticket_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}
std::uint32_t leader_flag_var(std::size_t n, std::size_t i) {
  return u32(5 * n + i);
}
std::uint32_t leader_max_var(std::size_t n, std::size_t i) {
  return u32(4 * n + i);
}

Program make_leader_election(std::size_t n, Word k) {
  require_pow2(n, "make_leader_election");
  const std::size_t r = 0, mA = n, mB = 2 * n, tmp = 3 * n, bc = 4 * n,
                    lead = 5 * n;
  ProgramBuilder b(n, 6 * n);

  b.step().all([&](std::size_t i) { return Instr::rand_below(u32(r + i), k); });

  // Max tournament: round 0 reads r, later rounds alternate mA/mB.
  std::size_t active = n;
  std::size_t src = r;
  std::size_t dst = mA;
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::copy(u32(tmp + i), u32(src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::max(u32(dst + i), u32(src + 2 * i), u32(tmp + i)));
    }
    src = dst;
    dst = (dst == mA) ? mB : mA;
    active = half;
  }

  // Broadcast the winner into bc[0..n) by doubling.
  b.step().thread(0, Instr::copy(u32(bc + 0), u32(src + 0)));
  for (std::size_t width = 1; width < n; width *= 2) {
    auto s = b.step();
    for (std::size_t i = 0; i < width && width + i < n; ++i)
      s.thread(i, Instr::copy(u32(bc + width + i), u32(bc + i)));
  }

  // leader[i] = (r[i] == bc[i]).
  b.step().all([&](std::size_t i) {
    return Instr::eq(u32(lead + i), u32(r + i), u32(bc + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// Consistency probe.
// Layout: R=0, chain c[1..chain], flags f[chain+1 .. chain+chain)
// flag f_j = (c_j == c_{j+1}) for j = 1..chain-1, plus f_0 = (c_1 == c_chain)
// computed last.
// ---------------------------------------------------------------------------

std::size_t probe_flag_count(std::size_t chain) { return chain; }

std::uint32_t probe_flag_var(std::size_t n, std::size_t chain, std::size_t j) {
  (void)n;
  return u32(1 + chain + j);
}

Program make_consistency_probe(std::size_t n, std::size_t chain, Word k) {
  if (n < 2) throw std::invalid_argument("make_consistency_probe: n >= 2");
  if (chain < 1) throw std::invalid_argument("make_consistency_probe: chain >= 1");
  const std::size_t kR = 0;
  auto c_var = [&](std::size_t j) { return u32(1 + (j - 1)); };  // c_1..c_chain
  ProgramBuilder b(n, 1 + chain + probe_flag_count(chain));

  b.step().thread(0, Instr::rand_below(u32(kR), k));
  b.step().thread(0, Instr::copy(c_var(1), u32(kR)));
  for (std::size_t j = 2; j <= chain; ++j)
    b.step().thread((j - 1) % n, Instr::copy(c_var(j), c_var(j - 1)));
  // Flags: f_j = eq(c_j, c_{j+1}); one comparison per step keeps EREW.
  for (std::size_t j = 1; j < chain; ++j)
    b.step().thread(j % n,
                    Instr::eq(probe_flag_var(n, chain, j), c_var(j), c_var(j + 1)));
  // Closing flag: the chain end must equal the chain start.
  b.step().thread(1, Instr::eq(probe_flag_var(n, chain, 0), c_var(1),
                               c_var(chain)));
  return b.build();
}

// ---------------------------------------------------------------------------
// Coin matrix.
// ---------------------------------------------------------------------------

std::uint32_t coin_matrix_var(std::size_t n, std::size_t s, std::size_t i) {
  return u32(s * n + i);
}

Program make_coin_matrix(std::size_t n, std::size_t t, double p) {
  if (n == 0 || t == 0)
    throw std::invalid_argument("make_coin_matrix: n, t >= 1");
  ProgramBuilder b(n, n * t);
  for (std::size_t s = 0; s < t; ++s) {
    b.step().all([&](std::size_t i) {
      return Instr::coin(coin_matrix_var(n, s, i), p);
    });
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Prefix sum (Hillis-Steele doubling).
// Layout: a[0..n) stage[n..2n).
// Round d (offset = 2^d): stage[i] = a[i - offset] (thread i copies its own
// staged operand, so a[j] is read only by thread j + offset), then
// a[i] = a[i] + stage[i] for i >= offset.  Reading and writing a[i] in one
// step is legal under split execution.
// ---------------------------------------------------------------------------

std::uint32_t prefix_sum_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}

Program make_prefix_sum(std::size_t n) {
  require_pow2(n, "make_prefix_sum");
  const std::size_t a = 0, stage = n;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t offset = 1; offset < n; offset *= 2) {
    {
      auto s = b.step();
      for (std::size_t i = offset; i < n; ++i)
        s.thread(i, Instr::copy(u32(stage + i), u32(a + i - offset)));
    }
    {
      auto s = b.step();
      for (std::size_t i = offset; i < n; ++i)
        s.thread(i, Instr::add(u32(a + i), u32(a + i), u32(stage + i)));
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Odd-even transposition sort.
// Layout: a[0..n) lo[n..3n/2...] — staging lo/hi indexed by pair.
// Round r compares pairs (first, first+1) with first = 2p + (r odd), via
// one thread per pair computing min then max into staging vars, then the
// pair's two threads copying them back.
// ---------------------------------------------------------------------------

std::uint32_t sort_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}

Program make_odd_even_sort(std::size_t n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("make_odd_even_sort: n must be even and >= 2");
  const std::size_t a = 0, lo = n, hi = n + n / 2;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t round = 0; round < n; ++round) {
    const std::size_t start = round % 2;  // even rounds pair (0,1),(2,3),...
    std::vector<std::size_t> firsts;
    for (std::size_t f = start; f + 1 < n; f += 2) firsts.push_back(f);
    if (firsts.empty()) continue;
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::min(u32(lo + p), u32(a + firsts[p]),
                               u32(a + firsts[p] + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::max(u32(hi + p), u32(a + firsts[p]),
                               u32(a + firsts[p] + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p) {
        s.thread(firsts[p], Instr::copy(u32(a + firsts[p]), u32(lo + p)));
        s.thread(firsts[p] + 1, Instr::copy(u32(a + firsts[p] + 1), u32(hi + p)));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Randomized ring coloring.
// Layout: col[0..n) right[n..2n) conf[2n..3n).
// ---------------------------------------------------------------------------

std::uint32_t ring_color_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}
std::uint32_t ring_conflict_var(std::size_t n, std::size_t i) {
  return u32(2 * n + i);
}

Program make_ring_coloring(std::size_t n, Word palette) {
  if (n < 3) throw std::invalid_argument("make_ring_coloring: need n >= 3");
  if (palette < 2)
    throw std::invalid_argument("make_ring_coloring: palette >= 2");
  const std::size_t col = 0, right = n, conf = 2 * n;
  ProgramBuilder b(n, 3 * n);
  b.step().all(
      [&](std::size_t i) { return Instr::rand_below(u32(col + i), palette); });
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(right + i), u32(col + (i + 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::eq(u32(conf + i), u32(col + i), u32(right + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// BFS frontier expansion (irregular: predicated, data-dependent propagation).
// Layout (12 regions of n): dist front em0..em3 s1 reach nf roundv u sent
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kBfsTag = 0xBF5;

std::size_t bfs_offset(std::size_t n, std::size_t o) {
  const std::size_t offs[4] = {1, n - 1, 3 % n, (n - 3) % n};
  return offs[o];
}

}  // namespace

std::size_t bfs_rounds(std::size_t n) { return n / 2 + 2; }

std::uint32_t bfs_dist_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}

Word bfs_unreached(std::size_t n) { return static_cast<Word>(2 * n); }

bool bfs_edge_active(std::size_t n, std::size_t o, std::size_t i) {
  const std::uint64_t h =
      apex::mix64(apex::mix64(kBfsTag, n), o * n + i);
  // Ring edges (offsets 1, n-1) are dense (3/4), chords (3, n-3) sparse
  // (1/2): most nodes stay reachable while distances spread irregularly.
  return o < 2 ? (h % 4) != 0 : (h % 2) != 0;
}

Program make_bfs_frontier(std::size_t n, std::size_t rounds) {
  if (n < 6)
    throw std::invalid_argument("make_bfs_frontier: need n >= 6");
  if (rounds < 1)
    throw std::invalid_argument("make_bfs_frontier: need rounds >= 1");
  const std::size_t dist = 0, front = n, em = 2 * n /* 4 regions */,
                    s1 = 6 * n, reach = 7 * n, nf = 8 * n, roundv = 9 * n,
                    u = 10 * n, sent = 11 * n;
  ProgramBuilder b(n, 12 * n);

  // Prologue: distances to the sentinel (source 0 fixed next step), the
  // initial frontier, the edge masks (graph data lives in program memory),
  // and the per-thread sentinel constants.
  b.step().all([&](std::size_t i) {
    return Instr::constant(u32(dist + i), bfs_unreached(n));
  });
  b.step().thread(0, Instr::constant(u32(dist + 0), 0));
  b.step().all([&](std::size_t i) {
    return Instr::constant(u32(front + i), i == 0 ? 1 : 0);
  });
  for (std::size_t o = 0; o < 4; ++o)
    b.step().all([&](std::size_t i) {
      return Instr::constant(u32(em + o * n + i),
                             bfs_edge_active(n, o, i) ? 1 : 0);
    });
  b.step().all([&](std::size_t i) {
    return Instr::constant(u32(sent + i), bfs_unreached(n));
  });

  for (std::size_t r = 0; r < rounds; ++r) {
    b.step().all([&](std::size_t i) {
      return Instr::constant(u32(roundv + i), static_cast<Word>(r + 1));
    });
    b.step().all(
        [&](std::size_t i) { return Instr::constant(u32(reach + i), 0); });
    for (std::size_t o = 0; o < 4; ++o) {
      const std::size_t off = bfs_offset(n, o);
      // Staged in-neighbour read: i - off is a rotation, so every front[j]
      // is read by exactly one thread (EREW).
      b.step().all([&](std::size_t i) {
        return Instr::copy(u32(s1 + i), u32(front + (i + n - off) % n));
      });
      b.step().all([&](std::size_t i) {
        return Instr::and_(u32(s1 + i), u32(s1 + i), u32(em + o * n + i));
      });
      b.step().all([&](std::size_t i) {
        return Instr::or_(u32(reach + i), u32(reach + i), u32(s1 + i));
      });
    }
    // Join iff reached now and not yet visited; record the distance.
    b.step().all([&](std::size_t i) {
      return Instr::eq(u32(u + i), u32(dist + i), u32(sent + i));
    });
    b.step().all([&](std::size_t i) {
      return Instr::and_(u32(nf + i), u32(reach + i), u32(u + i));
    });
    b.step().all([&](std::size_t i) {
      return Instr::select(u32(dist + i), u32(nf + i), u32(roundv + i),
                           u32(dist + i));
    });
    b.step().all(
        [&](std::size_t i) { return Instr::copy(u32(front + i), u32(nf + i)); });
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Bitonic (butterfly) merge.
// Layout: a[0..n) lo[n..n+n/2) hi[n+n/2..2n); one staged compare-exchange
// per butterfly stage, value-driven via kMin/kMax.
// ---------------------------------------------------------------------------

std::uint32_t merge_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}

Program make_bitonic_merge(std::size_t n) {
  require_pow2(n, "make_bitonic_merge");
  const std::size_t a = 0, lo = n, hi = n + n / 2;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t d = n / 2; d >= 1; d /= 2) {
    // Pairs (i, i^d) for i with bit d clear, indexed densely by p.
    std::vector<std::size_t> firsts;
    for (std::size_t i = 0; i < n; ++i)
      if ((i & d) == 0) firsts.push_back(i);
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::min(u32(lo + p), u32(a + firsts[p]),
                               u32(a + (firsts[p] | d))));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::max(u32(hi + p), u32(a + firsts[p]),
                               u32(a + (firsts[p] | d))));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p) {
        s.thread(firsts[p], Instr::copy(u32(a + firsts[p]), u32(lo + p)));
        s.thread(firsts[p] | d, Instr::copy(u32(a + (firsts[p] | d)), u32(hi + p)));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// CSR sparse mat-vec with computed-index gathers.
// Layout: x[0..n) idx[n..n+nnz) val[..+nnz) g[..+nnz) prod[..+nnz) y[..+n)
// ---------------------------------------------------------------------------

namespace {

constexpr std::uint64_t kSpmvTag = 0x59317;

/// Irregular row degrees: mostly 1-3, every ~5th row heavy (up to 6).
std::size_t spmv_row_degree(std::size_t n, std::size_t i) {
  const std::uint64_t h = apex::mix64(apex::mix64(kSpmvTag, n), i);
  return 1 + h % 3 + (h % 5 == 0 ? 3 : 0);
}

/// Total nonzeros of the baked instance, without materializing it.
std::size_t spmv_nnz(std::size_t n) {
  std::size_t nnz = 0;
  for (std::size_t i = 0; i < n; ++i) nnz += spmv_row_degree(n, i);
  return nnz;
}

}  // namespace

SpmvInstance spmv_instance(std::size_t n) {
  SpmvInstance m;
  m.row_ptr.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t deg = spmv_row_degree(n, i);
    for (std::size_t k = 0; k < deg; ++k) {
      const std::uint64_t e =
          apex::mix64(apex::mix64(kSpmvTag + 1, n), i * 64 + k);
      m.col.push_back(static_cast<std::size_t>(e % n));
      m.val.push_back(1 + e / n % 9);
    }
    m.row_ptr[i + 1] = m.col.size();
  }
  m.x.resize(n);
  for (std::size_t i = 0; i < n; ++i)
    m.x[i] = 1 + apex::mix64(apex::mix64(kSpmvTag + 2, n), i) % 99;
  return m;
}

std::uint32_t spmv_y_var(std::size_t n, std::size_t i) {
  return u32(n + 4 * spmv_nnz(n) + i);
}

Program make_spmv_csr(std::size_t n) {
  if (n < 2) throw std::invalid_argument("make_spmv_csr: need n >= 2");
  const SpmvInstance m = spmv_instance(n);
  const std::size_t nnz = m.col.size();
  const std::size_t x = 0, idx = n, val = n + nnz, g = n + 2 * nnz,
                    prod = n + 3 * nnz, y = n + 4 * nnz;
  ProgramBuilder b(n, 2 * n + 4 * nnz);

  // Prologue: x, then the CSR arrays — the column indices are DATA in
  // program memory; the gathers below address x through them at run time.
  b.step().all([&](std::size_t i) {
    return Instr::constant(u32(x + i), m.x[i]);
  });
  for (std::size_t base = 0; base < nnz; base += n) {
    auto s = b.step();
    for (std::size_t i = 0; i < n && base + i < nnz; ++i)
      s.thread(i, Instr::constant(u32(idx + base + i),
                                  static_cast<Word>(m.col[base + i])));
  }
  for (std::size_t base = 0; base < nnz; base += n) {
    auto s = b.step();
    for (std::size_t i = 0; i < n && base + i < nnz; ++i)
      s.thread(i, Instr::constant(u32(val + base + i), m.val[base + i]));
  }

  // Gather pipeline: one computed-index gather over the x window per step
  // (the window is conservatively exclusive under EREW), overlapped with
  // the previous element's multiply — its operands live outside the window.
  for (std::size_t e = 0; e <= nnz; ++e) {
    auto s = b.step();
    if (e < nnz)
      s.thread(e % n, Instr::gather(u32(g + e), u32(idx + e), u32(x), u32(n)));
    if (e > 0)
      s.thread((e - 1) % n,
               Instr::mul(u32(prod + e - 1), u32(g + e - 1), u32(val + e - 1)));
  }

  // Row accumulation: at slot t every row with > t nonzeros adds its t-th
  // product (distinct prod vars, own y cell — EREW).
  std::size_t maxdeg = 0;
  for (std::size_t i = 0; i < n; ++i)
    maxdeg = std::max(maxdeg, m.row_ptr[i + 1] - m.row_ptr[i]);
  for (std::size_t t = 0; t < maxdeg; ++t) {
    auto s = b.step();
    for (std::size_t i = 0; i < n; ++i)
      if (m.row_ptr[i] + t < m.row_ptr[i + 1])
        s.thread(i, Instr::add(u32(y + i), u32(y + i),
                               u32(prod + m.row_ptr[i] + t)));
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Work-stealing-shaped DAG.
// Layout: v[(levels+1)*n] coin[levels*n] pa[levels*n] pb[levels*n]
//         sel[levels*n] one[n]
// ---------------------------------------------------------------------------

namespace {

std::size_t dag_v_base(std::size_t) { return 0; }
std::size_t dag_coin_base(std::size_t n, std::size_t levels) {
  return (levels + 1) * n;
}
std::size_t dag_pa_base(std::size_t n, std::size_t levels) {
  return dag_coin_base(n, levels) + levels * n;
}
std::size_t dag_pb_base(std::size_t n, std::size_t levels) {
  return dag_pa_base(n, levels) + levels * n;
}
std::size_t dag_sel_base(std::size_t n, std::size_t levels) {
  return dag_pb_base(n, levels) + levels * n;
}
std::size_t dag_one_base(std::size_t n, std::size_t levels) {
  return dag_sel_base(n, levels) + levels * n;
}

}  // namespace

std::size_t steal_dag_levels(std::size_t n) { return n / 2 + 1; }

std::uint32_t dag_value_var(std::size_t n, std::size_t levels, std::size_t l,
                            std::size_t w) {
  (void)levels;
  return u32(dag_v_base(n) + l * n + w);
}

std::uint32_t dag_coin_var(std::size_t n, std::size_t levels, std::size_t l,
                           std::size_t w) {
  // Coins exist for levels 1..levels; stored at index (l-1).
  return u32(dag_coin_base(n, levels) + (l - 1) * n + w);
}

Program make_steal_dag(std::size_t n, std::size_t levels) {
  if (n < 2) throw std::invalid_argument("make_steal_dag: need n >= 2");
  if (levels < 1)
    throw std::invalid_argument("make_steal_dag: need levels >= 1");
  const std::size_t v = dag_v_base(n), coin = dag_coin_base(n, levels),
                    pa = dag_pa_base(n, levels), pb = dag_pb_base(n, levels),
                    sel = dag_sel_base(n, levels),
                    one = dag_one_base(n, levels);
  ProgramBuilder b(n, one + n);

  b.step().all([&](std::size_t w) {
    return Instr::constant(u32(v + w), static_cast<Word>(3 * w + 1));
  });
  b.step().all(
      [&](std::size_t w) { return Instr::constant(u32(one + w), 1); });

  for (std::size_t l = 1; l <= levels; ++l) {
    const std::size_t cl = coin + (l - 1) * n, pal = pa + (l - 1) * n,
                      pbl = pb + (l - 1) * n, sll = sel + (l - 1) * n,
                      prev = v + (l - 1) * n, cur = v + l * n;
    // The random victim choice: 0 = own lane, 1 = steal from the right.
    b.step().all(
        [&](std::size_t w) { return Instr::rand_below(u32(cl + w), 2); });
    b.step().all([&](std::size_t w) {
      return Instr::copy(u32(pal + w), u32(prev + w));
    });
    b.step().all([&](std::size_t w) {
      return Instr::copy(u32(pbl + w), u32(prev + (w + 1) % n));
    });
    b.step().all([&](std::size_t w) {
      return Instr::select(u32(sll + w), u32(cl + w), u32(pbl + w),
                           u32(pal + w));
    });
    b.step().all([&](std::size_t w) {
      return Instr::add(u32(cur + w), u32(sll + w), u32(one + w));
    });
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Workload registry: canonical instances + final-memory verdicts.
// ---------------------------------------------------------------------------

namespace {

// Canonical parameters of the registered instances.
constexpr Word kLubyK = 1 << 16;
constexpr Word kLeaderK = 1 << 16;
constexpr Word kRingPalette = 4;
constexpr std::size_t kCoinSteps = 4;
constexpr double kCoinP = 0.5;
constexpr std::size_t kProbeChain = 8;
constexpr Word kProbeK = 1 << 20;

/// Prepend a constants step seeding vars [0, in.size()) — registered
/// deterministic kernels carry their canonical inputs in the program.
Program with_const_inputs(const Program& p, const std::vector<Word>& in) {
  ProgramBuilder b(p.nthreads(), p.nvars());
  b.step().all([&](std::size_t i) {
    return i < in.size()
               ? Instr::constant(static_cast<std::uint32_t>(i), in[i])
               : Instr::nop();
  });
  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    auto sb = b.step();
    for (std::size_t t = 0; t < p.nthreads(); ++t)
      sb.thread(t, p.step(s).instrs[t]);
  }
  return b.build();
}

std::vector<Word> iota_inputs(std::size_t n) {
  std::vector<Word> in(n);
  std::iota(in.begin(), in.end(), 1);
  return in;
}

std::vector<Word> bitonic_inputs(std::size_t n) {
  std::vector<Word> in(n);
  for (std::size_t i = 0; i < n; ++i)
    in[i] = i < n / 2 ? static_cast<Word>(3 * i + 2)
                      : static_cast<Word>(3 * (n - i) + 1);
  return in;
}

std::string mismatch(const char* what, std::size_t i, Word got, Word want) {
  return std::string(what) + "[" + std::to_string(i) + "] = " +
         std::to_string(got) + ", expected " + std::to_string(want);
}

// ---- make functions (canonical instances) ---------------------------------

Program reg_make_luby(std::size_t n) { return make_luby_cycle_round(n, kLubyK); }
Program reg_make_leader(std::size_t n) {
  return make_leader_election(n, kLeaderK);
}
Program reg_make_ring(std::size_t n) {
  return make_ring_coloring(n, kRingPalette);
}
Program reg_make_coins(std::size_t n) {
  return make_coin_matrix(n, kCoinSteps, kCoinP);
}
Program reg_make_probe(std::size_t n) {
  return make_consistency_probe(n, kProbeChain, kProbeK);
}
Program reg_make_prefix(std::size_t n) {
  return with_const_inputs(make_prefix_sum(n), iota_inputs(n));
}
Program reg_make_sort(std::size_t n) {
  auto in = iota_inputs(n);
  std::reverse(in.begin(), in.end());
  return with_const_inputs(make_odd_even_sort(n), in);
}
Program reg_make_reduction(std::size_t n) {
  return with_const_inputs(make_reduction(n), iota_inputs(n));
}
Program reg_make_bfs(std::size_t n) {
  return make_bfs_frontier(n, bfs_rounds(n));
}
Program reg_make_merge(std::size_t n) {
  return with_const_inputs(make_bitonic_merge(n), bitonic_inputs(n));
}
Program reg_make_spmv(std::size_t n) { return make_spmv_csr(n); }
Program reg_make_dag(std::size_t n) {
  return make_steal_dag(n, steal_dag_levels(n));
}

// ---- final-memory verdicts -------------------------------------------------

std::string check_luby(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t i = 0; i < n; ++i) {
    const Word r = mem[luby_priority_var(n, i)];
    if (r >= kLubyK) return mismatch("luby priority", i, r, kLubyK - 1);
    const Word want =
        mem[luby_priority_var(n, (i + n - 1) % n)] < r &&
                mem[luby_priority_var(n, (i + 1) % n)] < r
            ? 1
            : 0;
    if (mem[luby_mis_var(n, i)] != want)
      return mismatch("luby mis flag", i, mem[luby_mis_var(n, i)], want);
    if (mem[luby_violation_var(n, i)] != 0)
      return mismatch("luby independence violation", i,
                      mem[luby_violation_var(n, i)], 0);
  }
  return {};
}

std::string check_leader(std::size_t n, const std::vector<Word>& mem) {
  Word maxr = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const Word r = mem[leader_ticket_var(n, i)];
    if (r >= kLeaderK) return mismatch("leader ticket", i, r, kLeaderK - 1);
    maxr = std::max(maxr, r);
  }
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (mem[leader_max_var(n, i)] != maxr)
      return mismatch("leader broadcast", i, mem[leader_max_var(n, i)], maxr);
    const Word want = mem[leader_ticket_var(n, i)] == maxr ? 1 : 0;
    if (mem[leader_flag_var(n, i)] != want)
      return mismatch("leader flag", i, mem[leader_flag_var(n, i)], want);
    leaders += mem[leader_flag_var(n, i)];
  }
  if (leaders < 1) return "no leader elected";
  return {};
}

std::string check_ring(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t i = 0; i < n; ++i) {
    const Word ci = mem[ring_color_var(n, i)];
    const Word cn = mem[ring_color_var(n, (i + 1) % n)];
    if (ci >= kRingPalette)
      return mismatch("ring color", i, ci, kRingPalette - 1);
    const Word want = ci == cn ? 1 : 0;
    if (mem[ring_conflict_var(n, i)] != want)
      return mismatch("ring conflict flag", i, mem[ring_conflict_var(n, i)],
                      want);
  }
  return {};
}

std::string check_coins(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t s = 0; s < kCoinSteps; ++s)
    for (std::size_t i = 0; i < n; ++i)
      if (mem[coin_matrix_var(n, s, i)] > 1)
        return mismatch("coin", s * n + i, mem[coin_matrix_var(n, s, i)], 1);
  return {};
}

std::string check_probe(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t j = 0; j < probe_flag_count(kProbeChain); ++j)
    if (mem[probe_flag_var(n, kProbeChain, j)] != 1)
      return mismatch("probe flag", j, mem[probe_flag_var(n, kProbeChain, j)],
                      1);
  return {};
}

std::string check_prefix(std::size_t n, const std::vector<Word>& mem) {
  Word run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run += static_cast<Word>(i + 1);
    if (mem[prefix_sum_var(n, i)] != run)
      return mismatch("prefix sum", i, mem[prefix_sum_var(n, i)], run);
  }
  return {};
}

std::string check_sort(std::size_t n, const std::vector<Word>& mem) {
  for (std::size_t i = 0; i < n; ++i)
    if (mem[sort_var(n, i)] != static_cast<Word>(i + 1))
      return mismatch("sorted", i, mem[sort_var(n, i)],
                      static_cast<Word>(i + 1));
  return {};
}

std::string check_reduction(std::size_t n, const std::vector<Word>& mem) {
  const Word want = static_cast<Word>(n * (n + 1) / 2);
  if (mem[reduction_result_var(n)] != want)
    return mismatch("reduction", 0, mem[reduction_result_var(n)], want);
  return {};
}

std::string check_bfs(std::size_t n, const std::vector<Word>& mem) {
  // Rebuild the exact baked graph and run a level-capped reference BFS.
  const std::size_t rounds = bfs_rounds(n);
  std::vector<Word> want(n, bfs_unreached(n));
  want[0] = 0;
  std::vector<std::size_t> frontier = {0};
  for (std::size_t r = 0; r < rounds && !frontier.empty(); ++r) {
    std::vector<std::uint8_t> reach(n, 0);
    for (std::size_t o = 0; o < 4; ++o) {
      const std::size_t off = bfs_offset(n, o);
      for (std::size_t j : frontier) {
        const std::size_t i = (j + off) % n;
        if (bfs_edge_active(n, o, i)) reach[i] = 1;
      }
    }
    frontier.clear();
    for (std::size_t i = 0; i < n; ++i)
      if (reach[i] && want[i] == bfs_unreached(n)) {
        want[i] = static_cast<Word>(r + 1);
        frontier.push_back(i);
      }
  }
  for (std::size_t i = 0; i < n; ++i)
    if (mem[bfs_dist_var(n, i)] != want[i])
      return mismatch("bfs dist", i, mem[bfs_dist_var(n, i)], want[i]);
  return {};
}

std::string check_merge(std::size_t n, const std::vector<Word>& mem) {
  std::vector<Word> want = bitonic_inputs(n);
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < n; ++i)
    if (mem[merge_var(n, i)] != want[i])
      return mismatch("merged", i, mem[merge_var(n, i)], want[i]);
  return {};
}

std::string check_spmv(std::size_t n, const std::vector<Word>& mem) {
  const SpmvInstance m = spmv_instance(n);
  for (std::size_t i = 0; i < n; ++i) {
    Word want = 0;
    for (std::size_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
      want += m.val[e] * m.x[m.col[e]];
    if (mem[spmv_y_var(n, i)] != want)
      return mismatch("spmv y", i, mem[spmv_y_var(n, i)], want);
  }
  return {};
}

std::string check_dag(std::size_t n, const std::vector<Word>& mem) {
  const std::size_t levels = steal_dag_levels(n);
  const std::size_t pa = dag_pa_base(n, levels), pb = dag_pb_base(n, levels),
                    sel = dag_sel_base(n, levels);
  for (std::size_t w = 0; w < n; ++w) {
    if (mem[dag_value_var(n, levels, 0, w)] != static_cast<Word>(3 * w + 1))
      return mismatch("dag seed", w, mem[dag_value_var(n, levels, 0, w)],
                      static_cast<Word>(3 * w + 1));
  }
  for (std::size_t l = 1; l <= levels; ++l)
    for (std::size_t w = 0; w < n; ++w) {
      const Word c = mem[dag_coin_var(n, levels, l, w)];
      if (c > 1) return mismatch("dag coin", l * n + w, c, 1);
      const Word own = mem[dag_value_var(n, levels, l - 1, w)];
      const Word stolen = mem[dag_value_var(n, levels, l - 1, (w + 1) % n)];
      const Word pav = mem[pa + (l - 1) * n + w];
      const Word pbv = mem[pb + (l - 1) * n + w];
      const Word sv = mem[sel + (l - 1) * n + w];
      if (pav != own) return mismatch("dag own-lane copy", l * n + w, pav, own);
      if (pbv != stolen)
        return mismatch("dag stolen copy", l * n + w, pbv, stolen);
      if (sv != (c != 0 ? pbv : pav))
        return mismatch("dag selection", l * n + w, sv, c != 0 ? pbv : pav);
      if (mem[dag_value_var(n, levels, l, w)] != sv + 1)
        return mismatch("dag value", l * n + w,
                        mem[dag_value_var(n, levels, l, w)], sv + 1);
    }
  return {};
}

}  // namespace

const std::vector<WorkloadSpec>& workload_registry() {
  static const std::vector<WorkloadSpec> kRegistry = {
      {"luby", "Luby MIS round on the n-cycle", false, false, 3, false, false,
       reg_make_luby, check_luby, {}},
      {"leader", "randomized leader election", false, false, 2, true, false,
       reg_make_leader, check_leader, {}},
      {"ring", "randomized ring coloring", false, false, 3, false, false,
       reg_make_ring, check_ring, {}},
      {"coins", "T steps of biased coins", false, false, 1, false, false,
       reg_make_coins, check_coins, {}},
      {"probe", "consistency probe (E13)", false, false, 2, false, false,
       reg_make_probe, check_probe, {}},
      {"prefix", "Hillis-Steele prefix sum", true, false, 2, true, false,
       reg_make_prefix, check_prefix, {}},
      {"sort", "odd-even transposition sort", true, false, 2, false, true,
       reg_make_sort, check_sort, {}},
      {"reduction", "tournament reduction", true, false, 2, true, false,
       reg_make_reduction, check_reduction, {}},
      // The irregular suite also registers canonical LARGE-n instances
      // (P = 64/128 logical processors): the builders are size-generic and
      // cheap (620 steps for bfs at n=64, built in O(ms)), and the
      // virtualized host executor runs them on a handful of OS threads.
      {"bfs", "BFS frontier expansion (irregular)", true, true, 6, false,
       false, reg_make_bfs, check_bfs, {64, 128}},
      {"merge", "bitonic butterfly merge (irregular)", true, true, 2, true,
       false, reg_make_merge, check_merge, {}},
      {"spmv", "CSR sparse mat-vec via gathers (irregular)", true, true, 2,
       false, false, reg_make_spmv, check_spmv, {64, 128}},
      {"dag", "work-stealing-shaped DAG (irregular)", false, true, 2, false,
       false, reg_make_dag, check_dag, {64, 128}},
  };
  return kRegistry;
}

const WorkloadSpec* find_workload(const std::string& name) {
  for (const auto& spec : workload_registry())
    if (name == spec.name) return &spec;
  return nullptr;
}

bool workload_supports_n(const WorkloadSpec& spec, std::size_t n) {
  if (n < spec.min_n) return false;
  if (spec.pow2_n && !is_pow2(n)) return false;
  if (spec.even_n && n % 2 != 0) return false;
  return true;
}

std::string workload_names() {
  std::string out;
  for (const auto& spec : workload_registry()) {
    if (!out.empty()) out += ",";
    out += spec.name;
  }
  return out;
}

}  // namespace apex::pram
