#include "pram/workloads.h"

#include <stdexcept>

#include "util/math.h"

namespace apex::pram {

namespace {
std::uint32_t u32(std::size_t v) { return static_cast<std::uint32_t>(v); }

void require_pow2(std::size_t n, const char* who) {
  if (!is_pow2(n) || n < 2)
    throw std::invalid_argument(std::string(who) +
                                ": n must be a power of two >= 2");
}
}  // namespace

// ---------------------------------------------------------------------------
// Reduction: vars layout [in: 0..n) [bufA: n..2n) [bufB: 2n..3n) [tmp: 3n..4n)
// Round d halves the active size; buffers alternate so no step reads and
// writes the same variable.
// ---------------------------------------------------------------------------

std::uint32_t reduction_result_var(std::size_t n) {
  // Round 1 writes bufA (base n), round 2 writes bufB (base 2n), and the
  // buffers alternate; the result is cell 0 of the last round's buffer.
  const std::uint32_t rounds = lg(n);
  return (rounds % 2 == 1) ? u32(n) : u32(2 * n);
}

Program make_reduction(std::size_t n) {
  require_pow2(n, "make_reduction");
  const std::size_t in = 0, bufA = n, bufB = 2 * n, tmp = 3 * n;
  ProgramBuilder b(n, 4 * n);

  // Round 1 reads `in`, writes bufA[0..n/2).
  std::size_t active = n;
  std::size_t src = in;
  std::size_t dst = bufA;
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::copy(u32(tmp + i), u32(src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::add(u32(dst + i), u32(src + 2 * i), u32(tmp + i)));
    }
    src = dst;
    dst = (dst == bufA) ? bufB : bufA;
    active = half;
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Luby round on the n-cycle.
// Layout: r[0..n) cl[n..2n) cr[2n..3n) a[3n..4n) bq[4n..5n) mis[5n..6n)
//         nl[6n..7n) viol[7n..8n)
// ---------------------------------------------------------------------------

std::uint32_t luby_priority_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}
std::uint32_t luby_mis_var(std::size_t n, std::size_t i) { return u32(5 * n + i); }
std::uint32_t luby_violation_var(std::size_t n, std::size_t i) {
  return u32(7 * n + i);
}

Program make_luby_cycle_round(std::size_t n, Word k) {
  if (n < 3)
    throw std::invalid_argument("make_luby_cycle_round: need n >= 3");
  const std::size_t r = 0, cl = n, cr = 2 * n, a = 3 * n, bq = 4 * n,
                    mis = 5 * n, nl = 6 * n, viol = 7 * n;
  ProgramBuilder b(n, 8 * n);

  b.step().all([&](std::size_t i) { return Instr::rand_below(u32(r + i), k); });
  // Stage left/right neighbour priorities (each r[j] read exactly once per
  // step).
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(cl + i), u32(r + (i + n - 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(cr + i), u32(r + (i + 1) % n));
  });
  // Strict local maximum test.
  b.step().all([&](std::size_t i) {
    return Instr::less(u32(a + i), u32(cl + i), u32(r + i));
  });
  b.step().all([&](std::size_t i) {
    return Instr::less(u32(bq + i), u32(cr + i), u32(r + i));
  });
  b.step().all([&](std::size_t i) {
    return Instr::and_(u32(mis + i), u32(a + i), u32(bq + i));
  });
  // Independence check: viol[i] = mis[i] AND mis[i-1] must be 0.
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(nl + i), u32(mis + (i + n - 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::and_(u32(viol + i), u32(mis + i), u32(nl + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// Leader election.
// Layout: r[0..n) mA[n..2n) mB[2n..3n) tmp[3n..4n) bc[4n..5n) lead[5n..6n)
// ---------------------------------------------------------------------------

std::uint32_t leader_ticket_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}
std::uint32_t leader_flag_var(std::size_t n, std::size_t i) {
  return u32(5 * n + i);
}
std::uint32_t leader_max_var(std::size_t n, std::size_t i) {
  return u32(4 * n + i);
}

Program make_leader_election(std::size_t n, Word k) {
  require_pow2(n, "make_leader_election");
  const std::size_t r = 0, mA = n, mB = 2 * n, tmp = 3 * n, bc = 4 * n,
                    lead = 5 * n;
  ProgramBuilder b(n, 6 * n);

  b.step().all([&](std::size_t i) { return Instr::rand_below(u32(r + i), k); });

  // Max tournament: round 0 reads r, later rounds alternate mA/mB.
  std::size_t active = n;
  std::size_t src = r;
  std::size_t dst = mA;
  while (active > 1) {
    const std::size_t half = active / 2;
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::copy(u32(tmp + i), u32(src + 2 * i + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t i = 0; i < half; ++i)
        s.thread(i, Instr::max(u32(dst + i), u32(src + 2 * i), u32(tmp + i)));
    }
    src = dst;
    dst = (dst == mA) ? mB : mA;
    active = half;
  }

  // Broadcast the winner into bc[0..n) by doubling.
  b.step().thread(0, Instr::copy(u32(bc + 0), u32(src + 0)));
  for (std::size_t width = 1; width < n; width *= 2) {
    auto s = b.step();
    for (std::size_t i = 0; i < width && width + i < n; ++i)
      s.thread(i, Instr::copy(u32(bc + width + i), u32(bc + i)));
  }

  // leader[i] = (r[i] == bc[i]).
  b.step().all([&](std::size_t i) {
    return Instr::eq(u32(lead + i), u32(r + i), u32(bc + i));
  });
  return b.build();
}

// ---------------------------------------------------------------------------
// Consistency probe.
// Layout: R=0, chain c[1..chain], flags f[chain+1 .. chain+chain)
// flag f_j = (c_j == c_{j+1}) for j = 1..chain-1, plus f_0 = (c_1 == c_chain)
// computed last.
// ---------------------------------------------------------------------------

std::size_t probe_flag_count(std::size_t chain) { return chain; }

std::uint32_t probe_flag_var(std::size_t n, std::size_t chain, std::size_t j) {
  (void)n;
  return u32(1 + chain + j);
}

Program make_consistency_probe(std::size_t n, std::size_t chain, Word k) {
  if (n < 2) throw std::invalid_argument("make_consistency_probe: n >= 2");
  if (chain < 1) throw std::invalid_argument("make_consistency_probe: chain >= 1");
  const std::size_t kR = 0;
  auto c_var = [&](std::size_t j) { return u32(1 + (j - 1)); };  // c_1..c_chain
  ProgramBuilder b(n, 1 + chain + probe_flag_count(chain));

  b.step().thread(0, Instr::rand_below(u32(kR), k));
  b.step().thread(0, Instr::copy(c_var(1), u32(kR)));
  for (std::size_t j = 2; j <= chain; ++j)
    b.step().thread((j - 1) % n, Instr::copy(c_var(j), c_var(j - 1)));
  // Flags: f_j = eq(c_j, c_{j+1}); one comparison per step keeps EREW.
  for (std::size_t j = 1; j < chain; ++j)
    b.step().thread(j % n,
                    Instr::eq(probe_flag_var(n, chain, j), c_var(j), c_var(j + 1)));
  // Closing flag: the chain end must equal the chain start.
  b.step().thread(1, Instr::eq(probe_flag_var(n, chain, 0), c_var(1),
                               c_var(chain)));
  return b.build();
}

// ---------------------------------------------------------------------------
// Coin matrix.
// ---------------------------------------------------------------------------

std::uint32_t coin_matrix_var(std::size_t n, std::size_t s, std::size_t i) {
  return u32(s * n + i);
}

Program make_coin_matrix(std::size_t n, std::size_t t, double p) {
  if (n == 0 || t == 0)
    throw std::invalid_argument("make_coin_matrix: n, t >= 1");
  ProgramBuilder b(n, n * t);
  for (std::size_t s = 0; s < t; ++s) {
    b.step().all([&](std::size_t i) {
      return Instr::coin(coin_matrix_var(n, s, i), p);
    });
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Prefix sum (Hillis-Steele doubling).
// Layout: a[0..n) stage[n..2n).
// Round d (offset = 2^d): stage[i] = a[i - offset] (thread i copies its own
// staged operand, so a[j] is read only by thread j + offset), then
// a[i] = a[i] + stage[i] for i >= offset.  Reading and writing a[i] in one
// step is legal under split execution.
// ---------------------------------------------------------------------------

std::uint32_t prefix_sum_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}

Program make_prefix_sum(std::size_t n) {
  require_pow2(n, "make_prefix_sum");
  const std::size_t a = 0, stage = n;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t offset = 1; offset < n; offset *= 2) {
    {
      auto s = b.step();
      for (std::size_t i = offset; i < n; ++i)
        s.thread(i, Instr::copy(u32(stage + i), u32(a + i - offset)));
    }
    {
      auto s = b.step();
      for (std::size_t i = offset; i < n; ++i)
        s.thread(i, Instr::add(u32(a + i), u32(a + i), u32(stage + i)));
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Odd-even transposition sort.
// Layout: a[0..n) lo[n..3n/2...] — staging lo/hi indexed by pair.
// Round r compares pairs (first, first+1) with first = 2p + (r odd), via
// one thread per pair computing min then max into staging vars, then the
// pair's two threads copying them back.
// ---------------------------------------------------------------------------

std::uint32_t sort_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}

Program make_odd_even_sort(std::size_t n) {
  if (n < 2 || n % 2 != 0)
    throw std::invalid_argument("make_odd_even_sort: n must be even and >= 2");
  const std::size_t a = 0, lo = n, hi = n + n / 2;
  ProgramBuilder b(n, 2 * n);
  for (std::size_t round = 0; round < n; ++round) {
    const std::size_t start = round % 2;  // even rounds pair (0,1),(2,3),...
    std::vector<std::size_t> firsts;
    for (std::size_t f = start; f + 1 < n; f += 2) firsts.push_back(f);
    if (firsts.empty()) continue;
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::min(u32(lo + p), u32(a + firsts[p]),
                               u32(a + firsts[p] + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p)
        s.thread(p, Instr::max(u32(hi + p), u32(a + firsts[p]),
                               u32(a + firsts[p] + 1)));
    }
    {
      auto s = b.step();
      for (std::size_t p = 0; p < firsts.size(); ++p) {
        s.thread(firsts[p], Instr::copy(u32(a + firsts[p]), u32(lo + p)));
        s.thread(firsts[p] + 1, Instr::copy(u32(a + firsts[p] + 1), u32(hi + p)));
      }
    }
  }
  return b.build();
}

// ---------------------------------------------------------------------------
// Randomized ring coloring.
// Layout: col[0..n) right[n..2n) conf[2n..3n).
// ---------------------------------------------------------------------------

std::uint32_t ring_color_var(std::size_t n, std::size_t i) {
  (void)n;
  return u32(i);
}
std::uint32_t ring_conflict_var(std::size_t n, std::size_t i) {
  return u32(2 * n + i);
}

Program make_ring_coloring(std::size_t n, Word palette) {
  if (n < 3) throw std::invalid_argument("make_ring_coloring: need n >= 3");
  if (palette < 2)
    throw std::invalid_argument("make_ring_coloring: palette >= 2");
  const std::size_t col = 0, right = n, conf = 2 * n;
  ProgramBuilder b(n, 3 * n);
  b.step().all(
      [&](std::size_t i) { return Instr::rand_below(u32(col + i), palette); });
  b.step().all([&](std::size_t i) {
    return Instr::copy(u32(right + i), u32(col + (i + 1) % n));
  });
  b.step().all([&](std::size_t i) {
    return Instr::eq(u32(conf + i), u32(col + i), u32(right + i));
  });
  return b.build();
}

}  // namespace apex::pram
