#include "pram/interp.h"

#include <stdexcept>

namespace apex::pram {

namespace {

/// The value a kGather produces against the pre-step image `mem`.  An
/// out-of-window computed index is defined as 0; the target is addressed
/// through gather_target so the 64-bit index value can never overflow the
/// std::size_t subscript (the window bound caps it first).
Word eval_gather(const Instr& ins, const std::vector<Word>& mem) {
  const std::uint32_t target = gather_target(ins, mem[ins.x]);
  return target == kGatherOutOfRange ? 0 : mem[target];
}

/// Same for kGatherDyn: the index is M[x] + M[y] (wrapping) and the bound
/// is M[c]; the static segment bound caps the subscript before it can
/// overflow, exactly as the static-window case.
Word eval_gather_dyn(const Instr& ins, const std::vector<Word>& mem) {
  const Word j = mem[ins.x] + mem[ins.y];
  const std::uint32_t target = gather_dyn_target(ins, j, mem[ins.c]);
  return target == kGatherOutOfRange ? 0 : mem[target];
}

Word eval_with_rng(const Instr& ins, const std::vector<Word>& mem,
                   apex::Rng& rng) {
  switch (ins.op) {
    case OpCode::kRandBelow:
      return ins.imm == 0 ? 0 : rng.below(ins.imm);
    case OpCode::kCoin:
      return rng.uniform() * 4294967296.0 < static_cast<double>(ins.imm) ? 1
                                                                         : 0;
    case OpCode::kGather:
      return eval_gather(ins, mem);
    case OpCode::kGatherDyn:
      return eval_gather_dyn(ins, mem);
    default:
      return eval_deterministic(ins, mem[ins.x], mem[ins.y], mem[ins.c]);
  }
}

}  // namespace

InterpResult Interpreter::run(std::vector<Word> initial, apex::Rng rng) const {
  const Program& p = *prog_;
  initial.resize(p.nvars(), 0);
  InterpResult out;
  out.memory = std::move(initial);
  out.produced.assign(p.nsteps(), std::vector<Word>(p.nthreads(), 0));

  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    const Step& st = p.step(s);
    // Compute phase: all reads see the pre-step image.
    for (std::size_t t = 0; t < p.nthreads(); ++t) {
      const Instr& ins = st.instrs[t];
      if (ins.op == OpCode::kNop) continue;
      out.produced[s][t] = eval_with_rng(ins, out.memory, rng);
    }
    // Copy phase: commit all writes simultaneously (EREW guarantees no
    // write-write conflicts).
    for (std::size_t t = 0; t < p.nthreads(); ++t) {
      const Instr& ins = st.instrs[t];
      if (!writes_dest(ins.op)) continue;
      out.memory[ins.z] = out.produced[s][t];
    }
  }
  return out;
}

InterpResult Interpreter::run_deterministic(std::vector<Word> initial) const {
  if (prog_->is_nondeterministic())
    throw std::logic_error(
        "Interpreter::run_deterministic on a nondeterministic program");
  return run(std::move(initial), apex::Rng(0));
}

std::string check_execution_consistency(
    const Program& p, const std::vector<Word>& initial,
    const std::vector<std::vector<Word>>& produced,
    const std::vector<Word>& final_memory) {
  if (produced.size() != p.nsteps()) return "produced trace has wrong length";
  std::vector<Word> mem = initial;
  mem.resize(p.nvars(), 0);

  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    if (produced[s].size() != p.nthreads())
      return "produced[" + std::to_string(s) + "] has wrong width";
    const Step& st = p.step(s);
    for (std::size_t t = 0; t < p.nthreads(); ++t) {
      const Instr& ins = st.instrs[t];
      if (ins.op == OpCode::kNop) continue;
      const Word got = produced[s][t];
      // kGather / kGatherDyn resolve their computed read against the
      // replay image; the y slot passed to in_support follows
      // eval_deterministic's resolved-gather convention.
      const Word yv = ins.op == OpCode::kGather ? eval_gather(ins, mem)
                      : ins.op == OpCode::kGatherDyn
                          ? eval_gather_dyn(ins, mem)
                          : mem[ins.y];
      if (!in_support(ins, got, mem[ins.x], yv, mem[ins.c]))
        return "step " + std::to_string(s) + " thread " + std::to_string(t) +
               ": value " + std::to_string(got) + " not a valid result of " +
               ins.to_string();
    }
    for (std::size_t t = 0; t < p.nthreads(); ++t) {
      const Instr& ins = st.instrs[t];
      if (!writes_dest(ins.op)) continue;
      mem[ins.z] = produced[s][t];
    }
  }

  if (final_memory.size() != mem.size()) return "final memory size mismatch";
  for (std::size_t v = 0; v < mem.size(); ++v) {
    if (mem[v] != final_memory[v])
      return "final memory mismatch at v" + std::to_string(v) + ": replay " +
             std::to_string(mem[v]) + " vs executed " +
             std::to_string(final_memory[v]);
  }
  return {};
}

}  // namespace apex::pram
