// Canonical PRAM programs.
//
// These are the workloads the paper's introduction motivates: randomized
// parallel algorithms (symmetry breaking / MIS, leader election) that are
// NONDETERMINISTIC and therefore cannot be run by the older deterministic
// execution schemes, plus deterministic kernels (reduction) used to check
// the executor against the synchronous reference interpreter, plus a
// consistency probe designed to expose the deterministic scheme's failure
// mode on nondeterministic programs (bench E13).
//
// Two families:
//
//   * the REGULAR kernels (reduction, prefix sum, sort, coin matrix, ring
//     coloring, Luby, leader election, probe): lockstep dataflow, static
//     operand addressing, the communication pattern is independent of the
//     data;
//   * the IRREGULAR kernels (BFS frontier expansion, bitonic merge, CSR
//     sparse mat-vec, the work-stealing DAG): memory traffic and/or control
//     flow depend on run-time values — predicated updates via kSelect,
//     value-driven compare-exchange, computed-index gathers (kGather and
//     the dynamic-window kGatherDyn, whose window base/bound are read from
//     CSR row-offset arrays in program memory), and random dataflow
//     choices.  These are the data-dependent programs the execution scheme
//     is actually for.  The graph-backed kernels (bfs, spmv) build their
//     edge data with src/graph/csr.h and scale to n = 1e5 on
//     min(n, 4096) logical processors.
//
// All programs obey the EREW discipline (validated at build()).
//
// Every canonical workload is also REGISTERED (workload_registry()) as a
// ready-to-run instance with baked inputs and a final-memory verdict, which
// is the single enumeration point for `apexcli exec`, the cross-executor
// differential suite, the fuzzer's protocol pool, and the perfbench grid.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "pram/program.h"

namespace apex::pram {

/// Deterministic tournament sum of the initial values of vars [0, n).
/// n must be a power of two.  Result in var `reduction_result_var(n)`.
/// Uses 2·log2(n) steps and 3n+... scratch vars.
Program make_reduction(std::size_t n);
std::uint32_t reduction_result_var(std::size_t n);

/// One round of Luby-style maximal-independent-set symmetry breaking on the
/// n-cycle graph: every node draws a random priority in [0, k) and joins
/// the candidate set iff it is a strict local maximum.  Nondeterministic.
/// Invariant (any valid execution): no two adjacent nodes both join — var
/// `luby_violation_var(n, i)` must be 0 for every i.
Program make_luby_cycle_round(std::size_t n, Word k);
std::uint32_t luby_mis_var(std::size_t n, std::size_t i);
std::uint32_t luby_violation_var(std::size_t n, std::size_t i);
std::uint32_t luby_priority_var(std::size_t n, std::size_t i);

/// Randomized leader election: every thread draws a ticket in [0, k), a
/// max-tournament finds the winning ticket, a doubling broadcast spreads
/// it, and every thread sets leader[i] = (ticket_i == max).  n must be a
/// power of two.  Nondeterministic.
/// Invariants: at least one leader; every leader holds the maximum ticket.
Program make_leader_election(std::size_t n, Word k);
std::uint32_t leader_flag_var(std::size_t n, std::size_t i);
std::uint32_t leader_ticket_var(std::size_t n, std::size_t i);
std::uint32_t leader_max_var(std::size_t n, std::size_t i);

/// Consistency probe (bench E13): thread 0 draws R once; a copy chain of
/// length `chain` relays it through distinct threads/steps; equality flags
/// compare consecutive chain links.  In ANY valid execution every flag is 1;
/// the deterministic baseline scheme run on this nondeterministic program
/// violates the flags under tardy schedules.
/// Requires n >= 2 and chain >= 1.
Program make_consistency_probe(std::size_t n, std::size_t chain, Word k);
std::uint32_t probe_flag_var(std::size_t n, std::size_t chain, std::size_t j);
std::size_t probe_flag_count(std::size_t chain);

/// T steps of independent biased coins: thread i at step s writes
/// coin_matrix_var(n, s, i).  Used for scheme-level distribution checks
/// (Claim 8 at the executor level).
Program make_coin_matrix(std::size_t n, std::size_t t, double p);
std::uint32_t coin_matrix_var(std::size_t n, std::size_t s, std::size_t i);

/// Deterministic inclusive prefix sum (Hillis-Steele doubling) of the
/// initial values of vars [0, n).  n must be a power of two.  Each round
/// stages the shifted operand through a scratch array so every variable is
/// read by exactly one thread per step (EREW).  lg n rounds of 2 steps.
/// Result: prefix_sum_var(n, i) = sum of inputs [0..i].
Program make_prefix_sum(std::size_t n);
std::uint32_t prefix_sum_var(std::size_t n, std::size_t i);

/// Deterministic odd-even transposition sort of the initial values of vars
/// [0, n); n rounds of compare-exchange on alternating pair sets, each
/// implemented as min/max into staging vars then copies back (EREW).
/// Requires n >= 2 and even.  Result: sorted ascending in
/// sort_var(n, 0) .. sort_var(n, n-1).
Program make_odd_even_sort(std::size_t n);
std::uint32_t sort_var(std::size_t n, std::size_t i);

/// One round of randomized ring coloring: every node of the n-cycle draws a
/// color in [0, palette); conflict flags compare each node with its right
/// neighbour.  Nondeterministic.  Invariant (any valid execution):
/// ring_conflict_var(n, i) == (color_i == color_{i+1}) for the SAME agreed
/// draws — i.e. flags are consistent with the color array, which only an
/// agreement-based scheme guarantees.
Program make_ring_coloring(std::size_t n, Word palette);
std::uint32_t ring_color_var(std::size_t n, std::size_t i);
std::uint32_t ring_conflict_var(std::size_t n, std::size_t i);

// ---------------------------------------------------------------------------
// Irregular / data-dependent kernels
// ---------------------------------------------------------------------------

/// BFS frontier expansion on a deterministic pseudo-random directed graph
/// over n nodes (ring chords at the deduped offsets of {1, n-1, 3%n,
/// (n-3)%n}, each edge kept or dropped by a hash of (n, offset, node)).
/// The in-edge lists are built into a CSR (src/graph/csr.h), the
/// delta-compressed column stream is loaded into program MEMORY, and the
/// program unpacks it through kGatherDyn windows whose base/bound come
/// from the row-offset data, then runs `rounds` frontier waves gathering
/// frontier bits through the unpacked columns.  P = min(n, 4096) logical
/// processors own contiguous weight-balanced vertex slices.
/// Deterministic.  Requires n >= 6.  dist[i] = BFS distance from node 0,
/// or bfs_unreached(n) when node i is farther than `rounds` (or
/// unreachable).
Program make_bfs_frontier(std::size_t n, std::size_t rounds);
std::size_t bfs_rounds(std::size_t n);        ///< Canonical round count.
std::uint32_t bfs_dist_var(std::size_t n, std::size_t i);
Word bfs_unreached(std::size_t n);            ///< Distance sentinel.
/// The mask baked into the program for edge (i - offset[o]) -> i; o indexes
/// the canonical offset list {1, n-1, 3%n, (n-3)%n}.  Exposed so checkers
/// can rebuild the exact graph.
bool bfs_edge_active(std::size_t n, std::size_t o, std::size_t i);
/// The DEDUPED canonical offsets as (offset, mask index o) pairs: at small
/// n two entries of {1, n-1, 3%n, (n-3)%n} can coincide (n=6: 3 == n-3);
/// each distinct offset is kept once with the FIRST o, so an edge is never
/// counted twice under two masks.  Checkers iterate exactly this list.
std::vector<std::pair<std::size_t, std::size_t>> bfs_offsets(std::size_t n);

/// Bitonic (butterfly) merge of a bitonic input: a[0..n/2) ascending,
/// a[n/2..n) descending.  lg n butterfly stages of value-driven
/// compare-exchange (partner i XOR d), each staged min/max + copy-back.
/// Deterministic; n must be a power of two >= 2.  Result ascending in
/// merge_var(n, 0..n).
Program make_bitonic_merge(std::size_t n);
std::uint32_t merge_var(std::size_t n, std::size_t i);

/// Sparse matrix-vector product y = A*x in CSR form over a deterministic
/// pseudo-random sparse matrix (irregular row degrees, hash-scattered
/// column indices).  The instance's duplicate (row, col) pairs are merged
/// by the CSR builder (coefficients sum; wrapping add keeps y identical)
/// and the row-offset / column / value arrays are loaded into program
/// MEMORY: every row walk is a chain of kGatherDyn loads whose window
/// base/bound come from the row-offset data — genuine data-dependent
/// addressing on every executor.  P = min(n, 4096) logical processors own
/// contiguous nnz-balanced row slices.  Deterministic.  Requires n >= 2.
Program make_spmv_csr(std::size_t n);
std::uint32_t spmv_y_var(std::size_t n, std::size_t i);
/// The CSR instance make_spmv_csr(n) bakes (checkers rebuild y from this).
struct SpmvInstance {
  std::vector<std::size_t> row_ptr;  ///< n+1 entries.
  std::vector<std::size_t> col;      ///< nnz column indices.
  std::vector<Word> val;             ///< nnz coefficients.
  std::vector<Word> x;               ///< n input vector values.
};
SpmvInstance spmv_instance(std::size_t n);

/// Work-stealing-shaped DAG: `levels` levels of n tasks; each task flips a
/// coin to claim its work item either from its own lane or steal from the
/// right neighbour's lane, then extends that chain (value + 1).  The
/// DATAFLOW DAG is decided by run-time random draws.  Nondeterministic.
/// Self-declared final-memory invariant (any valid execution): every coin
/// is 0/1, both staged parent copies match the previous level, and each
/// task value extends exactly the parent its coin selected —
/// the consistency a deterministic scheme cannot guarantee.
/// Requires n >= 2.
Program make_steal_dag(std::size_t n, std::size_t levels);
std::size_t steal_dag_levels(std::size_t n);  ///< Canonical level count.
std::uint32_t dag_value_var(std::size_t n, std::size_t levels, std::size_t l,
                            std::size_t w);
std::uint32_t dag_coin_var(std::size_t n, std::size_t levels, std::size_t l,
                           std::size_t w);

// ---------------------------------------------------------------------------
// Workload registry
// ---------------------------------------------------------------------------

/// One registered canonical workload: a ready-to-run factory (inputs baked
/// into a constants prologue, parameters fixed to canonical values) plus a
/// final-memory verdict.  `apexcli exec`, the cross-executor differential
/// suite, the fuzzer's workload trials and the perfbench workload rows all
/// enumerate this table — register new kernels here and every harness picks
/// them up.
struct WorkloadSpec {
  const char* name;
  const char* summary;
  bool deterministic;  ///< Final memory must equal the synchronous reference.
  bool irregular;      ///< Data-dependent control flow / addressing.
  std::size_t min_n;   ///< Smallest supported thread count.
  bool pow2_n;         ///< Thread count must be a power of two.
  bool even_n;         ///< Thread count must be even.
  Program (*make)(std::size_t n);
  /// Empty string iff `mem` is a valid final memory of make(n) under SOME
  /// valid execution: deterministic kernels recompute the expected answer
  /// in plain C++ (independent of the interpreter), nondeterministic ones
  /// check their self-declared invariants.
  std::string (*check)(std::size_t n, const std::vector<Word>& mem);
  /// Canonical LARGE-n instances (the host scaling study's grid): sizes far
  /// beyond a runner's core count that the virtualized host executor drives
  /// on a handful of OS threads.  Empty = small-instance kernel only.  The
  /// bench_e12 scaling table, the differential suite's P >> T section and
  /// the fuzzer's large-n trials enumerate these.
  std::vector<std::size_t> scale_ns;
  /// Per-logical-processor work weights of make(n), or nullptr when every
  /// processor runs the same instruction mix.  Graph-backed kernels report
  /// the degree mass of the CSR partition each processor owns; harnesses
  /// feed this into HostExecConfig::proc_weights (Interleave::kPartition)
  /// so each OS thread owns a weight-balanced slice of the processors that
  /// walk those partitions.
  std::vector<std::uint64_t> (*proc_weights)(std::size_t n) = nullptr;
};

const std::vector<WorkloadSpec>& workload_registry();
const WorkloadSpec* find_workload(const std::string& name);
bool workload_supports_n(const WorkloadSpec& spec, std::size_t n);
/// Comma-separated registry names (CLI help/usage).
std::string workload_names();

}  // namespace apex::pram
