// Canonical PRAM programs.
//
// These are the workloads the paper's introduction motivates: randomized
// parallel algorithms (symmetry breaking / MIS, leader election) that are
// NONDETERMINISTIC and therefore cannot be run by the older deterministic
// execution schemes, plus deterministic kernels (reduction) used to check
// the executor against the synchronous reference interpreter, plus a
// consistency probe designed to expose the deterministic scheme's failure
// mode on nondeterministic programs (bench E13).
//
// All programs obey the EREW discipline (validated at build()) and use only
// static operand addressing.
#pragma once

#include <cstdint>

#include "pram/program.h"

namespace apex::pram {

/// Deterministic tournament sum of the initial values of vars [0, n).
/// n must be a power of two.  Result in var `reduction_result_var(n)`.
/// Uses 2·log2(n) steps and 3n+... scratch vars.
Program make_reduction(std::size_t n);
std::uint32_t reduction_result_var(std::size_t n);

/// One round of Luby-style maximal-independent-set symmetry breaking on the
/// n-cycle graph: every node draws a random priority in [0, k) and joins
/// the candidate set iff it is a strict local maximum.  Nondeterministic.
/// Invariant (any valid execution): no two adjacent nodes both join — var
/// `luby_violation_var(n, i)` must be 0 for every i.
Program make_luby_cycle_round(std::size_t n, Word k);
std::uint32_t luby_mis_var(std::size_t n, std::size_t i);
std::uint32_t luby_violation_var(std::size_t n, std::size_t i);
std::uint32_t luby_priority_var(std::size_t n, std::size_t i);

/// Randomized leader election: every thread draws a ticket in [0, k), a
/// max-tournament finds the winning ticket, a doubling broadcast spreads
/// it, and every thread sets leader[i] = (ticket_i == max).  n must be a
/// power of two.  Nondeterministic.
/// Invariants: at least one leader; every leader holds the maximum ticket.
Program make_leader_election(std::size_t n, Word k);
std::uint32_t leader_flag_var(std::size_t n, std::size_t i);
std::uint32_t leader_ticket_var(std::size_t n, std::size_t i);
std::uint32_t leader_max_var(std::size_t n, std::size_t i);

/// Consistency probe (bench E13): thread 0 draws R once; a copy chain of
/// length `chain` relays it through distinct threads/steps; equality flags
/// compare consecutive chain links.  In ANY valid execution every flag is 1;
/// the deterministic baseline scheme run on this nondeterministic program
/// violates the flags under tardy schedules.
/// Requires n >= 2 and chain >= 1.
Program make_consistency_probe(std::size_t n, std::size_t chain, Word k);
std::uint32_t probe_flag_var(std::size_t n, std::size_t chain, std::size_t j);
std::size_t probe_flag_count(std::size_t chain);

/// T steps of independent biased coins: thread i at step s writes
/// coin_matrix_var(n, s, i).  Used for scheme-level distribution checks
/// (Claim 8 at the executor level).
Program make_coin_matrix(std::size_t n, std::size_t t, double p);
std::uint32_t coin_matrix_var(std::size_t n, std::size_t s, std::size_t i);

/// Deterministic inclusive prefix sum (Hillis-Steele doubling) of the
/// initial values of vars [0, n).  n must be a power of two.  Each round
/// stages the shifted operand through a scratch array so every variable is
/// read by exactly one thread per step (EREW).  lg n rounds of 2 steps.
/// Result: prefix_sum_var(n, i) = sum of inputs [0..i].
Program make_prefix_sum(std::size_t n);
std::uint32_t prefix_sum_var(std::size_t n, std::size_t i);

/// Deterministic odd-even transposition sort of the initial values of vars
/// [0, n); n rounds of compare-exchange on alternating pair sets, each
/// implemented as min/max into staging vars then copies back (EREW).
/// Requires n >= 2 and even.  Result: sorted ascending in
/// sort_var(n, 0) .. sort_var(n, n-1).
Program make_odd_even_sort(std::size_t n);
std::uint32_t sort_var(std::size_t n, std::size_t i);

/// One round of randomized ring coloring: every node of the n-cycle draws a
/// color in [0, palette); conflict flags compare each node with its right
/// neighbour.  Nondeterministic.  Invariant (any valid execution):
/// ring_conflict_var(n, i) == (color_i == color_{i+1}) for the SAME agreed
/// draws — i.e. flags are consistent with the color array, which only an
/// agreement-based scheme guarantees.
Program make_ring_coloring(std::size_t n, Word palette);
std::uint32_t ring_color_var(std::size_t n, std::size_t i);
std::uint32_t ring_conflict_var(std::size_t n, std::size_t i);

}  // namespace apex::pram
