// Classical-style multi-value agreement baseline (paper §1, related work).
//
// The adaptive-adversary consensus protocols the paper compares against
// (Aspnes-Herlihy, Attiya-Dolev-Shavit, Bracha-Rachman, ...) share a work
// shape: a processor cannot wait on any single peer (it might be stalled
// forever), so progress is made by REPEATEDLY READING ALL n single-writer
// registers — Θ(n) per scan, Θ(n) scans system-wide, i.e. Ω(n²) total work
// PER AGREED VALUE, hence Ω(n³) for the n values a PRAM step needs.  That
// is the cost the paper's bin-array protocol removes (O(n log n log log n)
// for all n values), and experiment E10 measures the gap.
//
// This module implements that structure as an honest stand-in (DESIGN.md
// §2, substitution 3): per value i,
//   1. every processor draws f_i and writes it to its own register R[i][p]
//      (single-writer: no write contention),
//   2. processors scan all n registers until every register is filled,
//   3. decision: the proposal of the lowest-numbered processor (a
//      deterministic rule on the now-stable register set, so all
//      processors decide identically).
// It is NOT a wait-free consensus (a crashed processor stalls step 2 —
// exactly why real protocols need randomized shared coins and even more
// work); it reproduces the Θ(n²)-per-value READ-ALL cost with none of the
// extra machinery, which makes E10's comparison conservative.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "agreement/protocol.h"
#include "sim/simulator.h"

namespace apex::consensus {

struct ScanConfig {
  std::size_t n = 0;          ///< Processors = values.
  std::uint64_t seed = 1;
  sim::ScheduleKind schedule = sim::ScheduleKind::kUniformRandom;
  /// Grant engine for the underlying simulator (the fuzzer's engine-
  /// equivalence corpus runs the same trial through both).
  sim::GrantEngine engine = sim::GrantEngine::kBatched;
};

/// Runs n processors agreeing on n values with the read-all baseline.
class ScanConsensus {
 public:
  /// `task` supplies f_i (same signature as the bin-array protocol so both
  /// sides of E10 agree on identical inputs).
  ScanConsensus(ScanConfig cfg, agreement::TaskFn task);

  /// As above, but under an explicit adversary (the fuzzer's entry point).
  /// `schedule` must be built for cfg.n processors; cfg.schedule is ignored.
  ScanConsensus(ScanConfig cfg, agreement::TaskFn task,
                std::unique_ptr<sim::Schedule> schedule);

  struct Result {
    bool completed = false;       ///< Every processor decided every value.
    std::uint64_t total_work = 0;
    std::vector<sim::Word> values;///< Decided value per index.
  };

  Result run(std::uint64_t max_work);

  /// Out-of-band: decisions recorded by processor p (for agreement checks).
  const std::vector<std::optional<sim::Word>>& decisions_of(std::size_t p) const {
    return decisions_.at(p);
  }

  sim::Simulator& simulator() noexcept { return *sim_; }

  /// Register layout for out-of-band inspectors: R[i][p] lives at
  /// register_base() + i*n + p, stamped 1 once written.
  std::size_t register_base() const noexcept { return reg_base_; }
  std::size_t values() const noexcept { return cfg_.n; }

 private:
  sim::ProcTask proc(sim::Ctx& ctx);

  ScanConfig cfg_;
  agreement::TaskFn task_;
  std::unique_ptr<sim::Simulator> sim_;
  std::size_t reg_base_ = 0;  ///< R[i][p] at reg_base_ + i*n + p.
  std::vector<std::vector<std::optional<sim::Word>>> decisions_;
};

}  // namespace apex::consensus
