#include "consensus/scan_consensus.h"

#include "check/mutation.h"

namespace apex::consensus {

ScanConsensus::ScanConsensus(ScanConfig cfg, agreement::TaskFn task)
    : ScanConsensus(cfg, std::move(task), nullptr) {}

ScanConsensus::ScanConsensus(ScanConfig cfg, agreement::TaskFn task,
                             std::unique_ptr<sim::Schedule> schedule)
    : cfg_(cfg), task_(std::move(task)) {
  apex::SeedTree seeds{cfg.seed};
  if (!schedule)
    schedule = sim::make_schedule(cfg.schedule, cfg.n, seeds.schedule());
  sim::SimConfig sc{cfg.n, 0, cfg.seed};
  sc.engine = cfg.engine;
  sim_ = std::make_unique<sim::Simulator>(sc, std::move(schedule));
  reg_base_ = sim_->memory().extend(cfg.n * cfg.n);
  decisions_.assign(cfg.n,
                    std::vector<std::optional<sim::Word>>(cfg.n, std::nullopt));
  for (std::size_t p = 0; p < cfg.n; ++p)
    sim_->spawn([this](sim::Ctx& ctx) { return proc(ctx); });
}

sim::ProcTask ScanConsensus::proc(sim::Ctx& ctx) {
  const std::size_t n = cfg_.n;
  // Registers are stamped 1 when written; stamp 0 = empty.
  for (std::size_t i = 0; i < n; ++i) {
    // Propose: draw f_i and publish in the single-writer register.
    const agreement::TaskResult mine =
        co_await task_(ctx, i, /*phase=*/1);
    co_await ctx.write(reg_base_ + i * n + ctx.id(), mine.value_or(0), 1);

    // Scan all n registers until every proposal is visible.  This is the
    // Θ(n)-per-scan read-all loop that dominates classical consensus.
    sim::Word decided = 0;
    for (;;) {
      bool all = true;
      sim::Word first = 0;
      bool have_first = false;
      for (std::size_t p = 0; p < n; ++p) {
        const sim::Cell c = co_await ctx.read(reg_base_ + i * n + p);
        if (c.stamp == 0) {
          all = false;
        } else if (!have_first) {
          // Lowest-numbered processor's proposal is the decision rule.
          first = c.value;
          have_first = true;
        }
      }
      if (all) {
        decided = first;
        if (check::mutation_enabled(check::Mutation::kConsensusDecideOwn))
          decided = mine.value_or(0);
        break;
      }
    }
    decisions_[ctx.id()][i] = decided;
  }
}

ScanConsensus::Result ScanConsensus::run(std::uint64_t max_work) {
  const auto res = sim_->run(max_work);
  Result out;
  out.completed = res.all_finished;
  out.total_work = sim_->total_work();
  out.values.assign(cfg_.n, 0);
  if (out.completed) {
    for (std::size_t i = 0; i < cfg_.n; ++i)
      out.values[i] = decisions_[0][i].value_or(0);
  }
  return out;
}

}  // namespace apex::consensus
