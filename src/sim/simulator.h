// The A-PRAM simulator: grants atomic steps to virtual processors according
// to an adversary schedule and accounts total work exactly as the paper
// defines it — "the total number of steps performed in the system, summed
// over all processors", including busy waiting and idling.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/memory.h"
#include "sim/proc.h"
#include "sim/schedule.h"

namespace apex::sim {

/// One executed atomic step, as seen by an observer.
struct StepEvent {
  std::uint64_t time = 0;   ///< Global step index (work units so far - 1).
  std::size_t proc = 0;
  Op op{};
  Cell before{};            ///< Cell content before the op (reads: == after).
  Cell after{};             ///< Cell content after the op.
};

/// Out-of-band observer.  Hooks run outside the model: they cost no work and
/// must not mutate memory.  Used by the Lemma inspectors.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const StepEvent& ev) = 0;
};

struct SimConfig {
  std::size_t nprocs = 0;
  std::size_t memory_words = 0;
  std::uint64_t seed = 1;  ///< Root of the processor-stream seed tree.
};

class Simulator {
 public:
  Simulator(SimConfig cfg, std::unique_ptr<Schedule> schedule);

  Memory& memory() noexcept { return memory_; }
  const Memory& memory() const noexcept { return memory_; }
  std::size_t nprocs() const noexcept { return nprocs_; }

  /// Spawn a virtual processor.  `factory` is invoked once with the
  /// processor's Ctx& and must return the protocol coroutine
  /// (e.g. `[&](Ctx& c) { return my_protocol(c, args...); }`).
  /// Returns the processor id.  All spawns must precede the first run().
  template <typename Factory>
  std::size_t spawn(Factory&& factory) {
    if (started_)
      throw std::logic_error("Simulator::spawn after run() started");
    const std::size_t id = procs_.size();
    auto ctx = std::make_unique<Ctx>(*this, id, seeds_.processor(id));
    Ctx& ref = *ctx;
    procs_.push_back(ProcState{std::move(ctx), factory(ref), 0, false});
    return id;
  }

  struct RunResult {
    std::uint64_t work = 0;     ///< Work units consumed by this run() call.
    bool stop_requested = false;
    bool all_finished = false;
    bool predicate_hit = false;
  };

  /// Run until: `max_steps` more work units are consumed, every processor
  /// finished, stop was requested, or `stop` (checked every
  /// `check_interval` grants) returns true.  May be called repeatedly.
  RunResult run(std::uint64_t max_steps,
                const std::function<bool()>& stop = nullptr,
                std::uint64_t check_interval = 256);

  /// Total work units consumed across all run() calls.
  std::uint64_t total_work() const noexcept { return work_; }

  /// Steps granted to processor i so far.
  std::uint64_t proc_steps(std::size_t i) const { return procs_.at(i).steps; }

  bool finished(std::size_t i) const { return procs_.at(i).finished; }

  void set_observer(StepObserver* obs) noexcept { observer_ = obs; }

  void request_stop() noexcept { stop_requested_ = true; }

  const Schedule& schedule() const noexcept { return *schedule_; }

 private:
  struct ProcState {
    std::unique_ptr<Ctx> ctx;
    ProcTask task;
    std::uint64_t steps = 0;
    bool finished = false;
  };

  friend class Ctx;

  /// Grant one atomic step to processor p.  Returns false if p had already
  /// finished (no work charged).
  bool grant(std::size_t p);

  SeedTree seeds_;
  Memory memory_;
  std::unique_ptr<Schedule> schedule_;
  std::vector<ProcState> procs_;
  std::size_t nprocs_;
  std::size_t alive_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t tick_ = 0;
  bool stop_requested_ = false;
  bool started_ = false;
  StepObserver* observer_ = nullptr;
};

}  // namespace apex::sim
