// The A-PRAM simulator: grants atomic steps to virtual processors according
// to an adversary schedule and accounts total work exactly as the paper
// defines it — "the total number of steps performed in the system, summed
// over all processors", including busy waiting and idling.
//
// Grant engines.  The simulator executes the same abstract machine through
// one of two engines:
//
//   kBatched (default)  pulls grants from the schedule in bulk via
//       Schedule::fill() and consumes them from an internal buffer, with the
//       stop-predicate / alive / starvation checks hoisted to batch
//       boundaries and an observer-free fast grant path selected once per
//       run().  This is the production hot path.
//   kSingleStep         the reference engine: one virtual Schedule::next()
//       call, one fully instrumented grant per step.  Kept for equivalence
//       tests and as the perf baseline (`apexcli perfbench` measures both).
//
// The two engines are grant-for-grant and byte-for-byte equivalent for every
// schedule whose fill() honors the determinism contract (see
// docs/ARCHITECTURE.md): identical grant traces, memory images, work
// accounting and RunResults.  Prefetched-but-unconsumed grants are buffered
// inside the simulator across run() calls, so oblivious schedules may be
// drawn ahead of execution without changing what executes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <vector>

#include "sim/memory.h"
#include "sim/observer.h"
#include "sim/proc.h"
#include "sim/schedule.h"

namespace apex::sim {

/// Which grant engine Simulator::run() uses.  kSingleStep is the pre-batching
/// reference implementation; results are identical (see header comment).
enum class GrantEngine : std::uint8_t { kBatched, kSingleStep };

struct SimConfig {
  std::size_t nprocs = 0;
  std::size_t memory_words = 0;
  std::uint64_t seed = 1;  ///< Root of the processor-stream seed tree.
  GrantEngine engine = GrantEngine::kBatched;
  /// Consecutive grants to finished processors (while live processors
  /// remain) tolerated before run() throws.  0 = max(2^20, 64 * nprocs).
  /// The guard is persistent simulator state: it accumulates across run()
  /// calls and resets only when a live processor is granted a step.
  std::uint64_t starvation_limit = 0;
};

class Simulator {
 public:
  Simulator(SimConfig cfg, std::unique_ptr<Schedule> schedule);

  Memory& memory() noexcept { return memory_; }
  const Memory& memory() const noexcept { return memory_; }
  std::size_t nprocs() const noexcept { return nprocs_; }

  /// Spawn a virtual processor.  `factory` is invoked once with the
  /// processor's Ctx& and must return the protocol coroutine
  /// (e.g. `[&](Ctx& c) { return my_protocol(c, args...); }`).
  /// Returns the processor id.  All spawns must precede the first run().
  template <typename Factory>
  std::size_t spawn(Factory&& factory) {
    if (started_)
      throw std::logic_error("Simulator::spawn after run() started");
    const std::size_t id = procs_.size();
    auto ctx = std::make_unique<Ctx>(*this, id, seeds_.processor(id));
    Ctx& ref = *ctx;
    procs_.push_back(ProcState{std::move(ctx), factory(ref), false});
    // Invariant: for an unfinished processor, its resume slot always holds
    // the next handle to resume — the top-level coroutine before the first
    // grant, then whatever handle the last step awaiter suspended (every
    // suspension back to the simulator goes through a step awaiter); a
    // finished processor's slot is null.  Slot addresses are bound into the
    // Ctxs at the first run(), once the vector stops growing.
    resume_slots_.push_back(procs_.back().task.handle());
    return id;
  }

  struct RunResult {
    std::uint64_t work = 0;     ///< Work units consumed by this run() call.
    bool stop_requested = false;
    bool all_finished = false;
    bool predicate_hit = false;
  };

  /// Run until: `max_steps` more work units are consumed, every processor
  /// finished, stop was requested, or `stop` (checked every
  /// `check_interval` consumed work units) returns true.  May be called
  /// repeatedly.
  RunResult run(std::uint64_t max_steps,
                const std::function<bool()>& stop = nullptr,
                std::uint64_t check_interval = 256);

  /// Total work units consumed across all run() calls.
  std::uint64_t total_work() const noexcept { return work_; }

  /// Schedule grants consumed so far (including grants to finished
  /// processors, which charge no work).  This is the length of the executed
  /// grant trace; the schedule itself may have been drawn further ahead by
  /// the batched engine's prefetch buffer.
  std::uint64_t ticks() const noexcept { return tick_; }

  /// Steps granted to processor i so far.
  std::uint64_t proc_steps(std::size_t i) const {
    return procs_.at(i).ctx->steps();
  }

  bool finished(std::size_t i) const { return procs_.at(i).finished; }

  /// Attach an observer to the chain (delivery in attach order).  Any
  /// attached observer switches run() to the instrumented grant path.
  void add_observer(StepObserver* obs) { observers_.add(obs); }
  void remove_observer(StepObserver* obs) { observers_.remove(obs); }
  void clear_observers() noexcept { observers_.clear(); }

  /// Deliver any buffered-but-undelivered step events down the deferred
  /// part of the observer chain NOW (exactly once, in order).  The batched
  /// engine flushes automatically at batch boundaries, stop-predicate
  /// checks and run() exits; protocol runtimes that emit out-of-band events
  /// of their own (agreement cycle/phase hooks) call this first, so an
  /// observer consuming both streams sees them interleaved exactly as the
  /// single-step engine interleaves them.  Safe to call mid-grant from
  /// inside protocol code: everything up to the previous completed step is
  /// delivered; no-op outside instrumented batched runs.
  void flush_observers() {
    if (ev_next_ != ev_flushed_) flush_observers_slow();
  }

  void request_stop() noexcept { stop_requested_ = true; }

  const Schedule& schedule() const noexcept { return *schedule_; }

  GrantEngine engine() const noexcept { return engine_; }

 private:
  struct ProcState {
    std::unique_ptr<Ctx> ctx;
    ProcTask task;
    bool finished = false;
  };

  friend class Ctx;

  /// Grant one atomic step to processor p, instrumented per-step: builds
  /// the StepEvent, uses checked memory access, delivers down the whole
  /// observer chain immediately.  Used ONLY by the single-step reference
  /// engine (the genuine pre-batching behavior).
  /// Returns false if p had already finished (no work charged).
  bool grant_instrumented(std::size_t p, bool double_charge);

  /// Consume buffered grants [buf_pos_, end) through the batched
  /// instrumented path: ops executed inline by the awaiters (which also
  /// fill the batch event buffer through cur_ev_), events flushed as one
  /// on_steps(span) at every exit — synchronous observers still get
  /// per-step on_step at the exact step time.  Returns on exhaustion, stop
  /// request, or last processor finish.
  /// `poll_on_dead`: the batch began exactly on a stop-predicate boundary,
  /// so a grant to a finished processor before any live grant must return
  /// to the caller for a re-poll — the single-step engine re-evaluates the
  /// predicate on every such grant (work parked on the boundary), and a
  /// stateful predicate must observe the same number of calls.
  void consume_batch_instr(std::size_t end, bool double_charge,
                           bool poll_on_dead, RunResult& res);

  /// Same, through the no-observer fast path: no StepEvent construction,
  /// ops executed inline by the awaiters against raw memory, invariant
  /// pointers hoisted out of the loop.
  void consume_batch_fast(std::size_t end, bool double_charge,
                          bool poll_on_dead, RunResult& res);

  /// Refill the grant buffer from the schedule (at most one fill() call).
  void refill_grants();

  /// Range-validate grant_buf_[from, buf_len_), setting bad_grant_at_ to
  /// the first out-of-range grant (or buf_len_ when clean).
  void validate_grants(std::size_t from);

  /// Account a grant to an already-finished processor at global tick
  /// `dead_tick` and throw once `starvation_limit_` consecutive such
  /// grants accumulate.  Consecutiveness is tick-based (`last_dead_tick_`),
  /// so the count naturally spans batches and run() calls and resets the
  /// moment any live grant's tick intervenes — and the live-grant hot path
  /// never touches the counter.
  void charge_starvation(std::uint64_t dead_tick);

  RunResult run_batched(std::uint64_t max_steps,
                        const std::function<bool()>& stop,
                        std::uint64_t check_interval);
  RunResult run_single_step(std::uint64_t max_steps,
                            const std::function<bool()>& stop,
                            std::uint64_t check_interval);

  SeedTree seeds_;
  Memory memory_;
  std::unique_ptr<Schedule> schedule_;
  std::vector<ProcState> procs_;
  std::size_t nprocs_;
  std::size_t alive_ = 0;
  std::uint64_t work_ = 0;
  std::uint64_t tick_ = 0;        ///< Grants consumed (executed trace length).
  std::uint64_t ticks_drawn_ = 0; ///< Grants drawn from the schedule.
  std::uint64_t starvation_ = 0;  ///< Consecutive finished-proc grants.
  std::uint64_t starvation_limit_ = 0;
  /// Tick of the most recent finished-proc grant (see charge_starvation).
  /// The max() sentinel + 1 wraps to 0, but starvation_ == 0 then makes
  /// both branches of the consecutiveness test yield 1 — still correct.
  std::uint64_t last_dead_tick_ = ~0ULL;
  GrantEngine engine_ = GrantEngine::kBatched;
  bool prefetchable_ = true;
  bool stop_requested_ = false;
  bool started_ = false;
  CompositeObserver observers_;
  std::vector<std::uint32_t> grant_buf_;
  std::size_t buf_pos_ = 0;
  std::size_t buf_len_ = 0;
  /// First out-of-range grant in the buffer (== buf_len_ when clean),
  /// found once per refill so the hot loop carries no per-grant check.
  std::size_t bad_grant_at_ = 0;
  /// Per-processor next-resume handle (null = finished); parallel to
  /// procs_.  See the invariant note in spawn().
  std::vector<std::coroutine_handle<>> resume_slots_;
  /// Out-of-line tail of flush_observers().
  void flush_observers_slow();

  /// Batch event buffer (instrumented batched runs).  Sized like the grant
  /// buffer: a batch of k grants yields at most k events, so a batch can
  /// never overflow it mid-loop.
  std::vector<StepEvent> event_buf_;
  /// Cursors into event_buf_: [ev_flushed_, ev_next_) is filled but not
  /// yet delivered; ev_next_ is the slot the CURRENT grant's awaiter fills
  /// (each Ctx's ev_cur_ points at ev_next_ during instrumented batched
  /// runs).  Both rewind to the buffer base at batch boundaries, after
  /// delivery.
  StepEvent* ev_next_ = nullptr;
  StepEvent* ev_flushed_ = nullptr;
  /// Out-of-range fault raised by an awaiter (see Ctx::flag_oob): the op
  /// was refused before executing; the scheduler throws for that grant.
  bool oob_fault_ = false;
  std::size_t oob_addr_ = 0;
  /// Per-run partition of observers_ (rebuilt by run_batched): synchronous
  /// members get per-step on_step, the rest get batched on_steps spans.
  std::vector<StepObserver*> sync_obs_;
  std::vector<StepObserver*> batch_obs_;
};

}  // namespace apex::sim
