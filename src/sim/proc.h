// Virtual processors as C++20 coroutines.
//
// A processor's protocol code is an ordinary coroutine taking a `Ctx&`.
// Every `co_await ctx.read(...)`, `co_await ctx.write(...)` or
// `co_await ctx.local()` is exactly ONE atomic step of the A-PRAM model:
// the simulator grants steps one at a time according to the adversary
// schedule, executes the requested operation against shared memory, and
// resumes the coroutine.  Plain C++ computation between `co_await`s costs
// nothing — the model only charges atomic steps, and protocol code charges
// local computation explicitly with `ctx.local()` where the paper counts it
// (e.g. padding agreement cycles to a fixed length ω).
//
// Protocols compose with SubTask<T> (see subtask.h): sub-procedures are
// coroutines awaited from the parent; a step awaiter anywhere in the stack
// suspends the whole stack by recording the deepest handle in the Ctx.
#pragma once

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <utility>

#include "sim/word.h"
#include "util/rng.h"

namespace apex::sim {

class Simulator;

/// The single pending atomic operation of a suspended processor.
struct Op {
  enum class Kind : std::uint8_t { None, Read, Write, Local };
  Kind kind = Kind::None;
  std::size_t addr = 0;
  Word value = 0;  ///< Write: value to store.
  Word stamp = 0;  ///< Write: stamp to store.
};

/// One executed atomic step, as seen by an observer (see observer.h for the
/// delivery contract).  Defined here because the instrumented batched engine
/// fills events INLINE in the step awaiters below.
struct StepEvent {
  std::uint64_t time = 0;   ///< Global step index (work units so far - 1).
  std::size_t proc = 0;
  Op op{};
  Cell before{};            ///< Cell content before the op (reads: == after).
  Cell after{};             ///< Cell content after the op.
};


/// Coroutine handle type for a top-level processor program.
class ProcTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    ProcTask get_return_object() {
      return ProcTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  ProcTask() = default;
  explicit ProcTask(Handle h) : handle_(h) {}
  ProcTask(ProcTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  ProcTask& operator=(ProcTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  ProcTask(const ProcTask&) = delete;
  ProcTask& operator=(const ProcTask&) = delete;
  ~ProcTask() { destroy(); }

  Handle handle() const noexcept { return handle_; }
  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return !handle_ || handle_.done(); }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

/// Per-processor execution context handed to protocol coroutines.
///
/// Lifetime: owned by the Simulator, stable address for the duration of the
/// coroutine.  Also holds the processor's suspended-step state: the pending
/// atomic op, its result, and the deepest coroutine to resume next grant.
class Ctx {
 public:
  Ctx(Simulator& sim, std::size_t id, apex::Rng rng)
      : sim_(&sim), id_(id), rng_(rng) {}

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  // Awaitables for one atomic step, one statically-typed awaiter per op
  // kind.  Each yields the Cell the operation observed (reads) or stored
  // (writes); Local yields {}.
  //
  // Execution has three modes, selected once per Simulator::run():
  //   * classic (fast_cells_ == nullptr): the awaiter records the op in
  //     ctx->pending_; the scheduler loop executes it against checked
  //     memory, reports it to the observer chain per step, and leaves the
  //     result in ctx->result_.  This is the single-step reference engine's
  //     mode (the genuine pre-batching shape).
  //   * fast (fast_cells_ set, ev_cur_ null): the awaiter executes the op
  //     INLINE at suspension — still inside the granting step, before any
  //     other processor runs, so the atomic point is identical — against
  //     the raw cell array, and keeps the result in its own frame.
  //   * instrumented batched (fast_cells_ AND ev_cur_ set): like fast, but
  //     the awaiter additionally fills the scheduler's current StepEvent
  //     slot (*ev_cur_ points at the next free entry of the batch event
  //     buffer; the scheduler pre-fills time/proc and advances it).  An
  //     out-of-range address is NOT executed: the awaiter flags the fault
  //     and the scheduler throws std::out_of_range for that grant, exactly
  //     where checked Memory::at would have.
  // The `inline_exec` flag remembers which mode produced the result, so a
  // step suspended under one mode resumes correctly under the other.
  //
  // (A symmetric-transfer design — awaiters jumping directly into the next
  // granted processor's frame — was tried and measured SLOWER than the
  // batched scheduler loop: chained indirect jumps lose the return-stack-
  // buffer prediction that the loop's call/ret pairs get for free.)

  struct ReadAwaiter {
    Ctx* ctx;
    std::size_t addr;
    Cell result{};
    bool inline_exec = false;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      Ctx* const c = ctx;
      *c->resume_slot_ = h;
      if (Cell* const cells = c->fast_cells_) {
        if (StepEvent* const* const es = c->ev_cur_) {
          if (addr >= c->fast_words_) [[unlikely]] {
            c->flag_oob(addr);
            return;  // not executed, not charged; the scheduler faults
          }
          const Cell cv = cells[addr];
          StepEvent& e = **es;
          e.op = Op{Op::Kind::Read, addr, 0, 0};
          e.before = cv;
          e.after = cv;
          result = cv;
        } else {
          assert(addr < c->fast_words_);
          result = cells[addr];
        }
        c->steps_ += 1;
        inline_exec = true;
      } else {
        c->pending_ = Op{Op::Kind::Read, addr, 0, 0};
      }
    }
    Cell await_resume() const noexcept {
      return inline_exec ? result : ctx->result_;
    }
  };

  struct WriteAwaiter {
    Ctx* ctx;
    std::size_t addr;
    Word value;
    Word stamp;
    bool inline_exec = false;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      Ctx* const c = ctx;
      *c->resume_slot_ = h;
      if (Cell* const cells = c->fast_cells_) {
        if (StepEvent* const* const es = c->ev_cur_) {
          if (addr >= c->fast_words_) [[unlikely]] {
            c->flag_oob(addr);
            return;  // not executed, not charged; the scheduler faults
          }
          StepEvent& e = **es;
          e.op = Op{Op::Kind::Write, addr, value, stamp};
          e.before = cells[addr];
          const Cell cv{value, stamp};
          cells[addr] = cv;
          e.after = cv;
        } else {
          assert(addr < c->fast_words_);
          cells[addr] = Cell{value, stamp};
        }
        c->steps_ += 1;
        inline_exec = true;
      } else {
        c->pending_ = Op{Op::Kind::Write, addr, value, stamp};
      }
    }
    Cell await_resume() const noexcept {
      return inline_exec ? Cell{value, stamp} : ctx->result_;
    }
  };

  struct LocalAwaiter {
    Ctx* ctx;
    bool inline_exec = false;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      Ctx* const c = ctx;
      *c->resume_slot_ = h;
      if (c->fast_cells_ != nullptr) {
        if (StepEvent* const* const es = c->ev_cur_) {
          StepEvent& e = **es;
          e.op = Op{Op::Kind::Local, 0, 0, 0};
          e.before = Cell{};
          e.after = Cell{};
        }
        if (c->charge_local_twice_) [[unlikely]] c->bump_extra_work();
        c->steps_ += 1;
        inline_exec = true;
      } else {
        c->pending_ = Op{Op::Kind::Local, 0, 0, 0};
      }
    }
    Cell await_resume() const noexcept {
      return inline_exec ? Cell{} : ctx->result_;
    }
  };

  /// One atomic read of cell `addr` (value + stamp together).
  ReadAwaiter read(std::size_t addr) noexcept {
    return ReadAwaiter{this, addr};
  }

  /// One atomic write of (value, stamp) to cell `addr`.
  WriteAwaiter write(std::size_t addr, Word value, Word stamp = 0) noexcept {
    return WriteAwaiter{this, addr, value, stamp};
  }

  /// One local computation step (basic op on registers, random draw, no-op).
  LocalAwaiter local() noexcept { return LocalAwaiter{this}; }

  /// Identity of this virtual processor, in [0, nprocs).
  std::size_t id() const noexcept { return id_; }

  /// This processor's private random stream (the adversary cannot see it).
  apex::Rng& rng() noexcept { return rng_; }

  /// Number of virtual processors in the simulation.
  std::size_t nprocs() const noexcept;

  /// Atomic steps this processor has been granted so far.
  std::uint64_t steps() const noexcept { return steps_; }

  /// Ask the simulator to stop at the end of the current grant
  /// (cooperative: used by driver processors that detect completion).
  void request_stop() const noexcept;

  Simulator& simulator() const noexcept { return *sim_; }

 private:
  friend class Simulator;

  /// Self-test hook (fast mode only): apply the kWorkDoubleCharge mutation.
  /// Out of line — needs the Simulator definition.
  void bump_extra_work() noexcept;

  /// Instrumented-mode fault hook: report an out-of-range address to the
  /// simulator (the op is not executed; the scheduler throws for this
  /// grant).  Out of line — needs the Simulator definition.
  void flag_oob(std::size_t addr) noexcept;

  // Field order is deliberate: the first block is everything a fast-mode
  // step suspension touches (see the awaiters above), packed into one cache
  // line at the front of the object.
  //
  // resume_slot_ points into the Simulator's flat resume-slot array (bound
  // at the first run()): the handle to resume on the next grant, or null
  // once the processor has finished.  Non-null fast_cells_ switches the
  // awaiters to inline execution against the raw cell array (stable for
  // the duration of a run); non-null ev_cur_ additionally points at the
  // Simulator's current-event cursor (instrumented batched runs).  All are
  // (re)set by the Simulator per run().
  std::coroutine_handle<>* resume_slot_ = nullptr;
  Cell* fast_cells_ = nullptr;
  std::size_t fast_words_ = 0;
  StepEvent* const* ev_cur_ = nullptr;
  std::uint64_t steps_ = 0;  ///< Granted steps (work units) so far.
  bool charge_local_twice_ = false;

  // Warm state (protocol-side accessors, instrumented mode).
  Simulator* sim_;
  std::size_t id_;
  apex::Rng rng_;

  // Suspended-step state of the instrumented mode.
  Op pending_{};
  Cell result_{};
};

}  // namespace apex::sim
