// Virtual processors as C++20 coroutines.
//
// A processor's protocol code is an ordinary coroutine taking a `Ctx&`.
// Every `co_await ctx.read(...)`, `co_await ctx.write(...)` or
// `co_await ctx.local()` is exactly ONE atomic step of the A-PRAM model:
// the simulator grants steps one at a time according to the adversary
// schedule, executes the requested operation against shared memory, and
// resumes the coroutine.  Plain C++ computation between `co_await`s costs
// nothing — the model only charges atomic steps, and protocol code charges
// local computation explicitly with `ctx.local()` where the paper counts it
// (e.g. padding agreement cycles to a fixed length ω).
//
// Protocols compose with SubTask<T> (see subtask.h): sub-procedures are
// coroutines awaited from the parent; a step awaiter anywhere in the stack
// suspends the whole stack by recording the deepest handle in the Ctx.
#pragma once

#include <coroutine>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <utility>

#include "sim/word.h"
#include "util/rng.h"

namespace apex::sim {

class Simulator;

/// The single pending atomic operation of a suspended processor.
struct Op {
  enum class Kind : std::uint8_t { None, Read, Write, Local };
  Kind kind = Kind::None;
  std::size_t addr = 0;
  Word value = 0;  ///< Write: value to store.
  Word stamp = 0;  ///< Write: stamp to store.
};

/// Coroutine handle type for a top-level processor program.
class ProcTask {
 public:
  struct promise_type {
    std::exception_ptr exception;

    ProcTask get_return_object() {
      return ProcTask(Handle::from_promise(*this));
    }
    std::suspend_always initial_suspend() noexcept { return {}; }
    std::suspend_always final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  using Handle = std::coroutine_handle<promise_type>;

  ProcTask() = default;
  explicit ProcTask(Handle h) : handle_(h) {}
  ProcTask(ProcTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  ProcTask& operator=(ProcTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  ProcTask(const ProcTask&) = delete;
  ProcTask& operator=(const ProcTask&) = delete;
  ~ProcTask() { destroy(); }

  Handle handle() const noexcept { return handle_; }
  bool valid() const noexcept { return static_cast<bool>(handle_); }
  bool done() const noexcept { return !handle_ || handle_.done(); }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

/// Per-processor execution context handed to protocol coroutines.
///
/// Lifetime: owned by the Simulator, stable address for the duration of the
/// coroutine.  Also holds the processor's suspended-step state: the pending
/// atomic op, its result, and the deepest coroutine to resume next grant.
class Ctx {
 public:
  Ctx(Simulator& sim, std::size_t id, apex::Rng rng)
      : sim_(&sim), id_(id), rng_(rng) {}

  Ctx(const Ctx&) = delete;
  Ctx& operator=(const Ctx&) = delete;

  /// Awaitable for one atomic step.  Yields the Cell the operation observed
  /// (reads) or stored (writes); Local yields {}.
  struct StepAwaiter {
    Ctx* ctx;
    Op op;

    bool await_ready() const noexcept { return false; }
    void await_suspend(std::coroutine_handle<> h) noexcept {
      ctx->pending_ = op;
      ctx->resume_point_ = h;
    }
    Cell await_resume() const noexcept { return ctx->result_; }
  };

  /// One atomic read of cell `addr` (value + stamp together).
  StepAwaiter read(std::size_t addr) noexcept {
    return StepAwaiter{this, Op{Op::Kind::Read, addr, 0, 0}};
  }

  /// One atomic write of (value, stamp) to cell `addr`.
  StepAwaiter write(std::size_t addr, Word value, Word stamp = 0) noexcept {
    return StepAwaiter{this, Op{Op::Kind::Write, addr, value, stamp}};
  }

  /// One local computation step (basic op on registers, random draw, no-op).
  StepAwaiter local() noexcept {
    return StepAwaiter{this, Op{Op::Kind::Local, 0, 0, 0}};
  }

  /// Identity of this virtual processor, in [0, nprocs).
  std::size_t id() const noexcept { return id_; }

  /// This processor's private random stream (the adversary cannot see it).
  apex::Rng& rng() noexcept { return rng_; }

  /// Number of virtual processors in the simulation.
  std::size_t nprocs() const noexcept;

  /// Atomic steps this processor has been granted so far.
  std::uint64_t steps() const noexcept;

  /// Ask the simulator to stop at the end of the current grant
  /// (cooperative: used by driver processors that detect completion).
  void request_stop() const noexcept;

  Simulator& simulator() const noexcept { return *sim_; }

 private:
  friend class Simulator;

  Simulator* sim_;
  std::size_t id_;
  apex::Rng rng_;

  // Suspended-step state, managed by StepAwaiter and the Simulator.
  Op pending_{};
  Cell result_{};
  std::coroutine_handle<> resume_point_{};
};

}  // namespace apex::sim
