// Adversary schedulers for the A-PRAM.
//
// The model (§1) associates with each processor a schedule function S_i
// mapping its k-th operation to an actual time; equivalently, the adversary
// produces a global interleaving: which processor performs the step at each
// global time t.  The A-PRAM convention is an OBLIVIOUS adversary: the whole
// interleaving is fixed in advance, independent of the processors' dynamic
// random choices.  We enforce that structurally: oblivious schedules depend
// only on (t, their own private RNG stream) and have no access to the
// simulator.  Adaptive schedules (for stress tests only) are a separate
// subclass that may inspect simulator state and declare themselves
// non-oblivious.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace apex::sim {

class Schedule {
 public:
  explicit Schedule(std::size_t nprocs) : nprocs_(nprocs) {
    if (nprocs == 0) throw std::invalid_argument("Schedule: nprocs == 0");
  }
  virtual ~Schedule() = default;

  /// Processor granted the atomic step at global time t.
  /// Called with strictly increasing t by the simulator.
  virtual std::size_t next(std::uint64_t t) = 0;

  virtual bool is_oblivious() const noexcept { return true; }

  std::size_t nprocs() const noexcept { return nprocs_; }

 protected:
  std::size_t nprocs_;
};

/// Fully synchronous round-robin: proc t mod n.  The "friendliest" schedule;
/// useful as a baseline and in deterministic unit tests.
class RoundRobinSchedule final : public Schedule {
 public:
  using Schedule::Schedule;
  std::size_t next(std::uint64_t t) override {
    return static_cast<std::size_t>(t % nprocs_);
  }
};

/// Uniformly random processor each step (classic A-PRAM random schedule).
class UniformRandomSchedule final : public Schedule {
 public:
  UniformRandomSchedule(std::size_t nprocs, apex::Rng rng)
      : Schedule(nprocs), rng_(rng) {}
  std::size_t next(std::uint64_t) override {
    return static_cast<std::size_t>(rng_.below(nprocs_));
  }

 private:
  apex::Rng rng_;
};

/// Heterogeneous speeds: processor i is granted steps proportionally to a
/// fixed rate r_i.  Models the paper's motivating scenario of a multitasking
/// system where a loaded processor gets far less CPU than a light one.
class RateSchedule final : public Schedule {
 public:
  RateSchedule(std::vector<double> rates, apex::Rng rng);

  /// Convenience: power-law rates r_i = 1 / (i+1)^alpha.
  static std::unique_ptr<RateSchedule> power_law(std::size_t nprocs,
                                                 double alpha, apex::Rng rng);

  std::size_t next(std::uint64_t) override;

 private:
  std::vector<double> cumulative_;
  apex::Rng rng_;
};

/// Sleeper adversary: a designated subset of processors is granted steps
/// only during periodic bursts; between bursts they are "asleep".  When a
/// sleeper wakes it still holds its stale view of the phase, so its first
/// writes land with old timestamps — the clobbers of Lemma 1.
class SleeperSchedule final : public Schedule {
 public:
  /// `sleepers`: ids of sleeping processors.  They are awake during
  /// [k*period, k*period + burst) for every k >= 1, asleep otherwise.
  /// Awake processors are chosen uniformly from the eligible set.
  SleeperSchedule(std::size_t nprocs, std::vector<std::size_t> sleepers,
                  std::uint64_t period, std::uint64_t burst, apex::Rng rng);

  std::size_t next(std::uint64_t t) override;

 private:
  std::vector<bool> is_sleeper_;
  std::vector<std::size_t> non_sleepers_;
  std::vector<std::size_t> sleepers_;
  std::uint64_t period_;
  std::uint64_t burst_;
  apex::Rng rng_;
};

/// Crash adversary: processor i executes no steps at or after crash_time[i]
/// (S_i(k) = infinity thereafter).  At least one processor must survive.
class CrashSchedule final : public Schedule {
 public:
  CrashSchedule(std::size_t nprocs, std::vector<std::uint64_t> crash_times,
                apex::Rng rng);

  std::size_t next(std::uint64_t t) override;

 private:
  std::vector<std::uint64_t> crash_times_;
  apex::Rng rng_;
};

/// What a ScriptedSchedule does once its script runs out.
enum class ScriptExhaust {
  kRoundRobin,  ///< Continue with round-robin (t mod n) — replayable prefixes.
  kThrow,       ///< Throw std::out_of_range — scripts meant to cover the run.
};

/// Fixed script of grants (for unit tests, the Fig. 3 reproduction, and
/// fuzzer repro files).  The exhaustion policy is explicit: the historical
/// behavior (silent round-robin fallback) is kRoundRobin and remains the
/// default because shrunk fuzz repros are prefixes that rely on it; tests
/// that must not outlive their script use kThrow.
class ScriptedSchedule final : public Schedule {
 public:
  ScriptedSchedule(std::size_t nprocs, std::vector<std::size_t> script,
                   ScriptExhaust exhaust = ScriptExhaust::kRoundRobin)
      : Schedule(nprocs), script_(std::move(script)), exhaust_(exhaust) {
    for (auto p : script_)
      if (p >= nprocs)
        throw std::invalid_argument("ScriptedSchedule: proc out of range");
  }

  std::size_t next(std::uint64_t t) override {
    if (pos_ < script_.size()) return script_[pos_++];
    if (exhaust_ == ScriptExhaust::kThrow)
      throw std::out_of_range("ScriptedSchedule: script exhausted at t=" +
                              std::to_string(t));
    return static_cast<std::size_t>(t % nprocs_);
  }

  std::size_t script_size() const noexcept { return script_.size(); }
  ScriptExhaust exhaust_policy() const noexcept { return exhaust_; }

 private:
  std::vector<std::size_t> script_;
  ScriptExhaust exhaust_;
  std::size_t pos_ = 0;
};

/// Bursty/jittery schedule: picks a processor and grants it a geometric
/// burst of steps before re-drawing.  Models context switches: long runs of
/// one processor while others stall.
class BurstSchedule final : public Schedule {
 public:
  BurstSchedule(std::size_t nprocs, double continue_prob, apex::Rng rng)
      : Schedule(nprocs), continue_prob_(continue_prob), rng_(rng) {
    if (continue_prob < 0.0 || continue_prob >= 1.0)
      throw std::invalid_argument("BurstSchedule: continue_prob in [0,1)");
    current_ = static_cast<std::size_t>(rng_.below(nprocs_));
  }

  std::size_t next(std::uint64_t) override {
    if (!rng_.coin(continue_prob_))
      current_ = static_cast<std::size_t>(rng_.below(nprocs_));
    return current_;
  }

 private:
  double continue_prob_;
  apex::Rng rng_;
  std::size_t current_;
};

/// Fully general schedule driven by a user callback.  Declared
/// NON-oblivious: the callback may capture simulator or protocol state and
/// base grants on it, which is exactly the adaptive-adversary power the
/// A-PRAM model excludes.  Used by stress tests and by the E14 ablation
/// (showing Claim 8 FAILS without the obliviousness assumption).
class CallbackSchedule final : public Schedule {
 public:
  using Fn = std::function<std::size_t(std::uint64_t t)>;
  CallbackSchedule(std::size_t nprocs, Fn fn)
      : Schedule(nprocs), fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("CallbackSchedule: empty callback");
  }

  std::size_t next(std::uint64_t t) override {
    const std::size_t p = fn_(t);
    if (p >= nprocs_)
      throw std::out_of_range("CallbackSchedule: callback chose bad proc");
    return p;
  }

  bool is_oblivious() const noexcept override { return false; }

 private:
  Fn fn_;
};

/// Named factory used by tests/benches to sweep the whole adversary family.
enum class ScheduleKind {
  kRoundRobin,
  kUniformRandom,
  kPowerLaw,
  kSleeper,
  kBurst,
  kCrash,
  kRate,
};

const char* schedule_kind_name(ScheduleKind k) noexcept;

/// Build a schedule of the given kind with canonical parameters
/// (power-law alpha=1.2; sleepers = n/8 procs, period 64n, burst 4n;
/// burst continue prob 0.95; crash = first half of the procs die at
/// staggered times 32n(i+1); rate = linear ramp r_i = i+1).
std::unique_ptr<Schedule> make_schedule(ScheduleKind kind, std::size_t nprocs,
                                        apex::Rng rng);

/// All kinds, for sweeps.
std::vector<ScheduleKind> all_schedule_kinds();

}  // namespace apex::sim
