// Adversary schedulers for the A-PRAM.
//
// The model (§1) associates with each processor a schedule function S_i
// mapping its k-th operation to an actual time; equivalently, the adversary
// produces a global interleaving: which processor performs the step at each
// global time t.  The A-PRAM convention is an OBLIVIOUS adversary: the whole
// interleaving is fixed in advance, independent of the processors' dynamic
// random choices.  We enforce that structurally: oblivious schedules depend
// only on (t, their own private RNG stream) and have no access to the
// simulator.  Adaptive schedules (for stress tests only) are a separate
// subclass that may inspect simulator state and declare themselves
// non-oblivious.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/rng.h"

namespace apex::sim {

/// Round-robin bulk fill shared by RoundRobinSchedule and
/// ScriptedSchedule's post-script fallback: one division for the whole
/// batch, then increment-and-wrap (a per-grant modulo is a hardware
/// divide, ~10x the rest of the loop).
inline std::size_t fill_round_robin(std::span<std::uint32_t> grants,
                                    std::uint64_t t0, std::size_t nprocs) {
  auto p = static_cast<std::uint32_t>(t0 % nprocs);
  const auto n = static_cast<std::uint32_t>(nprocs);
  for (auto& g : grants) {
    g = p;
    if (++p == n) p = 0;
  }
  return grants.size();
}

class Schedule {
 public:
  explicit Schedule(std::size_t nprocs) : nprocs_(nprocs) {
    if (nprocs == 0) throw std::invalid_argument("Schedule: nprocs == 0");
    if (nprocs > std::numeric_limits<std::uint32_t>::max())
      throw std::invalid_argument("Schedule: nprocs exceeds uint32 grants");
  }
  virtual ~Schedule() = default;

  /// Processor granted the atomic step at global time t.
  /// Called with strictly increasing t by the simulator.
  virtual std::size_t next(std::uint64_t t) = 0;

  /// Bulk grant API (the batched engine's hot path): fill `grants` with the
  /// processors granted the steps at times t0, t0+1, ..., and return how
  /// many were produced, in [1, grants.size()] (grants.empty() returns 0).
  ///
  /// Contract (see docs/ARCHITECTURE.md): the concatenation of fill()
  /// results must equal the sequence next(t0), next(t0+1), ... — same
  /// grants, same private-RNG consumption order — and a call may return
  /// short (e.g. at a segment or script boundary).  An error must surface
  /// exactly at the grant that would have thrown under next(): either throw
  /// with zero grants produced, or return the partial batch and throw on
  /// the following call (the default implementation does the latter via a
  /// stashed exception).
  ///
  /// The default loops next(); subclasses override purely for speed.
  virtual std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0);

  virtual bool is_oblivious() const noexcept { return true; }

  /// May the simulator draw grants ahead of executing them?  True requires
  /// that the grant at time t is fully determined by (t, the schedule's
  /// private state at the time of the draw) — i.e. nothing external mutates
  /// the schedule between grants.  Defaults to is_oblivious(): adaptive
  /// schedules inspect live simulator state and must be asked one grant at
  /// a time.  Override to false for schedules that are oblivious in the
  /// model sense but externally steered between run() calls (e.g. a bench
  /// harness flipping a designated processor).
  virtual bool is_prefetchable() const noexcept { return is_oblivious(); }

  std::size_t nprocs() const noexcept { return nprocs_; }

 protected:
  std::size_t nprocs_;

 private:
  /// Exception raised by next() mid-way through a default fill(): the grants
  /// drawn before it are returned first, and it is rethrown on the next call.
  std::exception_ptr deferred_;
};

/// Fully synchronous round-robin: proc t mod n.  The "friendliest" schedule;
/// useful as a baseline and in deterministic unit tests.
class RoundRobinSchedule final : public Schedule {
 public:
  using Schedule::Schedule;
  std::size_t next(std::uint64_t t) override {
    return static_cast<std::size_t>(t % nprocs_);
  }
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override {
    return fill_round_robin(grants, t0, nprocs_);
  }
};

/// Uniformly random processor each step (classic A-PRAM random schedule).
class UniformRandomSchedule final : public Schedule {
 public:
  UniformRandomSchedule(std::size_t nprocs, apex::Rng rng)
      : Schedule(nprocs), rng_(rng) {}
  std::size_t next(std::uint64_t) override {
    return static_cast<std::size_t>(rng_.below(nprocs_));
  }
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t) override {
    for (auto& g : grants) g = static_cast<std::uint32_t>(rng_.below(nprocs_));
    return grants.size();
  }

 private:
  apex::Rng rng_;
};

/// Heterogeneous speeds: processor i is granted steps proportionally to a
/// fixed rate r_i.  Models the paper's motivating scenario of a multitasking
/// system where a loaded processor gets far less CPU than a light one.
class RateSchedule final : public Schedule {
 public:
  RateSchedule(std::vector<double> rates, apex::Rng rng);

  /// Convenience: power-law rates r_i = 1 / (i+1)^alpha.
  static std::unique_ptr<RateSchedule> power_law(std::size_t nprocs,
                                                 double alpha, apex::Rng rng);

  std::size_t next(std::uint64_t) override;
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override;

 private:
  std::vector<double> cumulative_;
  apex::Rng rng_;
};

/// Sleeper adversary: a designated subset of processors is granted steps
/// only during periodic bursts; between bursts they are "asleep".  When a
/// sleeper wakes it still holds its stale view of the phase, so its first
/// writes land with old timestamps — the clobbers of Lemma 1.
class SleeperSchedule final : public Schedule {
 public:
  /// `sleepers`: ids of sleeping processors.  They are awake during
  /// [k*period, k*period + burst) for every k >= 1, asleep otherwise.
  /// Awake processors are chosen uniformly from the eligible set.
  SleeperSchedule(std::size_t nprocs, std::vector<std::size_t> sleepers,
                  std::uint64_t period, std::uint64_t burst, apex::Rng rng);

  std::size_t next(std::uint64_t t) override;
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override;

 private:
  std::vector<bool> is_sleeper_;
  std::vector<std::size_t> non_sleepers_;
  std::vector<std::size_t> sleepers_;
  std::uint64_t period_;
  std::uint64_t burst_;
  apex::Rng rng_;
};

/// Crash adversary: processor i executes no steps at or after crash_time[i]
/// (S_i(k) = infinity thereafter).  At least one processor must survive.
class CrashSchedule final : public Schedule {
 public:
  CrashSchedule(std::size_t nprocs, std::vector<std::uint64_t> crash_times,
                apex::Rng rng);

  std::size_t next(std::uint64_t t) override;
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override;

 private:
  std::vector<std::uint64_t> crash_times_;
  apex::Rng rng_;
};

/// What a ScriptedSchedule does once its script runs out.
enum class ScriptExhaust {
  kRoundRobin,  ///< Continue with round-robin (t mod n) — replayable prefixes.
  kThrow,       ///< Throw std::out_of_range — scripts meant to cover the run.
};

/// Fixed script of grants (for unit tests, the Fig. 3 reproduction, and
/// fuzzer repro files).  The exhaustion policy is explicit: the historical
/// behavior (silent round-robin fallback) is kRoundRobin and remains the
/// default because shrunk fuzz repros are prefixes that rely on it; tests
/// that must not outlive their script use kThrow.
class ScriptedSchedule final : public Schedule {
 public:
  ScriptedSchedule(std::size_t nprocs, std::vector<std::size_t> script,
                   ScriptExhaust exhaust = ScriptExhaust::kRoundRobin)
      : Schedule(nprocs), script_(std::move(script)), exhaust_(exhaust) {
    for (auto p : script_)
      if (p >= nprocs)
        throw std::invalid_argument("ScriptedSchedule: proc out of range");
  }

  std::size_t next(std::uint64_t t) override {
    if (pos_ < script_.size()) return script_[pos_++];
    if (exhaust_ == ScriptExhaust::kThrow)
      throw std::out_of_range("ScriptedSchedule: script exhausted at t=" +
                              std::to_string(t));
    return static_cast<std::size_t>(t % nprocs_);
  }

  /// Returns short at the script boundary, so a kThrow script only throws
  /// when a grant BEYOND the script is actually demanded — exactly when
  /// next() would have.
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override {
    if (grants.empty()) return 0;
    if (pos_ < script_.size()) {
      const std::size_t n = std::min(grants.size(), script_.size() - pos_);
      for (std::size_t i = 0; i < n; ++i)
        grants[i] = static_cast<std::uint32_t>(script_[pos_ + i]);
      pos_ += n;
      return n;
    }
    if (exhaust_ == ScriptExhaust::kThrow)
      throw std::out_of_range("ScriptedSchedule: script exhausted at t=" +
                              std::to_string(t0));
    return fill_round_robin(grants, t0, nprocs_);
  }

  std::size_t script_size() const noexcept { return script_.size(); }
  ScriptExhaust exhaust_policy() const noexcept { return exhaust_; }

 private:
  std::vector<std::size_t> script_;
  ScriptExhaust exhaust_;
  std::size_t pos_ = 0;
};

/// Bursty/jittery schedule: picks a processor and grants it a geometric
/// burst of steps before re-drawing.  Models context switches: long runs of
/// one processor while others stall.
class BurstSchedule final : public Schedule {
 public:
  BurstSchedule(std::size_t nprocs, double continue_prob, apex::Rng rng)
      : Schedule(nprocs), continue_prob_(continue_prob), rng_(rng) {
    if (continue_prob < 0.0 || continue_prob >= 1.0)
      throw std::invalid_argument("BurstSchedule: continue_prob in [0,1)");
    current_ = static_cast<std::size_t>(rng_.below(nprocs_));
  }

  std::size_t next(std::uint64_t) override {
    if (!rng_.coin(continue_prob_))
      current_ = static_cast<std::size_t>(rng_.below(nprocs_));
    return current_;
  }

  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t) override {
    for (auto& g : grants) {
      if (!rng_.coin(continue_prob_))
        current_ = static_cast<std::size_t>(rng_.below(nprocs_));
      g = static_cast<std::uint32_t>(current_);
    }
    return grants.size();
  }

 private:
  double continue_prob_;
  apex::Rng rng_;
  std::size_t current_;
};

/// Fully general schedule driven by a user callback.  Declared
/// NON-oblivious: the callback may capture simulator or protocol state and
/// base grants on it, which is exactly the adaptive-adversary power the
/// A-PRAM model excludes.  Used by stress tests and by the E14 ablation
/// (showing Claim 8 FAILS without the obliviousness assumption).
class CallbackSchedule final : public Schedule {
 public:
  using Fn = std::function<std::size_t(std::uint64_t t)>;
  CallbackSchedule(std::size_t nprocs, Fn fn)
      : Schedule(nprocs), fn_(std::move(fn)) {
    if (!fn_) throw std::invalid_argument("CallbackSchedule: empty callback");
  }

  std::size_t next(std::uint64_t t) override {
    const std::size_t p = fn_(t);
    if (p >= nprocs_)
      throw std::out_of_range("CallbackSchedule: callback chose bad proc");
    return p;
  }

  bool is_oblivious() const noexcept override { return false; }

 private:
  Fn fn_;
};

/// Named factory used by tests/benches to sweep the whole adversary family.
enum class ScheduleKind {
  kRoundRobin,
  kUniformRandom,
  kPowerLaw,
  kSleeper,
  kBurst,
  kCrash,
  kRate,
};

const char* schedule_kind_name(ScheduleKind k) noexcept;

/// Build a schedule of the given kind with canonical parameters
/// (power-law alpha=1.2; sleepers = n/8 procs, period 64n, burst 4n;
/// burst continue prob 0.95; crash = first half of the procs die at
/// staggered times 32n(i+1); rate = linear ramp r_i = i+1).
std::unique_ptr<Schedule> make_schedule(ScheduleKind kind, std::size_t nprocs,
                                        apex::Rng rng);

/// All kinds, for sweeps.
std::vector<ScheduleKind> all_schedule_kinds();

}  // namespace apex::sim
