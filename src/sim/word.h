// The A-PRAM machine word.
//
// The paper postulates (§1, "The model") that in a single atomic operation
// the host can read or write a full word *together with an appropriate
// timestamp* (timestamps are O(log n) bits).  No atomic operation both reads
// and writes, so there is no test-and-set or compare-and-swap anywhere in
// this library.
#pragma once

#include <cstdint>

namespace apex::sim {

using Word = std::uint64_t;

/// One shared-memory location: a value and its timestamp, accessed together
/// in a single atomic step.  Stamp 0 is reserved for "never written".
struct Cell {
  Word value = 0;
  Word stamp = 0;

  friend bool operator==(const Cell&, const Cell&) = default;
};

}  // namespace apex::sim
