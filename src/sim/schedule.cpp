#include "sim/schedule.h"

#include <algorithm>
#include <cmath>

namespace apex::sim {

std::size_t Schedule::fill(std::span<std::uint32_t> grants, std::uint64_t t0) {
  if (deferred_) {
    auto e = deferred_;
    deferred_ = nullptr;
    std::rethrow_exception(e);
  }
  std::size_t i = 0;
  try {
    for (; i < grants.size(); ++i)
      grants[i] = static_cast<std::uint32_t>(next(t0 + i));
  } catch (...) {
    // Keep the error aligned with the grant that caused it: hand back the
    // grants already drawn and rethrow when the caller asks for more.
    if (i == 0) throw;
    deferred_ = std::current_exception();
  }
  return i;
}

RateSchedule::RateSchedule(std::vector<double> rates, apex::Rng rng)
    : Schedule(rates.size()), rng_(rng) {
  double total = 0.0;
  cumulative_.reserve(rates.size());
  for (double r : rates) {
    if (r <= 0.0) throw std::invalid_argument("RateSchedule: rate <= 0");
    total += r;
    cumulative_.push_back(total);
  }
  for (auto& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // guard against rounding
}

std::unique_ptr<RateSchedule> RateSchedule::power_law(std::size_t nprocs,
                                                      double alpha,
                                                      apex::Rng rng) {
  std::vector<double> rates(nprocs);
  for (std::size_t i = 0; i < nprocs; ++i)
    rates[i] = 1.0 / std::pow(static_cast<double>(i + 1), alpha);
  return std::make_unique<RateSchedule>(std::move(rates), rng);
}

std::size_t RateSchedule::next(std::uint64_t) {
  const double u = rng_.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin());
}

std::size_t RateSchedule::fill(std::span<std::uint32_t> grants,
                               std::uint64_t) {
  const auto begin = cumulative_.begin();
  const auto end = cumulative_.end();
  for (auto& g : grants) {
    const double u = rng_.uniform();
    g = static_cast<std::uint32_t>(std::lower_bound(begin, end, u) - begin);
  }
  return grants.size();
}

SleeperSchedule::SleeperSchedule(std::size_t nprocs,
                                 std::vector<std::size_t> sleepers,
                                 std::uint64_t period, std::uint64_t burst,
                                 apex::Rng rng)
    : Schedule(nprocs),
      is_sleeper_(nprocs, false),
      sleepers_(std::move(sleepers)),
      period_(period),
      burst_(burst),
      rng_(rng) {
  if (period == 0 || burst == 0 || burst > period)
    throw std::invalid_argument("SleeperSchedule: need 0 < burst <= period");
  for (auto s : sleepers_) {
    if (s >= nprocs)
      throw std::invalid_argument("SleeperSchedule: sleeper out of range");
    is_sleeper_[s] = true;
  }
  for (std::size_t i = 0; i < nprocs; ++i)
    if (!is_sleeper_[i]) non_sleepers_.push_back(i);
  if (non_sleepers_.empty())
    throw std::invalid_argument("SleeperSchedule: all procs sleep");
}

std::size_t SleeperSchedule::next(std::uint64_t t) {
  const bool sleepers_awake = (t % period_) < burst_ && t >= period_;
  if (sleepers_awake && !sleepers_.empty()) {
    // During a burst, grant sleepers priority: uniformly among them, so the
    // whole burst is stale-work pressure.
    return sleepers_[rng_.below(sleepers_.size())];
  }
  return non_sleepers_[rng_.below(non_sleepers_.size())];
}

std::size_t SleeperSchedule::fill(std::span<std::uint32_t> grants,
                                  std::uint64_t t0) {
  // One division for the whole batch; the phase-in-period counter then
  // wraps incrementally instead of re-dividing per grant.
  std::uint64_t in_period = t0 % period_;
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const std::uint64_t t = t0 + i;
    const bool sleepers_awake = in_period < burst_ && t >= period_;
    const auto& pool = (sleepers_awake && !sleepers_.empty()) ? sleepers_
                                                              : non_sleepers_;
    grants[i] = static_cast<std::uint32_t>(pool[rng_.below(pool.size())]);
    if (++in_period == period_) in_period = 0;
  }
  return grants.size();
}

CrashSchedule::CrashSchedule(std::size_t nprocs,
                             std::vector<std::uint64_t> crash_times,
                             apex::Rng rng)
    : Schedule(nprocs), crash_times_(std::move(crash_times)), rng_(rng) {
  if (crash_times_.size() != nprocs)
    throw std::invalid_argument("CrashSchedule: crash_times size mismatch");
  bool survivor = false;
  for (auto ct : crash_times_) survivor |= (ct == ~0ULL);
  if (!survivor)
    throw std::invalid_argument("CrashSchedule: need >= 1 survivor "
                                "(crash time UINT64_MAX)");
}

std::size_t CrashSchedule::next(std::uint64_t t) {
  // Rejection-sample among processors still alive at time t.  The alive set
  // only shrinks with t and always contains a survivor, so this terminates.
  for (;;) {
    const auto p = static_cast<std::size_t>(rng_.below(nprocs_));
    if (t < crash_times_[p]) return p;
  }
}

std::size_t CrashSchedule::fill(std::span<std::uint32_t> grants,
                                std::uint64_t t0) {
  for (std::size_t i = 0; i < grants.size(); ++i) {
    const std::uint64_t t = t0 + i;
    for (;;) {
      const auto p = static_cast<std::size_t>(rng_.below(nprocs_));
      if (t < crash_times_[p]) {
        grants[i] = static_cast<std::uint32_t>(p);
        break;
      }
    }
  }
  return grants.size();
}

const char* schedule_kind_name(ScheduleKind k) noexcept {
  switch (k) {
    case ScheduleKind::kRoundRobin: return "round_robin";
    case ScheduleKind::kUniformRandom: return "uniform";
    case ScheduleKind::kPowerLaw: return "power_law";
    case ScheduleKind::kSleeper: return "sleeper";
    case ScheduleKind::kBurst: return "burst";
    case ScheduleKind::kCrash: return "crash";
    case ScheduleKind::kRate: return "rate";
  }
  return "?";
}

std::unique_ptr<Schedule> make_schedule(ScheduleKind kind, std::size_t nprocs,
                                        apex::Rng rng) {
  switch (kind) {
    case ScheduleKind::kRoundRobin:
      return std::make_unique<RoundRobinSchedule>(nprocs);
    case ScheduleKind::kUniformRandom:
      return std::make_unique<UniformRandomSchedule>(nprocs, rng);
    case ScheduleKind::kPowerLaw:
      return RateSchedule::power_law(nprocs, 1.2, rng);
    case ScheduleKind::kSleeper: {
      std::vector<std::size_t> sleepers;
      for (std::size_t i = 0; i < std::max<std::size_t>(1, nprocs / 8); ++i)
        sleepers.push_back(i);
      const std::uint64_t period = 64 * static_cast<std::uint64_t>(nprocs);
      const std::uint64_t burst = 4 * static_cast<std::uint64_t>(nprocs);
      return std::make_unique<SleeperSchedule>(nprocs, std::move(sleepers),
                                               period, burst, rng);
    }
    case ScheduleKind::kBurst:
      return std::make_unique<BurstSchedule>(nprocs, 0.95, rng);
    case ScheduleKind::kCrash: {
      // First half of the processors die at staggered times; the rest
      // survive (CrashSchedule requires >= 1 survivor by construction).
      std::vector<std::uint64_t> crash(nprocs, ~0ULL);
      for (std::size_t i = 0; i < nprocs / 2; ++i)
        crash[i] = 32 * static_cast<std::uint64_t>(nprocs) *
                   static_cast<std::uint64_t>(i + 1);
      return std::make_unique<CrashSchedule>(nprocs, std::move(crash), rng);
    }
    case ScheduleKind::kRate: {
      // Linear speed ramp: processor i runs at rate i+1 (the fastest is n
      // times the slowest — a milder skew than the power law).
      std::vector<double> rates(nprocs);
      for (std::size_t i = 0; i < nprocs; ++i)
        rates[i] = static_cast<double>(i + 1);
      return std::make_unique<RateSchedule>(std::move(rates), rng);
    }
  }
  throw std::invalid_argument("make_schedule: unknown kind");
}

std::vector<ScheduleKind> all_schedule_kinds() {
  return {ScheduleKind::kRoundRobin, ScheduleKind::kUniformRandom,
          ScheduleKind::kPowerLaw,   ScheduleKind::kSleeper,
          ScheduleKind::kBurst,      ScheduleKind::kCrash,
          ScheduleKind::kRate};
}

}  // namespace apex::sim
