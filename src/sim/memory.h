// Shared memory of the simulated A-PRAM host.
//
// A flat array of timestamped cells.  Only the simulator touches it while a
// run is in progress (one atomic op per scheduler grant); tests and
// inspectors may read it freely between grants — such reads are outside the
// model and cost no work.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/word.h"

namespace apex::sim {

class Memory {
 public:
  explicit Memory(std::size_t words) : cells_(words) {}

  std::size_t size() const noexcept { return cells_.size(); }

  /// Grow the address space (used by layered layouts: program vars, bins,
  /// clock slots are carved out of one memory).  Returns the base address of
  /// the newly added region.
  std::size_t extend(std::size_t words) {
    const std::size_t base = cells_.size();
    cells_.resize(cells_.size() + words);
    return base;
  }

  const Cell& at(std::size_t addr) const {
    check(addr);
    return cells_[addr];
  }

  Cell& at(std::size_t addr) {
    check(addr);
    return cells_[addr];
  }

  /// Out-of-band reset (tests only): zero a region.
  void clear(std::size_t base, std::size_t len) {
    check(base + len == 0 ? 0 : base + len - 1);
    for (std::size_t i = 0; i < len; ++i) cells_[base + i] = Cell{};
  }

 private:
  void check(std::size_t addr) const {
    if (addr >= cells_.size())
      throw std::out_of_range("apex::sim::Memory: address " +
                              std::to_string(addr) + " >= size " +
                              std::to_string(cells_.size()));
  }

  std::vector<Cell> cells_;
};

}  // namespace apex::sim
