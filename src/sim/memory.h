// Shared memory of the simulated A-PRAM host.
//
// A flat array of timestamped cells.  Only the simulator touches it while a
// run is in progress (one atomic op per scheduler grant); tests and
// inspectors may read it freely between grants — such reads are outside the
// model and cost no work.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/word.h"

namespace apex::sim {

class Memory {
 public:
  explicit Memory(std::size_t words) : cells_(words) {}

  std::size_t size() const noexcept { return cells_.size(); }

  /// Grow the address space (used by layered layouts: program vars, bins,
  /// clock slots are carved out of one memory).  Returns the base address of
  /// the newly added region.
  std::size_t extend(std::size_t words) {
    const std::size_t base = cells_.size();
    cells_.resize(cells_.size() + words);
    return base;
  }

  const Cell& at(std::size_t addr) const {
    check(addr);
    return cells_[addr];
  }

  Cell& at(std::size_t addr) {
    check(addr);
    return cells_[addr];
  }

  /// Raw cell array for the simulator's batched fast path.  The pointer is
  /// stable for the duration of a run(): regions are carved out with
  /// extend() strictly before processors run (extending mid-run would
  /// invalidate it and is not supported).
  Cell* data() noexcept { return cells_.data(); }
  const Cell* data() const noexcept { return cells_.data(); }

  /// Unchecked access for the simulator's no-observer fast path.  Callers
  /// must hold an address inside a region handed out by the constructor or
  /// extend() — the bound was proved at carve-out time, so the per-step
  /// check is asserted (Debug) rather than re-tested (Release).  Everything
  /// out-of-band (inspectors, oracles, tests) keeps using the checked at().
  const Cell& at_unchecked(std::size_t addr) const noexcept {
    assert(addr < cells_.size());
    return cells_[addr];
  }

  Cell& at_unchecked(std::size_t addr) noexcept {
    assert(addr < cells_.size());
    return cells_[addr];
  }

  /// Out-of-band reset (tests only): zero [base, base + len).  A zero-length
  /// clear is valid anywhere up to one-past-the-end (in particular on empty
  /// memory); a non-empty range must lie entirely inside the address space.
  void clear(std::size_t base, std::size_t len) {
    if (base > cells_.size() || len > cells_.size() - base)
      throw std::out_of_range(
          "apex::sim::Memory: clear [" + std::to_string(base) + ", " +
          std::to_string(base) + "+" + std::to_string(len) + ") >= size " +
          std::to_string(cells_.size()));
    for (std::size_t i = 0; i < len; ++i) cells_[base + i] = Cell{};
  }

 private:
  void check(std::size_t addr) const {
    if (addr >= cells_.size())
      throw std::out_of_range("apex::sim::Memory: address " +
                              std::to_string(addr) + " >= size " +
                              std::to_string(cells_.size()));
  }

  std::vector<Cell> cells_;
};

}  // namespace apex::sim
