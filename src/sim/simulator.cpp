#include "sim/simulator.h"

#include "check/mutation.h"

namespace apex::sim {

Simulator::Simulator(SimConfig cfg, std::unique_ptr<Schedule> schedule)
    : seeds_{cfg.seed},
      memory_(cfg.memory_words),
      schedule_(std::move(schedule)),
      nprocs_(cfg.nprocs) {
  if (!schedule_) throw std::invalid_argument("Simulator: null schedule");
  if (schedule_->nprocs() != nprocs_)
    throw std::invalid_argument("Simulator: schedule nprocs mismatch");
  procs_.reserve(nprocs_);
}

bool Simulator::grant(std::size_t p) {
  ProcState& ps = procs_[p];
  if (ps.finished) return false;

  auto top = ps.task.handle();
  Ctx& ctx = *ps.ctx;

  // Resume the deepest suspended coroutine (the top-level proc on the first
  // grant, otherwise wherever the last step awaiter suspended — possibly
  // inside nested SubTasks).  It runs protocol code until it requests the
  // next atomic op (a step awaiter records it in the Ctx) or the top-level
  // coroutine finishes.  Plain computation between awaits is free; the op
  // requested *by this grant* executes below, atomically.
  std::coroutine_handle<> h = ctx.resume_point_ ? ctx.resume_point_
                                                : std::coroutine_handle<>(top);
  ctx.resume_point_ = {};
  h.resume();

  if (top.promise().exception) std::rethrow_exception(top.promise().exception);

  StepEvent ev;
  ev.time = work_;
  ev.proc = p;

  if (top.done()) {
    ps.finished = true;
    --alive_;
    // The final resume still consumed the processor's step (it did the local
    // work of deciding to halt).
    ev.op = Op{Op::Kind::Local, 0, 0, 0};
  } else {
    const Op op = ctx.pending_;
    ev.op = op;
    switch (op.kind) {
      case Op::Kind::Read: {
        const Cell c = memory_.at(op.addr);
        ev.before = ev.after = c;
        ctx.result_ = c;
        break;
      }
      case Op::Kind::Write: {
        Cell& c = memory_.at(op.addr);
        ev.before = c;
        c = Cell{op.value, op.stamp};
        ev.after = c;
        ctx.result_ = c;
        break;
      }
      case Op::Kind::Local:
      case Op::Kind::None:
        ctx.result_ = Cell{};
        break;
    }
  }

  ps.steps += 1;
  work_ += 1;
  if (check::mutation_enabled(check::Mutation::kWorkDoubleCharge) &&
      ev.op.kind == Op::Kind::Local)
    work_ += 1;  // self-test mutation: charge twice, emit one event
  if (observer_ != nullptr) observer_->on_step(ev);
  return true;
}

Simulator::RunResult Simulator::run(std::uint64_t max_steps,
                                    const std::function<bool()>& stop,
                                    std::uint64_t check_interval) {
  if (!started_) {
    started_ = true;
    alive_ = procs_.size();
    for (const auto& ps : procs_)
      if (ps.finished) --alive_;
  }
  if (check_interval == 0) check_interval = 1;

  RunResult res;
  std::uint64_t starvation = 0;
  const std::uint64_t starvation_limit =
      std::max<std::uint64_t>(1u << 20, 64 * nprocs_);

  while (res.work < max_steps) {
    if (alive_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop_requested_) {
      res.stop_requested = true;
      stop_requested_ = false;
      break;
    }
    if (stop && res.work % check_interval == 0 && stop()) {
      res.predicate_hit = true;
      break;
    }

    // The schedule's clock ticks on every grant attempt, including grants to
    // finished processors (real time passes even when a processor is done).
    const std::size_t p = schedule_->next(tick_++);
    if (p >= procs_.size())
      throw std::logic_error("Simulator: schedule granted unknown proc");
    if (!grant(p)) {
      // Schedule granted a finished processor; charge nothing but guard
      // against schedules that starve all remaining live processors.
      if (++starvation > starvation_limit)
        throw std::runtime_error(
            "Simulator: schedule starved live processors");
      continue;
    }
    starvation = 0;
    res.work += 1;
  }
  return res;
}

std::size_t Ctx::nprocs() const noexcept { return sim_->nprocs(); }

std::uint64_t Ctx::steps() const noexcept { return sim_->proc_steps(id_); }

void Ctx::request_stop() const noexcept { sim_->request_stop(); }

}  // namespace apex::sim
