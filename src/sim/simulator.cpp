#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <span>

#include "check/mutation.h"

namespace apex::sim {

namespace {

/// Batched-engine prefetch depth.  One virtual Schedule::fill() call per
/// kGrantBatch grants amortizes dispatch to noise; leftovers persist in the
/// simulator's buffer, so a deep prefetch never changes what executes.
constexpr std::size_t kGrantBatch = 1024;

}  // namespace

Simulator::Simulator(SimConfig cfg, std::unique_ptr<Schedule> schedule)
    : seeds_{cfg.seed},
      memory_(cfg.memory_words),
      schedule_(std::move(schedule)),
      nprocs_(cfg.nprocs),
      engine_(cfg.engine) {
  if (!schedule_) throw std::invalid_argument("Simulator: null schedule");
  if (schedule_->nprocs() != nprocs_)
    throw std::invalid_argument("Simulator: schedule nprocs mismatch");
  prefetchable_ = schedule_->is_prefetchable();
  starvation_limit_ =
      cfg.starvation_limit != 0
          ? cfg.starvation_limit
          : std::max<std::uint64_t>(1u << 20, 64 * nprocs_);
  procs_.reserve(nprocs_);
  grant_buf_.resize(kGrantBatch);
}

bool Simulator::grant_instrumented(std::size_t p, bool double_charge) {
  ProcState& ps = procs_[p];
  if (ps.finished) return false;

  auto top = ps.task.handle();
  Ctx& ctx = *ps.ctx;

  // Resume the deepest suspended coroutine (the top-level proc on the first
  // grant, otherwise wherever the last step awaiter suspended — possibly
  // inside nested SubTasks; see the resume-slot invariant in spawn()).
  // It runs protocol code until it requests the next atomic op (a step
  // awaiter records it in the Ctx) or the top-level coroutine finishes.
  // Plain computation between awaits is free; the op requested *by this
  // grant* executes below, atomically.  (This path keeps the pre-batching
  // per-grant shape so run_single_step stays an honest perf baseline.)
  std::coroutine_handle<>& slot = resume_slots_[p];
  std::coroutine_handle<> h = slot ? slot : std::coroutine_handle<>(top);
  slot = {};
  h.resume();

  if (top.promise().exception) [[unlikely]]
    std::rethrow_exception(top.promise().exception);

  StepEvent ev;
  ev.time = work_;
  ev.proc = p;

  if (top.done()) {
    ps.finished = true;
    --alive_;
    // The final resume still consumed the processor's step (it did the local
    // work of deciding to halt).
    ev.op = Op{Op::Kind::Local, 0, 0, 0};
  } else {
    const Op op = ctx.pending_;
    ev.op = op;
    switch (op.kind) {
      case Op::Kind::Read: {
        const Cell c = memory_.at(op.addr);
        ev.before = ev.after = c;
        ctx.result_ = c;
        break;
      }
      case Op::Kind::Write: {
        Cell& c = memory_.at(op.addr);
        ev.before = c;
        c = Cell{op.value, op.stamp};
        ev.after = c;
        ctx.result_ = c;
        break;
      }
      case Op::Kind::Local:
      case Op::Kind::None:
        ctx.result_ = Cell{};
        break;
    }
  }

  ctx.steps_ += 1;
  work_ += 1;
  if (double_charge && ev.op.kind == Op::Kind::Local)
    work_ += 1;  // self-test mutation: charge twice, emit one event
  observers_.on_step(ev);
  return true;
}

void Simulator::charge_starvation(std::uint64_t dead_tick) {
  // Schedule granted a finished processor; charge nothing but guard against
  // schedules that starve all remaining live processors.
  starvation_ = last_dead_tick_ + 1 == dead_tick ? starvation_ + 1 : 1;
  last_dead_tick_ = dead_tick;
  if (starvation_ > starvation_limit_)
    throw std::runtime_error("Simulator: schedule starved live processors");
}

void Simulator::refill_grants() {
  // Non-prefetchable schedules (adaptive, or externally steered between
  // run() calls) must be asked exactly when a grant is needed.  Oblivious
  // self-contained schedules depend only on (t, their private stream);
  // drawing them ahead of execution is invisible.
  const std::size_t want = prefetchable_ ? kGrantBatch : 1;
  // Empty the buffer BEFORE filling: if fill() throws and the caller
  // catches, a later run() must refill (re-raising the schedule's error)
  // rather than replay the previous batch's stale contents.
  buf_pos_ = 0;
  buf_len_ = 0;
  try {
    buf_len_ = schedule_->fill(
        std::span<std::uint32_t>(grant_buf_.data(), want), ticks_drawn_);
  } catch (...) {
    // refill happens only with an empty buffer, so the grant that faulted
    // is exactly the next one to execute: consume its tick before
    // propagating, as the single-step engine does (tick_++ before next()).
    ++tick_;
    ++ticks_drawn_;
    throw;
  }
  if (buf_len_ == 0 || buf_len_ > want)
    throw std::logic_error("Simulator: Schedule::fill returned bad count");
  ticks_drawn_ += buf_len_;
  validate_grants(0);
}

void Simulator::validate_grants(std::size_t from) {
  // Validate the buffer tail [from, buf_len_) so the consume loops skip
  // the per-grant range check: a vectorizable max-scan, then (only if a
  // bad grant exists) a scalar pass for its position.  A bad grant
  // poisons only its own position: everything before it executes first,
  // exactly as the single-step engine would.
  bad_grant_at_ = buf_len_;
  const std::uint32_t n = static_cast<std::uint32_t>(procs_.size());
  std::uint32_t maxg = 0;
  for (std::size_t i = from; i < buf_len_; ++i)
    maxg = std::max(maxg, grant_buf_[i]);
  if (maxg >= n) [[unlikely]] {
    for (std::size_t i = from; i < buf_len_; ++i)
      if (grant_buf_[i] >= n) {
        bad_grant_at_ = i;
        break;
      }
  }
}

void Simulator::consume_batch(std::size_t end, bool double_charge,
                              bool poll_on_dead, RunResult& res) {
  const std::uint64_t work0 = res.work;
  while (buf_pos_ < end) {
    const std::size_t p = grant_buf_[buf_pos_++];
    ++tick_;
    if (p >= procs_.size()) [[unlikely]]
      throw std::logic_error("Simulator: schedule granted unknown proc");
    if (!grant_instrumented(p, double_charge)) [[unlikely]] {
      charge_starvation(tick_ - 1);
      if (poll_on_dead && res.work == work0) return;
      continue;
    }
    res.work += 1;
    // Rare mid-batch exits: a processor requested stop, or the last live
    // processor just finished.  Unconsumed grants stay buffered for the
    // next run() call, keeping the executed trace identical to the
    // single-step engine's.
    if (stop_requested_ || alive_ == 0) [[unlikely]] return;
  }
}

void Simulator::consume_batch_fast(std::size_t end, bool double_charge,
                                   bool poll_on_dead, RunResult& res) {
  // The hot loop of the whole repo.  The atomic op itself is executed
  // inline by the step awaiter (fast mode, see proc.h) before the resume
  // returns, so each iteration is: resume, finish check, accounting.
  // Everything the resume cannot touch is hoisted into const locals;
  // counters the protocol can read mid-resume through Ctx accessors
  // (work_, ctx.steps_) stay per-step member updates, while run-local or
  // boundary-visible counters (res.work, tick_, buf_pos_, starvation_)
  // accumulate in registers and flush at every exit — including the
  // throwing ones, so a caught exception leaves the simulator consistent.
  const std::uint32_t* const buf = grant_buf_.data();
  std::coroutine_handle<>* const slots = resume_slots_.data();
  // A previously faulted grant was consumed and its exception caught:
  // re-validate the buffer tail so execution continues past it, exactly
  // as the single-step engine would.
  if (bad_grant_at_ < buf_pos_) [[unlikely]] validate_grants(buf_pos_);
  // Grants were range-validated at refill time; stop just before a bad one
  // so it faults exactly when the single-step engine would have.
  const std::size_t safe_end = std::min(end, bad_grant_at_);
  const std::size_t pos0 = buf_pos_;
  std::size_t pos = pos0;
  // Dead (finished-proc) grants consumed, maintained only on the cold
  // paths; the live grants of the batch are then (pos - pos0) - deads, so
  // the hot path carries no work/starvation counters at all.  The live
  // loop state (this, pos, buf, slots, safe_end + one temporary) fits the
  // callee-saved registers, so nothing spills across the resume call.
  std::uint64_t deads = 0;

  const auto flush = [&]() noexcept {
    buf_pos_ = pos;
    tick_ += pos - pos0;
    res.work += (pos - pos0) - deads;
  };

  bool exhausted = true;
  try {
    while (pos < safe_end) {
      const std::size_t p = buf[pos];
      ++pos;
      const std::coroutine_handle<> h = slots[p];
      if (!h) [[unlikely]] {
        // Null slot = finished processor (spawn() invariant).
        ++deads;
        charge_starvation(tick_ + (pos - 1 - pos0));
        // Work still parked on a predicate boundary: hand back for a
        // re-poll (matches the single-step engine's per-grant polling).
        if (poll_on_dead && pos - pos0 == deads) {
          exhausted = false;
          break;
        }
        continue;
      }
      // Clear before resuming: a suspension re-stores the slot (and the
      // awaiter accounts the step), so a slot still null afterwards means
      // the coroutine ran to completion or captured an exception on the
      // way to final_suspend — the two rare outcomes share one branch and
      // the common path probes no frame or ProcState lines at all.
      slots[p] = {};
      h.resume();

      if (!slots[p]) [[unlikely]] {
        ProcState& ps = procs_[p];
        const auto top = ps.task.handle();
        if (top.promise().exception) [[unlikely]]
          std::rethrow_exception(top.promise().exception);
        // No awaiter ran, so account the final step here.
        ps.finished = true;
        --alive_;
        ps.ctx->steps_ += 1;
        work_ += 1;
        if (double_charge) [[unlikely]] work_ += 1;  // final resume is Local
        if (alive_ == 0 || stop_requested_) {
          exhausted = false;
          break;
        }
        continue;
      }

      work_ += 1;
      if (stop_requested_) [[unlikely]] {
        exhausted = false;
        break;
      }
    }
    if (exhausted && pos == bad_grant_at_ && pos < end) {
      ++pos;  // the bad grant consumes its tick, then faults
      throw std::logic_error("Simulator: schedule granted unknown proc");
    }
  } catch (...) {
    flush();
    throw;
  }
  flush();
}

Simulator::RunResult Simulator::run_batched(
    std::uint64_t max_steps, const std::function<bool()>& stop,
    std::uint64_t check_interval) {
  RunResult res;
  const bool instrumented = !observers_.empty();
  const bool double_charge =
      check::mutation_enabled(check::Mutation::kWorkDoubleCharge);

  // Select the awaiter execution mode once per run (see proc.h): fast runs
  // execute ops inline at suspension against the raw cell array, which is
  // stable until the next out-of-band extend().
  for (auto& ps : procs_) {
    ps.ctx->fast_cells_ = instrumented ? nullptr : memory_.data();
    ps.ctx->fast_words_ = memory_.size();
    ps.ctx->charge_local_twice_ = double_charge;
  }

  while (res.work < max_steps) {
    if (alive_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop_requested_) {
      res.stop_requested = true;
      stop_requested_ = false;
      break;
    }
    if (stop && res.work % check_interval == 0 && stop()) {
      res.predicate_hit = true;
      break;
    }

    // Consume up to the next stop-predicate boundary / work cap, but never
    // past either: a batch of k grants yields at most k work units, so
    // bounding the batch bounds the work.
    const std::uint64_t until_cap = max_steps - res.work;
    const std::uint64_t until_check =
        stop ? check_interval - (res.work % check_interval) : until_cap;
    const std::uint64_t want = std::min(until_cap, until_check);

    if (buf_pos_ == buf_len_) refill_grants();
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(buf_len_ - buf_pos_, want));
    // A batch that begins exactly on a predicate boundary must re-poll
    // after each grant that leaves the work count parked there (see
    // consume_batch's poll_on_dead contract).
    const bool poll_on_dead =
        stop != nullptr && res.work % check_interval == 0;
    if (instrumented)
      consume_batch(buf_pos_ + take, double_charge, poll_on_dead, res);
    else
      consume_batch_fast(buf_pos_ + take, double_charge, poll_on_dead, res);
  }
  return res;
}

Simulator::RunResult Simulator::run_single_step(
    std::uint64_t max_steps, const std::function<bool()>& stop,
    std::uint64_t check_interval) {
  // Reference engine: the pre-batching hot loop, byte-for-byte — including
  // its per-grant costs (one virtual next() and one thread-local mutation
  // probe per grant, instrumented grants throughout), so perfbench measures
  // the genuine pre-refactor engine.
  RunResult res;
  for (auto& ps : procs_) ps.ctx->fast_cells_ = nullptr;

  while (res.work < max_steps) {
    if (alive_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop_requested_) {
      res.stop_requested = true;
      stop_requested_ = false;
      break;
    }
    if (stop && res.work % check_interval == 0 && stop()) {
      res.predicate_hit = true;
      break;
    }

    // The schedule's clock ticks on every grant attempt, including grants to
    // finished processors (real time passes even when a processor is done).
    const std::size_t p = schedule_->next(tick_++);
    if (p >= procs_.size())
      throw std::logic_error("Simulator: schedule granted unknown proc");
    if (!grant_instrumented(
            p, check::mutation_enabled(check::Mutation::kWorkDoubleCharge))) {
      charge_starvation(tick_ - 1);
      continue;
    }
    res.work += 1;
  }
  // Keep the schedule-draw position in sync for the accessors (the
  // reference engine has no prefetch buffer).
  ticks_drawn_ = tick_;
  return res;
}

Simulator::RunResult Simulator::run(std::uint64_t max_steps,
                                    const std::function<bool()>& stop,
                                    std::uint64_t check_interval) {
  if (!started_) {
    started_ = true;
    alive_ = procs_.size();
    for (const auto& ps : procs_)
      if (ps.finished) --alive_;
    // procs_ and resume_slots_ stop growing once started: bind each Ctx to
    // its resume slot (the awaiters store suspension handles through it).
    for (std::size_t i = 0; i < procs_.size(); ++i)
      procs_[i].ctx->resume_slot_ = &resume_slots_[i];
  }
  if (check_interval == 0) check_interval = 1;

  if (engine_ == GrantEngine::kSingleStep)
    return run_single_step(max_steps, stop, check_interval);
  return run_batched(max_steps, stop, check_interval);
}

void Ctx::bump_extra_work() noexcept { sim_->work_ += 1; }

std::size_t Ctx::nprocs() const noexcept { return sim_->nprocs(); }

void Ctx::request_stop() const noexcept { sim_->request_stop(); }

}  // namespace apex::sim
