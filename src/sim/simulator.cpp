#include "sim/simulator.h"

#include <algorithm>
#include <cassert>
#include <span>
#include <string>

#include "check/mutation.h"

namespace apex::sim {

namespace {

/// Batched-engine prefetch depth.  One virtual Schedule::fill() call per
/// kGrantBatch grants amortizes dispatch to noise; leftovers persist in the
/// simulator's buffer, so a deep prefetch never changes what executes.
constexpr std::size_t kGrantBatch = 1024;

/// Event sub-batch: the instrumented engine delivers at most this many
/// StepEvents per on_steps span.  Sized so the buffer (kEventBatch *
/// sizeof(StepEvent) = 10 KB) stays comfortably L1-resident — at a full
/// kGrantBatch of 80-byte events the buffer alone is 80 KB, and every event
/// is written by the awaiter then re-read by the flush, so an L2-sized
/// buffer costs several ns per step in pure cache traffic (measured: 128 ->
/// ~108M instrumented steps/s, 256 -> ~100M, 512 -> ~80M, 1024 -> ~75M on
/// the bench box).  Span boundaries carry no semantics (see observer.h), so
/// the split is observable only as smaller spans.
constexpr std::size_t kEventBatch = 128;

}  // namespace

Simulator::Simulator(SimConfig cfg, std::unique_ptr<Schedule> schedule)
    : seeds_{cfg.seed},
      memory_(cfg.memory_words),
      schedule_(std::move(schedule)),
      nprocs_(cfg.nprocs),
      engine_(cfg.engine) {
  if (!schedule_) throw std::invalid_argument("Simulator: null schedule");
  if (schedule_->nprocs() != nprocs_)
    throw std::invalid_argument("Simulator: schedule nprocs mismatch");
  prefetchable_ = schedule_->is_prefetchable();
  starvation_limit_ =
      cfg.starvation_limit != 0
          ? cfg.starvation_limit
          : std::max<std::uint64_t>(1u << 20, 64 * nprocs_);
  procs_.reserve(nprocs_);
  grant_buf_.resize(kGrantBatch);
}

bool Simulator::grant_instrumented(std::size_t p, bool double_charge) {
  ProcState& ps = procs_[p];
  if (ps.finished) return false;

  auto top = ps.task.handle();
  Ctx& ctx = *ps.ctx;

  // Resume the deepest suspended coroutine (the top-level proc on the first
  // grant, otherwise wherever the last step awaiter suspended — possibly
  // inside nested SubTasks; see the resume-slot invariant in spawn()).
  // It runs protocol code until it requests the next atomic op (a step
  // awaiter records it in the Ctx) or the top-level coroutine finishes.
  // Plain computation between awaits is free; the op requested *by this
  // grant* executes below, atomically.  (This path keeps the pre-batching
  // per-grant shape so run_single_step stays an honest perf baseline.)
  std::coroutine_handle<>& slot = resume_slots_[p];
  std::coroutine_handle<> h = slot ? slot : std::coroutine_handle<>(top);
  slot = {};
  h.resume();

  if (top.promise().exception) [[unlikely]]
    std::rethrow_exception(top.promise().exception);

  StepEvent ev;
  ev.time = work_;
  ev.proc = p;

  if (top.done()) {
    ps.finished = true;
    --alive_;
    // The final resume still consumed the processor's step (it did the local
    // work of deciding to halt).
    ev.op = Op{Op::Kind::Local, 0, 0, 0};
  } else {
    const Op op = ctx.pending_;
    ev.op = op;
    switch (op.kind) {
      case Op::Kind::Read: {
        const Cell c = memory_.at(op.addr);
        ev.before = ev.after = c;
        ctx.result_ = c;
        break;
      }
      case Op::Kind::Write: {
        Cell& c = memory_.at(op.addr);
        ev.before = c;
        c = Cell{op.value, op.stamp};
        ev.after = c;
        ctx.result_ = c;
        break;
      }
      case Op::Kind::Local:
      case Op::Kind::None:
        ctx.result_ = Cell{};
        break;
    }
  }

  ctx.steps_ += 1;
  work_ += 1;
  if (double_charge && ev.op.kind == Op::Kind::Local)
    work_ += 1;  // self-test mutation: charge twice, emit one event
  observers_.on_step(ev);
  return true;
}

void Simulator::charge_starvation(std::uint64_t dead_tick) {
  // Schedule granted a finished processor; charge nothing but guard against
  // schedules that starve all remaining live processors.
  starvation_ = last_dead_tick_ + 1 == dead_tick ? starvation_ + 1 : 1;
  last_dead_tick_ = dead_tick;
  if (starvation_ > starvation_limit_)
    throw std::runtime_error("Simulator: schedule starved live processors");
}

void Simulator::refill_grants() {
  // Non-prefetchable schedules (adaptive, or externally steered between
  // run() calls) must be asked exactly when a grant is needed.  Oblivious
  // self-contained schedules depend only on (t, their private stream);
  // drawing them ahead of execution is invisible.
  const std::size_t want = prefetchable_ ? kGrantBatch : 1;
  // Empty the buffer BEFORE filling: if fill() throws and the caller
  // catches, a later run() must refill (re-raising the schedule's error)
  // rather than replay the previous batch's stale contents.
  buf_pos_ = 0;
  buf_len_ = 0;
  try {
    buf_len_ = schedule_->fill(
        std::span<std::uint32_t>(grant_buf_.data(), want), ticks_drawn_);
  } catch (...) {
    // refill happens only with an empty buffer, so the grant that faulted
    // is exactly the next one to execute: consume its tick before
    // propagating, as the single-step engine does (tick_++ before next()).
    ++tick_;
    ++ticks_drawn_;
    throw;
  }
  if (buf_len_ == 0 || buf_len_ > want)
    throw std::logic_error("Simulator: Schedule::fill returned bad count");
  ticks_drawn_ += buf_len_;
  validate_grants(0);
}

void Simulator::validate_grants(std::size_t from) {
  // Validate the buffer tail [from, buf_len_) so the consume loops skip
  // the per-grant range check: a vectorizable max-scan, then (only if a
  // bad grant exists) a scalar pass for its position.  A bad grant
  // poisons only its own position: everything before it executes first,
  // exactly as the single-step engine would.
  bad_grant_at_ = buf_len_;
  const std::uint32_t n = static_cast<std::uint32_t>(procs_.size());
  std::uint32_t maxg = 0;
  for (std::size_t i = from; i < buf_len_; ++i)
    maxg = std::max(maxg, grant_buf_[i]);
  if (maxg >= n) [[unlikely]] {
    for (std::size_t i = from; i < buf_len_; ++i)
      if (grant_buf_[i] >= n) {
        bad_grant_at_ = i;
        break;
      }
  }
}

void Simulator::consume_batch_instr(std::size_t end, bool double_charge,
                                    bool poll_on_dead, RunResult& res) {
  // The instrumented twin of consume_batch_fast below: same loop structure,
  // same register discipline, but each live grant's awaiter additionally
  // fills the current slot of the batch event buffer (through ev_cur_; the
  // loop pre-fills time/proc and advances the slot).  Delivery is deferred:
  // one on_steps(span) per kEventBatch events (and one for the remainder at
  // every exit of this function) down the deferred part of the chain — so
  // every executed step is delivered exactly once, in order, before any
  // stop-predicate poll and before any exception escapes.  Observers that demanded exact-step delivery
  // (step_synchronous) get per-step on_step calls at the same point the
  // single-step engine makes them.
  const std::uint32_t* const buf = grant_buf_.data();
  std::coroutine_handle<>* const slots = resume_slots_.data();
  StepEvent* const evs = event_buf_.data();
  StepEvent* const evs_cap = evs + event_buf_.size();
  StepObserver* const* const sync = sync_obs_.data();
  const std::size_t nsync = sync_obs_.size();
  if (bad_grant_at_ < buf_pos_) [[unlikely]] validate_grants(buf_pos_);
  const std::size_t safe_end = std::min(end, bad_grant_at_);
  const std::size_t pos0 = buf_pos_;
  std::size_t pos = pos0;
  // Grants consumed but charged no work: dead (finished-proc) grants plus
  // at most one trailing faulted grant (unknown proc / out-of-range
  // address — its tick is consumed, its work is not, its event is never
  // built; the single-step engine accounts faults the same way).
  std::uint64_t deads = 0;

  const auto flush = [&]() {
    buf_pos_ = pos;
    tick_ += pos - pos0;
    res.work += (pos - pos0) - deads;
    flush_observers();
    // Batch done, nothing mid-flight: recycle the buffer.
    ev_next_ = evs;
    ev_flushed_ = evs;
  };

  bool exhausted = true;
  try {
    while (pos < safe_end) {
      const std::size_t p = buf[pos];
      ++pos;
      const std::coroutine_handle<> h = slots[p];
      if (!h) [[unlikely]] {
        // Null slot = finished processor (spawn() invariant): no event.
        ++deads;
        charge_starvation(tick_ + (pos - 1 - pos0));
        if (poll_on_dead && pos - pos0 == deads) {
          exhausted = false;
          break;
        }
        continue;
      }
      // Pre-fill the current event slot; the awaiter fills op/before/after
      // through ev_next_ during the resume.  A protocol-hook flush inside
      // the resume delivers [ev_flushed_, ev_next_) — everything up to the
      // previous completed step — exactly as the single-step engine had at
      // that point.
      StepEvent* const e = ev_next_;
      e->time = work_;
      e->proc = p;
      slots[p] = {};
      h.resume();

      if (!slots[p]) [[unlikely]] {
        ProcState& ps = procs_[p];
        const auto top = ps.task.handle();
        if (top.promise().exception) [[unlikely]]
          std::rethrow_exception(top.promise().exception);
        // No awaiter ran: the final resume is the processor's halting Local
        // step — account it and eventize it here.
        ps.finished = true;
        --alive_;
        ps.ctx->steps_ += 1;
        e->op = Op{Op::Kind::Local, 0, 0, 0};
        e->before = Cell{};
        e->after = Cell{};
        ev_next_ = e + 1;
        work_ += 1;
        if (double_charge) [[unlikely]] work_ += 1;  // final resume is Local
        for (std::size_t i = 0; i < nsync; ++i) sync[i]->on_step(*e);
        if (ev_next_ == evs_cap) [[unlikely]] {
          flush_observers();
          ev_next_ = evs;
          ev_flushed_ = evs;
        }
        if (alive_ == 0 || stop_requested_) {
          exhausted = false;
          break;
        }
        continue;
      }

      if (oob_fault_) [[unlikely]] {
        // The awaiter refused an out-of-range address: nothing executed,
        // nothing charged, no event (ev_next_ stays put, so the pre-filled
        // slot is never delivered).  Consume the grant's tick (deads
        // neutralizes its work charge) and fault exactly as checked
        // Memory::at did on the pre-batching instrumented path.
        oob_fault_ = false;
        ++deads;
        throw std::out_of_range("apex::sim::Memory: address " +
                                std::to_string(oob_addr_) + " >= size " +
                                std::to_string(memory_.size()));
      }

      ev_next_ = e + 1;
      work_ += 1;
      for (std::size_t i = 0; i < nsync; ++i) sync[i]->on_step(*e);
      if (ev_next_ == evs_cap) [[unlikely]] {
        // Sub-batch full: deliver and recycle so the buffer stays
        // L1-resident (see kEventBatch).
        flush_observers();
        ev_next_ = evs;
        ev_flushed_ = evs;
      }
      if (stop_requested_) [[unlikely]] {
        exhausted = false;
        break;
      }
    }
    if (exhausted && pos == bad_grant_at_ && pos < end) {
      ++pos;    // the bad grant consumes its tick, then faults
      ++deads;  // ...but charges no work (it granted nothing)
      throw std::logic_error("Simulator: schedule granted unknown proc");
    }
  } catch (...) {
    flush();
    throw;
  }
  flush();
}

void Simulator::flush_observers_slow() {
  const std::span<const StepEvent> batch(
      ev_flushed_, static_cast<std::size_t>(ev_next_ - ev_flushed_));
  // Mark delivered BEFORE fanning out: a re-entrant flush from inside an
  // observer then no-ops instead of double-delivering.
  ev_flushed_ = ev_next_;
  for (StepObserver* o : batch_obs_) o->on_steps(batch);
}

void Simulator::consume_batch_fast(std::size_t end, bool double_charge,
                                   bool poll_on_dead, RunResult& res) {
  // The hot loop of the whole repo.  The atomic op itself is executed
  // inline by the step awaiter (fast mode, see proc.h) before the resume
  // returns, so each iteration is: resume, finish check, accounting.
  // Everything the resume cannot touch is hoisted into const locals;
  // counters the protocol can read mid-resume through Ctx accessors
  // (work_, ctx.steps_) stay per-step member updates, while run-local or
  // boundary-visible counters (res.work, tick_, buf_pos_, starvation_)
  // accumulate in registers and flush at every exit — including the
  // throwing ones, so a caught exception leaves the simulator consistent.
  const std::uint32_t* const buf = grant_buf_.data();
  std::coroutine_handle<>* const slots = resume_slots_.data();
  // A previously faulted grant was consumed and its exception caught:
  // re-validate the buffer tail so execution continues past it, exactly
  // as the single-step engine would.
  if (bad_grant_at_ < buf_pos_) [[unlikely]] validate_grants(buf_pos_);
  // Grants were range-validated at refill time; stop just before a bad one
  // so it faults exactly when the single-step engine would have.
  const std::size_t safe_end = std::min(end, bad_grant_at_);
  const std::size_t pos0 = buf_pos_;
  std::size_t pos = pos0;
  // Dead (finished-proc) grants consumed, maintained only on the cold
  // paths; the live grants of the batch are then (pos - pos0) - deads, so
  // the hot path carries no work/starvation counters at all.  The live
  // loop state (this, pos, buf, slots, safe_end + one temporary) fits the
  // callee-saved registers, so nothing spills across the resume call.
  std::uint64_t deads = 0;

  const auto flush = [&]() noexcept {
    buf_pos_ = pos;
    tick_ += pos - pos0;
    res.work += (pos - pos0) - deads;
  };

  bool exhausted = true;
  try {
    while (pos < safe_end) {
      const std::size_t p = buf[pos];
      ++pos;
      const std::coroutine_handle<> h = slots[p];
      if (!h) [[unlikely]] {
        // Null slot = finished processor (spawn() invariant).
        ++deads;
        charge_starvation(tick_ + (pos - 1 - pos0));
        // Work still parked on a predicate boundary: hand back for a
        // re-poll (matches the single-step engine's per-grant polling).
        if (poll_on_dead && pos - pos0 == deads) {
          exhausted = false;
          break;
        }
        continue;
      }
      // Clear before resuming: a suspension re-stores the slot (and the
      // awaiter accounts the step), so a slot still null afterwards means
      // the coroutine ran to completion or captured an exception on the
      // way to final_suspend — the two rare outcomes share one branch and
      // the common path probes no frame or ProcState lines at all.
      slots[p] = {};
      h.resume();

      if (!slots[p]) [[unlikely]] {
        ProcState& ps = procs_[p];
        const auto top = ps.task.handle();
        if (top.promise().exception) [[unlikely]]
          std::rethrow_exception(top.promise().exception);
        // No awaiter ran, so account the final step here.
        ps.finished = true;
        --alive_;
        ps.ctx->steps_ += 1;
        work_ += 1;
        if (double_charge) [[unlikely]] work_ += 1;  // final resume is Local
        if (alive_ == 0 || stop_requested_) {
          exhausted = false;
          break;
        }
        continue;
      }

      work_ += 1;
      if (stop_requested_) [[unlikely]] {
        exhausted = false;
        break;
      }
    }
    if (exhausted && pos == bad_grant_at_ && pos < end) {
      ++pos;  // the bad grant consumes its tick, then faults
      throw std::logic_error("Simulator: schedule granted unknown proc");
    }
  } catch (...) {
    flush();
    throw;
  }
  flush();
}

Simulator::RunResult Simulator::run_batched(
    std::uint64_t max_steps, const std::function<bool()>& stop,
    std::uint64_t check_interval) {
  RunResult res;
  const bool instrumented = !observers_.empty();
  const bool double_charge =
      check::mutation_enabled(check::Mutation::kWorkDoubleCharge);

  // Select the awaiter execution mode once per run (see proc.h): both modes
  // execute ops inline at suspension against the raw cell array, which is
  // stable until the next out-of-band extend(); instrumented runs
  // additionally route each step into the batch event buffer via ev_next_.
  if (instrumented) {
    // Partition the chain once per run: synchronous observers keep exact
    // per-step delivery (they read live simulator/memory state); the rest
    // get batched spans at flush points.  Registration order is preserved
    // within each class.
    sync_obs_.clear();
    batch_obs_.clear();
    for (StepObserver* o : observers_.members())
      (o->step_synchronous() ? sync_obs_ : batch_obs_).push_back(o);
    if (event_buf_.size() < kEventBatch) event_buf_.resize(kEventBatch);
    ev_next_ = event_buf_.data();
    ev_flushed_ = event_buf_.data();
  }
  for (auto& ps : procs_) {
    ps.ctx->fast_cells_ = memory_.data();
    ps.ctx->fast_words_ = memory_.size();
    ps.ctx->ev_cur_ = instrumented ? &ev_next_ : nullptr;
    ps.ctx->charge_local_twice_ = double_charge;
  }

  while (res.work < max_steps) {
    if (alive_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop_requested_) {
      res.stop_requested = true;
      stop_requested_ = false;
      break;
    }
    if (stop && res.work % check_interval == 0 && stop()) {
      res.predicate_hit = true;
      break;
    }

    // Consume up to the next stop-predicate boundary / work cap, but never
    // past either: a batch of k grants yields at most k work units, so
    // bounding the batch bounds the work.
    const std::uint64_t until_cap = max_steps - res.work;
    const std::uint64_t until_check =
        stop ? check_interval - (res.work % check_interval) : until_cap;
    const std::uint64_t want = std::min(until_cap, until_check);

    if (buf_pos_ == buf_len_) refill_grants();
    const std::size_t take = static_cast<std::size_t>(
        std::min<std::uint64_t>(buf_len_ - buf_pos_, want));
    // A batch that begins exactly on a predicate boundary must re-poll
    // after each grant that leaves the work count parked there (see
    // consume_batch's poll_on_dead contract).
    const bool poll_on_dead =
        stop != nullptr && res.work % check_interval == 0;
    if (instrumented)
      consume_batch_instr(buf_pos_ + take, double_charge, poll_on_dead, res);
    else
      consume_batch_fast(buf_pos_ + take, double_charge, poll_on_dead, res);
  }
  return res;
}

Simulator::RunResult Simulator::run_single_step(
    std::uint64_t max_steps, const std::function<bool()>& stop,
    std::uint64_t check_interval) {
  // Reference engine: the pre-batching hot loop, byte-for-byte — including
  // its per-grant costs (one virtual next() and one thread-local mutation
  // probe per grant, instrumented grants throughout), so perfbench measures
  // the genuine pre-refactor engine.
  RunResult res;
  for (auto& ps : procs_) {
    ps.ctx->fast_cells_ = nullptr;
    ps.ctx->ev_cur_ = nullptr;
  }

  while (res.work < max_steps) {
    if (alive_ == 0) {
      res.all_finished = true;
      break;
    }
    if (stop_requested_) {
      res.stop_requested = true;
      stop_requested_ = false;
      break;
    }
    if (stop && res.work % check_interval == 0 && stop()) {
      res.predicate_hit = true;
      break;
    }

    // The schedule's clock ticks on every grant attempt, including grants to
    // finished processors (real time passes even when a processor is done).
    const std::size_t p = schedule_->next(tick_++);
    if (p >= procs_.size())
      throw std::logic_error("Simulator: schedule granted unknown proc");
    if (!grant_instrumented(
            p, check::mutation_enabled(check::Mutation::kWorkDoubleCharge))) {
      charge_starvation(tick_ - 1);
      continue;
    }
    res.work += 1;
  }
  // Keep the schedule-draw position in sync for the accessors (the
  // reference engine has no prefetch buffer).
  ticks_drawn_ = tick_;
  return res;
}

Simulator::RunResult Simulator::run(std::uint64_t max_steps,
                                    const std::function<bool()>& stop,
                                    std::uint64_t check_interval) {
  if (!started_) {
    started_ = true;
    alive_ = procs_.size();
    for (const auto& ps : procs_)
      if (ps.finished) --alive_;
    // procs_ and resume_slots_ stop growing once started: bind each Ctx to
    // its resume slot (the awaiters store suspension handles through it).
    for (std::size_t i = 0; i < procs_.size(); ++i)
      procs_[i].ctx->resume_slot_ = &resume_slots_[i];
  }
  if (check_interval == 0) check_interval = 1;

  if (engine_ == GrantEngine::kSingleStep)
    return run_single_step(max_steps, stop, check_interval);
  return run_batched(max_steps, stop, check_interval);
}

void Ctx::bump_extra_work() noexcept { sim_->work_ += 1; }

void Ctx::flag_oob(std::size_t addr) noexcept {
  sim_->oob_fault_ = true;
  sim_->oob_addr_ = addr;
}

std::size_t Ctx::nprocs() const noexcept { return sim_->nprocs(); }

void Ctx::request_stop() const noexcept { sim_->request_stop(); }

}  // namespace apex::sim
