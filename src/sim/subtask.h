// Composable protocol sub-procedures.
//
// The paper's protocols decompose naturally: an agreement cycle calls a
// binary search; the driver loop calls Read-Clock / Update-Clock; the
// executor's Compute task evaluates f by reading program memory.  SubTask<T>
// lets each of these be its own coroutine, awaited from a parent with
// `co_await sub_fn(ctx, ...)`, while the simulator keeps granting exactly
// one atomic step per resume:
//
//   - SubTask is lazy: awaiting it symmetric-transfers into the child.
//   - A step awaiter (ctx.read/write/local) suspends the WHOLE stack by
//     recording the deepest handle in the Ctx and returning control to the
//     simulator.
//   - When the child co_returns, its final awaiter symmetric-transfers back
//     to the parent, which continues inside the same grant (returning from a
//     sub-procedure costs no model step — only atomic ops cost work).
#pragma once

#include <coroutine>
#include <exception>
#include <utility>

namespace apex::sim {

template <typename T>
class SubTask {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      // Hand control straight back to the awaiting parent.
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation = std::noop_coroutine();
    T value{};
    std::exception_ptr exception;

    SubTask get_return_object() { return SubTask(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(T v) { value = std::move(v); }
    void unhandled_exception() { exception = std::current_exception(); }
  };

  SubTask() = default;
  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  SubTask& operator=(SubTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  ~SubTask() { destroy(); }

  // Awaiter interface: `co_await some_subtask_fn(...)`.
  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;  // start the child (lazy start)
  }
  T await_resume() {
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
    return std::move(handle_.promise().value);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

template <>
class SubTask<void> {
 public:
  struct promise_type;
  using Handle = std::coroutine_handle<promise_type>;

  struct FinalAwaiter {
    bool await_ready() const noexcept { return false; }
    std::coroutine_handle<> await_suspend(Handle h) const noexcept {
      return h.promise().continuation;
    }
    void await_resume() const noexcept {}
  };

  struct promise_type {
    std::coroutine_handle<> continuation = std::noop_coroutine();
    std::exception_ptr exception;

    SubTask get_return_object() { return SubTask(Handle::from_promise(*this)); }
    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_void() noexcept {}
    void unhandled_exception() { exception = std::current_exception(); }
  };

  SubTask() = default;
  explicit SubTask(Handle h) : handle_(h) {}
  SubTask(SubTask&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}
  SubTask& operator=(SubTask&& o) noexcept {
    if (this != &o) {
      destroy();
      handle_ = std::exchange(o.handle_, {});
    }
    return *this;
  }
  SubTask(const SubTask&) = delete;
  SubTask& operator=(const SubTask&) = delete;
  ~SubTask() { destroy(); }

  bool await_ready() const noexcept { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> parent) noexcept {
    handle_.promise().continuation = parent;
    return handle_;
  }
  void await_resume() {
    if (handle_.promise().exception)
      std::rethrow_exception(handle_.promise().exception);
  }

 private:
  void destroy() noexcept {
    if (handle_) {
      handle_.destroy();
      handle_ = {};
    }
  }
  Handle handle_{};
};

}  // namespace apex::sim
