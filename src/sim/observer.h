// Out-of-band step observation.
//
// Observers run outside the A-PRAM model: they cost no work and must not
// mutate memory.  The simulator owns ONE CompositeObserver chain; any number
// of inspectors (testbed audits, invariant oracles, timeline recorders)
// attach side by side via Simulator::add_observer instead of fighting over a
// single slot.
//
// Delivery contract (batched engine).  The instrumented grant path fills a
// batch event buffer inline in the step awaiters — no per-step virtual
// calls, no per-step checked access — and flushes it as on_steps(span)
// calls down the chain at batch boundaries: sub-batch capacity (the buffer
// is kept L1-sized), stop-predicate checks, work caps, run() end, mid-batch
// exits (stop request, last processor finishing) and before any exception
// propagates out of run().
// What an observer may assume:
//   * every executed step is delivered exactly once, in execution order,
//     with the same StepEvent contents the pre-batching engine delivered;
//   * span boundaries are arbitrary (anything from 1 event up to the
//     engine's event-buffer capacity) and carry no meaning — never encode
//     protocol state in them;
//   * delivery happens before any stop predicate the driver polls, so
//     predicates that read observer state see every event up to the poll;
//   * events are delivered AFTER the fact: simulator/memory state at
//     on_steps time is the state at the END of the span, not at each step.
// An observer that must see live state at the exact step (e.g. an auditor
// that re-reads memory cells per event) overrides step_synchronous() to
// return true: the engine then calls its on_step at every step, at the same
// point the pre-batching engine did, while the rest of the chain still gets
// batched spans.
//
// The single-step reference engine always delivers per-step on_step calls
// down the whole chain (the genuine pre-batching behavior).
//
// Performance contract: the batched grant engine selects, once per run(),
// between the instrumented path above and a no-observer fast path (no event
// construction at all).  Attaching any observer switches the WHOLE run to
// the instrumented path; detach before time-critical runs.  Span-native
// observers should override on_steps and hoist per-event state out of the
// loop; the default on_steps forwards to on_step so existing observers keep
// working unchanged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "sim/proc.h"
#include "sim/word.h"

namespace apex::sim {

// struct StepEvent lives in proc.h (the instrumented batched engine fills
// events inline in the step awaiters); re-exported here, where its consumers
// look for it.

/// Out-of-band observer.  Hooks run outside the model: they cost no work and
/// must not mutate memory.  Used by the Lemma inspectors and the oracles.
class StepObserver {
 public:
  virtual ~StepObserver() = default;

  /// One step.  The single-step engine and synchronous delivery call this
  /// per step; the default on_steps below also lands here.
  virtual void on_step(const StepEvent& ev) = 0;

  /// A batch of consecutive steps in execution order (see the delivery
  /// contract above).  Override for span-native consumption; the default
  /// loop keeps per-step observers working unchanged.
  virtual void on_steps(std::span<const StepEvent> evs) {
    for (const StepEvent& ev : evs) on_step(ev);
  }

  /// Return true to demand per-step delivery at the exact step time even
  /// under the batched engine (for observers that read live simulator or
  /// memory state from on_step).  Checked once per run().
  virtual bool step_synchronous() const noexcept { return false; }
};

/// Ordered fan-out chain.  Delivery order is registration order, and the
/// chain is itself a StepObserver, so chains nest.  Not owning: callers keep
/// their observers alive for the duration of the runs they watch.
class CompositeObserver final : public StepObserver {
 public:
  void add(StepObserver* o) {
    if (o != nullptr) list_.push_back(o);
  }

  void remove(StepObserver* o) {
    list_.erase(std::remove(list_.begin(), list_.end(), o), list_.end());
  }

  void clear() noexcept { list_.clear(); }
  bool empty() const noexcept { return list_.empty(); }
  std::size_t size() const noexcept { return list_.size(); }

  /// The attached observers, in registration (= delivery) order.  The
  /// batched engine partitions them per run() by step_synchronous().
  const std::vector<StepObserver*>& members() const noexcept { return list_; }

  void on_step(const StepEvent& ev) override {
    for (auto* o : list_) o->on_step(ev);
  }

  void on_steps(std::span<const StepEvent> evs) override {
    for (auto* o : list_) o->on_steps(evs);
  }

  /// A chain is synchronous if any member is: a nested composite with one
  /// synchronous member keeps exact-step delivery for the whole sub-chain.
  bool step_synchronous() const noexcept override {
    for (auto* o : list_)
      if (o->step_synchronous()) return true;
    return false;
  }

 private:
  std::vector<StepObserver*> list_;
};

}  // namespace apex::sim
