// Out-of-band step observation.
//
// Observers run outside the A-PRAM model: they cost no work and must not
// mutate memory.  The simulator owns ONE CompositeObserver chain; any number
// of inspectors (testbed audits, invariant oracles, timeline recorders)
// attach side by side via Simulator::add_observer instead of fighting over a
// single slot.
//
// Performance contract: the batched grant engine selects, once per run(),
// between an instrumented grant path (builds a StepEvent per step, delivers
// it down the chain) and a no-observer fast path (no event construction at
// all).  Attaching any observer therefore switches the WHOLE run to the
// instrumented path; detach before time-critical runs.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/proc.h"
#include "sim/word.h"

namespace apex::sim {

/// One executed atomic step, as seen by an observer.
struct StepEvent {
  std::uint64_t time = 0;   ///< Global step index (work units so far - 1).
  std::size_t proc = 0;
  Op op{};
  Cell before{};            ///< Cell content before the op (reads: == after).
  Cell after{};             ///< Cell content after the op.
};

/// Out-of-band observer.  Hooks run outside the model: they cost no work and
/// must not mutate memory.  Used by the Lemma inspectors and the oracles.
class StepObserver {
 public:
  virtual ~StepObserver() = default;
  virtual void on_step(const StepEvent& ev) = 0;
};

/// Ordered fan-out chain.  Delivery order is registration order, and the
/// chain is itself a StepObserver, so chains nest.  Not owning: callers keep
/// their observers alive for the duration of the runs they watch.
class CompositeObserver final : public StepObserver {
 public:
  void add(StepObserver* o) {
    if (o != nullptr) list_.push_back(o);
  }

  void remove(StepObserver* o) {
    list_.erase(std::remove(list_.begin(), list_.end(), o), list_.end());
  }

  void clear() noexcept { list_.clear(); }
  bool empty() const noexcept { return list_.empty(); }
  std::size_t size() const noexcept { return list_.size(); }

  void on_step(const StepEvent& ev) override {
    for (auto* o : list_) o->on_step(ev);
  }

 private:
  std::vector<StepObserver*> list_;
};

}  // namespace apex::sim
