// The bin array (paper §3).
//
// An array of n bins, one per consensus value; each bin has B = β·log n
// timestamped cells.  The same physical array is reused across all phases of
// the execution scheme: a cell is FILLED (for phase π) iff its stamp equals
// π, and EMPTY otherwise — stale stamps from earlier phases count as empty,
// which is how the protocol distinguishes current from obsolete values
// without ever clearing memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/memory.h"
#include "util/math.h"

namespace apex::agreement {

class BinArray {
 public:
  /// Carve an n-bin array with `cells_per_bin` cells per bin out of `mem`.
  BinArray(sim::Memory& mem, std::size_t n, std::size_t cells_per_bin)
      : mem_(&mem), n_(n), b_(cells_per_bin), base_(mem.extend(n * cells_per_bin)) {}

  /// Canonical sizing: B = β·lg n (min 4 so the halves are non-degenerate).
  static std::size_t cells_for(std::size_t n, std::size_t beta) {
    return std::max<std::size_t>(4, beta * lg(n));
  }

  std::size_t bins() const noexcept { return n_; }
  std::size_t cells_per_bin() const noexcept { return b_; }
  std::size_t base_addr() const noexcept { return base_; }
  std::size_t size_words() const noexcept { return n_ * b_; }

  /// Address of Bin_i[j] (0-based cell index; the paper's Bin_i[1] is j=0).
  std::size_t addr(std::size_t bin, std::size_t cell) const noexcept {
    return base_ + bin * b_ + cell;
  }

  /// First cell index of the "upper half" [B/2, B) from which agreement
  /// values are read (paper §3, "Obtaining the agreement values").
  std::size_t upper_half_begin() const noexcept { return b_ / 2; }

  bool owns(std::size_t a) const noexcept {
    return a >= base_ && a < base_ + n_ * b_;
  }
  std::size_t bin_of(std::size_t a) const noexcept { return (a - base_) / b_; }
  std::size_t cell_of(std::size_t a) const noexcept { return (a - base_) % b_; }

  // ---- Out-of-band inspection (costs no model work) ------------------------

  bool filled(std::size_t bin, std::size_t cell, sim::Word phase) const {
    return mem_->at(addr(bin, cell)).stamp == phase;
  }

  sim::Word value(std::size_t bin, std::size_t cell) const {
    return mem_->at(addr(bin, cell)).value;
  }

  /// The frontier: lowest cell index never written in phase `phase`
  /// ... as far as stamps can tell: lowest index whose stamp != phase and
  /// with no higher filled cell below it is not distinguishable from a
  /// clobbered hole, so this returns the lowest empty index (the quantity
  /// the in-model binary search approximates).
  std::size_t first_empty(std::size_t bin, sim::Word phase) const {
    for (std::size_t j = 0; j < b_; ++j)
      if (!filled(bin, j, phase)) return j;
    return b_;
  }

  /// Number of filled cells in the upper half.
  std::size_t upper_half_filled(std::size_t bin, sim::Word phase) const {
    std::size_t cnt = 0;
    for (std::size_t j = upper_half_begin(); j < b_; ++j)
      cnt += filled(bin, j, phase);
    return cnt;
  }

  /// All distinct values currently filled in the upper half.
  std::vector<sim::Word> upper_half_values(std::size_t bin,
                                           sim::Word phase) const {
    std::vector<sim::Word> vals;
    for (std::size_t j = upper_half_begin(); j < b_; ++j) {
      if (!filled(bin, j, phase)) continue;
      const sim::Word v = value(bin, j);
      bool seen = false;
      for (auto w : vals) seen |= (w == v);
      if (!seen) vals.push_back(v);
    }
    return vals;
  }

  /// The agreed value if the upper half exposes exactly one (out-of-band).
  std::optional<sim::Word> agreed_value(std::size_t bin, sim::Word phase) const {
    const auto vals = upper_half_values(bin, phase);
    if (vals.size() == 1) return vals[0];
    return std::nullopt;
  }

 private:
  sim::Memory* mem_;
  std::size_t n_;
  std::size_t b_;
  std::size_t base_;
};

}  // namespace apex::agreement
