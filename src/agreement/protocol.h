// The agreement protocol (paper §3, Fig. 2).
//
// Processors repeatedly execute identical CYCLES.  One cycle:
//   line 1   choose a bin Bin_i uniformly at random           (1 local step)
//   lines 2-4  binary-search Bin_i for its first empty cell j
//              ("empty" = stamp != current phase)             (⌈log2(B+1)⌉ reads)
//   line 5+  if j = 1: evaluate f_i^(π) and write (v, π) to Bin_i[1]
//            else: re-read Bin_i[j-1]; if it is filled, copy its value to
//            Bin_i[j] with stamp π; a stale re-read (the cell was clobbered
//            between the search probe and now) writes nothing.
//   pad with no-ops so EVERY cycle costs exactly ω steps, independent of
//   all random choices (§3 "Work Per Cycle").
//
// ω = Θ(log log n) because B = β·log n, so the search is ⌈log2(B+1)⌉ =
// Θ(log log n) probes and everything else is O(1).
//
// After O(n log n) cycles — O(n log n log log n) work — every bin has, with
// high probability, a unique stable value readable from its upper half
// (Theorem 1).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "agreement/bin_array.h"
#include "clock/phase_clock.h"
#include "sim/proc.h"
#include "sim/subtask.h"

namespace apex::agreement {

/// Result of evaluating f_i^(π): the computed value, or nullopt when the
/// evaluation could not complete (e.g. the execution scheme's Compute task
/// found an operand not yet written — the cycle then writes nothing and the
/// task is retried by a later cycle).
using TaskResult = std::optional<sim::Word>;

/// Evaluates the nondeterministic function f_i^(π) for bin `i` in phase
/// `phase`.  May read shared memory and draw from ctx.rng(); must cost at
/// most `AgreementConfig::compute_steps` atomic steps on every invocation.
using TaskFn = std::function<sim::SubTask<TaskResult>(
    sim::Ctx& ctx, std::size_t i, sim::Word phase)>;

struct AgreementConfig {
  std::size_t n = 0;            ///< Number of values = number of bins.
  std::size_t beta = 8;         ///< Bin has B = β·lg n cells.
  std::size_t compute_steps = 1;///< Upper bound on TaskFn's step cost.

  std::size_t cells_per_bin() const { return BinArray::cells_for(n, beta); }

  /// Binary-search probe count: fixed for a given B (range [−1, B] halves
  /// deterministically), hence identical across cycles.
  std::size_t search_probes() const {
    return ceil_log2(cells_per_bin() + 1);
  }

  /// ω: the exact per-cycle step budget.  Covers the worst of the two write
  /// branches: 1 (bin choice) + probes + max(compute_steps + 1, 2).
  std::uint64_t omega() const {
    const std::uint64_t tail =
        std::max<std::uint64_t>(compute_steps + 1, 2);
    return 1 + search_probes() + tail;
  }
};

/// Everything a processor needs to run agreement cycles.
struct AgreementRuntime;

/// Record of one executed cycle, for the Lemma inspectors (timing fields
/// are global work-unit indices, matching the paper's S[C], D[C], F[C]).
struct CycleRecord {
  std::size_t proc = 0;
  std::size_t bin = 0;
  sim::Word phase = 0;     ///< The phase stamp this cycle used (may be stale).
  std::uint64_t s_time = 0;///< Global time at cycle start.
  std::uint64_t d_time = 0;///< Global time after the search, before writing.
  std::uint64_t f_time = 0;///< Global time at cycle end (after padding).
  int wrote_cell = -1;     ///< Cell index written, -1 if the cycle wrote nothing.
  sim::Word wrote_value = 0;
  bool evaluated_f = false;///< True when the cycle computed f (wrote cell 0).
};

/// Protocol-level observer (out-of-band; must not mutate shared memory).
class AgreementObserver {
 public:
  virtual ~AgreementObserver() = default;
  virtual void on_cycle(const CycleRecord&) {}
  /// A processor's local phase estimate changed to `phase`.
  virtual void on_phase_enter(std::size_t /*proc*/, sim::Word /*phase*/) {}
};

struct AgreementRuntime {
  AgreementConfig cfg;
  BinArray* bins = nullptr;
  clockx::PhaseClock* clock = nullptr;
  TaskFn task;
  AgreementObserver* observer = nullptr;
};

/// One cycle of the agreement procedure (Fig. 2), at phase estimate `phase`.
/// Costs exactly cfg.omega() atomic steps.
sim::SubTask<void> agreement_cycle(sim::Ctx& ctx, AgreementRuntime& rt,
                                   sim::Word phase);

/// Obtain agreement value NewVal[i]: scan the upper half of Bin_i and
/// return the first filled value (paper §3 "Obtaining the agreement
/// values").  Expected O(1) probes once Accessibility holds (at least half
/// the scanned cells are filled); at most B − ⌊B/2⌋ reads when the bin is
/// not ready, in which case nullopt is returned and the caller retries.
sim::SubTask<std::optional<sim::Word>> read_agreed(sim::Ctx& ctx,
                                                   const BinArray& bins,
                                                   std::size_t i,
                                                   sim::Word phase);

/// The standalone driver (§3): loop cycles forever; every lg n cycles,
/// invoke Update-Clock and re-read the Phase Clock (phase = tick + 1).
/// Used by the Theorem 1 / Lemma benches; the full execution scheme embeds
/// cycles in its own driver (src/exec).
sim::ProcTask agreement_proc(sim::Ctx& ctx, AgreementRuntime& rt);

namespace detail {
/// Binary search (Fig. 2 lines 2-4) for the first empty cell of `bin` at
/// `phase`.  Exactly ⌈log2(B+1)⌉ probe reads, independent of contents.
/// With holes present the result may land on a hole rather than the true
/// frontier, exactly as the paper's analysis allows.  Exposed for tests.
sim::SubTask<std::size_t> search_first_empty(sim::Ctx& ctx,
                                             const BinArray& bins,
                                             std::size_t bin, sim::Word phase);
}  // namespace detail

}  // namespace apex::agreement
