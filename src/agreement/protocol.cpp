#include "agreement/protocol.h"

#include <stdexcept>

#include "check/mutation.h"
#include "sim/simulator.h"

namespace apex::agreement {

namespace detail {

/// Maintains lo = highest index observed filled (or -1) and hi = lowest
/// index observed empty (or B); the range [lo, hi] halves deterministically,
/// so the probe count depends only on B, never on contents.
sim::SubTask<std::size_t> search_first_empty(sim::Ctx& ctx, const BinArray& bins,
                                             std::size_t bin, sim::Word phase) {
  const std::size_t b = bins.cells_per_bin();
  const std::size_t probes = ceil_log2(b + 1);
  std::ptrdiff_t lo = -1;
  std::ptrdiff_t hi = static_cast<std::ptrdiff_t>(b);
  // Exactly `probes` reads on every invocation (§3 "Work Per Cycle" needs
  // cycle cost independent of contents): once the range is resolved, the
  // remaining probes re-read cell 0 as padding.
  for (std::size_t k = 0; k < probes; ++k) {
    if (hi - lo > 1) {
      const std::ptrdiff_t mid = lo + (hi - lo) / 2;
      const sim::Cell c =
          co_await ctx.read(bins.addr(bin, static_cast<std::size_t>(mid)));
      if (c.stamp == phase)
        lo = mid;
      else
        hi = mid;
    } else {
      co_await ctx.read(bins.addr(bin, 0));
    }
  }
  co_return static_cast<std::size_t>(hi);
}

}  // namespace detail

sim::SubTask<void> agreement_cycle(sim::Ctx& ctx, AgreementRuntime& rt,
                                   sim::Word phase) {
  const BinArray& bins = *rt.bins;
  const std::size_t b = bins.cells_per_bin();
  const std::uint64_t omega = rt.cfg.omega();
  const std::uint64_t start_steps = ctx.steps();

  CycleRecord rec;
  rec.proc = ctx.id();
  rec.phase = phase;
  rec.s_time = ctx.simulator().total_work();

  // Line 1: choose a bin uniformly at random (one local step: the draw).
  const std::size_t i = static_cast<std::size_t>(ctx.rng().below(bins.bins()));
  co_await ctx.local();
  rec.bin = i;

  // Lines 2-4: binary search for the first empty cell.
  const std::size_t j = co_await detail::search_first_empty(ctx, bins, i, phase);
  rec.d_time = ctx.simulator().total_work();

  // Self-test mutation (check/mutation.h): a processor that stops
  // refreshing its write timestamp once the clock has ticked.
  sim::Word write_stamp = phase;
  if (check::mutation_enabled(check::Mutation::kStaleStamp) && phase > 1)
    write_stamp = phase - 1;

  if (j == 0) {
    // Line 5-9: first cell empty — evaluate f_i^(π); write it unless the
    // evaluation could not complete (operand unavailable).
    const TaskResult v = co_await rt.task(ctx, i, phase);
    if (v.has_value()) {
      co_await ctx.write(bins.addr(i, 0), *v, write_stamp);
      rec.wrote_cell = 0;
      rec.wrote_value = *v;
      rec.evaluated_f = true;
    }
  } else if (j < b) {
    // Lines 10-11: copy forward from the previous cell.  Re-read it: the
    // search observed it filled, but it may have been clobbered since; a
    // stale value must never be given a current stamp.
    const sim::Cell prev = co_await ctx.read(bins.addr(i, j - 1));
    if (prev.stamp == phase) {
      sim::Word v = prev.value;
      if (check::mutation_enabled(check::Mutation::kCopyOffByOne)) v += 1;
      co_await ctx.write(bins.addr(i, j), v, write_stamp);
      rec.wrote_cell = static_cast<int>(j);
      rec.wrote_value = v;
    }
  }
  // j == b: bin already full; nothing to write.

  // Pad with no-ops so every cycle costs exactly ω steps regardless of the
  // branch taken (§3 "Work Per Cycle").
  if (ctx.steps() - start_steps > omega)
    throw std::logic_error("agreement_cycle: omega underestimates cycle cost");
  while (ctx.steps() - start_steps < omega) co_await ctx.local();

  rec.f_time = ctx.simulator().total_work();
  if (rt.observer != nullptr) {
    // Out-of-band protocol event: deliver buffered step events first, so an
    // observer consuming both streams (e.g. ClockOracle) sees them
    // interleaved exactly as the single-step engine interleaves them.
    ctx.simulator().flush_observers();
    rt.observer->on_cycle(rec);
  }
  co_return;
}

sim::SubTask<std::optional<sim::Word>> read_agreed(sim::Ctx& ctx,
                                                   const BinArray& bins,
                                                   std::size_t i,
                                                   sim::Word phase) {
  // Scan the upper half and stop at the first filled cell.  Once
  // accessibility holds, at least half these cells are filled, so the
  // expected probe count is O(1); the worst case (nothing found) is B/2
  // reads and returns nullopt, letting the caller retry later.
  for (std::size_t j = bins.upper_half_begin(); j < bins.cells_per_bin(); ++j) {
    const sim::Cell c = co_await ctx.read(bins.addr(i, j));
    if (c.stamp == phase) co_return std::optional<sim::Word>{c.value};
  }
  co_return std::optional<sim::Word>{};
}

sim::ProcTask agreement_proc(sim::Ctx& ctx, AgreementRuntime& rt) {
  const std::uint64_t clock_stride = lg(rt.cfg.n);
  sim::Word phase = 1;
  for (std::uint64_t cycle = 0;; ++cycle) {
    // Clock maintenance every lg n cycles, staggered by processor id so
    // that under a lockstep schedule the Θ(log n)-step Read-Clock blocks
    // do not all land in the same window (which would starve a whole
    // stage of complete cycles — see bench E3).
    if ((cycle + ctx.id()) % clock_stride == 0) {
      co_await rt.clock->update(ctx);
      const std::uint64_t tick = co_await rt.clock->read(ctx);
      const sim::Word new_phase = tick + 1;
      if (new_phase != phase) {
        phase = new_phase;
        if (rt.observer != nullptr) {
          ctx.simulator().flush_observers();  // see on_cycle below
          rt.observer->on_phase_enter(ctx.id(), phase);
        }
      }
    }
    co_await agreement_cycle(ctx, rt, phase);
  }
}

}  // namespace apex::agreement
