// Out-of-band inspectors for the agreement protocol.
//
// Everything here observes the simulation without costing model work, so
// measuring the paper's Lemmas never perturbs the protocol:
//   * TheoremChecker  — Theorem 1's four properties, by scanning the bins.
//   * ClobberAudit    — Lemma 1 (clobbers per bin), frontier/hole tracking
//                       (Lemma 3), and per-cell value conflicts (Lemma 7's
//                       stability point), keyed to the TRUE phase derived
//                       from the Phase Clock's exact state.
//   * StageAnalysis   — Lemma 2 (complete cycles per stage), Definition 2 /
//                       Lemma 6 (stabilizing structures) from CycleRecords.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "agreement/bin_array.h"
#include "agreement/protocol.h"
#include "clock/phase_clock.h"
#include "sim/simulator.h"

namespace apex::agreement {

/// Predicate: is `v` a legal value of f_i (the support of the
/// nondeterministic function)?  Used for Theorem 1's Correctness property.
using SupportFn = std::function<bool(std::size_t i, sim::Word v)>;

struct TheoremStatus {
  bool accessibility = false;  ///< >= half of upper-half cells filled, every bin.
  bool uniqueness = false;     ///< Filled upper-half cells agree within each bin.
  bool correctness = false;    ///< Every agreed value is in f_i's support.
  bool all() const noexcept {
    return accessibility && uniqueness && correctness;
  }
};

class TheoremChecker {
 public:
  TheoremChecker(const BinArray& bins, SupportFn support)
      : bins_(&bins), support_(std::move(support)) {}

  /// Full evaluation of the three scannable properties at `phase`.
  /// (Stability is temporal; tests assert it by re-checking later.)
  TheoremStatus check(sim::Word phase) const;

  /// Fast conjunction with early exit — suitable as a simulator stop
  /// predicate.
  bool satisfied(sim::Word phase) const;

  /// Agreed value per bin (nullopt where the upper half is not unanimous or
  /// empty).
  std::vector<std::optional<sim::Word>> values(sim::Word phase) const;

 private:
  const BinArray* bins_;
  SupportFn support_;
};

/// Per-phase statistics finalized by ClobberAudit when the true phase
/// advances (or on demand via snapshot()).
struct PhaseAudit {
  sim::Word phase = 0;
  std::uint64_t work_begin = 0;
  std::uint64_t work_end = 0;            ///< Valid in finalized reports.
  std::vector<std::uint32_t> clobbers;   ///< Per bin.
  std::vector<std::uint32_t> stable_from;///< Per bin: first cell index from
                                         ///< which no value conflicts occur.
  std::uint32_t max_clobbers() const;
  double mean_clobbers() const;
  std::uint32_t max_stable_from() const;
};

class ClobberAudit final : public sim::StepObserver {
 public:
  ClobberAudit(const BinArray& bins, const clockx::PhaseClock& clock);

  /// Span-native (consumes only event fields + static geometry, so deferred
  /// batch delivery is exact); on_step forwards as a span of one.
  void on_step(const sim::StepEvent& ev) override {
    on_steps(std::span<const sim::StepEvent>(&ev, 1));
  }
  void on_steps(std::span<const sim::StepEvent> evs) override;

  /// Reports for phases that have already ended.
  const std::vector<PhaseAudit>& finalized() const noexcept { return done_; }

  /// Audit of the still-running phase.
  PhaseAudit snapshot() const;

  sim::Word true_phase() const noexcept { return true_phase_; }

  /// Current frontier (lowest never-written cell) of `bin` this phase.
  std::size_t frontier(std::size_t bin) const;

  /// Holes in `bin`: cells below the frontier that are currently empty.
  std::size_t holes(std::size_t bin) const;

 private:
  void roll_phase(sim::Word new_phase, std::uint64_t work_now);

  const BinArray* bins_;
  const clockx::PhaseClock* clock_;
  std::uint64_t clock_total_ = 0;  ///< Exact update count, tracked incrementally.
  sim::Word true_phase_ = 1;

  // Current-phase shadows, indexed [bin][cell].
  std::vector<std::vector<std::uint8_t>> ever_written_;
  std::vector<std::vector<std::uint8_t>> filled_;
  std::vector<std::vector<sim::Word>> first_value_;
  std::vector<std::vector<std::uint8_t>> has_value_;
  std::vector<std::vector<std::uint8_t>> conflict_;
  PhaseAudit current_;
  std::vector<PhaseAudit> done_;
};

/// Stage decomposition (§4.1): stage k (1-based) is the k-th consecutive
/// interval containing 3ωn work units.  Consumes CycleRecords and, at
/// finalize(), reports Lemma 2 / Lemma 6 statistics.
class StageAnalysis final : public AgreementObserver {
 public:
  /// `stage_len` = 3·ω·n work units; `nbins` = number of bins.
  StageAnalysis(std::uint64_t stage_len, std::size_t nbins)
      : stage_len_(stage_len), nbins_(nbins) {}

  void on_cycle(const CycleRecord& rec) override { records_.push_back(rec); }

  struct Report {
    /// Complete cycles (whole execution inside one stage) per stage, over
    /// all bins (Lemma 2 predicts each full stage holds between n and 3n).
    std::vector<std::uint64_t> complete_per_stage;
    /// Stabilizing structures found (Definition 2), over all bins and
    /// disjoint stage pairs (2k-1, 2k).
    std::uint64_t stabilizing_structures = 0;
    /// Stage pairs examined (nbins x floor(stages/2)).
    std::uint64_t pairs_examined = 0;
    /// Per-bin stabilizing structure counts.
    std::vector<std::uint64_t> per_bin_structures;
  };

  /// Analyze all records seen so far.  `complete_stages_only`: drop the
  /// final partial stage.
  Report finalize() const;

  std::uint64_t stage_len() const noexcept { return stage_len_; }
  std::size_t record_count() const noexcept { return records_.size(); }

 private:
  std::uint64_t stage_len_;
  std::size_t nbins_;
  std::vector<CycleRecord> records_;
};

/// Fan-out helpers: the runtime and simulator each take a single observer.
class AgreementObserverMux final : public AgreementObserver {
 public:
  void add(AgreementObserver* o) { list_.push_back(o); }
  void on_cycle(const CycleRecord& r) override {
    for (auto* o : list_) o->on_cycle(r);
  }
  void on_phase_enter(std::size_t p, sim::Word ph) override {
    for (auto* o : list_) o->on_phase_enter(p, ph);
  }

 private:
  std::vector<AgreementObserver*> list_;
};

/// Step-observer fan-out is now a simulator facility (the Simulator owns a
/// CompositeObserver chain; attach with Simulator::add_observer).  The old
/// mux name survives for code that builds standalone chains.
using StepObserverMux = sim::CompositeObserver;

}  // namespace apex::agreement
