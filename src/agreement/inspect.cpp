#include "agreement/inspect.h"

#include <algorithm>
#include <map>

namespace apex::agreement {

// ---------------------------------------------------------------------------
// TheoremChecker
// ---------------------------------------------------------------------------

TheoremStatus TheoremChecker::check(sim::Word phase) const {
  TheoremStatus st;
  st.accessibility = true;
  st.uniqueness = true;
  st.correctness = true;
  const std::size_t b = bins_->cells_per_bin();
  const std::size_t upper = b - bins_->upper_half_begin();
  for (std::size_t i = 0; i < bins_->bins(); ++i) {
    const std::size_t filled = bins_->upper_half_filled(i, phase);
    if (2 * filled < upper) st.accessibility = false;
    const auto vals = bins_->upper_half_values(i, phase);
    if (vals.size() > 1) st.uniqueness = false;
    if (vals.size() == 1 && support_ && !support_(i, vals[0]))
      st.correctness = false;
  }
  return st;
}

bool TheoremChecker::satisfied(sim::Word phase) const {
  const std::size_t b = bins_->cells_per_bin();
  const std::size_t upper = b - bins_->upper_half_begin();
  for (std::size_t i = 0; i < bins_->bins(); ++i) {
    const std::size_t filled = bins_->upper_half_filled(i, phase);
    if (2 * filled < upper) return false;
    const auto vals = bins_->upper_half_values(i, phase);
    if (vals.size() != 1) return false;
    if (support_ && !support_(i, vals[0])) return false;
  }
  return true;
}

std::vector<std::optional<sim::Word>> TheoremChecker::values(
    sim::Word phase) const {
  std::vector<std::optional<sim::Word>> out(bins_->bins());
  for (std::size_t i = 0; i < bins_->bins(); ++i)
    out[i] = bins_->agreed_value(i, phase);
  return out;
}

// ---------------------------------------------------------------------------
// PhaseAudit
// ---------------------------------------------------------------------------

std::uint32_t PhaseAudit::max_clobbers() const {
  std::uint32_t m = 0;
  for (auto c : clobbers) m = std::max(m, c);
  return m;
}

double PhaseAudit::mean_clobbers() const {
  if (clobbers.empty()) return 0.0;
  double s = 0;
  for (auto c : clobbers) s += c;
  return s / static_cast<double>(clobbers.size());
}

std::uint32_t PhaseAudit::max_stable_from() const {
  std::uint32_t m = 0;
  for (auto c : stable_from) m = std::max(m, c);
  return m;
}

// ---------------------------------------------------------------------------
// ClobberAudit
// ---------------------------------------------------------------------------

ClobberAudit::ClobberAudit(const BinArray& bins,
                           const clockx::PhaseClock& clock)
    : bins_(&bins), clock_(&clock) {
  const std::size_t n = bins.bins();
  const std::size_t b = bins.cells_per_bin();
  ever_written_.assign(n, std::vector<std::uint8_t>(b, 0));
  filled_.assign(n, std::vector<std::uint8_t>(b, 0));
  first_value_.assign(n, std::vector<sim::Word>(b, 0));
  has_value_.assign(n, std::vector<std::uint8_t>(b, 0));
  conflict_.assign(n, std::vector<std::uint8_t>(b, 0));
  current_.phase = 1;
  current_.work_begin = 0;
  current_.clobbers.assign(n, 0);
  current_.stable_from.assign(n, 0);
}

void ClobberAudit::roll_phase(sim::Word new_phase, std::uint64_t work_now) {
  // Finalize the phase that just ended.
  current_.work_end = work_now;
  for (std::size_t i = 0; i < bins_->bins(); ++i) {
    std::uint32_t sf = 0;
    for (std::size_t j = 0; j < bins_->cells_per_bin(); ++j)
      if (conflict_[i][j]) sf = static_cast<std::uint32_t>(j + 1);
    current_.stable_from[i] = sf;
  }
  done_.push_back(current_);

  // Reset shadows for the new phase.
  const std::size_t n = bins_->bins();
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(ever_written_[i].begin(), ever_written_[i].end(), 0);
    std::fill(filled_[i].begin(), filled_[i].end(), 0);
    std::fill(has_value_[i].begin(), has_value_[i].end(), 0);
    std::fill(conflict_[i].begin(), conflict_[i].end(), 0);
  }
  current_ = PhaseAudit{};
  current_.phase = new_phase;
  current_.work_begin = work_now;
  current_.clobbers.assign(n, 0);
  current_.stable_from.assign(n, 0);
  true_phase_ = new_phase;
}

void ClobberAudit::on_steps(std::span<const sim::StepEvent> evs) {
  // Hoisted out of the per-event loop: the geometry filters (the bulk of a
  // span is reads and locals, dismissed on the kind branch alone) and the
  // clock threshold.  Phase state stays in members — roll_phase rewrites it.
  const clockx::PhaseClock* const clock = clock_;
  const BinArray* const bins = bins_;
  const std::uint64_t threshold = clock->threshold();

  for (const sim::StepEvent& ev : evs) {
    if (ev.op.kind != sim::Op::Kind::Write) continue;

    if (clock->owns(ev.op.addr)) {
      // Track the exact number of increments without rescanning: each clock
      // write stores before+1 when un-raced; a racy write can repeat a
      // value (lost update), in which case the delta is <= 0 and total is
      // unchanged.
      if (ev.after.value > ev.before.value)
        clock_total_ += ev.after.value - ev.before.value;
      const sim::Word tick = clock_total_ / threshold;
      if (tick + 1 != true_phase_) roll_phase(tick + 1, ev.time + 1);
      continue;
    }

    if (!bins->owns(ev.op.addr)) continue;
    const std::size_t i = bins->bin_of(ev.op.addr);
    const std::size_t j = bins->cell_of(ev.op.addr);

    if (ev.op.stamp == true_phase_) {
      ever_written_[i][j] = 1;
      filled_[i][j] = 1;
      if (!has_value_[i][j]) {
        has_value_[i][j] = 1;
        first_value_[i][j] = ev.op.value;
      } else if (first_value_[i][j] != ev.op.value) {
        conflict_[i][j] = 1;
      }
    } else {
      // A write carrying a non-current stamp: a tardy processor operating
      // for an earlier phase.  That is a clobber of the current phase (it
      // turns a current cell stale / creates a hole below the frontier).
      current_.clobbers[i] += 1;
      filled_[i][j] = 0;
    }
  }
}

PhaseAudit ClobberAudit::snapshot() const {
  PhaseAudit out = current_;
  for (std::size_t i = 0; i < bins_->bins(); ++i) {
    std::uint32_t sf = 0;
    for (std::size_t j = 0; j < bins_->cells_per_bin(); ++j)
      if (conflict_[i][j]) sf = static_cast<std::uint32_t>(j + 1);
    out.stable_from[i] = sf;
  }
  return out;
}

std::size_t ClobberAudit::frontier(std::size_t bin) const {
  const auto& ew = ever_written_.at(bin);
  for (std::size_t j = 0; j < ew.size(); ++j)
    if (!ew[j]) return j;
  return ew.size();
}

std::size_t ClobberAudit::holes(std::size_t bin) const {
  const std::size_t f = frontier(bin);
  std::size_t h = 0;
  for (std::size_t j = 0; j < f; ++j) h += (filled_.at(bin)[j] == 0);
  return h;
}

// ---------------------------------------------------------------------------
// StageAnalysis
// ---------------------------------------------------------------------------

StageAnalysis::Report StageAnalysis::finalize() const {
  Report rep;
  rep.per_bin_structures.assign(nbins_, 0);
  if (records_.empty() || stage_len_ == 0) return rep;

  auto stage_of = [&](std::uint64_t t) { return t / stage_len_; };  // 0-based

  std::uint64_t max_f_stage = 0;
  for (const auto& r : records_)
    max_f_stage = std::max(max_f_stage, stage_of(r.f_time));
  // Only stages that certainly completed (everything before the last one).
  const std::uint64_t nstages = max_f_stage;  // stages 0..nstages-1 complete
  if (nstages == 0) return rep;

  rep.complete_per_stage.assign(nstages, 0);

  // Per (bin, stage) summaries for Definition 2.
  struct BinStage {
    std::uint64_t complete = 0;  ///< Cycles with S,F both in the stage.
    std::uint64_t d_escape = 0;  ///< Cycles with D in the stage but F outside.
  };
  std::map<std::pair<std::size_t, std::uint64_t>, BinStage> bs;

  for (const auto& r : records_) {
    const std::uint64_t ss = stage_of(r.s_time);
    const std::uint64_t sd = stage_of(r.d_time);
    const std::uint64_t sf = stage_of(r.f_time);
    if (ss == sf && ss < nstages) {
      rep.complete_per_stage[ss] += 1;
      bs[{r.bin, ss}].complete += 1;
    }
    if (sd != sf && sd < nstages) bs[{r.bin, sd}].d_escape += 1;
  }

  // Disjoint stage pairs: paper's (Π_{2k-1}, Π_{2k}) with 1-based stages is
  // 0-based pairs (2m, 2m+1).
  const std::uint64_t npairs = nstages / 2;
  rep.pairs_examined = npairs * nbins_;
  for (std::uint64_t m = 0; m < npairs; ++m) {
    for (std::size_t bin = 0; bin < nbins_; ++bin) {
      const auto a = bs.find({bin, 2 * m});
      const auto b = bs.find({bin, 2 * m + 1});
      const bool ok_a =
          a != bs.end() && a->second.complete == 1 && a->second.d_escape == 0;
      const bool ok_b =
          b != bs.end() && b->second.complete == 1 && b->second.d_escape == 0;
      if (ok_a && ok_b) {
        rep.stabilizing_structures += 1;
        rep.per_bin_structures[bin] += 1;
      }
    }
  }
  return rep;
}

}  // namespace apex::agreement
