#include "agreement/testbed.h"

namespace apex::agreement {

namespace {

// Coroutine bodies are free functions with by-value parameters: coroutine
// lambdas with captures are a lifetime hazard (the frame outlives the
// lambda object), so the wrappers below return immediately-constructed
// SubTasks instead.
sim::SubTask<TaskResult> uniform_draw(sim::Ctx& ctx, sim::Word k) {
  co_await ctx.local();  // the random draw is one basic computation
  co_return TaskResult{ctx.rng().below(k)};
}

sim::SubTask<TaskResult> coin_draw(sim::Ctx& ctx, double p) {
  co_await ctx.local();
  co_return TaskResult{ctx.rng().coin(p) ? 1 : 0};
}

sim::SubTask<TaskResult> identity_value(sim::Ctx& ctx, std::size_t i) {
  co_await ctx.local();
  co_return TaskResult{static_cast<sim::Word>(i)};
}

}  // namespace

TaskFn uniform_task(sim::Word k) {
  return [k](sim::Ctx& ctx, std::size_t, sim::Word) {
    return uniform_draw(ctx, k);
  };
}

SupportFn uniform_support(sim::Word k) {
  return [k](std::size_t, sim::Word v) { return v < k; };
}

TaskFn coin_task(double p) {
  return [p](sim::Ctx& ctx, std::size_t, sim::Word) {
    return coin_draw(ctx, p);
  };
}

SupportFn coin_support() {
  return [](std::size_t, sim::Word v) { return v <= 1; };
}

TaskFn identity_task() {
  return [](sim::Ctx& ctx, std::size_t i, sim::Word) {
    return identity_value(ctx, i);
  };
}

SupportFn identity_support() {
  return [](std::size_t i, sim::Word v) { return v == static_cast<sim::Word>(i); };
}

AgreementTestbed::AgreementTestbed(TestbedConfig cfg, TaskFn task,
                                   SupportFn support)
    : cfg_(cfg) {
  sim::SimConfig sc;
  sc.nprocs = cfg.n;
  sc.memory_words = 0;
  sc.seed = cfg.seed;
  sc.engine = cfg.engine;
  apex::SeedTree seeds{cfg.seed};
  auto schedule = cfg.schedule_factory
                      ? cfg.schedule_factory(cfg.n, seeds.schedule())
                      : sim::make_schedule(cfg.schedule, cfg.n,
                                           seeds.schedule());
  sim_ = std::make_unique<sim::Simulator>(sc, std::move(schedule));

  clockx::ClockConfig cc;
  cc.nprocs = cfg.n;
  cc.alpha = cfg.clock_alpha;
  clock_ = std::make_unique<clockx::PhaseClock>(sim_->memory(), cc);

  bins_ = std::make_unique<BinArray>(sim_->memory(), cfg.n,
                                     BinArray::cells_for(cfg.n, cfg.beta));

  rt_.cfg.n = cfg.n;
  rt_.cfg.beta = cfg.beta;
  rt_.cfg.compute_steps = cfg.compute_steps;
  rt_.bins = bins_.get();
  rt_.clock = clock_.get();
  rt_.task = std::move(task);
  rt_.observer = &obs_mux_;

  checker_ = std::make_unique<TheoremChecker>(*bins_, std::move(support));
  audit_ = std::make_unique<ClobberAudit>(*bins_, *clock_);
  sim_->add_observer(audit_.get());

  for (std::size_t p = 0; p < cfg.n; ++p)
    sim_->spawn([this](sim::Ctx& ctx) { return agreement_proc(ctx, rt_); });
}

AgreementTestbed::Result AgreementTestbed::run_until_agreement(
    std::uint64_t max_work, sim::Word phase) {
  // Check the predicate about once per n work units: each check scans the
  // upper halves (O(n log n) cells), so checking too often would dominate
  // wall-clock time without affecting the measured model work.
  const std::uint64_t interval =
      std::max<std::uint64_t>(64, cfg_.n / 2);
  const auto res = sim_->run(
      max_work, [&] { return checker_->satisfied(phase); }, interval);
  return Result{sim_->total_work(), res.predicate_hit};
}

void AgreementTestbed::run_more(std::uint64_t work) { sim_->run(work); }

}  // namespace apex::agreement
