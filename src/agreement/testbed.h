// A self-contained harness that assembles memory, Phase Clock, bin array,
// runtime and n agreement processors for STANDALONE agreement runs (the
// setting of Theorem 1).  Shared by the unit/property tests and by benches
// E1-E7, so every experiment measures exactly the same protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "agreement/inspect.h"
#include "agreement/protocol.h"
#include "clock/phase_clock.h"
#include "sim/simulator.h"

namespace apex::agreement {

struct TestbedConfig {
  std::size_t n = 0;                  ///< Processors = bins = values.
  std::size_t beta = 8;               ///< Bin size multiplier.
  // Clock tick threshold α·n.  α must comfortably exceed β: a phase lasts
  // ~α·n·lg n cycles, so each bin receives ~α·lg n random writes against the
  // β·lg n cells it must fill — the paper's "proper choice of constants α1,
  // α2" (§2.1).  α = 3β gives a 4x margin over the ¾-fill the Theorem 1
  // predicate needs.
  double clock_alpha = 24.0;
  std::uint64_t seed = 1;
  sim::ScheduleKind schedule = sim::ScheduleKind::kUniformRandom;
  std::size_t compute_steps = 1;      ///< Step budget of the task function.
  /// Grant engine for the underlying simulator (the fuzzer's engine-
  /// equivalence corpus runs the same trial through both).
  sim::GrantEngine engine = sim::GrantEngine::kBatched;

  /// When set, overrides `schedule`: called once with (nprocs, schedule-
  /// stream rng) to build the adversary.  The fuzzer uses this to drive the
  /// testbed with FuzzedSchedule / shrunk ScriptedSchedule repros.
  std::function<std::unique_ptr<sim::Schedule>(std::size_t, apex::Rng)>
      schedule_factory;
};

/// Canonical nondeterministic task: each evaluation draws uniformly from
/// [0, k) using the evaluating processor's private stream (support: [0,k)).
TaskFn uniform_task(sim::Word k);
SupportFn uniform_support(sim::Word k);

/// Biased coin: value 1 with probability p, else 0 (support: {0,1}).
TaskFn coin_task(double p);
SupportFn coin_support();

/// Deterministic task: f_i = i (support: {i}).  Lets tests distinguish
/// "agreement converged" from "agreement converged on a valid value".
TaskFn identity_task();
SupportFn identity_support();

class AgreementTestbed {
 public:
  AgreementTestbed(TestbedConfig cfg, TaskFn task, SupportFn support);

  struct Result {
    std::uint64_t work = 0;   ///< Total work when the predicate fired.
    bool satisfied = false;   ///< Theorem 1 (scannable part) reached.
  };

  /// Run until Theorem 1's accessibility+uniqueness+correctness hold for
  /// `phase` (default: phase 1), or until `max_work` is exhausted.
  Result run_until_agreement(std::uint64_t max_work, sim::Word phase = 1);

  /// Run an additional fixed amount of work (no predicate) — used to verify
  /// Stability after agreement is reached.
  void run_more(std::uint64_t work);

  sim::Simulator& simulator() noexcept { return *sim_; }
  BinArray& bins() noexcept { return *bins_; }
  clockx::PhaseClock& clock() noexcept { return *clock_; }
  TheoremChecker& checker() noexcept { return *checker_; }
  ClobberAudit& audit() noexcept { return *audit_; }
  AgreementRuntime& runtime() noexcept { return rt_; }
  const TestbedConfig& config() const noexcept { return cfg_; }

  /// Attach an extra protocol-level observer (e.g. StageAnalysis).
  /// Must be called before run().
  void attach(AgreementObserver* obs) { obs_mux_.add(obs); }

  /// Attach an extra raw step observer: joins the simulator's observer
  /// chain after the built-in ClobberAudit.
  void attach(sim::StepObserver* obs) { sim_->add_observer(obs); }

 private:
  TestbedConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<clockx::PhaseClock> clock_;
  std::unique_ptr<BinArray> bins_;
  std::unique_ptr<TheoremChecker> checker_;
  std::unique_ptr<ClobberAudit> audit_;
  AgreementRuntime rt_;
  AgreementObserverMux obs_mux_;
};

}  // namespace apex::agreement
