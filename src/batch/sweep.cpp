#include "batch/sweep.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>

namespace apex::batch {

namespace {

std::string format_errors(const std::vector<TrialError>& errors) {
  std::string msg = "sweep: " + std::to_string(errors.size()) +
                    " trial(s) threw:";
  for (const auto& e : errors)
    msg += "\n  trial " + std::to_string(e.trial) + ": " + e.message;
  return msg;
}

/// Run one trial, capturing any exception as (ok=false, error=what).
TrialResult guarded(const SweepEngine::TrialFn& fn, std::size_t trial) {
  try {
    return fn(trial);
  } catch (const std::exception& e) {
    TrialResult r;
    r.ok = false;
    r.error = e.what();
    return r;
  } catch (...) {
    TrialResult r;
    r.ok = false;
    r.error = "unknown exception";
    return r;
  }
}

}  // namespace

SweepError::SweepError(std::vector<TrialError> errors)
    : std::runtime_error(format_errors(errors)), errors_(std::move(errors)) {}

void GroupStats::merge(const TrialResult& r) {
  ++trials_;
  if (!r.ok) ++failed_;
  for (const auto& [name, value] : r.samples()) samples_[name].add(value);
  for (const auto& [name, delta] : r.counts()) counts_[name] += delta;
}

const Accumulator& GroupStats::sample(const std::string& name) const {
  static const Accumulator kEmpty;
  const auto it = samples_.find(name);
  return it == samples_.end() ? kEmpty : it->second;
}

double GroupStats::count(const std::string& name) const {
  const auto it = counts_.find(name);
  return it == counts_.end() ? 0.0 : it->second;
}

std::size_t SweepEngine::resolve_jobs(std::size_t requested) {
  if (requested != 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

std::vector<TrialResult> SweepEngine::run(const SweepSpec& spec,
                                          const TrialFn& fn) const {
  std::vector<TrialResult> out(spec.trials);
  if (spec.trials > 0) {
    const std::size_t jobs = std::min(resolve_jobs(spec.jobs), spec.trials);
    if (jobs <= 1) {
      for (std::size_t i = 0; i < spec.trials; ++i) out[i] = guarded(fn, i);
    } else {
      // Lock-free dispatch: workers claim the next unstarted trial index and
      // write the result into its slot.  Claim order is racy; slot placement
      // (and therefore everything downstream) is not.
      std::atomic<std::size_t> next{0};
      std::vector<std::thread> pool;
      pool.reserve(jobs);
      for (std::size_t w = 0; w < jobs; ++w) {
        pool.emplace_back([&] {
          for (;;) {
            const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= spec.trials) return;
            out[i] = guarded(fn, i);
          }
        });
      }
      for (auto& t : pool) t.join();
    }
  }
  if (!spec.keep_going) {
    std::vector<TrialError> errors;
    for (std::size_t i = 0; i < out.size(); ++i)
      if (!out[i].error.empty()) errors.push_back({i, out[i].error});
    if (!errors.empty()) throw SweepError(std::move(errors));
  }
  return out;
}

std::vector<GroupStats> SweepEngine::run_grouped(const SweepSpec& spec,
                                                 const TrialFn& fn,
                                                 std::size_t group_size) const {
  if (group_size == 0 || spec.trials % group_size != 0)
    throw std::invalid_argument(
        "sweep: trials must be a positive multiple of group_size");
  const auto results = run(spec, fn);
  std::vector<GroupStats> groups(results.size() / group_size);
  for (std::size_t i = 0; i < results.size(); ++i)
    groups[i / group_size].merge(results[i]);
  return groups;
}

}  // namespace apex::batch
