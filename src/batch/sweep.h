// Multi-threaded sweep engine for the experiment harness.
//
// Every reproduction binary answers the same shaped question: run many
// INDEPENDENT simulation trials — one apex::sim::Simulator universe per
// (config, seed) grid point — and aggregate per-trial measurements into the
// table the paper's theorem predicts.  The seed drivers hand-rolled that as
// serial `for n / for seed` loops; this subsystem factors it out and runs
// the trials across a std::thread worker pool.
//
// Determinism contract: trials are enumerated up-front (indices 0..trials-1),
// dispatched to workers through a single atomic work index, and their
// TrialResults are MERGED IN TRIAL-INDEX ORDER on the calling thread after
// the pool drains.  Trial functions derive all randomness from their trial
// index (the drivers seed each Simulator from it), so aggregate output —
// Accumulator moments, counters, table rows — is bit-identical regardless of
// `jobs`.  Thread count changes wall-clock only, never results.
//
// Errors: a trial that throws is captured (index + message) and reported,
// never swallowed.  By default SweepEngine::run rethrows the failure set as
// a SweepError once all trials finish; SweepSpec::keep_going instead records
// the error on the trial's TrialResult for the caller to inspect.
#pragma once

#include <cstddef>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.h"

namespace apex::batch {

/// Measurement bag produced by one simulation trial.
///
/// Two merge semantics, chosen per metric name:
///   - samples: observations folded into a per-group Accumulator
///     (mean/ci95/min/max/count) — e.g. total work of a run, per-stage
///     complete-cycle counts;
///   - counts: additive tallies — e.g. histogram buckets for a chi-square
///     test, "structures observed".
/// Insertion order within a trial is preserved, so a group merge visits
/// every observation in a deterministic order.
class TrialResult {
 public:
  /// Record one observation of `name` (may repeat; all are kept).
  void sample(std::string name, double value) {
    samples_.emplace_back(std::move(name), value);
  }

  /// Add `delta` to the additive counter `name`.
  void count(std::string name, double delta = 1.0) {
    counts_.emplace_back(std::move(name), delta);
  }

  /// Trial-level predicate: did the run satisfy what the experiment needs?
  /// (e.g. agreement reached within budget).  A false trial still merges its
  /// metrics; GroupStats tracks the failure tally.
  bool ok = true;

  /// Non-empty iff the trial function threw and SweepSpec::keep_going was
  /// set; holds the exception message.
  std::string error;

  const std::vector<std::pair<std::string, double>>& samples() const noexcept {
    return samples_;
  }
  const std::vector<std::pair<std::string, double>>& counts() const noexcept {
    return counts_;
  }

 private:
  std::vector<std::pair<std::string, double>> samples_;
  std::vector<std::pair<std::string, double>> counts_;
};

/// What to run: `trials` grid points across `jobs` worker threads.
struct SweepSpec {
  std::size_t trials = 0;
  /// Worker threads; 0 = hardware concurrency, 1 = run inline (no pool).
  std::size_t jobs = 1;
  /// Record trial exceptions on TrialResult::error instead of throwing a
  /// SweepError after the sweep completes.
  bool keep_going = false;
};

/// A trial that threw: its index and the exception message.
struct TrialError {
  std::size_t trial = 0;
  std::string message;
};

/// Deterministic failure report: every throwing trial, in index order.
class SweepError : public std::runtime_error {
 public:
  explicit SweepError(std::vector<TrialError> errors);
  const std::vector<TrialError>& errors() const noexcept { return errors_; }

 private:
  std::vector<TrialError> errors_;
};

/// Index-order aggregation of a contiguous block of TrialResults — the
/// per-table-row statistics every driver needs.
class GroupStats {
 public:
  /// Fold one trial in.  Callers must merge in ascending trial index for the
  /// deterministic-output guarantee to hold.
  void merge(const TrialResult& r);

  /// Accumulator over every `sample(name, ...)` observation in the group
  /// (a shared empty accumulator when the name was never recorded).
  const Accumulator& sample(const std::string& name) const;

  /// Sum of every `count(name, ...)` delta in the group (0 when absent).
  double count(const std::string& name) const;

  std::size_t trials() const noexcept { return trials_; }
  std::size_t failed() const noexcept { return failed_; }
  bool all_ok() const noexcept { return failed_ == 0; }

 private:
  std::size_t trials_ = 0;
  std::size_t failed_ = 0;
  std::map<std::string, Accumulator> samples_;
  std::map<std::string, double> counts_;
};

class SweepEngine {
 public:
  using TrialFn = std::function<TrialResult(std::size_t trial)>;

  /// Map 0 to std::thread::hardware_concurrency (at least 1).
  static std::size_t resolve_jobs(std::size_t requested);

  /// Run fn(0..spec.trials-1) across the pool; return results in trial-index
  /// order.  Throws SweepError (all failing trials, ascending index) unless
  /// spec.keep_going.
  std::vector<TrialResult> run(const SweepSpec& spec, const TrialFn& fn) const;

  /// run() + partition the results into consecutive groups of `group_size`
  /// trials, merged in index order.  This is the shape of every bench sweep:
  /// grid point i replicated `group_size` times (one seed each) makes group
  /// i.  `spec.trials` must be a multiple of `group_size`.
  std::vector<GroupStats> run_grouped(const SweepSpec& spec, const TrialFn& fn,
                                      std::size_t group_size) const;
};

}  // namespace apex::batch
