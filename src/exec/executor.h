// The execution scheme (paper §2, Fig. 1).
//
// An n-thread EREW PRAM program runs on the n-processor asynchronous host
// as a sequence of PHASES, one per PRAM step.  Each phase has two
// subphases, driven by the Phase Clock (subphase = clock tick):
//
//   Compute (even tick 2s):  the n tasks are "evaluate instruction i of
//     step s".  In the NONDETERMINISTIC scheme (the paper's contribution)
//     evaluation happens inside bin-array agreement cycles, so that by the
//     end of the subphase all processors agree on every NewVal[i] even
//     though f may be randomized.  In the DETERMINISTIC baseline scheme
//     (Aumann-Rabin style, §1 related work) each evaluation writes
//     NewVal[i] directly — correct only for deterministic f.
//
//   Copy (odd tick 2s+1):  the n tasks are "copy NewVal[i] into z_i",
//     stamping the write with the step number.  Copying an agreed value is
//     idempotent, which is why the split-execution discipline (introduced
//     in [Kedem-Palem-Spirakis 90]) tolerates every task being executed
//     many times by many processors.
//
// Processors repeatedly pick tasks of the CURRENT subphase uniformly at
// random and interleave clock updates; the clock's [α1·n, α2·n] bracket is
// tuned so each subphase sees Θ(n log n) task executions — enough, w.h.p.,
// to cover all n tasks (and to complete agreement) before the tick advances.
// This is a with-high-probability guarantee, not a barrier: the monitor
// records any subphase that ended incomplete (`incomplete_tasks`), which is
// the scheme's designed failure mode and occurs with probability O(n^-c).
//
// Program variables live in G-generation timestamped slots: the write of
// step s goes to slot (s+1) mod G with stamp s+1, and a reader that
// statically expects writer step w accepts only stamp w+1 (see
// DESIGN.md §2 substitution 4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "agreement/bin_array.h"
#include "agreement/protocol.h"
#include "clock/phase_clock.h"
#include "pram/interp.h"
#include "pram/program.h"
#include "sim/simulator.h"

namespace apex::exec {

enum class Scheme {
  kNondeterministic,  ///< The paper's scheme: agreement in every Compute.
  kDeterministic,     ///< Baseline: direct NewVal writes (no agreement).
};

const char* scheme_name(Scheme s) noexcept;

struct ExecConfig {
  /// G generation slots per program variable.  Must be >= 3: the commit
  /// audit runs one phase after each Copy subphase and is race-free only
  /// while the slot cannot yet be reused (see Monitor in executor.cpp).
  std::size_t generations = 4;
  std::size_t beta = 8;         ///< Bin sizing (nondeterministic scheme).
  // Updates per tick = α·n.  Must comfortably exceed β so each Compute
  // subphase (~α·n·lg n agreement cycles) fills every β·lg n-cell bin with
  // margin; see TestbedConfig::clock_alpha.
  double clock_alpha = 24.0;
  std::uint64_t seed = 1;
  sim::ScheduleKind schedule = sim::ScheduleKind::kUniformRandom;
  /// Grant engine for the underlying simulator (the differential suite runs
  /// every workload under both).
  sim::GrantEngine engine = sim::GrantEngine::kBatched;
  /// When set, overrides `schedule`: called with (nprocs, schedule-stream
  /// rng) to build the adversary.  The fuzzer drives workloads with
  /// FuzzedSchedule / shrunk ScriptedSchedule repros through this.
  std::function<std::unique_ptr<sim::Schedule>(std::size_t, apex::Rng)>
      schedule_factory;
};

struct ExecResult {
  bool completed = false;        ///< All 2·T subphases elapsed.
  std::uint64_t total_work = 0;  ///< Work units consumed (paper's measure).
  std::vector<pram::Word> memory;///< Final value of each program variable.
  /// Committed (agreed) value per (step, thread), audited from the
  /// generation slots one phase after each Copy subphase ends (stragglers
  /// on estimated ticks have landed by then); feeds
  /// pram::check_execution_consistency.
  std::vector<std::vector<pram::Word>> produced;
  /// Commit audits that found unfinished work (a destination slot still
  /// missing its stamp a full phase after the Copy subphase ended) — the
  /// scheme's designed w.h.p. failure mode.  0 in a clean run.
  std::uint64_t incomplete_tasks = 0;
  /// Compute-task operand reads that found a stale/missing stamp and
  /// retried.  Nonzero is normal under hostile schedules; it measures
  /// wasted attempts, not corruption.
  std::uint64_t stamp_misses = 0;
};

class Executor {
 public:
  Executor(const pram::Program& program, Scheme scheme, ExecConfig cfg);
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Execute the program to completion (or until max_work).
  ExecResult run(std::uint64_t max_work);

  /// Suggested work budget for a program: generous multiple of the paper's
  /// bound T · n · lg n · lglg n.
  static std::uint64_t default_budget(const pram::Program& p);

  const pram::Program& program() const noexcept { return *prog_; }
  sim::Simulator& simulator() noexcept { return *sim_; }

  /// The scheme's phase clock (for out-of-band oracles / inspectors).
  clockx::PhaseClock& clock() noexcept;
  /// The agreement bin array; nullptr under the deterministic scheme.
  agreement::BinArray* bins() noexcept;
  /// Protocol-level observer for the agreement cycles (on_cycle /
  /// on_phase_enter).  No-op under the deterministic scheme.  Set before
  /// run(); the caller keeps ownership.
  void set_agreement_observer(agreement::AgreementObserver* obs) noexcept;

 private:
  struct Impl;
  const pram::Program* prog_;
  Scheme scheme_;
  ExecConfig cfg_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Impl> impl_;
};

/// Convenience: build, run, and consistency-check a program under the given
/// scheme.  Returns the ExecResult plus the consistency-oracle verdict
/// (empty string = consistent with some valid synchronous execution).
struct CheckedRun {
  ExecResult result;
  std::string consistency_error;
};
CheckedRun run_checked(const pram::Program& p, Scheme scheme, ExecConfig cfg,
                       std::uint64_t max_work = 0);

}  // namespace apex::exec
