#include "exec/executor.h"

#include <algorithm>
#include <stdexcept>

#include "util/math.h"

namespace apex::exec {

const char* scheme_name(Scheme s) noexcept {
  return s == Scheme::kNondeterministic ? "nondet" : "det";
}

// ---------------------------------------------------------------------------
// Impl: memory layout, task procedures, driver, and the subphase monitor.
// ---------------------------------------------------------------------------

struct Executor::Impl {
  const pram::Program* prog;
  Scheme scheme;
  ExecConfig cfg;
  sim::Simulator* sim;

  std::unique_ptr<clockx::PhaseClock> clock;
  std::unique_ptr<agreement::BinArray> bins;  // nondet scheme only
  std::size_t var_base = 0;
  std::size_t newval_base = 0;                // det scheme only
  agreement::AgreementRuntime rt;             // nondet scheme only

  // Diagnostics (single-threaded simulation: plain counters suffice).
  std::uint64_t stamp_misses = 0;

  std::size_t n() const { return prog->nthreads(); }
  std::size_t T() const { return prog->nsteps(); }

  /// Address of generation slot for (variable, writer-stamp).
  std::size_t var_addr(std::uint32_t var, sim::Word stamp) const {
    return var_base + static_cast<std::size_t>(var) * cfg.generations +
           static_cast<std::size_t>(stamp % cfg.generations);
  }

  std::size_t newval_addr(std::size_t i) const { return newval_base + i; }

  // --- In-model task procedures ------------------------------------------

  /// Read one operand variable, accepting only the statically expected
  /// writer stamp.  Returns nullopt on a stale/missing stamp.
  sim::SubTask<agreement::TaskResult> read_operand(sim::Ctx& ctx,
                                                   std::uint32_t var,
                                                   std::uint32_t writer) {
    const sim::Word want = pram::stamp_of_writer(writer);
    const sim::Cell c = co_await ctx.read(var_addr(var, want));
    if (c.stamp != want) {
      ++stamp_misses;
      co_return agreement::TaskResult{};
    }
    co_return agreement::TaskResult{c.value};
  }

  /// Evaluate instruction `i` of step `s` (reads operands, one local step
  /// to compute / draw).  Costs at most 4 atomic steps — 5 when the
  /// program contains kGatherDyn (3 operand reads + 1 segment read).
  sim::SubTask<agreement::TaskResult> eval_task(sim::Ctx& ctx, std::size_t s,
                                                std::size_t i) {
    const pram::Instr& ins = prog->step(s).instrs[i];
    if (ins.op == pram::OpCode::kNop) {
      co_await ctx.local();
      co_return agreement::TaskResult{0};
    }
    const auto& w = prog->writers(s, i);
    const int r = pram::reads_of(ins.op);
    sim::Word xv = 0, yv = 0, cv = 0;
    if (r >= 1) {
      const auto v = co_await read_operand(ctx, ins.x, w.x);
      if (!v) co_return agreement::TaskResult{};
      xv = *v;
    }
    if (ins.op == pram::OpCode::kGather) {
      // Data-dependent addressing: the index value xv picks the target
      // variable at run time; the writer table answers "who last wrote it
      // before step s" for EVERY variable, so the timestamp discipline is
      // unchanged — only the table lookup moves to run time.
      const std::uint32_t target = pram::gather_target(ins, xv);
      if (target != pram::kGatherOutOfRange) {
        const auto v = co_await read_operand(
            ctx, target,
            prog->last_writer_before(s, target));
        if (!v) co_return agreement::TaskResult{};
        yv = *v;
      }
      co_await ctx.local();
      co_return agreement::TaskResult{yv};
    }
    if (r >= 2) {
      const auto v = co_await read_operand(ctx, ins.y, w.y);
      if (!v) co_return agreement::TaskResult{};
      yv = *v;
    }
    if (r >= 3) {
      const auto v = co_await read_operand(ctx, ins.c, w.c);
      if (!v) co_return agreement::TaskResult{};
      cv = *v;
    }
    if (ins.op == pram::OpCode::kGatherDyn) {
      // Like kGather, but base and bound came from the x/y/c operand reads
      // above; the static segment caps the computed target, so the writer
      // table covers it the same way.
      const std::uint32_t target =
          pram::gather_dyn_target(ins, xv + yv, cv);
      sim::Word wv = 0;
      if (target != pram::kGatherOutOfRange) {
        const auto v = co_await read_operand(
            ctx, target, prog->last_writer_before(s, target));
        if (!v) co_return agreement::TaskResult{};
        wv = *v;
      }
      co_await ctx.local();
      co_return agreement::TaskResult{wv};
    }
    co_await ctx.local();  // the basic computation / random draw
    switch (ins.op) {
      case pram::OpCode::kRandBelow:
        co_return agreement::TaskResult{ins.imm == 0 ? 0
                                                     : ctx.rng().below(ins.imm)};
      case pram::OpCode::kCoin:
        co_return agreement::TaskResult{
            ctx.rng().uniform() * 4294967296.0 < static_cast<double>(ins.imm)
                ? 1
                : 0};
      default:
        co_return agreement::TaskResult{
            pram::eval_deterministic(ins, xv, yv, cv)};
    }
  }

  /// Deterministic-scheme Compute: pick a random task, evaluate it, write
  /// NewVal[i] directly (no agreement — the baseline's fatal flaw for
  /// nondeterministic f).
  sim::SubTask<void> det_compute_once(sim::Ctx& ctx, std::size_t s,
                                      sim::Word stamp) {
    const std::size_t i = static_cast<std::size_t>(ctx.rng().below(n()));
    co_await ctx.local();
    const auto v = co_await eval_task(ctx, s, i);
    if (v) co_await ctx.write(newval_addr(i), *v, stamp);
  }

  /// Copy subphase task: pick a random thread, fetch its NewVal (from the
  /// bins under the nondeterministic scheme, from the NewVal array under
  /// the baseline), and commit it to z_i's generation slot.
  sim::SubTask<void> copy_once(sim::Ctx& ctx, std::size_t s, sim::Word stamp) {
    const std::size_t i = static_cast<std::size_t>(ctx.rng().below(n()));
    co_await ctx.local();
    const pram::Instr& ins = prog->step(s).instrs[i];
    if (!pram::writes_dest(ins.op)) co_return;

    agreement::TaskResult v;
    if (scheme == Scheme::kNondeterministic) {
      v = co_await agreement::read_agreed(ctx, *bins, i, stamp);
    } else {
      const sim::Cell c = co_await ctx.read(newval_addr(i));
      if (c.stamp == stamp) v = c.value;
    }
    if (v) co_await ctx.write(var_addr(ins.z, stamp), *v, stamp);
  }

  /// Per-processor driver: interleave clock maintenance with random task
  /// execution for the current subphase; exit once the clock passes 2T.
  sim::ProcTask scheme_proc(sim::Ctx& ctx) {
    const std::uint64_t stride = lg(n());
    const std::uint64_t end_tick = 2 * static_cast<std::uint64_t>(T());
    std::uint64_t tick = 0;
    for (std::uint64_t iter = 0;; ++iter) {
      // Staggered by id, as in agreement_proc: avoids synchronized
      // clock-read blocks under lockstep schedules.
      if ((iter + ctx.id()) % stride == 0) {
        co_await clock->update(ctx);
        tick = co_await clock->read(ctx);
        if (tick >= end_tick) co_return;
      }
      if (tick >= end_tick) {
        co_await ctx.local();
        continue;
      }
      const std::size_t s = static_cast<std::size_t>(tick / 2);
      const sim::Word stamp = pram::stamp_of_step(static_cast<std::uint32_t>(s));
      if (tick % 2 == 0) {
        if (scheme == Scheme::kNondeterministic)
          co_await agreement::agreement_cycle(ctx, rt, stamp);
        else
          co_await det_compute_once(ctx, s, stamp);
      } else {
        co_await copy_once(ctx, s, stamp);
      }
    }
  }

  // --- Out-of-band subphase monitor ----------------------------------------

  /// Watches clock writes to detect true tick transitions and audits each
  /// step's COMMITTED values one full phase after its Copy subphase ended.
  ///
  /// Why the delay: processors act on *estimated* ticks that lag/lead the
  /// true tick by a bounded amount, so copies for step s legitimately
  /// straggle past the true Copy->Compute boundary.  Snapshotting agreed
  /// values right at the boundary (the original design) raced those
  /// stragglers: it both overcounted `incomplete` and recorded stale
  /// `produced` values for runs whose final memory was perfectly correct —
  /// the long irregular workloads (bfs: ~230 subphases) hit this
  /// systematically.  Auditing the generation slot at the close of tick
  /// 2s+3 is race-free on both sides: estimate skew is well under a full
  /// phase, so every straggling copy of step s has landed, and the
  /// earliest possible overwrite of the slot (the Copy subphase of step
  /// s+G, G >= 3 enforced at construction, at estimated tick 2s+2G+1)
  /// cannot have started even from a ~2-tick estimate leader.  The
  /// committed slot is also the authoritative agreed value — copies only
  /// ever commit values read from completed agreements — so `produced` is
  /// exactly what downstream steps can observe.
  ///
  /// The DETERMINISTIC baseline has no agreement, hence no unique NewVal:
  /// re-executions of a randomized task overwrite NewVal[i] with fresh
  /// draws, and which one a copy commits is a race (the paper's motivating
  /// flaw).  For that scheme `produced` records the FIRST NewVal write of
  /// each (step, task) — an event-driven, race-free capture — so a later
  /// redraw that gets committed shows up as a genuine consistency
  /// violation instead of being laundered by reading the final slot back.
  struct Monitor final : public sim::StepObserver {
    Impl* im = nullptr;

    /// The subphase audits re-read LIVE memory cells (audit_commits) at
    /// exact step positions, so deferred span delivery would audit a
    /// different memory state: demand per-step delivery from the batched
    /// engine.
    bool step_synchronous() const noexcept override { return true; }
    std::uint64_t clock_total = 0;
    std::uint64_t tick = 0;
    std::vector<std::vector<pram::Word>> produced;
    std::uint64_t incomplete = 0;
    /// Det scheme: highest NewVal stamp already recorded per task
    /// (first-write-wins per stamp; late stale-stamp writes are ignored).
    std::vector<sim::Word> newval_stamp_seen;

    void init(Impl* impl) {
      im = impl;
      produced.assign(im->T(), std::vector<pram::Word>(im->n(), 0));
      if (im->scheme == Scheme::kDeterministic)
        newval_stamp_seen.assign(im->n(), 0);
    }

    /// Ticks the monitor must close to have audited every step: the audit
    /// of step T-1 happens when tick 2(T-1)+3 = 2T+1 closes.
    std::uint64_t end_tick() const { return 2 * im->T() + 2; }

    void on_step(const sim::StepEvent& ev) override {
      if (ev.op.kind != sim::Op::Kind::Write) return;
      if (im->scheme == Scheme::kDeterministic &&
          ev.op.addr >= im->newval_base &&
          ev.op.addr < im->newval_base + im->n()) {
        const std::size_t i = ev.op.addr - im->newval_base;
        const sim::Word st = ev.after.stamp;
        if (st > newval_stamp_seen[i] && st >= 1 &&
            st <= static_cast<sim::Word>(im->T())) {
          newval_stamp_seen[i] = st;
          produced[static_cast<std::size_t>(st - 1)][i] = ev.after.value;
        }
        return;
      }
      if (!im->clock->owns(ev.op.addr)) return;
      if (ev.after.value > ev.before.value)
        clock_total += ev.after.value - ev.before.value;
      const std::uint64_t now = clock_total / im->clock->threshold();
      while (tick < now && tick < end_tick()) finalize_subphase();
    }

    /// Close subphase `tick`: audit the step whose Copy subphase ended a
    /// full phase ago, then advance.
    void finalize_subphase() {
      if (tick >= 3 && tick % 2 == 1) {
        const std::size_t s = static_cast<std::size_t>((tick - 3) / 2);
        if (s < im->T())
          audit_commits(s,
                        pram::stamp_of_step(static_cast<std::uint32_t>(s)));
      }
      ++tick;
    }

    /// Read step s's committed generation slots: a matching stamp yields
    /// the agreed value (nondet scheme — the det baseline keeps its
    /// first-evaluation capture, see the struct comment); a missing one is
    /// unfinished work (the scheme's designed w.h.p. failure mode,
    /// surfaced to the caller).
    void audit_commits(std::size_t s, sim::Word stamp) {
      for (std::size_t i = 0; i < im->n(); ++i) {
        const pram::Instr& ins = im->prog->step(s).instrs[i];
        if (!pram::writes_dest(ins.op)) continue;
        const sim::Cell c = im->sim->memory().at(im->var_addr(ins.z, stamp));
        if (c.stamp == stamp) {
          if (im->scheme == Scheme::kNondeterministic) produced[s][i] = c.value;
        } else {
          ++incomplete;
        }
      }
    }
  };

  Monitor monitor;
};

// ---------------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------------

Executor::Executor(const pram::Program& program, Scheme scheme, ExecConfig cfg)
    : prog_(&program), scheme_(scheme), cfg_(cfg) {
  // G >= 3: the monitor audits step s's commits at the close of tick 2s+3,
  // and a processor whose estimate leads true time by the tolerated ~2
  // ticks may start the Copy subphase of step s+G (reusing the slot) at
  // true tick 2(s+G)-1.  G=2 would put that reuse at 2s+3 — racing the
  // audit — so the unsafe configuration is rejected outright.
  if (cfg.generations < 3)
    throw std::invalid_argument("Executor: generations must be >= 3");
  const std::size_t n = program.nthreads();

  apex::SeedTree seeds{cfg.seed};
  sim::SimConfig sc;
  sc.nprocs = n;
  sc.memory_words = 0;
  sc.seed = cfg.seed;
  sc.engine = cfg.engine;
  auto schedule =
      cfg.schedule_factory
          ? cfg.schedule_factory(n, seeds.schedule())
          : sim::make_schedule(cfg.schedule, n, seeds.schedule());
  sim_ = std::make_unique<sim::Simulator>(sc, std::move(schedule));

  impl_ = std::make_unique<Impl>();
  impl_->prog = prog_;
  impl_->scheme = scheme_;
  impl_->cfg = cfg_;
  impl_->sim = sim_.get();

  clockx::ClockConfig cc;
  cc.nprocs = n;
  cc.alpha = cfg.clock_alpha;
  impl_->clock = std::make_unique<clockx::PhaseClock>(sim_->memory(), cc);

  impl_->var_base =
      sim_->memory().extend(program.nvars() * cfg.generations);

  if (scheme_ == Scheme::kNondeterministic) {
    impl_->bins = std::make_unique<agreement::BinArray>(
        sim_->memory(), n, agreement::BinArray::cells_for(n, cfg.beta));
    impl_->rt.cfg.n = n;
    impl_->rt.cfg.beta = cfg.beta;
    // <= 3 operand reads + 1 local; a kGatherDyn adds one segment read.
    impl_->rt.cfg.compute_steps = program.has_dyn_gather() ? 5 : 4;
    impl_->rt.bins = impl_->bins.get();
    impl_->rt.clock = impl_->clock.get();
    Impl* im = impl_.get();
    impl_->rt.task = [im](sim::Ctx& ctx, std::size_t i, sim::Word phase) {
      return im->eval_task(ctx, static_cast<std::size_t>(phase - 1), i);
    };
  } else {
    impl_->newval_base = sim_->memory().extend(n);
  }

  impl_->monitor.init(impl_.get());
  sim_->add_observer(&impl_->monitor);

  Impl* im = impl_.get();
  for (std::size_t p = 0; p < n; ++p)
    sim_->spawn([im](sim::Ctx& ctx) { return im->scheme_proc(ctx); });
}

Executor::~Executor() = default;

clockx::PhaseClock& Executor::clock() noexcept { return *impl_->clock; }

agreement::BinArray* Executor::bins() noexcept { return impl_->bins.get(); }

void Executor::set_agreement_observer(
    agreement::AgreementObserver* obs) noexcept {
  impl_->rt.observer = obs;
}

std::uint64_t Executor::default_budget(const pram::Program& p) {
  const std::size_t n = p.nthreads();
  agreement::AgreementConfig acfg;
  acfg.n = n;
  acfg.compute_steps = p.has_dyn_gather() ? 5 : 4;
  // One tick costs ~α·n·lg n cycles of ω steps each, plus clock traffic
  // (~ one update + one read per lg n cycles).  Budget 4x the expected
  // 2T-tick run, plus slack for tiny programs.
  const double per_tick = ExecConfig{}.clock_alpha * static_cast<double>(n) *
                          lg(n) * static_cast<double>(acfg.omega() + 4);
  return static_cast<std::uint64_t>(per_tick * 2.0 *
                                    static_cast<double>(p.nsteps()) * 4.0) +
         1'000'000;
}

ExecResult Executor::run(std::uint64_t max_work) {
  const auto res = sim_->run(max_work);
  ExecResult out;
  out.completed = res.all_finished;
  out.total_work = sim_->total_work();
  out.stamp_misses = impl_->stamp_misses;

  if (out.completed) {
    // Finalize any subphases whose boundary the monitor has not yet seen
    // (processors exit on estimated ticks, which can lead the exact tick),
    // including the trailing audit ticks past 2T.
    while (impl_->monitor.tick < impl_->monitor.end_tick())
      impl_->monitor.finalize_subphase();
  }
  out.produced = impl_->monitor.produced;
  out.incomplete_tasks = impl_->monitor.incomplete;

  // Extract final variable values: the freshest generation slot wins.
  out.memory.assign(prog_->nvars(), 0);
  for (std::size_t v = 0; v < prog_->nvars(); ++v) {
    sim::Word best_stamp = 0;
    sim::Word best_value = 0;
    for (std::size_t g = 0; g < cfg_.generations; ++g) {
      const sim::Cell c =
          sim_->memory().at(impl_->var_base + v * cfg_.generations + g);
      if (c.stamp >= best_stamp) {
        best_stamp = c.stamp;
        best_value = c.value;
      }
    }
    out.memory[v] = best_value;
  }
  return out;
}

CheckedRun run_checked(const pram::Program& p, Scheme scheme, ExecConfig cfg,
                       std::uint64_t max_work) {
  Executor ex(p, scheme, cfg);
  if (max_work == 0) max_work = Executor::default_budget(p);
  CheckedRun out;
  out.result = ex.run(max_work);
  if (!out.result.completed) {
    out.consistency_error = "execution did not complete within budget";
    return out;
  }
  out.consistency_error = pram::check_execution_consistency(
      p, std::vector<pram::Word>(p.nvars(), 0), out.result.produced,
      out.result.memory);
  return out;
}

}  // namespace apex::exec
