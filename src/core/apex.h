// APEX — Asynchronous Parallel EXecution of nondeterministic programs.
//
// Umbrella header: reproduction of Aumann, Bender & Zhang, "Efficient
// Execution of Nondeterministic Parallel Programs on Asynchronous Systems"
// (SPAA 1996 / Information & Computation 139, 1997).
//
// Layering (each header is independently includable):
//
//   util/       deterministic RNG, statistics, tables            (apex)
//   sim/        coroutine A-PRAM simulator + adversary schedules (apex::sim)
//   clock/      Phase Clock                                      (apex::clockx)
//   agreement/  bin-array agreement protocol (the paper's core)  (apex::agreement)
//   pram/       EREW PRAM programs + reference interpreter       (apex::pram)
//   exec/       the execution scheme (nondet + det baseline)     (apex::exec)
//   consensus/  classical-style O(n^2)-per-value baseline        (apex::consensus)
//   host/       std::thread port of the protocol                 (apex::host)
//   check/      schedule fuzzer + invariant oracles + self-test  (apex::check)
//
// Quick start (see examples/quickstart.cpp):
//
//   pram::ProgramBuilder b(n, vars);
//   b.step().all([](std::size_t i){ return pram::Instr::rand_below(i, 100); });
//   pram::Program p = b.build();                       // EREW-validated
//   exec::Executor ex(p, exec::Scheme::kNondeterministic, {});
//   auto result = ex.run(exec::Executor::default_budget(p));
#pragma once

#include "agreement/bin_array.h"      // IWYU pragma: export
#include "agreement/inspect.h"        // IWYU pragma: export
#include "agreement/protocol.h"       // IWYU pragma: export
#include "agreement/testbed.h"        // IWYU pragma: export
#include "check/fuzz.h"               // IWYU pragma: export
#include "check/fuzz_schedule.h"      // IWYU pragma: export
#include "check/mutation.h"           // IWYU pragma: export
#include "check/oracle.h"             // IWYU pragma: export
#include "check/selftest.h"           // IWYU pragma: export
#include "trace/timeline.h"           // IWYU pragma: export
#include "clock/phase_clock.h"        // IWYU pragma: export
#include "consensus/scan_consensus.h" // IWYU pragma: export
#include "core/version.h"             // IWYU pragma: export
#include "exec/executor.h"            // IWYU pragma: export
#include "host/host_agreement.h"      // IWYU pragma: export
#include "host/host_executor.h"       // IWYU pragma: export
#include "host/host_memory.h"         // IWYU pragma: export
#include "pram/interp.h"              // IWYU pragma: export
#include "pram/ir.h"                  // IWYU pragma: export
#include "pram/program.h"             // IWYU pragma: export
#include "pram/workloads.h"           // IWYU pragma: export
#include "sim/memory.h"               // IWYU pragma: export
#include "sim/proc.h"                 // IWYU pragma: export
#include "sim/schedule.h"             // IWYU pragma: export
#include "sim/simulator.h"            // IWYU pragma: export
#include "sim/subtask.h"              // IWYU pragma: export
#include "util/math.h"                // IWYU pragma: export
#include "util/rng.h"                 // IWYU pragma: export
#include "util/stats.h"               // IWYU pragma: export
#include "util/table.h"               // IWYU pragma: export
