#pragma once

namespace apex {

inline constexpr int kVersionMajor = 1;
inline constexpr int kVersionMinor = 0;
inline constexpr int kVersionPatch = 0;
inline constexpr const char* kVersionString = "1.0.0";

/// The paper this library reproduces.
inline constexpr const char* kPaperCitation =
    "Aumann, Bender, Zhang: Efficient Execution of Nondeterministic "
    "Parallel Programs on Asynchronous Systems. SPAA 1996; Information and "
    "Computation 139(1), 1997.";

}  // namespace apex
