#include "graph/csr.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <string>

namespace apex::graph {

std::uint32_t Csr::max_degree() const {
  std::uint32_t best = 0;
  for (std::size_t r = 0; r < n_rows(); ++r) best = std::max(best, degree(r));
  return best;
}

CsrBuilder::CsrBuilder(std::size_t n_rows, std::size_t n_cols)
    : n_rows_(n_rows), n_cols_(n_cols) {
  const auto lim = std::numeric_limits<std::uint32_t>::max();
  if (n_rows >= lim || n_cols >= lim)
    throw std::invalid_argument("CsrBuilder: dimension exceeds uint32 range");
}

void CsrBuilder::add_edge(std::size_t row, std::size_t col) {
  unweighted_ = true;
  push(row, col, 0);
}

void CsrBuilder::add_edge(std::size_t row, std::size_t col,
                          std::uint64_t val) {
  weighted_ = true;
  push(row, col, val);
}

void CsrBuilder::push(std::size_t row, std::size_t col, std::uint64_t val) {
  if (row >= n_rows_)
    throw std::invalid_argument("CsrBuilder::add_edge: row " +
                                std::to_string(row) + " out of range [0," +
                                std::to_string(n_rows_) + ")");
  if (col >= n_cols_)
    throw std::invalid_argument("CsrBuilder::add_edge: col " +
                                std::to_string(col) + " out of range [0," +
                                std::to_string(n_cols_) + ")");
  edges_.push_back(Edge{static_cast<std::uint32_t>(row),
                        static_cast<std::uint32_t>(col), val});
}

Csr CsrBuilder::build() const {
  if (weighted_ && unweighted_)
    throw std::invalid_argument(
        "CsrBuilder::build: mixed weighted and unweighted edges");
  std::vector<Edge> sorted = edges_;
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });

  Csr out;
  out.row_offsets.assign(n_rows_ + 1, 0);
  out.cols.reserve(sorted.size());
  if (weighted_) out.vals.reserve(sorted.size());
  std::size_t i = 0;
  for (std::size_t r = 0; r < n_rows_; ++r) {
    out.row_offsets[r] = static_cast<std::uint32_t>(out.cols.size());
    while (i < sorted.size() && sorted[i].row == r) {
      // Merge the run of duplicates of this (row, col); values sum with
      // the same wrapping uint64 arithmetic PRAM memory words use.
      const std::uint32_t col = sorted[i].col;
      std::uint64_t val = 0;
      for (; i < sorted.size() && sorted[i].row == r && sorted[i].col == col;
           ++i)
        val += sorted[i].val;
      out.cols.push_back(col);
      if (weighted_) out.vals.push_back(val);
    }
  }
  out.row_offsets[n_rows_] = static_cast<std::uint32_t>(out.cols.size());
  return out;
}

std::vector<std::uint64_t> delta_encode(const Csr& csr) {
  std::vector<std::uint64_t> delta(csr.nnz());
  for (std::size_t r = 0; r < csr.n_rows(); ++r) {
    const std::uint32_t b = csr.row_offsets[r];
    const std::uint32_t e = csr.row_offsets[r + 1];
    for (std::uint32_t k = b; k < e; ++k)
      delta[k] = k == b ? std::uint64_t{csr.cols[k]} + 1
                        : std::uint64_t{csr.cols[k]} - csr.cols[k - 1];
  }
  return delta;
}

std::vector<std::uint32_t> delta_decode(
    const std::vector<std::uint32_t>& row_offsets,
    const std::vector<std::uint64_t>& delta) {
  if (row_offsets.empty() || row_offsets.back() != delta.size())
    throw std::invalid_argument("delta_decode: offsets/stream size mismatch");
  const auto lim = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> cols(delta.size());
  for (std::size_t r = 0; r + 1 < row_offsets.size(); ++r) {
    const std::uint32_t b = row_offsets[r];
    const std::uint32_t e = row_offsets[r + 1];
    std::uint64_t acc = 0;  // biased running column (col + 1)
    for (std::uint32_t k = b; k < e; ++k) {
      if (delta[k] == 0)
        throw std::invalid_argument("delta_decode: zero entry at " +
                                    std::to_string(k));
      acc += delta[k];
      if (acc - 1 > lim)
        throw std::invalid_argument("delta_decode: column overflow at " +
                                    std::to_string(k));
      cols[k] = static_cast<std::uint32_t>(acc - 1);
    }
  }
  return cols;
}

std::vector<std::uint32_t> partition_balanced(
    const std::vector<std::uint64_t>& weights, std::size_t parts) {
  if (parts == 0)
    throw std::invalid_argument("partition_balanced: parts must be >= 1");
  const std::size_t n = weights.size();
  std::uint64_t total = 0;
  for (std::uint64_t w : weights) total += w;

  std::vector<std::uint32_t> bounds(parts + 1, 0);
  std::size_t pos = 0;
  std::uint64_t prefix = 0;
  for (std::size_t k = 1; k < parts; ++k) {
    // Advance until this part's cumulative weight reaches its
    // proportional target; cuts are monotone by construction.
    const std::uint64_t target = total * k / parts;
    while (pos < n && prefix < target) {
      prefix += weights[pos];
      ++pos;
    }
    bounds[k] = static_cast<std::uint32_t>(pos);
  }
  bounds[parts] = static_cast<std::uint32_t>(n);
  return bounds;
}

}  // namespace apex::graph
