#pragma once
// Compressed-sparse-row graph substrate for the PRAM workloads.
//
// The bfs/spmv kernels used to unroll O(n^2) edge masks straight into
// program instructions; at n >= 10^4 that is both too big to build and
// meaningless as a measurement.  This module gives them a real edge
// representation:
//
//   * CsrBuilder  -- collects (row, col [, val]) triplets, validates
//     indices, sorts each row, merges duplicates (values sum with
//     wrapping uint64 arithmetic, matching PRAM word semantics), and
//     emits row offsets + strictly-increasing column indices.
//   * delta_encode / delta_decode -- the in-program-memory layout.
//     Per row, the first entry is the absolute column biased by +1
//     (so 0 can serve as a "no edge" guard in gathered frontiers) and
//     every later entry is the gap to the previous column (>= 1, since
//     rows are deduped and strictly increasing).  A prefix sum inside
//     the row recovers the biased columns.
//   * partition_balanced -- contiguous weight-balanced cuts, used by
//     the workloads to map rows onto logical processors and by the
//     host executor's partition-aware interleave policy to align OS
//     thread slices with those cuts.
#include <cstddef>
#include <cstdint>
#include <vector>

namespace apex::graph {

// Frozen CSR form.  row_offsets has n_rows()+1 entries; cols holds the
// strictly increasing column indices of each row back to back; vals is
// either empty (unweighted) or parallel to cols.
struct Csr {
  std::vector<std::uint32_t> row_offsets;
  std::vector<std::uint32_t> cols;
  std::vector<std::uint64_t> vals;

  std::size_t n_rows() const {
    return row_offsets.empty() ? 0 : row_offsets.size() - 1;
  }
  std::size_t nnz() const { return cols.size(); }
  std::uint32_t degree(std::size_t row) const {
    return row_offsets[row + 1] - row_offsets[row];
  }
  std::uint32_t max_degree() const;
};

class CsrBuilder {
 public:
  // n_rows x n_cols shape; both bounds are validated on every add_edge.
  CsrBuilder(std::size_t n_rows, std::size_t n_cols);

  // Unweighted edge; mixing weighted and unweighted edges in one
  // builder throws at build() time.
  void add_edge(std::size_t row, std::size_t col);
  void add_edge(std::size_t row, std::size_t col, std::uint64_t val);

  // Sort + dedup (duplicate (row,col) values sum, wrapping) and freeze.
  // The builder may be reused afterwards; build() does not consume it.
  Csr build() const;

  std::size_t n_rows() const { return n_rows_; }
  std::size_t n_cols() const { return n_cols_; }

 private:
  void push(std::size_t row, std::size_t col, std::uint64_t val);

  struct Edge {
    std::uint32_t row;
    std::uint32_t col;
    std::uint64_t val;
  };
  std::size_t n_rows_;
  std::size_t n_cols_;
  bool weighted_ = false;
  bool unweighted_ = false;
  std::vector<Edge> edges_;
};

// In-program-memory column layout: nnz words, per row [col0+1, gap1,
// gap2, ...].  Requires strictly increasing rows (i.e. a built Csr).
std::vector<std::uint64_t> delta_encode(const Csr& csr);

// Inverse of delta_encode: recovers the unbiased column indices from a
// delta stream plus the row offsets.  Throws if the stream is not a
// valid encoding (zero gap, zero leading entry, overflowing column).
std::vector<std::uint32_t> delta_decode(
    const std::vector<std::uint32_t>& row_offsets,
    const std::vector<std::uint64_t>& delta);

// Contiguous weight-balanced partition: returns parts+1 cut points with
// bounds[0] == 0 and bounds[parts] == weights.size(), chosen greedily so
// each part's weight tracks total/parts.  Zero-weight items are legal;
// parts may exceed weights.size() (some parts then come out empty).
std::vector<std::uint32_t> partition_balanced(
    const std::vector<std::uint64_t>& weights, std::size_t parts);

}  // namespace apex::graph
