// Strict command-line parsing for apexcli.
//
// The original Args::parse silently DROPPED any token that didn't start
// with `--` and silently accepted unknown flags, so a typo like
// `--interelave=rr` ran the command with the default value — the worst
// possible failure mode for a measurement tool.  This layer makes every
// token accountable: flags parse into a key/value map, everything else is
// a positional, and each subcommand validates against its declared flag
// set (with an edit-distance "did you mean" hint).  Usage errors exit 2
// by convention; that policy lives in the caller.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace apex::cli {

/// Strict non-negative integer: decimal digits only.  Rejects empty
/// strings, leading whitespace, '+'/'-' signs, hex, and values over 64
/// bits — everything std::stoull would quietly accept or skip.
std::optional<std::uint64_t> parse_u64_strict(const std::string& s);

struct ParsedArgs {
  std::string cmd;                           ///< argv[1] ("" if absent).
  std::map<std::string, std::string> kv;     ///< --key=value / --key -> "1".
  std::vector<std::string> positional;       ///< Everything else, in order.
};

/// Split argv into subcommand, flags, and positionals.  No validation —
/// every token is preserved so validate_args can account for all of them.
ParsedArgs parse_argv(int argc, char** argv);

/// Check `a` against a subcommand's declared contract: every flag must be
/// in `allowed`, and at most `max_positional` positional arguments are
/// accepted.  Returns an empty string when valid, otherwise a one-line
/// error message (including a "did you mean" suggestion for near-miss
/// flags) suitable for stderr.
std::string validate_args(const ParsedArgs& a,
                          const std::vector<std::string>& allowed,
                          std::size_t max_positional);

}  // namespace apex::cli
