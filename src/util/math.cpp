#include "util/math.h"

namespace apex {

double n_logn_loglogn(std::size_t n) noexcept {
  return static_cast<double>(n) * lg(n) * lglg(n);
}

double n_logn(std::size_t n) noexcept {
  return static_cast<double>(n) * lg(n);
}

}  // namespace apex
