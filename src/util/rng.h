// Deterministic random number generation for APEX.
//
// Everything random in the system — the adversary's schedule, the
// processors' protocol coins, the workload generators — draws from streams
// derived from a single 64-bit seed.  The derivation is hierarchical
// (splitmix64 over (seed, stream-id)), so two streams with different ids are
// statistically independent, and the *oblivious adversary* requirement of
// the A-PRAM model (schedule fixed independently of the processors' random
// choices) is satisfied by construction: the schedule stream never reads the
// processor streams.
#pragma once

#include <cstdint>
#include <vector>

namespace apex {

/// splitmix64 step: the standard 64-bit finalizer-based generator.
/// Used both as a standalone mixer and to seed Xoshiro streams.
std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Mix two 64-bit values into one (for deriving child seeds).
std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept;

/// xoshiro256** — fast, high-quality 64-bit PRNG.
/// Satisfies (most of) the C++ UniformRandomBitGenerator requirements.
class Rng {
 public:
  using result_type = std::uint64_t;

  Rng() noexcept : Rng(0xA5EED5EEDDEADBEEULL) {}
  explicit Rng(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }

  result_type operator()() noexcept { return next(); }
  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial with success probability p.
  bool coin(double p) noexcept;

  /// Derive an independent child stream; deterministic in (this, id).
  Rng child(std::uint64_t id) const noexcept;

  /// Fisher-Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

/// A root seed fan-out: named streams for the major subsystems so tests and
/// benches can document exactly where each coin came from.
struct SeedTree {
  std::uint64_t root = 1;

  // Domain-separation tags for the derived streams.
  static constexpr std::uint64_t kScheduleTag = 0x5C4E0D0131A5ULL;
  static constexpr std::uint64_t kProcessorTag = 0x9120CE5509ULL;
  static constexpr std::uint64_t kWorkloadTag = 0x3012C10ADULL;

  /// Adversary / schedule stream (oblivious: independent of all others).
  Rng schedule() const noexcept { return Rng(mix64(root, kScheduleTag)); }
  /// Stream for virtual processor `i`'s protocol coins.
  Rng processor(std::size_t i) const noexcept {
    return Rng(mix64(mix64(root, kProcessorTag), i));
  }
  /// Stream for workload / input generation.
  Rng workload() const noexcept { return Rng(mix64(root, kWorkloadTag)); }
};

}  // namespace apex
