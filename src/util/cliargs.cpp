#include "util/cliargs.h"

#include <algorithm>

namespace apex::cli {

std::optional<std::uint64_t> parse_u64_strict(const std::string& s) {
  if (s.empty()) return std::nullopt;
  std::uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
    if (v > (UINT64_MAX - d) / 10) return std::nullopt;  // overflow
    v = v * 10 + d;
  }
  return v;
}

ParsedArgs parse_argv(int argc, char** argv) {
  ParsedArgs a;
  if (argc >= 2) a.cmd = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string s = argv[i];
    if (s.rfind("--", 0) == 0) {
      const auto eq = s.find('=');
      if (eq == std::string::npos)
        a.kv[s.substr(2)] = "1";
      else
        a.kv[s.substr(2, eq - 2)] = s.substr(eq + 1);
    } else {
      a.positional.push_back(s);
    }
  }
  return a;
}

namespace {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  std::vector<std::size_t> row(b.size() + 1);
  for (std::size_t j = 0; j <= b.size(); ++j) row[j] = j;
  for (std::size_t i = 1; i <= a.size(); ++i) {
    std::size_t prev = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= b.size(); ++j) {
      const std::size_t cur = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1,
                         prev + (a[i - 1] == b[j - 1] ? 0 : 1)});
      prev = cur;
    }
  }
  return row[b.size()];
}

}  // namespace

std::string validate_args(const ParsedArgs& a,
                          const std::vector<std::string>& allowed,
                          std::size_t max_positional) {
  for (const auto& [key, value] : a.kv) {
    if (std::find(allowed.begin(), allowed.end(), key) != allowed.end())
      continue;
    std::string msg =
        "unknown flag '--" + key + "' for '" + a.cmd + "'";
    // Near-miss hint: the closest declared flag within edit distance 2.
    std::size_t best = 3;
    const std::string* hint = nullptr;
    for (const std::string& f : allowed) {
      const std::size_t d = edit_distance(key, f);
      if (d < best) {
        best = d;
        hint = &f;
      }
    }
    if (hint != nullptr) msg += " (did you mean '--" + *hint + "'?)";
    return msg;
  }
  if (a.positional.size() > max_positional) {
    const std::string& tok = a.positional[max_positional];
    return "unexpected argument '" + tok + "' for '" + a.cmd + "'";
  }
  return "";
}

}  // namespace apex::cli
