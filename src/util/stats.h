// Statistics helpers for the benchmark harness and property tests.
//
// The reproduction validates *shapes*, not absolute numbers:
//   - growth-rate fits (is total work ~ n log n log log n?),
//   - bracketing (updates per clock tick within [a1*n, a2*n]),
//   - distribution preservation (Claim 8: agreed values follow p_i(x)),
// so we need summary statistics, confidence intervals, chi-square
// goodness-of-fit, and least-squares fits of measured work against candidate
// complexity curves.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace apex {

/// Streaming accumulator: count/mean/variance (Welford), min/max.
class Accumulator {
 public:
  void add(double x) noexcept;
  void merge(const Accumulator& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }
  double sum() const noexcept { return mean_ * static_cast<double>(n_); }

  /// Half-width of an approximate 95% confidence interval for the mean
  /// (normal approximation, 1.96 * stderr). 0 when fewer than 2 samples.
  double ci95() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Quantile of a sample (linear interpolation). q in [0,1].
/// Sorts a copy; fine for bench-sized samples.
double quantile(std::vector<double> xs, double q);

/// Pearson chi-square statistic for observed counts vs expected
/// probabilities.  `observed.size() == expected_probs.size()`; total count
/// is inferred from `observed`.
double chi_square_stat(const std::vector<std::uint64_t>& observed,
                       const std::vector<double>& expected_probs);

/// Upper-tail p-value of the chi-square distribution with `dof` degrees of
/// freedom at statistic `x` (via the regularized upper incomplete gamma).
double chi_square_pvalue(double x, std::size_t dof);

/// Result of fitting y ~ c * f(n): the per-point ratio y/f(n) and how flat
/// it is.  A complexity hypothesis "y = Theta(f)" predicts the ratio column
/// is approximately constant; `spread` = max_ratio / min_ratio quantifies
/// that (close to 1 means a good fit).
struct RatioFit {
  std::vector<double> ratios;
  double geometric_mean = 0.0;
  double spread = 0.0;
};

RatioFit fit_ratio(const std::vector<double>& y, const std::vector<double>& f);

/// Least-squares slope of log(y) vs log(x): the empirical polynomial degree.
/// Useful to distinguish ~n^1 (quasilinear) from ~n^2 baselines.
double loglog_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Regularized upper incomplete gamma Q(s, x); exposed for tests.
double gamma_q(double s, double x);

}  // namespace apex
