#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace apex {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::merge(const Accumulator& o) noexcept {
  if (o.n_ == 0) return;
  if (n_ == 0) {
    *this = o;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(o.n_);
  const double delta = o.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += o.m2_ + delta * delta * na * nb / total;
  n_ += o.n_;
  min_ = std::min(min_, o.min_);
  max_ = std::max(max_, o.max_);
}

double Accumulator::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::ci95() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) throw std::invalid_argument("quantile: empty sample");
  q = std::clamp(q, 0.0, 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double chi_square_stat(const std::vector<std::uint64_t>& observed,
                       const std::vector<double>& expected_probs) {
  if (observed.size() != expected_probs.size())
    throw std::invalid_argument("chi_square_stat: size mismatch");
  std::uint64_t total = 0;
  for (auto c : observed) total += c;
  if (total == 0) throw std::invalid_argument("chi_square_stat: no samples");
  double stat = 0.0;
  for (std::size_t i = 0; i < observed.size(); ++i) {
    const double exp = expected_probs[i] * static_cast<double>(total);
    if (exp <= 0.0) {
      if (observed[i] != 0)
        return std::numeric_limits<double>::infinity();
      continue;
    }
    const double d = static_cast<double>(observed[i]) - exp;
    stat += d * d / exp;
  }
  return stat;
}

namespace {

// Lanczos approximation of log Gamma.
double lgamma_lanczos(double x) {
  static const double g[] = {676.5203681218851,     -1259.1392167224028,
                             771.32342877765313,    -176.61502916214059,
                             12.507343278686905,    -0.13857109526572012,
                             9.9843695780195716e-6, 1.5056327351493116e-7};
  if (x < 0.5) {
    // Reflection formula.
    return std::log(M_PI / std::sin(M_PI * x)) - lgamma_lanczos(1.0 - x);
  }
  x -= 1.0;
  double a = 0.99999999999980993;
  const double t = x + 7.5;
  for (int i = 0; i < 8; ++i) a += g[i] / (x + static_cast<double>(i) + 1.0);
  return 0.5 * std::log(2.0 * M_PI) + (x + 0.5) * std::log(t) - t + std::log(a);
}

// Regularized lower incomplete gamma P(s,x) by series (x < s+1).
double gamma_p_series(double s, double x) {
  double sum = 1.0 / s;
  double term = sum;
  for (int k = 1; k < 1000; ++k) {
    term *= x / (s + static_cast<double>(k));
    sum += term;
    if (std::abs(term) < std::abs(sum) * 1e-15) break;
  }
  return sum * std::exp(-x + s * std::log(x) - lgamma_lanczos(s));
}

// Regularized upper incomplete gamma Q(s,x) by continued fraction (x >= s+1).
double gamma_q_cf(double s, double x) {
  const double tiny = 1e-300;
  double b = x + 1.0 - s;
  double c = 1.0 / tiny;
  double d = 1.0 / b;
  double h = d;
  for (int i = 1; i < 1000; ++i) {
    const double an = -static_cast<double>(i) * (static_cast<double>(i) - s);
    b += 2.0;
    d = an * d + b;
    if (std::abs(d) < tiny) d = tiny;
    c = b + an / c;
    if (std::abs(c) < tiny) c = tiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::abs(del - 1.0) < 1e-15) break;
  }
  return std::exp(-x + s * std::log(x) - lgamma_lanczos(s)) * h;
}

}  // namespace

double gamma_q(double s, double x) {
  if (x < 0.0 || s <= 0.0) throw std::invalid_argument("gamma_q: bad args");
  if (x == 0.0) return 1.0;
  if (x < s + 1.0) return 1.0 - gamma_p_series(s, x);
  return gamma_q_cf(s, x);
}

double chi_square_pvalue(double x, std::size_t dof) {
  if (dof == 0) throw std::invalid_argument("chi_square_pvalue: dof == 0");
  if (!std::isfinite(x)) return 0.0;
  return gamma_q(static_cast<double>(dof) / 2.0, x / 2.0);
}

RatioFit fit_ratio(const std::vector<double>& y, const std::vector<double>& f) {
  if (y.size() != f.size() || y.empty())
    throw std::invalid_argument("fit_ratio: bad sizes");
  RatioFit out;
  out.ratios.reserve(y.size());
  double log_sum = 0.0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = 0.0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] / f[i];
    out.ratios.push_back(r);
    log_sum += std::log(r);
    lo = std::min(lo, r);
    hi = std::max(hi, r);
  }
  out.geometric_mean = std::exp(log_sum / static_cast<double>(y.size()));
  out.spread = hi / lo;
  return out;
}

double loglog_slope(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2)
    throw std::invalid_argument("loglog_slope: need >= 2 points");
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double n = static_cast<double>(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
  }
  return (n * sxy - sx * sy) / (n * sxx - sx * sx);
}

}  // namespace apex
