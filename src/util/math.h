// Small integer/float math helpers used throughout APEX.
//
// The paper's quantities are all functions of n: bins have beta*log n cells,
// cycles take Theta(log log n) steps, the clock ticks every Theta(n)
// updates.  These helpers centralize the discrete versions of those
// functions so every module rounds the same way.
#pragma once

#include <cstdint>
#include <cstddef>

namespace apex {

/// floor(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr std::uint32_t floor_log2(std::uint64_t x) noexcept {
  std::uint32_t r = 0;
  while (x > 1) {
    x >>= 1;
    ++r;
  }
  return r;
}

/// ceil(log2(x)) for x >= 1; returns 0 for x in {0, 1}.
constexpr std::uint32_t ceil_log2(std::uint64_t x) noexcept {
  if (x <= 1) return 0;
  return floor_log2(x - 1) + 1;
}

/// "lg n" as the paper uses it: max(1, ceil(log2 n)).  Never zero, so
/// beta*lg(n) sized structures are non-degenerate even for tiny n.
constexpr std::uint32_t lg(std::uint64_t n) noexcept {
  std::uint32_t v = ceil_log2(n);
  return v == 0 ? 1 : v;
}

/// "lg lg n": max(1, ceil(log2(lg n))).
constexpr std::uint32_t lglg(std::uint64_t n) noexcept {
  std::uint32_t v = ceil_log2(lg(n));
  return v == 0 ? 1 : v;
}

/// True if x is a power of two (and nonzero).
constexpr bool is_pow2(std::uint64_t x) noexcept {
  return x != 0 && (x & (x - 1)) == 0;
}

/// Smallest power of two >= x (x >= 1).
constexpr std::uint64_t next_pow2(std::uint64_t x) noexcept {
  std::uint64_t p = 1;
  while (p < x) p <<= 1;
  return p;
}

/// Integer ceiling division.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// The paper's headline work bound, n * lg n * lglg n, as a double
/// (used to normalize measured work in the benches).
double n_logn_loglogn(std::size_t n) noexcept;

/// n * lg n (used for cycle-count bounds).
double n_logn(std::size_t n) noexcept;

}  // namespace apex
