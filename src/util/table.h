// Minimal fixed-column table renderer for the benchmark binaries.
//
// Every bench prints the series the paper's theorem/lemma predicts as an
// aligned text table (and optionally CSV), so EXPERIMENTS.md can quote the
// output verbatim.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace apex {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Start a new row.  Returns *this for chaining.
  Table& row();

  /// Append one cell to the current row.
  Table& cell(const std::string& s);
  Table& cell(const char* s);
  Table& cell(double v, int precision = 3);
  Table& cell(std::uint64_t v);
  Table& cell(std::int64_t v);
  Table& cell(int v);

  std::size_t rows() const noexcept { return cells_.size(); }

  /// Render as an aligned text table with a header rule.
  void print(std::ostream& os) const;

  /// Render as CSV (for downstream plotting).
  void print_csv(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Format helper: fixed precision double -> string.
std::string fmt(double v, int precision = 3);

}  // namespace apex
