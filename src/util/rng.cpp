#include "util/rng.h"

namespace apex {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t mix64(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t s = a ^ (b + 0x9E3779B97F4A7C15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

Rng::Rng(std::uint64_t seed) noexcept {
  // Seed the four xoshiro words from splitmix64, per the reference
  // recommendation; guards against the all-zero state.
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::range(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::coin(double p) noexcept { return uniform() < p; }

Rng Rng::child(std::uint64_t id) const noexcept {
  // Derive deterministically from current state without perturbing it.
  return Rng(mix64(mix64(s_[0], s_[3]), id));
}

}  // namespace apex
