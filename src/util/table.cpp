#include "util/table.h"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace apex {

std::string fmt(double v, int precision) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(precision) << v;
  return ss.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

Table& Table::row() {
  cells_.emplace_back();
  return *this;
}

Table& Table::cell(const std::string& s) {
  cells_.back().push_back(s);
  return *this;
}

Table& Table::cell(const char* s) { return cell(std::string(s)); }

Table& Table::cell(double v, int precision) { return cell(fmt(v, precision)); }

Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }

Table& Table::cell(int v) { return cell(std::to_string(v)); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& r : cells_)
    for (std::size_t c = 0; c < r.size() && c < widths.size(); ++c)
      widths[c] = std::max(widths[c], r[c].size());

  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < r.size() ? r[c] : std::string();
      os << "  " << std::setw(static_cast<int>(widths[c])) << s;
    }
    os << '\n';
  };

  print_row(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& r : cells_) print_row(r);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c) os << ',';
      os << r[c];
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& r : cells_) print_row(r);
}

}  // namespace apex
