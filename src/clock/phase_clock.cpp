#include "clock/phase_clock.h"

#include <algorithm>
#include <stdexcept>

#include "check/mutation.h"

namespace apex::clockx {

PhaseClock::PhaseClock(sim::Memory& mem, ClockConfig cfg) : mem_(&mem) {
  if (cfg.nprocs == 0) throw std::invalid_argument("PhaseClock: nprocs == 0");
  if (cfg.alpha <= 0.0) throw std::invalid_argument("PhaseClock: alpha <= 0");
  m_ = cfg.slots != 0 ? cfg.slots : cfg.nprocs;
  s_ = cfg.read_samples != 0 ? cfg.read_samples
                             : static_cast<std::size_t>(3 * lg(cfg.nprocs));
  tau_ = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(cfg.alpha * static_cast<double>(cfg.nprocs)));
  base_ = mem.extend(m_);
  reader_clamp_.assign(cfg.nprocs, 0);
}

sim::SubTask<void> PhaseClock::update(sim::Ctx& ctx) {
  const std::size_t r = static_cast<std::size_t>(ctx.rng().below(m_));
  const sim::Cell c = co_await ctx.read(base_ + r);
  sim::Word inc = 1;
  if (check::mutation_enabled(check::Mutation::kClockDoubleIncrement))
    inc = 2;
  co_await ctx.write(base_ + r, c.value + inc, 0);
}

sim::SubTask<std::uint64_t> PhaseClock::read(sim::Ctx& ctx) {
  std::uint64_t sampled = 0;
  for (std::size_t k = 0; k < s_; ++k) {
    const std::size_t r = static_cast<std::size_t>(ctx.rng().below(m_));
    const sim::Cell c = co_await ctx.read(base_ + r);
    sampled += c.value;
  }
  // One local step: scale the sample to an estimate and divide by τ.
  co_await ctx.local();
  const double est_total = static_cast<double>(sampled) *
                           (static_cast<double>(m_) / static_cast<double>(s_));
  const std::uint64_t tick =
      static_cast<std::uint64_t>(est_total) / tau_;
  auto& clamp = reader_clamp_.at(ctx.id());
  clamp = std::max(clamp, tick);
  co_return clamp;
}

std::uint64_t PhaseClock::exact_total() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < m_; ++i) total += mem_->at(base_ + i).value;
  return total;
}

}  // namespace apex::clockx
