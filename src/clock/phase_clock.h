// The Phase Clock (paper §2.1, construction contract from [Aumann-Rabin 94]).
//
// Contract required by the execution scheme and the agreement protocol:
//   * Update-Clock: O(1) atomic steps; processors call it to participate in
//     advancing the clock.
//   * Read-Clock: Θ(log n) atomic steps; returns the current integral clock
//     value (monotone per reader).
//   * For constants 0 < α1 <= α2: at least α1·n invocations of Update-Clock
//     are necessary and α2·n are sufficient to advance the clock by one,
//     regardless of WHICH processors invoke it.
//
// Construction (substitution documented in DESIGN.md §2): an array of m = n
// per-slot counters in shared memory.  Update-Clock increments a uniformly
// random slot (one read + one write; the read-then-write pair is not atomic,
// so concurrent increments can occasionally be lost — that loss is a
// constant factor absorbed into [α1, α2], which bench E8 measures).
// Read-Clock samples s = Θ(log n) random slots, scales the sampled sum by
// m/s to estimate the total number of updates U, and returns ⌊U / τ⌋ with
// τ = α·n, clamped to be monotone per reader.
//
// Under the oblivious adversary both the slot choices and the sample choices
// are uniform and independent of the schedule, so slot counts concentrate
// around U/m and the estimate concentrates around U — giving the bracketing
// the contract demands, with high probability.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/memory.h"
#include "sim/proc.h"
#include "sim/subtask.h"
#include "util/math.h"
#include "util/rng.h"

namespace apex::clockx {

struct ClockConfig {
  std::size_t nprocs = 0;      ///< n.
  std::size_t slots = 0;       ///< m; 0 means use n.
  std::size_t read_samples = 0;///< s; 0 means use 3·lg(n).
  double alpha = 6.0;          ///< Tick threshold τ = α·n updates.
};

class PhaseClock {
 public:
  /// Carves the counter region out of `mem` via extend().
  PhaseClock(sim::Memory& mem, ClockConfig cfg);

  // ---- In-model procedures (cost counted in work) -------------------------

  /// Update-Clock: O(1) — read a random slot, write slot+1 (2 steps).
  sim::SubTask<void> update(sim::Ctx& ctx);

  /// Read-Clock: Θ(log n) — s sampled reads + 1 local estimate step.
  /// Returns the clock value, monotone per calling processor.
  sim::SubTask<std::uint64_t> read(sim::Ctx& ctx);

  // ---- Out-of-band inspection (tests/benches; costs no work) --------------

  /// Exact number of update increments currently recorded in the slots.
  std::uint64_t exact_total() const;

  /// Exact tick implied by exact_total().
  std::uint64_t exact_tick() const { return exact_total() / tau_; }

  std::uint64_t threshold() const noexcept { return tau_; }
  std::size_t slots() const noexcept { return m_; }
  std::size_t samples() const noexcept { return s_; }
  std::size_t base_addr() const noexcept { return base_; }

  /// True if `addr` lies in the clock's counter region (used by inspectors
  /// listening to raw step events).
  bool owns(std::size_t addr) const noexcept {
    return addr >= base_ && addr < base_ + m_;
  }

  /// Atomic steps one update() costs (for work-budget arithmetic).
  static constexpr std::uint64_t kUpdateCost = 2;
  /// Atomic steps one read() costs.
  std::uint64_t read_cost() const noexcept { return s_ + 1; }

 private:
  sim::Memory* mem_;
  std::size_t base_;
  std::size_t m_;
  std::size_t s_;
  std::uint64_t tau_;
  std::vector<std::uint64_t> reader_clamp_;  ///< Per-processor monotone clamp.
};

}  // namespace apex::clockx
