// Adversary fuzzing: random compositions of the schedule family.
//
// The paper's guarantees are quantified over EVERY oblivious adversary, but
// the canonical schedules in sim/schedule.h are a handful of points in that
// space.  FuzzedSchedule searches it: from a single uint64 seed it derives a
// lazy, unbounded sequence of SEGMENTS, each segment an instance of one of
// the existing adversaries with randomized parameters — round-robin
// lockstep, uniform noise, power-law and linear-rate skews, sleeper bursts,
// geometric bursts, crash blackouts (a random subset of processors frozen
// for the whole segment), and short scripted splices.  Concatenating nasty
// segments produces interleavings none of the canonical schedules reach
// (e.g. a lockstep prefix, then a blackout of all but one processor, then a
// power-law storm), while staying OBLIVIOUS: every grant depends only on
// (t, the schedule's private RNG stream), never on simulator state.
//
// Reproducibility: the whole infinite interleaving is a pure function of
// (nprocs, seed), so a failing fuzz trial is re-run — and shrunk — from its
// seed alone.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/schedule.h"
#include "util/rng.h"

namespace apex::check {

struct FuzzScheduleConfig {
  std::size_t nprocs = 0;
  std::uint64_t seed = 1;
  /// Segment lengths are drawn log-uniformly from [min_segment, max_segment].
  std::uint64_t min_segment = 16;
  std::uint64_t max_segment = 4096;
};

class FuzzedSchedule final : public sim::Schedule {
 public:
  explicit FuzzedSchedule(FuzzScheduleConfig cfg);
  FuzzedSchedule(std::size_t nprocs, std::uint64_t seed)
      : FuzzedSchedule(FuzzScheduleConfig{nprocs, seed, 16, 4096}) {}

  std::size_t next(std::uint64_t t) override;

  /// Bulk grants, delegated to the current segment's adversary and returned
  /// short at segment boundaries.  A new segment is composed only when a
  /// grant is actually demanded of it, so segments_generated() and
  /// describe() match the single-step engine regardless of prefetch depth.
  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override;

  /// "burst(p=0.97)x812 | blackout(awake=3)x120 | ..." for the segments
  /// generated so far (capped) — goes into failure reports.
  std::string describe() const;

  std::uint64_t segments_generated() const noexcept { return segment_no_; }

 private:
  void new_segment();

  FuzzScheduleConfig cfg_;
  apex::Rng rng_;                          ///< Segment-composition stream.
  std::unique_ptr<sim::Schedule> inner_;   ///< Current segment's adversary.
  std::uint64_t remaining_ = 0;            ///< Grants left in the segment.
  std::uint64_t segment_no_ = 0;
  std::vector<std::string> log_;           ///< Segment descriptions (capped).
};

/// Transparent wrapper that records every grant its inner schedule makes.
/// A recorded trace replayed through a ScriptedSchedule reproduces the
/// exact interleaving — the shrinker's raw material.
class RecordingSchedule final : public sim::Schedule {
 public:
  explicit RecordingSchedule(std::unique_ptr<sim::Schedule> inner)
      : Schedule(inner->nprocs()), inner_(std::move(inner)) {}

  std::size_t next(std::uint64_t t) override {
    const std::size_t p = inner_->next(t);
    trace_.push_back(p);
    return p;
  }

  std::size_t fill(std::span<std::uint32_t> grants, std::uint64_t t0) override {
    const std::size_t n = inner_->fill(grants, t0);
    for (std::size_t i = 0; i < n; ++i) trace_.push_back(grants[i]);
    return n;
  }

  bool is_oblivious() const noexcept override {
    return inner_->is_oblivious();
  }

  bool is_prefetchable() const noexcept override {
    return inner_->is_prefetchable();
  }

  /// Every grant DRAWN from the inner schedule, in order.  Under the batched
  /// engine this may exceed the executed trace by a prefetched tail; trim to
  /// Simulator::ticks() to recover exactly what ran.
  const std::vector<std::size_t>& trace() const noexcept { return trace_; }

 private:
  std::unique_ptr<sim::Schedule> inner_;
  std::vector<std::size_t> trace_;
};

}  // namespace apex::check
