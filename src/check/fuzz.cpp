#include "check/fuzz.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "agreement/testbed.h"
#include "batch/sweep.h"
#include "consensus/scan_consensus.h"
#include "exec/executor.h"
#include "lang/compile.h"
#include "lang/gen.h"
#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex::check {

namespace {

constexpr std::uint64_t kTrialTag = 0xF0221A6;
constexpr sim::Word kSupportMax = 1 << 20;

/// Grants between stop-predicate polls: small enough that shrink traces end
/// close to the violation, large enough not to dominate wall time.
constexpr std::uint64_t kPollInterval = 16;

/// The batched engine may have drawn grants it never executed; the
/// executed interleaving is exactly the first ticks() entries.
void trim_to_executed(std::vector<std::size_t>& trace,
                      const sim::Simulator& sim) {
  const auto executed = static_cast<std::size_t>(sim.ticks());
  if (trace.size() > executed) trace.resize(executed);
}

std::unique_ptr<sim::Schedule> build_adversary(const TrialSpec& spec,
                                               std::size_t nprocs,
                                               apex::Rng rng) {
  if (spec.script != nullptr)
    return std::make_unique<sim::ScriptedSchedule>(
        nprocs, *spec.script, sim::ScriptExhaust::kRoundRobin);
  if (spec.fuzzed)
    return std::make_unique<FuzzedSchedule>(nprocs, spec.seed);
  return sim::make_schedule(spec.kind, nprocs, rng);
}

TrialOutcome run_agreement_trial(const TrialSpec& spec, const FuzzConfig& cfg,
                                 bool record) {
  TrialOutcome out;
  FuzzedSchedule* fz = nullptr;
  RecordingSchedule* rec = nullptr;

  agreement::TestbedConfig tc;
  tc.n = spec.n;
  tc.beta = spec.beta;
  tc.seed = spec.seed;
  tc.engine = spec.engine;
  tc.schedule_factory = [&](std::size_t nprocs, apex::Rng rng) {
    auto inner = build_adversary(spec, nprocs, rng);
    if (spec.script == nullptr && spec.fuzzed)
      fz = static_cast<FuzzedSchedule*>(inner.get());
    if (!record) return inner;
    auto wrapped = std::make_unique<RecordingSchedule>(std::move(inner));
    rec = wrapped.get();
    return std::unique_ptr<sim::Schedule>(std::move(wrapped));
  };
  agreement::AgreementTestbed tb(tc, agreement::uniform_task(kSupportMax),
                                 agreement::uniform_support(kSupportMax));

  WorkAccountingOracle work;
  ClockOracle clock(tb.clock(), spec.n, cfg.skew_ticks);
  BinArrayOracle bins(tb.bins(), agreement::uniform_support(kSupportMax));
  ClobberOracle clobbers(tb.bins(), tb.clock(), cfg.clobber_bound);
  OracleSet set;
  set.add(&work);
  set.add(&clock);
  set.add(&bins);
  set.add(&clobbers);
  tb.attach(static_cast<sim::StepObserver*>(&set));
  tb.attach(static_cast<agreement::AgreementObserver*>(&set));

  try {
    tb.simulator().run(
        spec.budget, [&] { return set.failed(); }, kPollInterval);
    set.finish(tb.simulator());
    if (const Oracle* o = set.first_failing()) {
      out.failed = true;
      out.oracle = o->name();
      out.message = o->failures().front();
    }
  } catch (const std::exception& e) {
    out.failed = true;
    out.oracle = "exception";
    out.message = e.what();
  }
  if (fz != nullptr) out.schedule_desc = fz->describe();
  if (rec != nullptr) {
    out.trace = rec->trace();
    trim_to_executed(out.trace, tb.simulator());
  }
  return out;
}

TrialOutcome run_consensus_trial(const TrialSpec& spec,
                                 [[maybe_unused]] const FuzzConfig& cfg,
                                 bool record) {
  TrialOutcome out;
  FuzzedSchedule* fz = nullptr;
  RecordingSchedule* rec = nullptr;

  apex::SeedTree seeds{spec.seed};
  auto inner = build_adversary(spec, spec.n, seeds.schedule());
  if (spec.script == nullptr && spec.fuzzed)
    fz = static_cast<FuzzedSchedule*>(inner.get());
  if (record) {
    auto wrapped = std::make_unique<RecordingSchedule>(std::move(inner));
    rec = wrapped.get();
    inner = std::move(wrapped);
  }

  consensus::ScanConfig sc;
  sc.n = spec.n;
  sc.seed = spec.seed;
  sc.engine = spec.engine;
  consensus::ScanConsensus scan(sc, agreement::uniform_task(kSupportMax),
                                std::move(inner));

  WorkAccountingOracle work;
  ConsensusOracle cons(scan);
  OracleSet set;
  set.add(&work);
  set.add(&cons);
  scan.simulator().add_observer(&set);

  try {
    scan.simulator().run(
        spec.budget, [&] { return set.failed(); }, kPollInterval);
    set.finish(scan.simulator());
    if (const Oracle* o = set.first_failing()) {
      out.failed = true;
      out.oracle = o->name();
      out.message = o->failures().front();
    }
  } catch (const std::exception& e) {
    out.failed = true;
    out.oracle = "exception";
    out.message = e.what();
  }
  if (fz != nullptr) out.schedule_desc = fz->describe();
  if (rec != nullptr) {
    out.trace = rec->trace();
    trim_to_executed(out.trace, scan.simulator());
  }
  return out;
}

TrialOutcome run_workload_trial(const TrialSpec& spec, const FuzzConfig& cfg,
                                bool record) {
  TrialOutcome out;
  const pram::WorkloadSpec* wl = pram::find_workload(spec.workload);
  if (wl == nullptr) {
    out.failed = true;
    out.oracle = "exception";
    out.message = "unknown workload '" + spec.workload + "'";
    return out;
  }
  FuzzedSchedule* fz = nullptr;
  RecordingSchedule* rec = nullptr;

  const pram::Program prog = wl->make(spec.n);
  exec::ExecConfig ec;
  ec.seed = spec.seed;
  ec.engine = spec.engine;
  ec.schedule_factory = [&](std::size_t nprocs, apex::Rng rng) {
    auto inner = build_adversary(spec, nprocs, rng);
    if (spec.script == nullptr && spec.fuzzed)
      fz = static_cast<FuzzedSchedule*>(inner.get());
    if (!record) return inner;
    auto wrapped = std::make_unique<RecordingSchedule>(std::move(inner));
    rec = wrapped.get();
    return std::unique_ptr<sim::Schedule>(std::move(wrapped));
  };
  exec::Executor ex(prog, exec::Scheme::kNondeterministic, ec);

  WorkAccountingOracle work;
  ClockOracle clock(ex.clock(), spec.n, cfg.skew_ticks);
  // The agreed values are whole-program data, not a fixed per-bin support,
  // so the bin oracle's support predicate is permissive here; its stamp and
  // copy-forward provenance checks (the hard Fig. 2 invariants) stay live.
  BinArrayOracle bins(*ex.bins(), [](std::size_t, sim::Word) { return true; });
  // The Lemma-1 cap is calibrated per phase on the single-phase agreement
  // corpus; a workload run takes the max over HUNDREDS of phases (bfs at
  // n=8: ~460), so the legitimate extreme-value tail sits higher.  Measured
  // over a 120-seed fuzzed corpus: worst 74 (bfs n=8), 62 (bfs n=6), <=41
  // for merge/spmv/dag, against single-phase caps of 52.  Doubling the cap
  // keeps >=40% two-sided margin while a stamp-refresh mutation floods
  // ~alpha*lg(n) = 72 per phase in EVERY phase of the run.
  ClobberOracle clobbers(*ex.bins(), ex.clock(),
                         cfg.clobber_bound != 0
                             ? cfg.clobber_bound
                             : 2 * ClobberOracle::default_bound(spec.n));
  OracleSet set;
  set.add(&work);
  set.add(&clock);
  set.add(&bins);
  set.add(&clobbers);
  ex.simulator().add_observer(&set);
  ex.set_agreement_observer(&set);

  try {
    const std::uint64_t budget =
        spec.budget != 0 ? spec.budget : exec::Executor::default_budget(prog);
    const auto res = ex.run(budget);
    set.finish(ex.simulator());
    if (const Oracle* o = set.first_failing()) {
      out.failed = true;
      out.oracle = o->name();
      out.message = o->failures().front();
    } else if (res.completed && res.incomplete_tasks == 0) {
      // An adversary may legitimately stall completion within the budget,
      // and the scheme's own w.h.p. failure mode — a subphase ending with
      // unfinished tasks under an extreme schedule — is self-reported via
      // incomplete_tasks (the monitor's audit).  The end-to-end oracles
      // below assert the UNCONDITIONAL part of the contract: a run the
      // scheme itself considers clean must be consistent with some valid
      // synchronous execution and satisfy the workload's invariants.
      const std::string cons = pram::check_execution_consistency(
          prog, std::vector<pram::Word>(prog.nvars(), 0), res.produced,
          res.memory);
      if (!cons.empty()) {
        out.failed = true;
        out.oracle = "workload_consistency";
        out.message = cons;
      } else {
        const std::string verdict = wl->check(spec.n, res.memory);
        if (!verdict.empty()) {
          out.failed = true;
          out.oracle = "workload_invariant";
          out.message = verdict;
        }
      }
    }
  } catch (const std::exception& e) {
    out.failed = true;
    out.oracle = "exception";
    out.message = e.what();
  }
  if (fz != nullptr) out.schedule_desc = fz->describe();
  if (rec != nullptr) {
    out.trace = rec->trace();
    trim_to_executed(out.trace, ex.simulator());
  }
  return out;
}

/// Everything a kGrammar trial derives from its seed alone: the generated
/// source, whether nondeterministic ops were allowed, and which grant
/// engine runs it.  Deriving from the SEED (not the trial index) keeps
/// repro files self-contained — replaying a dumped seed regenerates the
/// identical program on the identical engine.
struct GrammarDraw {
  lang::GeneratedProgram gen;
  bool deterministic = false;
  sim::GrantEngine engine = sim::GrantEngine::kBatched;
};

GrammarDraw draw_grammar(std::uint64_t seed) {
  GrammarDraw d;
  d.deterministic = (seed & 1) != 0;
  d.engine = ((seed >> 1) & 1) != 0 ? sim::GrantEngine::kSingleStep
                                    : sim::GrantEngine::kBatched;
  d.gen = lang::generate_program({seed, d.deterministic});
  return d;
}

TrialOutcome run_grammar_trial(const TrialSpec& spec, const FuzzConfig& cfg,
                               bool record) {
  TrialOutcome out;
  const GrammarDraw draw = draw_grammar(spec.seed);

  // The whole language front-end is under test: generated source must
  // compile cleanly (the generator is EREW-valid by construction), so a
  // diagnostic here is a front-end or generator bug, not a bad input.
  const lang::CompileResult comp = lang::compile_source(draw.gen.source);
  if (!comp.ok()) {
    out.failed = true;
    out.oracle = "grammar_compile";
    out.message = lang::render_diagnostics(draw.gen.source, comp.diagnostics);
    return out;
  }
  const pram::Program& prog = *comp.program;

  FuzzedSchedule* fz = nullptr;
  RecordingSchedule* rec = nullptr;
  exec::ExecConfig ec;
  ec.seed = spec.seed;
  ec.engine = draw.engine;
  ec.schedule_factory = [&](std::size_t nprocs, apex::Rng rng) {
    auto inner = build_adversary(spec, nprocs, rng);
    if (spec.script == nullptr && spec.fuzzed)
      fz = static_cast<FuzzedSchedule*>(inner.get());
    if (!record) return inner;
    auto wrapped = std::make_unique<RecordingSchedule>(std::move(inner));
    rec = wrapped.get();
    return std::unique_ptr<sim::Schedule>(std::move(wrapped));
  };
  exec::Executor ex(prog, exec::Scheme::kNondeterministic, ec);

  WorkAccountingOracle work;
  ClockOracle clock(ex.clock(), prog.nthreads(), cfg.skew_ticks);
  BinArrayOracle bins(*ex.bins(), [](std::size_t, sim::Word) { return true; });
  // Same doubled cap as the workload trials: multi-phase runs have a wider
  // legitimate clobber tail than the single-phase agreement calibration.
  ClobberOracle clobbers(*ex.bins(), ex.clock(),
                         cfg.clobber_bound != 0
                             ? cfg.clobber_bound
                             : 2 * ClobberOracle::default_bound(
                                       prog.nthreads()));
  OracleSet set;
  set.add(&work);
  set.add(&clock);
  set.add(&bins);
  set.add(&clobbers);
  ex.simulator().add_observer(&set);
  ex.set_agreement_observer(&set);

  try {
    const std::uint64_t budget =
        spec.budget != 0 ? spec.budget : exec::Executor::default_budget(prog);
    const auto res = ex.run(budget);
    set.finish(ex.simulator());
    if (const Oracle* o = set.first_failing()) {
      out.failed = true;
      out.oracle = o->name();
      out.message = o->failures().front();
    } else if (res.completed && res.incomplete_tasks == 0) {
      // Differential oracles (same contract as the workload trials): a run
      // the scheme considers clean must be consistent with some valid
      // synchronous execution, and a deterministic program's final memory
      // must match the reference interpreter bit-for-bit.
      const std::vector<pram::Word> zeros(prog.nvars(), 0);
      const std::string cons = pram::check_execution_consistency(
          prog, zeros, res.produced, res.memory);
      if (!cons.empty()) {
        out.failed = true;
        out.oracle = "grammar_consistency";
        out.message = cons;
      } else if (!prog.is_nondeterministic()) {
        const auto ref = pram::Interpreter(prog).run_deterministic(zeros);
        if (ref.memory != res.memory) {
          out.failed = true;
          out.oracle = "grammar_determinism";
          out.message =
              "deterministic generated program diverged from the reference "
              "interpreter (seed " +
              std::to_string(spec.seed) + ")";
        }
      }
    }
  } catch (const std::exception& e) {
    out.failed = true;
    out.oracle = "exception";
    out.message = e.what();
  }
  if (fz != nullptr) out.schedule_desc = fz->describe();
  if (rec != nullptr) {
    out.trace = rec->trace();
    trim_to_executed(out.trace, ex.simulator());
  }
  return out;
}

/// Shrink: find the shortest grant-trace prefix that still trips the same
/// oracle, by binary search over the prefix length (replays are cheap and
/// fully deterministic, so ~log2(trace) re-runs).
void shrink_failure(const FuzzConfig& cfg, FuzzFailure& f) {
  TrialSpec ts = make_trial_spec(cfg, f.trial);
  const TrialOutcome recorded = run_trial(ts, cfg, /*record=*/true);
  if (!recorded.failed || recorded.trace.empty()) return;

  std::vector<std::size_t> prefix;
  auto fails_with = [&](std::size_t len) {
    prefix.assign(recorded.trace.begin(),
                  recorded.trace.begin() +
                      static_cast<std::ptrdiff_t>(len));
    TrialSpec rs = ts;
    rs.fuzzed = false;
    rs.script = &prefix;
    const TrialOutcome o = run_trial(rs, cfg, false);
    return o.failed && o.oracle == f.oracle;
  };

  std::size_t hi = recorded.trace.size();
  if (!fails_with(hi)) {
    // Should not happen (replay is exact); keep the full trace as repro.
    f.repro_script = recorded.trace;
    return;
  }
  std::size_t lo = 0;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (fails_with(mid))
      hi = mid;
    else
      lo = mid + 1;
  }
  prefix.assign(recorded.trace.begin(),
                recorded.trace.begin() + static_cast<std::ptrdiff_t>(hi));
  f.repro_script = std::move(prefix);
}

}  // namespace

const char* fuzz_protocol_name(FuzzProtocol p) noexcept {
  switch (p) {
    case FuzzProtocol::kAgreement: return "agreement";
    case FuzzProtocol::kConsensus: return "consensus";
    case FuzzProtocol::kWorkload: return "workload";
    case FuzzProtocol::kGrammar: return "grammar";
  }
  return "?";
}

const std::vector<const char*>& fuzz_workload_pool() {
  static const std::vector<const char*> kPool = {"bfs", "merge", "spmv",
                                                 "dag"};
  return kPool;
}

TrialOutcome run_trial(const TrialSpec& spec, const FuzzConfig& cfg,
                       bool record) {
  try {
    switch (spec.protocol) {
      case FuzzProtocol::kAgreement:
        return run_agreement_trial(spec, cfg, record);
      case FuzzProtocol::kConsensus:
        return run_consensus_trial(spec, cfg, record);
      case FuzzProtocol::kWorkload:
        return run_workload_trial(spec, cfg, record);
      case FuzzProtocol::kGrammar:
        return run_grammar_trial(spec, cfg, record);
    }
    throw std::logic_error("run_trial: unknown protocol");
  } catch (const std::exception& e) {
    // Construction-time failures (bad config) — still a finding.
    TrialOutcome out;
    out.failed = true;
    out.oracle = "exception";
    out.message = e.what();
    return out;
  }
}

TrialSpec make_trial_spec(const FuzzConfig& cfg, std::size_t i) {
  apex::Rng rng(apex::mix64(apex::mix64(cfg.seed, kTrialTag), i));
  TrialSpec ts;
  ts.fuzzed = true;
  ts.seed = rng.next();
  if (cfg.grammar_only || i % 8 == 6) {
    // Grammar-generated programs through the language front-end and the
    // full execution scheme.  Everything else about the trial (the program
    // text, det/nondet, grant engine) is derived from ts.seed inside
    // run_grammar_trial, so repro files stay self-contained.
    ts.protocol = FuzzProtocol::kGrammar;
    const GrammarDraw draw = draw_grammar(ts.seed);
    ts.n = draw.gen.nthreads;
    const lang::CompileResult comp = lang::compile_source(draw.gen.source);
    // A generator/compiler bug surfaces as the grammar_compile finding when
    // the trial runs; budget 1 here just keeps the spec well-formed.
    ts.budget = comp.ok() ? exec::Executor::default_budget(*comp.program) : 1;
    return ts;
  }
  if (i % 4 == 1) {
    ts.protocol = FuzzProtocol::kConsensus;
    static constexpr std::size_t kNs[] = {3, 4, 6, 8};
    ts.n = kNs[rng.below(4)];
    ts.budget =
        2000 + 800 * static_cast<std::uint64_t>(ts.n) * ts.n;
  } else if (i % 4 == 3) {
    // The irregular PRAM suite through the full execution scheme.  n >= 6
    // for the same clobber-cap reason as the agreement trials (the scheme
    // runs the identical protocol underneath); merge needs a power of two.
    ts.protocol = FuzzProtocol::kWorkload;
    const auto& pool = fuzz_workload_pool();
    ts.workload = pool[rng.below(pool.size())];
    ts.n = ts.workload == std::string("merge") ? 8 : (rng.below(2) ? 6 : 8);
    if (i % 64 == 19) {
      // Rare LARGE-n trial: a registry scale_ns instance through the
      // simulated scheme (n = 64 costs ~1-2 s with oracles attached, so
      // one trial in 64 keeps the soak budget).  spmv is the gather-heavy
      // pick — the computed-index path is where large n stresses the
      // writer-table discipline hardest.
      ts.workload = "spmv";
      ts.n = 64;
    }
    const pram::WorkloadSpec* wl = pram::find_workload(ts.workload);
    ts.budget = exec::Executor::default_budget(wl->make(ts.n));
  } else {
    ts.protocol = FuzzProtocol::kAgreement;
    // n >= 6: at n=4 the clock has 4 slots, lost updates stretch phases and
    // the legitimate clobber tail closes to within ~1 of the stale-stamp
    // flood — no sound cap separates them.  Tiny n stays covered by the
    // consensus trials.
    static constexpr std::size_t kNs[] = {6, 8, 12, 16};
    ts.n = kNs[rng.below(4)];
    ts.budget = 20000 + 4000 * static_cast<std::uint64_t>(ts.n);
  }
  return ts;
}

FuzzReport run_fuzz(const FuzzConfig& cfg) {
  FuzzReport rep;
  rep.trials = cfg.trials;
  std::vector<std::unique_ptr<FuzzFailure>> slots(cfg.trials);

  batch::SweepSpec spec;
  spec.trials = cfg.trials;
  spec.jobs = cfg.jobs;
  spec.keep_going = true;
  batch::SweepEngine().run(spec, [&](std::size_t i) {
    const TrialSpec ts = make_trial_spec(cfg, i);
    const TrialOutcome out = run_trial(ts, cfg, false);
    batch::TrialResult r;
    if (out.failed) {
      auto f = std::make_unique<FuzzFailure>();
      f->trial = i;
      f->seed = ts.seed;
      f->protocol = ts.protocol;
      f->n = ts.n;
      f->budget = ts.budget;
      f->workload = ts.workload;
      f->oracle = out.oracle;
      f->message = out.message;
      f->schedule = out.schedule_desc;
      slots[i] = std::move(f);
      r.ok = false;
    }
    return r;
  });

  bool repro_dir_ready = false;
  for (auto& slot : slots) {
    if (!slot) continue;
    if (cfg.shrink) shrink_failure(cfg, *slot);
    if (!cfg.repro_dir.empty()) {
      Repro r;
      r.protocol = slot->protocol;
      r.n = slot->n;
      r.workload = slot->workload;
      r.seed = slot->seed;
      r.budget = slot->budget;
      r.skew_ticks = cfg.skew_ticks;
      r.clobber_bound = cfg.clobber_bound;
      r.oracle = slot->oracle;
      r.script = slot->repro_script;
      const std::string path = cfg.repro_dir + "/repro-trial" +
                               std::to_string(slot->trial) + ".txt";
      // A dump problem must never lose the report itself — note it on the
      // failure and carry on.
      try {
        if (!repro_dir_ready) {
          std::filesystem::create_directories(cfg.repro_dir);
          repro_dir_ready = true;
        }
        write_repro(path, r);
        slot->repro_path = path;
      } catch (const std::exception& e) {
        slot->message += " [repro not written: " + std::string(e.what()) +
                         "]";
      }
    }
    rep.failures.push_back(std::move(*slot));
  }
  return rep;
}

// ---------------------------------------------------------------------------
// Repro files
// ---------------------------------------------------------------------------

void write_repro(const std::string& path, const Repro& r) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_repro: cannot open " + path);
  out << "apex-fuzz-repro v1\n";
  out << "protocol " << fuzz_protocol_name(r.protocol) << "\n";
  if (!r.workload.empty()) out << "workload " << r.workload << "\n";
  out << "n " << r.n << "\n";
  out << "beta " << r.beta << "\n";
  out << "seed " << r.seed << "\n";
  out << "budget " << r.budget << "\n";
  out << "skew " << r.skew_ticks << "\n";
  out << "clobber_bound " << r.clobber_bound << "\n";
  out << "oracle " << r.oracle << "\n";
  out << "script";
  for (auto p : r.script) out << ' ' << p;
  out << "\n";
}

Repro load_repro(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_repro: cannot open " + path);
  std::string header;
  std::getline(in, header);
  if (header != "apex-fuzz-repro v1")
    throw std::runtime_error("load_repro: bad header in " + path);
  Repro r;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "protocol") {
      std::string v;
      ls >> v;
      if (v == "agreement")
        r.protocol = FuzzProtocol::kAgreement;
      else if (v == "consensus")
        r.protocol = FuzzProtocol::kConsensus;
      else if (v == "workload")
        r.protocol = FuzzProtocol::kWorkload;
      else if (v == "grammar")
        r.protocol = FuzzProtocol::kGrammar;
      else
        throw std::runtime_error("load_repro: unknown protocol " + v);
    } else if (key == "workload") {
      ls >> r.workload;
    } else if (key == "n") {
      ls >> r.n;
    } else if (key == "beta") {
      ls >> r.beta;
    } else if (key == "seed") {
      ls >> r.seed;
    } else if (key == "budget") {
      ls >> r.budget;
    } else if (key == "skew") {
      ls >> r.skew_ticks;
    } else if (key == "clobber_bound") {
      ls >> r.clobber_bound;
    } else if (key == "oracle") {
      ls >> r.oracle;
    } else if (key == "script") {
      std::size_t p;
      while (ls >> p) r.script.push_back(p);
    } else if (!key.empty()) {
      throw std::runtime_error("load_repro: unknown key " + key);
    }
  }
  if (r.n == 0 || r.budget == 0)
    throw std::runtime_error("load_repro: incomplete repro " + path);
  return r;
}

TrialOutcome replay_repro(const Repro& r, const FuzzConfig& cfg) {
  FuzzConfig replay_cfg = cfg;
  replay_cfg.skew_ticks = r.skew_ticks;
  replay_cfg.clobber_bound = r.clobber_bound;
  TrialSpec ts;
  ts.protocol = r.protocol;
  ts.n = r.n;
  ts.workload = r.workload;
  ts.beta = r.beta;
  ts.seed = r.seed;
  ts.budget = r.budget;
  if (r.script.empty())
    ts.fuzzed = true;
  else
    ts.script = &r.script;
  return run_trial(ts, replay_cfg, false);
}

}  // namespace apex::check
