// Deliberate protocol mutations for oracle self-testing.
//
// A checker that never fires is indistinguishable from a checker that
// cannot fire.  The self-test (src/check/selftest.h) proves each invariant
// oracle non-vacuous by switching on a small, realistic bug in the protocol
// under test and asserting that exactly the designated oracle reports it.
//
// The active mutation is THREAD-LOCAL so that fuzz trials running on the
// SweepEngine worker pool stay independent: a self-test trial enables its
// mutation on its own worker thread only, and the flag is restored when the
// ScopedMutation guard leaves scope.  With no mutation active the gated
// code paths are byte-for-byte the original protocol (a single thread-local
// enum compare), so production runs pay nothing.
//
// This header is intentionally dependency-free: the mutation gates live in
// lower layers (sim/, clock/, agreement/, consensus/) which must not pull
// the rest of src/check/ in.
#pragma once

#include <cstdint>
#include <vector>

namespace apex::check {

enum class Mutation : std::uint8_t {
  kNone = 0,
  /// agreement_cycle's copy-forward writes prev.value + 1 — the classic
  /// off-by-one.  Caught by BinArrayOracle (copy provenance).
  kCopyOffByOne,
  /// agreement cycles stamp their bin writes with phase - 1 once past phase
  /// 1 — a processor that never refreshes its timestamp.  Every such write
  /// is a clobber of the true phase; caught by ClobberOracle (Lemma 1
  /// bound).
  kStaleStamp,
  /// PhaseClock::update writes slot + 2 instead of slot + 1.  Caught by
  /// ClockOracle (an update may advance a slot by at most one).
  kClockDoubleIncrement,
  /// ScanConsensus decides its own proposal instead of the lowest-numbered
  /// processor's.  Caught by ConsensusOracle (agreement).
  kConsensusDecideOwn,
  /// Simulator charges 2 work units for a Local step but still emits one
  /// StepEvent.  Caught by WorkAccountingOracle (events == total work).
  kWorkDoubleCharge,
};

const char* mutation_name(Mutation m) noexcept;

/// Every real mutation (kNone excluded), for self-test sweeps.
std::vector<Mutation> all_mutations();

namespace detail {
inline thread_local Mutation g_active = Mutation::kNone;
}

/// Is `m` the active mutation on this thread?  (Gate used by protocol code.)
inline bool mutation_enabled(Mutation m) noexcept {
  return detail::g_active == m;
}

inline Mutation active_mutation() noexcept { return detail::g_active; }

/// RAII guard: activates `m` on this thread for its lifetime.
class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) noexcept : prev_(detail::g_active) {
    detail::g_active = m;
  }
  ~ScopedMutation() { detail::g_active = prev_; }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;

 private:
  Mutation prev_;
};

}  // namespace apex::check
