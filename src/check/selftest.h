// Oracle self-test: prove the checkers aren't vacuous.
//
// For every Mutation (a small, deliberate protocol bug behind a thread-
// local gate — see mutation.h) this runs a canonical trial twice:
//   1. with the mutation ON  — the DESIGNATED oracle must report a failure;
//   2. with the mutation OFF — the whole oracle set must stay clean
//      (same trial, so a flaky tolerance would show up here).
// A fuzzer whose oracles pass this is known to be able to see each class
// of bug it claims to check for.
#pragma once

#include <string>
#include <vector>

#include "check/fuzz.h"
#include "check/mutation.h"

namespace apex::check {

struct SelfTestCase {
  Mutation mutation = Mutation::kNone;
  const char* expected_oracle = "";
  bool caught = false;          ///< Designated oracle fired under mutation.
  bool clean_baseline = false;  ///< No oracle fired without the mutation.
  std::string detail;           ///< The failure message observed (or why not).
};

/// Run every mutation's case.  Deterministic; a few hundred ms.
std::vector<SelfTestCase> run_selftest();

inline bool selftest_ok(const std::vector<SelfTestCase>& cases) {
  for (const auto& c : cases)
    if (!c.caught || !c.clean_baseline) return false;
  return !cases.empty();
}

}  // namespace apex::check
