// Invariant oracles: the paper's theorems as executable checkers.
//
// Each oracle watches a run out-of-band (StepObserver and/or
// AgreementObserver — costs no model work, mutates nothing) and records a
// failure the moment a HARD invariant breaks.  Hard means: holds with
// probability 1 under every oblivious adversary, so a single violation in a
// single fuzz trial is a genuine bug, never noise.  Quantities that the
// paper only bounds w.h.p. (clobbers per bin, clock-estimate skew) are
// checked against generous tolerances that hold across the fuzz corpus but
// are still far below what a broken protocol produces — the oracle
// self-test (selftest.h) proves that margin real by injecting mutations.
//
// The oracles:
//   WorkAccountingOracle  every grant emits exactly one StepEvent, times are
//                         gapless, and per-processor step counts reconcile
//                         with Simulator::total_work().
//   ClockOracle           phase-clock slots advance by at most one per
//                         update; per-processor phase estimates are
//                         monotone (the Read-Clock clamp) and within
//                         `skew_ticks` of the true tick over the sampling
//                         window.
//   BinArrayOracle        bin writes carry a nonzero stamp, stay inside the
//                         declared support of f_i, and every copy-forward
//                         write to cell j>0 copies a value that cell j-1
//                         actually held under the same stamp (Fig. 2's
//                         re-read rule made checkable).
//   ClobberOracle         Lemma 1: clobbers per bin per true phase stay
//                         under an O(log n) cap.
//   ConsensusOracle       scan-consensus registers are single-writer
//                         write-once, and every decision equals processor
//                         0's proposal (agreement + validity of the
//                         deterministic decision rule).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "agreement/bin_array.h"
#include "agreement/inspect.h"
#include "agreement/protocol.h"
#include "clock/phase_clock.h"
#include "consensus/scan_consensus.h"
#include "sim/simulator.h"

namespace apex::check {

/// Base class: a named checker accumulating failure messages.
///
/// Oracles are span-native: subclasses implement observation ONCE, in
/// on_steps (hoisting per-event state out of the loop); per-step delivery
/// (single-step engine, unit tests) forwards through the base as a span of
/// one.  An oracle consumes only StepEvent fields plus its static config —
/// never live simulator state — so deferred span delivery is exact.
class Oracle : public sim::StepObserver, public agreement::AgreementObserver {
 public:
  virtual const char* name() const noexcept = 0;

  void on_step(const sim::StepEvent& ev) final {
    on_steps(std::span<const sim::StepEvent>(&ev, 1));
  }

  /// Span-native observation hook; default ignores steps.
  void on_steps(std::span<const sim::StepEvent>) override {}

  /// End-of-run checks (totals, decisions).  `sim` is the finished run.
  virtual void on_finish(const sim::Simulator& sim) { (void)sim; }

  bool failed() const noexcept { return !failures_.empty(); }
  const std::vector<std::string>& failures() const noexcept {
    return failures_;
  }

 protected:
  /// Record a violation (capped; the first message is what reports show).
  void fail(std::string msg);

 private:
  std::vector<std::string> failures_;
};

/// Fan-out + verdict over a set of oracles.  Attach as the simulator step
/// observer and the runtime agreement observer; call finish() after run().
class OracleSet final : public sim::StepObserver,
                        public agreement::AgreementObserver {
 public:
  void add(Oracle* o) { list_.push_back(o); }

  void on_step(const sim::StepEvent& ev) override {
    on_steps(std::span<const sim::StepEvent>(&ev, 1));
  }
  void on_steps(std::span<const sim::StepEvent> evs) override {
    for (auto* o : list_) o->on_steps(evs);
  }
  void on_cycle(const agreement::CycleRecord& r) override {
    for (auto* o : list_) o->on_cycle(r);
  }
  void on_phase_enter(std::size_t p, sim::Word ph) override {
    for (auto* o : list_) o->on_phase_enter(p, ph);
  }

  void finish(const sim::Simulator& sim) {
    for (auto* o : list_) o->on_finish(sim);
  }

  bool failed() const noexcept {
    for (auto* o : list_)
      if (o->failed()) return true;
    return false;
  }

  /// The first failing oracle in registration order (nullptr when clean).
  const Oracle* first_failing() const noexcept;

  /// "oracle_name: first failure message" of the first failing oracle
  /// (empty when clean).
  std::string first_failure() const;

  /// Every failing oracle's name, in registration order.
  std::vector<std::string> failing_oracles() const;

  const std::vector<Oracle*>& oracles() const noexcept { return list_; }

 private:
  std::vector<Oracle*> list_;
};

// ---------------------------------------------------------------------------

class WorkAccountingOracle final : public Oracle {
 public:
  const char* name() const noexcept override { return "work_accounting"; }
  void on_steps(std::span<const sim::StepEvent> evs) override;
  void on_finish(const sim::Simulator& sim) override;

 private:
  std::uint64_t events_ = 0;
  std::vector<std::uint64_t> per_proc_;
};

class ClockOracle final : public Oracle {
 public:
  /// `skew_ticks`: allowed |estimate - true tick| beyond which the sampled
  /// Read-Clock is declared broken.  The estimator's per-read error is
  /// O(sqrt(total)/tau) ticks, well under 1 for the fuzzer's sizes; 2 gives
  /// a wide margin while a mutated clock drifts unboundedly.
  ClockOracle(const clockx::PhaseClock& clock, std::size_t nprocs,
              std::uint64_t skew_ticks = 2);

  const char* name() const noexcept override { return "phase_clock"; }
  void on_steps(std::span<const sim::StepEvent> evs) override;
  void on_phase_enter(std::size_t proc, sim::Word phase) override;

 private:
  const clockx::PhaseClock* clock_;
  std::uint64_t skew_;
  std::uint64_t total_ = 0;  ///< Update increments seen (positive deltas).
  std::vector<sim::Word> last_phase_;
  /// Per proc: the clock-slot read immediately preceding its next update
  /// write (Update-Clock's read half).  An update must write exactly that
  /// value + 1 to the same slot.
  struct PendingRead {
    bool valid = false;
    std::size_t addr = 0;
    sim::Word value = 0;
  };
  std::vector<PendingRead> pending_;
  /// Ring per proc: true tick at each of its last (samples+2) steps — the
  /// Read-Clock sampling window, for the lower skew bound.
  std::vector<std::vector<std::uint64_t>> window_;
  std::vector<std::size_t> wpos_;
  std::vector<std::size_t> wlen_;
};

class BinArrayOracle final : public Oracle {
 public:
  BinArrayOracle(const agreement::BinArray& bins,
                 agreement::SupportFn support);

  const char* name() const noexcept override { return "bin_array"; }
  void on_steps(std::span<const sim::StepEvent> evs) override;

 private:
  const agreement::BinArray* bins_;
  agreement::SupportFn support_;
  /// Per cell: stamp -> values ever written with that stamp.
  std::vector<std::map<sim::Word, std::vector<sim::Word>>> history_;
};

class ClobberOracle final : public Oracle {
 public:
  /// `max_per_bin` = 0 picks default_bound(bins.bins()).
  ClobberOracle(const agreement::BinArray& bins,
                const clockx::PhaseClock& clock,
                std::uint32_t max_per_bin = 0);

  /// Lemma 1 cap: clobbers per bin per phase is O(log n) w.h.p.  Calibrated
  /// against the fuzz corpus (n >= 6): the legitimate tail peaks below 44
  /// per bin per phase while a protocol that stops refreshing timestamps
  /// floods ~alpha * lg(n) = 24 lg(n) (72 at n=8) — this cap sits between
  /// with >= 30% margin on both sides.
  static std::uint32_t default_bound(std::size_t nbins) {
    return 12 * lg(nbins) + 16;
  }

  const char* name() const noexcept override { return "clobber_bound"; }
  void on_steps(std::span<const sim::StepEvent> evs) override;

  std::uint32_t max_observed() const noexcept { return max_observed_; }

 private:
  const agreement::BinArray* bins_;
  const clockx::PhaseClock* clock_;
  std::uint32_t bound_;
  std::uint64_t total_ = 0;
  sim::Word true_phase_ = 1;
  std::vector<std::uint32_t> clobbers_;
  std::uint32_t max_observed_ = 0;
};

class ConsensusOracle final : public Oracle {
 public:
  explicit ConsensusOracle(const consensus::ScanConsensus& sc);

  const char* name() const noexcept override { return "consensus"; }
  void on_steps(std::span<const sim::StepEvent> evs) override;
  void on_finish(const sim::Simulator& sim) override;

 private:
  const consensus::ScanConsensus* sc_;
  std::size_t n_;
  std::size_t base_;
  std::vector<std::vector<std::optional<sim::Word>>> proposals_;
};

}  // namespace apex::check
