#include "check/fuzz_schedule.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace apex::check {

namespace {

constexpr std::size_t kMaxLoggedSegments = 64;

std::string fmt(const char* f, double x) {
  char buf[64];
  std::snprintf(buf, sizeof buf, f, x);
  return buf;
}

}  // namespace

FuzzedSchedule::FuzzedSchedule(FuzzScheduleConfig cfg)
    : Schedule(cfg.nprocs), cfg_(cfg), rng_(apex::mix64(cfg.seed, 0xF022)) {
  if (cfg_.min_segment == 0 || cfg_.max_segment < cfg_.min_segment)
    throw std::invalid_argument(
        "FuzzedSchedule: need 0 < min_segment <= max_segment");
}

void FuzzedSchedule::new_segment() {
  const std::size_t n = nprocs_;
  // Log-uniform segment length: short splices and long sieges both common.
  const double lo = std::log(static_cast<double>(cfg_.min_segment));
  const double hi = std::log(static_cast<double>(cfg_.max_segment));
  remaining_ = static_cast<std::uint64_t>(
      std::exp(lo + (hi - lo) * rng_.uniform()));
  remaining_ = std::max<std::uint64_t>(1, remaining_);

  // Each segment's adversary draws from its own child stream so the
  // composition stream stays aligned across replays regardless of how many
  // coins the segment itself consumes.
  apex::Rng seg_rng = rng_.child(segment_no_);
  std::string desc;

  // Kinds needing >= 2 procs are remapped to uniform noise when n == 1.
  std::uint64_t kind = rng_.below(8);
  if (n < 2 && (kind == 4 || kind == 6 || kind == 7)) kind = 1;

  switch (kind) {
    case 0:
      inner_ = std::make_unique<sim::RoundRobinSchedule>(n);
      desc = "rr";
      break;
    case 1:
      inner_ = std::make_unique<sim::UniformRandomSchedule>(n, seg_rng);
      desc = "uniform";
      break;
    case 2: {
      const double alpha = 0.5 + 2.5 * rng_.uniform();
      inner_ = sim::RateSchedule::power_law(n, alpha, seg_rng);
      desc = "power_law(a=" + fmt("%.2f", alpha) + ")";
      break;
    }
    case 3: {
      std::vector<double> rates(n);
      for (auto& r : rates) r = 0.02 + rng_.uniform();
      inner_ = std::make_unique<sim::RateSchedule>(std::move(rates), seg_rng);
      desc = "rate";
      break;
    }
    case 4: {
      // Random sleeper subset (at least one processor stays awake).
      const std::size_t nsleep =
          1 + static_cast<std::size_t>(rng_.below(n - 1));
      std::vector<std::size_t> ids(n);
      for (std::size_t i = 0; i < n; ++i) ids[i] = i;
      rng_.shuffle(ids);
      ids.resize(nsleep);
      const std::uint64_t period = 8 + rng_.below(64 * n);
      const std::uint64_t burst = 1 + rng_.below(period);
      inner_ = std::make_unique<sim::SleeperSchedule>(n, std::move(ids),
                                                      period, burst, seg_rng);
      desc = "sleeper(" + std::to_string(nsleep) + ")";
      break;
    }
    case 5: {
      const double p = 0.5 + 0.495 * rng_.uniform();
      inner_ = std::make_unique<sim::BurstSchedule>(n, p, seg_rng);
      desc = "burst(p=" + fmt("%.3f", p) + ")";
      break;
    }
    case 6: {
      // Blackout: a random subset of processors is frozen for the whole
      // segment.  Expressed as a CrashSchedule whose "crashed" processors
      // died at t = 0; when the segment ends they come back — a crash the
      // canonical family cannot undo.
      const std::size_t nawake = 1 + static_cast<std::size_t>(rng_.below(n));
      std::vector<std::size_t> ids(n);
      for (std::size_t i = 0; i < n; ++i) ids[i] = i;
      rng_.shuffle(ids);
      std::vector<std::uint64_t> crash(n, 0);
      for (std::size_t i = 0; i < nawake; ++i) crash[ids[i]] = ~0ULL;
      inner_ = std::make_unique<sim::CrashSchedule>(n, std::move(crash),
                                                    seg_rng);
      desc = "blackout(awake=" + std::to_string(nawake) + ")";
      break;
    }
    default: {
      // Scripted splice: a short literal interleaving, often hammering a
      // narrow set of processors.
      const std::size_t len = 8 + static_cast<std::size_t>(rng_.below(57));
      const std::size_t span = 1 + static_cast<std::size_t>(rng_.below(n));
      std::vector<std::size_t> script(len);
      for (auto& p : script)
        p = static_cast<std::size_t>(seg_rng.below(span));
      inner_ = std::make_unique<sim::ScriptedSchedule>(
          n, std::move(script), sim::ScriptExhaust::kRoundRobin);
      remaining_ = len;
      desc = "splice(span=" + std::to_string(span) + ")";
      break;
    }
  }

  if (log_.size() < kMaxLoggedSegments)
    log_.push_back(desc + "x" + std::to_string(remaining_));
  ++segment_no_;
}

std::size_t FuzzedSchedule::next(std::uint64_t t) {
  if (remaining_ == 0) new_segment();
  --remaining_;
  return inner_->next(t);
}

std::size_t FuzzedSchedule::fill(std::span<std::uint32_t> grants,
                                 std::uint64_t t0) {
  if (grants.empty()) return 0;
  if (remaining_ == 0) new_segment();
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(grants.size(), remaining_));
  const std::size_t got = inner_->fill(grants.first(want), t0);
  remaining_ -= got;
  return got;
}

std::string FuzzedSchedule::describe() const {
  std::string out;
  for (std::size_t i = 0; i < log_.size(); ++i) {
    if (i) out += " | ";
    out += log_[i];
  }
  if (segment_no_ > log_.size()) out += " | ...";
  return out;
}

}  // namespace apex::check
