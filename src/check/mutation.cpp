#include "check/mutation.h"

namespace apex::check {

const char* mutation_name(Mutation m) noexcept {
  switch (m) {
    case Mutation::kNone: return "none";
    case Mutation::kCopyOffByOne: return "copy_off_by_one";
    case Mutation::kStaleStamp: return "stale_stamp";
    case Mutation::kClockDoubleIncrement: return "clock_double_increment";
    case Mutation::kConsensusDecideOwn: return "consensus_decide_own";
    case Mutation::kWorkDoubleCharge: return "work_double_charge";
  }
  return "?";
}

std::vector<Mutation> all_mutations() {
  return {Mutation::kCopyOffByOne, Mutation::kStaleStamp,
          Mutation::kClockDoubleIncrement, Mutation::kConsensusDecideOwn,
          Mutation::kWorkDoubleCharge};
}

}  // namespace apex::check
