#include "check/selftest.h"

#include <algorithm>

namespace apex::check {

namespace {

/// The canonical trial each mutation is exercised under.  Uniform-random
/// schedules keep every processor active (so the mutated code path runs);
/// budgets are sized so the run crosses at least two clock phases (the
/// stale-stamp mutation only bites from phase 2 on) and, for consensus,
/// runs to completion (decisions are checked at finish).
TrialSpec case_spec(Mutation m) {
  TrialSpec ts;
  ts.seed = 20260727;
  switch (m) {
    case Mutation::kConsensusDecideOwn:
      ts.protocol = FuzzProtocol::kConsensus;
      ts.n = 6;
      ts.budget = 200000;
      ts.kind = sim::ScheduleKind::kRoundRobin;
      break;
    case Mutation::kStaleStamp:
      ts.protocol = FuzzProtocol::kAgreement;
      ts.n = 8;
      ts.budget = 120000;
      ts.kind = sim::ScheduleKind::kUniformRandom;
      break;
    default:
      ts.protocol = FuzzProtocol::kAgreement;
      ts.n = 8;
      ts.budget = 60000;
      ts.kind = sim::ScheduleKind::kUniformRandom;
      break;
  }
  return ts;
}

const char* designated_oracle(Mutation m) {
  switch (m) {
    case Mutation::kCopyOffByOne: return "bin_array";
    case Mutation::kStaleStamp: return "clobber_bound";
    case Mutation::kClockDoubleIncrement: return "phase_clock";
    case Mutation::kConsensusDecideOwn: return "consensus";
    case Mutation::kWorkDoubleCharge: return "work_accounting";
    case Mutation::kNone: break;
  }
  return "";
}

}  // namespace

std::vector<SelfTestCase> run_selftest() {
  std::vector<SelfTestCase> cases;
  const FuzzConfig cfg;  // default oracle tolerances — what the fuzzer uses

  for (Mutation m : all_mutations()) {
    SelfTestCase c;
    c.mutation = m;
    c.expected_oracle = designated_oracle(m);
    const TrialSpec ts = case_spec(m);

    {
      ScopedMutation guard(m);
      const TrialOutcome out = run_trial(ts, cfg, false);
      c.caught = out.failed && out.oracle == c.expected_oracle;
      c.detail = out.failed
                     ? out.message
                     : std::string("mutation ran undetected (no oracle "
                                   "fired within budget)");
      if (out.failed && out.oracle != c.expected_oracle)
        c.detail = "wrong oracle fired: " + out.message;
    }
    {
      const TrialOutcome out = run_trial(ts, cfg, false);
      c.clean_baseline = !out.failed;
      if (out.failed)
        c.detail += " [baseline not clean: " + out.message + "]";
    }
    cases.push_back(std::move(c));
  }
  return cases;
}

}  // namespace apex::check
