#include "check/oracle.h"

#include <algorithm>

namespace apex::check {

namespace {
constexpr std::size_t kMaxFailures = 8;
}

void Oracle::fail(std::string msg) {
  if (failures_.size() < kMaxFailures) failures_.push_back(std::move(msg));
}

const Oracle* OracleSet::first_failing() const noexcept {
  for (auto* o : list_)
    if (o->failed()) return o;
  return nullptr;
}

std::string OracleSet::first_failure() const {
  if (const Oracle* o = first_failing())
    return std::string(o->name()) + ": " + o->failures().front();
  return {};
}

std::vector<std::string> OracleSet::failing_oracles() const {
  std::vector<std::string> out;
  for (auto* o : list_)
    if (o->failed()) out.push_back(o->name());
  return out;
}

// ---------------------------------------------------------------------------
// WorkAccountingOracle
// ---------------------------------------------------------------------------

void WorkAccountingOracle::on_steps(std::span<const sim::StepEvent> evs) {
  // Hoist the expected sequence index: within a span the gapless check is
  // a pure local increment.
  std::uint64_t expect = events_;
  for (const sim::StepEvent& ev : evs) {
    if (ev.time != expect) [[unlikely]]
      fail("step event time " + std::to_string(ev.time) +
           " != expected sequence index " + std::to_string(expect) +
           " (work charged without an observed grant)");
    ++expect;
    if (ev.proc >= per_proc_.size()) [[unlikely]]
      per_proc_.resize(ev.proc + 1, 0);
    per_proc_[ev.proc] += 1;
  }
  events_ = expect;
}

void WorkAccountingOracle::on_finish(const sim::Simulator& sim) {
  if (events_ != sim.total_work())
    fail("observer saw " + std::to_string(events_) + " grants but total_work()=" +
         std::to_string(sim.total_work()));
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < sim.nprocs(); ++p) {
    const std::uint64_t steps = sim.proc_steps(p);
    const std::uint64_t seen = p < per_proc_.size() ? per_proc_[p] : 0;
    if (steps != seen)
      fail("proc " + std::to_string(p) + " charged " + std::to_string(steps) +
           " steps but observer saw " + std::to_string(seen));
    sum += steps;
  }
  if (sum != sim.total_work())
    fail("sum of proc_steps " + std::to_string(sum) + " != total_work() " +
         std::to_string(sim.total_work()));
}

// ---------------------------------------------------------------------------
// ClockOracle
// ---------------------------------------------------------------------------

ClockOracle::ClockOracle(const clockx::PhaseClock& clock, std::size_t nprocs,
                         std::uint64_t skew_ticks)
    : clock_(&clock), skew_(skew_ticks) {
  last_phase_.assign(nprocs, 0);
  // Sampling window: one Read-Clock spans samples() reads + 1 local step.
  window_.assign(nprocs,
                 std::vector<std::uint64_t>(clock.samples() + 2, 0));
  wpos_.assign(nprocs, 0);
  wlen_.assign(nprocs, 0);
  pending_.assign(nprocs, PendingRead{});
}

void ClockOracle::on_steps(std::span<const sim::StepEvent> evs) {
  // Hoisted out of the per-event loop: the clock geometry (threshold,
  // ownership test) and the running update total — the ring bookkeeping
  // divides by the threshold on EVERY event, so keeping `total` and
  // `threshold` in registers is the win here.
  const clockx::PhaseClock* const clock = clock_;
  const std::uint64_t threshold = clock->threshold();
  const std::size_t nprocs = window_.size();
  std::uint64_t total = total_;

  for (const sim::StepEvent& ev : evs) {
    // Record the true tick at each processor step BEFORE applying the step,
    // so window_[p] brackets the slot values any in-flight read sampled.
    if (ev.proc < nprocs) {
      auto& ring = window_[ev.proc];
      std::size_t& wp = wpos_[ev.proc];
      ring[wp] = total / threshold;
      wp = (wp + 1) % ring.size();
      wlen_[ev.proc] = std::min(wlen_[ev.proc] + 1, ring.size());
    }

    if (!clock->owns(ev.op.addr)) continue;

    // An update is a read-then-write pair by one processor on one slot: the
    // write must store exactly (the value that processor just read) + 1.
    // NOTE the slot itself may move between the two halves (concurrent
    // updates race; a lost update can even lower it), so comparing the
    // write against the slot's current content is NOT sound — only against
    // the writer's own read.
    if (ev.op.kind == sim::Op::Kind::Read) {
      if (ev.proc < pending_.size())
        pending_[ev.proc] = PendingRead{true, ev.op.addr, ev.before.value};
      continue;
    }
    if (ev.op.kind != sim::Op::Kind::Write) continue;
    if (ev.proc < pending_.size()) {
      const PendingRead p = pending_[ev.proc];
      pending_[ev.proc].valid = false;
      if (!p.valid || p.addr != ev.op.addr)
        fail("proc " + std::to_string(ev.proc) +
             " wrote clock slot addr " + std::to_string(ev.op.addr) +
             " without reading it first (Update-Clock is read-then-write)");
      else if (ev.op.value != p.value + 1)
        fail("proc " + std::to_string(ev.proc) + " read clock slot value " +
             std::to_string(p.value) + " but wrote " +
             std::to_string(ev.op.value) +
             " (Update-Clock must add exactly 1)");
    }
    if (ev.after.value > ev.before.value)
      total += ev.after.value - ev.before.value;
  }

  total_ = total;
}

void ClockOracle::on_phase_enter(std::size_t proc, sim::Word phase) {
  if (proc >= last_phase_.size()) return;
  if (phase < last_phase_[proc])
    fail("proc " + std::to_string(proc) + " phase regressed " +
         std::to_string(last_phase_[proc]) + " -> " + std::to_string(phase) +
         " (Read-Clock monotone clamp violated)");
  last_phase_[proc] = phase;

  const std::uint64_t tick_now = total_ / clock_->threshold();
  if (phase > tick_now + 1 + skew_)
    fail("proc " + std::to_string(proc) + " entered phase " +
         std::to_string(phase) + " but true tick is only " +
         std::to_string(tick_now) + " (estimate ran ahead by > " +
         std::to_string(skew_) + " ticks)");

  // Lower bound against the tick at the START of the proc's sampling
  // window (slots only grow, so the estimate cannot undershoot the total
  // it started sampling at by more than noise).
  const auto& ring = window_[proc];
  std::uint64_t tick_window_start = 0;
  if (wlen_[proc] == ring.size())
    tick_window_start = ring[wpos_[proc]];  // oldest entry
  if (phase + skew_ < tick_window_start + 1)
    fail("proc " + std::to_string(proc) + " entered phase " +
         std::to_string(phase) + " while its sampling window began at tick " +
         std::to_string(tick_window_start) +
         " (estimate lagged by > " + std::to_string(skew_) + " ticks)");
}

// ---------------------------------------------------------------------------
// BinArrayOracle
// ---------------------------------------------------------------------------

BinArrayOracle::BinArrayOracle(const agreement::BinArray& bins,
                               agreement::SupportFn support)
    : bins_(&bins), support_(std::move(support)) {
  history_.resize(bins.bins() * bins.cells_per_bin());
}

void BinArrayOracle::on_steps(std::span<const sim::StepEvent> evs) {
  // Most steps are not bin writes: hoist the ownership filter's operands so
  // the common case is a compare-and-skip with no pointer chasing.
  const agreement::BinArray* const bins = bins_;
  const std::size_t cells_per_bin = bins->cells_per_bin();

  for (const sim::StepEvent& ev : evs) {
    if (ev.op.kind != sim::Op::Kind::Write || !bins->owns(ev.op.addr))
      continue;
    const std::size_t bin = bins->bin_of(ev.op.addr);
    const std::size_t cell = bins->cell_of(ev.op.addr);
    const sim::Word stamp = ev.op.stamp;
    const sim::Word value = ev.op.value;

    if (stamp == 0) {
      fail("bin " + std::to_string(bin) + " cell " + std::to_string(cell) +
           " written with stamp 0 (bin cells must carry a phase stamp)");
      continue;
    }
    if (support_ && !support_(bin, value))
      fail("bin " + std::to_string(bin) + " cell " + std::to_string(cell) +
           " written with value " + std::to_string(value) +
           " outside the support of f_i");

    if (cell > 0) {
      // Copy provenance: the value must have been observed in cell-1 with
      // the same stamp at some earlier step, otherwise the Fig. 2 re-read
      // rule (never give a stale value a current stamp) was skipped.
      const auto& prev = history_[bin * cells_per_bin + cell - 1];
      const auto it = prev.find(stamp);
      const bool ok =
          it != prev.end() &&
          std::find(it->second.begin(), it->second.end(), value) !=
              it->second.end();
      if (!ok)
        fail("bin " + std::to_string(bin) + " cell " + std::to_string(cell) +
             " copied value " + std::to_string(value) + " stamp " +
             std::to_string(stamp) +
             " which cell " + std::to_string(cell - 1) +
             " never held under that stamp (copy-forward provenance)");
    }

    auto& vals = history_[bin * cells_per_bin + cell][stamp];
    if (std::find(vals.begin(), vals.end(), value) == vals.end())
      vals.push_back(value);
  }
}

// ---------------------------------------------------------------------------
// ClobberOracle
// ---------------------------------------------------------------------------

ClobberOracle::ClobberOracle(const agreement::BinArray& bins,
                             const clockx::PhaseClock& clock,
                             std::uint32_t max_per_bin)
    : bins_(&bins),
      clock_(&clock),
      bound_(max_per_bin != 0 ? max_per_bin : default_bound(bins.bins())) {
  clobbers_.assign(bins.bins(), 0);
}

void ClobberOracle::on_steps(std::span<const sim::StepEvent> evs) {
  // Hoisted: both ownership filters, the clock threshold, and the running
  // phase state — reads and locals (the bulk of every span) fall through on
  // one branch.
  const clockx::PhaseClock* const clock = clock_;
  const agreement::BinArray* const bins = bins_;
  const std::uint64_t threshold = clock->threshold();
  sim::Word true_phase = true_phase_;

  for (const sim::StepEvent& ev : evs) {
    if (ev.op.kind != sim::Op::Kind::Write) continue;

    if (clock->owns(ev.op.addr)) {
      if (ev.after.value > ev.before.value)
        total_ += ev.after.value - ev.before.value;
      const sim::Word tick = total_ / threshold;
      if (tick + 1 != true_phase) {
        true_phase = tick + 1;
        std::fill(clobbers_.begin(), clobbers_.end(), 0);
      }
      continue;
    }

    if (!bins->owns(ev.op.addr)) continue;
    if (ev.op.stamp == true_phase) continue;
    const std::size_t bin = bins->bin_of(ev.op.addr);
    const std::uint32_t c = ++clobbers_[bin];
    max_observed_ = std::max(max_observed_, c);
    if (c == bound_ + 1)  // report once per (bin, phase)
      fail("bin " + std::to_string(bin) + " suffered " + std::to_string(c) +
           " clobbers in true phase " + std::to_string(true_phase) +
           " (Lemma 1 cap is " + std::to_string(bound_) + ")");
  }

  true_phase_ = true_phase;
}

// ---------------------------------------------------------------------------
// ConsensusOracle
// ---------------------------------------------------------------------------

ConsensusOracle::ConsensusOracle(const consensus::ScanConsensus& sc)
    : sc_(&sc), n_(sc.values()), base_(sc.register_base()) {
  proposals_.assign(n_, std::vector<std::optional<sim::Word>>(n_));
}

void ConsensusOracle::on_steps(std::span<const sim::StepEvent> evs) {
  const std::size_t base = base_;
  const std::size_t n = n_;
  const std::size_t limit = base + n * n;
  for (const sim::StepEvent& ev : evs) {
    if (ev.op.kind != sim::Op::Kind::Write) continue;
    if (ev.op.addr < base || ev.op.addr >= limit) continue;
    const std::size_t idx = (ev.op.addr - base) / n;
    const std::size_t owner = (ev.op.addr - base) % n;
    if (ev.proc != owner)
      fail("proc " + std::to_string(ev.proc) + " wrote register R[" +
           std::to_string(idx) + "][" + std::to_string(owner) +
           "] it does not own (single-writer violated)");
    if (ev.before.stamp != 0)
      fail("register R[" + std::to_string(idx) + "][" + std::to_string(owner) +
           "] written twice (write-once violated)");
    proposals_[idx][owner] = ev.op.value;
  }
}

void ConsensusOracle::on_finish(const sim::Simulator&) {
  for (std::size_t i = 0; i < n_; ++i) {
    std::optional<sim::Word> agreed;
    for (std::size_t p = 0; p < n_; ++p) {
      const auto& d = sc_->decisions_of(p);
      if (i >= d.size() || !d[i].has_value()) continue;
      const sim::Word v = *d[i];
      if (!agreed.has_value()) agreed = v;
      if (v != *agreed) {
        fail("value " + std::to_string(i) + ": proc " + std::to_string(p) +
             " decided " + std::to_string(v) + " but another proc decided " +
             std::to_string(*agreed) + " (agreement violated)");
        break;
      }
      // Validity + the deterministic rule: a decision is only taken once
      // every register is filled, and it must be processor 0's proposal.
      if (!proposals_[i][0].has_value() || v != *proposals_[i][0]) {
        fail("value " + std::to_string(i) + ": proc " + std::to_string(p) +
             " decided " + std::to_string(v) +
             " != lowest-numbered proposal (validity/decision rule)");
        break;
      }
    }
  }
}

}  // namespace apex::check
