// The adversarial fuzz driver.
//
// Runs a grid of protocol × fuzzed-schedule × seed trials on the
// batch::SweepEngine, each trial watched by the full invariant-oracle set
// (oracle.h).  Everything is deterministic in (config seed, trial index):
// output is byte-identical for every --jobs value, and a failing trial is
// re-run, SHRUNK and dumped as a replayable repro file from its index
// alone.
//
// Shrinking: the failing trial is re-run under a RecordingSchedule to
// capture the exact grant trace up to the violation, then the shortest
// prefix that still reproduces the same oracle failure is found by binary
// search; the result is a minimal ScriptedSchedule (round-robin beyond the
// prefix) — usually a few hundred grants instead of an opaque seed.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "check/fuzz_schedule.h"
#include "check/oracle.h"

namespace apex::check {

enum class FuzzProtocol { kAgreement, kConsensus, kWorkload, kGrammar };
const char* fuzz_protocol_name(FuzzProtocol p) noexcept;

/// The registered PRAM workloads the fuzzer draws kWorkload trials from:
/// the irregular/data-dependent suite, run through the full execution
/// scheme (exec::Executor, nondeterministic) under a FuzzedSchedule with
/// the invariant oracles attached, plus the workload's own final-memory
/// verdict and the produced-trace consistency oracle.
///
/// kGrammar trials add a second adversary axis: a seed-deterministic
/// grammar-generated .pram program (lang::generate_program) is compiled
/// through the full language front-end, run through the execution scheme
/// under the same oracle set, checked against the produced-trace
/// consistency oracle, and — when the generated program is deterministic —
/// diffed bit-for-bit against the reference interpreter's replay.  A
/// compile failure of generated source is itself a finding
/// (oracle "grammar_compile"): the generator emits EREW-valid programs by
/// construction.
const std::vector<const char*>& fuzz_workload_pool();

struct FuzzConfig {
  std::size_t trials = 100;
  std::size_t jobs = 1;        ///< SweepEngine workers; 0 = all hardware.
  std::uint64_t seed = 1;      ///< Corpus base seed.
  bool shrink = true;          ///< Shrink failures to a minimal prefix.
  std::string repro_dir;       ///< When set, dump repro files here.
  /// Oracle tolerances (see oracle.h).
  std::uint64_t skew_ticks = 2;
  std::uint32_t clobber_bound = 0;  ///< 0 = ClobberOracle::default_bound.
  /// Restrict the corpus to kGrammar trials (the CI grammar smoke and
  /// `apexcli fuzz --grammar`); the default mix interleaves all protocols.
  bool grammar_only = false;
};

/// One fully-specified trial (also the self-test's and replayer's entry
/// point).  Adversary precedence: script > fuzzed > kind.
struct TrialSpec {
  FuzzProtocol protocol = FuzzProtocol::kAgreement;
  std::size_t n = 8;
  std::size_t beta = 8;
  std::uint64_t seed = 1;
  std::uint64_t budget = 40000;
  std::string workload;  ///< Registry name (kWorkload trials only).
  const std::vector<std::size_t>* script = nullptr;  ///< Replay a grant trace.
  bool fuzzed = false;  ///< FuzzedSchedule(n, seed) adversary.
  sim::ScheduleKind kind = sim::ScheduleKind::kUniformRandom;
  /// Grant engine the trial's simulator runs on.  The default is the
  /// production engine; the engine-equivalence suite replays identical
  /// specs on kSingleStep and asserts identical outcomes.
  sim::GrantEngine engine = sim::GrantEngine::kBatched;
};

struct TrialOutcome {
  bool failed = false;
  std::string oracle;    ///< First failing oracle, or "exception".
  std::string message;
  std::string schedule_desc;
  std::vector<std::size_t> trace;  ///< Grant trace (record=true only).
};

/// Run one trial with the oracle set attached; record=true captures the
/// grant trace.  Never throws: run-time exceptions become an "exception"
/// outcome (they are findings too).
TrialOutcome run_trial(const TrialSpec& spec, const FuzzConfig& cfg,
                       bool record = false);

/// The deterministic trial grid point for index `i` under `cfg`.
TrialSpec make_trial_spec(const FuzzConfig& cfg, std::size_t i);

struct FuzzFailure {
  std::size_t trial = 0;
  std::uint64_t seed = 0;
  FuzzProtocol protocol = FuzzProtocol::kAgreement;
  std::size_t n = 0;
  std::uint64_t budget = 0;
  std::string workload;  ///< kWorkload trials only.
  std::string oracle;
  std::string message;
  std::string schedule;
  std::vector<std::size_t> repro_script;  ///< Shrunk grant prefix.
  std::string repro_path;                 ///< File dumped (repro_dir set).
};

struct FuzzReport {
  std::size_t trials = 0;
  std::vector<FuzzFailure> failures;  ///< Ascending trial index.
  bool ok() const noexcept { return failures.empty(); }
};

FuzzReport run_fuzz(const FuzzConfig& cfg);

// ---- Repro files ----------------------------------------------------------

struct Repro {
  FuzzProtocol protocol = FuzzProtocol::kAgreement;
  std::size_t n = 0;
  std::size_t beta = 8;
  std::uint64_t seed = 0;
  std::uint64_t budget = 0;
  std::string workload;  ///< kWorkload repros only.
  /// Oracle tolerances the failure was found under (replay uses these, not
  /// the replayer's defaults).
  std::uint64_t skew_ticks = 2;
  std::uint32_t clobber_bound = 0;
  std::string oracle;                 ///< Expected failing oracle.
  std::vector<std::size_t> script;    ///< Empty: replay the fuzzed seed.
};

void write_repro(const std::string& path, const Repro& r);
Repro load_repro(const std::string& path);

/// Re-run a repro with fresh oracles.  Returns the observed outcome; the
/// repro "reproduces" when outcome.failed and outcome.oracle == r.oracle.
TrialOutcome replay_repro(const Repro& r, const FuzzConfig& cfg);

}  // namespace apex::check
