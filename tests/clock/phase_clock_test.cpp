#include "clock/phase_clock.h"

#include <gtest/gtest.h>

#include <memory>

#include "sim/simulator.h"

namespace apex::clockx {
namespace {

using sim::Ctx;
using sim::ProcTask;
using sim::RoundRobinSchedule;
using sim::SimConfig;
using sim::Simulator;

// Proc: perform `k` clock updates, then stop.
ProcTask updater(Ctx& ctx, PhaseClock& clk, int k) {
  for (int i = 0; i < k; ++i) co_await clk.update(ctx);
}

// Proc: perform one read and store the result out-of-band.
ProcTask reader(Ctx& ctx, PhaseClock& clk, std::uint64_t& out) {
  out = co_await clk.read(ctx);
}

// Proc: alternate updates and reads; record the sequence of read values.
ProcTask update_and_read(Ctx& ctx, PhaseClock& clk, int rounds,
                         std::vector<std::uint64_t>& ticks) {
  for (int i = 0; i < rounds; ++i) {
    co_await clk.update(ctx);
    ticks.push_back(co_await clk.read(ctx));
  }
}

struct Fixture {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<PhaseClock> clk;

  explicit Fixture(std::size_t n, ClockConfig cc = {}, std::uint64_t seed = 1) {
    cc.nprocs = n;
    sim = std::make_unique<Simulator>(
        SimConfig{n, 0, seed}, std::make_unique<RoundRobinSchedule>(n));
    clk = std::make_unique<PhaseClock>(sim->memory(), cc);
  }
};

TEST(PhaseClock, DefaultsDeriveFromN) {
  Fixture f(64);
  EXPECT_EQ(f.clk->slots(), 64u);
  EXPECT_EQ(f.clk->samples(), 3u * lg(64));  // 18
  EXPECT_EQ(f.clk->threshold(), 8u * 64u / 8u * 6u);  // alpha=6 -> 384
}

TEST(PhaseClock, UpdateCostsTwoSteps) {
  Fixture f(1);
  f.sim->spawn([&](Ctx& c) { return updater(c, *f.clk, 10); });
  f.sim->run(1000);
  // 10 updates x 2 + final resume.
  EXPECT_EQ(f.sim->total_work(), 21u);
}

TEST(PhaseClock, ReadCostMatchesContract) {
  Fixture f(1);
  std::uint64_t out = 0;
  f.sim->spawn([&](Ctx& c) { return reader(c, *f.clk, out); });
  f.sim->run(1000);
  EXPECT_EQ(f.sim->total_work(), f.clk->read_cost() + 1);
}

TEST(PhaseClock, ExactTotalCountsUnracedUpdates) {
  // A single processor's read-then-write increments never race.
  Fixture f(1);
  f.sim->spawn([&](Ctx& c) { return updater(c, *f.clk, 100); });
  f.sim->run(10000);
  EXPECT_EQ(f.clk->exact_total(), 100u);
}

TEST(PhaseClock, TickZeroBeforeThreshold) {
  Fixture f(4);
  std::uint64_t out = 99;
  f.sim->spawn([&](Ctx& c) { return updater(c, *f.clk, 2); });
  for (int p = 1; p < 3; ++p)
    f.sim->spawn([&](Ctx& c) { return updater(c, *f.clk, 2); });
  f.sim->spawn([&](Ctx& c) { return reader(c, *f.clk, out); });
  f.sim->run(10000);
  EXPECT_EQ(out, 0u);
}

TEST(PhaseClock, TickAdvancesWithinAlphaBracket) {
  // Drive 1280 = 10*tau update invocations from all processors.  The
  // [alpha1, alpha2] contract allows a constant-factor gap between
  // invocations and recorded increments: concurrent read-then-write
  // increments to the same slot can be lost (the design absorbs the loss
  // into the bracket; bench E8 measures it).  Assert the bracket, not
  // losslessness.
  const std::size_t n = 32;
  ClockConfig cc;
  cc.alpha = 4.0;
  Fixture f(n, cc, 7);
  std::vector<std::vector<std::uint64_t>> ticks(n);
  for (std::size_t p = 0; p < n; ++p)
    f.sim->spawn([&, p](Ctx& c) { return update_and_read(c, *f.clk, 40, ticks[p]); });
  f.sim->run(1'000'000);
  const std::uint64_t invocations = 32 * 40;
  // Lost increments are a bounded constant fraction, not a collapse.
  EXPECT_LE(f.clk->exact_total(), invocations);
  EXPECT_GE(f.clk->exact_total(), invocations / 3);
  // 10*tau invocations advance the tick at least twice (alpha2 sufficiency)
  // and at most 10 times (alpha1 necessity: a tick can never cost fewer
  // invocations than recorded increments).
  std::uint64_t max_tick = 0;
  for (const auto& ts : ticks)
    for (auto t : ts) max_tick = std::max(max_tick, t);
  EXPECT_GE(max_tick, 2u);
  EXPECT_LE(max_tick, 10u);
  // Every processor eventually observed an advanced clock.
  for (const auto& ts : ticks) {
    ASSERT_FALSE(ts.empty());
    EXPECT_GE(ts.back(), 1u);
  }
}

TEST(PhaseClock, ReaderViewIsMonotone) {
  const std::size_t n = 16;
  Fixture f(n, {}, 3);
  std::vector<std::vector<std::uint64_t>> ticks(n);
  for (std::size_t p = 0; p < n; ++p)
    f.sim->spawn([&, p](Ctx& c) { return update_and_read(c, *f.clk, 200, ticks[p]); });
  f.sim->run(5'000'000);
  for (const auto& ts : ticks) {
    for (std::size_t i = 1; i < ts.size(); ++i)
      ASSERT_GE(ts[i], ts[i - 1]) << "reader view went backwards";
  }
}

TEST(PhaseClock, EstimateTracksExactUnderConcurrency) {
  const std::size_t n = 64;
  Fixture f(n, {}, 11);
  std::vector<std::vector<std::uint64_t>> ticks(n);
  for (std::size_t p = 0; p < n; ++p)
    f.sim->spawn([&, p](Ctx& c) { return update_and_read(c, *f.clk, 100, ticks[p]); });
  f.sim->run(10'000'000);
  // Read-then-write increments lose an update when another processor hits
  // the same slot between the read and the write.  With m = n slots and up
  // to n in-flight increments the retention is at worst about
  // (1 - 1/m)^n ~ e^-1; this constant-factor loss is exactly what the
  // paper's [alpha1, alpha2] bracket absorbs (measured in bench E8).
  EXPECT_GT(f.clk->exact_total(), 64u * 100u * 35 / 100);
  EXPECT_LE(f.clk->exact_total(), 64u * 100u);
  // Final reader estimates within a factor-2 bracket of the exact tick.
  const double exact = static_cast<double>(f.clk->exact_tick());
  for (const auto& ts : ticks) {
    ASSERT_FALSE(ts.empty());
    const double got = static_cast<double>(ts.back());
    EXPECT_GE(got, exact * 0.4 - 2.0);
    EXPECT_LE(got, exact * 2.0 + 2.0);
  }
}

TEST(PhaseClock, OwnsOnlyItsRegion) {
  Fixture f(8);
  const std::size_t base = f.clk->base_addr();
  EXPECT_TRUE(f.clk->owns(base));
  EXPECT_TRUE(f.clk->owns(base + f.clk->slots() - 1));
  EXPECT_FALSE(f.clk->owns(base + f.clk->slots()));
  const std::size_t more = f.sim->memory().extend(4);
  EXPECT_FALSE(f.clk->owns(more));
}

TEST(PhaseClock, ValidatesConfig) {
  sim::Memory mem(0);
  ClockConfig bad;
  bad.nprocs = 0;
  EXPECT_THROW(PhaseClock(mem, bad), std::invalid_argument);
  ClockConfig bad2;
  bad2.nprocs = 4;
  bad2.alpha = -1.0;
  EXPECT_THROW(PhaseClock(mem, bad2), std::invalid_argument);
}

TEST(PhaseClock, NecessityLowerBound) {
  // "At least alpha1*n invocations are necessary": with fewer than tau/2
  // updates, no reader may observe tick >= 1 (sampling can overestimate,
  // but by at most ~2x with these parameters; this is the w.h.p. claim the
  // paper's constants encode).
  const std::size_t n = 64;
  ClockConfig cc;
  cc.alpha = 8.0;
  Fixture f(n, cc, 13);
  const std::uint64_t tau = 8 * 64;
  std::vector<std::vector<std::uint64_t>> ticks(n);
  const int per_proc = static_cast<int>(tau / (2 * n));  // tau/2 total updates
  for (std::size_t p = 0; p < n; ++p)
    f.sim->spawn([&, p](Ctx& c) { return update_and_read(c, *f.clk, per_proc, ticks[p]); });
  f.sim->run(1'000'000);
  for (const auto& ts : ticks)
    for (auto t : ts) EXPECT_EQ(t, 0u);
}

}  // namespace
}  // namespace apex::clockx
