// CSR builder + delta encoding + partitioner unit tests (the graph
// substrate under the CSR-backed bfs/spmv kernels).
#include "graph/csr.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

namespace apex::graph {
namespace {

TEST(CsrBuilder, EmptyGraphHasAllEmptyRows) {
  CsrBuilder b(4, 4);
  Csr csr = b.build();
  EXPECT_EQ(csr.n_rows(), 4u);
  EXPECT_EQ(csr.nnz(), 0u);
  EXPECT_EQ(csr.row_offsets,
            (std::vector<std::uint32_t>{0, 0, 0, 0, 0}));
  EXPECT_EQ(csr.max_degree(), 0u);
}

TEST(CsrBuilder, EmptyRowsAndIsolatedVerticesKeepOffsetsFlat) {
  // Rows 0 and 3 have edges; rows 1, 2, 4 are isolated.
  CsrBuilder b(5, 5);
  b.add_edge(3, 0);
  b.add_edge(0, 2);
  b.add_edge(0, 4);
  Csr csr = b.build();
  EXPECT_EQ(csr.row_offsets,
            (std::vector<std::uint32_t>{0, 2, 2, 2, 3, 3}));
  EXPECT_EQ(csr.cols, (std::vector<std::uint32_t>{2, 4, 0}));
  EXPECT_TRUE(csr.vals.empty());
  EXPECT_EQ(csr.degree(1), 0u);
  EXPECT_EQ(csr.degree(0), 2u);
  EXPECT_EQ(csr.max_degree(), 2u);
}

TEST(CsrBuilder, UnsortedInputComesOutSortedPerRow) {
  CsrBuilder b(2, 6);
  b.add_edge(1, 5);
  b.add_edge(0, 3);
  b.add_edge(1, 0);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  Csr csr = b.build();
  EXPECT_EQ(csr.cols, (std::vector<std::uint32_t>{1, 3, 0, 2, 5}));
  EXPECT_EQ(csr.row_offsets, (std::vector<std::uint32_t>{0, 2, 5}));
}

TEST(CsrBuilder, DuplicateUnweightedEdgesCollapseToOne) {
  CsrBuilder b(1, 4);
  b.add_edge(0, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 2);
  b.add_edge(0, 1);
  Csr csr = b.build();
  EXPECT_EQ(csr.cols, (std::vector<std::uint32_t>{1, 2}));
}

TEST(CsrBuilder, DuplicateWeightedEdgesSumWithWrapping) {
  CsrBuilder b(1, 4);
  b.add_edge(0, 1, 7);
  b.add_edge(0, 1, 5);
  b.add_edge(0, 3, ~std::uint64_t{0});
  b.add_edge(0, 3, 2);  // wraps to 1
  Csr csr = b.build();
  EXPECT_EQ(csr.cols, (std::vector<std::uint32_t>{1, 3}));
  EXPECT_EQ(csr.vals, (std::vector<std::uint64_t>{12, 1}));
}

TEST(CsrBuilder, SingleRowGraph) {
  CsrBuilder b(1, 100);
  for (std::uint32_t c : {90u, 10u, 50u}) b.add_edge(0, c, c);
  Csr csr = b.build();
  EXPECT_EQ(csr.row_offsets, (std::vector<std::uint32_t>{0, 3}));
  EXPECT_EQ(csr.cols, (std::vector<std::uint32_t>{10, 50, 90}));
  EXPECT_EQ(csr.vals, (std::vector<std::uint64_t>{10, 50, 90}));
}

TEST(CsrBuilder, RejectsOutOfRangeAndMixedEdges) {
  CsrBuilder b(2, 3);
  EXPECT_THROW(b.add_edge(2, 0), std::invalid_argument);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  b.add_edge(0, 1);
  b.add_edge(1, 2, 9);
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Delta, RoundTripsThroughEncodeDecode) {
  CsrBuilder b(6, 1000);
  b.add_edge(0, 0);    // column 0 must survive the +1 bias
  b.add_edge(0, 1);
  b.add_edge(0, 999);  // large gap inside a row
  b.add_edge(2, 500);
  b.add_edge(5, 4);
  b.add_edge(5, 5);
  Csr csr = b.build();
  std::vector<std::uint64_t> delta = delta_encode(csr);
  ASSERT_EQ(delta.size(), csr.nnz());
  // First entry of each row is biased absolute; gaps are >= 1.
  EXPECT_EQ(delta[0], 1u);    // col 0 -> 1
  EXPECT_EQ(delta[1], 1u);    // gap 0 -> 1
  EXPECT_EQ(delta[2], 998u);  // gap 1 -> 999
  for (std::uint64_t d : delta) EXPECT_GE(d, 1u);
  EXPECT_EQ(delta_decode(csr.row_offsets, delta), csr.cols);
}

TEST(Delta, DecodeRejectsMalformedStreams) {
  std::vector<std::uint32_t> offsets{0, 2};
  EXPECT_THROW(delta_decode(offsets, {1}), std::invalid_argument);
  EXPECT_THROW(delta_decode(offsets, {0, 1}), std::invalid_argument);
  EXPECT_THROW(delta_decode(offsets, {1, 0}), std::invalid_argument);
  EXPECT_EQ(delta_decode(offsets, {3, 4}),
            (std::vector<std::uint32_t>{2, 6}));
}

TEST(Partition, BalancesUniformWeightsEvenly) {
  std::vector<std::uint64_t> w(8, 1);
  EXPECT_EQ(partition_balanced(w, 4),
            (std::vector<std::uint32_t>{0, 2, 4, 6, 8}));
  EXPECT_EQ(partition_balanced(w, 1), (std::vector<std::uint32_t>{0, 8}));
}

TEST(Partition, SkewedWeightsCutNearProportionalTargets) {
  // One heavy item up front: it should own a part by itself.
  std::vector<std::uint64_t> w{100, 1, 1, 1, 1, 1};
  auto bounds = partition_balanced(w, 2);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 6u);
  EXPECT_EQ(bounds[1], 1u);  // heavy row alone in part 0
}

TEST(Partition, MorePartsThanItemsLeavesTrailingPartsEmpty) {
  std::vector<std::uint64_t> w{5, 5};
  auto bounds = partition_balanced(w, 4);
  ASSERT_EQ(bounds.size(), 5u);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i)
    EXPECT_LE(bounds[i - 1], bounds[i]);
}

TEST(Partition, ZeroWeightsAndZeroItemsAreLegal) {
  EXPECT_EQ(partition_balanced({}, 3), (std::vector<std::uint32_t>{0, 0, 0, 0}));
  std::vector<std::uint64_t> w{0, 0, 0, 0};
  auto bounds = partition_balanced(w, 2);
  EXPECT_EQ(bounds.front(), 0u);
  EXPECT_EQ(bounds.back(), 4u);
  EXPECT_THROW(partition_balanced(w, 0), std::invalid_argument);
}

}  // namespace
}  // namespace apex::graph
