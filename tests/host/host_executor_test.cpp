// HostExecutor: the full execution scheme on real threads.  Deterministic
// kernels must reproduce the synchronous reference exactly; nondeterministic
// kernels must satisfy their self-declared invariants — under genuine OS
// preemption rather than a simulated adversary.
#include "host/host_executor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex::host {
namespace {

using pram::Word;

HostExecConfig make_cfg(std::uint64_t seed) {
  HostExecConfig cfg;
  cfg.seed = seed;
  cfg.timeout_seconds = 120.0;
  return cfg;
}

// Prepend a constants step seeding vars [0, in.size()).
pram::Program with_inputs(const pram::Program& p, const std::vector<Word>& in) {
  pram::ProgramBuilder b(p.nthreads(), p.nvars());
  b.step().all([&](std::size_t i) {
    return i < in.size()
               ? pram::Instr::constant(static_cast<std::uint32_t>(i), in[i])
               : pram::Instr::nop();
  });
  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    auto sb = b.step();
    for (std::size_t t = 0; t < p.nthreads(); ++t)
      sb.thread(t, p.step(s).instrs[t]);
  }
  return b.build();
}

TEST(HostExecutor, DeterministicPipelineMatchesReference) {
  pram::ProgramBuilder b(4, 12);
  b.step()
      .thread(0, pram::Instr::constant(0, 10))
      .thread(1, pram::Instr::constant(1, 20))
      .thread(2, pram::Instr::constant(2, 3))
      .thread(3, pram::Instr::constant(3, 4));
  b.step()
      .thread(0, pram::Instr::add(4, 0, 1))
      .thread(1, pram::Instr::mul(5, 2, 3));
  b.step().thread(2, pram::Instr::sub(6, 4, 5));
  b.step().thread(0, pram::Instr::max(7, 6, 4));
  pram::Program p = b.build();
  const auto ref = pram::Interpreter(p).run_deterministic({});

  HostExecutor ex(p, make_cfg(21));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << "work=" << res.total_work;
  for (std::size_t v = 0; v < 8; ++v)
    EXPECT_EQ(res.memory[v], ref.memory[v]) << "v" << v;
}

TEST(HostExecutor, PrefixSumOnRealThreads) {
  const std::size_t n = 4;
  pram::Program p = with_inputs(pram::make_prefix_sum(n), {1, 2, 3, 4});
  HostExecutor ex(p, make_cfg(22));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed);
  EXPECT_EQ(res.memory[pram::prefix_sum_var(n, 0)], 1u);
  EXPECT_EQ(res.memory[pram::prefix_sum_var(n, 1)], 3u);
  EXPECT_EQ(res.memory[pram::prefix_sum_var(n, 2)], 6u);
  EXPECT_EQ(res.memory[pram::prefix_sum_var(n, 3)], 10u);
}

TEST(HostExecutor, SortOnRealThreads) {
  const std::size_t n = 4;
  pram::Program p = with_inputs(pram::make_odd_even_sort(n), {9, 1, 7, 3});
  HostExecutor ex(p, make_cfg(23));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed);
  const std::vector<Word> expect = {1, 3, 7, 9};
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(res.memory[pram::sort_var(n, i)], expect[i]) << "i=" << i;
}

TEST(HostExecutor, RandomizedRingColoringIsInternallyConsistent) {
  // The scheme's whole point: downstream steps of a RANDOMIZED program see
  // ONE agreed value per draw, even with every thread racing.
  const std::size_t n = 4;
  pram::Program p = pram::make_ring_coloring(n, 4);
  HostExecutor ex(p, make_cfg(24));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed);
  for (std::size_t i = 0; i < n; ++i) {
    const Word ci = res.memory[pram::ring_color_var(n, i)];
    const Word cn = res.memory[pram::ring_color_var(n, (i + 1) % n)];
    EXPECT_LT(ci, 4u);
    EXPECT_EQ(res.memory[pram::ring_conflict_var(n, i)], ci == cn ? 1u : 0u)
        << "node " << i;
  }
}

TEST(HostExecutor, ConsistencyProbeHoldsOnRealThreads) {
  const std::size_t n = 4, chain = 4;
  pram::Program p = pram::make_consistency_probe(n, chain, 1 << 20);
  HostExecutor ex(p, make_cfg(25));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed);
  for (std::size_t j = 0; j < pram::probe_flag_count(chain); ++j)
    EXPECT_EQ(res.memory[pram::probe_flag_var(n, chain, j)], 1u)
        << "flag " << j;
}

TEST(HostExecutor, GenerationsValidated) {
  pram::Program p = pram::make_coin_matrix(2, 1, 0.5);
  HostExecConfig cfg;
  cfg.generations = 1;
  EXPECT_THROW(HostExecutor(p, cfg), std::invalid_argument);
}

TEST(HostExecutor, PackWidthOverflowAbortsCleanlyInsteadOfCrashing) {
  // A program value >= 2^40 exceeds the host Pack width.  Before the
  // worker-side catch this threw std::out_of_range inside a std::thread —
  // std::terminate, killing the whole process.  Now the run must abort
  // cleanly: completed=false, the error surfaced, every thread joined.
  pram::ProgramBuilder b(2, 4);
  b.step()
      .thread(0, pram::Instr::constant(0, Word{1} << 45))
      .thread(1, pram::Instr::constant(1, 7));
  b.step().thread(0, pram::Instr::add(2, 0, 1));
  pram::Program p = b.build();
  HostExecutor ex(p, make_cfg(31));
  const auto res = ex.run();
  EXPECT_FALSE(res.completed);
  EXPECT_NE(res.error.find("40 bits"), std::string::npos) << res.error;
}

TEST(HostExecutor, ValuesJustBelowPackWidthSurvive) {
  // 2^40 - 1 is the largest representable host value; it must round-trip
  // through bins, generation slots, and the final extraction.
  const Word big = (Word{1} << 40) - 1;
  pram::ProgramBuilder b(2, 4);
  b.step()
      .thread(0, pram::Instr::constant(0, big))
      .thread(1, pram::Instr::constant(1, 1));
  b.step().thread(0, pram::Instr::min(2, 0, 1));
  pram::Program p = b.build();
  HostExecutor ex(p, make_cfg(32));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.memory[0], big);
  EXPECT_EQ(res.memory[2], 1u);
}

TEST(HostExecutor, GatherResolvesComputedTargetsOnRealThreads) {
  // Computed-index addressing through the host stamp discipline, including
  // the out-of-range branch (defined result 0).
  pram::ProgramBuilder b(2, 10);
  b.step()
      .thread(0, pram::Instr::constant(0, 2))    // idx in range
      .thread(1, pram::Instr::constant(1, 99));  // idx out of range
  b.step()
      .thread(0, pram::Instr::constant(4, 20))   // window [4, 8)
      .thread(1, pram::Instr::constant(6, 22));
  b.step().thread(0, pram::Instr::gather(8, 0, 4, 4));  // -> v6 = 22
  b.step().thread(1, pram::Instr::gather(9, 1, 4, 4));  // -> 0
  pram::Program p = b.build();
  HostExecutor ex(p, make_cfg(33));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.memory[8], 22u);
  EXPECT_EQ(res.memory[9], 0u);
}

TEST(HostExecutor, OversubscribedStillCompletes) {
  // 8 threads on however few cores this machine has.
  const std::size_t n = 8;
  pram::Program p = with_inputs(pram::make_prefix_sum(n),
                                {1, 1, 1, 1, 1, 1, 1, 1});
  HostExecutor ex(p, make_cfg(26));
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << "work=" << res.total_work;
  EXPECT_EQ(res.memory[pram::prefix_sum_var(n, 7)], 8u);
}

}  // namespace
}  // namespace apex::host
