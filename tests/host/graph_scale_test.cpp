// Graph-scale acceptance: the CSR-backed kernels (bfs, spmv) run
// audit-clean on the virtualized host executor with partition-aware
// placement and finish bit-for-bit equal to the synchronous reference
// interpreter.  Tier-1 runs n = 1e4; the soak ctest entry re-runs the same
// binary at n = 1e5 via APEX_GRAPH_N.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "host/host_executor.h"
#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex {
namespace {

using pram::Word;

std::size_t graph_n() {
  if (const char* s = std::getenv("APEX_GRAPH_N"))
    return static_cast<std::size_t>(std::stoull(s));
  return 10000;
}

class GraphScale : public ::testing::TestWithParam<const char*> {};

TEST_P(GraphScale, AuditCleanAndBitForBitOnTheVirtualizedHost) {
  const auto* wl = pram::find_workload(GetParam());
  ASSERT_NE(wl, nullptr);
  const std::size_t n = graph_n();
  ASSERT_TRUE(pram::workload_supports_n(*wl, n));
  ASSERT_NE(wl->proc_weights, nullptr) << "graph kernels report placement";
  const pram::Program p = wl->make(n);
  EXPECT_EQ(p.nthreads(), std::min<std::size_t>(n, 4096));
  const auto ref = pram::Interpreter(p).run_deterministic({});
  for (int attempt = 0; attempt < 4; ++attempt) {
    host::HostExecConfig cfg;
    cfg.seed = 2024 + static_cast<std::uint64_t>(attempt);
    cfg.os_threads = 2;
    cfg.clock_alpha = 32.0;
    cfg.generations = 6;
    cfg.timeout_seconds = 600.0;
    cfg.interleave = host::Interleave::kPartition;
    cfg.proc_weights = wl->proc_weights(n);
    host::HostExecutor ex(p, cfg);
    const auto res = ex.run();
    ASSERT_TRUE(res.completed) << wl->name << " error=" << res.error;
    if (res.lost_commits != 0 && attempt < 3) continue;  // detected damage
    ASSERT_EQ(res.lost_commits, 0u)
        << wl->name << ": repeated preemption damage across seeds";
    std::vector<Word> mem(res.memory.begin(), res.memory.end());
    EXPECT_EQ(wl->check(n, mem), "") << wl->name;
    ASSERT_EQ(mem.size(), ref.memory.size());
    for (std::size_t v = 0; v < ref.memory.size(); ++v)
      ASSERT_EQ(mem[v], ref.memory[v]) << wl->name << " v" << v;
    return;
  }
}

INSTANTIATE_TEST_SUITE_P(CsrKernels, GraphScale,
                         ::testing::Values("bfs", "spmv"),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

}  // namespace
}  // namespace apex
