// The virtualized host executor: P logical processors multiplexed onto T
// OS threads.  Pins the contracts the virtualization added on top of the
// original one-thread-per-processor port:
//   * T = 1 is a fully deterministic sequential interleaving (same seed =>
//     identical memory image, run to run), and deterministic kernels are
//     bit-for-bit the synchronous reference;
//   * oversubscription in both directions (T > cores, os_threads > P) is
//     legal — os_threads clamps to P, a worker needs a processor to drive;
//   * every interleave policy and the seq_cst fidelity fallback produce
//     audit-clean, invariant-satisfying runs;
//   * the post-join repair pass re-commits an audited-stale slot from its
//     writer's bin (and honestly reports an unrepairable one).
#include "host/host_executor.h"

#include <gtest/gtest.h>

#include <vector>

#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex::host {
namespace {

using pram::Word;

HostExecConfig virt_cfg(std::uint64_t seed, std::size_t threads,
                        double alpha = 48.0) {
  HostExecConfig cfg;
  cfg.seed = seed;
  cfg.os_threads = threads;
  cfg.clock_alpha = alpha;
  cfg.timeout_seconds = 120.0;
  return cfg;
}

void expect_matches_reference(const char* workload, std::size_t n,
                              const HostExecResult& res) {
  ASSERT_TRUE(res.completed) << workload << " error=" << res.error;
  ASSERT_EQ(res.lost_commits, 0u) << workload;
  const auto* spec = pram::find_workload(workload);
  ASSERT_NE(spec, nullptr) << workload;
  std::vector<Word> mem(res.memory.begin(), res.memory.end());
  EXPECT_EQ(spec->check(n, mem), "") << workload;
  const auto ref = pram::Interpreter(spec->make(n)).run_deterministic({});
  for (std::size_t v = 0; v < ref.memory.size(); ++v)
    ASSERT_EQ(mem[v], ref.memory[v]) << workload << " v" << v;
}

TEST(HostVirtual, SequentialRunIsDeterministicAndBitForBit) {
  // T = 1: one OS thread round-robins over all P processors — no OS timing
  // enters the execution at all, so the full interleaving is a function of
  // the seed.  Deterministic kernels must equal the synchronous reference
  // AND the whole memory image must reproduce run to run.
  for (const char* workload : {"prefix", "spmv"}) {
    const auto* spec = pram::find_workload(workload);
    const pram::Program p = spec->make(8);
    HostExecutor a(p, virt_cfg(91, 1));
    const auto ra = a.run();
    expect_matches_reference(workload, 8, ra);
    HostExecutor b(p, virt_cfg(91, 1));
    const auto rb = b.run();
    ASSERT_TRUE(rb.completed);
    EXPECT_EQ(ra.memory, rb.memory) << workload << ": T=1 not reproducible";
    EXPECT_EQ(ra.total_work, rb.total_work) << workload;
  }
}

TEST(HostVirtual, SequentialRunReproducesNondeterministicKernelsToo) {
  // Even a NONDETERMINISTIC kernel is reproducible at T = 1: the protocol
  // coins come from per-processor seeded streams and the interleaving is
  // fixed, so which draw wins agreement is fixed.
  const auto* spec = pram::find_workload("dag");
  const pram::Program p = spec->make(8);
  HostExecutor a(p, virt_cfg(92, 1));
  HostExecutor b(p, virt_cfg(92, 1));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_TRUE(ra.completed && rb.completed);
  ASSERT_EQ(ra.lost_commits, 0u);
  EXPECT_EQ(ra.memory, rb.memory);
  std::vector<Word> mem(ra.memory.begin(), ra.memory.end());
  EXPECT_EQ(spec->check(8, mem), "");
}

TEST(HostVirtual, MoreWorkerThreadsThanCores) {
  // T chosen far above any runner's core count: genuine oversubscription
  // preemption on top of virtualization.  Must still complete audit-clean
  // (or detectably damaged — retried on a fresh seed).
  const auto* spec = pram::find_workload("prefix");
  const pram::Program p = spec->make(16);
  for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
    HostExecConfig cfg = virt_cfg(93 + attempt, 16, 512.0);
    HostExecutor ex(p, cfg);
    EXPECT_EQ(ex.os_threads(), 16u);
    const auto res = ex.run();
    ASSERT_TRUE(res.completed) << res.error;
    if (res.lost_commits != 0 && attempt < 3) continue;
    expect_matches_reference("prefix", 16, res);
    return;
  }
}

TEST(HostVirtual, OsThreadsClampedToProcessorCount) {
  // T > P would leave workers with nothing to drive: os_threads clamps.
  const auto* spec = pram::find_workload("prefix");
  const pram::Program p = spec->make(4);
  HostExecutor ex(p, virt_cfg(94, 64, 512.0));
  EXPECT_EQ(ex.os_threads(), 4u);
  const auto res = ex.run();
  expect_matches_reference("prefix", 4, res);
}

TEST(HostVirtual, InterleavePoliciesAllProduceValidRuns) {
  const auto* spec = pram::find_workload("spmv");
  const pram::Program p = spec->make(16);
  for (const Interleave policy :
       {Interleave::kRoundRobin, Interleave::kRandom, Interleave::kBlock}) {
    SCOPED_TRACE(interleave_name(policy));
    HostExecConfig cfg = virt_cfg(95, 2);
    cfg.interleave = policy;
    HostExecutor ex(p, cfg);
    const auto res = ex.run();
    expect_matches_reference("spmv", 16, res);
  }
}

TEST(HostVirtual, SeqCstFidelityFallback) {
  // --seq-cst restores the pre-virtualization memory discipline; results
  // must be just as clean (it is strictly stronger ordering).
  const auto* spec = pram::find_workload("spmv");
  const pram::Program p = spec->make(16);
  HostExecConfig cfg = virt_cfg(96, 2);
  cfg.seq_cst = true;
  HostExecutor ex(p, cfg);
  expect_matches_reference("spmv", 16, ex.run());
}

TEST(HostVirtual, ZeroStepProgramCompletesImmediately) {
  // A legal Program may have no steps; every processor is already past the
  // final tick, so run() must return completed with all-zero memory — the
  // per-step plan tables are empty and must never be indexed.
  const pram::Program p = pram::ProgramBuilder(8, 4).build();
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}}) {
    HostExecutor ex(p, virt_cfg(90, threads));
    const auto res = ex.run();
    EXPECT_TRUE(res.completed) << res.error;
    EXPECT_EQ(res.lost_commits, 0u);
    EXPECT_EQ(res.memory, std::vector<std::uint64_t>(4, 0));
  }
}

TEST(HostVirtual, ParseInterleave) {
  Interleave out;
  EXPECT_TRUE(parse_interleave("rr", out));
  EXPECT_EQ(out, Interleave::kRoundRobin);
  EXPECT_TRUE(parse_interleave("round_robin", out));
  EXPECT_EQ(out, Interleave::kRoundRobin);
  EXPECT_TRUE(parse_interleave("random", out));
  EXPECT_EQ(out, Interleave::kRandom);
  EXPECT_TRUE(parse_interleave("block", out));
  EXPECT_EQ(out, Interleave::kBlock);
  EXPECT_FALSE(parse_interleave("zigzag", out));
}

// --- the lost-commit repair pass --------------------------------------------

// Inject ultra-preemption damage deterministically: after the threads join
// (quiescent), overwrite the LAST writer's generation slot of one output
// variable with a stale-stamp value — exactly what a worker parked across
// >= G phases inside its commit window does, per the write-order probe that
// motivated the audit (host_executor.h).

TEST(HostVirtual, RepairRecommitsStaleSlotFromAgreedBinValue) {
  const auto* spec = pram::find_workload("prefix");
  const std::size_t n = 8;
  const pram::Program p = spec->make(n);
  const std::uint32_t victim = pram::prefix_sum_var(n, n - 1);
  // prefix_sum_var(n, n-1) is written in the program's final step, so its
  // bin still carries the wanted stamp at quiescence: repairable.
  HostExecConfig cfg = virt_cfg(97, 1);
  HostExecutor* exp = nullptr;
  const std::uint32_t want =
      static_cast<std::uint32_t>(pram::stamp_of_step(
          static_cast<std::uint32_t>(p.nsteps() - 1)));
  cfg.preaudit_fault = [&](HostMemory& mem) {
    // Stale stamp (want - G aliases the same slot mod G), garbage value.
    mem.write(exp->var_slot_addr(victim, want), 424242, want - 4);
  };
  HostExecutor ex(p, cfg);
  exp = &ex;
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.repaired_commits, 1u);
  EXPECT_EQ(res.lost_commits, 0u);
  // The repaired value is the agreed one: full reference equality holds.
  expect_matches_reference("prefix", n, res);
}

TEST(HostVirtual, RepairDisabledLeavesAuditFinding) {
  const auto* spec = pram::find_workload("prefix");
  const std::size_t n = 8;
  const pram::Program p = spec->make(n);
  const std::uint32_t victim = pram::prefix_sum_var(n, n - 1);
  HostExecConfig cfg = virt_cfg(98, 1);
  cfg.repair = false;
  HostExecutor* exp = nullptr;
  const std::uint32_t want =
      static_cast<std::uint32_t>(pram::stamp_of_step(
          static_cast<std::uint32_t>(p.nsteps() - 1)));
  cfg.preaudit_fault = [&](HostMemory& mem) {
    mem.write(exp->var_slot_addr(victim, want), 424242, want - 4);
  };
  HostExecutor ex(p, cfg);
  exp = &ex;
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.repaired_commits, 0u);
  EXPECT_EQ(res.lost_commits, 1u);  // detected, reported, NOT silently fixed
}

TEST(HostVirtual, UnrepairableSlotStaysLost) {
  // Damage a variable whose last writer ran early in the program: by
  // quiescence its bin has been recycled by later phases, so the agreed
  // value is gone and repair must honestly report the loss.
  const auto* spec = pram::find_workload("prefix");
  const std::size_t n = 8;
  const pram::Program p = spec->make(n);
  // Var 0 (the input constant) is written only by step 0 of the baked
  // prologue; by quiescence its writer's bin has been refilled with every
  // later step's stamp, so the agreed value is unrecoverable.  Clearing
  // the slot models the stale-stamp clobber (any stamp != want triggers
  // the audit identically).
  HostExecConfig cfg = virt_cfg(99, 1);
  HostExecutor* exp = nullptr;
  cfg.preaudit_fault = [&](HostMemory& mem) {
    mem.write(exp->var_slot_addr(0, 1), 0, 0);
  };
  HostExecutor ex(p, cfg);
  exp = &ex;
  const auto res = ex.run();
  ASSERT_TRUE(res.completed) << res.error;
  EXPECT_EQ(res.repaired_commits, 0u);
  EXPECT_EQ(res.lost_commits, 1u);
}

// --- P >> T at scale --------------------------------------------------------

TEST(HostVirtual, LargeInstanceOnTwoThreads) {
  // P = 64 logical processors on T = 2 OS threads: the configuration the
  // one-thread-per-processor design could never run sensibly.  spmv's
  // computed-index gathers exercise the run-time-resolved operand path.
  for (std::uint64_t attempt = 0; attempt < 4; ++attempt) {
    const auto* spec = pram::find_workload("spmv");
    const pram::Program p = spec->make(64);
    HostExecutor ex(p, virt_cfg(100 + attempt, 2));
    const auto res = ex.run();
    ASSERT_TRUE(res.completed) << res.error;
    if (res.lost_commits != 0 && attempt < 3) continue;
    expect_matches_reference("spmv", 64, res);
    return;
  }
}

}  // namespace
}  // namespace apex::host
