#include "host/host_agreement.h"

#include <gtest/gtest.h>

#include <set>

#include "host/host_memory.h"

namespace apex::host {
namespace {

TEST(Pack, RoundTrips) {
  const std::uint64_t w = Pack::pack(0x12345678AULL, 0xABCDEF);
  EXPECT_EQ(Pack::value_of(w), 0x12345678AULL);
  EXPECT_EQ(Pack::stamp_of(w), 0xABCDEFu);
}

TEST(Pack, ZeroIsEmptyCell) {
  EXPECT_EQ(Pack::value_of(0), 0u);
  EXPECT_EQ(Pack::stamp_of(0), 0u);
}

TEST(Pack, RejectsOverwideValues) {
  EXPECT_NO_THROW(Pack::pack(Pack::kValueLimit - 1, 0));
  EXPECT_THROW(Pack::pack(Pack::kValueLimit, 0), std::out_of_range);
}

TEST(Pack, StampMasked) {
  const std::uint64_t w = Pack::pack(1, 0xFFFFFFFF);
  EXPECT_EQ(Pack::stamp_of(w), Pack::kStampMask);
  EXPECT_EQ(Pack::value_of(w), 1u);
}

TEST(HostMemory, ReadWriteRoundTrip) {
  HostMemory mem(4);
  EXPECT_EQ(mem.size(), 4u);
  mem.write(2, 99, 7);
  const HostCell c = mem.read(2);
  EXPECT_EQ(c.value, 99u);
  EXPECT_EQ(c.stamp, 7u);
  EXPECT_EQ(mem.read(0).stamp, 0u);
}

TEST(HostMemory, OutOfRangeThrows) {
  HostMemory mem(2);
  EXPECT_THROW(mem.read(2), std::out_of_range);
  EXPECT_THROW(mem.write(5, 1, 1), std::out_of_range);
}

HostConfig make_cfg(std::size_t threads, std::uint64_t seed) {
  HostConfig cfg;
  cfg.nthreads = threads;
  cfg.seed = seed;
  return cfg;
}

TEST(HostAgreement, ReachesAgreementOnRealThreads) {
  HostAgreement ha(make_cfg(4, 1),
                   [](std::size_t, apex::Rng& rng) { return rng.below(1000); });
  const auto res = ha.run(30.0);
  ASSERT_TRUE(res.satisfied) << "work=" << res.total_work;
  EXPECT_GE(res.phase, 1u);
  EXPECT_EQ(res.values.size(), 4u);
  for (auto v : res.values) EXPECT_LT(v, 1000u);
  EXPECT_GT(res.total_work, 0u);
  EXPECT_GT(res.cycles, 0u);
}

TEST(HostAgreement, UniquenessHoldsInUpperHalf) {
  HostAgreement ha(make_cfg(4, 2), [](std::size_t, apex::Rng& rng) {
    return rng.below(1ULL << 30);
  });
  const auto res = ha.run(30.0);
  ASSERT_TRUE(res.satisfied);
  // The threads are stopped now; cells of the observed phase that survived
  // its successor's overwrites must all still carry the captured value.
  for (std::size_t i = 0; i < 4; ++i) {
    const auto uh = ha.upper_half_values(i, res.phase);
    ASSERT_LE(uh.size(), 1u) << "bin " << i;
    if (!uh.empty()) {
      EXPECT_EQ(uh[0], res.values[i]) << "bin " << i;
    }
  }
}

TEST(HostAgreement, DeterministicTaskAgreesOnOnlyValidValue) {
  HostAgreement ha(make_cfg(4, 3),
                   [](std::size_t i, apex::Rng&) { return 100 + i; });
  const auto res = ha.run(30.0);
  ASSERT_TRUE(res.satisfied);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(res.values[i], 100 + i);
}

TEST(HostAgreement, WorksWithMoreThreadsThanCores) {
  // Oversubscription produces exactly the preemption asynchrony the paper
  // targets; the protocol must still converge.
  HostAgreement ha(make_cfg(8, 4),
                   [](std::size_t, apex::Rng& rng) { return rng.below(64); });
  const auto res = ha.run(60.0);
  EXPECT_TRUE(res.satisfied) << "work=" << res.total_work;
}

TEST(HostAgreement, DistributionRoughlyPreservedAcrossRuns) {
  // Claim 8 smoke test on real threads: fair coins should not be heavily
  // biased by OS scheduling (loose 3:1 bound over 48 samples).
  int ones = 0, total = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    HostAgreement ha(make_cfg(4, 100 + seed), [](std::size_t, apex::Rng& rng) {
      return rng.coin(0.5) ? 1 : 0;
    });
    const auto res = ha.run(30.0);
    ASSERT_TRUE(res.satisfied);
    for (auto v : res.values) {
      ones += static_cast<int>(v);
      ++total;
    }
  }
  EXPECT_GT(ones, total / 4);
  EXPECT_LT(ones, 3 * total / 4);
}

}  // namespace
}  // namespace apex::host
