#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace apex {
namespace {

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"n", "work", "ratio"});
  t.row().cell(std::uint64_t{16}).cell(std::uint64_t{1234}).cell(1.75, 2);
  t.row().cell(std::uint64_t{32}).cell(std::uint64_t{5678}).cell(1.80, 2);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("n"), std::string::npos);
  EXPECT_NE(s.find("1234"), std::string::npos);
  EXPECT_NE(s.find("1.75"), std::string::npos);
  EXPECT_NE(s.find("5678"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.row().cell("x").cell("y");
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\nx,y\n");
}

TEST(Table, RowCount) {
  Table t({"h"});
  EXPECT_EQ(t.rows(), 0u);
  t.row().cell(1);
  t.row().cell(2);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, FmtPrecision) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt(1.0 / 3.0, 4), "0.3333");
}

TEST(Table, MixedCellTypes) {
  Table t({"i", "u", "s", "d"});
  t.row().cell(-5).cell(std::size_t{7}).cell(std::string("str")).cell(0.5, 1);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "i,u,s,d\n-5,7,str,0.5\n");
}

}  // namespace
}  // namespace apex
