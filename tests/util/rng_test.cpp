#include "util/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace apex {
namespace {

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, BelowIsInRange) {
  Rng r(7);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, (1ULL << 40)}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(r.below(bound), bound);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(9);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, RangeInclusive) {
  Rng r(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = r.range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(13);
  double sum = 0.0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / kN, 0.5, 0.02);
}

TEST(Rng, CoinFrequencyMatchesP) {
  Rng r(17);
  const int kN = 20000;
  int heads = 0;
  for (int i = 0; i < kN; ++i) heads += r.coin(0.3);
  EXPECT_NEAR(static_cast<double>(heads) / kN, 0.3, 0.02);
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng r(23);
  const std::uint64_t kBuckets = 10;
  std::vector<int> counts(kBuckets, 0);
  const int kN = 50000;
  for (int i = 0; i < kN; ++i) ++counts[r.below(kBuckets)];
  for (auto c : counts)
    EXPECT_NEAR(static_cast<double>(c), kN / 10.0, kN / 10.0 * 0.15);
}

TEST(Rng, ChildStreamsIndependentAndDeterministic) {
  Rng parent(99);
  Rng c1 = parent.child(1);
  Rng c2 = parent.child(2);
  Rng c1_again = parent.child(1);
  EXPECT_EQ(c1.next(), c1_again.next());
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (c1.next() == c2.next());
  EXPECT_LT(equal, 4);
}

TEST(Rng, ChildDoesNotPerturbParent) {
  Rng a(5), b(5);
  (void)a.child(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SeedTree, StreamsAreDomainSeparated) {
  SeedTree t{123};
  std::set<std::uint64_t> firsts;
  firsts.insert(t.schedule().next());
  firsts.insert(t.workload().next());
  for (std::size_t i = 0; i < 16; ++i) firsts.insert(t.processor(i).next());
  EXPECT_EQ(firsts.size(), 18u);  // all distinct
}

TEST(SeedTree, ScheduleIndependentOfProcessorStreams) {
  // Drawing from processor streams must not change the schedule stream:
  // this is the structural form of the oblivious-adversary requirement.
  SeedTree t{7};
  Rng s1 = t.schedule();
  for (std::size_t i = 0; i < 8; ++i) {
    Rng p = t.processor(i);
    for (int k = 0; k < 100; ++k) (void)p.next();
  }
  Rng s2 = t.schedule();
  for (int k = 0; k < 32; ++k) EXPECT_EQ(s1.next(), s2.next());
}

TEST(Mix64, DistinctInputsDistinctOutputs) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t a = 0; a < 30; ++a)
    for (std::uint64_t b = 0; b < 30; ++b) outs.insert(mix64(a, b));
  EXPECT_EQ(outs.size(), 900u);
}

}  // namespace
}  // namespace apex
