#include "util/math.h"

#include <gtest/gtest.h>

namespace apex {
namespace {

TEST(Math, FloorLog2) {
  EXPECT_EQ(floor_log2(1), 0u);
  EXPECT_EQ(floor_log2(2), 1u);
  EXPECT_EQ(floor_log2(3), 1u);
  EXPECT_EQ(floor_log2(4), 2u);
  EXPECT_EQ(floor_log2(1023), 9u);
  EXPECT_EQ(floor_log2(1024), 10u);
  EXPECT_EQ(floor_log2(1ULL << 63), 63u);
}

TEST(Math, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0u);
  EXPECT_EQ(ceil_log2(2), 1u);
  EXPECT_EQ(ceil_log2(3), 2u);
  EXPECT_EQ(ceil_log2(4), 2u);
  EXPECT_EQ(ceil_log2(5), 3u);
  EXPECT_EQ(ceil_log2(1024), 10u);
  EXPECT_EQ(ceil_log2(1025), 11u);
}

TEST(Math, LgNeverZero) {
  EXPECT_EQ(lg(0), 1u);
  EXPECT_EQ(lg(1), 1u);
  EXPECT_EQ(lg(2), 1u);
  EXPECT_EQ(lg(1024), 10u);
}

TEST(Math, LgLg) {
  EXPECT_EQ(lglg(2), 1u);
  EXPECT_EQ(lglg(4), 1u);
  EXPECT_EQ(lglg(16), 2u);
  EXPECT_EQ(lglg(256), 3u);
  EXPECT_EQ(lglg(1ULL << 16), 4u);
  EXPECT_GE(lglg(0), 1u);
}

TEST(Math, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(2));
  EXPECT_FALSE(is_pow2(3));
  EXPECT_TRUE(is_pow2(1ULL << 40));
  EXPECT_FALSE(is_pow2((1ULL << 40) + 1));
}

TEST(Math, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(1000), 1024u);
}

TEST(Math, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4u);
  EXPECT_EQ(ceil_div(9, 3), 3u);
  EXPECT_EQ(ceil_div(1, 100), 1u);
}

TEST(Math, HeadlineBound) {
  // n lg n lglg n at n = 1024: 1024 * 10 * ceil(log2(10))=4 -> 40960.
  EXPECT_DOUBLE_EQ(n_logn_loglogn(1024), 1024.0 * 10.0 * 4.0);
  EXPECT_DOUBLE_EQ(n_logn(1024), 1024.0 * 10.0);
}

TEST(Math, BoundsAreMonotoneInN) {
  double prev = 0;
  for (std::size_t n = 2; n <= 1 << 14; n *= 2) {
    const double v = n_logn_loglogn(n);
    EXPECT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace apex
