#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace apex {
namespace {

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) a.add(x);
  EXPECT_EQ(a.count(), 5u);
  EXPECT_DOUBLE_EQ(a.mean(), 3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 2.5);
  EXPECT_DOUBLE_EQ(a.min(), 1.0);
  EXPECT_DOUBLE_EQ(a.max(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 15.0);
}

TEST(Accumulator, EmptyAndSingle) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.ci95(), 0.0);
  a.add(7.0);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, MergeMatchesCombined) {
  Rng r(3);
  Accumulator a, b, all;
  for (int i = 0; i < 500; ++i) {
    const double x = r.uniform() * 10.0;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a, empty;
  a.add(1.0);
  a.add(3.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  Accumulator e2;
  e2.merge(a);
  EXPECT_EQ(e2.count(), 2u);
  EXPECT_DOUBLE_EQ(e2.mean(), 2.0);
}

TEST(Quantile, Median) {
  EXPECT_DOUBLE_EQ(quantile({3, 1, 2}, 0.5), 2.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile({5}, 0.99), 5.0);
}

TEST(Quantile, Extremes) {
  EXPECT_DOUBLE_EQ(quantile({9, 4, 7}, 0.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile({9, 4, 7}, 1.0), 9.0);
  EXPECT_THROW(quantile({}, 0.5), std::invalid_argument);
}

TEST(ChiSquare, UniformSampleAccepted) {
  Rng r(101);
  const std::size_t k = 8;
  std::vector<std::uint64_t> obs(k, 0);
  for (int i = 0; i < 80000; ++i) ++obs[r.below(k)];
  std::vector<double> probs(k, 1.0 / k);
  const double stat = chi_square_stat(obs, probs);
  const double p = chi_square_pvalue(stat, k - 1);
  EXPECT_GT(p, 0.001);
}

TEST(ChiSquare, BiasedSampleRejected) {
  // Claim 8's test in miniature: a distribution that does NOT match the
  // expected probabilities must be flagged.
  std::vector<std::uint64_t> obs = {9000, 1000};
  std::vector<double> probs = {0.5, 0.5};
  const double stat = chi_square_stat(obs, probs);
  const double p = chi_square_pvalue(stat, 1);
  EXPECT_LT(p, 1e-6);
}

TEST(ChiSquare, ZeroProbabilityBucket) {
  std::vector<std::uint64_t> ok = {10, 0};
  std::vector<double> probs = {1.0, 0.0};
  EXPECT_DOUBLE_EQ(chi_square_stat(ok, probs), 0.0);
  std::vector<std::uint64_t> bad = {10, 1};
  EXPECT_TRUE(std::isinf(chi_square_stat(bad, probs)));
  EXPECT_DOUBLE_EQ(chi_square_pvalue(chi_square_stat(bad, probs), 1), 0.0);
}

TEST(GammaQ, KnownValues) {
  // Q(0.5, x) = erfc(sqrt(x)).
  for (double x : {0.1, 0.5, 1.0, 2.0, 5.0}) {
    EXPECT_NEAR(gamma_q(0.5, x), std::erfc(std::sqrt(x)), 1e-10);
  }
  // Q(1, x) = exp(-x).
  for (double x : {0.2, 1.0, 3.0, 10.0}) {
    EXPECT_NEAR(gamma_q(1.0, x), std::exp(-x), 1e-10);
  }
}

TEST(ChiSquarePValue, MedianNearHalf) {
  // The median of chi2 with k dof is approximately k(1-2/(9k))^3.
  const std::size_t k = 10;
  const double med = k * std::pow(1.0 - 2.0 / (9.0 * k), 3);
  EXPECT_NEAR(chi_square_pvalue(med, k), 0.5, 0.02);
}

TEST(RatioFit, ConstantRatioIsFlat) {
  std::vector<double> f = {10, 20, 40, 80};
  std::vector<double> y;
  for (double v : f) y.push_back(3.0 * v);
  const auto fit = fit_ratio(y, f);
  EXPECT_NEAR(fit.geometric_mean, 3.0, 1e-12);
  EXPECT_NEAR(fit.spread, 1.0, 1e-12);
}

TEST(RatioFit, GrowingRatioHasSpread) {
  std::vector<double> f = {10, 20, 40, 80};
  std::vector<double> y = {10, 40, 160, 640};  // y ~ f^2
  const auto fit = fit_ratio(y, f);
  EXPECT_GT(fit.spread, 7.0);
}

TEST(LogLogSlope, RecoversDegree) {
  std::vector<double> x = {16, 32, 64, 128, 256};
  std::vector<double> lin, quad;
  for (double v : x) {
    lin.push_back(5.0 * v);
    quad.push_back(0.1 * v * v);
  }
  EXPECT_NEAR(loglog_slope(x, lin), 1.0, 1e-9);
  EXPECT_NEAR(loglog_slope(x, quad), 2.0, 1e-9);
}

TEST(LogLogSlope, QuasilinearBetweenOneAndTwo) {
  std::vector<double> x, y;
  for (double n = 64; n <= 65536; n *= 4) {
    x.push_back(n);
    y.push_back(n * std::log2(n));
  }
  const double s = loglog_slope(x, y);
  EXPECT_GT(s, 1.0);
  EXPECT_LT(s, 1.5);
}

}  // namespace
}  // namespace apex
