#include "util/cliargs.h"

#include <gtest/gtest.h>

namespace apex::cli {
namespace {

// ---- parse_u64_strict: the regression pinned by the apexcli bugfix ----
// std::stoull accepted " 5", "+5", "0x10" and silently stopped at the
// first non-digit; strict parsing rejects all of those.

TEST(ParseU64Strict, AcceptsPlainDecimal) {
  EXPECT_EQ(parse_u64_strict("0"), 0u);
  EXPECT_EQ(parse_u64_strict("5"), 5u);
  EXPECT_EQ(parse_u64_strict("007"), 7u);
  EXPECT_EQ(parse_u64_strict("18446744073709551615"),
            18446744073709551615ULL);
}

TEST(ParseU64Strict, RejectsSignsWhitespaceAndHex) {
  EXPECT_FALSE(parse_u64_strict("+5").has_value());
  EXPECT_FALSE(parse_u64_strict("-5").has_value());
  EXPECT_FALSE(parse_u64_strict(" 5").has_value());
  EXPECT_FALSE(parse_u64_strict("5 ").has_value());
  EXPECT_FALSE(parse_u64_strict("\t5").has_value());
  EXPECT_FALSE(parse_u64_strict("0x10").has_value());
  EXPECT_FALSE(parse_u64_strict("5e3").has_value());
  EXPECT_FALSE(parse_u64_strict("").has_value());
  EXPECT_FALSE(parse_u64_strict("12.5").has_value());
}

TEST(ParseU64Strict, RejectsOverflow) {
  EXPECT_FALSE(parse_u64_strict("18446744073709551616").has_value());
  EXPECT_FALSE(parse_u64_strict("99999999999999999999999").has_value());
}

// ---- parse_argv: every token accounted for ----

char** fake_argv(std::vector<std::string>& store) {
  static std::vector<char*> ptrs;
  ptrs.clear();
  for (auto& s : store) ptrs.push_back(s.data());
  return ptrs.data();
}

TEST(ParseArgv, SplitsFlagsAndPositionals) {
  std::vector<std::string> v = {"apexcli", "exec", "--n=8", "file.pram",
                                "--seq-cst"};
  const ParsedArgs a = parse_argv(static_cast<int>(v.size()), fake_argv(v));
  EXPECT_EQ(a.cmd, "exec");
  ASSERT_EQ(a.positional.size(), 1u);
  EXPECT_EQ(a.positional[0], "file.pram");
  EXPECT_EQ(a.kv.at("n"), "8");
  EXPECT_EQ(a.kv.at("seq-cst"), "1");  // bare flag -> "1"
}

TEST(ParseArgv, EmptyArgv) {
  std::vector<std::string> v = {"apexcli"};
  const ParsedArgs a = parse_argv(1, fake_argv(v));
  EXPECT_TRUE(a.cmd.empty());
  EXPECT_TRUE(a.kv.empty());
  EXPECT_TRUE(a.positional.empty());
}

// ---- validate_args: the strict contract ----

TEST(ValidateArgs, CleanArgsPass) {
  ParsedArgs a{"exec", {{"n", "8"}, {"seed", "1"}}, {}};
  EXPECT_EQ(validate_args(a, {"n", "seed", "sched"}, 0), "");
}

TEST(ValidateArgs, UnknownFlagWithSuggestion) {
  ParsedArgs a{"exec", {{"interelave", "rr"}}, {}};
  const std::string err =
      validate_args(a, {"interleave", "n", "seed"}, 0);
  EXPECT_NE(err.find("unknown flag '--interelave' for 'exec'"),
            std::string::npos);
  EXPECT_NE(err.find("did you mean '--interleave'?"), std::string::npos);
}

TEST(ValidateArgs, UnknownFlagFarFromAnything) {
  ParsedArgs a{"agree", {{"zzz", "1"}}, {}};
  const std::string err = validate_args(a, {"n", "seed"}, 0);
  EXPECT_NE(err.find("unknown flag '--zzz'"), std::string::npos);
  EXPECT_EQ(err.find("did you mean"), std::string::npos);
}

TEST(ValidateArgs, StrayPositionalRejected) {
  ParsedArgs a{"agree", {}, {"oops"}};
  const std::string err = validate_args(a, {"n"}, 0);
  EXPECT_NE(err.find("unexpected argument 'oops' for 'agree'"),
            std::string::npos);
}

TEST(ValidateArgs, PositionalBudgetRespected) {
  ParsedArgs one{"exec", {}, {"file.pram"}};
  EXPECT_EQ(validate_args(one, {"n"}, 1), "");
  ParsedArgs two{"exec", {}, {"a.pram", "b.pram"}};
  EXPECT_NE(validate_args(two, {"n"}, 1), "");
}

}  // namespace
}  // namespace apex::cli
