#include "pram/program.h"

#include <gtest/gtest.h>

#include "pram/interp.h"
#include "pram/workloads.h"
#include "util/math.h"

namespace apex::pram {
namespace {

TEST(ProgramBuilder, BuildsValidProgram) {
  ProgramBuilder b(2, 4);
  b.step().thread(0, Instr::constant(0, 5)).thread(1, Instr::constant(1, 7));
  b.step().thread(0, Instr::add(2, 0, 1));
  Program p = b.build();
  EXPECT_EQ(p.nthreads(), 2u);
  EXPECT_EQ(p.nvars(), 4u);
  EXPECT_EQ(p.nsteps(), 2u);
  EXPECT_FALSE(p.is_nondeterministic());
}

TEST(ProgramBuilder, DetectsNondeterminism) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 10));
  EXPECT_TRUE(b.build().is_nondeterministic());
}

TEST(ProgramBuilder, ThreadIndexValidated) {
  ProgramBuilder b(2, 2);
  auto s = b.step();
  EXPECT_THROW(s.thread(2, Instr::nop()), std::invalid_argument);
}

TEST(Erew, ConcurrentReadRejected) {
  ProgramBuilder b(2, 4);
  b.step()
      .thread(0, Instr::copy(1, 0))
      .thread(1, Instr::copy(2, 0));  // both read v0
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Erew, ConcurrentWriteRejected) {
  ProgramBuilder b(2, 4);
  b.step().thread(0, Instr::constant(0, 1)).thread(1, Instr::constant(0, 2));
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Erew, ReadWriteSameVarAllowed) {
  // Thread 0 reads v0 while thread 1 writes it: legal, because split
  // execution performs all of a step's reads before any of its writes.
  ProgramBuilder b(2, 4);
  b.step().thread(0, Instr::copy(1, 0)).thread(1, Instr::constant(0, 2));
  EXPECT_NO_THROW(b.build());
}

TEST(Erew, SelfIncrementAllowed) {
  // z = z + y reads and writes z in one step: well-defined under split
  // execution (the read sees the pre-step value).
  ProgramBuilder b(1, 2);
  b.step().thread(0, Instr::add(0, 0, 1));
  EXPECT_NO_THROW(b.build());
}

TEST(Erew, SelfIncrementExecutesWithPreStepRead) {
  ProgramBuilder b(1, 2);
  b.step().thread(0, Instr::constant(1, 3));
  b.step().thread(0, Instr::constant(0, 5));
  b.step().thread(0, Instr::add(0, 0, 1));  // v0 <- v0 + v1
  const auto r = Interpreter(b.build()).run_deterministic({});
  EXPECT_EQ(r.memory[0], 8u);
}

TEST(Erew, SelectCountsAllThreeReads) {
  ProgramBuilder b(2, 5);
  b.step()
      .thread(0, Instr::select(4, 0, 1, 2))
      .thread(1, Instr::copy(3, 2));  // v2 read twice
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Erew, VarOutOfRangeRejected) {
  ProgramBuilder b(1, 2);
  b.step().thread(0, Instr::copy(0, 5));
  EXPECT_THROW(b.build(), std::invalid_argument);
}

TEST(Erew, DisjointAccessAccepted) {
  ProgramBuilder b(3, 6);
  b.step()
      .thread(0, Instr::add(3, 0, 1))
      .thread(1, Instr::copy(4, 2))
      .thread(2, Instr::constant(5, 9));
  EXPECT_NO_THROW(b.build());
}

TEST(WriterTable, TracksLastWriter) {
  ProgramBuilder b(2, 4);
  b.step().thread(0, Instr::constant(0, 5));               // step 0 writes v0
  b.step().thread(1, Instr::copy(1, 0));                   // step 1 reads v0
  b.step().thread(0, Instr::constant(0, 6));               // step 2 rewrites v0
  b.step().thread(1, Instr::add(2, 0, 1));                 // step 3 reads v0, v1
  Program p = b.build();

  EXPECT_EQ(p.writers(1, 1).x, 0u);        // v0 written at step 0
  EXPECT_EQ(p.writers(3, 1).x, 2u);        // v0 rewritten at step 2
  EXPECT_EQ(p.writers(3, 1).y, 1u);        // v1 written at step 1
  EXPECT_EQ(p.last_writer_before(1, 3), kInitial);  // v3 never written
}

TEST(WriterTable, InitialValuesHaveStampZero) {
  ProgramBuilder b(1, 2);
  b.step().thread(0, Instr::copy(1, 0));  // reads v0's initial value
  Program p = b.build();
  EXPECT_EQ(p.writers(0, 0).x, kInitial);
  EXPECT_EQ(stamp_of_writer(kInitial), 0u);
  EXPECT_EQ(stamp_of_writer(0), 1u);
  EXPECT_EQ(stamp_of_step(4), 5u);
}

TEST(Program, ToStringListsInstructions) {
  ProgramBuilder b(2, 3);
  b.step().thread(0, Instr::add(2, 0, 1));
  const std::string s = b.build().to_string();
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("T0"), std::string::npos);
}

TEST(Program, RejectsDegenerateShapes) {
  EXPECT_THROW(Program(0, 1, {}), std::invalid_argument);
  EXPECT_THROW(Program(1, 0, {}), std::invalid_argument);
  std::vector<Step> bad_width{Step{{Instr::nop(), Instr::nop()}}};
  EXPECT_THROW(Program(1, 1, bad_width), std::invalid_argument);
}

// --- Workloads are EREW-valid and have the expected shapes -----------------

TEST(Workloads, ReductionShapeAndValidity) {
  for (std::size_t n : {2u, 4u, 8u, 16u, 32u}) {
    Program p = make_reduction(n);
    EXPECT_EQ(p.nthreads(), n);
    EXPECT_EQ(p.nsteps(), 2 * static_cast<std::size_t>(lg(n)));
    EXPECT_FALSE(p.is_nondeterministic());
  }
  EXPECT_THROW(make_reduction(3), std::invalid_argument);
  EXPECT_THROW(make_reduction(1), std::invalid_argument);
}

TEST(Workloads, LubyShape) {
  Program p = make_luby_cycle_round(8, 100);
  EXPECT_EQ(p.nthreads(), 8u);
  EXPECT_TRUE(p.is_nondeterministic());
  EXPECT_THROW(make_luby_cycle_round(2, 10), std::invalid_argument);
}

TEST(Workloads, LeaderElectionShape) {
  Program p = make_leader_election(8, 1000);
  EXPECT_TRUE(p.is_nondeterministic());
  EXPECT_THROW(make_leader_election(6, 10), std::invalid_argument);
}

TEST(Workloads, ConsistencyProbeShape) {
  Program p = make_consistency_probe(4, 6, 100);
  EXPECT_TRUE(p.is_nondeterministic());
  EXPECT_EQ(probe_flag_count(6), 6u);
  EXPECT_THROW(make_consistency_probe(1, 3, 10), std::invalid_argument);
  EXPECT_THROW(make_consistency_probe(4, 0, 10), std::invalid_argument);
}

TEST(Workloads, CoinMatrixShape) {
  Program p = make_coin_matrix(4, 3, 0.5);
  EXPECT_EQ(p.nsteps(), 3u);
  EXPECT_EQ(p.nvars(), 12u);
  EXPECT_TRUE(p.is_nondeterministic());
}

}  // namespace
}  // namespace apex::pram
