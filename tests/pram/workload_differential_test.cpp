// Cross-executor differential harness.
//
// Every REGISTERED workload (pram::workload_registry()) runs under
//   * the simulator executor (exec::Executor, nondeterministic scheme),
//     under BOTH grant engines,
//   * the deterministic-baseline scheme (deterministic kernels only — that
//     scheme is unsound for nondeterministic programs, which is E13),
//   * the synchronous reference interpreter, and
//   * HostExecutor on real std::threads,
// and the final memories must agree:
//   * deterministic kernels: bit-for-bit equal to the reference across every
//     executor, both engines, both schemes;
//   * nondeterministic kernels: each executor's final memory satisfies the
//     workload's self-declared invariants (spec.check), and the simulator
//     executor's produced trace is consistent with SOME valid synchronous
//     execution.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "exec/executor.h"
#include "host/host_executor.h"
#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex {
namespace {

using pram::Word;

constexpr std::size_t kN = 8;  // satisfies every registered constraint

// Subphase incompleteness is the scheme's designed w.h.p. failure mode and
// its probability falls exponentially in clock_alpha; the long irregular
// programs (bfs: ~230 subphases) need more per-subphase work than the
// default 24 to make a fixed-seed tier-1 run deterministic-clean.  The
// harness asserts the scheme's own audit (incomplete_tasks == 0), so a
// regression here fails loudly instead of corrupting the comparison.
constexpr double kClockAlpha = 48.0;

class Differential : public ::testing::TestWithParam<const char*> {
 protected:
  const pram::WorkloadSpec& spec() const {
    const auto* s = pram::find_workload(GetParam());
    EXPECT_NE(s, nullptr);
    return *s;
  }
};

TEST_P(Differential, SimulatorExecutorBothEnginesAgreeWithReference) {
  const auto& wl = spec();
  const pram::Program p = wl.make(kN);
  const auto ref = pram::Interpreter(p).run({}, apex::Rng(7));

  std::vector<Word> batched_memory;
  for (auto engine : {sim::GrantEngine::kBatched, sim::GrantEngine::kSingleStep}) {
    exec::ExecConfig cfg;
    cfg.seed = 42;
    cfg.engine = engine;
    cfg.clock_alpha = kClockAlpha;
    const auto chk = exec::run_checked(p, exec::Scheme::kNondeterministic, cfg);
    const char* ename =
        engine == sim::GrantEngine::kBatched ? "batched" : "single_step";
    ASSERT_TRUE(chk.result.completed) << wl.name << " " << ename;
    ASSERT_EQ(chk.result.incomplete_tasks, 0u) << wl.name << " " << ename;
    EXPECT_EQ(chk.consistency_error, "") << wl.name << " " << ename;
    EXPECT_EQ(wl.check(kN, chk.result.memory), "") << wl.name << " " << ename;
    if (wl.deterministic) {
      // Bit-for-bit against the synchronous reference, full memory image.
      ASSERT_EQ(chk.result.memory.size(), ref.memory.size()) << wl.name;
      for (std::size_t v = 0; v < ref.memory.size(); ++v)
        ASSERT_EQ(chk.result.memory[v], ref.memory[v])
            << wl.name << " " << ename << " v" << v;
    }
    // The two engines must produce the identical execution (same seed, same
    // schedule): equal memories even for nondeterministic kernels.
    if (engine == sim::GrantEngine::kBatched)
      batched_memory = chk.result.memory;
    else
      EXPECT_EQ(chk.result.memory, batched_memory)
          << wl.name << ": engines diverged";
  }
}

TEST_P(Differential, DeterministicBaselineSchemeAgreesOnDetKernels) {
  const auto& wl = spec();
  if (!wl.deterministic) GTEST_SKIP() << "det scheme is unsound here (E13)";
  const pram::Program p = wl.make(kN);
  const auto ref = pram::Interpreter(p).run_deterministic({});
  exec::ExecConfig cfg;
  cfg.seed = 43;
  cfg.clock_alpha = kClockAlpha;
  const auto chk = exec::run_checked(p, exec::Scheme::kDeterministic, cfg);
  ASSERT_TRUE(chk.result.completed) << wl.name;
  ASSERT_EQ(chk.result.incomplete_tasks, 0u) << wl.name;
  EXPECT_EQ(chk.consistency_error, "") << wl.name;
  for (std::size_t v = 0; v < ref.memory.size(); ++v)
    ASSERT_EQ(chk.result.memory[v], ref.memory[v]) << wl.name << " v" << v;
}

TEST_P(Differential, HostExecutorAgreesUnderRealPreemption) {
  const auto& wl = spec();
  const pram::Program p = wl.make(kN);
  // The OS can (rarely, on oversubscribed machines) park a worker inside
  // its commit window for whole phases, which the host executor detects
  // and reports via lost_commits (see host_executor.h).  A damaged run is
  // re-run on a fresh seed; an AUDIT-CLEAN run must be exact — that is
  // the soundness claim this test pins.
  for (int attempt = 0; attempt < 4; ++attempt) {
    host::HostExecConfig cfg;
    cfg.seed = 44 + static_cast<std::uint64_t>(attempt);
    cfg.timeout_seconds = 120.0;
    host::HostExecutor ex(p, cfg);
    const auto res = ex.run();
    ASSERT_TRUE(res.completed) << wl.name << " error=" << res.error
                               << " work=" << res.total_work;
    if (res.lost_commits != 0 && attempt < 3) continue;  // detected damage
    ASSERT_EQ(res.lost_commits, 0u)
        << wl.name << ": repeated preemption damage across seeds";
    std::vector<Word> mem(res.memory.begin(), res.memory.end());
    EXPECT_EQ(wl.check(kN, mem), "") << wl.name;
    if (wl.deterministic) {
      const auto ref = pram::Interpreter(p).run_deterministic({});
      for (std::size_t v = 0; v < ref.memory.size(); ++v)
        ASSERT_EQ(mem[v], ref.memory[v]) << wl.name << " v" << v;
    }
    return;
  }
}

TEST_P(Differential, ReferenceInterpreterSatisfiesTheVerdictItself) {
  const auto& wl = spec();
  const pram::Program p = wl.make(kN);
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    const auto r = pram::Interpreter(p).run({}, apex::Rng(seed));
    EXPECT_EQ(wl.check(kN, r.memory), "") << wl.name << " seed=" << seed;
  }
}

// The differential grid covers every registered workload by name, so a new
// registry entry is automatically pulled into the harness.
INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, Differential,
    ::testing::Values("luby", "leader", "ring", "coins", "probe", "prefix",
                      "sort", "reduction", "bfs", "merge", "spmv", "dag"),
    [](const ::testing::TestParamInfo<const char*>& info) {
      return std::string(info.param);
    });

// --- P >> T: the large registry instances on the virtualized host ----------
//
// The registry's scale_ns instances (n = 64/128) exceed any runner's core
// count; the virtualized executor drives them on T = 2 OS threads.  The
// acceptance bar is the same soundness claim as the TEST_P host case: an
// AUDIT-CLEAN run of a deterministic kernel is bit-for-bit the synchronous
// reference, and a nondeterministic kernel satisfies its invariants.

TEST(DifferentialLargeN, VirtualizedHostBitForBitAtP64) {
  for (const char* name : {"bfs", "spmv"}) {
    const auto* wl = pram::find_workload(name);
    ASSERT_NE(wl, nullptr);
    ASSERT_FALSE(wl->scale_ns.empty()) << name;
    const std::size_t n = wl->scale_ns.front();  // 64
    const pram::Program p = wl->make(n);
    for (int attempt = 0; attempt < 4; ++attempt) {
      host::HostExecConfig cfg;
      cfg.seed = 144 + static_cast<std::uint64_t>(attempt);
      cfg.os_threads = 2;
      cfg.clock_alpha = 48.0;
      cfg.timeout_seconds = 120.0;
      host::HostExecutor ex(p, cfg);
      const auto res = ex.run();
      ASSERT_TRUE(res.completed) << name << " error=" << res.error;
      if (res.lost_commits != 0 && attempt < 3) continue;  // detected damage
      ASSERT_EQ(res.lost_commits, 0u) << name;
      std::vector<Word> mem(res.memory.begin(), res.memory.end());
      EXPECT_EQ(wl->check(n, mem), "") << name;
      const auto ref = pram::Interpreter(p).run_deterministic({});
      for (std::size_t v = 0; v < ref.memory.size(); ++v)
        ASSERT_EQ(mem[v], ref.memory[v]) << name << " v" << v;
      break;
    }
  }
}

TEST(DifferentialLargeN, DagInvariantsHoldAtP64) {
  const auto* wl = pram::find_workload("dag");
  ASSERT_NE(wl, nullptr);
  const std::size_t n = 64;
  const pram::Program p = wl->make(n);
  for (int attempt = 0; attempt < 4; ++attempt) {
    host::HostExecConfig cfg;
    cfg.seed = 155 + static_cast<std::uint64_t>(attempt);
    cfg.os_threads = 2;
    cfg.clock_alpha = 48.0;
    cfg.timeout_seconds = 120.0;
    host::HostExecutor ex(p, cfg);
    const auto res = ex.run();
    ASSERT_TRUE(res.completed) << res.error;
    if (res.lost_commits != 0 && attempt < 3) continue;
    ASSERT_EQ(res.lost_commits, 0u);
    std::vector<Word> mem(res.memory.begin(), res.memory.end());
    EXPECT_EQ(wl->check(n, mem), "");
    return;
  }
}

TEST(DifferentialLargeN, ScaleInstancesAreRegistryLegal) {
  // Every registered scale_ns value must satisfy the entry's own n
  // constraints — a drifting builder precondition fails here, not deep in
  // a bench grid.
  for (const auto& spec : pram::workload_registry())
    for (const std::size_t n : spec.scale_ns)
      EXPECT_TRUE(pram::workload_supports_n(spec, n))
          << spec.name << " scale n=" << n;
}

TEST(DifferentialCoverage, EveryRegistryEntryIsInTheGrid) {
  // Guards the INSTANTIATE list above against registry drift.
  const char* listed[] = {"luby", "leader", "ring",  "coins", "probe",
                          "prefix", "sort",  "reduction", "bfs",  "merge",
                          "spmv", "dag"};
  ASSERT_EQ(std::size(listed), pram::workload_registry().size());
  for (const auto& spec : pram::workload_registry()) {
    bool found = false;
    for (const char* name : listed) found |= spec.name == std::string(name);
    EXPECT_TRUE(found) << spec.name << " missing from the differential grid";
  }
}

}  // namespace
}  // namespace apex
