#include "pram/ir.h"

#include <gtest/gtest.h>

namespace apex::pram {
namespace {

TEST(Instr, OpcodeMetadata) {
  EXPECT_EQ(reads_of(OpCode::kNop), 0);
  EXPECT_EQ(reads_of(OpCode::kConst), 0);
  EXPECT_EQ(reads_of(OpCode::kCopy), 1);
  EXPECT_EQ(reads_of(OpCode::kAdd), 2);
  EXPECT_EQ(reads_of(OpCode::kSelect), 3);
  EXPECT_EQ(reads_of(OpCode::kRandBelow), 0);
  EXPECT_FALSE(writes_dest(OpCode::kNop));
  EXPECT_TRUE(writes_dest(OpCode::kCoin));
  EXPECT_TRUE(is_nondeterministic(OpCode::kRandBelow));
  EXPECT_TRUE(is_nondeterministic(OpCode::kCoin));
  EXPECT_FALSE(is_nondeterministic(OpCode::kAdd));
}

TEST(Instr, DeterministicEvaluation) {
  EXPECT_EQ(eval_deterministic(Instr::constant(0, 42), 0, 0, 0), 42u);
  EXPECT_EQ(eval_deterministic(Instr::copy(0, 1), 7, 0, 0), 7u);
  EXPECT_EQ(eval_deterministic(Instr::add(0, 1, 2), 3, 4, 0), 7u);
  EXPECT_EQ(eval_deterministic(Instr::sub(0, 1, 2), 3, 4, 0),
            static_cast<Word>(-1));
  EXPECT_EQ(eval_deterministic(Instr::mul(0, 1, 2), 3, 4, 0), 12u);
  EXPECT_EQ(eval_deterministic(Instr::min(0, 1, 2), 3, 4, 0), 3u);
  EXPECT_EQ(eval_deterministic(Instr::max(0, 1, 2), 3, 4, 0), 4u);
  EXPECT_EQ(eval_deterministic(Instr::xor_(0, 1, 2), 5, 3, 0), 6u);
  EXPECT_EQ(eval_deterministic(Instr::and_(0, 1, 2), 5, 3, 0), 1u);
  EXPECT_EQ(eval_deterministic(Instr::or_(0, 1, 2), 5, 3, 0), 7u);
  EXPECT_EQ(eval_deterministic(Instr::less(0, 1, 2), 3, 4, 0), 1u);
  EXPECT_EQ(eval_deterministic(Instr::less(0, 1, 2), 4, 3, 0), 0u);
  EXPECT_EQ(eval_deterministic(Instr::eq(0, 1, 2), 4, 4, 0), 1u);
  EXPECT_EQ(eval_deterministic(Instr::select(0, 3, 1, 2), 10, 20, 1), 10u);
  EXPECT_EQ(eval_deterministic(Instr::select(0, 3, 1, 2), 10, 20, 0), 20u);
}

TEST(Instr, SupportOfDeterministicOpsIsSingleton) {
  const Instr add = Instr::add(0, 1, 2);
  EXPECT_TRUE(in_support(add, 7, 3, 4, 0));
  EXPECT_FALSE(in_support(add, 8, 3, 4, 0));
}

TEST(Instr, SupportOfRandBelow) {
  const Instr r = Instr::rand_below(0, 10);
  EXPECT_TRUE(in_support(r, 0, 0, 0, 0));
  EXPECT_TRUE(in_support(r, 9, 0, 0, 0));
  EXPECT_FALSE(in_support(r, 10, 0, 0, 0));
}

TEST(Instr, SupportOfCoin) {
  const Instr fair = Instr::coin(0, 0.5);
  EXPECT_TRUE(in_support(fair, 0, 0, 0, 0));
  EXPECT_TRUE(in_support(fair, 1, 0, 0, 0));
  EXPECT_FALSE(in_support(fair, 2, 0, 0, 0));
  const Instr never = Instr::coin(0, 0.0);
  EXPECT_TRUE(in_support(never, 0, 0, 0, 0));
  EXPECT_FALSE(in_support(never, 1, 0, 0, 0));
  const Instr always = Instr::coin(0, 1.0);
  EXPECT_FALSE(in_support(always, 0, 0, 0, 0));
  EXPECT_TRUE(in_support(always, 1, 0, 0, 0));
}

TEST(Instr, ToStringMentionsOperands) {
  EXPECT_EQ(Instr::nop().to_string(), "nop");
  const std::string s = Instr::add(3, 1, 2).to_string();
  EXPECT_NE(s.find("add"), std::string::npos);
  EXPECT_NE(s.find("v3"), std::string::npos);
  EXPECT_NE(s.find("v1"), std::string::npos);
  EXPECT_NE(s.find("v2"), std::string::npos);
}

TEST(Instr, CoinQuantization) {
  EXPECT_EQ(Instr::coin(0, -0.5).imm, 0u);
  EXPECT_EQ(Instr::coin(0, 2.0).imm, 1ULL << 32);
  const Word half = Instr::coin(0, 0.5).imm;
  EXPECT_EQ(half, 1ULL << 31);
}

}  // namespace
}  // namespace apex::pram
