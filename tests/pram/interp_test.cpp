#include "pram/interp.h"

#include <gtest/gtest.h>

#include "pram/workloads.h"

namespace apex::pram {
namespace {

TEST(Interpreter, SimpleDeterministicProgram) {
  ProgramBuilder b(2, 4);
  b.step().thread(0, Instr::constant(0, 5)).thread(1, Instr::constant(1, 7));
  b.step().thread(0, Instr::add(2, 0, 1));
  Program p = b.build();
  const auto r = Interpreter(p).run_deterministic({});
  EXPECT_EQ(r.memory[0], 5u);
  EXPECT_EQ(r.memory[1], 7u);
  EXPECT_EQ(r.memory[2], 12u);
  EXPECT_EQ(r.produced[0][0], 5u);
  EXPECT_EQ(r.produced[1][0], 12u);
}

TEST(Interpreter, StepSemanticsAreSynchronous) {
  // Swap via simultaneous reads: both threads read the PRE-step values.
  ProgramBuilder b(2, 2);
  b.step().thread(0, Instr::copy(1, 0)).thread(1, Instr::copy(0, 1));
  Program p = b.build();
  const auto r = Interpreter(p).run_deterministic({3, 9});
  EXPECT_EQ(r.memory[0], 9u);
  EXPECT_EQ(r.memory[1], 3u);
}

TEST(Interpreter, RunDeterministicRejectsNondet) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 4));
  Program p = b.build();
  EXPECT_THROW(Interpreter(p).run_deterministic({}), std::logic_error);
}

TEST(Interpreter, ReductionComputesSum) {
  const std::size_t n = 16;
  Program p = make_reduction(n);
  std::vector<Word> init(p.nvars(), 0);
  Word expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    init[i] = i * i + 1;
    expect += init[i];
  }
  const auto r = Interpreter(p).run_deterministic(init);
  EXPECT_EQ(r.memory[reduction_result_var(n)], expect);
}

TEST(Interpreter, ReductionAllSizes) {
  for (std::size_t n : {2u, 4u, 8u, 32u, 64u}) {
    Program p = make_reduction(n);
    std::vector<Word> init(p.nvars(), 0);
    for (std::size_t i = 0; i < n; ++i) init[i] = 1;
    const auto r = Interpreter(p).run_deterministic(init);
    EXPECT_EQ(r.memory[reduction_result_var(n)], n) << "n=" << n;
  }
}

TEST(Interpreter, NondetDrawsFromRng) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 1000));
  Program p = b.build();
  Interpreter it(p);
  const auto a = it.run({}, apex::Rng(1));
  const auto b2 = it.run({}, apex::Rng(1));
  const auto c = it.run({}, apex::Rng(2));
  EXPECT_EQ(a.memory[0], b2.memory[0]);
  EXPECT_LT(a.memory[0], 1000u);
  // Different seeds almost surely differ over 1000 values.
  EXPECT_NE(a.memory[0], c.memory[0]);
}

TEST(Interpreter, LubyInvariantHoldsOnEveryExecution) {
  const std::size_t n = 16;
  Program p = make_luby_cycle_round(n, 1 << 20);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(r.memory[luby_violation_var(n, i)], 0u)
          << "seed=" << seed << " node " << i;
  }
}

TEST(Interpreter, LeaderElectionInvariants) {
  const std::size_t n = 16;
  Program p = make_leader_election(n, 1 << 16);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    Word maxv = 0;
    for (std::size_t i = 0; i < n; ++i)
      maxv = std::max(maxv, r.memory[leader_ticket_var(n, i)]);
    std::size_t leaders = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(r.memory[leader_max_var(n, i)], maxv) << "broadcast failed";
      if (r.memory[leader_flag_var(n, i)]) {
        ++leaders;
        EXPECT_EQ(r.memory[leader_ticket_var(n, i)], maxv);
      }
    }
    EXPECT_GE(leaders, 1u);
  }
}

TEST(Interpreter, ConsistencyProbeFlagsAlwaysOne) {
  const std::size_t n = 4, chain = 6;
  Program p = make_consistency_probe(n, chain, 1000);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t j = 0; j < probe_flag_count(chain); ++j)
      EXPECT_EQ(r.memory[probe_flag_var(n, chain, j)], 1u) << "flag " << j;
  }
}

// --- Consistency oracle ------------------------------------------------------

TEST(ConsistencyOracle, AcceptsInterpreterTrace) {
  const std::size_t n = 8;
  Program p = make_luby_cycle_round(n, 1000);
  const auto r = Interpreter(p).run({}, apex::Rng(3));
  const std::string err = check_execution_consistency(
      p, std::vector<Word>(p.nvars(), 0), r.produced, r.memory);
  EXPECT_EQ(err, "") << err;
}

TEST(ConsistencyOracle, RejectsOutOfSupportValue) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 4));
  Program p = b.build();
  auto r = Interpreter(p).run({}, apex::Rng(1));
  r.produced[0][0] = 99;  // impossible draw
  r.memory[0] = 99;
  const std::string err =
      check_execution_consistency(p, {0}, r.produced, r.memory);
  EXPECT_NE(err.find("not a valid result"), std::string::npos) << err;
}

TEST(ConsistencyOracle, RejectsInconsistentDeterministicOp) {
  // Copy chain where the relayed value silently changes: exactly the
  // deterministic-scheme failure mode on nondeterministic programs.
  const std::size_t n = 4, chain = 3;
  Program p = make_consistency_probe(n, chain, 1000);
  auto r = Interpreter(p).run({}, apex::Rng(5));
  // Corrupt the copy at step 2 (c2 = copy(c1)) to a different value.
  r.produced[2][1] += 1;
  const std::string err = check_execution_consistency(
      p, std::vector<Word>(p.nvars(), 0), r.produced, r.memory);
  EXPECT_NE(err, "");
}

TEST(ConsistencyOracle, RejectsFinalMemoryMismatch) {
  ProgramBuilder b(1, 2);
  b.step().thread(0, Instr::constant(0, 5));
  Program p = b.build();
  auto r = Interpreter(p).run_deterministic({});
  r.memory[0] = 6;
  const std::string err =
      check_execution_consistency(p, {0, 0}, r.produced, r.memory);
  EXPECT_NE(err.find("final memory mismatch"), std::string::npos) << err;
}

// ---------------------------------------------------------------------------
// Data-dependent addressing (kGather) edge cases
// ---------------------------------------------------------------------------

TEST(Gather, ReadsTheComputedCell) {
  // table[0..4) at vars 1..5, index in var 0, result in var 5.
  ProgramBuilder b(1, 6);
  b.step().thread(0, Instr::gather(5, 0, 1, 4));
  Program p = b.build();
  const auto r = Interpreter(p).run_deterministic({2, 10, 11, 12, 13, 0});
  EXPECT_EQ(r.memory[5], 12u);  // table[2]
}

TEST(Gather, OutOfRangeComputedIndexYieldsZeroNotAFault) {
  // The index variable holds values >= the window length, including values
  // that would overflow a size_t subscript if added to the base naively.
  ProgramBuilder b(1, 6);
  b.step().thread(0, Instr::gather(5, 0, 1, 4));
  Program p = b.build();
  for (const Word idx :
       {Word{4}, Word{5}, Word{1} << 32, ~Word{0}, ~Word{0} - 3}) {
    const auto r = Interpreter(p).run_deterministic({idx, 10, 11, 12, 13, 7});
    EXPECT_EQ(r.memory[5], 0u) << "index " << idx;
  }
}

TEST(Gather, ReadsThePreStepImageWhenWindowIsWrittenSameStep) {
  // Thread 1 overwrites table[1] in the same step thread 0 gathers from it:
  // split execution orders the read first, so the OLD value is gathered.
  ProgramBuilder b(2, 6);
  b.step()
      .thread(0, Instr::gather(5, 0, 1, 4))
      .thread(1, Instr::constant(2, 99));
  Program p = b.build();
  const auto r = Interpreter(p).run_deterministic({1, 10, 11, 12, 13, 0});
  EXPECT_EQ(r.memory[5], 11u);
  EXPECT_EQ(r.memory[2], 99u);
}

TEST(Gather, IndexComputedAtRuntimeFeedsTheGather) {
  // idx = a + b computed in step 0; gather uses it in step 1.
  ProgramBuilder b(1, 8);
  b.step().thread(0, Instr::add(2, 0, 1));
  b.step().thread(0, Instr::gather(7, 2, 3, 4));
  Program p = b.build();
  const auto r =
      Interpreter(p).run_deterministic({1, 2, 0, 20, 21, 22, 23, 0});
  EXPECT_EQ(r.memory[7], 23u);  // window[3]
}

TEST(Gather, ErewValidationMarksTheWholeWindowRead) {
  // Another thread reading any window cell in the same step is a violation.
  {
    ProgramBuilder b(2, 6);
    b.step()
        .thread(0, Instr::gather(5, 0, 1, 4))
        .thread(1, Instr::copy(4, 2));  // reads v2, inside [1, 5)
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  // Two gathers with overlapping windows likewise.
  {
    ProgramBuilder b(2, 8);
    b.step()
        .thread(0, Instr::gather(6, 0, 1, 4))
        .thread(1, Instr::gather(7, 5, 2, 3));
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  // Disjoint windows are fine.
  {
    ProgramBuilder b(2, 9);
    b.step()
        .thread(0, Instr::gather(7, 0, 1, 3))
        .thread(1, Instr::gather(8, 5, 4, 1));
    EXPECT_NO_THROW(b.build());
  }
}

TEST(Gather, WindowMustFitInsideVariableSpace) {
  {
    ProgramBuilder b(1, 6);
    b.step().thread(0, Instr::gather(5, 0, 3, 4));  // [3, 7) > nvars=6
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
  {
    ProgramBuilder b(1, 6);
    b.step().thread(0, Instr::gather(5, 0, 1, 0));  // empty window
    EXPECT_THROW(b.build(), std::invalid_argument);
  }
}

TEST(Gather, ConsistencyOracleResolvesGathersAgainstTheReplayImage) {
  ProgramBuilder b(1, 6);
  b.step().thread(0, Instr::gather(5, 0, 1, 4));
  Program p = b.build();
  auto r = Interpreter(p).run_deterministic({2, 10, 11, 12, 13, 0});
  EXPECT_EQ(check_execution_consistency(p, {2, 10, 11, 12, 13, 0},
                                        r.produced, r.memory),
            "");
  // A forged gather result must be rejected.
  r.produced[0][0] = 99;
  r.memory[5] = 99;
  EXPECT_NE(check_execution_consistency(p, {2, 10, 11, 12, 13, 0},
                                        r.produced, r.memory),
            "");
}

TEST(Gather, WriterTableResolvesRuntimeTargets) {
  // The gather target was written two steps earlier; last_writer_before
  // must answer for every window cell so executors can stamp-check.
  ProgramBuilder b(2, 8);
  b.step().thread(0, Instr::constant(3, 42)).thread(1, Instr::constant(0, 2));
  b.step().thread(0, Instr::gather(7, 0, 1, 4));
  Program p = b.build();
  EXPECT_EQ(p.last_writer_before(1, 3), 0u);   // window cell written step 0
  EXPECT_EQ(p.last_writer_before(1, 2), kInitial);
  const auto r = Interpreter(p).run_deterministic({0, 0, 7, 0, 0, 0, 0, 0});
  EXPECT_EQ(r.memory[7], 42u);  // idx=2 -> window[2] = v3 = 42
}

}  // namespace
}  // namespace apex::pram
