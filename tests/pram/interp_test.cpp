#include "pram/interp.h"

#include <gtest/gtest.h>

#include "pram/workloads.h"

namespace apex::pram {
namespace {

TEST(Interpreter, SimpleDeterministicProgram) {
  ProgramBuilder b(2, 4);
  b.step().thread(0, Instr::constant(0, 5)).thread(1, Instr::constant(1, 7));
  b.step().thread(0, Instr::add(2, 0, 1));
  Program p = b.build();
  const auto r = Interpreter(p).run_deterministic({});
  EXPECT_EQ(r.memory[0], 5u);
  EXPECT_EQ(r.memory[1], 7u);
  EXPECT_EQ(r.memory[2], 12u);
  EXPECT_EQ(r.produced[0][0], 5u);
  EXPECT_EQ(r.produced[1][0], 12u);
}

TEST(Interpreter, StepSemanticsAreSynchronous) {
  // Swap via simultaneous reads: both threads read the PRE-step values.
  ProgramBuilder b(2, 2);
  b.step().thread(0, Instr::copy(1, 0)).thread(1, Instr::copy(0, 1));
  Program p = b.build();
  const auto r = Interpreter(p).run_deterministic({3, 9});
  EXPECT_EQ(r.memory[0], 9u);
  EXPECT_EQ(r.memory[1], 3u);
}

TEST(Interpreter, RunDeterministicRejectsNondet) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 4));
  Program p = b.build();
  EXPECT_THROW(Interpreter(p).run_deterministic({}), std::logic_error);
}

TEST(Interpreter, ReductionComputesSum) {
  const std::size_t n = 16;
  Program p = make_reduction(n);
  std::vector<Word> init(p.nvars(), 0);
  Word expect = 0;
  for (std::size_t i = 0; i < n; ++i) {
    init[i] = i * i + 1;
    expect += init[i];
  }
  const auto r = Interpreter(p).run_deterministic(init);
  EXPECT_EQ(r.memory[reduction_result_var(n)], expect);
}

TEST(Interpreter, ReductionAllSizes) {
  for (std::size_t n : {2u, 4u, 8u, 32u, 64u}) {
    Program p = make_reduction(n);
    std::vector<Word> init(p.nvars(), 0);
    for (std::size_t i = 0; i < n; ++i) init[i] = 1;
    const auto r = Interpreter(p).run_deterministic(init);
    EXPECT_EQ(r.memory[reduction_result_var(n)], n) << "n=" << n;
  }
}

TEST(Interpreter, NondetDrawsFromRng) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 1000));
  Program p = b.build();
  Interpreter it(p);
  const auto a = it.run({}, apex::Rng(1));
  const auto b2 = it.run({}, apex::Rng(1));
  const auto c = it.run({}, apex::Rng(2));
  EXPECT_EQ(a.memory[0], b2.memory[0]);
  EXPECT_LT(a.memory[0], 1000u);
  // Different seeds almost surely differ over 1000 values.
  EXPECT_NE(a.memory[0], c.memory[0]);
}

TEST(Interpreter, LubyInvariantHoldsOnEveryExecution) {
  const std::size_t n = 16;
  Program p = make_luby_cycle_round(n, 1 << 20);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(r.memory[luby_violation_var(n, i)], 0u)
          << "seed=" << seed << " node " << i;
  }
}

TEST(Interpreter, LeaderElectionInvariants) {
  const std::size_t n = 16;
  Program p = make_leader_election(n, 1 << 16);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    Word maxv = 0;
    for (std::size_t i = 0; i < n; ++i)
      maxv = std::max(maxv, r.memory[leader_ticket_var(n, i)]);
    std::size_t leaders = 0;
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_EQ(r.memory[leader_max_var(n, i)], maxv) << "broadcast failed";
      if (r.memory[leader_flag_var(n, i)]) {
        ++leaders;
        EXPECT_EQ(r.memory[leader_ticket_var(n, i)], maxv);
      }
    }
    EXPECT_GE(leaders, 1u);
  }
}

TEST(Interpreter, ConsistencyProbeFlagsAlwaysOne) {
  const std::size_t n = 4, chain = 6;
  Program p = make_consistency_probe(n, chain, 1000);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t j = 0; j < probe_flag_count(chain); ++j)
      EXPECT_EQ(r.memory[probe_flag_var(n, chain, j)], 1u) << "flag " << j;
  }
}

// --- Consistency oracle ------------------------------------------------------

TEST(ConsistencyOracle, AcceptsInterpreterTrace) {
  const std::size_t n = 8;
  Program p = make_luby_cycle_round(n, 1000);
  const auto r = Interpreter(p).run({}, apex::Rng(3));
  const std::string err = check_execution_consistency(
      p, std::vector<Word>(p.nvars(), 0), r.produced, r.memory);
  EXPECT_EQ(err, "") << err;
}

TEST(ConsistencyOracle, RejectsOutOfSupportValue) {
  ProgramBuilder b(1, 1);
  b.step().thread(0, Instr::rand_below(0, 4));
  Program p = b.build();
  auto r = Interpreter(p).run({}, apex::Rng(1));
  r.produced[0][0] = 99;  // impossible draw
  r.memory[0] = 99;
  const std::string err =
      check_execution_consistency(p, {0}, r.produced, r.memory);
  EXPECT_NE(err.find("not a valid result"), std::string::npos) << err;
}

TEST(ConsistencyOracle, RejectsInconsistentDeterministicOp) {
  // Copy chain where the relayed value silently changes: exactly the
  // deterministic-scheme failure mode on nondeterministic programs.
  const std::size_t n = 4, chain = 3;
  Program p = make_consistency_probe(n, chain, 1000);
  auto r = Interpreter(p).run({}, apex::Rng(5));
  // Corrupt the copy at step 2 (c2 = copy(c1)) to a different value.
  r.produced[2][1] += 1;
  const std::string err = check_execution_consistency(
      p, std::vector<Word>(p.nvars(), 0), r.produced, r.memory);
  EXPECT_NE(err, "");
}

TEST(ConsistencyOracle, RejectsFinalMemoryMismatch) {
  ProgramBuilder b(1, 2);
  b.step().thread(0, Instr::constant(0, 5));
  Program p = b.build();
  auto r = Interpreter(p).run_deterministic({});
  r.memory[0] = 6;
  const std::string err =
      check_execution_consistency(p, {0, 0}, r.produced, r.memory);
  EXPECT_NE(err.find("final memory mismatch"), std::string::npos) << err;
}

}  // namespace
}  // namespace apex::pram
