// Workload-library tests: every canonical program builds under the EREW
// validator and computes the right thing on the synchronous reference
// interpreter (the asynchronous-executor side is covered in tests/exec).
#include "pram/workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "pram/interp.h"

namespace apex::pram {
namespace {

// ---------------------------------------------------------------------------
// Prefix sum
// ---------------------------------------------------------------------------

class PrefixSumSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSumSweep, MatchesSequentialScan) {
  const std::size_t n = GetParam();
  Program p = make_prefix_sum(n);
  std::vector<Word> init(p.nvars(), 0);
  for (std::size_t i = 0; i < n; ++i) init[i] = 7 * i + 3;
  const auto r = Interpreter(p).run_deterministic(init);
  Word run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run += 7 * i + 3;
    EXPECT_EQ(r.memory[prefix_sum_var(n, i)], run) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumSweep,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 32, 64));

TEST(PrefixSum, SingleElementEdgeBehaviour) {
  // n=2 is the smallest legal size; element 0 is untouched.
  Program p = make_prefix_sum(2);
  const auto r = Interpreter(p).run_deterministic({5, 11});
  EXPECT_EQ(r.memory[prefix_sum_var(2, 0)], 5u);
  EXPECT_EQ(r.memory[prefix_sum_var(2, 1)], 16u);
}

TEST(PrefixSum, RejectsNonPowerOfTwo) {
  EXPECT_THROW(make_prefix_sum(6), std::invalid_argument);
  EXPECT_THROW(make_prefix_sum(1), std::invalid_argument);
}

TEST(PrefixSum, StepCountIsTwoLogN) {
  EXPECT_EQ(make_prefix_sum(16).nsteps(), 2u * 4);
  EXPECT_EQ(make_prefix_sum(64).nsteps(), 2u * 6);
}

// ---------------------------------------------------------------------------
// Odd-even transposition sort
// ---------------------------------------------------------------------------

class SortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSweep, SortsAdversarialPatterns) {
  const std::size_t n = GetParam();
  Program p = make_odd_even_sort(n);
  // Reverse order, organ pipe, all-equal, and a pseudo-random pattern.
  std::vector<std::vector<Word>> patterns;
  std::vector<Word> rev(n), pipe(n), eq(n, 9), rnd(n);
  for (std::size_t i = 0; i < n; ++i) {
    rev[i] = n - i;
    pipe[i] = std::min(i, n - 1 - i);
    rnd[i] = (i * 2654435761u) % 1000;
  }
  patterns = {rev, pipe, eq, rnd};
  for (const auto& pat : patterns) {
    std::vector<Word> init(p.nvars(), 0);
    std::copy(pat.begin(), pat.end(), init.begin());
    const auto r = Interpreter(p).run_deterministic(init);
    std::vector<Word> expect = pat;
    std::sort(expect.begin(), expect.end());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(r.memory[sort_var(n, i)], expect[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values<std::size_t>(2, 4, 6, 8, 16, 32));

TEST(Sort, RejectsOddSizes) {
  EXPECT_THROW(make_odd_even_sort(5), std::invalid_argument);
  EXPECT_THROW(make_odd_even_sort(0), std::invalid_argument);
}

TEST(Sort, IsStableOnPermutationMultiset) {
  // The output must be a permutation of the input (no value invented/lost).
  const std::size_t n = 8;
  Program p = make_odd_even_sort(n);
  std::vector<Word> init(p.nvars(), 0);
  const std::vector<Word> in = {3, 3, 1, 9, 9, 9, 0, 1};
  std::copy(in.begin(), in.end(), init.begin());
  const auto r = Interpreter(p).run_deterministic(init);
  std::vector<Word> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = r.memory[sort_var(n, i)];
  std::vector<Word> a = in, b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Ring coloring
// ---------------------------------------------------------------------------

TEST(RingColoring, FlagsConsistentWithColorsOnEveryExecution) {
  const std::size_t n = 12;
  Program p = make_ring_coloring(n, 3);
  EXPECT_TRUE(p.is_nondeterministic());
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t i = 0; i < n; ++i) {
      const Word ci = r.memory[ring_color_var(n, i)];
      const Word cn = r.memory[ring_color_var(n, (i + 1) % n)];
      EXPECT_LT(ci, 3u);
      EXPECT_EQ(r.memory[ring_conflict_var(n, i)], ci == cn ? 1u : 0u)
          << "seed=" << seed << " node " << i;
    }
  }
}

TEST(RingColoring, PaletteValidated) {
  EXPECT_THROW(make_ring_coloring(2, 3), std::invalid_argument);
  EXPECT_THROW(make_ring_coloring(8, 1), std::invalid_argument);
}

TEST(RingColoring, LargePaletteRarelyConflicts) {
  const std::size_t n = 8;
  Program p = make_ring_coloring(n, 1 << 20);
  Interpreter it(p);
  int conflicts = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t i = 0; i < n; ++i)
      conflicts += static_cast<int>(r.memory[ring_conflict_var(n, i)]);
  }
  EXPECT_EQ(conflicts, 0);  // ~2^-20 per edge; 160 edges
}

// ---------------------------------------------------------------------------
// Cross-workload sanity
// ---------------------------------------------------------------------------

TEST(Workloads, DeterministicKernelsAreDeterministic) {
  EXPECT_FALSE(make_prefix_sum(8).is_nondeterministic());
  EXPECT_FALSE(make_odd_even_sort(8).is_nondeterministic());
  EXPECT_FALSE(make_reduction(8).is_nondeterministic());
}

TEST(Workloads, NondetKernelsAreNondeterministic) {
  EXPECT_TRUE(make_ring_coloring(8, 4).is_nondeterministic());
  EXPECT_TRUE(make_luby_cycle_round(8, 100).is_nondeterministic());
  EXPECT_TRUE(make_leader_election(8, 100).is_nondeterministic());
  EXPECT_TRUE(make_coin_matrix(4, 2, 0.5).is_nondeterministic());
}

}  // namespace
}  // namespace apex::pram
