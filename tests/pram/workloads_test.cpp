// Workload-library tests: every canonical program builds under the EREW
// validator and computes the right thing on the synchronous reference
// interpreter (the asynchronous-executor side is covered in tests/exec).
#include "pram/workloads.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "pram/interp.h"

namespace apex::pram {
namespace {

// ---------------------------------------------------------------------------
// Prefix sum
// ---------------------------------------------------------------------------

class PrefixSumSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PrefixSumSweep, MatchesSequentialScan) {
  const std::size_t n = GetParam();
  Program p = make_prefix_sum(n);
  std::vector<Word> init(p.nvars(), 0);
  for (std::size_t i = 0; i < n; ++i) init[i] = 7 * i + 3;
  const auto r = Interpreter(p).run_deterministic(init);
  Word run = 0;
  for (std::size_t i = 0; i < n; ++i) {
    run += 7 * i + 3;
    EXPECT_EQ(r.memory[prefix_sum_var(n, i)], run) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumSweep,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 32, 64));

TEST(PrefixSum, SingleElementEdgeBehaviour) {
  // n=2 is the smallest legal size; element 0 is untouched.
  Program p = make_prefix_sum(2);
  const auto r = Interpreter(p).run_deterministic({5, 11});
  EXPECT_EQ(r.memory[prefix_sum_var(2, 0)], 5u);
  EXPECT_EQ(r.memory[prefix_sum_var(2, 1)], 16u);
}

TEST(PrefixSum, RejectsNonPowerOfTwo) {
  EXPECT_THROW(make_prefix_sum(6), std::invalid_argument);
  EXPECT_THROW(make_prefix_sum(1), std::invalid_argument);
}

TEST(PrefixSum, StepCountIsTwoLogN) {
  EXPECT_EQ(make_prefix_sum(16).nsteps(), 2u * 4);
  EXPECT_EQ(make_prefix_sum(64).nsteps(), 2u * 6);
}

// ---------------------------------------------------------------------------
// Odd-even transposition sort
// ---------------------------------------------------------------------------

class SortSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SortSweep, SortsAdversarialPatterns) {
  const std::size_t n = GetParam();
  Program p = make_odd_even_sort(n);
  // Reverse order, organ pipe, all-equal, and a pseudo-random pattern.
  std::vector<std::vector<Word>> patterns;
  std::vector<Word> rev(n), pipe(n), eq(n, 9), rnd(n);
  for (std::size_t i = 0; i < n; ++i) {
    rev[i] = n - i;
    pipe[i] = std::min(i, n - 1 - i);
    rnd[i] = (i * 2654435761u) % 1000;
  }
  patterns = {rev, pipe, eq, rnd};
  for (const auto& pat : patterns) {
    std::vector<Word> init(p.nvars(), 0);
    std::copy(pat.begin(), pat.end(), init.begin());
    const auto r = Interpreter(p).run_deterministic(init);
    std::vector<Word> expect = pat;
    std::sort(expect.begin(), expect.end());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(r.memory[sort_var(n, i)], expect[i]) << "i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SortSweep,
                         ::testing::Values<std::size_t>(2, 4, 6, 8, 16, 32));

TEST(Sort, RejectsOddSizes) {
  EXPECT_THROW(make_odd_even_sort(5), std::invalid_argument);
  EXPECT_THROW(make_odd_even_sort(0), std::invalid_argument);
}

TEST(Sort, IsStableOnPermutationMultiset) {
  // The output must be a permutation of the input (no value invented/lost).
  const std::size_t n = 8;
  Program p = make_odd_even_sort(n);
  std::vector<Word> init(p.nvars(), 0);
  const std::vector<Word> in = {3, 3, 1, 9, 9, 9, 0, 1};
  std::copy(in.begin(), in.end(), init.begin());
  const auto r = Interpreter(p).run_deterministic(init);
  std::vector<Word> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = r.memory[sort_var(n, i)];
  std::vector<Word> a = in, b = out;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Ring coloring
// ---------------------------------------------------------------------------

TEST(RingColoring, FlagsConsistentWithColorsOnEveryExecution) {
  const std::size_t n = 12;
  Program p = make_ring_coloring(n, 3);
  EXPECT_TRUE(p.is_nondeterministic());
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t i = 0; i < n; ++i) {
      const Word ci = r.memory[ring_color_var(n, i)];
      const Word cn = r.memory[ring_color_var(n, (i + 1) % n)];
      EXPECT_LT(ci, 3u);
      EXPECT_EQ(r.memory[ring_conflict_var(n, i)], ci == cn ? 1u : 0u)
          << "seed=" << seed << " node " << i;
    }
  }
}

TEST(RingColoring, PaletteValidated) {
  EXPECT_THROW(make_ring_coloring(2, 3), std::invalid_argument);
  EXPECT_THROW(make_ring_coloring(8, 1), std::invalid_argument);
}

TEST(RingColoring, LargePaletteRarelyConflicts) {
  const std::size_t n = 8;
  Program p = make_ring_coloring(n, 1 << 20);
  Interpreter it(p);
  int conflicts = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t i = 0; i < n; ++i)
      conflicts += static_cast<int>(r.memory[ring_conflict_var(n, i)]);
  }
  EXPECT_EQ(conflicts, 0);  // ~2^-20 per edge; 160 edges
}

// ---------------------------------------------------------------------------
// BFS frontier expansion (irregular)
// ---------------------------------------------------------------------------

class BfsSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BfsSweep, MatchesReferenceBfsOnTheBakedGraph) {
  const std::size_t n = GetParam();
  Program p = make_bfs_frontier(n, bfs_rounds(n));
  EXPECT_FALSE(p.is_nondeterministic());
  const auto r = Interpreter(p).run_deterministic({});
  // The registry checker rebuilds the graph and runs plain BFS — the
  // interpreter result must satisfy it exactly.
  const auto* spec = find_workload("bfs");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->check(n, r.memory), "");
}

INSTANTIATE_TEST_SUITE_P(Sizes, BfsSweep,
                         ::testing::Values<std::size_t>(6, 8, 12, 16, 32));

TEST(Bfs, SourceHasDistanceZeroAndSomeNodeIsFarther) {
  const std::size_t n = 16;
  Program p = make_bfs_frontier(n, bfs_rounds(n));
  const auto r = Interpreter(p).run_deterministic({});
  EXPECT_EQ(r.memory[bfs_dist_var(n, 0)], 0u);
  // Masked edges make distances irregular: at least one node must sit at
  // distance >= 2 (the graph is not the complete graph).
  Word maxd = 0;
  for (std::size_t i = 0; i < n; ++i)
    if (r.memory[bfs_dist_var(n, i)] != bfs_unreached(n))
      maxd = std::max(maxd, r.memory[bfs_dist_var(n, i)]);
  EXPECT_GE(maxd, 2u);
}

TEST(Bfs, RejectsTinySizes) {
  EXPECT_THROW(make_bfs_frontier(4, 2), std::invalid_argument);
  EXPECT_THROW(make_bfs_frontier(8, 0), std::invalid_argument);
}

TEST(Bfs, OffsetsDedupeAtTheMinNBoundary) {
  // Regression: at n=6 the chord offsets 3%n and (n-3)%n coincide.  The
  // offset list must carry each distinct offset ONCE (first mask index
  // wins) or the shared edge is double-counted under two masks.
  const auto offs6 = bfs_offsets(6);
  ASSERT_EQ(offs6.size(), 3u);
  EXPECT_EQ(offs6[0], (std::pair<std::size_t, std::size_t>{1, 0}));
  EXPECT_EQ(offs6[1], (std::pair<std::size_t, std::size_t>{5, 1}));
  EXPECT_EQ(offs6[2], (std::pair<std::size_t, std::size_t>{3, 2}));
  // Away from the boundary all four offsets are distinct.
  EXPECT_EQ(bfs_offsets(1000).size(), 4u);
  // And the n=6 program must agree with a reference BFS over the DEDUPED
  // edge set, end to end.
  Program p = make_bfs_frontier(6, bfs_rounds(6));
  const auto r = Interpreter(p).run_deterministic({});
  const auto* spec = find_workload("bfs");
  ASSERT_NE(spec, nullptr);
  EXPECT_EQ(spec->check(6, r.memory), "");
}

TEST(Workloads, VariableIdNarrowingThrowsInsteadOfWrapping) {
  // Regression: the u32 narrowing helper silently truncated oversized
  // variable ids; graph-scale layouts made that reachable.  Any id past
  // 2^32 must throw, not alias another region's cells.
  EXPECT_THROW(bfs_dist_var(6, std::size_t{1} << 33), std::overflow_error);
  EXPECT_THROW(luby_mis_var(std::size_t{1} << 31, 0), std::overflow_error);
  EXPECT_NO_THROW(bfs_dist_var(6, 5));
}

TEST(Bfs, PartitionWeightsCoverAllProcessorsAndDegreeMass) {
  const auto* spec = find_workload("bfs");
  ASSERT_NE(spec, nullptr);
  ASSERT_NE(spec->proc_weights, nullptr);
  const std::size_t n = 64;
  const auto w = spec->proc_weights(n);
  const Program p = spec->make(n);
  ASSERT_EQ(w.size(), p.nthreads());
  // Total weight = sum over vertices of (2*deg + 2) > 2n for any graph
  // with at least one edge, and every processor's weight is bounded by a
  // couple of max-degree vertices above the mean (balanced partition).
  std::uint64_t total = 0, wmax = 0;
  for (const auto v : w) {
    total += v;
    wmax = std::max(wmax, v);
  }
  EXPECT_GT(total, 2u * n);
  EXPECT_LE(wmax, total / w.size() + 2 * 10);  // mean + 2 heavy vertices
}

// ---------------------------------------------------------------------------
// Bitonic butterfly merge (irregular)
// ---------------------------------------------------------------------------

class MergeSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MergeSweep, MergesEveryBitonicPattern) {
  const std::size_t n = GetParam();
  Program p = make_bitonic_merge(n);
  // Several ascending/descending splits, including degenerate halves.
  for (std::size_t split = 0; split <= 2; ++split) {
    std::vector<Word> in(n);
    for (std::size_t i = 0; i < n; ++i)
      in[i] = i < n / 2 ? static_cast<Word>(split + 2 * i)
                        : static_cast<Word>(split + 2 * (n - i) + 1);
    std::vector<Word> init(p.nvars(), 0);
    std::copy(in.begin(), in.end(), init.begin());
    const auto r = Interpreter(p).run_deterministic(init);
    std::vector<Word> want = in;
    std::sort(want.begin(), want.end());
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(r.memory[merge_var(n, i)], want[i])
          << "n=" << n << " split=" << split << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, MergeSweep,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 64));

TEST(Merge, RejectsNonPowerOfTwo) {
  EXPECT_THROW(make_bitonic_merge(6), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// CSR sparse mat-vec (irregular, computed-index gathers)
// ---------------------------------------------------------------------------

class SpmvSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SpmvSweep, MatchesDenseRecomputation) {
  const std::size_t n = GetParam();
  Program p = make_spmv_csr(n);
  EXPECT_FALSE(p.is_nondeterministic());
  const auto r = Interpreter(p).run_deterministic({});
  const SpmvInstance m = spmv_instance(n);
  for (std::size_t i = 0; i < n; ++i) {
    Word want = 0;
    for (std::size_t e = m.row_ptr[i]; e < m.row_ptr[i + 1]; ++e)
      want += m.val[e] * m.x[m.col[e]];
    EXPECT_EQ(r.memory[spmv_y_var(n, i)], want) << "n=" << n << " row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SpmvSweep,
                         ::testing::Values<std::size_t>(2, 4, 8, 16, 24));

TEST(Spmv, InstanceIsIrregular) {
  // Row degrees must actually vary (otherwise the kernel is regular).
  const SpmvInstance m = spmv_instance(16);
  std::size_t mind = 100, maxd = 0;
  for (std::size_t i = 0; i < 16; ++i) {
    const std::size_t d = m.row_ptr[i + 1] - m.row_ptr[i];
    mind = std::min(mind, d);
    maxd = std::max(maxd, d);
  }
  EXPECT_LT(mind, maxd);
}

// ---------------------------------------------------------------------------
// Work-stealing DAG (irregular, nondeterministic)
// ---------------------------------------------------------------------------

TEST(StealDag, InvariantHoldsOnEveryExecution) {
  const std::size_t n = 8;
  Program p = make_steal_dag(n, steal_dag_levels(n));
  EXPECT_TRUE(p.is_nondeterministic());
  const auto* spec = find_workload("dag");
  ASSERT_NE(spec, nullptr);
  Interpreter it(p);
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    EXPECT_EQ(spec->check(n, r.memory), "") << "seed=" << seed;
  }
}

TEST(StealDag, CoinsActuallyVary) {
  // Across seeds both victim choices must occur, or the kernel is regular.
  const std::size_t n = 4, levels = steal_dag_levels(n);
  Program p = make_steal_dag(n, levels);
  Interpreter it(p);
  bool saw0 = false, saw1 = false;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto r = it.run({}, apex::Rng(seed));
    for (std::size_t l = 1; l <= levels; ++l)
      for (std::size_t w = 0; w < n; ++w) {
        saw0 |= r.memory[dag_coin_var(n, levels, l, w)] == 0;
        saw1 |= r.memory[dag_coin_var(n, levels, l, w)] == 1;
      }
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

TEST(Registry, EveryEntryBuildsAndPassesItsOwnCheckOnTheReference) {
  for (const auto& spec : workload_registry()) {
    const std::size_t n = 8;  // satisfies every registered constraint
    ASSERT_TRUE(workload_supports_n(spec, n)) << spec.name;
    Program p = spec.make(n);
    EXPECT_EQ(p.is_nondeterministic(), !spec.deterministic) << spec.name;
    // Reference execution(s) must satisfy the final-memory verdict.
    for (std::uint64_t seed = 1; seed <= (spec.deterministic ? 1u : 5u);
         ++seed) {
      const auto r = Interpreter(p).run({}, apex::Rng(seed));
      EXPECT_EQ(spec.check(n, r.memory), "")
          << spec.name << " seed=" << seed;
    }
  }
}

TEST(Registry, LookupAndConstraints) {
  EXPECT_NE(find_workload("spmv"), nullptr);
  EXPECT_EQ(find_workload("nope"), nullptr);
  const auto* leader = find_workload("leader");
  ASSERT_NE(leader, nullptr);
  EXPECT_FALSE(workload_supports_n(*leader, 6));  // not a power of two
  EXPECT_TRUE(workload_supports_n(*leader, 8));
  const auto* bfs = find_workload("bfs");
  ASSERT_NE(bfs, nullptr);
  EXPECT_FALSE(workload_supports_n(*bfs, 4));
  EXPECT_NE(workload_names().find("dag"), std::string::npos);
}

TEST(Registry, IrregularSuiteIsRegistered) {
  std::size_t irregular = 0;
  for (const auto& spec : workload_registry()) irregular += spec.irregular;
  EXPECT_GE(irregular, 4u);
}

// ---------------------------------------------------------------------------
// Cross-workload sanity
// ---------------------------------------------------------------------------

TEST(Workloads, DeterministicKernelsAreDeterministic) {
  EXPECT_FALSE(make_prefix_sum(8).is_nondeterministic());
  EXPECT_FALSE(make_odd_even_sort(8).is_nondeterministic());
  EXPECT_FALSE(make_reduction(8).is_nondeterministic());
  EXPECT_FALSE(make_bfs_frontier(8, 3).is_nondeterministic());
  EXPECT_FALSE(make_bitonic_merge(8).is_nondeterministic());
  EXPECT_FALSE(make_spmv_csr(8).is_nondeterministic());
}

TEST(Workloads, NondetKernelsAreNondeterministic) {
  EXPECT_TRUE(make_ring_coloring(8, 4).is_nondeterministic());
  EXPECT_TRUE(make_luby_cycle_round(8, 100).is_nondeterministic());
  EXPECT_TRUE(make_leader_election(8, 100).is_nondeterministic());
  EXPECT_TRUE(make_coin_matrix(4, 2, 0.5).is_nondeterministic());
  EXPECT_TRUE(make_steal_dag(8, 2).is_nondeterministic());
}

}  // namespace
}  // namespace apex::pram
