#include "check/oracle.h"

#include <gtest/gtest.h>

#include "agreement/testbed.h"

namespace apex::check {
namespace {

using sim::Cell;
using sim::Op;
using sim::StepEvent;

StepEvent write_ev(std::uint64_t time, std::size_t proc, std::size_t addr,
                   sim::Word value, sim::Word stamp, Cell before,
                   Cell after) {
  StepEvent ev;
  ev.time = time;
  ev.proc = proc;
  ev.op = Op{Op::Kind::Write, addr, value, stamp};
  ev.before = before;
  ev.after = after;
  return ev;
}

StepEvent read_ev(std::uint64_t time, std::size_t proc, std::size_t addr,
                  Cell content) {
  StepEvent ev;
  ev.time = time;
  ev.proc = proc;
  ev.op = Op{Op::Kind::Read, addr, 0, 0};
  ev.before = ev.after = content;
  return ev;
}

StepEvent local_ev(std::uint64_t time, std::size_t proc) {
  StepEvent ev;
  ev.time = time;
  ev.proc = proc;
  ev.op = Op{Op::Kind::Local, 0, 0, 0};
  return ev;
}

// ---------------------------------------------------------------------------

TEST(WorkAccountingOracle, AcceptsGaplessSequence) {
  WorkAccountingOracle o;
  for (std::uint64_t t = 0; t < 100; ++t) o.on_step(local_ev(t, t % 3));
  EXPECT_FALSE(o.failed());
}

TEST(WorkAccountingOracle, DetectsTimeGap) {
  WorkAccountingOracle o;
  o.on_step(local_ev(0, 0));
  o.on_step(local_ev(2, 0));  // time 1 skipped: work charged unobserved
  EXPECT_TRUE(o.failed());
}

TEST(WorkAccountingOracle, ReconcilesWithRealRun) {
  sim::Simulator s(sim::SimConfig{2, 4, 1},
                   std::make_unique<sim::RoundRobinSchedule>(2));
  for (int p = 0; p < 2; ++p)
    s.spawn([&](sim::Ctx& c) -> sim::ProcTask {
      return [](sim::Ctx& ctx) -> sim::ProcTask {
        for (int i = 0; i < 5; ++i) co_await ctx.local();
      }(c);
    });
  WorkAccountingOracle o;
  s.add_observer(&o);
  s.run(1000);
  o.on_finish(s);
  EXPECT_FALSE(o.failed()) << o.failures().front();
}

// ---------------------------------------------------------------------------

struct ClockFixture {
  sim::Memory mem{0};
  clockx::PhaseClock clock;
  ClockFixture() : clock(mem, clockx::ClockConfig{8, 0, 0, 6.0}) {}
};

TEST(ClockOracle, AcceptsReadThenWritePlusOne) {
  ClockFixture f;
  ClockOracle o(f.clock, 8);
  const std::size_t a = f.clock.base_addr();
  o.on_step(read_ev(0, 3, a, Cell{5, 0}));
  o.on_step(write_ev(1, 3, a, 6, 0, Cell{5, 0}, Cell{6, 0}));
  EXPECT_FALSE(o.failed());
}

TEST(ClockOracle, AcceptsRacyLostUpdateInterleaving) {
  // Proc 1 reads 5; the slot then moves (other updates, including a lost
  // update lowering it); proc 1 still writes 6 — legal, and the slot
  // content at write time is irrelevant.
  ClockFixture f;
  ClockOracle o(f.clock, 8);
  const std::size_t a = f.clock.base_addr();
  o.on_step(read_ev(0, 1, a, Cell{5, 0}));
  o.on_step(read_ev(1, 2, a, Cell{5, 0}));
  o.on_step(write_ev(2, 2, a, 6, 0, Cell{5, 0}, Cell{6, 0}));
  o.on_step(write_ev(3, 1, a, 6, 0, Cell{6, 0}, Cell{6, 0}));
  EXPECT_FALSE(o.failed());
}

TEST(ClockOracle, DetectsDoubleIncrement) {
  ClockFixture f;
  ClockOracle o(f.clock, 8);
  const std::size_t a = f.clock.base_addr();
  o.on_step(read_ev(0, 0, a, Cell{5, 0}));
  o.on_step(write_ev(1, 0, a, 7, 0, Cell{5, 0}, Cell{7, 0}));
  EXPECT_TRUE(o.failed());
}

TEST(ClockOracle, DetectsWriteWithoutRead) {
  ClockFixture f;
  ClockOracle o(f.clock, 8);
  const std::size_t a = f.clock.base_addr();
  o.on_step(write_ev(0, 0, a, 1, 0, Cell{0, 0}, Cell{1, 0}));
  EXPECT_TRUE(o.failed());
}

TEST(ClockOracle, DetectsPhaseRegression) {
  ClockFixture f;
  ClockOracle o(f.clock, 8);
  o.on_phase_enter(2, 2);  // within skew of true tick 0: fine
  EXPECT_FALSE(o.failed());
  o.on_phase_enter(2, 1);  // went backwards: clamp violated
  EXPECT_TRUE(o.failed());
}

TEST(ClockOracle, DetectsEstimateRunningAhead) {
  ClockFixture f;
  ClockOracle o(f.clock, 8, /*skew_ticks=*/1);
  o.on_phase_enter(0, 4);  // true tick is 0; 4 > 0 + 1 + 1
  EXPECT_TRUE(o.failed());
}

// ---------------------------------------------------------------------------

struct BinFixture {
  sim::Memory mem{0};
  agreement::BinArray bins;
  BinFixture() : bins(mem, 4, 8) {}
  static bool support(std::size_t, sim::Word v) { return v < 100; }
};

TEST(BinArrayOracle, AcceptsEvalAndFaithfulCopy) {
  BinFixture f;
  BinArrayOracle o(f.bins, BinFixture::support);
  o.on_step(write_ev(0, 0, f.bins.addr(2, 0), 42, 1, Cell{}, Cell{42, 1}));
  o.on_step(
      write_ev(1, 1, f.bins.addr(2, 1), 42, 1, Cell{}, Cell{42, 1}));
  EXPECT_FALSE(o.failed());
}

TEST(BinArrayOracle, DetectsStampZero) {
  BinFixture f;
  BinArrayOracle o(f.bins, BinFixture::support);
  o.on_step(write_ev(0, 0, f.bins.addr(0, 0), 1, 0, Cell{}, Cell{1, 0}));
  EXPECT_TRUE(o.failed());
}

TEST(BinArrayOracle, DetectsOutOfSupportValue) {
  BinFixture f;
  BinArrayOracle o(f.bins, BinFixture::support);
  o.on_step(write_ev(0, 0, f.bins.addr(0, 0), 150, 1, Cell{}, Cell{150, 1}));
  EXPECT_TRUE(o.failed());
}

TEST(BinArrayOracle, DetectsCorruptedCopy) {
  BinFixture f;
  BinArrayOracle o(f.bins, BinFixture::support);
  o.on_step(write_ev(0, 0, f.bins.addr(1, 0), 42, 1, Cell{}, Cell{42, 1}));
  // Cell 1 copies value 43: cell 0 never held 43 under stamp 1.
  o.on_step(write_ev(1, 1, f.bins.addr(1, 1), 43, 1, Cell{}, Cell{43, 1}));
  EXPECT_TRUE(o.failed());
}

TEST(BinArrayOracle, ProvenanceIsPerStamp) {
  BinFixture f;
  BinArrayOracle o(f.bins, BinFixture::support);
  o.on_step(write_ev(0, 0, f.bins.addr(0, 0), 9, 1, Cell{}, Cell{9, 1}));
  // Copying 9 forward under a DIFFERENT stamp is a stale value given a new
  // stamp — the exact bug the Fig. 2 re-read prevents.
  o.on_step(write_ev(1, 1, f.bins.addr(0, 1), 9, 2, Cell{}, Cell{9, 2}));
  EXPECT_TRUE(o.failed());
}

// ---------------------------------------------------------------------------

TEST(ClobberOracle, CountsStaleWritesAndResetsPerPhase) {
  sim::Memory mem{0};
  clockx::PhaseClock clock(mem, clockx::ClockConfig{4, 0, 0, 1.0});  // tau=4
  agreement::BinArray bins(mem, 4, 8);
  ClobberOracle o(bins, clock, /*max_per_bin=*/2);

  auto stale_write = [&](std::uint64_t t, std::size_t bin) {
    return write_ev(t, 0, bins.addr(bin, 0), 1, /*stamp=*/7, Cell{},
                    Cell{1, 7});
  };
  o.on_step(stale_write(0, 3));
  o.on_step(stale_write(1, 3));
  EXPECT_FALSE(o.failed());
  EXPECT_EQ(o.max_observed(), 2u);

  // Advance the true phase: 4 clock updates = one tick; counters reset.
  const std::size_t slot = clock.base_addr();
  for (int i = 0; i < 4; ++i)
    o.on_step(write_ev(2 + i, 0, slot, i + 1, 0,
                       Cell{static_cast<sim::Word>(i), 0},
                       Cell{static_cast<sim::Word>(i + 1), 0}));
  o.on_step(stale_write(10, 3));
  o.on_step(stale_write(11, 3));
  EXPECT_FALSE(o.failed());

  // Third stale write in the same phase exceeds the cap.
  o.on_step(stale_write(12, 3));
  EXPECT_TRUE(o.failed());
}

// ---------------------------------------------------------------------------

TEST(ConsensusOracle, CleanRunPasses) {
  consensus::ScanConfig cfg;
  cfg.n = 4;
  cfg.seed = 5;
  cfg.schedule = sim::ScheduleKind::kRoundRobin;
  consensus::ScanConsensus sc(cfg, agreement::uniform_task(1000));
  WorkAccountingOracle work;
  ConsensusOracle cons(sc);
  OracleSet set;
  set.add(&work);
  set.add(&cons);
  sc.simulator().add_observer(&set);
  const auto res = sc.run(1u << 20);
  set.finish(sc.simulator());
  EXPECT_TRUE(res.completed);
  EXPECT_FALSE(set.failed()) << set.first_failure();
}

TEST(ConsensusOracle, DetectsForeignRegisterWrite) {
  consensus::ScanConfig cfg;
  cfg.n = 3;
  consensus::ScanConsensus sc(cfg, agreement::uniform_task(1000));
  ConsensusOracle o(sc);
  // Proc 2 writes R[0][1] — not its register.
  o.on_step(write_ev(0, 2, sc.register_base() + 1, 7, 1, Cell{}, Cell{7, 1}));
  EXPECT_TRUE(o.failed());
}

TEST(ConsensusOracle, DetectsRegisterRewrite) {
  consensus::ScanConfig cfg;
  cfg.n = 3;
  consensus::ScanConsensus sc(cfg, agreement::uniform_task(1000));
  ConsensusOracle o(sc);
  const std::size_t r00 = sc.register_base();
  o.on_step(write_ev(0, 0, r00, 7, 1, Cell{}, Cell{7, 1}));
  EXPECT_FALSE(o.failed());
  o.on_step(write_ev(1, 0, r00, 8, 1, Cell{7, 1}, Cell{8, 1}));
  EXPECT_TRUE(o.failed());
}

// ---------------------------------------------------------------------------

TEST(OracleSet, CleanAgreementRunUnderCanonicalSchedules) {
  for (auto kind : {sim::ScheduleKind::kRoundRobin,
                    sim::ScheduleKind::kSleeper, sim::ScheduleKind::kCrash}) {
    agreement::TestbedConfig tc;
    tc.n = 8;
    tc.seed = 33;
    tc.schedule = kind;
    agreement::AgreementTestbed tb(tc, agreement::uniform_task(1 << 20),
                                   agreement::uniform_support(1 << 20));
    WorkAccountingOracle work;
    ClockOracle clock(tb.clock(), tc.n);
    BinArrayOracle bins(tb.bins(), agreement::uniform_support(1 << 20));
    ClobberOracle clobbers(tb.bins(), tb.clock());
    OracleSet set;
    set.add(&work);
    set.add(&clock);
    set.add(&bins);
    set.add(&clobbers);
    tb.attach(static_cast<sim::StepObserver*>(&set));
    tb.attach(static_cast<agreement::AgreementObserver*>(&set));
    tb.run_more(60000);
    set.finish(tb.simulator());
    EXPECT_FALSE(set.failed())
        << sim::schedule_kind_name(kind) << ": " << set.first_failure();
  }
}

}  // namespace
}  // namespace apex::check
