#include "check/fuzz_schedule.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace apex::check {
namespace {

TEST(FuzzedSchedule, DeterministicFromSeed) {
  FuzzedSchedule a(8, 42), b(8, 42);
  for (std::uint64_t t = 0; t < 50000; ++t)
    ASSERT_EQ(a.next(t), b.next(t)) << "t=" << t;
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(FuzzedSchedule, DifferentSeedsDiffer) {
  FuzzedSchedule a(8, 1), b(8, 2);
  int differ = 0;
  for (std::uint64_t t = 0; t < 5000; ++t) differ += a.next(t) != b.next(t);
  EXPECT_GT(differ, 100);
}

TEST(FuzzedSchedule, GrantsStayInRange) {
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    FuzzedSchedule s(5, seed);
    for (std::uint64_t t = 0; t < 30000; ++t) ASSERT_LT(s.next(t), 5u);
  }
}

TEST(FuzzedSchedule, EventuallyCoversEveryProc) {
  const std::size_t n = 6;
  FuzzedSchedule s(n, 3);
  std::set<std::size_t> seen;
  for (std::uint64_t t = 0; t < 100000 && seen.size() < n; ++t)
    seen.insert(s.next(t));
  EXPECT_EQ(seen.size(), n);
}

TEST(FuzzedSchedule, IsObliviousAndComposesManySegments) {
  FuzzedSchedule s(4, 11);
  EXPECT_TRUE(s.is_oblivious());
  for (std::uint64_t t = 0; t < 200000; ++t) s.next(t);
  // Mean segment length is a few hundred; 200k grants must cross many.
  EXPECT_GT(s.segments_generated(), 20u);
  EXPECT_FALSE(s.describe().empty());
}

TEST(FuzzedSchedule, SingleProcDegenerate) {
  FuzzedSchedule s(1, 5);
  for (std::uint64_t t = 0; t < 20000; ++t) ASSERT_EQ(s.next(t), 0u);
}

TEST(FuzzedSchedule, ValidatesSegmentBounds) {
  EXPECT_THROW(FuzzedSchedule(FuzzScheduleConfig{4, 1, 0, 16}),
               std::invalid_argument);
  EXPECT_THROW(FuzzedSchedule(FuzzScheduleConfig{4, 1, 32, 16}),
               std::invalid_argument);
}

TEST(RecordingSchedule, TraceReplaysExactly) {
  RecordingSchedule rec(std::make_unique<FuzzedSchedule>(6, 77));
  std::vector<std::size_t> live;
  for (std::uint64_t t = 0; t < 9000; ++t) live.push_back(rec.next(t));
  ASSERT_EQ(rec.trace(), live);

  // Replaying the trace through a ScriptedSchedule yields the same grants.
  sim::ScriptedSchedule replay(6, rec.trace(), sim::ScriptExhaust::kThrow);
  for (std::uint64_t t = 0; t < 9000; ++t)
    ASSERT_EQ(replay.next(t), live[t]) << "t=" << t;
  EXPECT_THROW(replay.next(9000), std::out_of_range);
}

TEST(RecordingSchedule, ForwardsObliviousness) {
  RecordingSchedule a(std::make_unique<FuzzedSchedule>(2, 1));
  EXPECT_TRUE(a.is_oblivious());
  RecordingSchedule b(std::make_unique<sim::CallbackSchedule>(
      2, [](std::uint64_t) { return std::size_t{0}; }));
  EXPECT_FALSE(b.is_oblivious());
}

}  // namespace
}  // namespace apex::check
