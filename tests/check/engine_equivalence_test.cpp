// Engine-equivalence at the fuzz-trial level: the full trial stack (testbed
// construction, adversary schedules, the invariant oracles on the observer
// path, verdict extraction, trace recording) must produce identical
// TrialOutcomes on the batched and single-step grant engines.  This pins
// the batched observer path's exactly-once / in-order delivery end to end:
// every oracle verdict is a function of the delivered event stream.
#include <gtest/gtest.h>

#include "check/fuzz.h"

namespace apex::check {
namespace {

TrialSpec spec_for(FuzzProtocol protocol, std::uint64_t seed,
                   sim::GrantEngine engine) {
  TrialSpec ts;
  ts.protocol = protocol;
  ts.n = 6;
  ts.beta = 8;
  ts.seed = seed;
  ts.budget = 30000;
  ts.fuzzed = true;
  ts.engine = engine;
  if (protocol == FuzzProtocol::kWorkload) {
    ts.workload = seed % 2 == 0 ? "bfs" : "merge";
    ts.n = 6;
  }
  return ts;
}

void expect_equal(const TrialOutcome& a, const TrialOutcome& b,
                  const char* what, std::uint64_t seed) {
  EXPECT_EQ(a.failed, b.failed) << what << " seed=" << seed;
  EXPECT_EQ(a.oracle, b.oracle) << what << " seed=" << seed;
  EXPECT_EQ(a.message, b.message) << what << " seed=" << seed;
  EXPECT_EQ(a.schedule_desc, b.schedule_desc) << what << " seed=" << seed;
  EXPECT_EQ(a.trace, b.trace) << what << " seed=" << seed;
}

TEST(EngineEquivalence, FuzzTrialsIdenticalOnBothEngines) {
  FuzzConfig cfg;
  for (const auto protocol : {FuzzProtocol::kAgreement,
                              FuzzProtocol::kConsensus,
                              FuzzProtocol::kWorkload}) {
    for (const std::uint64_t seed : {1ull, 7ull, 23ull, 101ull}) {
      const auto batched = run_trial(
          spec_for(protocol, seed, sim::GrantEngine::kBatched), cfg,
          /*record=*/true);
      const auto single = run_trial(
          spec_for(protocol, seed, sim::GrantEngine::kSingleStep), cfg,
          /*record=*/true);
      expect_equal(batched, single, fuzz_protocol_name(protocol), seed);
    }
  }
}

TEST(EngineEquivalence, CorpusGridIdenticalOnBothEngines) {
  // The fuzzer's own deterministic grid (the exact specs run_fuzz would
  // execute), replayed on both engines.
  FuzzConfig cfg;
  cfg.seed = 3;
  for (std::size_t i = 0; i < 12; ++i) {
    TrialSpec ts = make_trial_spec(cfg, i);
    ts.engine = sim::GrantEngine::kBatched;
    const auto batched = run_trial(ts, cfg);
    ts.engine = sim::GrantEngine::kSingleStep;
    const auto single = run_trial(ts, cfg);
    expect_equal(batched, single, "grid", i);
  }
}

}  // namespace
}  // namespace apex::check
