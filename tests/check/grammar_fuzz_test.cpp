// The kGrammar fuzz protocol: seed-deterministic grammar-generated .pram
// programs compiled through the language front-end and run through the
// execution scheme under the full oracle set, with the consistency check
// and (for deterministic draws) the interpreter differential attached.
#include <gtest/gtest.h>

#include <cstdio>

#include "check/fuzz.h"

namespace apex::check {
namespace {

TEST(GrammarFuzz, ProtocolNameRoundTrips) {
  EXPECT_STREQ(fuzz_protocol_name(FuzzProtocol::kGrammar), "grammar");
}

TEST(GrammarFuzz, MixedCorpusContainsGrammarTrials) {
  FuzzConfig cfg;
  cfg.seed = 1;
  std::size_t grammar = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const TrialSpec ts = make_trial_spec(cfg, i);
    if (ts.protocol == FuzzProtocol::kGrammar) {
      ++grammar;
      EXPECT_GE(ts.n, 6u);      // clobber-cap soundness envelope
      EXPECT_GT(ts.budget, 1u); // real budget from the compiled program
    }
  }
  EXPECT_EQ(grammar, 8u);  // every i % 8 == 6 slot
}

TEST(GrammarFuzz, GrammarOnlyModeRestrictsTheCorpus) {
  FuzzConfig cfg;
  cfg.grammar_only = true;
  for (std::size_t i = 0; i < 16; ++i)
    EXPECT_EQ(make_trial_spec(cfg, i).protocol, FuzzProtocol::kGrammar);
}

// The pinned-seed corpus the CI smoke runs at larger scale: every trial
// must come back clean, and the report must be deterministic in the seed.
TEST(GrammarFuzz, PinnedCorpusRunsClean) {
  FuzzConfig cfg;
  cfg.trials = 32;
  cfg.seed = 1;
  cfg.jobs = 1;
  cfg.shrink = false;
  cfg.grammar_only = true;
  const FuzzReport rep = run_fuzz(cfg);
  EXPECT_EQ(rep.trials, 32u);
  for (const auto& f : rep.failures)
    ADD_FAILURE() << "trial " << f.trial << " oracle " << f.oracle << ": "
                  << f.message;
}

TEST(GrammarFuzz, TrialsAreDeterministicAcrossJobs) {
  FuzzConfig cfg;
  cfg.trials = 24;
  cfg.seed = 7;
  cfg.shrink = false;
  cfg.grammar_only = true;
  cfg.jobs = 1;
  const FuzzReport a = run_fuzz(cfg);
  cfg.jobs = 4;
  const FuzzReport b = run_fuzz(cfg);
  EXPECT_EQ(a.failures.size(), b.failures.size());
  EXPECT_EQ(a.trials, b.trials);
}

TEST(GrammarFuzz, ReproFileRoundTripsGrammarProtocol) {
  Repro r;
  r.protocol = FuzzProtocol::kGrammar;
  r.n = 7;
  r.seed = 1234;
  r.budget = 5000;
  r.oracle = "grammar_determinism";
  const std::string path =
      testing::TempDir() + "/grammar_roundtrip.repro";
  write_repro(path, r);
  const Repro back = load_repro(path);
  std::remove(path.c_str());
  EXPECT_EQ(back.protocol, FuzzProtocol::kGrammar);
  EXPECT_EQ(back.n, 7u);
  EXPECT_EQ(back.seed, 1234u);
  EXPECT_EQ(back.budget, 5000u);
  EXPECT_EQ(back.oracle, "grammar_determinism");
}

/// A grammar repro is self-contained in its seed: replaying a synthetic
/// repro for a CLEAN trial must come back clean (no oracle fires), proving
/// the replay path regenerates and re-runs the same program.
TEST(GrammarFuzz, ReplayRegeneratesTheTrialFromItsSeed) {
  FuzzConfig cfg;
  cfg.grammar_only = true;
  cfg.seed = 1;
  const TrialSpec ts = make_trial_spec(cfg, 2);
  ASSERT_EQ(ts.protocol, FuzzProtocol::kGrammar);
  Repro r;
  r.protocol = FuzzProtocol::kGrammar;
  r.n = ts.n;
  r.seed = ts.seed;
  r.budget = ts.budget;
  r.oracle = "none-expected";
  const TrialOutcome out = replay_repro(r, cfg);
  EXPECT_FALSE(out.failed) << out.oracle << ": " << out.message;
}

}  // namespace
}  // namespace apex::check
