// Fuzz coverage for the irregular workload suite: every workload in the
// fuzzer's pool runs under FuzzedSchedule for a pinned seed set with the
// invariant-oracle set attached (work accounting, phase clock, bin array,
// clobber cap) plus the end-to-end oracles (produced-trace consistency and
// the workload's self-declared final-memory verdict).  These are the
// tier-1 pins of the kWorkload protocol; the nightly 2000-trial soak
// explores fresh seeds through the same code path.
#include <gtest/gtest.h>

#include <string>

#include "check/fuzz.h"
#include "pram/workloads.h"

namespace apex::check {
namespace {

class WorkloadFuzz : public ::testing::TestWithParam<const char*> {};

TEST_P(WorkloadFuzz, PinnedSeedsHoldEveryOracle) {
  FuzzConfig cfg;
  for (std::uint64_t seed : {11ull, 12ull, 13ull}) {
    TrialSpec ts;
    ts.protocol = FuzzProtocol::kWorkload;
    ts.workload = GetParam();
    ts.n = std::string(GetParam()) == "bfs" ? 6 : 8;
    ts.seed = seed;
    ts.fuzzed = true;
    ts.budget = 0;  // default budget for the workload's program
    const TrialOutcome out = run_trial(ts, cfg, false);
    EXPECT_FALSE(out.failed)
        << GetParam() << " seed=" << seed << ": " << out.oracle << ": "
        << out.message << "\n  schedule: " << out.schedule_desc.substr(0, 160);
  }
}

INSTANTIATE_TEST_SUITE_P(Pool, WorkloadFuzz,
                         ::testing::ValuesIn(fuzz_workload_pool()),
                         [](const ::testing::TestParamInfo<const char*>& info) {
                           return std::string(info.param);
                         });

TEST(WorkloadFuzzGrid, PoolCoversTheIrregularSuite) {
  // Every irregular registry entry must be in the fuzz pool.
  for (const auto& spec : pram::workload_registry()) {
    if (!spec.irregular) continue;
    bool found = false;
    for (const char* name : fuzz_workload_pool())
      found |= spec.name == std::string(name);
    EXPECT_TRUE(found) << spec.name << " missing from fuzz_workload_pool()";
  }
}

TEST(WorkloadFuzzGrid, TrialGridDrawsWorkloadTrials) {
  // The deterministic trial grid must actually schedule kWorkload trials
  // (every 4th index) with pool workloads and legal sizes.
  FuzzConfig cfg;
  cfg.seed = 5;
  std::size_t workload_trials = 0;
  for (std::size_t i = 0; i < 32; ++i) {
    const TrialSpec ts = make_trial_spec(cfg, i);
    if (ts.protocol != FuzzProtocol::kWorkload) continue;
    ++workload_trials;
    const auto* spec = pram::find_workload(ts.workload);
    ASSERT_NE(spec, nullptr) << ts.workload;
    EXPECT_TRUE(pram::workload_supports_n(*spec, ts.n))
        << ts.workload << " n=" << ts.n;
    EXPECT_GT(ts.budget, 0u);
  }
  EXPECT_EQ(workload_trials, 8u);
}

TEST(WorkloadFuzzRepro, WorkloadReproFilesRoundTrip) {
  Repro r;
  r.protocol = FuzzProtocol::kWorkload;
  r.workload = "spmv";
  r.n = 8;
  r.seed = 77;
  r.budget = 123456;
  r.oracle = "workload_invariant";
  r.script = {0, 3, 3, 1};
  const std::string path = ::testing::TempDir() + "/workload_repro.txt";
  write_repro(path, r);
  const Repro back = load_repro(path);
  EXPECT_EQ(back.protocol, FuzzProtocol::kWorkload);
  EXPECT_EQ(back.workload, "spmv");
  EXPECT_EQ(back.n, 8u);
  EXPECT_EQ(back.seed, 77u);
  EXPECT_EQ(back.budget, 123456u);
  EXPECT_EQ(back.oracle, "workload_invariant");
  EXPECT_EQ(back.script, (std::vector<std::size_t>{0, 3, 3, 1}));
}

TEST(WorkloadFuzzReplay, ScriptedReplayIsDeterministic) {
  // A scripted-prefix replay of a clean workload trial must stay clean and
  // be bit-stable across invocations (the shrinker depends on this).
  FuzzConfig cfg;
  std::vector<std::size_t> script;
  for (std::size_t g = 0; g < 256; ++g) script.push_back(g % 8);
  TrialSpec ts;
  ts.protocol = FuzzProtocol::kWorkload;
  ts.workload = "merge";
  ts.n = 8;
  ts.seed = 21;
  ts.budget = 0;
  ts.script = &script;
  const TrialOutcome a = run_trial(ts, cfg, false);
  const TrialOutcome b = run_trial(ts, cfg, false);
  EXPECT_FALSE(a.failed) << a.oracle << ": " << a.message;
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.message, b.message);
}

}  // namespace
}  // namespace apex::check
