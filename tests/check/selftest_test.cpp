// The fuzz driver and the oracle self-test, exercised end to end.  These
// are the non-vacuousness guarantees of the whole src/check subsystem: the
// mutations prove the oracles can fire, the clean corpus proves they don't
// fire on the real protocol, and the shrink/repro path proves a failure
// survives the trip to a replayable file.
#include "check/selftest.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>

#include "check/fuzz.h"

namespace apex::check {
namespace {

TEST(SelfTest, EveryMutationCaughtByItsOracle) {
  const auto cases = run_selftest();
  ASSERT_GE(cases.size(), 4u);  // one per oracle, at least
  for (const auto& c : cases) {
    EXPECT_TRUE(c.caught) << mutation_name(c.mutation) << " escaped oracle "
                          << c.expected_oracle << ": " << c.detail;
    EXPECT_TRUE(c.clean_baseline)
        << mutation_name(c.mutation)
        << " baseline was not clean: " << c.detail;
  }
  EXPECT_TRUE(selftest_ok(cases));
}

TEST(SelfTest, MutationsCoverEveryOracle) {
  const auto cases = run_selftest();
  std::set<std::string> oracles;
  for (const auto& c : cases) oracles.insert(c.expected_oracle);
  EXPECT_EQ(oracles, (std::set<std::string>{"bin_array", "clobber_bound",
                                            "consensus", "phase_clock",
                                            "work_accounting"}));
}

TEST(Fuzz, SmallCorpusCleanOnHead) {
  FuzzConfig cfg;
  cfg.trials = 60;
  cfg.jobs = 1;
  const auto rep = run_fuzz(cfg);
  EXPECT_EQ(rep.trials, 60u);
  EXPECT_TRUE(rep.ok()) << rep.failures.front().oracle << ": "
                        << rep.failures.front().message;
}

TEST(Fuzz, ReportIdenticalAcrossJobs) {
  FuzzConfig a;
  a.trials = 40;
  a.jobs = 1;
  a.seed = 9;
  FuzzConfig b = a;
  b.jobs = 4;
  const auto ra = run_fuzz(a);
  const auto rb = run_fuzz(b);
  ASSERT_EQ(ra.failures.size(), rb.failures.size());
  for (std::size_t i = 0; i < ra.failures.size(); ++i) {
    EXPECT_EQ(ra.failures[i].trial, rb.failures[i].trial);
    EXPECT_EQ(ra.failures[i].message, rb.failures[i].message);
    EXPECT_EQ(ra.failures[i].repro_script, rb.failures[i].repro_script);
  }
}

TEST(Fuzz, TrialGridIsDeterministicAndMixed) {
  FuzzConfig cfg;
  std::size_t agreement = 0, consensus = 0, workload = 0, grammar = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    const TrialSpec a = make_trial_spec(cfg, i);
    const TrialSpec b = make_trial_spec(cfg, i);
    EXPECT_EQ(a.seed, b.seed);
    EXPECT_EQ(a.n, b.n);
    switch (a.protocol) {
      case FuzzProtocol::kAgreement: ++agreement; break;
      case FuzzProtocol::kConsensus: ++consensus; break;
      case FuzzProtocol::kWorkload: ++workload; break;
      case FuzzProtocol::kGrammar: ++grammar; break;
    }
  }
  // i%4==1 -> consensus, i%4==3 -> workload, i%8==6 -> grammar (carved out
  // of the agreement slots), rest agreement.
  EXPECT_EQ(agreement, 24u);
  EXPECT_EQ(consensus, 16u);
  EXPECT_EQ(workload, 16u);
  EXPECT_EQ(grammar, 8u);
}

// A failure injected via a harsh tolerance exercises the full pipeline:
// detect -> shrink -> dump -> load -> replay.  clobber_bound=1 makes the
// first legitimate clobber a "failure" — which does NOT depend on the
// schedule, so the binary search correctly shrinks the prefix all the way
// to EMPTY (the repro falls back to its seed form and still reproduces).
TEST(Fuzz, ShrinkAndReproRoundTrip) {
  FuzzConfig cfg;
  cfg.trials = 8;
  cfg.jobs = 1;
  cfg.clobber_bound = 1;
  cfg.repro_dir = ::testing::TempDir();
  const auto rep = run_fuzz(cfg);
  ASSERT_FALSE(rep.ok());
  const FuzzFailure& f = rep.failures.front();
  EXPECT_EQ(f.oracle, "clobber_bound");
  // Schedule-independent failure => minimal prefix is empty.
  EXPECT_TRUE(f.repro_script.empty());
  ASSERT_FALSE(f.repro_path.empty());

  const Repro r = load_repro(f.repro_path);
  EXPECT_EQ(r.oracle, f.oracle);
  EXPECT_EQ(r.clobber_bound, 1u);
  const TrialOutcome out = replay_repro(r, FuzzConfig{});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.oracle, f.oracle);
  std::remove(f.repro_path.c_str());
}

// The scripted-prefix replay path, driven directly: record a trace, replay
// it through a repro whose failure criterion needs the stored tolerance.
TEST(Fuzz, ScriptedReproReplaysRecordedTrace) {
  FuzzConfig cfg;
  cfg.clobber_bound = 1;
  TrialSpec ts = make_trial_spec(cfg, 0);  // agreement trial
  const TrialOutcome recorded = run_trial(ts, cfg, /*record=*/true);
  ASSERT_TRUE(recorded.failed);
  EXPECT_EQ(recorded.oracle, "clobber_bound");
  ASSERT_FALSE(recorded.trace.empty());

  Repro r;
  r.protocol = ts.protocol;
  r.n = ts.n;
  r.beta = ts.beta;
  r.seed = ts.seed;
  r.budget = ts.budget;
  r.clobber_bound = 1;
  r.oracle = recorded.oracle;
  r.script = recorded.trace;
  const std::string path = ::testing::TempDir() + "/apex_repro_script.txt";
  write_repro(path, r);
  const Repro back = load_repro(path);
  ASSERT_EQ(back.script, recorded.trace);

  // Same failure, and (replay determinism) the same message.
  const TrialOutcome out = replay_repro(back, FuzzConfig{});
  EXPECT_TRUE(out.failed);
  EXPECT_EQ(out.oracle, recorded.oracle);
  EXPECT_EQ(out.message, recorded.message);
  std::remove(path.c_str());
}

TEST(Fuzz, ReproFileRoundTripsFuzzedSeedForm) {
  Repro r;
  r.protocol = FuzzProtocol::kConsensus;
  r.n = 6;
  r.seed = 0xDEADBEEF;
  r.budget = 12345;
  r.skew_ticks = 3;
  r.oracle = "consensus";
  const std::string path = ::testing::TempDir() + "/apex_repro_rt.txt";
  write_repro(path, r);
  const Repro back = load_repro(path);
  EXPECT_EQ(back.protocol, r.protocol);
  EXPECT_EQ(back.n, r.n);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.budget, r.budget);
  EXPECT_EQ(back.skew_ticks, r.skew_ticks);
  EXPECT_EQ(back.oracle, r.oracle);
  EXPECT_TRUE(back.script.empty());
  std::remove(path.c_str());
}

TEST(Fuzz, LoadReproRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/apex_repro_bad.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    std::fputs("not a repro\n", f);
    std::fclose(f);
  }
  EXPECT_THROW(load_repro(path), std::runtime_error);
  EXPECT_THROW(load_repro(path + ".missing"), std::runtime_error);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace apex::check
