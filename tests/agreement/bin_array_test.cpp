#include "agreement/bin_array.h"

#include <gtest/gtest.h>

#include "sim/memory.h"

namespace apex::agreement {
namespace {

TEST(BinArray, LayoutAndAddressing) {
  sim::Memory mem(10);
  BinArray bins(mem, 4, 8);
  EXPECT_EQ(bins.base_addr(), 10u);
  EXPECT_EQ(bins.bins(), 4u);
  EXPECT_EQ(bins.cells_per_bin(), 8u);
  EXPECT_EQ(bins.size_words(), 32u);
  EXPECT_EQ(mem.size(), 42u);
  EXPECT_EQ(bins.addr(0, 0), 10u);
  EXPECT_EQ(bins.addr(1, 0), 18u);
  EXPECT_EQ(bins.addr(3, 7), 10u + 3 * 8 + 7);
}

TEST(BinArray, OwnsAndInverseMapping) {
  sim::Memory mem(5);
  BinArray bins(mem, 3, 4);
  EXPECT_FALSE(bins.owns(4));
  EXPECT_TRUE(bins.owns(5));
  EXPECT_TRUE(bins.owns(5 + 11));
  EXPECT_FALSE(bins.owns(5 + 12));
  const std::size_t a = bins.addr(2, 3);
  EXPECT_EQ(bins.bin_of(a), 2u);
  EXPECT_EQ(bins.cell_of(a), 3u);
}

TEST(BinArray, CellsForScalesWithLogN) {
  EXPECT_EQ(BinArray::cells_for(1024, 8), 80u);   // 8 * lg(1024)=10
  EXPECT_EQ(BinArray::cells_for(2, 8), 8u);       // 8 * 1
  EXPECT_GE(BinArray::cells_for(2, 0), 4u);       // floor of 4
}

TEST(BinArray, FilledNeedsExactStamp) {
  sim::Memory mem(0);
  BinArray bins(mem, 2, 4);
  mem.at(bins.addr(0, 1)) = sim::Cell{7, 3};
  EXPECT_TRUE(bins.filled(0, 1, 3));
  EXPECT_FALSE(bins.filled(0, 1, 2));
  EXPECT_FALSE(bins.filled(0, 1, 4));
  EXPECT_FALSE(bins.filled(0, 0, 3));
  EXPECT_EQ(bins.value(0, 1), 7u);
}

TEST(BinArray, FirstEmptySkipsFilledPrefix) {
  sim::Memory mem(0);
  BinArray bins(mem, 1, 6);
  EXPECT_EQ(bins.first_empty(0, 1), 0u);
  mem.at(bins.addr(0, 0)) = sim::Cell{1, 1};
  mem.at(bins.addr(0, 1)) = sim::Cell{1, 1};
  EXPECT_EQ(bins.first_empty(0, 1), 2u);
  // A hole: cell 1 loses its stamp (clobbered).
  mem.at(bins.addr(0, 1)) = sim::Cell{1, 9};
  EXPECT_EQ(bins.first_empty(0, 1), 1u);
  // Full bin.
  for (std::size_t j = 0; j < 6; ++j) mem.at(bins.addr(0, j)) = sim::Cell{1, 1};
  EXPECT_EQ(bins.first_empty(0, 1), 6u);
}

TEST(BinArray, UpperHalfAccounting) {
  sim::Memory mem(0);
  BinArray bins(mem, 1, 8);
  EXPECT_EQ(bins.upper_half_begin(), 4u);
  EXPECT_EQ(bins.upper_half_filled(0, 1), 0u);
  mem.at(bins.addr(0, 4)) = sim::Cell{5, 1};
  mem.at(bins.addr(0, 6)) = sim::Cell{5, 1};
  EXPECT_EQ(bins.upper_half_filled(0, 1), 2u);
  // Lower-half cells don't count.
  mem.at(bins.addr(0, 0)) = sim::Cell{5, 1};
  EXPECT_EQ(bins.upper_half_filled(0, 1), 2u);
}

TEST(BinArray, UpperHalfValuesDeduplicates) {
  sim::Memory mem(0);
  BinArray bins(mem, 1, 8);
  mem.at(bins.addr(0, 4)) = sim::Cell{5, 1};
  mem.at(bins.addr(0, 5)) = sim::Cell{5, 1};
  mem.at(bins.addr(0, 7)) = sim::Cell{9, 1};
  const auto vals = bins.upper_half_values(0, 1);
  EXPECT_EQ(vals.size(), 2u);
}

TEST(BinArray, AgreedValueOnlyWhenUnanimous) {
  sim::Memory mem(0);
  BinArray bins(mem, 1, 8);
  EXPECT_FALSE(bins.agreed_value(0, 1).has_value());
  mem.at(bins.addr(0, 5)) = sim::Cell{42, 1};
  ASSERT_TRUE(bins.agreed_value(0, 1).has_value());
  EXPECT_EQ(*bins.agreed_value(0, 1), 42u);
  mem.at(bins.addr(0, 6)) = sim::Cell{41, 1};
  EXPECT_FALSE(bins.agreed_value(0, 1).has_value());
}

TEST(BinArray, PhasesIsolateContents) {
  // The same physical array serves consecutive phases: stamps from phase 1
  // read as empty in phase 2.
  sim::Memory mem(0);
  BinArray bins(mem, 1, 8);
  for (std::size_t j = 0; j < 8; ++j) mem.at(bins.addr(0, j)) = sim::Cell{3, 1};
  EXPECT_EQ(bins.upper_half_filled(0, 2), 0u);
  EXPECT_EQ(bins.first_empty(0, 2), 0u);
}

}  // namespace
}  // namespace apex::agreement
