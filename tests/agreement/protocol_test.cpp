// Unit tests for Fig. 2: the binary search, one agreement cycle, and the
// NewVal read procedure — driven directly (no clock, no driver loop) so each
// line's behaviour is pinned.
#include "agreement/protocol.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "agreement/testbed.h"
#include "sim/simulator.h"

namespace apex::agreement {
namespace {

using sim::Cell;
using sim::Ctx;
using sim::ProcTask;
using sim::Word;

struct CycleFixture {
  std::unique_ptr<sim::Simulator> sim;
  std::unique_ptr<BinArray> bins;
  AgreementRuntime rt;

  explicit CycleFixture(std::size_t n, std::size_t cells, TaskFn task,
                        std::size_t nprocs = 1, std::uint64_t seed = 1) {
    sim = std::make_unique<sim::Simulator>(
        sim::SimConfig{nprocs, 0, seed},
        std::make_unique<sim::RoundRobinSchedule>(nprocs));
    bins = std::make_unique<BinArray>(sim->memory(), n, cells);
    rt.cfg.n = n;
    rt.cfg.beta = 8;  // cells param overrides sizing; omega uses cells_per_bin
    rt.bins = bins.get();
    rt.task = std::move(task);
  }
};

// Run `k` cycles at fixed phase and stop.
ProcTask run_cycles(Ctx& ctx, AgreementRuntime& rt, Word phase, int k) {
  for (int i = 0; i < k; ++i) co_await agreement_cycle(ctx, rt, phase);
}

ProcTask run_search(Ctx& ctx, const BinArray& bins, std::size_t bin, Word phase,
                    std::size_t& out) {
  out = co_await detail::search_first_empty(ctx, bins, bin, phase);
}

ProcTask run_read_agreed(Ctx& ctx, const BinArray& bins, std::size_t i,
                         Word phase, std::optional<Word>& out) {
  out = co_await read_agreed(ctx, bins, i, phase);
}

// ---------------------------------------------------------------------------
// Binary search
// ---------------------------------------------------------------------------

TEST(SearchFirstEmpty, EmptyBinReturnsZero) {
  CycleFixture f(1, 8, identity_task());
  std::size_t out = 99;
  f.sim->spawn([&](Ctx& c) { return run_search(c, *f.bins, 0, 1, out); });
  f.sim->run(100);
  EXPECT_EQ(out, 0u);
}

TEST(SearchFirstEmpty, FindsFrontierOnCleanPrefix) {
  CycleFixture f(1, 8, identity_task());
  for (std::size_t j = 0; j < 5; ++j)
    f.sim->memory().at(f.bins->addr(0, j)) = Cell{7, 1};
  std::size_t out = 99;
  f.sim->spawn([&](Ctx& c) { return run_search(c, *f.bins, 0, 1, out); });
  f.sim->run(100);
  EXPECT_EQ(out, 5u);
}

TEST(SearchFirstEmpty, FullBinReturnsB) {
  CycleFixture f(1, 8, identity_task());
  for (std::size_t j = 0; j < 8; ++j)
    f.sim->memory().at(f.bins->addr(0, j)) = Cell{7, 1};
  std::size_t out = 0;
  f.sim->spawn([&](Ctx& c) { return run_search(c, *f.bins, 0, 1, out); });
  f.sim->run(100);
  EXPECT_EQ(out, 8u);
}

TEST(SearchFirstEmpty, ProbeCountIsFixed) {
  // ceil(log2(8+1)) = 4 probes + final resume, regardless of contents.
  for (std::size_t prefix : {0u, 3u, 8u}) {
    CycleFixture f(1, 8, identity_task());
    for (std::size_t j = 0; j < prefix; ++j)
      f.sim->memory().at(f.bins->addr(0, j)) = Cell{7, 1};
    std::size_t out = 0;
    f.sim->spawn([&](Ctx& c) { return run_search(c, *f.bins, 0, 1, out); });
    f.sim->run(100);
    EXPECT_EQ(f.sim->total_work(), 5u) << "prefix=" << prefix;
  }
}

TEST(SearchFirstEmpty, MayLandOnHole) {
  // Cells 0..5 filled except a hole at 2 (stale stamp).  The search keeps
  // the invariant lo-filled/hi-empty but can return the hole or a later
  // boundary — it must return SOME empty cell index.
  CycleFixture f(1, 8, identity_task());
  for (std::size_t j = 0; j < 6; ++j)
    f.sim->memory().at(f.bins->addr(0, j)) = Cell{7, 1};
  f.sim->memory().at(f.bins->addr(0, 2)) = Cell{7, 99};  // hole
  std::size_t out = 0;
  f.sim->spawn([&](Ctx& c) { return run_search(c, *f.bins, 0, 1, out); });
  f.sim->run(100);
  EXPECT_TRUE(out == 2u || out == 6u) << out;
  EXPECT_FALSE(f.bins->filled(0, out, 1));
}

// ---------------------------------------------------------------------------
// One cycle
// ---------------------------------------------------------------------------

TEST(AgreementCycle, FirstCycleEvaluatesFIntoCellZero) {
  CycleFixture f(1, 8, identity_task());
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 1); });
  f.sim->run(1000);
  EXPECT_TRUE(f.bins->filled(0, 0, 1));
  EXPECT_EQ(f.bins->value(0, 0), 0u);  // identity task: f_0 = 0
  EXPECT_FALSE(f.bins->filled(0, 1, 1));
}

TEST(AgreementCycle, SubsequentCyclesCopyForward) {
  CycleFixture f(1, 8, identity_task());
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 5); });
  f.sim->run(10000);
  for (std::size_t j = 0; j < 5; ++j) {
    EXPECT_TRUE(f.bins->filled(0, j, 1)) << j;
    EXPECT_EQ(f.bins->value(0, j), 0u);
  }
  EXPECT_FALSE(f.bins->filled(0, 5, 1));
}

TEST(AgreementCycle, EveryCycleCostsExactlyOmega) {
  // identity task costs 1 local step; compute_steps=1.
  CycleFixture f(1, 8, identity_task());
  const std::uint64_t omega = f.rt.cfg.omega();
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 12); });
  f.sim->run(100000);
  // 12 cycles (covering write-f, copy, and full-bin branches: B=8 so cycles
  // 9..12 find the bin full) + final resume.
  EXPECT_EQ(f.sim->total_work(), 12 * omega + 1);
}

TEST(AgreementCycle, OmegaFormulaCoversBranches) {
  AgreementConfig cfg;
  cfg.n = 1024;
  cfg.beta = 8;
  cfg.compute_steps = 3;
  // B = 80, probes = ceil(log2(81)) = 7, omega = 1 + 7 + max(4, 2) = 12.
  EXPECT_EQ(cfg.cells_per_bin(), 80u);
  EXPECT_EQ(cfg.search_probes(), 7u);
  EXPECT_EQ(cfg.omega(), 12u);
}

TEST(AgreementCycle, OmegaGrowsDoublyLogarithmically) {
  // omega is Theta(log log n): going from n=16 to n=65536 must grow omega
  // only by a few steps.
  AgreementConfig small;
  small.n = 16;
  AgreementConfig big;
  big.n = 65536;
  EXPECT_LE(big.omega(), small.omega() + 4);
}

TEST(AgreementCycle, FullBinCycleWritesNothing) {
  CycleFixture f(1, 4, identity_task());
  for (std::size_t j = 0; j < 4; ++j)
    f.sim->memory().at(f.bins->addr(0, j)) = Cell{42, 1};
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 3); });
  f.sim->run(1000);
  for (std::size_t j = 0; j < 4; ++j) EXPECT_EQ(f.bins->value(0, j), 42u);
}

TEST(AgreementCycle, StaleStampedPreviousCellIsNotCopied) {
  // Frontier at 3, but cell 2 carries a stale stamp (clobbered): the search
  // lands on the hole at 2; the copy branch re-reads cell 1 which is fine,
  // so it fills the hole.  If instead cell 1 were ALSO stale, nothing may
  // be written.
  CycleFixture f(1, 8, identity_task());
  f.sim->memory().at(f.bins->addr(0, 0)) = Cell{7, 1};
  f.sim->memory().at(f.bins->addr(0, 1)) = Cell{7, 99};  // stale
  f.sim->memory().at(f.bins->addr(0, 2)) = Cell{7, 99};  // stale
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 1); });
  f.sim->run(1000);
  // The search sees filled(0)=T, then stale cells as empty; it returns 1 or
  // 2; prev cell (0 or 1).  If it returned 1, prev=0 is filled -> copy fills
  // cell 1 with value 7 and stamp 1.  If it returned 2, prev=1 is stale ->
  // no write.  Either way no stale VALUE may acquire stamp 1 beyond cell 1.
  EXPECT_FALSE(f.bins->filled(0, 2, 1));
  if (f.bins->filled(0, 1, 1)) {
    EXPECT_EQ(f.bins->value(0, 1), 7u);
  }
}

TEST(AgreementCycle, TardyStampWritesAreVisibleAsClobbers) {
  // A cycle run with phase=1 into a bin whose cells carry phase=2 stamps
  // treats them as empty and overwrites cell 0 with stamp 1 — the clobber
  // mechanism of Lemma 1.
  CycleFixture f(1, 8, identity_task());
  for (std::size_t j = 0; j < 3; ++j)
    f.sim->memory().at(f.bins->addr(0, j)) = Cell{9, 2};
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 1); });
  f.sim->run(1000);
  EXPECT_TRUE(f.bins->filled(0, 0, 1));
  EXPECT_FALSE(f.bins->filled(0, 0, 2));  // phase 2 lost this cell: a hole
}

TEST(AgreementCycle, ObserverReceivesTimingAndWriteInfo) {
  struct Rec final : public AgreementObserver {
    std::vector<CycleRecord> recs;
    void on_cycle(const CycleRecord& r) override { recs.push_back(r); }
  } rec;
  CycleFixture f(1, 8, identity_task());
  f.rt.observer = &rec;
  f.sim->spawn([&](Ctx& c) { return run_cycles(c, f.rt, 1, 3); });
  f.sim->run(1000);
  ASSERT_EQ(rec.recs.size(), 3u);
  const std::uint64_t omega = f.rt.cfg.omega();
  for (std::size_t k = 0; k < 3; ++k) {
    const auto& r = rec.recs[k];
    EXPECT_EQ(r.proc, 0u);
    EXPECT_EQ(r.bin, 0u);
    EXPECT_EQ(r.phase, 1u);
    EXPECT_EQ(r.f_time - r.s_time, omega);
    EXPECT_GT(r.d_time, r.s_time);
    EXPECT_LT(r.d_time, r.f_time);
    EXPECT_EQ(r.wrote_cell, static_cast<int>(k));
  }
  EXPECT_TRUE(rec.recs[0].evaluated_f);
  EXPECT_FALSE(rec.recs[1].evaluated_f);
}

// ---------------------------------------------------------------------------
// read_agreed
// ---------------------------------------------------------------------------

TEST(ReadAgreed, NulloptWhenUpperHalfEmpty) {
  CycleFixture f(1, 8, identity_task());
  f.sim->memory().at(f.bins->addr(0, 0)) = Cell{5, 1};  // lower half only
  std::optional<Word> out;
  f.sim->spawn([&](Ctx& c) { return run_read_agreed(c, *f.bins, 0, 1, out); });
  f.sim->run(1000);
  EXPECT_FALSE(out.has_value());
}

TEST(ReadAgreed, ReturnsFirstFilledUpperHalfValue) {
  CycleFixture f(1, 8, identity_task());
  f.sim->memory().at(f.bins->addr(0, 5)) = Cell{77, 1};
  std::optional<Word> out;
  f.sim->spawn([&](Ctx& c) { return run_read_agreed(c, *f.bins, 0, 1, out); });
  f.sim->run(1000);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, 77u);
}

TEST(ReadAgreed, IgnoresOtherPhases) {
  CycleFixture f(1, 8, identity_task());
  f.sim->memory().at(f.bins->addr(0, 5)) = Cell{77, 2};
  std::optional<Word> out;
  f.sim->spawn([&](Ctx& c) { return run_read_agreed(c, *f.bins, 0, 1, out); });
  f.sim->run(1000);
  EXPECT_FALSE(out.has_value());
}

TEST(ReadAgreed, StopsAtFirstFilledCell) {
  // Accessibility makes >= half the upper half filled, so the expected
  // probe count is O(1): with the whole upper half filled the scan stops
  // after a single read.
  CycleFixture f(1, 8, identity_task());
  for (std::size_t j = 4; j < 8; ++j)
    f.sim->memory().at(f.bins->addr(0, j)) = Cell{1, 1};
  std::optional<Word> out;
  f.sim->spawn([&](Ctx& c) { return run_read_agreed(c, *f.bins, 0, 1, out); });
  f.sim->run(1000);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(f.sim->total_work(), 2u);  // 1 read + final resume
}

TEST(ReadAgreed, WorstCaseScansWholeUpperHalf) {
  CycleFixture f(1, 8, identity_task());
  std::optional<Word> out;
  f.sim->spawn([&](Ctx& c) { return run_read_agreed(c, *f.bins, 0, 1, out); });
  f.sim->run(1000);
  EXPECT_FALSE(out.has_value());
  EXPECT_EQ(f.sim->total_work(), 5u);  // 4 upper-half reads + final resume
}

}  // namespace
}  // namespace apex::agreement
