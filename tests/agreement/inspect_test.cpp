#include "agreement/inspect.h"

#include <gtest/gtest.h>

#include <cmath>

#include "agreement/testbed.h"
#include "util/math.h"

namespace apex::agreement {
namespace {

// ---------------------------------------------------------------------------
// TheoremChecker on hand-built memory
// ---------------------------------------------------------------------------

struct CheckerFixture {
  sim::Memory mem{0};
  BinArray bins{mem, 2, 8};
  TheoremChecker checker{bins, [](std::size_t, sim::Word v) { return v < 10; }};

  void fill_upper(std::size_t bin, sim::Word value, sim::Word phase) {
    for (std::size_t j = 4; j < 8; ++j)
      mem.at(bins.addr(bin, j)) = sim::Cell{value, phase};
  }
};

TEST(TheoremChecker, AllFalseOnEmptyBins) {
  CheckerFixture f;
  const auto st = f.checker.check(1);
  EXPECT_FALSE(st.accessibility);
  // Vacuous uniqueness/correctness hold with no filled cells.
  EXPECT_TRUE(st.uniqueness);
  EXPECT_FALSE(f.checker.satisfied(1));
}

TEST(TheoremChecker, SatisfiedWhenAllBinsUnanimous) {
  CheckerFixture f;
  f.fill_upper(0, 3, 1);
  f.fill_upper(1, 7, 1);
  EXPECT_TRUE(f.checker.satisfied(1));
  const auto st = f.checker.check(1);
  EXPECT_TRUE(st.all());
  const auto vals = f.checker.values(1);
  EXPECT_EQ(*vals[0], 3u);
  EXPECT_EQ(*vals[1], 7u);
}

TEST(TheoremChecker, HalfFilledIsEnough) {
  CheckerFixture f;
  f.fill_upper(1, 7, 1);
  f.mem.at(f.bins.addr(0, 4)) = sim::Cell{3, 1};
  f.mem.at(f.bins.addr(0, 5)) = sim::Cell{3, 1};
  EXPECT_TRUE(f.checker.satisfied(1));
  f.mem.at(f.bins.addr(0, 5)) = sim::Cell{3, 99};  // only 1/4 filled now
  EXPECT_FALSE(f.checker.satisfied(1));
}

TEST(TheoremChecker, UniquenessViolationDetected) {
  CheckerFixture f;
  f.fill_upper(0, 3, 1);
  f.fill_upper(1, 7, 1);
  f.mem.at(f.bins.addr(0, 6)) = sim::Cell{4, 1};  // conflicting value
  EXPECT_FALSE(f.checker.satisfied(1));
  const auto st = f.checker.check(1);
  EXPECT_FALSE(st.uniqueness);
  EXPECT_TRUE(st.accessibility);
}

TEST(TheoremChecker, CorrectnessUsesSupport) {
  CheckerFixture f;
  f.fill_upper(0, 3, 1);
  f.fill_upper(1, 99, 1);  // outside support (v < 10)
  const auto st = f.checker.check(1);
  EXPECT_FALSE(st.correctness);
  EXPECT_FALSE(f.checker.satisfied(1));
}

// ---------------------------------------------------------------------------
// ClobberAudit + StageAnalysis on live runs
// ---------------------------------------------------------------------------

TEST(ClobberAudit, NoClobbersUnderFriendlySchedule) {
  TestbedConfig cfg;
  cfg.n = 32;
  cfg.seed = 4;
  cfg.schedule = sim::ScheduleKind::kRoundRobin;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  tb.run_until_agreement(100'000'000);
  const auto snap = tb.audit().snapshot();
  EXPECT_EQ(snap.max_clobbers(), 0u);
  EXPECT_EQ(snap.phase, 1u);
}

TEST(ClobberAudit, SleeperScheduleProducesClobbersBoundedByLogN) {
  // Run across several phases so sleepers wake with stale phase estimates.
  const std::size_t n = 64;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 6;
  cfg.schedule = sim::ScheduleKind::kSleeper;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  // Run long enough for ~4 phases.
  tb.run_more(400 * static_cast<std::uint64_t>(n_logn_loglogn(n)));
  ASSERT_GE(tb.audit().finalized().size(), 2u);
  // Lemma 1: clobbers per bin O(log n) w.h.p.; allow a generous constant.
  for (const auto& rep : tb.audit().finalized()) {
    EXPECT_LE(rep.max_clobbers(), 20 * lg(n))
        << "phase " << rep.phase;
  }
}

TEST(ClobberAudit, TracksTruePhaseFromClock) {
  const std::size_t n = 32;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 8;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  EXPECT_EQ(tb.audit().true_phase(), 1u);
  tb.run_more(300 * static_cast<std::uint64_t>(n_logn_loglogn(n)));
  EXPECT_GT(tb.audit().true_phase(), 1u);
  EXPECT_EQ(tb.audit().true_phase(), tb.clock().exact_tick() + 1);
  // Finalized reports are contiguous phases starting at 1.
  const auto& reps = tb.audit().finalized();
  for (std::size_t k = 0; k < reps.size(); ++k)
    EXPECT_EQ(reps[k].phase, k + 1);
}

TEST(ClobberAudit, FrontierAndHoles) {
  const std::size_t n = 16;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 2;
  cfg.schedule = sim::ScheduleKind::kRoundRobin;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  tb.run_until_agreement(10'000'000);
  // After agreement, every bin's frontier is deep into the bin and there
  // are no holes under a friendly schedule.
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_GE(tb.audit().frontier(i), tb.bins().cells_per_bin() / 2);
    EXPECT_EQ(tb.audit().holes(i), 0u);
  }
}

TEST(StageAnalysis, CompleteCyclesPerStageWithinLemma2Bounds) {
  const std::size_t n = 32;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 12;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  StageAnalysis stages(3 * tb.runtime().cfg.omega() * n, n);
  tb.attach(&stages);
  tb.run_more(60 * 3 * tb.runtime().cfg.omega() * n);  // ~60 stages
  const auto rep = stages.finalize();
  ASSERT_GE(rep.complete_per_stage.size(), 10u);
  // Lemma 2: each (full) stage contains between n and 3n complete cycles.
  // Clock interactions consume some steps, so allow a small deficit below n.
  for (std::size_t s = 1; s + 1 < rep.complete_per_stage.size(); ++s) {
    EXPECT_GE(rep.complete_per_stage[s], 2 * n / 3) << "stage " << s;
    EXPECT_LE(rep.complete_per_stage[s], 3 * n) << "stage " << s;
  }
}

TEST(StageAnalysis, StabilizingStructuresOccurAtConstantRate) {
  // Lemma 6: the probability a stage pair forms a stabilizing structure on a
  // given bin is at least a constant (the paper proves >= e^-8 under its
  // counting; empirically the rate is much higher).
  const std::size_t n = 32;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 13;
  AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
  StageAnalysis stages(3 * tb.runtime().cfg.omega() * n, n);
  tb.attach(&stages);
  tb.run_more(80 * 3 * tb.runtime().cfg.omega() * n);
  const auto rep = stages.finalize();
  ASSERT_GT(rep.pairs_examined, 0u);
  const double rate = static_cast<double>(rep.stabilizing_structures) /
                      static_cast<double>(rep.pairs_examined);
  EXPECT_GT(rate, std::exp(-8.0));
}

TEST(StageAnalysis, EmptyReportOnNoRecords) {
  StageAnalysis stages(100, 4);
  const auto rep = stages.finalize();
  EXPECT_TRUE(rep.complete_per_stage.empty());
  EXPECT_EQ(rep.stabilizing_structures, 0u);
  EXPECT_EQ(rep.pairs_examined, 0u);
}

TEST(StabilityPoint, WithinHalfBinAfterAgreement) {
  // Lemma 7: all bins reach stability by cell B/2 — i.e. value conflicts
  // (two different values written to the same cell in one phase) only occur
  // below B/2.
  const std::size_t n = 64;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 21;
  AgreementTestbed tb(cfg, uniform_task(1 << 20), uniform_support(1 << 20));
  const auto res = tb.run_until_agreement(100'000'000);
  ASSERT_TRUE(res.satisfied);
  const auto snap = tb.audit().snapshot();
  EXPECT_LE(snap.max_stable_from(), tb.bins().cells_per_bin() / 2);
}

TEST(Muxes, FanOutToAllRegistered) {
  struct CountObs final : public AgreementObserver {
    int cycles = 0;
    void on_cycle(const CycleRecord&) override { ++cycles; }
  } a, b;
  AgreementObserverMux mux;
  mux.add(&a);
  mux.add(&b);
  CycleRecord r;
  mux.on_cycle(r);
  mux.on_cycle(r);
  EXPECT_EQ(a.cycles, 2);
  EXPECT_EQ(b.cycles, 2);

  struct CountStep final : public sim::StepObserver {
    int steps = 0;
    void on_step(const sim::StepEvent&) override { ++steps; }
  } c, d;
  StepObserverMux smux;
  smux.add(&c);
  smux.add(&d);
  sim::StepEvent ev;
  smux.on_step(ev);
  EXPECT_EQ(c.steps, 1);
  EXPECT_EQ(d.steps, 1);
}

}  // namespace
}  // namespace apex::agreement
