// Claim 8 (paper §4.4): the agreement procedure preserves the distribution
// of the nondeterministic functions — Pr[v_i = x] = p_i(x), because under
// the oblivious adversary the identity of the cycle whose f-evaluation wins
// bin i is independent of the value that cycle computed.
//
// This is the correctness property that makes the whole execution scheme
// valid for RANDOMIZED programs, so we test it directly: run many
// independently-seeded agreements on a biased coin and chi-square the
// agreed-value frequencies against the coin's true distribution.
#include <gtest/gtest.h>

#include <cmath>

#include "agreement/testbed.h"
#include "util/stats.h"

namespace apex::agreement {
namespace {

// Collect agreed coin values over `trials` seeds; returns counts[value].
std::vector<std::uint64_t> sample_agreed_coins(double p, int trials,
                                               std::size_t n,
                                               sim::ScheduleKind kind,
                                               std::uint64_t seed_base) {
  std::vector<std::uint64_t> counts(2, 0);
  for (int t = 0; t < trials; ++t) {
    TestbedConfig cfg;
    cfg.n = n;
    cfg.seed = seed_base + static_cast<std::uint64_t>(t);
    cfg.schedule = kind;
    AgreementTestbed tb(cfg, coin_task(p), coin_support());
    const auto res = tb.run_until_agreement(50'000'000);
    EXPECT_TRUE(res.satisfied) << "trial " << t;
    for (const auto& v : tb.checker().values(1)) {
      EXPECT_TRUE(v.has_value());
      if (!v.has_value()) continue;
      EXPECT_LE(*v, 1u);
      ++counts[std::min<std::uint64_t>(*v, 1)];
    }
  }
  return counts;
}

TEST(Claim8, FairCoinDistributionPreserved) {
  // 40 trials x 16 bins = 640 samples.
  const auto counts = sample_agreed_coins(0.5, 40, 16,
                                          sim::ScheduleKind::kUniformRandom, 500);
  const double stat = chi_square_stat(counts, {0.5, 0.5});
  const double pval = chi_square_pvalue(stat, 1);
  EXPECT_GT(pval, 1e-4) << "heads=" << counts[1] << " tails=" << counts[0];
}

TEST(Claim8, BiasedCoinDistributionPreserved) {
  const double p = 0.25;
  const auto counts = sample_agreed_coins(p, 40, 16,
                                          sim::ScheduleKind::kUniformRandom, 900);
  const double stat = chi_square_stat(counts, {1.0 - p, p});
  const double pval = chi_square_pvalue(stat, 1);
  EXPECT_GT(pval, 1e-4) << "ones=" << counts[1] << " zeros=" << counts[0];
}

TEST(Claim8, HoldsUnderHostileSchedule) {
  // The oblivious adversary cannot bias the outcome even with bursty,
  // heterogeneous scheduling: the winning cycle's identity is fixed by the
  // schedule + bin choices, independent of the computed coin values.
  const auto counts =
      sample_agreed_coins(0.5, 40, 16, sim::ScheduleKind::kBurst, 1300);
  const double stat = chi_square_stat(counts, {0.5, 0.5});
  const double pval = chi_square_pvalue(stat, 1);
  EXPECT_GT(pval, 1e-4) << "heads=" << counts[1] << " tails=" << counts[0];
}

TEST(Claim8, DegenerateDistributionIsFixed) {
  // p = 1: every evaluation yields 1, so every agreed value must be 1.
  const auto counts = sample_agreed_coins(1.0, 5, 16,
                                          sim::ScheduleKind::kUniformRandom, 1700);
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 5u * 16u);
}

TEST(Claim8, BinsAreIndependentAcrossIndices) {
  // Within one run the n agreed coin values should look independent: their
  // sum concentrates around n*p (loose 4-sigma band).
  TestbedConfig cfg;
  cfg.n = 128;
  cfg.seed = 4242;
  AgreementTestbed tb(cfg, coin_task(0.5), coin_support());
  const auto res = tb.run_until_agreement(500'000'000);
  ASSERT_TRUE(res.satisfied);
  double sum = 0;
  for (const auto& v : tb.checker().values(1)) sum += static_cast<double>(*v);
  const double mean = 128 * 0.5;
  const double sigma = std::sqrt(128 * 0.25);
  EXPECT_NEAR(sum, mean, 4 * sigma);
}

}  // namespace
}  // namespace apex::agreement
