// Integration/property tests for Theorem 1 via the shared testbed:
// agreement is reached within the paper's work bound (up to constants),
// and the four properties — Uniqueness, Stability, Accessibility,
// Correctness — hold, across the whole adversary family and many seeds.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "agreement/testbed.h"
#include "util/math.h"

namespace apex::agreement {
namespace {

std::uint64_t work_budget(std::size_t n) {
  // Generous constant x n lg n lglg n; the E1 bench measures the real
  // constant, tests only need "within the bound's shape".
  return static_cast<std::uint64_t>(400.0 * n_logn_loglogn(n)) + 200000;
}

using Param = std::tuple<std::size_t /*n*/, sim::ScheduleKind, std::uint64_t /*seed*/>;

class TheoremSweep : public ::testing::TestWithParam<Param> {};

TEST_P(TheoremSweep, ReachesAgreementWithAllProperties) {
  const auto [n, kind, seed] = GetParam();
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.schedule = kind;
  AgreementTestbed tb(cfg, uniform_task(1000), uniform_support(1000));

  const auto res = tb.run_until_agreement(work_budget(n));
  ASSERT_TRUE(res.satisfied)
      << "n=" << n << " sched=" << sim::schedule_kind_name(kind)
      << " seed=" << seed << " work=" << res.work;

  const auto st = tb.checker().check(1);
  EXPECT_TRUE(st.accessibility);
  EXPECT_TRUE(st.uniqueness);
  EXPECT_TRUE(st.correctness);

  // Stability: the agreed values must not change while phase 1 persists.
  const auto before = tb.checker().values(1);
  tb.run_more(4 * tb.runtime().cfg.omega() * n);
  const auto after = tb.checker().values(1);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(before[i].has_value()) << i;
    if (tb.audit().true_phase() == 1) {
      ASSERT_TRUE(after[i].has_value()) << i;
      EXPECT_EQ(*before[i], *after[i]) << "bin " << i << " value changed";
    }
  }
}

std::string sweep_name(const ::testing::TestParamInfo<Param>& info) {
  return "n" + std::to_string(std::get<0>(info.param)) + "_" +
         sim::schedule_kind_name(std::get<1>(info.param)) + "_s" +
         std::to_string(std::get<2>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, TheoremSweep,
    ::testing::Combine(::testing::Values<std::size_t>(16, 64),
                       ::testing::Values(sim::ScheduleKind::kRoundRobin,
                                         sim::ScheduleKind::kUniformRandom,
                                         sim::ScheduleKind::kPowerLaw,
                                         sim::ScheduleKind::kSleeper,
                                         sim::ScheduleKind::kBurst),
                       ::testing::Values<std::uint64_t>(1, 2, 3)),
    sweep_name);

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, UniformRandomScheduleManySeeds) {
  TestbedConfig cfg;
  cfg.n = 32;
  cfg.seed = GetParam();
  AgreementTestbed tb(cfg, uniform_task(64), uniform_support(64));
  const auto res = tb.run_until_agreement(work_budget(32));
  ASSERT_TRUE(res.satisfied) << "seed=" << GetParam();
  // Correctness: every agreed value lies in [0, 64).
  for (const auto& v : tb.checker().values(1)) {
    ASSERT_TRUE(v.has_value());
    EXPECT_LT(*v, 64u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Range<std::uint64_t>(100, 140));

TEST(Theorem, DeterministicTaskAgreesOnTheOnlyValidValue) {
  TestbedConfig cfg;
  cfg.n = 32;
  cfg.seed = 5;
  AgreementTestbed tb(cfg, identity_task(), identity_support());
  const auto res = tb.run_until_agreement(work_budget(32));
  ASSERT_TRUE(res.satisfied);
  const auto vals = tb.checker().values(1);
  for (std::size_t i = 0; i < 32; ++i) {
    ASSERT_TRUE(vals[i].has_value());
    EXPECT_EQ(*vals[i], i);
  }
}

TEST(Theorem, WorkGrowsQuasilinearlyNotQuadratically) {
  // Shape check on the headline bound: work(n)/n must grow far slower than
  // n (i.e. total work is o(n^2); the E1 bench fits the precise curve).
  std::uint64_t w64 = 0, w256 = 0;
  {
    TestbedConfig cfg;
    cfg.n = 64;
    cfg.seed = 3;
    AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
    const auto res = tb.run_until_agreement(work_budget(64));
    ASSERT_TRUE(res.satisfied);
    w64 = res.work;
  }
  {
    TestbedConfig cfg;
    cfg.n = 256;
    cfg.seed = 3;
    AgreementTestbed tb(cfg, uniform_task(100), uniform_support(100));
    const auto res = tb.run_until_agreement(work_budget(256));
    ASSERT_TRUE(res.satisfied);
    w256 = res.work;
  }
  // n grew 4x; quadratic would grow work 16x.  Allow up to 8x (quasilinear
  // with log factors and noise).
  EXPECT_LT(w256, 8 * w64) << "w64=" << w64 << " w256=" << w256;
}

TEST(Theorem, DeterministicGivenSeed) {
  auto run = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.n = 24;
    cfg.seed = seed;
    AgreementTestbed tb(cfg, uniform_task(32), uniform_support(32));
    const auto res = tb.run_until_agreement(work_budget(24));
    EXPECT_TRUE(res.satisfied);
    std::vector<sim::Word> vals;
    for (const auto& v : tb.checker().values(1)) vals.push_back(v.value_or(~0ULL));
    return std::make_pair(res.work, vals);
  };
  const auto a = run(77);
  const auto b = run(77);
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
  const auto c = run(78);
  EXPECT_NE(a.second, c.second);  // different seed -> different random values
}

TEST(Theorem, AgreementSurvivesCrashFaults) {
  // Half the processors crash early; the oblivious schedule still grants
  // enough steps to the survivors (the protocol is symmetric, so ANY
  // processors' cycles complete the bins).
  const std::size_t n = 32;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 9;
  // Build the testbed, then swap in a crash schedule via a fresh testbed is
  // not supported; instead run the plain protocol under a crash schedule by
  // hand.
  apex::SeedTree seeds{cfg.seed};
  std::vector<std::uint64_t> crash(n, ~0ULL);
  for (std::size_t i = 0; i < n / 2; ++i) crash[i] = 2000 + 100 * i;
  auto sched = std::make_unique<sim::CrashSchedule>(n, crash, seeds.schedule());

  sim::Simulator sim(sim::SimConfig{n, 0, cfg.seed}, std::move(sched));
  clockx::ClockConfig cc;
  cc.nprocs = n;
  cc.alpha = 24.0;
  clockx::PhaseClock clock(sim.memory(), cc);
  BinArray bins(sim.memory(), n, BinArray::cells_for(n, 8));
  AgreementRuntime rt;
  rt.cfg.n = n;
  rt.bins = &bins;
  rt.clock = &clock;
  rt.task = uniform_task(50);
  TheoremChecker checker(bins, uniform_support(50));
  for (std::size_t p = 0; p < n; ++p)
    sim.spawn([&](sim::Ctx& c) { return agreement_proc(c, rt); });
  const auto res = sim.run(
      work_budget(n), [&] { return checker.satisfied(1); }, 64);
  EXPECT_TRUE(res.predicate_hit);
}

}  // namespace
}  // namespace apex::agreement
