// Multi-phase behaviour: the same physical bin array is reused in every
// phase (paper §3), with timestamps distinguishing current from obsolete
// values.  These tests drive the standalone protocol through several TRUE
// phase transitions and assert the Theorem-1 properties hold in EACH phase,
// that finalized phases stabilized by the midpoint (Lemma 7), and that
// clobber counts stay logarithmic (Lemma 1) even with sleepers waking up
// across phase boundaries.
#include <gtest/gtest.h>

#include <tuple>

#include "agreement/testbed.h"
#include "util/math.h"

namespace apex::agreement {
namespace {

using Param = std::tuple<sim::ScheduleKind, std::uint64_t /*seed*/>;

class MultiPhase : public ::testing::TestWithParam<Param> {};

TEST_P(MultiPhase, EveryPhaseAgreesAndStabilizesByMidpoint) {
  const auto [kind, seed] = GetParam();
  const std::size_t n = 16;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = seed;
  cfg.schedule = kind;
  AgreementTestbed tb(cfg, uniform_task(1000), uniform_support(1000));
  const std::size_t B = tb.bins().cells_per_bin();

  // Drive through 4 true phases; within each, poll until the scannable
  // properties hold for that phase.
  sim::Word phase = 1;
  int phases_satisfied = 0;
  std::uint64_t guard = 0;
  while (phase <= 4 && guard++ < 100'000) {
    tb.run_more(256);
    if (tb.checker().satisfied(phase)) {
      ++phases_satisfied;
      // Wait out the remainder of the phase to let it finalize.
      while (tb.audit().true_phase() == phase && guard++ < 100'000)
        tb.run_more(256);
      phase = tb.audit().true_phase();
    } else if (tb.audit().true_phase() > phase) {
      // The phase ended before the properties held: a protocol failure.
      ADD_FAILURE() << "phase " << phase << " ended unsatisfied ("
                    << sim::schedule_kind_name(kind) << ", seed " << seed
                    << ")";
      phase = tb.audit().true_phase();
    }
  }
  EXPECT_GE(phases_satisfied, 4);

  // Every finalized phase must have stabilized by the midpoint cell and
  // respected the Lemma-1 clobber bound.
  const auto& reports = tb.audit().finalized();
  ASSERT_GE(reports.size(), 3u);
  for (const auto& rep : reports) {
    EXPECT_LE(rep.max_stable_from(), static_cast<std::uint32_t>(B / 2))
        << "phase " << rep.phase << " not stable by midpoint";
    EXPECT_LE(rep.max_clobbers(), 6 * lg(n))
        << "phase " << rep.phase << " clobbered beyond the Lemma-1 bound";
  }
}

std::string multiphase_name(const ::testing::TestParamInfo<Param>& info) {
  return std::string(sim::schedule_kind_name(std::get<0>(info.param))) + "_s" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, MultiPhase,
    ::testing::Combine(::testing::Values(sim::ScheduleKind::kUniformRandom,
                                         sim::ScheduleKind::kRoundRobin,
                                         sim::ScheduleKind::kPowerLaw,
                                         sim::ScheduleKind::kSleeper,
                                         sim::ScheduleKind::kBurst),
                       ::testing::Values<std::uint64_t>(41, 42)),
    multiphase_name);

TEST(MultiPhaseValues, SuccessivePhasesDrawFreshValues) {
  // Each phase re-evaluates f, so agreed values should differ between
  // phases almost surely (uniform over 2^20).
  const std::size_t n = 8;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 77;
  AgreementTestbed tb(cfg, uniform_task(1 << 20), uniform_support(1 << 20));

  std::vector<std::vector<sim::Word>> per_phase;
  sim::Word phase = 1;
  std::uint64_t guard = 0;
  while (phase <= 3 && guard++ < 100'000) {
    tb.run_more(256);
    if (tb.checker().satisfied(phase)) {
      std::vector<sim::Word> vals;
      for (const auto& v : tb.checker().values(phase)) vals.push_back(*v);
      per_phase.push_back(vals);
      while (tb.audit().true_phase() == phase && guard++ < 100'000)
        tb.run_more(256);
      phase = tb.audit().true_phase();
    }
  }
  ASSERT_GE(per_phase.size(), 3u);
  EXPECT_NE(per_phase[0], per_phase[1]);
  EXPECT_NE(per_phase[1], per_phase[2]);
}

TEST(MultiPhaseValues, StaleStampsNeverLeakIntoLaterPhaseReads) {
  // After phase k ends, reading the bins at stamp k+1 must never surface a
  // phase-k value: the checker's correctness predicate would catch a leak
  // because each phase uses a distinct support.
  const std::size_t n = 8;
  TestbedConfig cfg;
  cfg.n = n;
  cfg.seed = 99;
  // Task: value = phase * 1000 + draw(100); support likewise per phase.
  AgreementTestbed tb(
      cfg,
      [](sim::Ctx& ctx, std::size_t /*i*/, sim::Word phase) {
        return [](sim::Ctx& c, sim::Word ph) -> sim::SubTask<TaskResult> {
          co_await c.local();
          co_return TaskResult{ph * 1000 + c.rng().below(100)};
        }(ctx, phase);
      },
      [](std::size_t, sim::Word) { return true; });

  sim::Word phase = 1;
  std::uint64_t guard = 0;
  int checked = 0;
  while (phase <= 3 && guard++ < 100'000) {
    tb.run_more(256);
    if (tb.checker().satisfied(phase)) {
      for (const auto& v : tb.checker().values(phase)) {
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v / 1000, phase) << "value from a different phase leaked";
        ++checked;
      }
      while (tb.audit().true_phase() == phase && guard++ < 100'000)
        tb.run_more(256);
      phase = tb.audit().true_phase();
    }
  }
  EXPECT_GE(checked, static_cast<int>(3 * n));
}

}  // namespace
}  // namespace apex::agreement
