#include "batch/sweep.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "agreement/testbed.h"
#include "util/table.h"

namespace apex::batch {
namespace {

// A deterministic trial function: everything derives from the trial index.
TrialResult arithmetic_trial(std::size_t i) {
  TrialResult r;
  r.sample("value", static_cast<double>(i) * 1.5);
  r.sample("square", static_cast<double>(i * i));
  r.count("trials");
  if (i % 3 == 0) r.count("multiples_of_3");
  r.ok = (i % 7 != 6);
  return r;
}

std::string render(const std::vector<GroupStats>& groups) {
  Table t({"group", "n", "mean", "min", "max", "count3", "failed"});
  for (std::size_t g = 0; g < groups.size(); ++g) {
    t.row()
        .cell(static_cast<std::uint64_t>(g))
        .cell(static_cast<std::uint64_t>(groups[g].trials()))
        .cell(groups[g].sample("value").mean(), 6)
        .cell(groups[g].sample("value").min(), 6)
        .cell(groups[g].sample("value").max(), 6)
        .cell(groups[g].count("multiples_of_3"), 0)
        .cell(static_cast<std::uint64_t>(groups[g].failed()));
  }
  std::ostringstream os;
  t.print(os);
  return os.str();
}

TEST(SweepEngine, SingleVsManyJobsProduceIdenticalTables) {
  SweepSpec spec;
  spec.trials = 96;
  spec.jobs = 1;
  const auto serial =
      SweepEngine().run_grouped(spec, arithmetic_trial, 8);
  spec.jobs = 8;
  const auto parallel =
      SweepEngine().run_grouped(spec, arithmetic_trial, 8);
  ASSERT_EQ(serial.size(), parallel.size());
  // Bit-identical aggregation, not just approximately equal: the merge is
  // performed in trial-index order regardless of which worker ran what.
  EXPECT_EQ(render(serial), render(parallel));
  for (std::size_t g = 0; g < serial.size(); ++g) {
    EXPECT_EQ(serial[g].sample("value").mean(),
              parallel[g].sample("value").mean());
    EXPECT_EQ(serial[g].sample("square").variance(),
              parallel[g].sample("square").variance());
    EXPECT_EQ(serial[g].count("multiples_of_3"),
              parallel[g].count("multiples_of_3"));
    EXPECT_EQ(serial[g].failed(), parallel[g].failed());
  }
}

TEST(SweepEngine, SimulationSweepIsJobCountInvariant) {
  // The real workload shape: one simulator universe per (config, seed).
  const auto trial = [](std::size_t i) {
    TrialResult r;
    agreement::TestbedConfig cfg;
    cfg.n = 8 + 8 * (i / 3);  // two configs x three seeds
    cfg.seed = 100 + (i % 3);
    agreement::AgreementTestbed tb(cfg, agreement::uniform_task(64),
                                   agreement::uniform_support(64));
    const auto res = tb.run_until_agreement(5'000'000);
    r.ok = res.satisfied;
    if (res.satisfied) r.sample("work", static_cast<double>(res.work));
    return r;
  };
  SweepSpec spec;
  spec.trials = 6;
  spec.jobs = 1;
  const auto serial = SweepEngine().run_grouped(spec, trial, 3);
  spec.jobs = 8;
  const auto parallel = SweepEngine().run_grouped(spec, trial, 3);
  ASSERT_EQ(serial.size(), 2u);
  for (std::size_t g = 0; g < 2; ++g) {
    EXPECT_EQ(serial[g].failed(), 0u);
    EXPECT_EQ(serial[g].sample("work").mean(),
              parallel[g].sample("work").mean());
    EXPECT_EQ(serial[g].sample("work").max(),
              parallel[g].sample("work").max());
  }
}

TEST(SweepEngine, ThrowingTrialIsReportedNotSwallowed) {
  SweepSpec spec;
  spec.trials = 16;
  spec.jobs = 4;
  const auto fn = [](std::size_t i) -> TrialResult {
    if (i == 5) throw std::runtime_error("bin array exploded");
    if (i == 11) throw std::runtime_error("schedule underflow");
    return TrialResult{};
  };
  try {
    SweepEngine().run(spec, fn);
    FAIL() << "expected SweepError";
  } catch (const SweepError& e) {
    // Both failures surface, in ascending trial order, with messages intact.
    ASSERT_EQ(e.errors().size(), 2u);
    EXPECT_EQ(e.errors()[0].trial, 5u);
    EXPECT_EQ(e.errors()[0].message, "bin array exploded");
    EXPECT_EQ(e.errors()[1].trial, 11u);
    EXPECT_EQ(e.errors()[1].message, "schedule underflow");
    EXPECT_NE(std::string(e.what()).find("trial 5"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("bin array exploded"),
              std::string::npos);
  }
}

TEST(SweepEngine, KeepGoingRecordsErrorOnTrialResult) {
  SweepSpec spec;
  spec.trials = 4;
  spec.jobs = 2;
  spec.keep_going = true;
  const auto results = SweepEngine().run(spec, [](std::size_t i) -> TrialResult {
    if (i == 2) throw std::runtime_error("boom");
    TrialResult r;
    r.sample("x", 1.0);
    return r;
  });
  ASSERT_EQ(results.size(), 4u);
  EXPECT_TRUE(results[0].error.empty());
  EXPECT_FALSE(results[2].ok);
  EXPECT_EQ(results[2].error, "boom");
  // The failed trial still merges (as a failure) without poisoning stats.
  GroupStats g;
  for (const auto& r : results) g.merge(r);
  EXPECT_EQ(g.trials(), 4u);
  EXPECT_EQ(g.failed(), 1u);
  EXPECT_EQ(g.sample("x").count(), 3u);
}

TEST(SweepEngine, AllTrialsRunExactlyOnceAcrossWorkers) {
  std::atomic<int> calls{0};
  std::vector<std::atomic<int>> per_trial(64);
  SweepSpec spec;
  spec.trials = 64;
  spec.jobs = 8;
  const auto results = SweepEngine().run(spec, [&](std::size_t i) {
    calls.fetch_add(1);
    per_trial[i].fetch_add(1);
    TrialResult r;
    r.sample("i", static_cast<double>(i));
    return r;
  });
  EXPECT_EQ(calls.load(), 64);
  for (auto& c : per_trial) EXPECT_EQ(c.load(), 1);
  // Results land at their own index no matter which worker ran them.
  for (std::size_t i = 0; i < results.size(); ++i) {
    ASSERT_EQ(results[i].samples().size(), 1u);
    EXPECT_EQ(results[i].samples()[0].second, static_cast<double>(i));
  }
}

TEST(SweepEngine, ZeroTrialsAndJobResolution) {
  SweepSpec spec;
  spec.trials = 0;
  EXPECT_TRUE(SweepEngine().run(spec, arithmetic_trial).empty());
  EXPECT_GE(SweepEngine::resolve_jobs(0), 1u);
  EXPECT_EQ(SweepEngine::resolve_jobs(5), 5u);
}

TEST(SweepEngine, RunGroupedRejectsIndivisibleGrid) {
  SweepSpec spec;
  spec.trials = 10;
  EXPECT_THROW(SweepEngine().run_grouped(spec, arithmetic_trial, 3),
               std::invalid_argument);
  EXPECT_THROW(SweepEngine().run_grouped(spec, arithmetic_trial, 0),
               std::invalid_argument);
}

}  // namespace
}  // namespace apex::batch
