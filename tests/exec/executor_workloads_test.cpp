// Executor integration on the extended workload library: deterministic
// kernels must reproduce the synchronous reference bit-for-bit under both
// schemes; nondeterministic kernels must be consistent with SOME valid
// synchronous execution under the paper's scheme.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "exec/executor.h"
#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex::exec {
namespace {

using pram::Word;

// Seed the inputs of a kernel via an extra constants step, since executor
// memory starts all-zero.
pram::Program with_inputs(const pram::Program& p, const std::vector<Word>& in) {
  pram::ProgramBuilder b(p.nthreads(), p.nvars());
  b.step().all([&](std::size_t i) {
    return i < in.size()
               ? pram::Instr::constant(static_cast<std::uint32_t>(i), in[i])
               : pram::Instr::nop();
  });
  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    auto sb = b.step();
    for (std::size_t t = 0; t < p.nthreads(); ++t)
      sb.thread(t, p.step(s).instrs[t]);
  }
  return b.build();
}

TEST(ExecutorWorkloads, PrefixSumMatchesReference) {
  const std::size_t n = 8;
  std::vector<Word> in(n);
  for (std::size_t i = 0; i < n; ++i) in[i] = 5 * i + 1;
  pram::Program p = with_inputs(pram::make_prefix_sum(n), in);
  const auto ref = pram::Interpreter(p).run_deterministic({});
  for (Scheme scheme : {Scheme::kNondeterministic, Scheme::kDeterministic}) {
    ExecConfig cfg;
    cfg.seed = 101;
    Executor ex(p, scheme, cfg);
    const auto res = ex.run(Executor::default_budget(p));
    ASSERT_TRUE(res.completed) << scheme_name(scheme);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(res.memory[pram::prefix_sum_var(n, i)],
                ref.memory[pram::prefix_sum_var(n, i)])
          << scheme_name(scheme) << " i=" << i;
  }
}

TEST(ExecutorWorkloads, SortMatchesReferenceAcrossSchedules) {
  const std::size_t n = 6;
  const std::vector<Word> in = {9, 2, 7, 2, 5, 1};
  pram::Program p = with_inputs(pram::make_odd_even_sort(n), in);
  std::vector<Word> expect = in;
  std::sort(expect.begin(), expect.end());
  for (auto kind : {sim::ScheduleKind::kUniformRandom,
                    sim::ScheduleKind::kSleeper, sim::ScheduleKind::kBurst}) {
    ExecConfig cfg;
    cfg.seed = 103;
    cfg.schedule = kind;
    Executor ex(p, Scheme::kNondeterministic, cfg);
    const auto res = ex.run(Executor::default_budget(p));
    ASSERT_TRUE(res.completed) << sim::schedule_kind_name(kind);
    for (std::size_t i = 0; i < n; ++i)
      EXPECT_EQ(res.memory[pram::sort_var(n, i)], expect[i])
          << sim::schedule_kind_name(kind) << " i=" << i;
  }
}

TEST(ExecutorWorkloads, RingColoringFlagsConsistentUnderNondetScheme) {
  const std::size_t n = 8;
  pram::Program p = pram::make_ring_coloring(n, 4);
  ExecConfig ring_cfg;
  ring_cfg.seed = 105;
  const auto chk = run_checked(p, Scheme::kNondeterministic, ring_cfg);
  ASSERT_TRUE(chk.result.completed);
  EXPECT_EQ(chk.consistency_error, "");
  // The committed flags must match the committed colors — the property the
  // deterministic baseline cannot guarantee.
  for (std::size_t i = 0; i < n; ++i) {
    const Word ci = chk.result.memory[pram::ring_color_var(n, i)];
    const Word cn = chk.result.memory[pram::ring_color_var(n, (i + 1) % n)];
    EXPECT_EQ(chk.result.memory[pram::ring_conflict_var(n, i)],
              ci == cn ? 1u : 0u)
        << "node " << i;
  }
}

TEST(ExecutorWorkloads, GatherResolvesRuntimeTargetsUnderHostileSchedules) {
  // idx computed at run time selects the window cell; the executor must
  // stamp-check the computed target like any static operand, under both
  // schemes and hostile schedules.  Out-of-range branch included (idx 7).
  pram::ProgramBuilder b(4, 16);
  b.step()
      .thread(0, pram::Instr::constant(0, 2))   // idx a
      .thread(1, pram::Instr::constant(1, 7))   // idx b (out of range)
      .thread(2, pram::Instr::constant(8, 30))  // window cells, written at
      .thread(3, pram::Instr::constant(9, 31));  // run time
  b.step()
      .thread(0, pram::Instr::constant(10, 32))
      .thread(1, pram::Instr::constant(11, 33));
  b.step().thread(0, pram::Instr::gather(14, 0, 8, 4));   // -> v10 = 32
  b.step().thread(1, pram::Instr::gather(15, 1, 8, 4));   // idx 7 -> 0
  pram::Program p = b.build();
  const auto ref = pram::Interpreter(p).run_deterministic({});
  ASSERT_EQ(ref.memory[14], 32u);
  ASSERT_EQ(ref.memory[15], 0u);
  for (Scheme scheme : {Scheme::kNondeterministic, Scheme::kDeterministic}) {
    for (auto kind : {sim::ScheduleKind::kUniformRandom,
                      sim::ScheduleKind::kSleeper, sim::ScheduleKind::kBurst}) {
      ExecConfig cfg;
      cfg.seed = 301;
      cfg.schedule = kind;
      Executor ex(p, scheme, cfg);
      const auto res = ex.run(Executor::default_budget(p));
      ASSERT_TRUE(res.completed)
          << scheme_name(scheme) << " " << sim::schedule_kind_name(kind);
      EXPECT_EQ(res.memory[14], 32u)
          << scheme_name(scheme) << " " << sim::schedule_kind_name(kind);
      EXPECT_EQ(res.memory[15], 0u)
          << scheme_name(scheme) << " " << sim::schedule_kind_name(kind);
    }
  }
}

TEST(ExecutorWorkloads, SpmvGatherKernelMatchesReferenceBitForBit) {
  const std::size_t n = 8;
  pram::Program p = pram::make_spmv_csr(n);
  const auto ref = pram::Interpreter(p).run_deterministic({});
  ExecConfig cfg;
  cfg.seed = 107;
  cfg.schedule = sim::ScheduleKind::kBurst;
  Executor ex(p, Scheme::kNondeterministic, cfg);
  const auto res = ex.run(Executor::default_budget(p));
  ASSERT_TRUE(res.completed);
  for (std::size_t v = 0; v < ref.memory.size(); ++v)
    EXPECT_EQ(res.memory[v], ref.memory[v]) << "v" << v;
}

TEST(ExecutorWorkloads, LargeRegistryInstanceRunsThroughTheSimulatedScheme) {
  // The registry's scale_ns instances are not host-only: the simulated
  // scheme handles P = 64 too (this is what the fuzzer's rare large-n
  // trials exercise under adversarial schedules).  spmv is the cheapest of
  // the scale kernels and the one with run-time-addressed gathers.
  const auto* wl = pram::find_workload("spmv");
  ASSERT_NE(wl, nullptr);
  ASSERT_FALSE(wl->scale_ns.empty());
  const std::size_t n = wl->scale_ns.front();  // 64
  pram::Program p = wl->make(n);
  const auto ref = pram::Interpreter(p).run_deterministic({});
  ExecConfig cfg;
  cfg.seed = 131;
  Executor ex(p, Scheme::kNondeterministic, cfg);
  const auto res = ex.run(Executor::default_budget(p));
  ASSERT_TRUE(res.completed);
  ASSERT_EQ(res.incomplete_tasks, 0u);
  for (std::size_t v = 0; v < ref.memory.size(); ++v)
    ASSERT_EQ(res.memory[v], ref.memory[v]) << "v" << v;
}

TEST(ExecutorWorkloads, PrefixSumSelfUpdateStepsSurviveHostileSchedule) {
  // make_prefix_sum reads and writes a[i] in one step — the generation-slot
  // memory must keep the pre-step value readable while the new one lands.
  const std::size_t n = 4;
  std::vector<Word> in = {1, 2, 3, 4};
  pram::Program p = with_inputs(pram::make_prefix_sum(n), in);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    ExecConfig cfg;
    cfg.seed = 200 + seed;
    cfg.schedule = sim::ScheduleKind::kSleeper;
    Executor ex(p, Scheme::kNondeterministic, cfg);
    const auto res = ex.run(Executor::default_budget(p));
    ASSERT_TRUE(res.completed) << "seed " << seed;
    EXPECT_EQ(res.memory[pram::prefix_sum_var(n, 3)], 10u) << "seed " << seed;
  }
}

}  // namespace
}  // namespace apex::exec
