// Integration tests for the execution scheme (paper §2, Fig. 1): the
// nondeterministic scheme executes deterministic programs exactly and
// nondeterministic programs consistently; the deterministic baseline is
// exact for deterministic programs but breaks on nondeterministic ones.
#include "exec/executor.h"

#include <gtest/gtest.h>

#include <tuple>

#include "pram/interp.h"
#include "pram/workloads.h"

namespace apex::exec {
namespace {

using pram::Word;

ExecConfig make_cfg(std::uint64_t seed,
                    sim::ScheduleKind kind = sim::ScheduleKind::kUniformRandom) {
  ExecConfig cfg;
  cfg.seed = seed;
  cfg.schedule = kind;
  return cfg;
}

TEST(Executor, DeterministicProgramMatchesReference) {
  // A little arithmetic pipeline; both schemes must reproduce the
  // synchronous interpreter's memory exactly.
  pram::ProgramBuilder b(4, 12);
  b.step()
      .thread(0, pram::Instr::constant(0, 10))
      .thread(1, pram::Instr::constant(1, 20))
      .thread(2, pram::Instr::constant(2, 3))
      .thread(3, pram::Instr::constant(3, 4));
  b.step()
      .thread(0, pram::Instr::add(4, 0, 1))
      .thread(1, pram::Instr::mul(5, 2, 3));
  b.step().thread(2, pram::Instr::sub(6, 4, 5));
  b.step().thread(0, pram::Instr::max(7, 6, 4));
  pram::Program p = b.build();
  const auto ref = pram::Interpreter(p).run_deterministic({});

  for (Scheme scheme : {Scheme::kNondeterministic, Scheme::kDeterministic}) {
    Executor ex(p, scheme, make_cfg(11));
    const auto res = ex.run(Executor::default_budget(p));
    ASSERT_TRUE(res.completed) << scheme_name(scheme);
    EXPECT_EQ(res.incomplete_tasks, 0u) << scheme_name(scheme);
    EXPECT_EQ(res.memory, ref.memory) << scheme_name(scheme);
  }
}

TEST(Executor, ReductionMatchesReferenceAcrossSchedules) {
  const std::size_t n = 8;
  pram::Program p = pram::make_reduction(n);
  // Initial memory is all zeros in the executor; use constants step to seed:
  // simpler: zero inputs sum to zero — instead build a program that sets
  // inputs first.
  pram::ProgramBuilder b(n, p.nvars());
  b.step().all([&](std::size_t i) {
    return pram::Instr::constant(static_cast<std::uint32_t>(i),
                                 static_cast<Word>(3 * i + 1));
  });
  for (std::size_t s = 0; s < p.nsteps(); ++s) {
    auto sb = b.step();
    for (std::size_t t = 0; t < n; ++t) sb.thread(t, p.step(s).instrs[t]);
  }
  pram::Program seeded = b.build();
  const auto ref = pram::Interpreter(seeded).run_deterministic({});

  for (auto kind : {sim::ScheduleKind::kRoundRobin,
                    sim::ScheduleKind::kUniformRandom,
                    sim::ScheduleKind::kPowerLaw, sim::ScheduleKind::kBurst}) {
    Executor ex(seeded, Scheme::kNondeterministic, make_cfg(21, kind));
    const auto res = ex.run(Executor::default_budget(seeded));
    ASSERT_TRUE(res.completed) << sim::schedule_kind_name(kind);
    EXPECT_EQ(res.memory[pram::reduction_result_var(n)],
              ref.memory[pram::reduction_result_var(n)])
        << sim::schedule_kind_name(kind);
  }
}

TEST(Executor, NondetSchemeExecutesRandomizedProgramConsistently) {
  const std::size_t n = 8;
  pram::Program p = pram::make_luby_cycle_round(n, 1 << 16);
  const auto chk = run_checked(p, Scheme::kNondeterministic, make_cfg(31));
  ASSERT_TRUE(chk.result.completed);
  EXPECT_EQ(chk.consistency_error, "");
  EXPECT_EQ(chk.result.incomplete_tasks, 0u);
  // The MIS invariant holds on the executed memory.
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_EQ(chk.result.memory[pram::luby_violation_var(n, i)], 0u);
}

TEST(Executor, LeaderElectionUnderNondetScheme) {
  const std::size_t n = 8;
  pram::Program p = pram::make_leader_election(n, 1 << 16);
  const auto chk = run_checked(p, Scheme::kNondeterministic, make_cfg(41));
  ASSERT_TRUE(chk.result.completed);
  EXPECT_EQ(chk.consistency_error, "");
  Word maxv = 0;
  for (std::size_t i = 0; i < n; ++i)
    maxv = std::max(maxv, chk.result.memory[pram::leader_ticket_var(n, i)]);
  std::size_t leaders = 0;
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(chk.result.memory[pram::leader_max_var(n, i)], maxv);
    leaders += chk.result.memory[pram::leader_flag_var(n, i)];
  }
  EXPECT_GE(leaders, 1u);
}

TEST(Executor, ConsistencyProbeCleanUnderNondetScheme) {
  const std::size_t n = 8, chain = 6;
  pram::Program p = pram::make_consistency_probe(n, chain, 1 << 20);
  for (auto kind :
       {sim::ScheduleKind::kUniformRandom, sim::ScheduleKind::kSleeper,
        sim::ScheduleKind::kBurst}) {
    const auto chk = run_checked(p, Scheme::kNondeterministic, make_cfg(51, kind));
    ASSERT_TRUE(chk.result.completed) << sim::schedule_kind_name(kind);
    EXPECT_EQ(chk.consistency_error, "") << sim::schedule_kind_name(kind);
    for (std::size_t j = 0; j < pram::probe_flag_count(chain); ++j)
      EXPECT_EQ(chk.result.memory[pram::probe_flag_var(n, chain, j)], 1u)
          << sim::schedule_kind_name(kind) << " flag " << j;
  }
}

TEST(Executor, DetSchemeBreaksOnNondeterministicPrograms) {
  // The paper's motivation: without agreement, re-executions of a
  // randomized task produce different values and downstream state becomes
  // inconsistent.  Under hostile schedules some seeds must violate the
  // probe invariant; under the paper's scheme none may (tested above).
  const std::size_t n = 8, chain = 8;
  pram::Program p = pram::make_consistency_probe(n, chain, 1 << 20);
  int violations = 0;
  int runs = 0;
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    for (auto kind :
         {sim::ScheduleKind::kSleeper, sim::ScheduleKind::kBurst}) {
      const auto chk = run_checked(p, Scheme::kDeterministic, make_cfg(seed, kind));
      if (!chk.result.completed) continue;
      ++runs;
      bool bad = !chk.consistency_error.empty();
      for (std::size_t j = 0; j < pram::probe_flag_count(chain); ++j)
        bad |= (chk.result.memory[pram::probe_flag_var(n, chain, j)] != 1u);
      violations += bad;
    }
  }
  ASSERT_GT(runs, 0);
  EXPECT_GT(violations, 0)
      << "deterministic baseline unexpectedly consistent on all "
      << runs << " hostile runs";
}

TEST(Executor, DeterministicGivenSeed) {
  pram::Program p = pram::make_luby_cycle_round(8, 1000);
  auto run = [&](std::uint64_t seed) {
    Executor ex(p, Scheme::kNondeterministic, make_cfg(seed));
    return ex.run(Executor::default_budget(p));
  };
  const auto a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.total_work, b.total_work);
  EXPECT_NE(a.memory, c.memory);
}

TEST(Executor, ProducedTraceMatchesMemoryReplay) {
  pram::Program p = pram::make_coin_matrix(8, 4, 0.5);
  const auto chk = run_checked(p, Scheme::kNondeterministic, make_cfg(61));
  ASSERT_TRUE(chk.result.completed);
  EXPECT_EQ(chk.consistency_error, "");
  // Every produced coin is 0/1 and matches the final memory (coins are
  // written once and never overwritten).
  for (std::size_t s = 0; s < 4; ++s)
    for (std::size_t i = 0; i < 8; ++i) {
      const Word v = chk.result.produced[s][i];
      EXPECT_LE(v, 1u);
      EXPECT_EQ(v, chk.result.memory[pram::coin_matrix_var(8, s, i)]);
    }
}

TEST(Executor, GenerationsValidated) {
  pram::Program p = pram::make_coin_matrix(2, 1, 0.5);
  ExecConfig cfg;
  cfg.generations = 1;
  EXPECT_THROW(Executor(p, Scheme::kNondeterministic, cfg),
               std::invalid_argument);
  // G=2 would let an estimate-leading processor reuse a generation slot
  // while the monitor's delayed commit audit still expects the old stamp.
  cfg.generations = 2;
  EXPECT_THROW(Executor(p, Scheme::kNondeterministic, cfg),
               std::invalid_argument);
  cfg.generations = 3;
  EXPECT_NO_THROW(Executor(p, Scheme::kNondeterministic, cfg));
}

TEST(Executor, BudgetExhaustionReportsIncomplete) {
  pram::Program p = pram::make_coin_matrix(8, 4, 0.5);
  Executor ex(p, Scheme::kNondeterministic, make_cfg(71));
  const auto res = ex.run(500);  // far too little
  EXPECT_FALSE(res.completed);
  const auto chk = run_checked(p, Scheme::kNondeterministic, make_cfg(71), 500);
  EXPECT_NE(chk.consistency_error, "");
}

TEST(Executor, WorkScalesWithSteps) {
  // Work should grow roughly linearly in the number of PRAM steps.
  auto work_for = [&](std::size_t t) {
    pram::Program p = pram::make_coin_matrix(8, t, 0.5);
    Executor ex(p, Scheme::kNondeterministic, make_cfg(81));
    const auto res = ex.run(Executor::default_budget(p));
    EXPECT_TRUE(res.completed);
    return res.total_work;
  };
  const auto w2 = work_for(2);
  const auto w8 = work_for(8);
  EXPECT_GT(w8, 2 * w2);
  EXPECT_LT(w8, 16 * w2);
}

}  // namespace
}  // namespace apex::exec
