// Batched-vs-single-step equivalence: the two grant engines must produce
// grant-for-grant and byte-for-byte identical runs for every schedule kind,
// including mid-batch stop-predicate hits, crash/starvation edges, repeated
// run() calls (prefetch-buffer persistence), and script exhaustion.  This
// suite is the determinism contract of docs/ARCHITECTURE.md made
// executable.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "check/fuzz_schedule.h"
#include "sim/simulator.h"

namespace apex::sim {
namespace {

// --- Schedule-level: fill() must replay next() exactly ----------------------

std::vector<std::size_t> draw_next(Schedule& s, std::size_t count) {
  std::vector<std::size_t> out;
  out.reserve(count);
  for (std::size_t t = 0; t < count; ++t) out.push_back(s.next(t));
  return out;
}

// Drains via fill() in adversarial chunk sizes (1, 7, 64, 1024, ...).
std::vector<std::size_t> draw_fill(Schedule& s, std::size_t count) {
  static constexpr std::size_t kChunks[] = {1, 7, 64, 1024, 3, 128};
  std::vector<std::uint32_t> buf(1024);
  std::vector<std::size_t> out;
  out.reserve(count);
  std::size_t chunk_i = 0;
  std::uint64_t t = 0;
  while (out.size() < count) {
    const std::size_t want =
        std::min(kChunks[chunk_i++ % 6], count - out.size());
    const std::size_t got =
        s.fill(std::span<std::uint32_t>(buf.data(), want), t);
    EXPECT_GE(got, 1u) << "fill produced nothing";
    EXPECT_LE(got, want);
    if (got == 0 || got > want) return out;
    for (std::size_t i = 0; i < got; ++i) out.push_back(buf[i]);
    t += got;
  }
  return out;
}

TEST(ScheduleFill, MatchesNextForEveryCanonicalKind) {
  constexpr std::size_t kN = 8;
  constexpr std::size_t kSteps = 6000;
  for (auto kind : all_schedule_kinds()) {
    auto a = make_schedule(kind, kN, Rng(42));
    auto b = make_schedule(kind, kN, Rng(42));
    EXPECT_EQ(draw_next(*a, kSteps), draw_fill(*b, kSteps))
        << "kind=" << schedule_kind_name(kind);
  }
}

TEST(ScheduleFill, MatchesNextForFuzzedSchedule) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    check::FuzzedSchedule a(6, seed);
    check::FuzzedSchedule b(6, seed);
    EXPECT_EQ(draw_next(a, 20000), draw_fill(b, 20000)) << "seed=" << seed;
    // Segment composition must not depend on the draw API.
    EXPECT_EQ(a.segments_generated(), b.segments_generated());
    EXPECT_EQ(a.describe(), b.describe());
  }
}

TEST(ScheduleFill, ScriptedRoundRobinExhaustMatchesNext) {
  const std::vector<std::size_t> script = {3, 1, 1, 0, 2, 3, 3};
  ScriptedSchedule a(4, script, ScriptExhaust::kRoundRobin);
  ScriptedSchedule b(4, script, ScriptExhaust::kRoundRobin);
  EXPECT_EQ(draw_next(a, 500), draw_fill(b, 500));
}

TEST(ScheduleFill, ScriptedThrowExhaustThrowsAtSameGrant) {
  const std::vector<std::size_t> script = {0, 1, 2, 0, 1};
  ScriptedSchedule a(3, script, ScriptExhaust::kThrow);
  ScriptedSchedule b(3, script, ScriptExhaust::kThrow);
  EXPECT_EQ(draw_next(a, script.size()), draw_fill(b, script.size()));
  EXPECT_THROW(a.next(script.size()), std::out_of_range);
  std::uint32_t one;
  EXPECT_THROW(b.fill(std::span<std::uint32_t>(&one, 1), script.size()),
               std::out_of_range);
}

TEST(ScheduleFill, RecordingScheduleTracesFilledGrants) {
  check::RecordingSchedule rec(std::make_unique<RoundRobinSchedule>(3));
  std::vector<std::uint32_t> buf(10);
  const std::size_t got =
      rec.fill(std::span<std::uint32_t>(buf.data(), 10), 0);
  ASSERT_EQ(got, 10u);
  ASSERT_EQ(rec.trace().size(), 10u);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(rec.trace()[i], i % 3);
}

// A schedule that relies on the BASE fill() (loops next) and throws at a
// fixed time: the default implementation must hand back the grants drawn
// before the error and rethrow on the following call.
class ThrowAtSchedule final : public Schedule {
 public:
  ThrowAtSchedule(std::size_t nprocs, std::uint64_t throw_at)
      : Schedule(nprocs), throw_at_(throw_at) {}
  std::size_t next(std::uint64_t t) override {
    if (t == throw_at_) throw std::runtime_error("boom");
    return static_cast<std::size_t>(t % nprocs_);
  }

 private:
  std::uint64_t throw_at_;
};

TEST(ScheduleFill, DefaultFillDefersMidBatchException) {
  ThrowAtSchedule s(2, 5);
  std::vector<std::uint32_t> buf(8);
  // Grants 0..4 come back; the t=5 error is deferred to the next call.
  EXPECT_EQ(s.fill(std::span<std::uint32_t>(buf.data(), 8), 0), 5u);
  EXPECT_THROW(s.fill(std::span<std::uint32_t>(buf.data(), 8), 5),
               std::runtime_error);
}

// --- Simulator-level: identical runs under both engines ---------------------

// Mixed workload: writers hammer a shared cell (read-modify-write, loses
// updates — interleaving-sensitive), one proc finishes early, one pads with
// ctx.steps() (exercises step accounting), one draws from its private rng.
ProcTask incrementer(Ctx& ctx, std::size_t addr, int count) {
  for (int i = 0; i < count; ++i) {
    const Cell c = co_await ctx.read(addr);
    co_await ctx.write(addr, c.value + 1, c.stamp + 1);
  }
}

ProcTask early_finisher(Ctx& ctx, std::size_t addr) {
  co_await ctx.write(addr, 7, 1);
}

ProcTask padder(Ctx& ctx, std::size_t addr) {
  for (;;) {
    const std::uint64_t start = ctx.steps();
    while (ctx.steps() - start < 8) co_await ctx.local();
    const Cell c = co_await ctx.read(addr);
    co_await ctx.write(addr, c.value + ctx.rng().below(100), 0);
  }
}

ProcTask rng_writer(Ctx& ctx, std::size_t base, std::size_t span) {
  for (;;) {
    const auto a = base + static_cast<std::size_t>(ctx.rng().below(span));
    const Cell c = co_await ctx.read(a);
    co_await ctx.write(a, c.value ^ ctx.rng().next(), c.stamp + 1);
  }
}

struct Outcome {
  std::vector<std::size_t> trace;
  std::vector<Cell> memory;
  std::uint64_t work = 0;
  std::uint64_t ticks = 0;
  std::vector<std::uint64_t> steps;
  std::vector<Simulator::RunResult> results;
  bool threw = false;
  std::string what;
};

using ScheduleFactory = std::function<std::unique_ptr<Schedule>()>;

Outcome run_workload(GrantEngine engine, const ScheduleFactory& make_sched,
                     const std::vector<std::uint64_t>& budgets,
                     std::uint64_t check_interval = 7,
                     bool with_stop = false) {
  constexpr std::size_t kProcs = 4;
  constexpr std::size_t kWords = 8;
  auto rec =
      std::make_unique<check::RecordingSchedule>(make_sched());
  check::RecordingSchedule* recp = rec.get();

  SimConfig cfg;
  cfg.nprocs = kProcs;
  cfg.memory_words = kWords;
  cfg.seed = 11;
  cfg.engine = engine;
  Simulator sim(cfg, std::move(rec));
  sim.spawn([](Ctx& c) { return incrementer(c, 0, 40); });
  sim.spawn([](Ctx& c) { return early_finisher(c, 1); });
  sim.spawn([](Ctx& c) { return padder(c, 2); });
  sim.spawn([](Ctx& c) { return rng_writer(c, 3, 5); });

  Outcome out;
  try {
    for (auto budget : budgets) {
      if (with_stop) {
        out.results.push_back(sim.run(
            budget, [&] { return sim.memory().at(0).value >= 20; },
            check_interval));
      } else {
        out.results.push_back(sim.run(budget, nullptr, check_interval));
      }
    }
  } catch (const std::exception& e) {
    out.threw = true;
    out.what = e.what();
  }
  out.trace = recp->trace();
  out.trace.resize(
      std::min<std::size_t>(out.trace.size(),
                            static_cast<std::size_t>(sim.ticks())));
  for (std::size_t a = 0; a < kWords; ++a)
    out.memory.push_back(sim.memory().at(a));
  out.work = sim.total_work();
  out.ticks = sim.ticks();
  for (std::size_t p = 0; p < kProcs; ++p)
    out.steps.push_back(sim.proc_steps(p));
  return out;
}

void expect_equal(const Outcome& a, const Outcome& b, const char* label) {
  EXPECT_EQ(a.trace, b.trace) << label;
  EXPECT_EQ(a.memory, b.memory) << label;
  EXPECT_EQ(a.work, b.work) << label;
  EXPECT_EQ(a.ticks, b.ticks) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.threw, b.threw) << label;
  EXPECT_EQ(a.what, b.what) << label;
  ASSERT_EQ(a.results.size(), b.results.size()) << label;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].work, b.results[i].work) << label;
    EXPECT_EQ(a.results[i].stop_requested, b.results[i].stop_requested)
        << label;
    EXPECT_EQ(a.results[i].all_finished, b.results[i].all_finished) << label;
    EXPECT_EQ(a.results[i].predicate_hit, b.results[i].predicate_hit)
        << label;
  }
}

TEST(BatchEquivalence, EveryCanonicalScheduleKind) {
  for (auto kind : all_schedule_kinds()) {
    const ScheduleFactory f = [kind] {
      return make_schedule(kind, 4, Rng(99));
    };
    const auto a = run_workload(GrantEngine::kBatched, f, {5000});
    const auto b = run_workload(GrantEngine::kSingleStep, f, {5000});
    expect_equal(a, b, schedule_kind_name(kind));
  }
}

TEST(BatchEquivalence, FuzzedSchedules) {
  for (std::uint64_t seed : {1ull, 5ull, 23ull}) {
    const ScheduleFactory f = [seed] {
      return std::make_unique<check::FuzzedSchedule>(4, seed);
    };
    const auto a = run_workload(GrantEngine::kBatched, f, {4000});
    const auto b = run_workload(GrantEngine::kSingleStep, f, {4000});
    expect_equal(a, b, "fuzzed");
  }
}

TEST(BatchEquivalence, RepeatedRunsWithBufferCarryover) {
  // Odd budget slices force the batched engine to park prefetched grants
  // across run() calls; cumulative state must still match at every slice.
  const ScheduleFactory f = [] {
    return std::make_unique<UniformRandomSchedule>(4, Rng(3));
  };
  const std::vector<std::uint64_t> slices = {13, 1, 7, 250, 64, 1000};
  const auto a = run_workload(GrantEngine::kBatched, f, slices);
  const auto b = run_workload(GrantEngine::kSingleStep, f, slices);
  expect_equal(a, b, "sliced");
}

TEST(BatchEquivalence, MidBatchStopPredicate) {
  const ScheduleFactory f = [] {
    return std::make_unique<RoundRobinSchedule>(4);
  };
  for (std::uint64_t interval : {1ull, 7ull, 64ull, 256ull}) {
    const auto a =
        run_workload(GrantEngine::kBatched, f, {100000}, interval, true);
    const auto b =
        run_workload(GrantEngine::kSingleStep, f, {100000}, interval, true);
    expect_equal(a, b, "stop-predicate");
    EXPECT_TRUE(a.results[0].predicate_hit);
  }
}

TEST(BatchEquivalence, ScriptedThrowExhaustFaultsIdentically) {
  // The script covers less than the budget: both engines must execute the
  // identical prefix and throw out_of_range at the same tick.
  std::vector<std::size_t> script;
  for (std::size_t i = 0; i < 200; ++i) script.push_back(i % 4);
  const ScheduleFactory f = [&script] {
    return std::make_unique<ScriptedSchedule>(4, script,
                                              ScriptExhaust::kThrow);
  };
  const auto a = run_workload(GrantEngine::kBatched, f, {100000});
  const auto b = run_workload(GrantEngine::kSingleStep, f, {100000});
  expect_equal(a, b, "script-throw");
  EXPECT_TRUE(a.threw);
  // 200 scripted grants executed + the faulting grant's consumed tick.
  EXPECT_EQ(a.ticks, 201u);
}

TEST(BatchEquivalence, ScriptedRoundRobinExhaustRunsOn) {
  std::vector<std::size_t> script = {0, 0, 1, 3, 2, 2, 1};
  const ScheduleFactory f = [&script] {
    return std::make_unique<ScriptedSchedule>(4, script,
                                              ScriptExhaust::kRoundRobin);
  };
  const auto a = run_workload(GrantEngine::kBatched, f, {3000});
  const auto b = run_workload(GrantEngine::kSingleStep, f, {3000});
  expect_equal(a, b, "script-rr");
  EXPECT_FALSE(a.threw);
}

TEST(BatchEquivalence, StatefulStopPredicateSeesIdenticalPolls) {
  // Regression: while grants to a finished processor keep the work count
  // parked on a check_interval boundary, the single-step engine re-polls
  // the stop predicate once per grant.  A STATEFUL predicate (a counter)
  // therefore fires at a specific grant; the batched engine must observe
  // the identical number of polls, ticks, and work.
  auto run_counting = [](GrantEngine engine) {
    SimConfig cfg{2, 4, 1};
    cfg.engine = engine;
    Simulator sim(cfg, std::make_unique<RoundRobinSchedule>(2));
    sim.spawn([](Ctx& c) { return early_finisher(c, 0); });  // dies fast
    sim.spawn([](Ctx& c) { return incrementer(c, 1, 1000); });
    int polls = 0;
    const auto res = sim.run(
        100, [&] { return ++polls >= 4; }, 2);
    return std::tuple{polls, sim.ticks(), sim.total_work(),
                      res.predicate_hit, res.work};
  };
  EXPECT_EQ(run_counting(GrantEngine::kBatched),
            run_counting(GrantEngine::kSingleStep));
}

TEST(BatchEquivalence, StarvationFaultsAtSameTick) {
  // All grants go to a processor that finishes immediately; with a small
  // starvation limit both engines must fault after the same grant count.
  auto build = [](GrantEngine engine) {
    SimConfig cfg;
    cfg.nprocs = 2;
    cfg.memory_words = 2;
    cfg.seed = 1;
    cfg.engine = engine;
    cfg.starvation_limit = 50;
    auto sched = std::make_unique<ScriptedSchedule>(
        2, std::vector<std::size_t>(500, 0), ScriptExhaust::kRoundRobin);
    auto sim = std::make_unique<Simulator>(cfg, std::move(sched));
    sim->spawn([](Ctx& c) { return early_finisher(c, 0); });
    sim->spawn([](Ctx& c) { return incrementer(c, 1, 1000); });
    return sim;
  };
  auto a = build(GrantEngine::kBatched);
  auto b = build(GrantEngine::kSingleStep);
  EXPECT_THROW(a->run(10000), std::runtime_error);
  EXPECT_THROW(b->run(10000), std::runtime_error);
  EXPECT_EQ(a->ticks(), b->ticks());
  EXPECT_EQ(a->total_work(), b->total_work());
}

TEST(BatchEquivalence, RunAfterCaughtScheduleExhaustionDoesNotReplay) {
  // Regression: a fill() exception used to leave the prefetch buffer's
  // length stale, so catching the exhaustion and calling run() again
  // replayed the previous batch's grants.  Both engines must instead
  // re-raise on every subsequent run(), consuming one tick per attempt,
  // with no work executed.
  auto run_twice = [](GrantEngine engine) {
    SimConfig cfg{2, 4, 1};
    cfg.engine = engine;
    auto sched = std::make_unique<ScriptedSchedule>(
        2, std::vector<std::size_t>{0, 1, 0, 1, 0, 1},
        ScriptExhaust::kThrow);
    Simulator sim(cfg, std::move(sched));
    sim.spawn([](Ctx& c) { return incrementer(c, 0, 100); });
    sim.spawn([](Ctx& c) { return incrementer(c, 1, 100); });
    EXPECT_THROW(sim.run(50), std::out_of_range);
    const auto work_at_fault = sim.total_work();
    const auto ticks_at_fault = sim.ticks();
    EXPECT_THROW(sim.run(50), std::out_of_range);
    return std::tuple{work_at_fault, ticks_at_fault, sim.total_work(),
                      sim.ticks(), sim.memory().at(0), sim.memory().at(1)};
  };
  EXPECT_EQ(run_twice(GrantEngine::kBatched),
            run_twice(GrantEngine::kSingleStep));
}

// Emits an out-of-range processor id at exactly one tick; valid
// round-robin grants otherwise.  Exercises both the refill-time batch
// validation and the single-step per-grant check.
class BadGrantSchedule final : public Schedule {
 public:
  BadGrantSchedule(std::size_t nprocs, std::uint64_t bad_tick)
      : Schedule(nprocs), bad_tick_(bad_tick) {}
  std::size_t next(std::uint64_t t) override {
    if (t == bad_tick_) return nprocs_ + 100;
    return static_cast<std::size_t>(t % nprocs_);
  }

 private:
  std::uint64_t bad_tick_;
};

TEST(BatchEquivalence, RunContinuesPastCaughtUnknownProcFault) {
  // The bad grant consumes its tick and faults; a caller that catches the
  // logic_error and runs again must see execution continue with the
  // remaining (valid) grants — identically under both engines.
  auto go = [](GrantEngine engine) {
    SimConfig cfg{2, 4, 1};
    cfg.engine = engine;
    Simulator sim(cfg, std::make_unique<BadGrantSchedule>(2, 7));
    sim.spawn([](Ctx& c) { return incrementer(c, 0, 1000); });
    sim.spawn([](Ctx& c) { return incrementer(c, 1, 1000); });
    EXPECT_THROW(sim.run(100), std::logic_error);
    const auto ticks_at_fault = sim.ticks();
    const auto res = sim.run(10);  // must make normal progress
    return std::tuple{ticks_at_fault, res.work, sim.total_work(),
                      sim.ticks(), sim.memory().at(0), sim.memory().at(1)};
  };
  const auto a = go(GrantEngine::kBatched);
  const auto b = go(GrantEngine::kSingleStep);
  EXPECT_EQ(a, b);
  EXPECT_EQ(std::get<0>(a), 8u);   // 7 good grants + the faulting tick
  EXPECT_EQ(std::get<1>(a), 10u);  // second run() proceeded normally
}

TEST(BatchEquivalence, FuzzedScheduleComposesIdenticalSegmentsUnderPrefetch) {
  // Segments are composed only when a grant is actually demanded of them,
  // so prefetch depth must not change segments_generated()/describe() —
  // the failure reports of `apexcli fuzz` depend on this.
  auto go = [](GrantEngine engine) {
    auto fz = std::make_unique<check::FuzzedSchedule>(4, 77);
    check::FuzzedSchedule* fzp = fz.get();
    SimConfig cfg{4, 8, 11};
    cfg.engine = engine;
    Simulator sim(cfg, std::move(fz));
    sim.spawn([](Ctx& c) { return incrementer(c, 0, 100000); });
    sim.spawn([](Ctx& c) { return incrementer(c, 1, 100000); });
    sim.spawn([](Ctx& c) { return padder(c, 2); });
    sim.spawn([](Ctx& c) { return rng_writer(c, 3, 5); });
    // Stop mid-run on a memory condition polled at the fuzzer's cadence,
    // mimicking an oracle firing partway through a segment.
    sim.run(
        100000, [&] { return sim.memory().at(0).value >= 700; }, 16);
    return std::tuple{fzp->segments_generated(), fzp->describe(),
                      sim.ticks(), sim.total_work()};
  };
  EXPECT_EQ(go(GrantEngine::kBatched), go(GrantEngine::kSingleStep));
}

TEST(BatchEquivalence, FastAndInstrumentedPathsAgree) {
  // Same engine, with and without an observer attached: the observer flips
  // the batched engine onto the instrumented grant path, which must not
  // change the simulation.
  struct NullObs final : StepObserver {
    std::uint64_t events = 0;
    void on_step(const StepEvent&) override { ++events; }
  };
  const ScheduleFactory f = [] {
    return std::make_unique<BurstSchedule>(4, 0.9, Rng(5));
  };

  const auto fast = run_workload(GrantEngine::kBatched, f, {4000});

  // Instrumented variant: re-run with an observer attached.
  constexpr std::size_t kProcs = 4;
  SimConfig cfg;
  cfg.nprocs = kProcs;
  cfg.memory_words = 8;
  cfg.seed = 11;
  cfg.engine = GrantEngine::kBatched;
  Simulator sim(cfg, std::make_unique<BurstSchedule>(4, 0.9, Rng(5)));
  sim.spawn([](Ctx& c) { return incrementer(c, 0, 40); });
  sim.spawn([](Ctx& c) { return early_finisher(c, 1); });
  sim.spawn([](Ctx& c) { return padder(c, 2); });
  sim.spawn([](Ctx& c) { return rng_writer(c, 3, 5); });
  NullObs obs;
  sim.add_observer(&obs);
  sim.run(4000, nullptr, 7);

  EXPECT_EQ(sim.total_work(), fast.work);
  EXPECT_EQ(obs.events, fast.work);
  for (std::size_t a = 0; a < 8; ++a)
    EXPECT_EQ(sim.memory().at(a), fast.memory[a]) << "addr " << a;
  for (std::size_t p = 0; p < kProcs; ++p)
    EXPECT_EQ(sim.proc_steps(p), fast.steps[p]) << "proc " << p;
}

}  // namespace
}  // namespace apex::sim
