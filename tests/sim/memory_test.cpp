#include "sim/memory.h"

#include <gtest/gtest.h>

namespace apex::sim {
namespace {

TEST(Memory, InitiallyZeroWithStampZero) {
  Memory m(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(m.at(i).value, 0u);
    EXPECT_EQ(m.at(i).stamp, 0u);
  }
}

TEST(Memory, ReadWriteCell) {
  Memory m(4);
  m.at(2) = Cell{42, 7};
  EXPECT_EQ(m.at(2).value, 42u);
  EXPECT_EQ(m.at(2).stamp, 7u);
}

TEST(Memory, OutOfRangeThrows) {
  Memory m(4);
  EXPECT_THROW(m.at(4), std::out_of_range);
  EXPECT_THROW(m.at(100), std::out_of_range);
  const Memory& cm = m;
  EXPECT_THROW(cm.at(4), std::out_of_range);
}

TEST(Memory, ExtendReturnsBaseAndGrows) {
  Memory m(4);
  const std::size_t base = m.extend(6);
  EXPECT_EQ(base, 4u);
  EXPECT_EQ(m.size(), 10u);
  m.at(9) = Cell{1, 1};
  EXPECT_EQ(m.at(9).value, 1u);
}

TEST(Memory, ClearRegion) {
  Memory m(6);
  for (std::size_t i = 0; i < 6; ++i) m.at(i) = Cell{i + 1, 9};
  m.clear(2, 3);
  EXPECT_EQ(m.at(1).value, 2u);
  EXPECT_EQ(m.at(2).value, 0u);
  EXPECT_EQ(m.at(4).stamp, 0u);
  EXPECT_EQ(m.at(5).value, 6u);
}

TEST(Memory, ClearZeroLengthNeverThrowsInRange) {
  // Regression: the old bounds check evaluated base + len - 1, so a
  // zero-length clear on empty memory spuriously threw, and a zero-length
  // clear never validated base at all.
  Memory empty(0);
  EXPECT_NO_THROW(empty.clear(0, 0));  // empty range on empty memory

  Memory m(4);
  EXPECT_NO_THROW(m.clear(0, 0));
  EXPECT_NO_THROW(m.clear(4, 0));  // one-past-the-end, empty range
  for (std::size_t i = 0; i < 4; ++i) m.at(i) = Cell{9, 9};
  m.clear(2, 0);
  EXPECT_EQ(m.at(2).value, 9u);  // nothing cleared
}

TEST(Memory, ClearValidatesBaseEvenWhenLengthZero) {
  Memory m(4);
  EXPECT_THROW(m.clear(5, 0), std::out_of_range);
  Memory empty(0);
  EXPECT_THROW(empty.clear(1, 0), std::out_of_range);
}

TEST(Memory, ClearRejectsRangePastEndAndOverflow) {
  Memory m(4);
  EXPECT_THROW(m.clear(2, 3), std::out_of_range);
  EXPECT_THROW(m.clear(0, 5), std::out_of_range);
  EXPECT_THROW(m.clear(4, 1), std::out_of_range);
  // base + len would wrap around std::size_t.
  EXPECT_THROW(m.clear(2, ~std::size_t{0}), std::out_of_range);
  // The throwing calls must not have touched anything.
  m.at(3) = Cell{1, 1};
  EXPECT_THROW(m.clear(3, 2), std::out_of_range);
  EXPECT_EQ(m.at(3).value, 1u);
}

TEST(Memory, UncheckedAccessMatchesChecked) {
  Memory m(4);
  m.at(1) = Cell{5, 6};
  EXPECT_EQ(m.at_unchecked(1), m.at(1));
  m.at_unchecked(2) = Cell{7, 8};
  EXPECT_EQ(m.at(2).value, 7u);
  EXPECT_EQ(m.data()[2].stamp, 8u);
}

TEST(Memory, CellEquality) {
  EXPECT_EQ((Cell{1, 2}), (Cell{1, 2}));
  EXPECT_NE((Cell{1, 2}), (Cell{1, 3}));
  EXPECT_NE((Cell{1, 2}), (Cell{2, 2}));
}

}  // namespace
}  // namespace apex::sim
