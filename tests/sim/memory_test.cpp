#include "sim/memory.h"

#include <gtest/gtest.h>

namespace apex::sim {
namespace {

TEST(Memory, InitiallyZeroWithStampZero) {
  Memory m(8);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(m.at(i).value, 0u);
    EXPECT_EQ(m.at(i).stamp, 0u);
  }
}

TEST(Memory, ReadWriteCell) {
  Memory m(4);
  m.at(2) = Cell{42, 7};
  EXPECT_EQ(m.at(2).value, 42u);
  EXPECT_EQ(m.at(2).stamp, 7u);
}

TEST(Memory, OutOfRangeThrows) {
  Memory m(4);
  EXPECT_THROW(m.at(4), std::out_of_range);
  EXPECT_THROW(m.at(100), std::out_of_range);
  const Memory& cm = m;
  EXPECT_THROW(cm.at(4), std::out_of_range);
}

TEST(Memory, ExtendReturnsBaseAndGrows) {
  Memory m(4);
  const std::size_t base = m.extend(6);
  EXPECT_EQ(base, 4u);
  EXPECT_EQ(m.size(), 10u);
  m.at(9) = Cell{1, 1};
  EXPECT_EQ(m.at(9).value, 1u);
}

TEST(Memory, ClearRegion) {
  Memory m(6);
  for (std::size_t i = 0; i < 6; ++i) m.at(i) = Cell{i + 1, 9};
  m.clear(2, 3);
  EXPECT_EQ(m.at(1).value, 2u);
  EXPECT_EQ(m.at(2).value, 0u);
  EXPECT_EQ(m.at(4).stamp, 0u);
  EXPECT_EQ(m.at(5).value, 6u);
}

TEST(Memory, CellEquality) {
  EXPECT_EQ((Cell{1, 2}), (Cell{1, 2}));
  EXPECT_NE((Cell{1, 2}), (Cell{1, 3}));
  EXPECT_NE((Cell{1, 2}), (Cell{2, 2}));
}

}  // namespace
}  // namespace apex::sim
