// Flush-boundary semantics of the batched observer path (observer.h's
// delivery contract made executable): exactly-once delivery across sliced
// run() calls and mid-batch exits, flush-then-throw on every fault class,
// span boundaries as pure framing, the step_synchronous escape hatch, and
// stream equality against the single-step reference engine.
#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "sim/simulator.h"

namespace apex::sim {
namespace {

// Flattened event identity: everything an observer can read from a
// StepEvent.  Two runs are "the same observation" iff these sequences match.
using EventKey = std::tuple<std::uint64_t, std::size_t, Op::Kind, std::size_t,
                            Word, Word, Cell, Cell>;

EventKey key_of(const StepEvent& ev) {
  return {ev.time,     ev.proc,     ev.op.kind, ev.op.addr,
          ev.op.value, ev.op.stamp, ev.before,  ev.after};
}

/// Span-native recorder: keeps the full event stream plus the framing (span
/// lengths), so tests can assert content and boundaries independently.
struct Recorder final : StepObserver {
  std::vector<EventKey> events;
  std::vector<std::size_t> spans;
  void on_step(const StepEvent& ev) override {
    on_steps(std::span<const StepEvent>(&ev, 1));
  }
  void on_steps(std::span<const StepEvent> evs) override {
    spans.push_back(evs.size());
    for (const StepEvent& ev : evs) events.push_back(key_of(ev));
  }
};

/// Per-step recorder that demands exact-step delivery and, for every write,
/// re-reads the LIVE memory cell at delivery time.  On the synchronous path
/// the live cell always equals ev.after; under deferred delivery a later
/// write to the same cell has already landed.
struct LiveCellProbe final : StepObserver {
  explicit LiveCellProbe(const Simulator& s, bool sync)
      : sim(&s), synchronous(sync) {}
  const Simulator* sim;
  bool synchronous;
  std::size_t writes_seen = 0;
  std::size_t live_matches = 0;
  bool step_synchronous() const noexcept override { return synchronous; }
  void on_step(const StepEvent& ev) override {
    if (ev.op.kind != Op::Kind::Write) return;
    ++writes_seen;
    live_matches += sim->memory().at(ev.op.addr) == ev.after;
  }
};

ProcTask incrementer(Ctx& ctx, std::size_t addr, int count) {
  for (int i = 0; i < count; ++i) {
    const Cell c = co_await ctx.read(addr);
    co_await ctx.write(addr, c.value + 1, 0);
  }
}

ProcTask mixed_proc(Ctx& ctx, std::size_t addr) {
  for (sim::Word i = 0;; ++i) {
    co_await ctx.write(addr, i, i);
    co_await ctx.read(addr);
    co_await ctx.local();
  }
}

ProcTask single_local(Ctx& ctx) { co_await ctx.local(); }

ProcTask thrower_after(Ctx& ctx, int steps) {
  for (int i = 0; i < steps; ++i) co_await ctx.local();
  throw std::runtime_error("proc failed");
}

ProcTask oob_reader(Ctx& ctx, int good_steps, std::size_t bad_addr) {
  for (int i = 0; i < good_steps; ++i) co_await ctx.local();
  co_await ctx.read(bad_addr);
}

Simulator make_sim(std::size_t nprocs, std::size_t words, GrantEngine engine,
                   std::uint64_t seed = 1) {
  SimConfig cfg{nprocs, words, seed};
  cfg.engine = engine;
  return Simulator(cfg, std::make_unique<RoundRobinSchedule>(nprocs));
}

// --- Stream equality against the single-step reference ----------------------

TEST(ObserverBatch, StreamMatchesSingleStepEngineExactly) {
  auto run_engine = [](GrantEngine engine) {
    auto sim = make_sim(3, 8, engine);
    sim.spawn([&](Ctx& c) { return incrementer(c, 0, 40); });
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 1); });
    sim.spawn([&](Ctx& c) { return incrementer(c, 2, 25); });
    Recorder rec;
    sim.add_observer(&rec);
    sim.run(500);
    return rec.events;
  };
  const auto batched = run_engine(GrantEngine::kBatched);
  const auto single = run_engine(GrantEngine::kSingleStep);
  EXPECT_EQ(batched.size(), 500u);
  EXPECT_EQ(batched, single);
}

TEST(ObserverBatch, SpanFramingCarriesNoContent) {
  // Same workload, sliced into adversarial run() chunks: the framing (span
  // sizes) changes, the concatenated stream must not.
  auto run_sliced = [](const std::vector<std::uint64_t>& slices) {
    auto sim = make_sim(2, 4, GrantEngine::kBatched);
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 1); });
    Recorder rec;
    sim.add_observer(&rec);
    for (auto s : slices) sim.run(s);
    return rec;
  };
  const auto one_shot = run_sliced({600});
  const auto sliced = run_sliced({7, 1, 64, 300, 128, 100});
  EXPECT_EQ(one_shot.events.size(), 600u);
  EXPECT_EQ(one_shot.events, sliced.events);
  EXPECT_NE(one_shot.spans, sliced.spans);
  for (auto s : sliced.spans) EXPECT_GE(s, 1u);
}

TEST(ObserverBatch, ExactlyOnceAcrossManySingleStepSlices) {
  // run(1) x N forces a flush at every consume exit with a one-event span;
  // nothing may be dropped or double-delivered.
  auto sim = make_sim(2, 4, GrantEngine::kBatched);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 30); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 1, 30); });
  Recorder rec;
  sim.add_observer(&rec);
  for (int i = 0; i < 100; ++i) sim.run(1);
  ASSERT_EQ(rec.events.size(), 100u);
  for (std::size_t i = 0; i < rec.events.size(); ++i)
    EXPECT_EQ(std::get<0>(rec.events[i]), i) << "event time must be dense";
}

// --- Stop predicates ---------------------------------------------------------

TEST(ObserverBatch, MidBatchStopPredicateSeesEveryEventUpToPoll) {
  // The predicate reads observer state: delivery must precede every poll,
  // and a predicate hit mid-batch must not replay or drop events when the
  // run resumes.
  auto sim = make_sim(2, 4, GrantEngine::kBatched);
  sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
  sim.spawn([&](Ctx& c) { return mixed_proc(c, 1); });
  Recorder rec;
  sim.add_observer(&rec);
  const auto res = sim.run(
      100000, [&] { return rec.events.size() >= 50; }, 16);
  EXPECT_TRUE(res.predicate_hit);
  EXPECT_GE(rec.events.size(), 50u);
  EXPECT_LT(rec.events.size(), 50u + 16u);
  const std::size_t at_stop = rec.events.size();
  sim.run(64);
  EXPECT_EQ(rec.events.size(), at_stop + 64u);
  for (std::size_t i = 0; i < rec.events.size(); ++i)
    EXPECT_EQ(std::get<0>(rec.events[i]), i);
}

// --- Fault classes: flush-then-throw ----------------------------------------

TEST(ObserverBatch, StarvationFaultDeliversPriorEventsExactlyOnce) {
  SimConfig cfg{2, 2, 1};
  cfg.starvation_limit = 64;
  cfg.engine = GrantEngine::kBatched;
  Simulator sim(cfg, std::make_unique<CallbackSchedule>(
                         2, [](std::uint64_t) -> std::size_t { return 0; }));
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
  Recorder rec;
  sim.add_observer(&rec);
  EXPECT_THROW(sim.run(1000), std::runtime_error);
  // Proc 0's local + final resume executed (and were delivered) before the
  // dead-grant spin tripped the starvation guard.
  EXPECT_EQ(rec.events.size(), 2u);
  EXPECT_EQ(std::get<0>(rec.events[0]), 0u);
  EXPECT_EQ(std::get<0>(rec.events[1]), 1u);
}

TEST(ObserverBatch, ScriptExhaustThrowDeliversScriptedPrefix) {
  // A kThrow script faults at refill time, when the event buffer is empty:
  // every scripted step must already have been delivered.
  const std::vector<std::size_t> script = {0, 1, 0, 1, 1, 0, 0};
  for (auto engine : {GrantEngine::kBatched, GrantEngine::kSingleStep}) {
    SimConfig cfg{2, 4, 1};
    cfg.engine = engine;
    Simulator sim(cfg, std::make_unique<ScriptedSchedule>(
                           2, script, ScriptExhaust::kThrow));
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 1); });
    Recorder rec;
    sim.add_observer(&rec);
    EXPECT_THROW(sim.run(1000), std::out_of_range);
    EXPECT_EQ(rec.events.size(), script.size());
    for (std::size_t i = 0; i < script.size(); ++i) {
      EXPECT_EQ(std::get<0>(rec.events[i]), i);
      EXPECT_EQ(std::get<1>(rec.events[i]), script[i]);
    }
  }
}

TEST(ObserverBatch, ProcExceptionDeliversEventsBeforeFaultingStep) {
  // The faulting resume produced no completed step: its event must never
  // surface, and everything before it must, on both engines identically.
  auto run_engine = [](GrantEngine engine) {
    auto sim = make_sim(2, 4, engine);
    sim.spawn([&](Ctx& c) { return thrower_after(c, 5); });
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
    Recorder rec;
    sim.add_observer(&rec);
    EXPECT_THROW(sim.run(1000), std::runtime_error);
    return rec.events;
  };
  const auto batched = run_engine(GrantEngine::kBatched);
  const auto single = run_engine(GrantEngine::kSingleStep);
  EXPECT_EQ(batched, single);
  // Round-robin: procs alternate; proc 0's 5 locals + proc 1's first 5
  // steps = 10 events before proc 0's 6th resume throws.
  EXPECT_EQ(batched.size(), 10u);
}

TEST(ObserverBatch, OutOfRangeAddressFaultsWithoutEventAndMatchesReference) {
  auto run_engine = [](GrantEngine engine) {
    auto sim = make_sim(2, 4, engine);
    sim.spawn([&](Ctx& c) { return oob_reader(c, 3, 99); });
    sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
    Recorder rec;
    sim.add_observer(&rec);
    EXPECT_THROW(sim.run(1000), std::out_of_range);
    return std::pair{rec.events, sim.total_work()};
  };
  const auto batched = run_engine(GrantEngine::kBatched);
  const auto single = run_engine(GrantEngine::kSingleStep);
  EXPECT_EQ(batched.first, single.first);
  EXPECT_EQ(batched.second, single.second);
  // 3 locals + 3 interleaved steps of proc 1; the OOB read never executes.
  EXPECT_EQ(batched.first.size(), 6u);
}

// --- The step_synchronous escape hatch --------------------------------------

TEST(ObserverBatch, SynchronousObserverSeesLiveStateAtEachStep) {
  auto sim = make_sim(2, 2, GrantEngine::kBatched);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 50); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 50); });
  LiveCellProbe sync_probe(sim, /*sync=*/true);
  LiveCellProbe batch_probe(sim, /*sync=*/false);
  sim.add_observer(&sync_probe);
  sim.add_observer(&batch_probe);
  sim.run(150);
  ASSERT_GT(sync_probe.writes_seen, 10u);
  EXPECT_EQ(sync_probe.live_matches, sync_probe.writes_seen)
      << "synchronous delivery must observe post-step memory exactly";
  EXPECT_EQ(batch_probe.writes_seen, sync_probe.writes_seen);
  EXPECT_LT(batch_probe.live_matches, batch_probe.writes_seen)
      << "two procs racing one cell: deferred delivery must lag live memory "
         "for at least one write";
}

TEST(ObserverBatch, MixedChainDeliversToBothExactlyOnce) {
  auto sim = make_sim(2, 4, GrantEngine::kBatched);
  sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
  sim.spawn([&](Ctx& c) { return mixed_proc(c, 1); });
  Recorder batch_rec;
  LiveCellProbe sync_probe(sim, /*sync=*/true);
  sim.add_observer(&batch_rec);
  sim.add_observer(&sync_probe);
  sim.run(300);
  EXPECT_EQ(batch_rec.events.size(), 300u);
  // mixed_proc writes every 3rd step; two procs -> 100 writes total.
  EXPECT_EQ(sync_probe.writes_seen, 100u);
  EXPECT_EQ(sync_probe.live_matches, sync_probe.writes_seen);
}

// --- flush_observers() outside a consume loop --------------------------------

TEST(ObserverBatch, ManualFlushOutsideRunIsANoOp) {
  auto sim = make_sim(1, 4, GrantEngine::kBatched);
  sim.spawn([&](Ctx& c) { return mixed_proc(c, 0); });
  Recorder rec;
  sim.add_observer(&rec);
  sim.flush_observers();  // nothing pending before the first run
  sim.run(10);
  const auto spans_after_run = rec.spans.size();
  sim.flush_observers();  // run() already flushed at exit
  EXPECT_EQ(rec.events.size(), 10u);
  EXPECT_EQ(rec.spans.size(), spans_after_run);
}

}  // namespace
}  // namespace apex::sim
