#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace apex::sim {
namespace {

// --- Protocol coroutines used by the tests ---------------------------------

// Write `count` increments into cell `addr` (read + write per increment).
ProcTask incrementer(Ctx& ctx, std::size_t addr, int count) {
  for (int i = 0; i < count; ++i) {
    const Cell c = co_await ctx.read(addr);
    co_await ctx.write(addr, c.value + 1, 0);
  }
}

// Busy-wait until cell `flag` is nonzero, then write 1 to `out`.
ProcTask waiter(Ctx& ctx, std::size_t flag, std::size_t out) {
  for (;;) {
    const Cell c = co_await ctx.read(flag);
    if (c.value != 0) break;
  }
  co_await ctx.write(out, 1, 0);
}

// Set the flag after `delay` local steps.
ProcTask flag_setter(Ctx& ctx, std::size_t flag, int delay) {
  for (int i = 0; i < delay; ++i) co_await ctx.local();
  co_await ctx.write(flag, 1, 0);
}

// Record own id into consecutive cells to expose the grant order.
ProcTask id_writer(Ctx& ctx, std::size_t base, int count) {
  for (int i = 0; i < count; ++i)
    co_await ctx.write(base + static_cast<std::size_t>(i),
                       static_cast<Word>(ctx.id()) + 1, 0);
}

ProcTask single_local(Ctx& ctx) { co_await ctx.local(); }

ProcTask thrower(Ctx& ctx) {
  co_await ctx.local();
  throw std::runtime_error("proc failed");
}

Simulator make_sim(std::size_t nprocs, std::size_t words,
                   std::uint64_t seed = 1) {
  return Simulator(SimConfig{nprocs, words, seed},
                   std::make_unique<RoundRobinSchedule>(nprocs));
}

// --- Tests ------------------------------------------------------------------

TEST(Simulator, SingleProcRunsToCompletion) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 5); });
  const auto res = sim.run(1000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(0).value, 5u);
}

TEST(Simulator, WorkAccountsEveryAtomicStep) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 5); });
  sim.run(1000);
  // 5 iterations x (1 read + 1 write) = 10 awaits, + 1 final resume that
  // runs to co_return.
  EXPECT_EQ(sim.total_work(), 11u);
  EXPECT_EQ(sim.proc_steps(0), 11u);
}

TEST(Simulator, BusyWaitingCostsWork) {
  // The model charges busy-wait reads; the waiter spins while the setter
  // delays, so total work must far exceed the useful steps.
  auto sim = make_sim(2, 4);
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });
  sim.spawn([&](Ctx& c) { return flag_setter(c, 0, 50); });
  const auto res = sim.run(10000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(1).value, 1u);
  EXPECT_GT(sim.proc_steps(0), 45u);  // ~50 spin reads while setter delays
}

TEST(Simulator, RoundRobinInterleavesExactly) {
  auto sim = make_sim(2, 16);
  // Both procs write their id; round-robin grants alternate, and each grant
  // executes one write, so cells record strict alternation.
  sim.spawn([&](Ctx& c) { return id_writer(c, 0, 4); });
  sim.spawn([&](Ctx& c) { return id_writer(c, 8, 4); });
  sim.run(1000);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sim.memory().at(i).value, 1u);
    EXPECT_EQ(sim.memory().at(8 + i).value, 2u);
  }
}

TEST(Simulator, LostUpdateUnderInterleaving) {
  // Two processors doing read-then-write increments on one cell WITHOUT
  // read-modify-write atomicity lose updates under round-robin: both read
  // the same value, both write v+1.  This pins the model's "no compound
  // atomic ops" semantics (the reason the paper's protocols exist).
  auto sim = make_sim(2, 2);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
  sim.run(1000);
  EXPECT_LT(sim.memory().at(0).value, 20u);
}

TEST(Simulator, MaxStepsBoundsWork) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });  // spins forever
  const auto res = sim.run(100);
  EXPECT_FALSE(res.all_finished);
  EXPECT_EQ(res.work, 100u);
  EXPECT_EQ(sim.total_work(), 100u);
}

TEST(Simulator, RunCanBeResumed) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 50); });
  sim.run(20);
  EXPECT_EQ(sim.total_work(), 20u);
  const auto res = sim.run(1000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(0).value, 50u);
}

TEST(Simulator, StopPredicateHalts) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });
  const auto res = sim.run(
      1'000'000, [&] { return sim.total_work() >= 500; }, 16);
  EXPECT_TRUE(res.predicate_hit);
  EXPECT_LT(sim.total_work(), 600u);
}

TEST(Simulator, RequestStopFromProc) {
  struct {
  } dummy;
  (void)dummy;
  auto sim = make_sim(2, 2);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      for (int i = 0; i < 3; ++i) co_await ctx.local();
      ctx.request_stop();
      for (;;) co_await ctx.local();
    }(c);
  });
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });
  const auto res = sim.run(100000);
  EXPECT_TRUE(res.stop_requested);
  EXPECT_LT(sim.total_work(), 100u);
}

TEST(Simulator, ExceptionInProcPropagates) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return thrower(c); });
  EXPECT_THROW(sim.run(100), std::runtime_error);
}

TEST(Simulator, FinishedProcNotCharged) {
  auto sim = make_sim(2, 2);
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 20); });
  const auto res = sim.run(10000);
  EXPECT_TRUE(res.all_finished);
  // Proc 0: 1 local + final resume = 2 steps. Proc 1: 40 + 1.
  EXPECT_EQ(sim.proc_steps(0), 2u);
  EXPECT_EQ(sim.proc_steps(1), 41u);
  EXPECT_EQ(sim.total_work(), 43u);
}

TEST(Simulator, DeterministicAcrossRuns) {
  auto run_once = [](std::uint64_t seed) {
    Simulator sim(SimConfig{4, 8, seed},
                  std::make_unique<UniformRandomSchedule>(4, Rng(seed)));
    for (int p = 0; p < 4; ++p)
      sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
    sim.run(100000);
    return sim.memory().at(0).value;
  };
  EXPECT_EQ(run_once(7), run_once(7));
}

TEST(Simulator, SpawnAfterRunThrows) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.run(10);
  EXPECT_THROW(sim.spawn([&](Ctx& c) { return single_local(c); }),
               std::logic_error);
}

TEST(Simulator, SpawnAfterZeroStepRunStillThrows) {
  // run(0) consumes no work but marks the simulation started.
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return single_local(c); });
  const auto res = sim.run(0);
  EXPECT_EQ(res.work, 0u);
  EXPECT_THROW(sim.spawn([&](Ctx& c) { return single_local(c); }),
               std::logic_error);
}

TEST(Simulator, RepeatedRunsAccumulateTotalWorkExactly) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });  // spins forever
  std::uint64_t expected = 0;
  for (std::uint64_t chunk : {7u, 1u, 64u, 128u, 3u}) {
    const auto res = sim.run(chunk);
    EXPECT_EQ(res.work, chunk);
    expected += chunk;
    EXPECT_EQ(sim.total_work(), expected);
    EXPECT_EQ(sim.proc_steps(0), expected);
  }
}

TEST(Simulator, StopPredicateHonoredAtCheckIntervalBoundaries) {
  // The predicate is evaluated when this run()'s consumed work is a
  // multiple of check_interval; a predicate that is true from the start
  // stops the run before ANY work, and a predicate becoming true mid-run
  // stops at the next multiple.
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });

  const auto at_zero = sim.run(
      1000, [] { return true; }, 7);
  EXPECT_TRUE(at_zero.predicate_hit);
  EXPECT_EQ(at_zero.work, 0u);
  EXPECT_EQ(sim.total_work(), 0u);

  const auto mid = sim.run(
      1000, [&] { return sim.total_work() >= 10; }, 7);
  EXPECT_TRUE(mid.predicate_hit);
  EXPECT_EQ(mid.work, 14u);  // first multiple of 7 at which total >= 10

  // check_interval = 0 is clamped to 1: the predicate fires exactly at the
  // requested threshold.
  const auto every = sim.run(
      1000, [&] { return sim.total_work() >= 17; }, 0);
  EXPECT_TRUE(every.predicate_hit);
  EXPECT_EQ(sim.total_work(), 17u);
}

// Counts every event and verifies gapless, exactly-once delivery.
class GrantCounter final : public StepObserver {
 public:
  std::uint64_t events = 0;
  std::vector<std::uint64_t> per_proc;
  bool gapless = true;
  void on_step(const StepEvent& ev) override {
    gapless &= (ev.time == events);
    ++events;
    if (ev.proc >= per_proc.size()) per_proc.resize(ev.proc + 1, 0);
    ++per_proc[ev.proc];
  }
};

TEST(Simulator, ObserverSeesEveryGrantExactlyOnce) {
  // One proc finishes early: later schedule grants to it produce NO events
  // and charge NO work, so events must still reconcile exactly.
  auto sim = make_sim(3, 8);
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 1, 7); });
  GrantCounter rec;
  sim.add_observer(&rec);
  const auto res = sim.run(100000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_TRUE(rec.gapless);
  EXPECT_EQ(rec.events, sim.total_work());
  ASSERT_EQ(rec.per_proc.size(), 3u);
  std::uint64_t sum = 0;
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_EQ(rec.per_proc[p], sim.proc_steps(p)) << "proc " << p;
    sum += rec.per_proc[p];
  }
  EXPECT_EQ(sum, sim.total_work());
}

TEST(Simulator, CtxReportsIdentityAndSize) {
  auto sim = make_sim(3, 4);
  std::vector<std::size_t> ids;
  std::vector<std::size_t> sizes;
  for (int p = 0; p < 3; ++p) {
    sim.spawn([&](Ctx& c) -> ProcTask {
      ids.push_back(c.id());
      sizes.push_back(c.nprocs());
      return single_local(c);
    });
  }
  sim.run(100);
  EXPECT_EQ(ids, (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_EQ(sizes, (std::vector<std::size_t>{3, 3, 3}));
}

// Observer: records write events.
class WriteRecorder final : public StepObserver {
 public:
  struct Rec {
    std::size_t proc;
    std::size_t addr;
    Word value;
  };
  std::vector<Rec> writes;
  void on_step(const StepEvent& ev) override {
    if (ev.op.kind == Op::Kind::Write)
      writes.push_back({ev.proc, ev.op.addr, ev.op.value});
  }
};

TEST(Simulator, ObserverSeesWritesInOrder) {
  auto sim = make_sim(1, 8);
  sim.spawn([&](Ctx& c) { return id_writer(c, 2, 3); });
  WriteRecorder rec;
  sim.add_observer(&rec);
  sim.run(100);
  ASSERT_EQ(rec.writes.size(), 3u);
  EXPECT_EQ(rec.writes[0].addr, 2u);
  EXPECT_EQ(rec.writes[1].addr, 3u);
  EXPECT_EQ(rec.writes[2].addr, 4u);
  for (const auto& w : rec.writes) EXPECT_EQ(w.value, 1u);
}

TEST(Simulator, ObserverSeesBeforeAfter) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 2); });
  struct BeforeAfter final : public StepObserver {
    std::vector<std::pair<Word, Word>> w;
    void on_step(const StepEvent& ev) override {
      if (ev.op.kind == Op::Kind::Write)
        w.emplace_back(ev.before.value, ev.after.value);
    }
  } rec;
  sim.add_observer(&rec);
  sim.run(100);
  ASSERT_EQ(rec.w.size(), 2u);
  EXPECT_EQ(rec.w[0], (std::pair<Word, Word>{0, 1}));
  EXPECT_EQ(rec.w[1], (std::pair<Word, Word>{1, 2}));
}

TEST(Simulator, ObserverChainDeliversToAllInOrder) {
  // Multiple observers attach side by side (no more single-slot fights);
  // delivery is attach-order; remove_observer detaches one without
  // disturbing the rest.
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
  GrantCounter first, second;
  sim.add_observer(&first);
  sim.add_observer(&second);
  sim.run(10);
  EXPECT_EQ(first.events, 10u);
  EXPECT_EQ(second.events, 10u);
  sim.remove_observer(&first);
  sim.run(4);
  EXPECT_EQ(first.events, 10u);
  EXPECT_EQ(second.events, 14u);
}

TEST(Simulator, ClearObserversDetachesWholeChain) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 10); });
  GrantCounter first, second;
  sim.add_observer(&first);
  sim.clear_observers();
  sim.add_observer(&second);
  sim.run(6);
  EXPECT_EQ(first.events, 0u);
  EXPECT_EQ(second.events, 6u);
  sim.clear_observers();
  sim.run(4);
  EXPECT_EQ(second.events, 6u);
}

// Grants only processor 0 forever.  CallbackSchedule is non-oblivious, so
// this also exercises the batched engine's no-prefetch path.
std::unique_ptr<Schedule> only_proc0(std::size_t nprocs) {
  return std::make_unique<CallbackSchedule>(
      nprocs, [](std::uint64_t) -> std::size_t { return 0; });
}

TEST(Simulator, StarvationGuardThrowsWhenOnlyFinishedProcsGranted) {
  // Proc 0 finishes after 2 grants; proc 1 never gets granted.  With live
  // processors remaining, the run must fault once the limit of consecutive
  // finished-proc grants is exceeded rather than spin forever.
  SimConfig cfg{2, 2, 1};
  cfg.starvation_limit = 64;
  Simulator sim(cfg, only_proc0(2));
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });
  EXPECT_THROW(sim.run(1000), std::runtime_error);
  // 2 live grants + limit+1 dead grants were consumed.
  EXPECT_EQ(sim.ticks(), 2u + 64u + 1u);
  EXPECT_EQ(sim.total_work(), 2u);
}

TEST(Simulator, StarvationGuardAccumulatesAcrossRunCalls) {
  // A run() boundary must not reset the guard: dead grants split across
  // consecutive run() calls still add up to the same faulting tick.
  SimConfig cfg{2, 2, 1};
  cfg.starvation_limit = 32;
  Simulator sim(cfg, only_proc0(2));
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.spawn([&](Ctx& c) { return waiter(c, 0, 1); });

  // First call: exit mid-starvation via the stop predicate (evaluated at
  // work 0 on every loop pass, so the 5th poll ends the run after some
  // dead grants have accumulated — none of which may be forgotten).
  int polls = 0;
  const auto res = sim.run(
      1000, [&] { return ++polls >= 5; }, 1);
  EXPECT_TRUE(res.predicate_hit);
  const std::uint64_t ticks_after_first = sim.ticks();
  EXPECT_GT(ticks_after_first, 2u);  // some dead grants already consumed

  // Second call: the cumulative count faults at exactly limit+1 dead
  // grants overall — NOT limit+1 grants after the run() boundary.
  EXPECT_THROW(sim.run(1000), std::runtime_error);
  EXPECT_EQ(sim.ticks(), 2u + 32u + 1u);
}

TEST(Simulator, StarvationGuardResetByLiveGrant) {
  // Alternating dead/live grants never trip even a tiny limit.
  SimConfig cfg{2, 4, 1};
  cfg.starvation_limit = 2;
  Simulator sim(cfg, std::make_unique<RoundRobinSchedule>(2));
  sim.spawn([&](Ctx& c) { return single_local(c); });
  sim.spawn([&](Ctx& c) { return incrementer(c, 0, 100); });
  const auto res = sim.run(10000);
  EXPECT_TRUE(res.all_finished);
}

TEST(Simulator, TimestampedWriteStoresStamp) {
  auto sim = make_sim(1, 2);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      co_await ctx.write(0, 99, 5);
      const Cell got = co_await ctx.read(0);
      co_await ctx.write(1, got.stamp, 0);
    }(c);
  });
  sim.run(100);
  EXPECT_EQ(sim.memory().at(0).value, 99u);
  EXPECT_EQ(sim.memory().at(0).stamp, 5u);
  EXPECT_EQ(sim.memory().at(1).value, 5u);
}

}  // namespace
}  // namespace apex::sim
