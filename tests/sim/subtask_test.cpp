#include "sim/subtask.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>

#include "sim/simulator.h"

namespace apex::sim {
namespace {

// Sub-procedure: read two cells and return their sum (2 atomic steps).
SubTask<Word> sum_two(Ctx& ctx, std::size_t a, std::size_t b) {
  const Cell ca = co_await ctx.read(a);
  const Cell cb = co_await ctx.read(b);
  co_return ca.value + cb.value;
}

// Sub-procedure with no steps at all (must complete synchronously).
SubTask<Word> constant_fn(Ctx&) { co_return 42; }

// void sub-procedure.
SubTask<void> write_one(Ctx& ctx, std::size_t addr, Word v) {
  co_await ctx.write(addr, v, 0);
}

// Nested: calls sum_two twice through another level.
SubTask<Word> sum_four(Ctx& ctx, std::size_t base) {
  const Word s1 = co_await sum_two(ctx, base, base + 1);
  const Word s2 = co_await sum_two(ctx, base + 2, base + 3);
  co_return s1 + s2;
}

SubTask<Word> throwing_sub(Ctx& ctx) {
  co_await ctx.local();
  throw std::runtime_error("sub failed");
}

Simulator make_sim(std::size_t nprocs, std::size_t words) {
  return Simulator(SimConfig{nprocs, words, 1},
                   std::make_unique<RoundRobinSchedule>(nprocs));
}

TEST(SubTask, ValueReturnedToParent) {
  auto sim = make_sim(1, 8);
  for (std::size_t i = 0; i < 4; ++i) sim.memory().at(i) = Cell{i + 1, 0};
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      const Word s = co_await sum_two(ctx, 0, 1);
      co_await ctx.write(4, s, 0);
    }(c);
  });
  const auto res = sim.run(100);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(4).value, 3u);
}

TEST(SubTask, StepAccountingCrossesBoundaries) {
  auto sim = make_sim(1, 8);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      (void)co_await sum_two(ctx, 0, 1);  // 2 steps
      co_await ctx.local();               // 1 step
    }(c);
  });
  sim.run(100);
  // 2 reads + 1 local + final resume = 4.
  EXPECT_EQ(sim.total_work(), 4u);
}

TEST(SubTask, SynchronousSubtaskCostsNothing) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      const Word v = co_await constant_fn(ctx);
      co_await ctx.write(0, v, 0);
    }(c);
  });
  sim.run(100);
  EXPECT_EQ(sim.memory().at(0).value, 42u);
  // 1 write + final resume: the stepless subtask consumed no grants.
  EXPECT_EQ(sim.total_work(), 2u);
}

TEST(SubTask, VoidSubtask) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      co_await write_one(ctx, 2, 9);
      co_await write_one(ctx, 3, 11);
    }(c);
  });
  sim.run(100);
  EXPECT_EQ(sim.memory().at(2).value, 9u);
  EXPECT_EQ(sim.memory().at(3).value, 11u);
}

TEST(SubTask, TwoLevelNesting) {
  auto sim = make_sim(1, 8);
  for (std::size_t i = 0; i < 4; ++i) sim.memory().at(i) = Cell{10 * (i + 1), 0};
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      const Word s = co_await sum_four(ctx, 0);
      co_await ctx.write(7, s, 0);
    }(c);
  });
  const auto res = sim.run(100);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(7).value, 100u);
  // 4 reads + 1 write + final resume = 6.
  EXPECT_EQ(sim.total_work(), 6u);
}

TEST(SubTask, InterleavingAcrossProcsInsideSubtasks) {
  // Two procs both run nested subtasks; round-robin interleaves their
  // atomic steps one-for-one even mid-subtask.
  auto sim = make_sim(2, 16);
  for (std::size_t p = 0; p < 2; ++p) {
    sim.spawn([&, p](Ctx& c) -> ProcTask {
      return [](Ctx& ctx, std::size_t base) -> ProcTask {
        for (int k = 0; k < 3; ++k) {
          const Word s = co_await sum_two(ctx, base, base + 1);
          co_await ctx.write(base + 2, s + static_cast<Word>(k), 0);
        }
      }(c, 8 * p);
    });
  }
  const auto res = sim.run(1000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(2).value, 2u);
  EXPECT_EQ(sim.memory().at(10).value, 2u);
  EXPECT_EQ(sim.proc_steps(0), sim.proc_steps(1));
}

TEST(SubTask, ExceptionPropagatesThroughStack) {
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      (void)co_await throwing_sub(ctx);
      co_await ctx.local();  // never reached
    }(c);
  });
  EXPECT_THROW(sim.run(100), std::runtime_error);
}

TEST(SubTask, LoopedSubtaskCalls) {
  // A subtask invoked many times in a loop must not leak or corrupt state.
  auto sim = make_sim(1, 4);
  sim.spawn([&](Ctx& c) -> ProcTask {
    return [](Ctx& ctx) -> ProcTask {
      for (int k = 0; k < 100; ++k) co_await write_one(ctx, 0, static_cast<Word>(k));
    }(c);
  });
  const auto res = sim.run(10000);
  EXPECT_TRUE(res.all_finished);
  EXPECT_EQ(sim.memory().at(0).value, 99u);
  EXPECT_EQ(sim.total_work(), 101u);
}

}  // namespace
}  // namespace apex::sim
