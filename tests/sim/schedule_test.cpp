#include "sim/schedule.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

namespace apex::sim {
namespace {

TEST(RoundRobin, CyclesThroughAll) {
  RoundRobinSchedule s(3);
  std::vector<std::size_t> got;
  for (std::uint64_t t = 0; t < 6; ++t) got.push_back(s.next(t));
  EXPECT_EQ(got, (std::vector<std::size_t>{0, 1, 2, 0, 1, 2}));
}

TEST(UniformRandom, CoversAllProcsFairly) {
  const std::size_t n = 8;
  UniformRandomSchedule s(n, apex::Rng(5));
  std::vector<int> counts(n, 0);
  const int kSteps = 80000;
  for (int t = 0; t < kSteps; ++t) ++counts[s.next(t)];
  for (auto c : counts)
    EXPECT_NEAR(static_cast<double>(c), kSteps / 8.0, kSteps / 8.0 * 0.1);
}

TEST(Rate, RespectsRatios) {
  RateSchedule s({3.0, 1.0}, apex::Rng(9));
  int fast = 0;
  const int kSteps = 40000;
  for (int t = 0; t < kSteps; ++t) fast += (s.next(t) == 0);
  EXPECT_NEAR(static_cast<double>(fast) / kSteps, 0.75, 0.02);
}

TEST(Rate, PowerLawSkews) {
  auto s = RateSchedule::power_law(16, 1.2, apex::Rng(2));
  std::vector<int> counts(16, 0);
  for (int t = 0; t < 50000; ++t) ++counts[s->next(t)];
  EXPECT_GT(counts[0], counts[8]);
  EXPECT_GT(counts[0], 4 * counts[15]);
}

TEST(Rate, RejectsNonPositive) {
  EXPECT_THROW(RateSchedule({1.0, 0.0}, apex::Rng(1)), std::invalid_argument);
  EXPECT_THROW(RateSchedule({1.0, -2.0}, apex::Rng(1)), std::invalid_argument);
}

TEST(Sleeper, SleepersOnlyGrantedInBursts) {
  const std::size_t n = 4;
  SleeperSchedule s(n, {0}, /*period=*/100, /*burst=*/10, apex::Rng(3));
  for (std::uint64_t t = 0; t < 100; ++t) {
    // Before the first full period, sleeper 0 never runs.
    EXPECT_NE(s.next(t), 0u) << "t=" << t;
  }
  bool sleeper_ran = false;
  for (std::uint64_t t = 100; t < 110; ++t) sleeper_ran |= (s.next(t) == 0);
  EXPECT_TRUE(sleeper_ran);
  for (std::uint64_t t = 110; t < 200; ++t) EXPECT_NE(s.next(t), 0u);
}

TEST(Sleeper, ValidatesArgs) {
  EXPECT_THROW(SleeperSchedule(2, {0, 1}, 10, 5, apex::Rng(1)),
               std::invalid_argument);  // everyone asleep
  EXPECT_THROW(SleeperSchedule(2, {5}, 10, 5, apex::Rng(1)),
               std::invalid_argument);  // out of range
  EXPECT_THROW(SleeperSchedule(2, {0}, 10, 0, apex::Rng(1)),
               std::invalid_argument);  // zero burst
  EXPECT_THROW(SleeperSchedule(2, {0}, 10, 20, apex::Rng(1)),
               std::invalid_argument);  // burst > period
}

TEST(Crash, CrashedProcNeverGrantedAfterDeadline) {
  const std::size_t n = 4;
  std::vector<std::uint64_t> crash(n, ~0ULL);
  crash[2] = 50;
  CrashSchedule s(n, crash, apex::Rng(8));
  bool before = false;
  for (std::uint64_t t = 0; t < 50; ++t) before |= (s.next(t) == 2);
  EXPECT_TRUE(before);
  for (std::uint64_t t = 50; t < 5000; ++t) EXPECT_NE(s.next(t), 2u);
}

TEST(Crash, RequiresSurvivor) {
  EXPECT_THROW(CrashSchedule(2, {10, 20}, apex::Rng(1)),
               std::invalid_argument);
}

TEST(Scripted, PlaysScriptThenRoundRobin) {
  ScriptedSchedule s(3, {2, 2, 0});
  EXPECT_EQ(s.exhaust_policy(), ScriptExhaust::kRoundRobin);
  EXPECT_EQ(s.next(0), 2u);
  EXPECT_EQ(s.next(1), 2u);
  EXPECT_EQ(s.next(2), 0u);
  EXPECT_EQ(s.next(3), 0u);  // fallback: t mod 3
  EXPECT_EQ(s.next(4), 1u);
}

TEST(Scripted, ThrowPolicyRejectsExhaustion) {
  ScriptedSchedule s(3, {1, 0}, ScriptExhaust::kThrow);
  EXPECT_EQ(s.next(0), 1u);
  EXPECT_EQ(s.next(1), 0u);
  EXPECT_THROW(s.next(2), std::out_of_range);
  // Exhaustion is sticky: every later grant attempt throws too.
  EXPECT_THROW(s.next(3), std::out_of_range);
}

TEST(Scripted, EmptyScriptBehavesPerPolicy) {
  ScriptedSchedule fallback(2, {});
  EXPECT_EQ(fallback.next(0), 0u);
  EXPECT_EQ(fallback.next(1), 1u);
  ScriptedSchedule strict(2, {}, ScriptExhaust::kThrow);
  EXPECT_THROW(strict.next(0), std::out_of_range);
}

TEST(Scripted, ValidatesProcRange) {
  EXPECT_THROW(ScriptedSchedule(2, {0, 5}), std::invalid_argument);
  EXPECT_THROW(ScriptedSchedule(2, {0, 5}, ScriptExhaust::kThrow),
               std::invalid_argument);
}

TEST(Burst, ProducesRuns) {
  BurstSchedule s(4, 0.9, apex::Rng(12));
  // Expected run length 10; over many draws we should see runs >= 5.
  std::size_t prev = s.next(0);
  int run = 1, max_run = 1;
  for (std::uint64_t t = 1; t < 5000; ++t) {
    const auto p = s.next(t);
    run = (p == prev) ? run + 1 : 1;
    max_run = std::max(max_run, run);
    prev = p;
  }
  EXPECT_GE(max_run, 10);
}

TEST(Burst, ValidatesProb) {
  EXPECT_THROW(BurstSchedule(2, 1.0, apex::Rng(1)), std::invalid_argument);
  EXPECT_THROW(BurstSchedule(2, -0.1, apex::Rng(1)), std::invalid_argument);
}

TEST(Factory, BuildsEveryKind) {
  for (auto kind : all_schedule_kinds()) {
    auto s = make_schedule(kind, 16, apex::Rng(4));
    ASSERT_NE(s, nullptr) << schedule_kind_name(kind);
    EXPECT_EQ(s->nprocs(), 16u);
    EXPECT_TRUE(s->is_oblivious());
    for (std::uint64_t t = 0; t < 100; ++t) EXPECT_LT(s->next(t), 16u);
  }
}

TEST(Factory, CoversFullAdversaryFamily) {
  const auto kinds = all_schedule_kinds();
  auto has = [&](ScheduleKind k) {
    for (auto kk : kinds)
      if (kk == k) return true;
    return false;
  };
  EXPECT_TRUE(has(ScheduleKind::kCrash));
  EXPECT_TRUE(has(ScheduleKind::kRate));
  EXPECT_EQ(kinds.size(), 7u);
}

TEST(Factory, CanonicalCrashKillsFirstHalfOnly) {
  const std::size_t n = 8;
  auto s = make_schedule(ScheduleKind::kCrash, n, apex::Rng(11));
  // Past the last staggered deadline (32n * n/2), only the surviving upper
  // half may be granted.
  const std::uint64_t horizon = 32 * n * (n / 2);
  for (std::uint64_t t = horizon; t < horizon + 4000; ++t)
    EXPECT_GE(s->next(t), n / 2) << "t=" << t;
}

TEST(Factory, CanonicalRateFavorsFasterProcs) {
  const std::size_t n = 8;
  auto s = make_schedule(ScheduleKind::kRate, n, apex::Rng(13));
  std::vector<int> counts(n, 0);
  for (std::uint64_t t = 0; t < 72000; ++t) ++counts[s->next(t)];
  // Linear ramp: proc n-1 runs ~n times as often as proc 0.
  EXPECT_GT(counts[n - 1], 4 * counts[0]);
  for (auto c : counts) EXPECT_GT(c, 0);
}

TEST(Factory, NamesAreDistinct) {
  std::map<std::string, int> seen;
  for (auto kind : all_schedule_kinds()) ++seen[schedule_kind_name(kind)];
  EXPECT_EQ(seen.size(), all_schedule_kinds().size());
}

TEST(Schedule, ZeroProcsRejected) {
  EXPECT_THROW(RoundRobinSchedule(0), std::invalid_argument);
}

TEST(Callback, DelegatesAndDeclaresNonOblivious) {
  int calls = 0;
  CallbackSchedule s(4, [&](std::uint64_t t) {
    ++calls;
    return static_cast<std::size_t>((t * 3) % 4);
  });
  EXPECT_FALSE(s.is_oblivious());
  EXPECT_EQ(s.next(0), 0u);
  EXPECT_EQ(s.next(1), 3u);
  EXPECT_EQ(s.next(2), 2u);
  EXPECT_EQ(calls, 3);
}

TEST(Callback, ValidatesCallbackAndRange) {
  EXPECT_THROW(CallbackSchedule(2, nullptr), std::invalid_argument);
  CallbackSchedule bad(2, [](std::uint64_t) { return std::size_t{7}; });
  EXPECT_THROW(bad.next(0), std::out_of_range);
}

}  // namespace
}  // namespace apex::sim
